// Coverage-guided libFuzzer driver for the hostile-wire trust boundary.
//
// Build with -DBFTCUP_BUILD_FUZZERS=ON (requires a clang toolchain; the
// target compiles with -fsanitize=fuzzer,address,undefined):
//
//   ./tools/wire_frame_fuzzer -max_len=512 corpus/
//
// The invariant is the same one tests/wire_fuzz_test.cpp asserts on its
// deterministic seed corpus: decode_frame never crashes, and any frame it
// accepts re-encodes byte-identically (canonical decode — no two distinct
// wire frames alias to one message). The deterministic harness is the
// regression floor that runs in every CI job; this driver is for open-ended
// exploration of the decode path.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <optional>

#include "common/bytes.hpp"
#include "msg/wire.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace bftcup;
  const BytesView frame(data, size);
  const std::optional<msg::Message> decoded = msg::decode_frame(frame);
  if (decoded.has_value()) {
    const Bytes round = msg::encode_frame(*decoded);
    if (round.size() != size ||
        !std::equal(round.begin(), round.end(), data)) {
      __builtin_trap();  // non-canonical decode: two frames alias
    }
  }
  return 0;
}

// cup_trace — deterministic trace inspector (README "Observability").
//
// Replays a registry scenario or a one-line explorer genome with the span
// flight recorder attached and renders what it captured:
//
//   cup_trace --scenario NAME [--seed N]     replay + Chrome trace JSON on
//                                            stdout (Perfetto-loadable)
//   cup_trace --genome '<line>'              same, from a genome artifact
//   ... --out FILE                           write the JSON to FILE instead
//   ... --summary                            human summary instead of JSON:
//                                            top spans by exclusive wall
//                                            time, per-type message counts,
//                                            headline metrics
//   ... --diff NAME2 [--seed2 N]             replay a second (scenario,
//                                            seed) and print per-span-name
//                                            aggregates side by side
//   ... --trace-capacity N                   flight-recorder ring size
//                                            (default: the builder's
//                                            kDefaultTraceCapacity)
//
// Every run is the same deterministic (scenario, seed) replay the rest of
// the suite uses — tracing is observation only, so the digest printed here
// matches cup_explore's for the identical point. Span counts, sim-time
// windows and message histograms are bit-stable across machines; only the
// wall-time columns vary run to run.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "explore/explorer.hpp"
#include "obs/trace_export.hpp"

namespace {

using namespace bftcup;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario NAME [--seed N] [--out FILE] [--summary]\n"
               "          [--diff NAME2 [--seed2 N]] [--trace-capacity N]\n"
               "       %s --genome '<genome line>' [--out FILE] [--summary]\n",
               argv0, argv0);
  return 2;
}

/// Per-span-name aggregate over one trace. Wall columns are export-only;
/// count/sim are deterministic replay facts.
struct SpanStats {
  std::uint64_t count = 0;
  std::int64_t sim_total = 0;       ///< summed sim-time window
  std::uint64_t wall_total_ns = 0;  ///< summed inclusive wall time
  std::uint64_t wall_excl_ns = 0;   ///< summed exclusive wall time
};

/// Aggregates a trace per span name. Exclusive time uses the completion
/// order the recorder guarantees (inner spans close before their parent):
/// when a span at depth d closes, everything its direct children (depth
/// d+1) cost since the previous depth-d close has accumulated in
/// child_ns[d+1], so exclusive = inclusive - child_ns[d+1]. When the ring
/// dropped records the reconstruction is best-effort over what survived.
std::map<std::string, SpanStats> aggregate(const obs::SpanTrace& trace) {
  std::map<std::string, SpanStats> by_name;
  std::vector<std::uint64_t> child_ns;
  for (const obs::SpanRecord& rec : trace.records) {
    const std::string& name = rec.name_id < trace.names.size()
                                  ? trace.names[rec.name_id]
                                  : std::string("?");
    const std::uint64_t wall = rec.wall_end_ns - rec.wall_begin_ns;
    if (child_ns.size() < rec.depth + 2) child_ns.resize(rec.depth + 2, 0);
    std::uint64_t& nested = child_ns[rec.depth + 1];
    const std::uint64_t excl = wall > nested ? wall - nested : 0;
    nested = 0;
    child_ns[rec.depth] += wall;
    SpanStats& stats = by_name[name];
    ++stats.count;
    stats.sim_total += rec.sim_end - rec.sim_begin;
    stats.wall_total_ns += wall;
    stats.wall_excl_ns += excl;
  }
  return by_name;
}

void print_headline(const char* label, const cup::RunReport& report) {
  std::printf("%s\n", label);
  std::printf("  verdict   %s\n", report.verdict().c_str());
  std::printf("  digest    %s\n", report.digest().c_str());
  if (report.spans != nullptr) {
    std::printf("  spans     %llu started, %zu kept, %llu dropped\n",
                static_cast<unsigned long long>(report.spans->started),
                report.spans->records.size(),
                static_cast<unsigned long long>(report.spans->dropped));
  }
}

void print_summary(const cup::RunReport& report) {
  if (report.spans == nullptr) return;
  // Top spans by exclusive wall time: where the run itself spent its time,
  // with nested phases attributed to the nested span.
  std::vector<std::pair<std::string, SpanStats>> rows;
  for (auto& [name, stats] : aggregate(*report.spans)) {
    rows.emplace_back(name, stats);
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.wall_excl_ns > b.second.wall_excl_ns;
  });
  std::printf("\n%-28s %10s %12s %12s %10s\n", "span", "count", "excl us",
              "incl us", "sim time");
  for (const auto& [name, stats] : rows) {
    std::printf("%-28s %10llu %12.1f %12.1f %10lld\n", name.c_str(),
                static_cast<unsigned long long>(stats.count),
                static_cast<double>(stats.wall_excl_ns) / 1000.0,
                static_cast<double>(stats.wall_total_ns) / 1000.0,
                static_cast<long long>(stats.sim_total));
  }

  std::printf("\n%-28s %10s\n", "messages sent", "count");
  for (std::size_t i = 0; i < msg::kMsgTypeCount; ++i) {
    if (report.sent_by_type[i] == 0) continue;
    std::printf("%-28s %10llu\n",
                msg::to_string(static_cast<msg::MsgType>(i)),
                static_cast<unsigned long long>(report.sent_by_type[i]));
  }

  // Hostile-wire rows (only when the wire touched the run): the headline
  // counters straight from the report, then the per-mutation-kind split
  // from the wire.* metrics family when the run carried a registry.
  if (report.frames_mutated > 0 || report.frames_rejected > 0 ||
      report.frames_lost > 0) {
    std::printf("\n%-28s %10s\n", "hostile wire", "frames");
    std::printf("%-28s %10llu\n", "mutated",
                static_cast<unsigned long long>(report.frames_mutated));
    std::printf("%-28s %10llu\n", "rejected by decoder",
                static_cast<unsigned long long>(report.frames_rejected));
    std::printf("%-28s %10llu\n", "lost (lossy policy)",
                static_cast<unsigned long long>(report.frames_lost));
    for (const auto& [name, value] : report.metrics.counters) {
      if (name.rfind("wire.mutated.", 0) == 0) {
        std::printf("%-28s %10llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
    }
  }

  if (!report.metrics.empty()) {
    std::printf("\n%-28s %10s\n", "metric", "value");
    for (const auto& [name, value] : report.metrics.counters) {
      std::printf("%-28s %10llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
    for (const auto& [name, value] : report.metrics.gauges) {
      std::printf("%-28s %10llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
}

void print_diff(const cup::RunReport& lhs, const cup::RunReport& rhs,
                const std::string& lhs_label, const std::string& rhs_label) {
  std::map<std::string, SpanStats> left;
  std::map<std::string, SpanStats> right;
  if (lhs.spans != nullptr) left = aggregate(*lhs.spans);
  if (rhs.spans != nullptr) right = aggregate(*rhs.spans);
  // Union of span names, alphabetical — stable output for diffs of diffs.
  std::map<std::string, bool> names;
  for (const auto& [name, _] : left) names.emplace(name, true);
  for (const auto& [name, _] : right) names.emplace(name, true);

  std::printf("\n%-28s | %10s %10s | %10s %10s | %s\n", "span",
              "count A", "count B", "sim A", "sim B", "delta");
  std::printf("A = %s, B = %s\n", lhs_label.c_str(), rhs_label.c_str());
  for (const auto& [name, _] : names) {
    const SpanStats a = left.count(name) ? left[name] : SpanStats{};
    const SpanStats b = right.count(name) ? right[name] : SpanStats{};
    const long long dcount = static_cast<long long>(b.count) -
                             static_cast<long long>(a.count);
    std::printf("%-28s | %10llu %10llu | %10lld %10lld | %+lld\n",
                name.c_str(), static_cast<unsigned long long>(a.count),
                static_cast<unsigned long long>(b.count),
                static_cast<long long>(a.sim_total),
                static_cast<long long>(b.sim_total), dcount);
  }

  std::printf("\n%-28s | %10s %10s\n", "messages sent", "A", "B");
  for (std::size_t i = 0; i < msg::kMsgTypeCount; ++i) {
    if (lhs.sent_by_type[i] == 0 && rhs.sent_by_type[i] == 0) continue;
    std::printf("%-28s | %10llu %10llu\n",
                msg::to_string(static_cast<msg::MsgType>(i)),
                static_cast<unsigned long long>(lhs.sent_by_type[i]),
                static_cast<unsigned long long>(rhs.sent_by_type[i]));
  }
  std::printf("\ndigest A  %s\ndigest B  %s  (%s)\n", lhs.digest().c_str(),
              rhs.digest().c_str(),
              lhs.digest() == rhs.digest() ? "identical" : "differ");
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name;
  std::string genome_line;
  std::string out_path;
  std::string diff_name;
  std::uint64_t seed = 1;
  std::uint64_t diff_seed = 1;
  std::uint64_t capacity = cup::ScenarioBuilder::kDefaultTraceCapacity;
  bool want_summary = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](std::uint64_t& out) {
      if (i + 1 >= argc) return false;
      const char* s = argv[++i];
      char* end = nullptr;
      out = std::strtoull(s, &end, 10);
      // A typo'd number must be a usage error, not a silent zero.
      return *s != '\0' && end != nullptr && *end == '\0';
    };
    std::uint64_t value = 0;
    if (arg == "--scenario" && i + 1 < argc) {
      scenario_name = argv[++i];
    } else if (arg == "--genome" && i + 1 < argc) {
      genome_line = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--diff" && i + 1 < argc) {
      diff_name = argv[++i];
    } else if (arg == "--seed" && next_value(value)) {
      seed = value;
    } else if (arg == "--seed2" && next_value(value)) {
      diff_seed = value;
    } else if (arg == "--trace-capacity" && next_value(value)) {
      capacity = value;
    } else if (arg == "--summary") {
      want_summary = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (scenario_name.empty() == genome_line.empty()) return usage(argv[0]);
  if (!diff_name.empty() && scenario_name.empty()) {
    std::fprintf(stderr, "cup_trace: --diff needs --scenario for side A\n");
    return 2;
  }
  if (capacity == 0) {
    std::fprintf(stderr, "cup_trace: --trace-capacity must be nonzero\n");
    return 2;
  }

  const auto& registry = cup::ScenarioRegistry::paper();
  // Exact registry name, or a family prefix: "fig1b" resolves to the first
  // (sorted) "fig1b/..." entry, so the common figures are addressable
  // without remembering their variant suffix. Empty string = not found.
  const auto resolve_name = [&](const std::string& name) -> std::string {
    if (registry.contains(name)) return name;
    for (const std::string& candidate : registry.names()) {
      if (candidate.size() > name.size() + 1 &&
          candidate.compare(0, name.size(), name) == 0 &&
          candidate[name.size()] == '/') {
        std::fprintf(stderr, "cup_trace: resolving \"%s\" to \"%s\"\n",
                     name.c_str(), candidate.c_str());
        return candidate;
      }
    }
    return std::string();
  };
  const auto traced_run = [&](const std::string& name,
                              std::uint64_t run_seed) {
    return cup::run_scenario(
        registry.builder(name, run_seed).trace_capacity(capacity).build());
  };

  std::string label;
  cup::RunReport report;
  if (!genome_line.empty()) {
    const auto genome = explore::Genome::parse_line(genome_line);
    if (!genome || !genome->valid()) {
      std::fprintf(stderr, "cup_trace: malformed or invalid genome line\n");
      return 2;
    }
    label = "genome seed=" + std::to_string(genome->seed);
    report =
        cup::run_scenario(genome->to_builder().trace_capacity(capacity).build());
  } else {
    const std::string requested = scenario_name;
    scenario_name = resolve_name(requested);
    if (scenario_name.empty()) {
      std::fprintf(stderr, "cup_trace: unknown scenario \"%s\"\n",
                   requested.c_str());
      return 2;
    }
    label = scenario_name + " seed=" + std::to_string(seed);
    report = traced_run(scenario_name, seed);
  }

  if (!diff_name.empty()) {
    diff_name = resolve_name(diff_name);
    if (diff_name.empty()) {
      std::fprintf(stderr, "cup_trace: unknown scenario \"%s\"\n",
                   diff_name.c_str());
      return 2;
    }
    const std::string diff_label =
        diff_name + " seed=" + std::to_string(diff_seed);
    const cup::RunReport other = traced_run(diff_name, diff_seed);
    print_headline("side A", report);
    print_headline("side B", other);
    print_diff(report, other, label, diff_label);
    return 0;
  }

  if (want_summary) {
    print_headline(label.c_str(), report);
    print_summary(report);
    return 0;
  }

  if (report.spans == nullptr) {
    std::fprintf(stderr, "cup_trace: run produced no trace\n");
    return 1;
  }
  const std::string json = obs::to_chrome_trace_json(*report.spans, label);
  if (out_path.empty()) {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cup_trace: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json;
  return 0;
}

#!/usr/bin/env python3
"""Scoped clang-tidy driver for CI (see README "Static analysis").

Running clang-tidy over every translation unit takes far longer than the
CI budget, so this driver tidies a bounded, deterministic slice:

  * the files changed on this branch (``--since BASE``, via git diff),
    filtered to C++ sources that appear in compile_commands.json, plus
  * the always-checked core: the run engine and batch runner, whose
    correctness the whole determinism story rests on.

The slice is capped (``--max-files``) so a tree-wide refactor degrades to
"core files only" instead of timing out. clang-tidy reads the check set
and WarningsAsErrors list from the repository's .clang-tidy; this driver
adds nothing on top.

Usage:
  run_clang_tidy.py --build-dir build [--since origin/main]
                    [--clang-tidy clang-tidy] [--max-files 40] [-j N]
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
from pathlib import Path

# Always analyzed, changed or not: the determinism-critical core.
CORE_FILES = (
    "src/cup/runner.cpp",
    "src/cup/batch_runner.cpp",
    "src/cup/run_context.cpp",
    "src/sim/trace.cpp",
    "src/explore/explorer.cpp",
)

SKIP_EXIT_CODE = 77


def find_tool(explicit: str | None) -> str | None:
    candidates = [explicit] if explicit else []
    candidates += [f"clang-tidy-{v}" for v in range(21, 13, -1)]
    candidates += ["clang-tidy"]
    for name in candidates:
        if name and shutil.which(name):
            return name
    return None


def compiled_sources(build_dir: Path) -> set[Path]:
    """Absolute paths of every TU in compile_commands.json."""
    database = build_dir / "compile_commands.json"
    if not database.is_file():
        raise SystemExit(
            f"error: {database} not found; configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"
        )
    entries = json.loads(database.read_text())
    return {
        (Path(entry["directory"]) / entry["file"]).resolve()
        for entry in entries
    }


def changed_files(root: Path, since: str) -> list[Path]:
    result = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=d", f"{since}...HEAD"],
        cwd=root,
        capture_output=True,
        text=True,
        check=False,
    )
    if result.returncode != 0:
        print(
            f"warning: git diff against {since!r} failed "
            f"({result.stderr.strip()}); tidying core files only",
            file=sys.stderr,
        )
        return []
    return [
        root / line
        for line in result.stdout.splitlines()
        if line.endswith(".cpp")
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--since", help="base ref for the changed-file slice")
    parser.add_argument("--clang-tidy", help="clang-tidy binary to use")
    parser.add_argument("--max-files", type=int, default=40)
    parser.add_argument("-j", "--jobs", type=int, default=1)
    args = parser.parse_args()

    tidy = find_tool(args.clang_tidy)
    if tidy is None:
        print("run_clang_tidy: no clang-tidy found; skipping (exit 77)")
        return SKIP_EXIT_CODE

    root = Path.cwd().resolve()
    build_dir = (root / args.build_dir).resolve()
    compilable = compiled_sources(build_dir)

    targets: list[Path] = []
    for rel in CORE_FILES:
        path = (root / rel).resolve()
        if path in compilable:
            targets.append(path)
    if args.since:
        for path in changed_files(root, args.since):
            resolved = path.resolve()
            if resolved in compilable and resolved not in targets:
                targets.append(resolved)

    dropped = len(targets) - args.max_files
    if dropped > 0:
        print(
            f"run_clang_tidy: capping at {args.max_files} files "
            f"({dropped} changed files dropped; run locally for the rest)"
        )
        targets = targets[: args.max_files]

    if not targets:
        print("run_clang_tidy: nothing to analyze")
        return 0

    print(f"run_clang_tidy: {tidy} over {len(targets)} file(s)")
    failed: list[str] = []
    pending: list[tuple[Path, subprocess.Popen[str]]] = []

    def drain(limit: int) -> None:
        while len(pending) > limit:
            path, process = pending.pop(0)
            output, _ = process.communicate()
            shown = path.relative_to(root)
            if process.returncode != 0:
                failed.append(str(shown))
                print(f"FAIL {shown}\n{output}")
            else:
                print(f"ok   {shown}")

    for target in targets:
        process = subprocess.Popen(
            [tidy, "-p", str(build_dir), "--quiet", str(target)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        pending.append((target, process))
        drain(max(args.jobs - 1, 0))
    drain(0)

    if failed:
        print(
            f"\nrun_clang_tidy: {len(failed)} file(s) failed: "
            + ", ".join(failed),
            file=sys.stderr,
        )
        return 1
    print(f"run_clang_tidy: all {len(targets)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

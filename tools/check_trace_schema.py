#!/usr/bin/env python3
"""Chrome trace-event schema gate for cup_trace output (stdlib only).

Validates that a trace document is what Perfetto / chrome://tracing will
actually load: a JSON object with a `traceEvents` list whose members are
metadata ("M") or complete ("X") events carrying the fields the exporter
promises (obs/trace_export.cpp) — non-negative microsecond ts/dur, the
bftcup category, and per-event args with both clocks (sim_begin/sim_end)
plus seq/depth/arg. Also asserts the trace is non-trivial: a named process
track and at least one `run.execute` span must be present, so an
accidentally-disabled recorder cannot pass as an empty-but-valid document.

Usage:
  check_trace_schema.py TRACE.json
  check_trace_schema.py --run CUP_TRACE_EXE [--scenario NAME] [--seed N]
      [--keep FILE]

--run executes the cup_trace binary itself (default: fig1b seed 7), writes
the trace to a temp file (or --keep FILE), then validates it — the one-stop
CI smoke.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from typing import Any

REQUIRED_X_ARGS = ("sim_begin", "sim_end", "seq", "depth", "arg")


def fail(errors: list[str], message: str) -> None:
    errors.append(message)


def check_event(event: Any, index: int, errors: list[str]) -> str | None:
    """Validates one event; returns its name when it is an X event."""
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        fail(errors, f"{where}: not an object")
        return None
    phase = event.get("ph")
    if phase not in ("M", "X"):
        fail(errors, f"{where}: ph must be 'M' or 'X', got {phase!r}")
        return None
    if not isinstance(event.get("name"), str) or not event["name"]:
        fail(errors, f"{where}: missing non-empty string name")
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            fail(errors, f"{where}: {key} must be an integer")
    if phase == "M":
        args = event.get("args")
        if not isinstance(args, dict) or not isinstance(args.get("name"), str):
            fail(errors, f"{where}: metadata event needs args.name string")
        return None
    # Complete event.
    if event.get("cat") != "bftcup":
        fail(errors, f"{where}: cat must be 'bftcup', got {event.get('cat')!r}")
    for key in ("ts", "dur"):
        value = event.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(errors, f"{where}: {key} must be a number")
        elif value < 0:
            fail(errors, f"{where}: {key} must be non-negative, got {value}")
    args = event.get("args")
    if not isinstance(args, dict):
        fail(errors, f"{where}: X event needs an args object")
    else:
        for key in REQUIRED_X_ARGS:
            if not isinstance(args.get(key), int):
                fail(errors, f"{where}: args.{key} must be an integer")
        if isinstance(args.get("sim_begin"), int) and isinstance(
            args.get("sim_end"), int
        ):
            if args["sim_end"] < args["sim_begin"]:
                fail(errors, f"{where}: sim_end < sim_begin")
    return event.get("name") if isinstance(event.get("name"), str) else None


def validate(document: Any) -> list[str]:
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["top level: not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: traceEvents must be a list"]

    span_names: set[str] = set()
    metadata_names: set[str] = set()
    for index, event in enumerate(events):
        name = check_event(event, index, errors)
        if name is not None:
            span_names.add(name)
        elif isinstance(event, dict) and event.get("ph") == "M":
            metadata_names.add(event.get("name", ""))

    if "process_name" not in metadata_names:
        fail(errors, "no process_name metadata event (unnamed track)")
    if "run.execute" not in span_names:
        fail(errors, "no run.execute span: the recorder captured nothing")

    other = document.get("otherData")
    if not isinstance(other, dict):
        fail(errors, "top level: otherData must be an object")
    else:
        for key in ("spans_started", "spans_dropped"):
            if not isinstance(other.get(key), int):
                fail(errors, f"otherData.{key} must be an integer")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", help="trace JSON file to validate")
    parser.add_argument("--run", help="cup_trace executable to smoke-run")
    parser.add_argument("--scenario", default="fig1b")
    parser.add_argument("--seed", default="7")
    parser.add_argument("--keep", help="with --run: keep the trace here")
    args = parser.parse_args()

    if (args.trace is None) == (args.run is None):
        parser.error("pass exactly one of TRACE.json or --run")

    if args.run is not None:
        path = args.keep
        temp = None
        if path is None:
            fd, path = tempfile.mkstemp(suffix=".json", prefix="cup_trace_")
            os.close(fd)
            temp = path
        cmd = [
            args.run, "--scenario", args.scenario, "--seed", args.seed,
            "--out", path,
        ]
        try:
            result = subprocess.run(cmd, capture_output=True, text=True)
            if result.returncode != 0:
                print(f"error: {' '.join(cmd)} exited {result.returncode}",
                      file=sys.stderr)
                sys.stderr.write(result.stderr)
                return 1
            with open(path) as f:
                document = json.load(f)
        finally:
            if temp is not None:
                os.unlink(temp)
    else:
        with open(args.trace) as f:
            document = json.load(f)

    errors = validate(document)
    if errors:
        print(f"{len(errors)} schema violation(s):", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    events = document["traceEvents"]
    x_events = sum(1 for e in events if isinstance(e, dict) and e.get("ph") == "X")
    print(f"trace schema OK: {x_events} spans, {len(events) - x_events} "
          f"metadata events")
    return 0


if __name__ == "__main__":
    sys.exit(main())

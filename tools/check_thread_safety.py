#!/usr/bin/env python3
"""Thread-safety annotation gate: positive/negative compile checks.

Clang's -Wthread-safety analysis only has teeth if (a) the annotated code
compiles cleanly and (b) a deliberately unguarded access is actually
rejected. This driver proves both against the shim in
src/common/thread_annotations.hpp:

  1. every header carrying annotations passes
     -fsyntax-only -Wthread-safety -Werror=thread-safety,
  2. tests/lint_corpus/thread_safety_positive.cpp compiles, and
  3. tests/lint_corpus/thread_safety_negative.cpp FAILS to compile with a
     thread-safety diagnostic (a clean build here means the analysis is
     silently off — that is the worst outcome, and it fails the gate).

Needs a clang++ (the analysis is Clang-only). Without one the check exits
77, which CTest maps to SKIPPED via SKIP_RETURN_CODE — the CI lint job
installs clang, so the gate always runs there.

Usage: check_thread_safety.py [--root DIR] [--clang PATH]
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

# Headers that carry BFTCUP_* annotations; each must analyze cleanly on
# its own (catches an annotation referencing a member the analysis cannot
# see long before the full CI build).
ANNOTATED_HEADERS = (
    "src/common/thread_annotations.hpp",
    "src/common/logging.hpp",
    "src/protocol/eval_cache.hpp",
    "src/crypto/verify_cache.hpp",
    "src/crypto/keyring_cache.hpp",
)

SKIP_EXIT_CODE = 77


def find_clang(explicit: str | None) -> str | None:
    candidates = [explicit] if explicit else []
    candidates += [f"clang++-{v}" for v in range(21, 13, -1)]
    candidates += ["clang++"]
    for name in candidates:
        if name and shutil.which(name):
            return name
    return None


def compile_cmd(clang: str, root: Path, source: Path) -> list[str]:
    return [
        clang,
        "-std=c++20",
        "-fsyntax-only",
        "-Wthread-safety",
        "-Werror=thread-safety",
        "-I",
        str(root / "src"),
        str(source),
    ]


def run(cmd: list[str]) -> subprocess.CompletedProcess[str]:
    return subprocess.run(cmd, capture_output=True, text=True, check=False)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--clang", help="clang++ binary to use")
    args = parser.parse_args()
    root = Path(args.root)

    clang = find_clang(args.clang)
    if clang is None:
        print(
            "check_thread_safety: no clang++ found; -Wthread-safety is "
            "Clang-only — skipping (exit 77)"
        )
        return SKIP_EXIT_CODE

    failures: list[str] = []

    for rel in ANNOTATED_HEADERS:
        header = root / rel
        result = run(
            compile_cmd(clang, root, header) + ["-x", "c++-header"]
        )
        if result.returncode != 0:
            failures.append(f"{rel} failed the annotated-header analysis:")
            failures.append(result.stderr.strip())
        else:
            print(f"ok   {rel}")

    positive = root / "tests/lint_corpus/thread_safety_positive.cpp"
    result = run(compile_cmd(clang, root, positive))
    if result.returncode != 0:
        failures.append(
            f"{positive.name} must compile under -Wthread-safety but did not:"
        )
        failures.append(result.stderr.strip())
    else:
        print(f"ok   {positive.name} (compiles)")

    negative = root / "tests/lint_corpus/thread_safety_negative.cpp"
    result = run(compile_cmd(clang, root, negative))
    if result.returncode == 0:
        failures.append(
            f"{negative.name} COMPILED: the thread-safety analysis is "
            "silently off (shim macros expanding to nothing under clang?)"
        )
    elif "thread-safety" not in result.stderr and "guarded by" not in result.stderr:
        failures.append(
            f"{negative.name} failed for the wrong reason (expected a "
            "thread-safety diagnostic):"
        )
        failures.append(result.stderr.strip())
    else:
        print(f"ok   {negative.name} (rejected with a thread-safety error)")

    if failures:
        print("\ncheck_thread_safety: FAILED", file=sys.stderr)
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    print(f"check_thread_safety: all checks passed with {clang}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

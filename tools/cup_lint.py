#!/usr/bin/env python3
"""cup_lint: repo-specific determinism and soundness linter for src/.

The whole reproduction rests on bit-replay determinism (the golden digest
corpus, fresh==recycled property suites, pooled-vs-serial sweeps). These
invariants are enforced dynamically by tests; cup_lint enforces the coding
rules that make them hold *statically*, before a nondeterministic container
walk or an ambient entropy source ever reaches a replay test.

Rules (each finding names its rule id):

  R1 unordered-iteration
     No range-for iteration over std::unordered_map / std::unordered_set
     (or their pmr / multi variants) in any digest-path module — the files
     that compute RunReport::digest(), trace records, or the explorer's
     coverage signatures. Hash-table iteration order is implementation- and
     address-dependent, so a single walk silently breaks bit replay.
     Allowlist: `// cup-lint: ordered-ok(<why the order cannot leak>)`.

  R2 nondeterministic-source
     No ambient entropy or wall-clock sources anywhere in src/ outside
     sim::Rng (src/common/random.*): rand/srand, std::random_device,
     mt19937 engines, time()/clock(), chrono clock ::now(), and std::hash
     over pointer types (address-dependent keys). Allowlist:
     `// cup-lint: rng-ok(<why this cannot reach a replayed path>)`.

  R3 digest-field-classification
     Every field of RunReport must be *explicitly* classified: either it is
     serialized by RunReport::digest(), or its declaration carries
     `// cup-lint: digest-excluded(<why>)`. A field that is both hashed and
     marked excluded is a contradiction and also fails. Every field of
     RunRecord must appear in both BatchReport::runs_csv() and
     BatchReport::to_json() so reports keep round-tripping.

  R4 reinterpret-cast
     No reinterpret_cast outside the audited allowlist (src/codec/ and
     src/sim/run_arena.*), where byte-level framing and alignment
     arithmetic legitimately need it. Elsewhere:
     `// cup-lint: cast-ok(<why this cannot be UB>)`.

Markers require a non-empty justification; an empty one is itself a
finding (M1). A marker comment applies to its own line, or — on a
comment-only line — to the next code line.

Static path analysis is deliberately out of scope: R1 approximates "feeds a
digest" at module granularity via DIGEST_PATH_MODULES below, and
`--report` emits the full container inventory of those modules
(tools/lint_report.json, diffed in CI) so every new container on a
digest-feeding path shows up in review even when it is ordered.

Usage:
  cup_lint.py [--root DIR]                 # lint src/, exit 1 on findings
  cup_lint.py --report FILE                # also write the JSON inventory
  cup_lint.py --check-report FILE          # fail if inventory drifted
  cup_lint.py --self-test DIR              # run the lint_corpus fixtures
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any

# Modules whose code feeds RunReport::digest(), trace records, or coverage
# signatures. R1 fires only here; --report inventories containers here.
DIGEST_PATH_MODULES = (
    # The blocked-bitset kernels back membership probes inside candidate
    # enumeration — their containers feed digest-visible iteration order.
    "src/common/bitset64.hpp",
    # The fork-join pool carries the intra-run parallel fan-out: its slot
    # and scratch containers are where a completion-order reduction would
    # first become possible, so they stay in the inventory.
    "src/common/work_pool.hpp",
    "src/common/work_pool.cpp",
    "src/cup/runner.hpp",
    "src/cup/runner.cpp",
    "src/cup/batch_runner.hpp",
    "src/cup/batch_runner.cpp",
    # The observability layer rides on digest-path runs: registries iterate
    # for snapshots and the tracer/export order must be replayable, so its
    # containers stay in the inventory and under R1.
    "src/obs/metrics.hpp",
    "src/obs/metrics.cpp",
    "src/obs/span_tracer.hpp",
    "src/obs/span_tracer.cpp",
    "src/obs/trace_export.hpp",
    "src/obs/trace_export.cpp",
    "src/sim/trace.hpp",
    "src/sim/trace.cpp",
    "src/explore/coverage.hpp",
    "src/explore/coverage.cpp",
    "src/explore/genome.hpp",
    "src/explore/genome.cpp",
)

# R2 never fires here: this *is* the audited entropy seam (sim::Rng).
RNG_ALLOWED_FILES = (
    "src/common/random.hpp",
    "src/common/random.cpp",
)

# R4 never fires here: byte-level codecs and arena alignment arithmetic.
CAST_ALLOWED_PREFIXES = (
    "src/codec/",
    "src/sim/run_arena",
)

UNORDERED_TYPES = (
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
)

# Container spellings inventoried by --report, with their ordering verdict.
ORDERED_CONTAINERS = (
    "std::map",
    "std::multimap",
    "std::set",
    "std::multiset",
    "std::pmr::map",
    "std::pmr::set",
    "std::array",
    "std::vector",
    "std::pmr::vector",
    "std::deque",
    "FlatMap",
    "FlatSet",
    "IdSet",
    # Blocked bitsets iterate ascending (for_each_set) — ordered containers
    # in the replay-determinism sense, like the FlatSet they can stand in for.
    "BasicBitSet",
    "BitSet",
    "PmrBitSet",
)

MARKER_RE = re.compile(
    r"cup-lint:\s*(ordered-ok|rng-ok|cast-ok|digest-excluded)\s*\(([^)]*)\)"
)
EXPECT_RE = re.compile(r"cup-lint-expect:\s*([A-Z]\d[\w-]*)")

R2_PATTERNS: tuple[tuple[re.Pattern[str], str], ...] = (
    (re.compile(r"(?<![\w.>])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "mt19937 engine outside sim::Rng"),
    (re.compile(r"\bdefault_random_engine\b"), "default_random_engine"),
    (re.compile(r"(?<![\w.>])time\s*\("), "wall-clock time()"),
    (re.compile(r"(?<![\w.>])clock\s*\("), "clock()"),
    (
        re.compile(
            r"\b(system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b"
        ),
        "chrono clock ::now()",
    ),
    (re.compile(r"std::hash\s*<[^<>]*\*"), "std::hash over a pointer type"),
)


class Finding:
    def __init__(self, rule: str, file: str, line: int, message: str) -> None:
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """One scanned file, split into per-line code and comment text.

    The splitter understands //, /* */, string and char literals; that is
    enough for this codebase and keeps the tool dependency-free. Markers
    live in the comment channel, rule tokens are matched against the code
    channel, so a rule named in prose never trips its own linter.
    """

    def __init__(self, path: Path, rel: str) -> None:
        self.path = path
        self.rel = rel
        text = path.read_text(encoding="utf-8", errors="replace")
        self.code_lines: list[str] = []
        self.comment_lines: list[str] = []
        self._split(text)
        # marker kind -> set of covered line numbers (1-based)
        self.markers: dict[str, set[int]] = {}
        self.marker_errors: list[Finding] = []
        self.expected_rules: set[str] = set()
        self._collect_markers()

    def _split(self, text: str) -> None:
        code: list[str] = []
        comment: list[str] = []
        i, n = 0, len(text)
        in_block = False
        in_line = False
        in_str: str | None = None
        cur_code: list[str] = []
        cur_comment: list[str] = []
        while i < n:
            c = text[i]
            nxt = text[i + 1] if i + 1 < n else ""
            if c == "\n":
                code.append("".join(cur_code))
                comment.append("".join(cur_comment))
                cur_code, cur_comment = [], []
                in_line = False
                i += 1
                continue
            if in_line:
                cur_comment.append(c)
                i += 1
                continue
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                else:
                    cur_comment.append(c)
                    i += 1
                continue
            if in_str is not None:
                cur_code.append(" ")  # blank out literal contents
                if c == "\\":
                    i += 2
                    continue
                if c == in_str:
                    in_str = None
                i += 1
                continue
            if c == "/" and nxt == "/":
                in_line = True
                i += 2
                continue
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                in_str = c
                cur_code.append(c)
                i += 1
                continue
            cur_code.append(c)
            i += 1
        if cur_code or cur_comment:
            code.append("".join(cur_code))
            comment.append("".join(cur_comment))
        self.code_lines = code
        self.comment_lines = comment

    def _collect_markers(self) -> None:
        pending: list[tuple[str, int]] = []  # markers waiting for a code line
        for lineno, (code, comment) in enumerate(
            zip(self.code_lines, self.comment_lines), start=1
        ):
            for match in EXPECT_RE.finditer(comment):
                self.expected_rules.add(match.group(1))
            line_markers: list[str] = []
            for match in MARKER_RE.finditer(comment):
                kind, why = match.group(1), match.group(2).strip()
                if not why:
                    self.marker_errors.append(
                        Finding(
                            "M1",
                            self.rel,
                            lineno,
                            f"cup-lint marker '{kind}' needs a justification "
                            "inside the parentheses",
                        )
                    )
                    continue
                line_markers.append(kind)
            if not line_markers:
                continue
            if code.strip():
                for kind in line_markers:
                    self.markers.setdefault(kind, set()).add(lineno)
            else:
                for kind in line_markers:
                    pending.append((kind, lineno))
                continue
        # A marker on a comment-only line covers the next code line.
        if pending:
            for kind, marker_line in pending:
                for lineno in range(marker_line + 1, len(self.code_lines) + 1):
                    if self.code_lines[lineno - 1].strip():
                        self.markers.setdefault(kind, set()).add(lineno)
                        break

    def allowlisted(self, kind: str, lineno: int) -> bool:
        return lineno in self.markers.get(kind, set())

    @property
    def code_text(self) -> str:
        return "\n".join(self.code_lines)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# --------------------------------------------------------------- parsing ---


def extract_block(text: str, head_re: re.Pattern[str]) -> tuple[str, int] | None:
    """Body of the first `head { ... }` block, with the body's start offset."""
    match = head_re.search(text)
    if match is None:
        return None
    brace = text.find("{", match.end() - 1)
    if brace < 0:
        return None
    depth = 0
    for i in range(brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[brace + 1 : i], brace + 1
    return None


FIELD_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:=[^;,]*|\{[^;]*\})?\s*;\s*$")


def struct_fields(
    source: SourceFile, struct_name: str
) -> list[tuple[str, int]] | None:
    """(field, lineno) pairs for `struct <name>`; None when not declared."""
    text = source.code_text
    block = extract_block(
        text, re.compile(r"\bstruct\s+" + struct_name + r"\s*\{")
    )
    if block is None:
        return None
    body, offset = block
    fields: list[tuple[str, int]] = []
    # Walk the body statement-by-statement at brace depth 0 so method
    # bodies and nested types contribute nothing.
    depth = 0
    for rel_line, raw in enumerate(body.split("\n")):
        line = raw.strip()
        opens, closes = raw.count("{"), raw.count("}")
        at_top = depth == 0
        depth += opens - closes
        if not at_top or not line:
            continue
        if "(" in line or line.startswith(
            ("using ", "friend ", "static ", "typedef ", "struct ", "enum ")
        ):
            continue
        match = FIELD_RE.search(line)
        if match is None:
            continue
        fields.append(
            (match.group(1), line_of(text, offset) + rel_line)
        )
    return fields


def function_body(
    files: list[SourceFile], head_pattern: str
) -> tuple[SourceFile, str] | None:
    head_re = re.compile(head_pattern)
    for source in files:
        block = extract_block(source.code_text, head_re)
        if block is not None:
            return source, block[0]
    return None


def find_struct(
    files: list[SourceFile], name: str
) -> tuple[SourceFile, list[tuple[str, int]]] | None:
    for source in files:
        fields = struct_fields(source, name)
        if fields is not None:
            return source, fields
    return None


# ----------------------------------------------------------------- rules ---


def unordered_variables(files: list[SourceFile]) -> set[str]:
    """Names declared with an unordered container type anywhere in scope."""
    decl_re = re.compile(
        r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*\n?\s*"
        r"([A-Za-z_]\w*)\s*(?:;|=|\{)",
        re.S,
    )
    names: set[str] = set()
    for source in files:
        for match in decl_re.finditer(source.code_text):
            names.add(match.group(1))
    return names


def check_r1(
    source: SourceFile, unordered_names: set[str], findings: list[Finding]
) -> None:
    text = source.code_text
    for_re = re.compile(r"\bfor\s*\(([^;()]*?):([^;]*?)\)\s*\{?", re.S)
    for match in for_re.finditer(text):
        range_expr = match.group(2).strip()
        lineno = line_of(text, match.start())
        base = re.match(r"[A-Za-z_]\w*", range_expr)
        hits_unordered = "unordered_" in range_expr or (
            base is not None and base.group(0) in unordered_names
        )
        # `x.second`, `view.members()` etc.: also resolve one member hop.
        if not hits_unordered:
            member = re.match(r"[A-Za-z_]\w*(?:\.|->)([A-Za-z_]\w*)", range_expr)
            hits_unordered = (
                member is not None and member.group(1) in unordered_names
            )
        if not hits_unordered:
            continue
        if source.allowlisted("ordered-ok", lineno):
            continue
        findings.append(
            Finding(
                "R1",
                source.rel,
                lineno,
                f"iteration over unordered container '{range_expr}' in a "
                "digest-path module; hash-table order is not replayable "
                "(use an ordered container or justify with "
                "// cup-lint: ordered-ok(...))",
            )
        )


def check_r2(source: SourceFile, findings: list[Finding]) -> None:
    if source.rel in RNG_ALLOWED_FILES:
        return
    for lineno, code in enumerate(source.code_lines, start=1):
        for pattern, label in R2_PATTERNS:
            if pattern.search(code) is None:
                continue
            if source.allowlisted("rng-ok", lineno):
                continue
            findings.append(
                Finding(
                    "R2",
                    source.rel,
                    lineno,
                    f"nondeterministic source: {label}; all randomness must "
                    "flow through sim::Rng (or justify with "
                    "// cup-lint: rng-ok(...))",
                )
            )


def check_r3(files: list[SourceFile], findings: list[Finding]) -> None:
    report = find_struct(files, "RunReport")
    if report is not None:
        source, fields = report
        digest = function_body(
            files, r"RunReport\s*::\s*digest\s*\(\s*\)\s*const"
        )
        if digest is None:
            findings.append(
                Finding(
                    "R3",
                    source.rel,
                    1,
                    "struct RunReport is declared but RunReport::digest() "
                    "was not found in the scanned set",
                )
            )
        else:
            digest_tokens = set(re.findall(r"[A-Za-z_]\w*", digest[1]))
            for name, lineno in fields:
                hashed = name in digest_tokens
                excluded = source.allowlisted("digest-excluded", lineno)
                # Obs clause: observability state (any obs:: typed field)
                # must never enter the digest — wall times and metric
                # placement vary run to run, and hashing them would break
                # the bit-replay contract the layer is built around.
                declaration = source.code_lines[lineno - 1]
                if "obs::" in declaration:
                    if hashed:
                        findings.append(
                            Finding(
                                "R3",
                                source.rel,
                                lineno,
                                f"RunReport::{name} is observability state "
                                "(obs::) serialized by digest() — "
                                "observability state must never enter the "
                                "digest",
                            )
                        )
                        continue
                    if not excluded:
                        findings.append(
                            Finding(
                                "R3",
                                source.rel,
                                lineno,
                                f"RunReport::{name} is observability state "
                                "(obs::): mark it // cup-lint: "
                                "digest-excluded(<why>) to record the "
                                "contract",
                            )
                        )
                    continue
                if hashed and excluded:
                    findings.append(
                        Finding(
                            "R3",
                            source.rel,
                            lineno,
                            f"RunReport::{name} is serialized by digest() but "
                            "marked digest-excluded — contradiction",
                        )
                    )
                elif not hashed and not excluded:
                    findings.append(
                        Finding(
                            "R3",
                            source.rel,
                            lineno,
                            f"RunReport::{name} is unclassified: hash it in "
                            "digest() or mark it "
                            "// cup-lint: digest-excluded(<why>)",
                        )
                    )
    record = find_struct(files, "RunRecord")
    if record is not None:
        source, fields = record
        for fn, label in (
            (r"\bruns_csv\s*\(\s*\)\s*const", "runs_csv()"),
            (r"\bto_json\s*\(\s*\)\s*const", "to_json()"),
        ):
            body = function_body(files, fn)
            if body is None:
                findings.append(
                    Finding(
                        "R3",
                        source.rel,
                        1,
                        f"struct RunRecord is declared but {label} was not "
                        "found in the scanned set",
                    )
                )
                continue
            emitted = set(re.findall(r"[A-Za-z_]\w*", body[1]))
            for name, lineno in fields:
                if name not in emitted:
                    findings.append(
                        Finding(
                            "R3",
                            source.rel,
                            lineno,
                            f"RunRecord::{name} does not round-trip: it is "
                            f"missing from BatchReport::{label}",
                        )
                    )


def check_r4(source: SourceFile, findings: list[Finding]) -> None:
    if any(source.rel.startswith(p) for p in CAST_ALLOWED_PREFIXES):
        return
    for lineno, code in enumerate(source.code_lines, start=1):
        if "reinterpret_cast" not in code:
            continue
        if source.allowlisted("cast-ok", lineno):
            continue
        findings.append(
            Finding(
                "R4",
                source.rel,
                lineno,
                "reinterpret_cast outside the audited codec/ + run_arena "
                "allowlist (use memcpy/std::launder, or justify with "
                "// cup-lint: cast-ok(...))",
            )
        )


def lint(
    files: list[SourceFile], digest_modules: set[str] | None
) -> list[Finding]:
    """All findings over `files`. `digest_modules` = None treats every file
    as digest-path (the self-test mode); otherwise only listed files get R1.
    """
    findings: list[Finding] = []
    unordered_names = unordered_variables(files)
    for source in files:
        findings.extend(source.marker_errors)
        if digest_modules is None or source.rel in digest_modules:
            check_r1(source, unordered_names, findings)
        check_r2(source, findings)
        check_r4(source, findings)
    check_r3(files, findings)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings


# ---------------------------------------------------------------- report ---


def container_inventory(files: list[SourceFile]) -> list[dict[str, Any]]:
    """Every container declaration in the digest-path modules."""
    spellings: list[tuple[str, bool]] = [(t, True) for t in ORDERED_CONTAINERS]
    spellings += [(f"std::{t}", False) for t in UNORDERED_TYPES]
    spellings += [(f"std::pmr::{t}", False) for t in UNORDERED_TYPES]
    # `(` is accepted as an initializer so the parallel kernel's pre-sized
    # slot vectors — `std::vector<T> slots(n);`, the index-addressed form
    # the WorkPool determinism contract requires — are inventoried too.
    decl_res = [
        (
            re.compile(
                re.escape(spelling)
                + r"\s*<[^;]*?>\s*\n?\s*([A-Za-z_]\w*)\s*(?:;|=|\{|\()",
                re.S,
            ),
            spelling,
            ordered,
        )
        for spelling, ordered in spellings
    ]
    # Ordered aliases that appear without template arguments. IdSet is a
    # sorted FlatSet; MsgHistogram is a std::array indexed by MsgType — both
    # iterate in a replayable order by construction.
    decl_res += [
        (
            re.compile(r"\bIdSet\s+([A-Za-z_]\w*)\s*(?:;|=|\{)"),
            "IdSet",
            True,
        ),
        (
            re.compile(
                r"\bMsgHistogram\s+([A-Za-z_]\w*)\s*(?:;|=|\{)"
            ),
            "MsgHistogram (std::array)",
            True,
        ),
    ]
    rows: list[dict[str, Any]] = []
    seen: set[tuple[str, int, str]] = set()
    for source in files:
        text = source.code_text
        for decl_re, spelling, ordered in decl_res:
            for match in decl_re.finditer(text):
                name = match.group(1)
                lineno = line_of(text, match.start())
                key = (source.rel, lineno, name)
                if key in seen:
                    continue
                seen.add(key)
                rows.append(
                    {
                        "file": source.rel,
                        "line": lineno,
                        "name": name,
                        "type": spelling,
                        "ordered": ordered,
                        "allowlisted": source.allowlisted(
                            "ordered-ok", lineno
                        ),
                    }
                )
    rows.sort(key=lambda r: (r["file"], r["line"], r["name"]))
    return rows


def render_report(files: list[SourceFile]) -> str:
    payload = {
        "version": 1,
        "digest_path_modules": list(DIGEST_PATH_MODULES),
        "containers": container_inventory(
            [f for f in files if f.rel in DIGEST_PATH_MODULES]
        ),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# -------------------------------------------------------------- self-test ---


def self_test(corpus: Path) -> int:
    """Each *.bad.* fixture must fire exactly its expected rule set; each
    *.good.* twin must be clean. Fixture expectations are `cup-lint-expect:`
    comment lines inside the bad file."""
    failures: list[str] = []
    fixtures = sorted(
        p
        for p in corpus.iterdir()
        if p.suffix in (".cpp", ".hpp") and (".bad." in p.name or ".good." in p.name)
    )
    if not fixtures:
        print(f"self-test: no fixtures found under {corpus}", file=sys.stderr)
        return 2
    for path in fixtures:
        source = SourceFile(path, path.name)
        findings = lint([source], digest_modules=None)
        fired = {f.rule for f in findings}
        if ".bad." in path.name:
            expected = source.expected_rules
            if not expected:
                failures.append(
                    f"{path.name}: bad fixture declares no cup-lint-expect"
                )
            elif fired != expected:
                failures.append(
                    f"{path.name}: expected rules {sorted(expected)}, "
                    f"fired {sorted(fired)}"
                )
                for finding in findings:
                    print(f"  {finding}")
        else:
            if findings:
                failures.append(
                    f"{path.name}: good fixture should be clean, fired "
                    f"{sorted(fired)}"
                )
                for finding in findings:
                    print(f"  {finding}")
    checked = len(fixtures)
    if failures:
        print(f"self-test: {len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"self-test: all {checked} fixtures behaved as expected")
    return 0


# ------------------------------------------------------------------ main ---


def load_sources(root: Path) -> list[SourceFile]:
    files: list[SourceFile] = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix in (".hpp", ".cpp", ".h", ".cc"):
            files.append(SourceFile(path, path.relative_to(root).as_posix()))
    return files


def main() -> int:
    parser = argparse.ArgumentParser(
        description="repo-specific determinism linter (see module docstring)"
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root containing src/ (default: cwd)",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="write the digest-path container inventory JSON to FILE",
    )
    parser.add_argument(
        "--check-report",
        metavar="FILE",
        help="fail when FILE differs from the freshly generated inventory",
    )
    parser.add_argument(
        "--self-test",
        metavar="DIR",
        help="run the fixture corpus under DIR instead of linting src/",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test(Path(args.self_test))

    root = Path(args.root)
    if not (root / "src").is_dir():
        print(f"error: {root}/src is not a directory", file=sys.stderr)
        return 2
    files = load_sources(root)

    if args.report or args.check_report:
        report = render_report(files)
        if args.report:
            Path(args.report).write_text(report, encoding="utf-8")
            print(f"report: wrote {args.report}")
        if args.check_report:
            on_disk = Path(args.check_report).read_text(encoding="utf-8")
            if on_disk != report:
                print(
                    f"error: {args.check_report} is stale — regenerate with "
                    f"cup_lint.py --report {args.check_report} and review the "
                    "diff (a new container on a digest-feeding path needs "
                    "eyes)",
                    file=sys.stderr,
                )
                return 1
            print(f"report: {args.check_report} is current")

    findings = lint(files, digest_modules=set(DIGEST_PATH_MODULES))
    for finding in findings:
        print(finding)
    if findings:
        print(f"\ncup_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"cup_lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

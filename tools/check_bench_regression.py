#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh bench run against a checked-in
BENCH_*.json baseline and fail when throughput dropped beyond tolerance.

Rows are matched on their identity fields (workload / strategy / n / mode /
threads); rows carrying `"gate": false` are reported but never enforced. The
compared metric is chosen per row:

  * speedup_vs_cold / speedup_vs_fresh — preferred when present
    (bench_membership, bench_runengine): both sides of the ratio were
    measured on the *same* machine, so the number is robust to
    runner-speed differences between the baseline machine and CI.
    Compared as-is.
  * events_per_sec / evals_per_sec — absolute throughput otherwise
    (bench_simcore). Absolute numbers are machine-dependent, so each value
    is normalized by the geometric mean of its file's gated absolute rows
    before comparison: a uniformly slower CI runner cancels out, while one
    workload regressing relative to the others still trips the gate. (A
    perfectly uniform global slowdown is indistinguishable from a slower
    machine and is deliberately not flagged.)

Rows may additionally carry `parallel_speedup` (bench_scale's threads axis:
serial seconds / threaded seconds, same-machine ratio). It is checked on
top of the row's primary metric, under its own --parallel-tolerance: the
recorded baseline may come from a single-core machine where every speedup
sits near 1.0, so the gate only needs to catch the kernel *losing* ground
(a serialization bug or new contention), not to demand scaling the runner
cannot exhibit. Rows recorded with `host_cpus` <= 1 skip the
parallel_speedup gate entirely (reported as info): a 1-core recording's
oversubscription ratios are hardware artifacts, and comparing them against
a multi-core runner gates on the machines, not the kernel. Rows without
`host_cpus` (pre-recording baselines) keep the old enforced behavior.

Usage:
  check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.30]
      [--parallel-tolerance 0.35]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any

Row = dict[str, Any]
RowKey = tuple[tuple[str, Any], ...]

IDENTITY_KEYS = ("workload", "strategy", "n", "mode", "threads")
RATIO_METRICS = ("speedup_vs_cold", "speedup_vs_fresh", "speedup_vs_scalar")
ABSOLUTE_METRICS = ("events_per_sec", "evals_per_sec")
# Secondary per-row metric, checked in addition to the primary one above.
PARALLEL_METRIC = "parallel_speedup"


def row_key(row: Row) -> RowKey:
    return tuple((k, row[k]) for k in IDENTITY_KEYS if k in row)


def metric_for(row: Row) -> str | None:
    for metric in RATIO_METRICS + ABSOLUTE_METRICS:
        if metric in row:
            return metric
    return None


def geomean(values: list[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 1.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def normalizer(rows: list[Row]) -> float:
    """Geometric mean of the gated absolute-metric values of one file.

    Rows running more than one thread are excluded: their throughput
    relative to the serial rows legitimately swings with the runner's core
    count (a 1-core recording machine pins them below serial, a multi-core
    CI runner lifts them above), and letting them into the geomean would
    shift every other row's normalized value with the hardware rather than
    with the code.
    """
    values: list[float] = []
    for row in rows:
        if row.get("gate", True) is False:
            continue
        if int(row.get("threads", 1)) > 1:
            continue
        metric = metric_for(row)
        if metric in ABSOLUTE_METRICS:
            values.append(float(row[metric]))
    return geomean(values)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum allowed fractional drop vs baseline (default 0.30)",
    )
    parser.add_argument(
        "--parallel-tolerance",
        type=float,
        default=0.35,
        help="maximum allowed fractional drop of parallel_speedup vs "
        "baseline (default 0.35)",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline_rows = json.load(f).get("results", [])
    with open(args.current) as f:
        current_rows_list = json.load(f).get("results", [])

    current_rows: dict[RowKey, Row] = {row_key(r): r for r in current_rows_list}
    base_norm = normalizer(baseline_rows)
    cur_norm = normalizer(current_rows_list)

    failures: list[str] = []
    checked = 0
    for base_row in baseline_rows:
        metric = metric_for(base_row)
        if metric is None:
            continue
        enforced = base_row.get("gate", True) is not False
        cur_row = current_rows.get(row_key(base_row))
        label = "/".join(str(base_row.get(k, "")) for k in IDENTITY_KEYS)
        if cur_row is None:
            if enforced:
                failures.append(f"missing row in current run: {label}")
            continue
        base_value = float(base_row[metric])
        cur_value = float(cur_row.get(metric, 0.0))
        if metric in ABSOLUTE_METRICS:
            base_value /= base_norm
            cur_value /= cur_norm
            shown_metric = f"{metric} (geomean-normalized)"
        else:
            shown_metric = metric
        if base_value <= 0:
            continue
        floor = base_value * (1.0 - args.tolerance)
        regressed = cur_value < floor
        if enforced:
            checked += 1
            status = "REGRESSION" if regressed else "ok"
        else:
            status = "info"
        print(
            f"{status:10s} {label:45s} {shown_metric}: "
            f"baseline={base_value:.3f} current={cur_value:.3f} "
            f"(floor={floor:.3f})"
        )
        if enforced and regressed:
            failures.append(
                f"{label}: {shown_metric} {cur_value:.3f} < floor "
                f"{floor:.3f} (baseline {base_value:.3f}, tolerance "
                f"{args.tolerance:.0%})"
            )

        # Secondary check: the intra-run parallel speedup ratio, where both
        # baseline and current carry it. Ratios are same-machine, so they
        # compare as-is; its own tolerance because recorded values may come
        # from hardware that cannot scale (see module docstring).
        par_base = float(base_row.get(PARALLEL_METRIC, 0.0))
        par_cur_raw = cur_row.get(PARALLEL_METRIC)
        if par_base > 0 and par_cur_raw is not None:
            par_cur = float(par_cur_raw)
            par_floor = par_base * (1.0 - args.parallel_tolerance)
            par_regressed = par_cur < par_floor
            # A baseline recorded on a single-core host cannot exhibit
            # scaling; its speedup rows are machine artifacts, so the gate
            # is informational there (see module docstring).
            baseline_host_cpus = base_row.get("host_cpus")
            single_core_baseline = (
                baseline_host_cpus is not None
                and int(baseline_host_cpus) <= 1
            )
            if single_core_baseline:
                par_status = "info"
                print(
                    f"{par_status:10s} {label:45s} {PARALLEL_METRIC}: "
                    f"baseline={par_base:.3f} current={par_cur:.3f} "
                    f"(single-core baseline; gate skipped)"
                )
                continue
            if enforced:
                checked += 1
                par_status = "REGRESSION" if par_regressed else "ok"
            else:
                par_status = "info"
            print(
                f"{par_status:10s} {label:45s} {PARALLEL_METRIC}: "
                f"baseline={par_base:.3f} current={par_cur:.3f} "
                f"(floor={par_floor:.3f})"
            )
            if enforced and par_regressed:
                failures.append(
                    f"{label}: {PARALLEL_METRIC} {par_cur:.3f} < floor "
                    f"{par_floor:.3f} (baseline {par_base:.3f}, tolerance "
                    f"{args.parallel_tolerance:.0%})"
                )

    if checked == 0:
        print("error: no gated rows found", file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {checked} gated rows within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// cup_explore — the adversary-explorer command line.
//
// Modes:
//   cup_explore [options]               coverage-guided exploration
//   cup_explore --replay '<line>'       replay a one-line genome artifact
//   cup_explore --scenario NAME [--seed N]
//                                       replay a registry scenario by name
//   cup_explore --digests TAG [--seed N] [--parallel-eval N]
//                                       one `name digest` line per registry
//                                       scenario carrying TAG (repeatable).
//                                       The CI parallel-determinism gate
//                                       diffs this output across
//                                       --parallel-eval settings: any
//                                       difference is a determinism bug.
//   cup_explore --smoke                 CI gate: fixed tiny budget; asserts
//                                       the planted bridge-hiding family is
//                                       rediscovered and every finding
//                                       shrinks to a 1-minimal fixpoint
//   cup_explore --wire-smoke            CI gate: every wire/* registry
//                                       scenario keeps safety under its
//                                       hostile wire, and the planted
//                                       wire-safety violation (naive mode
//                                       tipped by frame mutation) is
//                                       rediscovered and shrunk
//
// Exploration options:
//   --master-seed N    (default 1)      --generations N   (default 6)
//   --population N     (default 32)     --threads N       (default hw)
//   --max-findings N   per kind         --no-shrink
//   --corpus-out FILE  --findings-out FILE
//
// Every run the explorer reports is a deterministic (genome, seed) pair;
// the printed line IS the artifact. Feed it back through --replay to get
// the identical verdict and digest, on any machine.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "explore/explorer.hpp"

namespace {

using namespace bftcup;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--master-seed N] [--generations N] "
               "[--population N]\n"
               "          [--threads N] [--max-findings N] [--no-shrink]\n"
               "          [--corpus-out FILE] [--findings-out FILE]\n"
               "       %s --replay '<genome line>'\n"
               "       %s --scenario NAME [--seed N]\n"
               "       %s --digests TAG [--seed N] [--parallel-eval N]\n"
               "       %s --smoke\n"
               "       %s --wire-smoke\n",
               argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

void print_report(const explore::Genome& genome, const cup::RunReport& report) {
  std::printf("verdict   %s\n", report.verdict().c_str());
  std::printf("digest    %s\n", report.digest().c_str());
  std::printf("coverage  %s\n", explore::coverage_signature(report).c_str());
  std::printf("requirements %s\n",
              explore::requirements_satisfied(genome) ? "SATISFIED"
                                                      : "NOT-SATISFIED");
  std::printf("line      %s\n", genome.to_line().c_str());
}

int replay(const std::string& line) {
  const auto genome = explore::Genome::parse_line(line);
  if (!genome) {
    std::fprintf(stderr, "cup_explore: malformed genome line\n");
    return 2;
  }
  if (!genome->valid()) {
    std::fprintf(stderr, "cup_explore: genome fails scenario validation\n");
    return 2;
  }
  print_report(*genome, cup::run_scenario(genome->to_builder().build()));
  return 0;
}

/// One `name digest` line per registry scenario carrying any of `tags`.
/// Digests must be invariant under `parallel_eval` (the WorkPool contract);
/// the CI gate runs this at two thread counts and diffs the outputs.
int digests_for_tags(const std::vector<std::string>& tags, std::uint64_t seed,
                     std::size_t parallel_eval) {
  const auto& registry = cup::ScenarioRegistry::paper();
  std::vector<std::string> names;
  for (const std::string& tag : tags) {
    for (std::string& name : registry.names_with_tag(tag)) {
      names.push_back(std::move(name));
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "cup_explore: no registry scenario carries the "
                         "requested tag(s)\n");
    return 2;
  }
  for (const std::string& name : names) {
    const cup::RunReport report = cup::run_scenario(
        registry.builder(name, seed).parallel_eval(parallel_eval).build());
    std::printf("%s %s\n", name.c_str(), report.digest().c_str());
  }
  return 0;
}

int run_scenario_by_name(const std::string& name, std::uint64_t seed) {
  const auto& registry = cup::ScenarioRegistry::paper();
  if (!registry.contains(name)) {
    std::fprintf(stderr, "cup_explore: unknown scenario \"%s\"\n",
                 name.c_str());
    return 2;
  }
  const cup::RunReport report = registry.run(name, seed);
  std::printf("scenario  %s (seed %llu)\n", name.c_str(),
              static_cast<unsigned long long>(seed));
  std::printf("verdict   %s\n", report.verdict().c_str());
  std::printf("digest    %s\n", report.digest().c_str());
  return 0;
}

void print_result(const explore::ExploreResult& result) {
  std::printf("runs executed     %llu\n",
              static_cast<unsigned long long>(result.runs));
  std::printf("corpus entries    %zu\n", result.corpus.size());
  std::printf("findings          %zu\n", result.findings.size());
  std::printf("result digest     %s\n\n", result.digest().c_str());
  for (const explore::Finding& finding : result.findings) {
    std::printf("[%s] %s  %s%s\n", to_string(finding.kind),
                finding.name.c_str(), finding.verdict.c_str(),
                finding.shrunk_to_fixpoint ? "" : "  (shrink budget hit)");
    std::printf("  digest %s\n", finding.digest.c_str());
    std::printf("  %s\n", finding.genome.to_line().c_str());
  }
}

bool write_lines(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cup_explore: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

int smoke(explore::ExplorerOptions options) {
  // Smoke defaults differ from the explorer's: a tighter finding cap and
  // shrink budget keep the gate under a minute. Flags the user passed
  // explicitly win (a field still at its global default gets the smoke
  // value; overriding WITH the default is indistinguishable and harmless).
  const explore::ExplorerOptions defaults;
  if (options.max_findings_per_kind == defaults.max_findings_per_kind) {
    options.max_findings_per_kind = 2;
  }
  if (options.shrinker.max_runs == defaults.shrinker.max_runs) {
    options.shrinker.max_runs = 300;
  }

  // Focused seed pair: benign Fig. 4a plus the fake-PD plant advertising
  // the TRUE PD — the known-bad bridge-hiding attack (registered as
  // fig4a/bridge-hiding-attack) is one member-hiding mutation away. The
  // smoke asserts the loop walks there and shrinks what it finds.
  std::vector<explore::Genome> seeds;
  for (const explore::Genome& seed : explore::Explorer::default_seeds()) {
    if (seed.mode == cup::Mode::kCupft) seeds.push_back(seed);
  }
  const explore::ExploreResult result =
      explore::Explorer(options).explore(seeds);

  // The planted known-bad: from the benign fig4a fake-PD seed, one
  // member-hiding mutation reaches the bridge-hiding agreement violation.
  bool rediscovered = false;
  bool all_fixpoints = true;
  for (const explore::Finding& finding : result.findings) {
    if (finding.kind == explore::FindingKind::kAgreement &&
        finding.requirements_satisfied &&
        finding.genome.mode == cup::Mode::kCupft &&
        finding.genome.byz == cup::ByzBehavior::kFakePd) {
      rediscovered = true;
    }
    all_fixpoints = all_fixpoints && finding.shrunk_to_fixpoint;
  }
  print_result(result);
  if (!rediscovered) {
    std::fprintf(stderr,
                 "SMOKE FAIL: no agreement violation rediscovered from the "
                 "planted fig4a fake-PD seed\n");
    return 1;
  }
  if (options.shrink && !all_fixpoints) {
    std::fprintf(stderr,
                 "SMOKE FAIL: a finding did not shrink to a fixpoint within "
                 "the budget\n");
    return 1;
  }
  std::printf("SMOKE OK: %zu findings%s, agreement violation rediscovered\n",
              result.findings.size(),
              options.shrink ? ", all 1-minimal" : " (shrinking disabled)");
  return 0;
}

/// The planted hostile-wire counterexample for --wire-smoke: the naive
/// protocol on a two-bridge split topology at a seed whose reliable-channel
/// run keeps safety (NO-TERMINATION), while a 25% all-kinds frame-mutation
/// wire tips it into an agreement split — the oracle must attribute the
/// break to the wire (kWireSafety) because the wire-off replay is clean.
constexpr const char* kWirePlantLine =
    "v=1.2.3.4.5.6.7.8|e=1>2;1>3;1>4;2>1;2>3;2>4;3>1;3>2;3>4;3>6;4>1;4>2;"
    "4>3;4>5;5>4;5>6;5>7;5>8;6>3;6>5;6>7;6>8;7>5;7>6;7>8;8>5;8>6;8>7|f=1|"
    "mode=naive|byz=silent|faulty=|fpd=|tl=|gst=0|delta=10|hz=300000|"
    "seed=16|cg=0|wm=250:63:2047";

int wire_smoke(explore::ExplorerOptions options) {
  // Gate 1 — no forgeries: every wire/* registry scenario runs a sound
  // protocol mode under an active hostile wire; agreement and validity
  // must survive at both sweep seeds. A failure here means a mutated or
  // spliced frame made it past the decode chain or the Verifier.
  const auto& registry = cup::ScenarioRegistry::paper();
  const std::vector<std::string> wire_names = registry.names_with_tag("wire");
  if (wire_names.empty()) {
    std::fprintf(stderr, "WIRE-SMOKE FAIL: no wire/* registry scenarios\n");
    return 1;
  }
  for (const std::string& name : wire_names) {
    for (std::uint64_t seed : {options.master_seed, options.master_seed + 6}) {
      const cup::RunReport report = registry.run(name, seed);
      std::printf("%-24s seed=%llu  %-20s mutated=%llu rejected=%llu "
                  "lost=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(seed),
                  report.verdict().c_str(),
                  static_cast<unsigned long long>(report.frames_mutated),
                  static_cast<unsigned long long>(report.frames_rejected),
                  static_cast<unsigned long long>(report.frames_lost));
      if (!report.agreement || !report.validity) {
        std::fprintf(stderr,
                     "WIRE-SMOKE FAIL: %s seed=%llu broke safety under the "
                     "hostile wire (%s)\n",
                     name.c_str(), static_cast<unsigned long long>(seed),
                     report.verdict().c_str());
        return 1;
      }
    }
  }

  // Gate 2 — the planted wire-safety finding is rediscovered and shrinks.
  const explore::ExplorerOptions defaults;
  if (options.generations == defaults.generations) options.generations = 2;
  if (options.population == defaults.population) options.population = 16;
  if (options.max_findings_per_kind == defaults.max_findings_per_kind) {
    options.max_findings_per_kind = 2;
  }
  if (options.shrinker.max_runs == defaults.shrinker.max_runs) {
    options.shrinker.max_runs = 400;
  }
  const auto plant = explore::Genome::parse_line(kWirePlantLine);
  if (!plant || !plant->valid()) {
    std::fprintf(stderr, "WIRE-SMOKE FAIL: planted genome line invalid\n");
    return 1;
  }
  const explore::ExploreResult result =
      explore::Explorer(options).explore({*plant});
  print_result(result);

  bool rediscovered = false;
  bool all_fixpoints = true;
  for (const explore::Finding& finding : result.findings) {
    if (finding.kind != explore::FindingKind::kWireSafety) continue;
    // A wire-safety finding outside the deliberately unsound naive mode
    // would be a real decode/verification hole — exactly what gate 1
    // guards against, re-checked here on everything the explorer found.
    if (finding.genome.mode != cup::Mode::kNaive) {
      std::fprintf(stderr,
                   "WIRE-SMOKE FAIL: wire-safety finding in sound mode: %s\n",
                   finding.genome.to_line().c_str());
      return 1;
    }
    if (!finding.genome.wire_active()) {
      std::fprintf(stderr,
                   "WIRE-SMOKE FAIL: wire-safety finding shrank to a "
                   "wire-free genome: %s\n",
                   finding.genome.to_line().c_str());
      return 1;
    }
    rediscovered = true;
    all_fixpoints = all_fixpoints && finding.shrunk_to_fixpoint;
  }
  if (!rediscovered) {
    std::fprintf(stderr,
                 "WIRE-SMOKE FAIL: the planted wire-safety violation was "
                 "not rediscovered\n");
    return 1;
  }
  if (options.shrink && !all_fixpoints) {
    std::fprintf(stderr,
                 "WIRE-SMOKE FAIL: a wire-safety finding did not shrink to "
                 "a fixpoint within the budget\n");
    return 1;
  }
  std::printf("WIRE-SMOKE OK: %zu wire scenarios safe, wire-safety plant "
              "rediscovered%s\n",
              wire_names.size(),
              options.shrink ? " and 1-minimal" : " (shrinking disabled)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  explore::ExplorerOptions options;
  std::string corpus_out;
  std::string findings_out;
  std::string replay_line;
  std::string scenario_name;
  std::vector<std::string> digest_tags;
  std::uint64_t scenario_seed = 1;
  std::uint64_t parallel_eval = 0;
  bool want_smoke = false;
  bool want_wire_smoke = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](std::uint64_t& out) {
      if (i + 1 >= argc) return false;
      const char* s = argv[++i];
      char* end = nullptr;
      out = std::strtoull(s, &end, 10);
      // A typo'd number must be a usage error, not a silent zero.
      return *s != '\0' && end != nullptr && *end == '\0';
    };
    std::uint64_t value = 0;
    if (arg == "--smoke") {
      want_smoke = true;
    } else if (arg == "--wire-smoke") {
      want_wire_smoke = true;
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_line = argv[++i];
    } else if (arg == "--scenario" && i + 1 < argc) {
      scenario_name = argv[++i];
    } else if (arg == "--digests" && i + 1 < argc) {
      digest_tags.emplace_back(argv[++i]);
    } else if (arg == "--parallel-eval" && next_value(value)) {
      parallel_eval = value;
    } else if (arg == "--seed" && next_value(value)) {
      scenario_seed = value;
    } else if (arg == "--master-seed" && next_value(value)) {
      options.master_seed = value;
    } else if (arg == "--generations" && next_value(value)) {
      options.generations = value;
    } else if (arg == "--population" && next_value(value)) {
      options.population = value;
    } else if (arg == "--threads" && next_value(value)) {
      options.threads = value;
    } else if (arg == "--max-findings" && next_value(value)) {
      options.max_findings_per_kind = value;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--corpus-out" && i + 1 < argc) {
      corpus_out = argv[++i];
    } else if (arg == "--findings-out" && i + 1 < argc) {
      findings_out = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  if (want_smoke) return smoke(options);
  if (want_wire_smoke) return wire_smoke(options);
  if (!replay_line.empty()) return replay(replay_line);
  if (!digest_tags.empty()) {
    return digests_for_tags(digest_tags, scenario_seed, parallel_eval);
  }
  if (!scenario_name.empty()) {
    return run_scenario_by_name(scenario_name, scenario_seed);
  }

  const explore::ExploreResult result =
      explore::Explorer(options).explore(explore::Explorer::default_seeds());
  print_result(result);

  if (!corpus_out.empty()) {
    std::string text;
    for (const explore::CorpusEntry& entry : result.corpus) {
      text += entry.verdict + "\t" + entry.signature + "\t" +
              entry.genome.to_line() + "\n";
    }
    if (!write_lines(corpus_out, text)) return 2;
  }
  if (!findings_out.empty()) {
    std::string text;
    for (const explore::Finding& finding : result.findings) {
      text += finding.name + "\t" + to_string(finding.kind) + "\t" +
              finding.verdict + "\t" + finding.digest + "\t" +
              finding.genome.to_line() + "\n";
    }
    if (!write_lines(findings_out, text)) return 2;
  }
  return 0;
}

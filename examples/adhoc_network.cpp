// Self-organizing ad-hoc network (the setting CUP was born in, Cavin et al.):
// nodes join knowing only whoever they have already gossiped with, the
// network stabilizes late (high GST), and the fault threshold is known.
//
// Demonstrates the known-f pipeline on a randomly generated BFT-CUP topology
// with a Byzantine node inside the sink serving wrong decided values.
#include <cinttypes>
#include <cstdio>

#include "cup/scenario_registry.hpp"
#include "graph/osr.hpp"

int main() {
  using namespace bftcup;

  for (std::size_t f = 1; f <= 2; ++f) {
    // The registry's "adhoc" family: random BFT-CUP topology, wrong-value
    // Byzantine inside the sink, high GST (chaotic start-up).
    const cup::Scenario scenario = cup::ScenarioRegistry::paper().make(
        "adhoc/f" + std::to_string(f), 100 + f);

    const auto check = graph::check_bft_cup_requirements(
        scenario.graph, scenario.faulty, scenario.f);

    const auto report = cup::run_scenario(scenario);
    std::printf("f=%zu  n=%zu  requirements=%s  verdict=%s  latency=%" PRId64
                "  msgs=%" PRIu64 "\n",
                f, scenario.graph.vertex_count(),
                check.satisfied ? "ok" : "VIOLATED", report.verdict().c_str(),
                report.completion_time.value_or(-1), report.messages_sent);
    if (report.verdict() != "SOLVED") return 1;
  }
  return 0;
}

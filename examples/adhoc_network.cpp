// Self-organizing ad-hoc network (the setting CUP was born in, Cavin et al.):
// nodes join knowing only whoever they have already gossiped with, the
// network stabilizes late (high GST), and the fault threshold is known.
//
// Demonstrates the known-f pipeline on a randomly generated BFT-CUP topology
// with a Byzantine node inside the sink serving wrong decided values.
#include <cstdio>

#include "cup/runner.hpp"
#include "graph/generators.hpp"
#include "graph/osr.hpp"

int main() {
  using namespace bftcup;

  for (std::size_t f = 1; f <= 2; ++f) {
    Rng rng(17 * f + 1);
    graph::generators::BftCupParams params;
    params.f = f;
    params.sink_size = 2 * f + 1 + f;
    params.non_sink = 6;
    params.byzantine_in_sink = f;
    const auto sys = graph::generators::random_bft_cup(params, rng);

    const auto check =
        graph::check_bft_cup_requirements(sys.graph, sys.faulty, sys.f);

    cup::Scenario scenario;
    scenario.graph = sys.graph;
    scenario.f = sys.f;
    scenario.faulty = sys.faulty;
    scenario.byz = cup::ByzBehavior::kWrongValue;  // lies about the decision
    scenario.mode = cup::Mode::kAuth;
    scenario.sim.seed = 100 + f;
    scenario.sim.net.gst = 5'000;  // chaotic start-up phase
    scenario.sim.net.delta = 20;

    const auto report = cup::run_scenario(scenario);
    std::printf(
        "f=%zu  n=%zu  requirements=%s  verdict=%s  latency=%lld  msgs=%llu\n",
        f, sys.graph.vertex_count(), check.satisfied ? "ok" : "VIOLATED",
        report.verdict().c_str(),
        static_cast<long long>(report.completion_time.value_or(-1)),
        static_cast<unsigned long long>(report.messages_sent));
    if (report.verdict() != "SOLVED") return 1;
  }
  return 0;
}

// Scenario from the paper's motivation: a blockchain whose validator
// committee (the core) must be discoverable by light participants that only
// know a handful of peers — and *nobody* is told the fault threshold
// (the BFT-CUPFT model, Section VI).
//
// We build a committee of 5 validators (complete knowledge among them) and
// 8 light participants arranged in a gossip ring, each bootstrapping from 3
// validators. One validator is Byzantine and advertises a fake PD.
#include <cstdio>

#include "cup/runner.hpp"
#include "graph/extended_osr.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace bftcup;

  Rng rng(2024);
  graph::generators::CupftParams params;
  params.f = 1;
  params.core_size = 5;
  params.periphery = 8;
  params.byzantine_in_core = 1;
  const auto sys = graph::generators::random_cupft(params, rng);

  // Sanity: the generated topology satisfies the BFT-CUPFT requirements.
  const auto check =
      graph::check_bft_cupft_requirements(sys.graph, sys.faulty, sys.f);
  std::printf("BFT-CUPFT requirements: %s\n",
              check.satisfied ? "satisfied" : check.reason.c_str());

  cup::Scenario scenario;
  scenario.graph = sys.graph;
  scenario.faulty = sys.faulty;          // Byzantine validator
  scenario.byz = cup::ByzBehavior::kFakePd;
  scenario.mode = cup::Mode::kCupft;     // nobody knows f!
  scenario.sim.seed = 7;

  // Each participant proposes its preferred block hash (toy values).
  for (ProcessId id : sys.graph.vertices()) {
    scenario.proposals[id] = 0xb10c0000 + id.raw();
  }

  const auto report = cup::run_scenario(scenario);
  std::printf("verdict       : %s\n", report.verdict().c_str());
  std::printf("agreed block  : %#llx\n",
              static_cast<unsigned long long>(report.common_value.value_or(0)));

  std::printf("validator committee discovered by each participant:\n");
  for (const auto& [who, members] : report.memberships) {
    std::printf("  %-5s -> {", to_string(who).c_str());
    for (ProcessId m : members) std::printf(" %s", to_string(m).c_str());
    std::printf(" } at t=%lld\n",
                static_cast<long long>(report.membership_times.at(who)));
  }
  return report.verdict() == "SOLVED" ? 0 : 1;
}

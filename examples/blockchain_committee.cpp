// Scenario from the paper's motivation: a blockchain whose validator
// committee (the core) must be discoverable by light participants that only
// know a handful of peers — and *nobody* is told the fault threshold
// (the BFT-CUPFT model, Section VI).
//
// We build a committee of 5 validators (complete knowledge among them) and
// 8 light participants arranged in a gossip ring, each bootstrapping from 3
// validators. One validator is Byzantine and advertises a fake PD.
#include <cinttypes>
#include <cstdio>

#include "cup/scenario_registry.hpp"
#include "graph/extended_osr.hpp"

int main() {
  using namespace bftcup;

  // The registry entry builds the whole setup: 5-validator committee,
  // 8 light participants, one Byzantine validator with a fake PD, nobody
  // told f, block-hash proposals per participant.
  const cup::Scenario scenario =
      cup::ScenarioRegistry::paper().make("blockchain/committee", 7);

  // Sanity: the generated topology satisfies the BFT-CUPFT requirements.
  const auto check = graph::check_bft_cupft_requirements(
      scenario.graph, scenario.faulty, scenario.f);
  std::printf("BFT-CUPFT requirements: %s\n",
              check.satisfied ? "satisfied" : check.reason.c_str());

  const auto report = cup::run_scenario(scenario);

  std::printf("verdict       : %s\n", report.verdict().c_str());
  std::printf("agreed block  : %#" PRIx64 "\n",
              report.common_value.value_or(0));

  std::printf("validator committee discovered by each participant:\n");
  for (const auto& [who, members] : report.memberships) {
    std::printf("  %-5s -> {", to_string(who).c_str());
    for (ProcessId m : members) std::printf(" %s", to_string(m).c_str());
    std::printf(" } at t=%" PRId64 "\n", report.membership_times.at(who));
  }
  return report.verdict() == "SOLVED" ? 0 : 1;
}

// Quickstart: solve consensus on the paper's Fig. 1b graph.
//
// Eight participants join a network knowing only a few peers each
// (participant 1 knows {2,3,4}, ...). Participant 4 is Byzantine and stays
// silent. Everyone knows the fault threshold f = 1 (the authenticated
// BFT-CUP model, Section III). Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "cup/runner.hpp"
#include "graph/figures.hpp"
#include "graph/graphio.hpp"

int main() {
  using namespace bftcup;

  const auto fig = graph::figures::fig1b();
  std::printf("Knowledge connectivity graph (Fig. 1b):\n%s\n",
              graph::io::to_dot(fig.graph, fig.faulty).c_str());

  cup::Scenario scenario;
  scenario.graph = fig.graph;
  scenario.f = fig.f;            // every process is told f = 1
  scenario.faulty = fig.faulty;  // participant 4 stays silent
  scenario.mode = cup::Mode::kAuth;
  scenario.sim.seed = 42;

  const cup::RunReport report = cup::run_scenario(scenario);

  std::printf("verdict        : %s\n", report.verdict().c_str());
  std::printf("decided value  : %llu\n",
              static_cast<unsigned long long>(report.common_value.value_or(0)));
  std::printf("decision time  : %lld ticks\n",
              static_cast<long long>(report.completion_time.value_or(-1)));
  std::printf("messages sent  : %llu (%llu bytes)\n",
              static_cast<unsigned long long>(report.messages_sent),
              static_cast<unsigned long long>(report.bytes_sent));
  for (const auto& [who, members] : report.memberships) {
    std::printf("%s discovered the sink {", to_string(who).c_str());
    for (ProcessId m : members) std::printf(" %s", to_string(m).c_str());
    std::printf(" }\n");
  }
  return report.verdict() == "SOLVED" ? 0 : 1;
}

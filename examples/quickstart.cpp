// Quickstart: solve consensus on the paper's Fig. 1b graph.
//
// Eight participants join a network knowing only a few peers each
// (participant 1 knows {2,3,4}, ...). Participant 4 is Byzantine and stays
// silent. Everyone knows the fault threshold f = 1 (the authenticated
// BFT-CUP model, Section III). Build & run:
//
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/quickstart
#include <cinttypes>
#include <cstdio>

#include "cup/scenario_registry.hpp"
#include "graph/graphio.hpp"

int main() {
  using namespace bftcup;

  // The registry entry carries the whole configuration: Fig. 1b's graph,
  // the silent Byzantine 4, and f = 1 told to every process (Mode::kAuth).
  const cup::Scenario scenario =
      cup::ScenarioRegistry::paper().make("quickstart/fig1b-auth", 42);

  std::printf("Knowledge connectivity graph (Fig. 1b):\n%s\n",
              graph::io::to_dot(scenario.graph, scenario.faulty).c_str());

  const cup::RunReport report = cup::run_scenario(scenario);

  std::printf("verdict        : %s\n", report.verdict().c_str());
  std::printf("decided value  : %" PRIu64 "\n",
              report.common_value.value_or(0));
  std::printf("decision time  : %" PRId64 " ticks\n",
              report.completion_time.value_or(-1));
  std::printf("messages sent  : %" PRIu64 " (%" PRIu64 " bytes)\n",
              report.messages_sent, report.bytes_sent);
  for (const auto& [who, members] : report.memberships) {
    std::printf("%s discovered the sink {", to_string(who).c_str());
    for (ProcessId m : members) std::printf(" %s", to_string(m).c_str());
    std::printf(" }\n");
  }
  return report.verdict() == "SOLVED" ? 0 : 1;
}

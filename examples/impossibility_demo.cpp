// Theorem 7, live: why BFT-CUP graphs are NOT enough when f is unknown.
//
// Runs the naive unknown-f protocol on the proof's three systems (all
// registry scenarios):
//   A  (Fig. 2a): {1..4}, 4 silent        -> decides v
//   B  (Fig. 2b): {5..8}, 5 silent        -> decides u
//   AB (Fig. 2c): all correct, bridge slow -> A-half decides v, B-half u:
//                                             AGREEMENT VIOLATED
// then the fixed BFT-CUPFT protocol on AB (waits — safety preserved) and on
// Fig. 4a (solves — the graph the extended model requires).
#include <cinttypes>
#include <cstdio>

#include "cup/scenario_registry.hpp"

namespace {

using namespace bftcup;

void print(const char* name, const cup::RunReport& r) {
  std::printf("%-28s -> %-19s", name, r.verdict().c_str());
  if (!r.decisions.empty()) {
    std::printf(" decisions:");
    for (const auto& [who, d] : r.decisions) {
      std::printf(" %s=%" PRIu64, to_string(who).c_str(), d.value);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const auto& registry = cup::ScenarioRegistry::paper();

  print("system A (naive)", registry.run("fig2/system-a-naive", 9));
  print("system B (naive)", registry.run("fig2/system-b-naive", 9));
  print("system AB (naive)", registry.run("fig2/system-ab-naive", 9));
  print("system AB (BFT-CUPFT)", registry.run("fig2/system-ab-cupft", 9));
  print("fig. 4a (BFT-CUPFT)", registry.run("fig4a/cupft-silent", 9));

  std::printf(
      "\nTakeaway: without f, BFT-CUP-grade knowledge lets disjoint groups\n"
      "decide independently; the extended (core-based) graphs of BFT-CUPFT\n"
      "restore safety, trading liveness on insufficient topologies.\n");
  return 0;
}

// Theorem 7, live: why BFT-CUP graphs are NOT enough when f is unknown.
//
// Runs the naive unknown-f protocol on the proof's three systems:
//   A  (Fig. 2a): {1..4}, 4 silent        -> decides v
//   B  (Fig. 2b): {5..8}, 5 silent        -> decides u
//   AB (Fig. 2c): all correct, bridge slow -> A-half decides v, B-half u:
//                                             AGREEMENT VIOLATED
// then the fixed BFT-CUPFT protocol on AB (waits — safety preserved) and on
// Fig. 4a (solves — the graph the extended model requires).
#include <cstdio>

#include "cup/runner.hpp"
#include "graph/figures.hpp"

namespace {

using namespace bftcup;

constexpr Value kV = 111;
constexpr Value kU = 222;

cup::Scenario make(const graph::figures::Instance& inst, cup::Mode mode) {
  cup::Scenario s;
  s.graph = inst.graph;
  s.faulty = inst.faulty;
  s.f = inst.f;
  s.mode = mode;
  s.sim.seed = 9;
  return s;
}

void print(const char* name, const cup::RunReport& r) {
  std::printf("%-28s -> %-19s", name, r.verdict().c_str());
  if (!r.decisions.empty()) {
    std::printf(" decisions:");
    for (const auto& [who, d] : r.decisions) {
      std::printf(" %s=%llu", to_string(who).c_str(),
                  static_cast<unsigned long long>(d.value));
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using graph::figures::fig2a;
  using graph::figures::fig2b;
  using graph::figures::fig2c;
  using graph::figures::fig4a;

  {
    cup::Scenario s = make(fig2a(), cup::Mode::kNaive);
    for (std::uint64_t id = 1; id <= 4; ++id) s.proposals[ProcessId(id)] = kV;
    print("system A (naive)", cup::run_scenario(s));
  }
  {
    cup::Scenario s = make(fig2b(), cup::Mode::kNaive);
    for (std::uint64_t id = 5; id <= 8; ++id) s.proposals[ProcessId(id)] = kU;
    print("system B (naive)", cup::run_scenario(s));
  }

  auto ab = [](cup::Mode mode) {
    cup::Scenario s = make(fig2c(), mode);
    for (std::uint64_t id = 1; id <= 4; ++id) s.proposals[ProcessId(id)] = kV;
    for (std::uint64_t id = 5; id <= 8; ++id) s.proposals[ProcessId(id)] = kU;
    s.sim.net.gst = 800'000;
    s.sim.horizon = mode == cup::Mode::kNaive ? 1'000'000 : 150'000;
    s.make_policy = [] {
      IdSet a, b;
      for (std::uint64_t id = 1; id <= 4; ++id) a.insert(ProcessId(id));
      for (std::uint64_t id = 5; id <= 8; ++id) b.insert(ProcessId(id));
      return std::make_unique<sim::GroupStretchPolicy>(
          std::make_unique<sim::RandomDelayPolicy>(), a, b, 700'000);
    };
    return s;
  };

  print("system AB (naive)", cup::run_scenario(ab(cup::Mode::kNaive)));
  print("system AB (BFT-CUPFT)", cup::run_scenario(ab(cup::Mode::kCupft)));

  {
    cup::Scenario s = make(fig4a(), cup::Mode::kCupft);
    print("fig. 4a (BFT-CUPFT)", cup::run_scenario(s));
  }
  std::printf(
      "\nTakeaway: without f, BFT-CUP-grade knowledge lets disjoint groups\n"
      "decide independently; the extended (core-based) graphs of BFT-CUPFT\n"
      "restore safety, trading liveness on insufficient topologies.\n");
  return 0;
}

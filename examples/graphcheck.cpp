// graphcheck — validate a knowledge connectivity graph against the paper's
// models and report its sinks and core.
//
// Usage:
//   graphcheck <edge-list-file> [f] [faulty-id ...]
//   graphcheck --demo                 # runs on the paper's figures
//
// Edge-list format (see graph/graphio.hpp):
//   1 -> 2        # process 1 initially knows process 2
//   v 7           # isolated vertex
//   # comment
//
// Prints: basic stats, max k for which the graph is k-OSR, the Theorem-1
// (BFT-CUP) and Definition-2 (BFT-CUPFT) verdicts for the given fault
// configuration, every self-declarable sink with its connectivity, and the
// DOT rendering for visualization.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "graph/extended_osr.hpp"
#include "graph/figures.hpp"
#include "graph/graphio.hpp"
#include "graph/osr.hpp"

namespace {

using namespace bftcup;

void report(const std::string& name, const graph::Digraph& g,
            const IdSet& faulty, std::size_t f) {
  std::printf("== %s: %zu processes, %zu knowledge edges, f=%zu, faulty={",
              name.c_str(), g.vertex_count(), g.edge_count(), f);
  for (ProcessId id : faulty) std::printf(" %s", to_string(id).c_str());
  std::printf(" }\n");

  std::printf("   max k-OSR level ............ %zu\n", graph::max_osr_k(g));

  const auto cup = graph::check_bft_cup_requirements(g, faulty, f);
  std::printf("   BFT-CUP   (Theorem 1) ...... %s\n",
              cup.satisfied ? "SATISFIED" : cup.reason.c_str());
  if (cup.satisfied) {
    std::printf("     sink of G_safe: {");
    for (ProcessId id : cup.safe_sink) std::printf(" %s", to_string(id).c_str());
    std::printf(" }\n");
  }

  const auto cupft = graph::check_bft_cupft_requirements(g, faulty, f);
  std::printf("   BFT-CUPFT (Definition 2) ... %s\n",
              cupft.satisfied ? "SATISFIED" : cupft.reason.c_str());
  if (cupft.satisfied) {
    std::printf("     core of G_safe (k=%zu): {", cupft.core_k);
    for (ProcessId id : cupft.safe_core) {
      std::printf(" %s", to_string(id).c_str());
    }
    std::printf(" }\n");
  }

  std::printf("   self-declarable sinks (isSink*):\n");
  for (const auto& sink : graph::all_sinks(g)) {
    std::printf("     k=%zu  {", sink.k());
    for (ProcessId id : sink.members) std::printf(" %s", to_string(id).c_str());
    std::printf(" }\n");
  }
  std::printf("\n");
}

int run_demo() {
  using namespace graph::figures;
  for (const auto& [name, inst] :
       {std::pair{"fig1a", fig1a()}, {"fig1b", fig1b()}, {"fig2c", fig2c()},
        {"fig3a", fig3a()}, {"fig4a", fig4a()}, {"fig4b", fig4b()}}) {
    report(name, inst.graph, inst.faulty, inst.f);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--demo") return run_demo();
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <edge-list-file> [f] [faulty-id ...]\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto g = bftcup::graph::io::parse_edge_list(text.str());
  if (!g) {
    std::fprintf(stderr, "malformed edge list\n");
    return 2;
  }

  std::size_t f = 1;
  if (argc >= 3) f = static_cast<std::size_t>(std::stoul(argv[2]));
  bftcup::IdSet faulty;
  for (int i = 3; i < argc; ++i) {
    faulty.insert(bftcup::ProcessId(std::stoull(argv[i])));
  }

  report(argv[1], *g, faulty, f);
  std::printf("%s", bftcup::graph::io::to_dot(*g, faulty).c_str());
  return 0;
}

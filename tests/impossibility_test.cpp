// Executable witnesses for Section IV: Theorem 7 and Observation 1.
#include <gtest/gtest.h>

#include "cup/scenario_builder.hpp"
#include "graph/osr.hpp"

namespace bftcup::cup {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

ScenarioBuilder naive_builder(graph::Digraph g, IdSet faulty) {
  return ScenarioBuilder(std::move(g))
      .faulty(std::move(faulty))
      .mode(Mode::kNaive)
      .horizon(1'000'000)
      .gst(0)
      .delta(10);
}

TEST(ImpossibilityTest, SystemADecidesV) {
  // Case (a) of Theorem 7's proof: system A with 4 silent; the naive
  // protocol terminates deciding the common value v.
  const auto inst = graph::figures::fig2a();
  const auto report = naive_builder(inst.graph, inst.faulty)
                          .propose_range(1, 4, 111)  // v
                          .run();
  EXPECT_TRUE(report.all_correct_decided);
  EXPECT_EQ(report.common_value, 111U);
}

TEST(ImpossibilityTest, SystemBDecidesU) {
  const auto inst = graph::figures::fig2b();
  const auto report = naive_builder(inst.graph, inst.faulty)
                          .propose_range(5, 8, 222)  // u
                          .run();
  EXPECT_TRUE(report.all_correct_decided);
  EXPECT_EQ(report.common_value, 222U);
}

ScenarioBuilder system_ab(std::uint64_t seed) {
  const auto inst = graph::figures::fig2c();
  // Initial values: members of A propose v, members of B propose u.
  // GST far out; cross-group traffic (through the 4 <-> 5 bridge) crawls —
  // exactly the schedule from the proof ("received after max{tA+ΔA, ...}").
  return naive_builder(inst.graph, /*faulty=*/{})
      .propose_range(1, 4, 111)
      .propose_range(5, 8, 222)
      .gst(800'000)
      .seed(seed)
      .delay_policy([] {
        return std::make_unique<sim::GroupStretchPolicy>(
            std::make_unique<sim::RandomDelayPolicy>(),
            IdSet{p(1), p(2), p(3), p(4)}, IdSet{p(5), p(6), p(7), p(8)},
            /*release_at=*/700'000);
      });
}

TEST(ImpossibilityTest, SystemAbViolatesAgreementUnderNaiveProtocol) {
  // Case (c): all eight processes are correct, but the two halves cannot
  // distinguish AB from their solo systems before the bridge traffic lands,
  // so they decide v and u respectively — Agreement is violated.
  const auto report = system_ab(3).run();
  EXPECT_TRUE(report.all_correct_decided);
  EXPECT_FALSE(report.agreement);
  EXPECT_EQ(report.verdict(), "AGREEMENT-VIOLATED");

  // The split is exactly along the two declared sinks of Observation 1.
  for (std::uint64_t id = 1; id <= 4; ++id) {
    EXPECT_EQ(report.decisions.at(p(id)).value, 111U);
    EXPECT_EQ(report.memberships.at(p(id)),
              (IdSet{p(1), p(2), p(3), p(4)}));
  }
  for (std::uint64_t id = 5; id <= 8; ++id) {
    EXPECT_EQ(report.decisions.at(p(id)).value, 222U);
    EXPECT_EQ(report.memberships.at(p(id)),
              (IdSet{p(5), p(6), p(7), p(8)}));
  }
}

TEST(ImpossibilityTest, ViolationIsSchedulerDependentNotLucky) {
  // Several seeds, same violation: this is structural, not a fluke.
  for (std::uint64_t seed : {1, 2, 5, 8}) {
    const auto report = system_ab(seed).run();
    EXPECT_FALSE(report.agreement) << "seed=" << seed;
  }
}

TEST(ImpossibilityTest, KnownFProtocolOnAbDoesNotSplit) {
  // The same graph and schedule under the *known-f* protocol: each half's
  // candidate requires g = f = 1 and both halves do satisfy it (Obs. 1), so
  // BFT-CUP would split too — this is why Theorem 7 needs G_di ∈ G_di with
  // known f to be *assumed*, and why fig2c (which fails the requirements:
  // it is only 1-OSR) is outside the BFT-CUP family. We assert the checker
  // rejects it rather than claiming a runtime guarantee.
  const auto inst = graph::figures::fig2c();
  EXPECT_FALSE(graph::check_bft_cup_requirements(inst.graph, {}, 1).satisfied);
}

TEST(ImpossibilityTest, CupftNodesStaySilentOnAb) {
  // The fixed protocol pays with liveness on an insufficient graph, never
  // with safety.
  const auto report =
      system_ab(7).mode(Mode::kCupft).horizon(200'000).run();
  EXPECT_TRUE(report.decisions.empty());
  EXPECT_TRUE(report.agreement);
}

TEST(ImpossibilityTest, NaiveOnFig3aCanAdoptTheFalseSink) {
  // Observation 1's second shape: non-sink members {1,2,3,4,6} declare
  // themselves a sink (with the Byzantine 1 playing along) while the true
  // sink {5,7,8} is slowed. The naive run must terminate with *some* split
  // membership; crucially it never matches the known-f run's {5,7,8}.
  const auto inst = graph::figures::fig3a();
  const auto report =
      naive_builder(inst.graph, /*faulty=*/{})  // 1 behaves
          .horizon(300'000)
          .gst(800'000)
          .delay_policy([] {
            return std::make_unique<sim::SlowSenderPolicy>(
                std::make_unique<sim::RandomDelayPolicy>(),
                IdSet{p(5), p(7), p(8)}, /*release_at=*/700'000);
          })
          .run();
  ASSERT_FALSE(report.memberships.empty());
  bool false_sink_adopted = false;
  for (const auto& [who, members] : report.memberships) {
    if (members == IdSet{p(1), p(2), p(3), p(4), p(6), p(5), p(7)}) {
      false_sink_adopted = true;
    }
  }
  EXPECT_TRUE(false_sink_adopted);
}

}  // namespace
}  // namespace bftcup::cup

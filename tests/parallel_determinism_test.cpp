// The parallel==serial property: Scenario::parallel_eval must be invisible
// in results. Every explored-corpus and dynamic (fault-timeline) registry
// scenario is replayed at several thread counts and the full RunReport
// digest must be byte-identical to the serial run — the determinism
// contract of the intra-run parallel membership kernel (README "Intra-run
// parallelism"). The corpus choice is deliberate: explored/* covers the
// adversarial topologies the explorer mined (including big-SCC shapes),
// dyn/* covers churn (memo_suspended) and timeline-driven revision growth.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cup/batch_runner.hpp"
#include "cup/scenario_registry.hpp"

namespace bftcup {
namespace {

using cup::RunReport;
using cup::ScenarioRegistry;

std::vector<std::string> corpus() {
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  std::vector<std::string> names = registry.names_with_tag("explored");
  for (std::string& name : registry.names_with_tag("dynamic")) {
    names.push_back(std::move(name));
  }
  return names;
}

TEST(ParallelDeterminismTest, CorpusDigestsAreThreadCountInvariant) {
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  const std::vector<std::string> names = corpus();
  ASSERT_FALSE(names.empty());

  for (const std::string& name : names) {
    const RunReport serial =
        cup::run_scenario(registry.builder(name).seed(1).build());
    const std::string expected = serial.digest();
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
      const RunReport parallel = cup::run_scenario(
          registry.builder(name).seed(1).parallel_eval(threads).build());
      EXPECT_EQ(parallel.digest(), expected)
          << name << " at parallel_eval=" << threads;
      // The digest covers decisions/memberships/traffic; the verdict line
      // is derived from the same fields but cheap to assert directly.
      EXPECT_EQ(parallel.verdict(), serial.verdict())
          << name << " at parallel_eval=" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, EvalTasksCounterStaysOutOfTheDigest) {
  // A run that actually dispatches through the pool must still digest
  // identically — and the counter is the only report field allowed to
  // differ. Use one explored scenario (they exercise the membership
  // kernel hardest).
  const std::vector<std::string> names = corpus();
  ASSERT_FALSE(names.empty());
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  const std::string& name = names.front();

  const RunReport serial =
      cup::run_scenario(registry.builder(name).seed(1).build());
  const RunReport parallel = cup::run_scenario(
      registry.builder(name).seed(1).parallel_eval(8).build());
  EXPECT_EQ(serial.eval_tasks_dispatched, 0u);
  EXPECT_EQ(parallel.digest(), serial.digest());
}

}  // namespace
}  // namespace bftcup

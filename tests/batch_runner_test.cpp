#include <gtest/gtest.h>

#include "cup/batch_runner.hpp"

namespace bftcup::cup {
namespace {

RunRecord record(std::string scenario, std::uint64_t seed,
                 const char* verdict, std::int64_t latency,
                 std::uint64_t messages) {
  RunRecord r;
  r.scenario = std::move(scenario);
  r.seed = seed;
  r.verdict = verdict;
  r.terminated = std::string(verdict) == "SOLVED";
  r.agreement = std::string(verdict) != "AGREEMENT-VIOLATED";
  r.latency = latency;
  r.messages = messages;
  r.delivered = messages;
  r.bytes = messages * 100;
  r.value = 1001;
  r.digest = "d" + std::to_string(seed);
  return r;
}

// ------------------------------------------------------------- Sweep ----

TEST(SweepTest, ExpansionCountsScenariosTimesSeeds) {
  Sweep sweep;
  sweep.add(ScenarioRegistry::paper(), "fig1b/silent")
      .add(ScenarioRegistry::paper(), "fig1b/wrong-value")
      .seeds(10, 3);
  EXPECT_EQ(sweep.scenario_count(), 2u);
  EXPECT_EQ(sweep.run_count(), 6u);

  const auto points = sweep.expand();
  ASSERT_EQ(points.size(), 6u);
  // Deterministic order: scenarios in insertion order, seeds ascending.
  EXPECT_EQ(points[0].scenario, "fig1b/silent");
  EXPECT_EQ(points[0].seed, 10u);
  EXPECT_EQ(points[2].seed, 12u);
  EXPECT_EQ(points[3].scenario, "fig1b/wrong-value");
  // The seed axis reaches the simulator options.
  EXPECT_EQ(points[4].config.sim.seed, 11u);
}

TEST(SweepTest, TagExpansionAddsEveryTaggedScenario) {
  Sweep sweep;
  sweep.add_tag(ScenarioRegistry::paper(), "table1").seeds(1, 2);
  EXPECT_EQ(sweep.scenario_count(), 9u);
  EXPECT_EQ(sweep.run_count(), 18u);
}

TEST(SweepTest, AxisNamesPointsAfterTheValue) {
  Sweep sweep;
  sweep.axis("gst=", {0, 100, 200}, [](int gst) {
    return ScenarioRegistry::paper()
        .builder("fig1b/silent")
        .gst(gst);
  });
  const auto points = sweep.expand();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[1].scenario, "gst=100");
  EXPECT_EQ(points[1].config.sim.net.gst, 100);
}

TEST(SweepTest, InvalidInputsThrow) {
  Sweep sweep;
  EXPECT_THROW(sweep.add(ScenarioRegistry::paper(), "no-such"),
               ScenarioError);
  EXPECT_THROW(sweep.add_tag(ScenarioRegistry::paper(), "no-such-tag"),
               ScenarioError);
  EXPECT_THROW(sweep.seeds(1, 0), ScenarioError);
  // Names travel through CSV/JSON unescaped; delimiters are rejected at
  // the door so the round-trip contract holds by construction.
  EXPECT_THROW(sweep.add("a,b", [](std::uint64_t) { return Scenario{}; }),
               ScenarioError);
  EXPECT_THROW(sweep.add("a\"b", [](std::uint64_t) { return Scenario{}; }),
               ScenarioError);
  EXPECT_THROW(sweep.add("a\\b", [](std::uint64_t) { return Scenario{}; }),
               ScenarioError);
  EXPECT_THROW(sweep.add("a\tb", [](std::uint64_t) { return Scenario{}; }),
               ScenarioError);
  EXPECT_THROW(sweep.add("", [](std::uint64_t) { return Scenario{}; }),
               ScenarioError);
}

// ------------------------------------------------------- BatchReport ----

TEST(BatchReportTest, AggregatesPassRateAndViolations) {
  BatchReport report({record("a", 1, "SOLVED", 100, 10),
                      record("a", 2, "SOLVED", 200, 12),
                      record("a", 3, "NO-TERMINATION", -1, 9),
                      record("b", 1, "AGREEMENT-VIOLATED", 50, 5)});
  const auto stats = report.scenarios();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].scenario, "a");
  EXPECT_EQ(stats[0].runs, 3u);
  EXPECT_EQ(stats[0].solved, 2u);
  EXPECT_NEAR(stats[0].pass_rate(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(stats[0].non_terminations, 1u);
  EXPECT_EQ(stats[0].messages_total, 31u);
  EXPECT_EQ(stats[1].agreement_violations, 1u);
}

TEST(BatchReportTest, PercentilesUseNearestRank) {
  std::vector<RunRecord> runs;
  for (std::int64_t latency = 1; latency <= 100; ++latency) {
    runs.push_back(
        record("x", static_cast<std::uint64_t>(latency), "SOLVED", latency, 1));
  }
  const auto stats = BatchReport(std::move(runs)).scenarios();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].latency_min, 1);
  EXPECT_EQ(stats[0].latency_p50, 50);  // nearest-rank: ceil(0.50*100) = 50th
  EXPECT_EQ(stats[0].latency_p99, 99);
  EXPECT_EQ(stats[0].latency_max, 100);
}

TEST(BatchReportTest, PercentileOfSingleRun) {
  const auto stats =
      BatchReport({record("x", 1, "SOLVED", 42, 1)}).scenarios();
  EXPECT_EQ(stats[0].latency_min, 42);
  EXPECT_EQ(stats[0].latency_p50, 42);
  EXPECT_EQ(stats[0].latency_p99, 42);
  EXPECT_EQ(stats[0].latency_max, 42);
}

TEST(BatchReportTest, NoCompletedRunsKeepsLatencySentinels) {
  const auto stats =
      BatchReport({record("x", 1, "NO-TERMINATION", -1, 1)}).scenarios();
  EXPECT_EQ(stats[0].latency_min, -1);
  EXPECT_EQ(stats[0].latency_p99, -1);
}

TEST(BatchReportTest, CsvRoundTrip) {
  const BatchReport report({record("fig1b/silent", 1, "SOLVED", 123, 45),
                            record("fig1b/silent", 2, "NO-TERMINATION", -1, 7),
                            record("fig2/system-ab-naive", 1,
                                   "AGREEMENT-VIOLATED", 99, 8)});
  const std::string csv = report.runs_csv();
  const BatchReport back = BatchReport::from_runs_csv(csv);
  EXPECT_EQ(back, report);
  EXPECT_EQ(back.runs_csv(), csv);
}

TEST(BatchReportTest, JsonRoundTrip) {
  const BatchReport report({record("fig1b/silent", 1, "SOLVED", 123, 45),
                            record("fig3a/cupft", 9, "NO-TERMINATION", -1, 6)});
  const std::string json = report.to_json();
  const BatchReport back = BatchReport::from_json(json);
  EXPECT_EQ(back, report);
  EXPECT_EQ(back.to_json(), json);
}

TEST(BatchReportTest, JsonRoundTripOfEmptyReport) {
  const BatchReport report;
  EXPECT_EQ(BatchReport::from_json(report.to_json()), report);
  EXPECT_EQ(BatchReport::from_runs_csv(report.runs_csv()), report);
}

TEST(BatchReportTest, LegacyTwelveColumnCsvStillImports) {
  // Sweep outputs persisted before the cache counters existed (12 columns)
  // must keep loading; the counters default to 0.
  const std::string legacy =
      "scenario,seed,verdict,agreement,validity,terminated,latency,messages,"
      "delivered,bytes,value,digest\n"
      "fig1b/silent,1,SOLVED,1,1,1,123,45,40,999,1002,abc123\n";
  const BatchReport report = BatchReport::from_runs_csv(legacy);
  ASSERT_EQ(report.runs().size(), 1U);
  const RunRecord& r = report.runs()[0];
  EXPECT_EQ(r.scenario, "fig1b/silent");
  EXPECT_EQ(r.latency, 123);
  EXPECT_EQ(r.digest, "abc123");
  EXPECT_EQ(r.evaluations, 0U);
  EXPECT_EQ(r.sig_hits, 0U);
}

TEST(BatchReportTest, ScenarioNamesWithCommasAndQuotesRoundTrip) {
  // Generated scenario names (e.g. explorer artifacts) can contain CSV
  // metacharacters; the report layer must quote/escape rather than rely on
  // upstream name validation. Regression for the naive-split importer.
  const BatchReport report(
      {record("gen3/clique{a,b},f=2", 1, "SOLVED", 10, 5),
       record("he said \"boom\", twice", 2, "AGREEMENT-VIOLATED", -1, 3),
       record("plain-name", 3, "SOLVED", 7, 2)});

  const std::string csv = report.runs_csv();
  const BatchReport csv_back = BatchReport::from_runs_csv(csv);
  ASSERT_EQ(csv_back.runs().size(), 3U);
  EXPECT_EQ(csv_back, report);
  EXPECT_EQ(csv_back.runs_csv(), csv);
  // Unquoted names stay byte-identical to the pre-escaping format.
  EXPECT_NE(csv.find("\nplain-name,3,"), std::string::npos);

  const std::string json = report.to_json();
  const BatchReport json_back = BatchReport::from_json(json);
  EXPECT_EQ(json_back, report);
  EXPECT_EQ(json_back.to_json(), json);

  // summary_csv quotes the aggregated scenario column the same way.
  EXPECT_NE(report.summary_csv().find("\"gen3/clique{a,b},f=2\""),
            std::string::npos);
}

TEST(BatchReportTest, ScenarioNamesWithLineBreaksRoundTrip) {
  // A quoted field may span physical lines (RFC 4180); the importer must
  // split records quote-aware, not on every newline.
  const BatchReport report({record("line1\nline2", 1, "SOLVED", 10, 5),
                            record("after", 2, "SOLVED", 7, 2)});
  const BatchReport csv_back = BatchReport::from_runs_csv(report.runs_csv());
  EXPECT_EQ(csv_back, report);
  const BatchReport json_back = BatchReport::from_json(report.to_json());
  EXPECT_EQ(json_back, report);
}

TEST(BatchReportTest, UnterminatedCsvQuoteThrows) {
  const std::string bad =
      std::string(
          "scenario,seed,verdict,agreement,validity,terminated,latency,"
          "messages,delivered,bytes,value,digest\n") +
      "\"oops,1,SOLVED,1,1,1,1,1,1,1,1,abc\n";
  EXPECT_THROW(BatchReport::from_runs_csv(bad), std::invalid_argument);
}

TEST(BatchReportTest, MalformedImportsThrow) {
  EXPECT_THROW(BatchReport::from_runs_csv("nonsense header\n"),
               std::invalid_argument);
  EXPECT_THROW(BatchReport::from_json("{\"nope\":[]}"),
               std::invalid_argument);
  EXPECT_THROW(BatchReport::from_json("{\"runs\":[{\"wat\":1}]}"),
               std::invalid_argument);
}

// -------------------------------------------------------- BatchRunner ----

namespace {

/// Strips the counters that describe the *executing context* rather than
/// the run's behavior: with recycled per-worker contexts (the run engine),
/// cache hit splits and arena/recycle figures depend on which worker ran
/// which prior points. Everything else — verdict, latency, traffic, value,
/// and the full-report digest — must stay byte-identical.
RunRecord behavior_of(RunRecord r) {
  r.eval_hits = 0;
  r.signatures = 0;  // the signatures+sig_hits *sum* is checked separately
  r.sig_hits = 0;
  r.recycled = 0;
  r.arena_peak = 0;
  r.peak_rss = 0;  // process-wide high-water mark, grows monotonically
  return r;
}

}  // namespace

TEST(BatchRunnerTest, ParallelSweepMatchesSerialBitForBit) {
  // The acceptance sweep: 100 (scenario, seed) runs, pooled vs serial.
  Sweep sweep;
  sweep.add(ScenarioRegistry::paper(), "fig1b/silent")
      .add(ScenarioRegistry::paper(), "table1/sync/known-n-known-f")
      .add(ScenarioRegistry::paper(), "table1/sync/unknown-n-known-f")
      .add(ScenarioRegistry::paper(), "fig1b/wrong-value")
      .seeds(1, 25);
  ASSERT_EQ(sweep.run_count(), 100u);

  BatchRunner::Options serial_options;
  serial_options.threads = 1;
  const BatchReport serial = BatchRunner(serial_options).run(sweep);

  BatchRunner::Options pooled_options;
  pooled_options.threads = 4;
  const BatchReport pooled = BatchRunner(pooled_options).run(sweep);

  ASSERT_EQ(serial.runs().size(), 100u);
  ASSERT_EQ(pooled.runs().size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    const RunRecord& p = pooled.runs()[i];
    const RunRecord& s = serial.runs()[i];
    // Byte-identical behavior, including the SHA-256 digest of the full
    // RunReport — the bit-replay guarantee, context recycling included.
    EXPECT_EQ(behavior_of(p), behavior_of(s)) << p.scenario << "/" << p.seed;
    // The placement-independent totals: how much work the run *requested*
    // is a function of its behavior, only the hit/miss split moves.
    EXPECT_EQ(p.evaluations, s.evaluations) << p.scenario << "/" << p.seed;
    EXPECT_EQ(p.signatures + p.sig_hits, s.signatures + s.sig_hits)
        << p.scenario << "/" << p.seed;
  }
}

TEST(BatchRunnerTest, MergedMetricsArePlacementIndependent) {
  // The obs analogue of the cache-counter sums above: merge_run_metrics
  // folds every run's MetricsSnapshot with counter/bucket addition and
  // gauge max — commutative and associative — so a pooled batch and its
  // serial replay agree on every total whose underlying quantity is
  // placement-independent.
  Sweep sweep;
  sweep.add(ScenarioRegistry::paper(), "fig1b/silent")
      .add(ScenarioRegistry::paper(), "fig1b/wrong-value")
      .seeds(1, 10);

  // With context pooling off every run starts cold, so each run's snapshot
  // is fully deterministic and the merged totals must be byte-identical
  // across thread counts — modulo proc.peak_rss_bytes, the one gauge that
  // reads a process-wide high-water mark and only grows over the process's
  // life.
  const auto cold_totals = [&](std::size_t threads) {
    BatchRunner::Options options;
    options.threads = threads;
    options.context_pooling = false;
    obs::MetricsSnapshot total =
        merge_run_metrics(BatchRunner(options).run_reports(sweep.expand()));
    total.gauges.erase("proc.peak_rss_bytes");
    return total;
  };
  const obs::MetricsSnapshot serial_total = cold_totals(1);
  const obs::MetricsSnapshot pooled_total = cold_totals(4);
  ASSERT_FALSE(serial_total.empty());
  EXPECT_EQ(pooled_total, serial_total);

  // Under recycled contexts the hit/miss splits and the incremental-search
  // enumeration volume move with each worker's warm caches, but the
  // behavior-fact totals — work *requested*, verification total, event
  // count — are functions of the runs alone and must survive any placement.
  BatchRunner::Options recycled_options;
  recycled_options.threads = 4;
  const std::vector<RunReport> recycled =
      BatchRunner(recycled_options).run_reports(sweep.expand());
  const obs::MetricsSnapshot recycled_total = merge_run_metrics(recycled);
  EXPECT_EQ(recycled_total.counter("eval.requested"),
            serial_total.counter("eval.requested"));
  EXPECT_EQ(recycled_total.counter("sig.verified") +
                recycled_total.counter("sig.cached"),
            serial_total.counter("sig.verified") +
                serial_total.counter("sig.cached"));
  EXPECT_EQ(recycled_total.counter("sim.events"),
            serial_total.counter("sim.events"));
  EXPECT_EQ(recycled_total.counter("engine.big_scc_fallbacks"),
            serial_total.counter("engine.big_scc_fallbacks"));

  // Merge order must not matter: folding the reports in reverse yields the
  // same totals (the associativity/commutativity everything above rests
  // on).
  std::vector<RunReport> reversed(recycled.rbegin(), recycled.rend());
  EXPECT_EQ(merge_run_metrics(reversed), recycled_total);
}

TEST(BatchRunnerTest, VerifyDeterminismOptionPasses) {
  Sweep sweep;
  sweep.add(ScenarioRegistry::paper(), "fig1b/silent").seeds(1, 4);
  BatchRunner::Options options;
  options.threads = 2;
  options.verify_determinism = true;
  EXPECT_NO_THROW((void)BatchRunner(options).run(sweep));
}

TEST(BatchRunnerTest, ResultsKeepSweepOrderRegardlessOfThreads) {
  Sweep sweep;
  sweep.add(ScenarioRegistry::paper(), "fig1b/silent").seeds(5, 8);
  BatchRunner::Options options;
  options.threads = 8;
  const BatchReport report = BatchRunner(options).run(sweep);
  ASSERT_EQ(report.runs().size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(report.runs()[i].seed, 5 + i);
  }
}

TEST(BatchRunnerTest, FactoryExceptionsPropagate) {
  Sweep sweep;
  sweep.add("boom", [](std::uint64_t) -> Scenario {
    throw ScenarioError("deliberate");
  });
  // The factory throws during expand(), before any thread starts.
  EXPECT_THROW((void)BatchRunner().run(sweep), ScenarioError);
}

TEST(BatchRunnerTest, SolvedScenariosReportAsSolvedInAggregate) {
  Sweep sweep;
  sweep.add(ScenarioRegistry::paper(), "fig1b/silent").seeds(1, 3);
  const BatchReport report = BatchRunner().run(sweep);
  const auto stats = report.scenarios();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].runs, 3u);
  EXPECT_EQ(stats[0].solved, 3u);
  EXPECT_GT(stats[0].latency_p50, 0);
  EXPECT_GE(stats[0].latency_max, stats[0].latency_p99);
  EXPECT_GE(stats[0].latency_p99, stats[0].latency_p50);
  EXPECT_GE(stats[0].latency_p50, stats[0].latency_min);
}

}  // namespace
}  // namespace bftcup::cup

// Seeded decoder fuzz harness (CTest-registered; CI runs it under
// ASan/UBSan in the wire-fuzz-smoke job).
//
// decode_frame is the trust boundary the hostile-wire layer leans on: any
// byte string must come back as either nullopt or a message whose
// re-encoding is byte-identical to the input (canonical decode). The
// harness drives that boundary two ways:
//
//   1. Structured: for every MsgType, a representative frame is pushed
//      through a rate-1.0 WireMutator (all mutation kinds) 10k times and
//      every emitted frame is decoded — ≥110k mutated frames total, biased
//      toward the near-valid shapes random bytes would almost never hit.
//   2. Unstructured: 20k uniformly random byte strings straight into
//      decode_frame.
//
// "No crash" is asserted by the sanitizers; the canonical-decode property
// is asserted here. The standalone libFuzzer driver
// (tools/wire_frame_fuzzer.cpp, -DBFTCUP_BUILD_FUZZERS=ON) feeds the same
// entry point coverage-guided inputs; this harness is the deterministic
// regression floor that runs everywhere.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "common/random.hpp"
#include "msg/message.hpp"
#include "msg/wire.hpp"
#include "sim/wire_mutator.hpp"

namespace bftcup {
namespace {

crypto::Signature pattern_sig(std::uint8_t fill) {
  crypto::Signature sig;
  for (std::size_t i = 0; i < sig.bytes.size(); ++i) {
    sig.bytes[i] = static_cast<std::uint8_t>(fill + i);
  }
  return sig;
}

msg::SignedPd make_spd(std::uint64_t owner) {
  msg::SignedPd spd;
  spd.owner = ProcessId(owner);
  spd.pd = {ProcessId(owner), ProcessId(owner + 1), ProcessId(owner + 2)};
  spd.sig = pattern_sig(static_cast<std::uint8_t>(owner));
  return spd;
}

/// A representative, fully populated message of the given type: every field
/// the type carries is non-default, so mutations hit real payload bytes.
/// `salt` varies the content so the mutator's capture ring (splice/replay
/// material) holds distinct frames.
msg::Message representative(msg::MsgType type, std::uint64_t salt) {
  msg::Message m;
  m.type = type;
  switch (type) {
    case msg::MsgType::kGetPds:
      break;
    case msg::MsgType::kSetPds:
      m.pds = {make_spd(1 + salt % 5), make_spd(7 + salt % 3)};
      break;
    case msg::MsgType::kGetDecidedVal:
      break;
    case msg::MsgType::kDecidedVal:
      m.value = 1000 + salt;
      m.sig = pattern_sig(static_cast<std::uint8_t>(salt));
      break;
    case msg::MsgType::kPbftPrePrepare:
    case msg::MsgType::kPbftPrepare:
    case msg::MsgType::kPbftCommit:
      m.view = static_cast<std::uint32_t>(salt % 7);
      m.value = 2000 + salt;
      m.sig = pattern_sig(static_cast<std::uint8_t>(salt + 1));
      break;
    case msg::MsgType::kPbftViewChange:
    case msg::MsgType::kPbftNewView:
    case msg::MsgType::kPbftDecide: {
      m.view = static_cast<std::uint32_t>(1 + salt % 7);
      m.value = 3000 + salt;
      m.sig = pattern_sig(static_cast<std::uint8_t>(salt + 2));
      msg::QuorumCert cert;
      cert.view = static_cast<std::uint32_t>(salt % 7);
      cert.value = 3000 + salt;
      cert.shares = {{ProcessId(1), pattern_sig(3)},
                     {ProcessId(2), pattern_sig(4)},
                     {ProcessId(5), pattern_sig(5)}};
      m.cert = std::move(cert);
      break;
    }
    case msg::MsgType::kRrbForward:
      m.origin = ProcessId(4);
      m.origin_pd = {ProcessId(1), ProcessId(4), ProcessId(9)};
      m.path = {ProcessId(4), ProcessId(2), ProcessId(static_cast<std::uint64_t>(1 + salt % 9))};
      break;
  }
  return m;
}

/// The property under fuzz: decode never crashes, and a successful decode
/// re-encodes byte-identically (so "decoded" implies "canonical" — no two
/// distinct wire frames alias to the same message).
void check_frame(const Bytes& frame, std::uint64_t& accepted,
                 std::uint64_t& rejected) {
  const std::optional<msg::Message> decoded = msg::decode_frame(frame);
  if (!decoded.has_value()) {
    ++rejected;
    return;
  }
  ++accepted;
  ASSERT_EQ(msg::encode_frame(*decoded), frame)
      << "non-canonical decode: a " << msg::to_string(decoded->type)
      << " frame of " << frame.size() << " bytes re-encoded differently";
}

TEST(WireFuzzTest, MutatedFramesPerMsgTypeDecodeSafelyAndCanonically) {
  constexpr std::size_t kDeliveriesPerType = 10'000;
  for (std::size_t t = 0; t < msg::kMsgTypeCount; ++t) {
    const auto type = static_cast<msg::MsgType>(t);
    sim::WireConfig config;
    config.enabled = true;
    config.rate = 1.0;  // every delivery mutated
    config.seed = t;
    sim::WireMutator mutator(config, /*sim_seed=*/0xf022ed);
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t emitted = 0;
    for (std::size_t i = 0; i < kDeliveriesPerType; ++i) {
      const Bytes frame = msg::encode_frame(representative(type, i));
      const auto result = mutator.process(frame);
      ASSERT_TRUE(result.kind.has_value());
      for (const Bytes& out : result.frames) {
        ++emitted;
        check_frame(out, accepted, rejected);
        if (HasFatalFailure()) return;
      }
    }
    // Every kind was in play: duplicates/replays keep some frames valid,
    // truncation/garbage breaks others — both outcomes must occur.
    EXPECT_GE(emitted, kDeliveriesPerType / 2) << msg::to_string(type);
    EXPECT_GT(accepted, 0u) << msg::to_string(type);
    EXPECT_GT(rejected, 0u) << msg::to_string(type);
  }
}

TEST(WireFuzzTest, RandomByteStringsNeverDecodeNonCanonically) {
  Rng rng(0xbadf00d);
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (std::size_t i = 0; i < 20'000; ++i) {
    const std::size_t len = rng.next_below(300);
    Bytes frame(len);
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.next_below(256));
    check_frame(frame, accepted, rejected);
    if (HasFatalFailure()) return;
  }
  // Uniform noise essentially never forms a valid frame; what matters is
  // that the decoder said no 20k times without tripping a sanitizer.
  EXPECT_GT(rejected, 19'000u);
}

TEST(WireFuzzTest, TruncationLadderIsRejectedOrCanonical) {
  // Every strict prefix of a valid frame, for every type — the systematic
  // version of kTruncate (a random mutator rarely covers all cut points).
  for (std::size_t t = 0; t < msg::kMsgTypeCount; ++t) {
    const Bytes full =
        msg::encode_frame(representative(static_cast<msg::MsgType>(t), 3));
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const Bytes prefix(full.begin(),
                         full.begin() + static_cast<std::ptrdiff_t>(cut));
      check_frame(prefix, accepted, rejected);
      if (HasFatalFailure()) return;
    }
    // A strict prefix can never be a valid frame (the frame format has no
    // trailing optionality: at_end() is enforced after a complete parse, so
    // a shorter parse of the same bytes would re-encode differently).
    EXPECT_EQ(accepted, 0u) << "type " << t;
  }
}

}  // namespace
}  // namespace bftcup

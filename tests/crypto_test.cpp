#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signer.hpp"

namespace bftcup::crypto {
namespace {

Bytes bytes_of(std::string_view s) {
  return to_bytes(s);
}

std::string hex_digest(const Digest& d) {
  return to_hex(BytesView(d.data(), d.size()));
}

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(
      hex_digest(sha256(bytes_of(""))),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(
      hex_digest(sha256(bytes_of("abc"))),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      hex_digest(sha256(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(
      hex_digest(h.finalize()),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const Bytes data = bytes_of("the quick brown fox jumps over the lazy dog");
  Sha256 h;
  for (std::size_t i = 0; i < data.size(); ++i) {
    h.update(BytesView(&data[i], 1));
  }
  EXPECT_EQ(h.finalize(), sha256(data));
}

TEST(Sha256Test, ExactBlockBoundary) {
  const Bytes b55(55, 'x'), b56(56, 'x'), b64(64, 'x'), b65(65, 'x');
  // Distinct lengths around the padding boundary must hash differently.
  EXPECT_NE(sha256(b55), sha256(b56));
  EXPECT_NE(sha256(b64), sha256(b65));
}

// RFC 4231 test case 1 and 2.
TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(
      hex_digest(hmac_sha256(key, bytes_of("Hi There"))),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(
      hex_digest(hmac_sha256(bytes_of("Jefe"),
                             bytes_of("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  const Bytes long_key(131, 0xaa);  // RFC 4231 case 6 key shape
  const auto d = hmac_sha256(long_key, bytes_of("msg"));
  EXPECT_EQ(d.size(), 32U);
}

TEST(KeyRegistryTest, DeterministicSecrets) {
  KeyRegistry a(99), b(99);
  EXPECT_EQ(a.secret_for(ProcessId(1)), b.secret_for(ProcessId(1)));
  EXPECT_NE(a.secret_for(ProcessId(1)), a.secret_for(ProcessId(2)));
}

TEST(KeyRegistryTest, SignVerifyRoundTrip) {
  KeyRegistry reg(7);
  const Bytes message = bytes_of("hello");
  const Signature sig = reg.sign_as(ProcessId(3), message);
  EXPECT_TRUE(reg.verify(ProcessId(3), message, sig));
}

TEST(KeyRegistryTest, RejectsWrongSigner) {
  KeyRegistry reg(7);
  const Bytes message = bytes_of("hello");
  const Signature sig = reg.sign_as(ProcessId(3), message);
  EXPECT_FALSE(reg.verify(ProcessId(4), message, sig));
}

TEST(KeyRegistryTest, RejectsTamperedMessage) {
  KeyRegistry reg(7);
  const Signature sig = reg.sign_as(ProcessId(3), bytes_of("hello"));
  EXPECT_FALSE(reg.verify(ProcessId(3), bytes_of("hellO"), sig));
}

TEST(KeyRegistryTest, RejectsTamperedSignature) {
  KeyRegistry reg(7);
  const Bytes message = bytes_of("hello");
  Signature sig = reg.sign_as(ProcessId(3), message);
  sig.bytes[0] ^= 0x01;
  EXPECT_FALSE(reg.verify(ProcessId(3), message, sig));
}

TEST(SignerTest, SignsOnlyAsItself) {
  KeyRegistry reg(5);
  const Signer signer(ProcessId(10), &reg);
  const Verifier verifier(&reg);
  const Bytes message = bytes_of("payload");
  const Signature sig = signer.sign(message);
  EXPECT_TRUE(verifier.verify(ProcessId(10), message, sig));
  EXPECT_FALSE(verifier.verify(ProcessId(11), message, sig));
}

TEST(SignerTest, DifferentRegistrySeedsProduceDifferentSignatures) {
  KeyRegistry r1(1), r2(2);
  const Bytes message = bytes_of("x");
  EXPECT_NE(r1.sign_as(ProcessId(1), message).bytes,
            r2.sign_as(ProcessId(1), message).bytes);
}

}  // namespace
}  // namespace bftcup::crypto

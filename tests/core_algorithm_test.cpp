#include <gtest/gtest.h>

#include "graph/figures.hpp"
#include "graph/generators.hpp"
#include "protocol/core.hpp"

namespace bftcup::protocol {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

const ExhaustiveSinkSearch kSearch;

TEST(CoreAlgorithmTest, Fig4aFindsCore) {
  const auto view =
      KnowledgeView::omniscient(graph::figures::fig4a().graph);
  const auto core = try_find_core(view, kSearch);
  ASSERT_TRUE(core.has_value());
  EXPECT_EQ(core->members, (IdSet{p(1), p(2), p(3), p(4)}));
  EXPECT_EQ(core->k(), 2U);
}

TEST(CoreAlgorithmTest, Fig4bFindsCoreWithByzantineAbsorbed) {
  const auto view =
      KnowledgeView::omniscient(graph::figures::fig4b().graph);
  const auto core = try_find_core(view, kSearch);
  ASSERT_TRUE(core.has_value());
  // The protocol-level core includes Byzantine member 8 (absorbed via S2 or
  // participating in S1); the safe core is {9..12}.
  EXPECT_EQ(core->members, (IdSet{p(8), p(9), p(10), p(11), p(12)}));
  EXPECT_EQ(core->k(), 3U);
}

TEST(CoreAlgorithmTest, Fig2cTieNeverResolves) {
  // Observation 1 / Theorem 7: system AB has two tied sinks — the Core
  // algorithm must keep waiting forever.
  const auto view =
      KnowledgeView::omniscient(graph::figures::fig2c().graph);
  EXPECT_FALSE(try_find_core(view, kSearch).has_value());
}

TEST(CoreAlgorithmTest, Fig3aFullKnowledgeAdoptsTheFalseSink) {
  // Observation 1's hazard, executable: on the *full* fig3a graph (the
  // Byzantine 1's PD visible), the set {1,2,3,4,6} ∪ {5,7} passes isSink*
  // with k = 3 — strictly above the true sink {5,7,8} (k = 2) — so the Core
  // rule adopts the false sink. This is why fig3a is NOT a BFT-CUPFT graph
  // (the checker rejects it; see extended_osr_test.cpp).
  const auto view =
      KnowledgeView::omniscient(graph::figures::fig3a().graph);
  const auto core = try_find_core(view, kSearch);
  ASSERT_TRUE(core.has_value());
  EXPECT_EQ(core->members,
            (IdSet{p(1), p(2), p(3), p(4), p(5), p(6), p(7)}));
  EXPECT_EQ(core->k(), 3U);
}

TEST(CoreAlgorithmTest, Fig3aSafeViewTiesAndNeverResolves) {
  // Without the Byzantine 1 (its PD never received), the two families tie
  // at k = 2 and the Core rule correctly keeps waiting.
  const auto inst = graph::figures::fig3a();
  const auto safe = inst.graph.induced(
      inst.graph.vertices().set_difference(inst.faulty));
  const auto view = KnowledgeView::omniscient(safe);
  EXPECT_FALSE(try_find_core(view, kSearch).has_value());
}

TEST(CoreAlgorithmTest, Fig3bFindsK5PlusAbsorbedByzantine) {
  const auto view =
      KnowledgeView::omniscient(graph::figures::fig3b().graph);
  const auto core = try_find_core(view, kSearch);
  ASSERT_TRUE(core.has_value());
  EXPECT_EQ(core->members, view.known());  // K5 + absorbed {5,7}
  EXPECT_EQ(core->g, 2U);
}

TEST(CoreAlgorithmTest, PartialCoreKnowledgeStillResolvesToFullCore) {
  // A process that received only 3 of the 5 core PDs of fig4b absorbs the
  // remaining members through S2 — membership agreement does not require
  // equal knowledge.
  const auto inst = graph::figures::fig4b();
  KnowledgeView view(p(9), inst.graph.out_neighbors(p(9)));
  view.add_pd(p(10), inst.graph.out_neighbors(p(10)));
  view.add_pd(p(11), inst.graph.out_neighbors(p(11)));
  const auto core = try_find_core(view, kSearch);
  ASSERT_TRUE(core.has_value());
  EXPECT_EQ(core->members, (IdSet{p(8), p(9), p(10), p(11), p(12)}));
}

TEST(CoreAlgorithmTest, PeripheryOnlyKnowledgeFindsNothingStrong) {
  // A fig4b ring member that has only ring PDs: every candidate has k = 1,
  // which CupftNode's min_core_k = 2 guard rejects (DESIGN.md §4.2).
  const auto inst = graph::figures::fig4b();
  KnowledgeView view(p(1), inst.graph.out_neighbors(p(1)));
  view.add_pd(p(2), inst.graph.out_neighbors(p(2)));
  view.add_pd(p(3), inst.graph.out_neighbors(p(3)));
  const auto core = try_find_core(view, kSearch);
  if (core.has_value()) {
    EXPECT_LT(core->k(), 2U);
  }
}

class RandomCupftCoreTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCupftCoreTest, OmniscientCoreMatchesGroundTruth) {
  Rng rng(GetParam());
  graph::generators::CupftParams params;
  params.f = 1;
  params.core_size = 5;
  params.periphery = 4;
  params.byzantine_in_core = 1;
  const auto sys = graph::generators::random_cupft(params, rng);
  const auto view = KnowledgeView::omniscient(sys.graph);
  const auto core = try_find_core(view, kSearch);
  ASSERT_TRUE(core.has_value());
  // Protocol core = full core (correct + Byzantine members).
  EXPECT_EQ(core->members, sys.sink);
  EXPECT_GE(core->k(), 2U);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCupftCoreTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace bftcup::protocol

// Logger seams: the run-scoped LogCapture (thread-local diversion, no
// global state) and the concurrency contract of set_sink/set_level — a
// test swapping the sink or toggling the level while pool workers log must
// never race (the PR that added the mutex hold across each write; TSan in
// CI is the real referee, these tests give it the schedule).
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "cup/scenario_builder.hpp"
#include "graph/generators.hpp"
#include "protocol/sink_search.hpp"

namespace bftcup {
namespace {

TEST(LogCaptureTest, DivertsOnlyTheConstructingThread) {
  std::ostringstream sink;
  Logger::instance().set_sink(&sink);
  const LogCapture capture;
  LOG_WARN("test") << "captured line";

  // Another thread without a capture still writes to the shared sink.
  std::thread other([] { LOG_WARN("test") << "sink line"; });
  other.join();
  Logger::instance().set_sink(&std::cerr);

  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0], "[WARN ] test: captured line");
  EXPECT_EQ(capture.count_containing("captured"), 1u);
  EXPECT_NE(sink.str().find("sink line"), std::string::npos);
  EXPECT_EQ(sink.str().find("captured"), std::string::npos);
}

TEST(LogCaptureTest, RespectsTheLevelGateAndNests) {
  const LogCapture outer;
  LOG_DEBUG("test") << "below the default kWarn level";
  EXPECT_TRUE(outer.lines().empty());
  {
    const LogCapture inner;
    LOG_ERROR("test") << "inner wins";
    EXPECT_EQ(inner.count_containing("inner wins"), 1u);
    EXPECT_TRUE(outer.lines().empty());
  }
  LOG_ERROR("test") << "outer restored";
  EXPECT_EQ(outer.count_containing("outer restored"), 1u);
  EXPECT_EQ(outer.lines().size(), 1u);
}

// End-to-end through the run pipeline: the big-SCC fallback warning is
// rate-limited to once per run (sink_search's warn-once latch, re-armed by
// execute_scenario). A 70-ring in kAuth mode fires the fallback many times
// — discovery closes the cycle and the SCC jumps straight past the
// enumeration cap — yet exactly one warning line may surface. LogCapture
// asserts this without touching the global sink, so the test is safe under
// a parallel ctest schedule.
TEST(LogCaptureTest, BigSccFallbackWarnsOncePerRun) {
  graph::generators::GeneratedSystem ring;
  for (std::uint64_t i = 0; i < 70; ++i) {
    ring.graph.add_vertex(ProcessId(i + 1));
  }
  for (std::uint64_t i = 0; i < 70; ++i) {
    ring.graph.add_edge_unchecked(ProcessId(i + 1), ProcessId((i + 1) % 70 + 1));
  }
  ring.f = 0;
  for (std::uint64_t i = 0; i < 70; ++i) ring.sink.insert(ProcessId(i + 1));

  const LogCapture capture;
  const auto report = cup::ScenarioBuilder(ring)
                          .mode(cup::Mode::kAuth)
                          .seed(17)
                          .search(std::make_shared<protocol::StructuredSinkSearch>())
                          .run();
  EXPECT_GT(report.big_scc_fallbacks, 0u);
  EXPECT_EQ(capture.count_containing("exceeds enumeration cap"), 1u);

  // A second run re-arms the latch: once per *run*, not once per process.
  const auto again = cup::ScenarioBuilder(ring)
                         .mode(cup::Mode::kAuth)
                         .seed(18)
                         .search(std::make_shared<protocol::StructuredSinkSearch>())
                         .run();
  EXPECT_GT(again.big_scc_fallbacks, 0u);
  EXPECT_EQ(capture.count_containing("exceeds enumeration cap"), 2u);
}

// The PR-6 concurrency fix: set_sink holds the write mutex, so swapping
// sinks under concurrent writers can never tear a line or race the
// pointer; set_level is atomic. Writers log through the real sink path (no
// captures), the main thread swaps between two local sinks and toggles the
// level throughout. TSan verifies the absence of a data race; the line
// accounting verifies no write landed anywhere unexpected.
TEST(LoggerConcurrencyTest, SinkSwapAndLevelToggleUnderConcurrentWriters) {
  constexpr int kWriters = 4;
  constexpr int kLinesPerWriter = 200;
  std::ostringstream sink_a;
  std::ostringstream sink_b;
  Logger::instance().set_sink(&sink_a);

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      for (int i = 0; i < kLinesPerWriter; ++i) {
        LOG_ERROR("race") << "writer " << w << " line " << i;
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    Logger::instance().set_sink(i % 2 == 0 ? &sink_b : &sink_a);
    Logger::instance().set_level(i % 3 == 0 ? LogLevel::kOff
                                            : LogLevel::kWarn);
  }
  for (std::thread& writer : writers) writer.join();
  Logger::instance().set_sink(&std::cerr);
  Logger::instance().set_level(LogLevel::kWarn);

  const auto count_lines = [](const std::string& text) {
    std::size_t lines = 0;
    for (char c : text) {
      if (c == '\n') ++lines;
    }
    return lines;
  };
  // Level toggling may drop writes (kOff windows), never duplicate them;
  // every surviving line is whole (each write holds the mutex end to end).
  const std::size_t total =
      count_lines(sink_a.str()) + count_lines(sink_b.str());
  EXPECT_LE(total, static_cast<std::size_t>(kWriters * kLinesPerWriter));
  for (const std::string text : {sink_a.str(), sink_b.str()}) {
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
      EXPECT_EQ(line.rfind("[ERROR] race: writer ", 0), 0u) << line;
    }
  }
}

}  // namespace
}  // namespace bftcup

#include <gtest/gtest.h>

#include <algorithm>

#include "cup/scenario_registry.hpp"

namespace bftcup::cup {
namespace {

TEST(ScenarioRegistryTest, PaperCatalogCoversTheAnchors) {
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  // Every Table I cell.
  EXPECT_EQ(registry.names_with_tag("table1").size(), 9u);
  // Every figure family is represented.
  for (const char* name :
       {"fig1a/silent", "fig1b/silent", "fig1b/fake-pd", "fig1b/wrong-value",
        "fig2/system-a-naive", "fig2/system-ab-naive", "fig2/system-ab-cupft",
        "fig3a/auth", "fig3a/cupft", "fig3b/auth", "fig3b/cupft",
        "fig4a/cupft-silent", "fig4b/cupft-fake-pd",
        "fig4a/bridge-hiding-attack", "fig4a/bridge-hiding-guarded",
        "quickstart/fig1b-auth", "adhoc/f1", "blockchain/committee",
        "price-of-f/core5-peri3/auth"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
}

TEST(ScenarioRegistryTest, NamesAreSortedAndSizedConsistently) {
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  const auto names = registry.names();
  EXPECT_EQ(names.size(), registry.size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ScenarioRegistryTest, LookupFailuresAreExplicit) {
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  EXPECT_EQ(registry.find("no-such-scenario"), nullptr);
  EXPECT_FALSE(registry.contains("no-such-scenario"));
  EXPECT_THROW(registry.builder("no-such-scenario"), ScenarioError);
  EXPECT_TRUE(registry.names_with_tag("no-such-tag").empty());
}

TEST(ScenarioRegistryTest, FactoriesRespectTheSeed) {
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  for (const char* name :
       {"fig1b/silent", "table1/sync/known-n-known-f", "adhoc/f1"}) {
    EXPECT_EQ(registry.make(name, 31).sim.seed, 31u) << name;
  }
}

TEST(ScenarioRegistryTest, EveryEntryBuildsAValidScenario) {
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  for (const auto& name : registry.names()) {
    EXPECT_NO_THROW((void)registry.make(name, 1)) << name;
  }
}

TEST(ScenarioRegistryTest, EntriesCarryDescriptionsAndTags) {
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  for (const auto& [name, entry] : registry.entries()) {
    EXPECT_FALSE(entry.description.empty()) << name;
    EXPECT_FALSE(entry.tags.empty()) << name;
  }
}

TEST(ScenarioRegistryTest, DuplicateRegistrationRejected) {
  ScenarioRegistry registry;
  ScenarioRegistry::Entry entry{
      "custom/one", "a custom scenario", {"custom"}, [](std::uint64_t seed) {
        return ScenarioRegistry::paper().builder("fig1b/silent", seed);
      }};
  registry.add(entry);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_THROW(registry.add(entry), ScenarioError);
}

TEST(ScenarioRegistryTest, TagEnumerationFindsCupftScenarios) {
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  const auto cupft = registry.names_with_tag("cupft");
  EXPECT_FALSE(cupft.empty());
  for (const auto& name : cupft) {
    EXPECT_EQ(registry.make(name).mode, Mode::kCupft) << name;
  }
}

TEST(ScenarioRegistryTest, RunExecutesARegisteredScenario) {
  // The sync known-everything Table I cell degenerates to PBFT on K4 and
  // decides almost immediately.
  const RunReport report =
      ScenarioRegistry::paper().run("table1/sync/known-n-known-f", 1);
  EXPECT_EQ(report.verdict(), "SOLVED");
}

}  // namespace
}  // namespace bftcup::cup

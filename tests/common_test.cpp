#include <gtest/gtest.h>

#include <set>

#include "common/flat_set.hpp"
#include "common/hex.hpp"
#include "common/random.hpp"
#include "common/types.hpp"

namespace bftcup {
namespace {

TEST(ProcessIdTest, OrderingAndEquality) {
  EXPECT_EQ(ProcessId(3), ProcessId(3));
  EXPECT_NE(ProcessId(3), ProcessId(4));
  EXPECT_LT(ProcessId(3), ProcessId(4));
  EXPECT_EQ(to_string(ProcessId(42)), "p42");
}

TEST(ProcessIdTest, HashSpreadsSmallIds) {
  std::set<std::size_t> hashes;
  for (std::uint64_t i = 0; i < 100; ++i) {
    hashes.insert(std::hash<ProcessId>{}(ProcessId(i)));
  }
  EXPECT_EQ(hashes.size(), 100U);
}

TEST(FlatSetTest, InsertEraseContains) {
  IdSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(ProcessId(5)));
  EXPECT_FALSE(s.insert(ProcessId(5)));
  EXPECT_TRUE(s.insert(ProcessId(2)));
  EXPECT_TRUE(s.contains(ProcessId(5)));
  EXPECT_FALSE(s.contains(ProcessId(3)));
  EXPECT_EQ(s.size(), 2U);
  EXPECT_TRUE(s.erase(ProcessId(5)));
  EXPECT_FALSE(s.erase(ProcessId(5)));
  EXPECT_EQ(s.size(), 1U);
}

TEST(FlatSetTest, InitializerListDeduplicatesAndSorts) {
  IdSet s = {ProcessId(3), ProcessId(1), ProcessId(3), ProcessId(2)};
  EXPECT_EQ(s.size(), 3U);
  std::vector<ProcessId> order(s.begin(), s.end());
  EXPECT_EQ(order,
            (std::vector<ProcessId>{ProcessId(1), ProcessId(2), ProcessId(3)}));
}

TEST(FlatSetTest, SetAlgebra) {
  IdSet a = {ProcessId(1), ProcessId(2), ProcessId(3)};
  IdSet b = {ProcessId(2), ProcessId(3), ProcessId(4)};
  EXPECT_EQ(a.set_union(b),
            (IdSet{ProcessId(1), ProcessId(2), ProcessId(3), ProcessId(4)}));
  EXPECT_EQ(a.set_difference(b), (IdSet{ProcessId(1)}));
  EXPECT_EQ(a.set_intersection(b), (IdSet{ProcessId(2), ProcessId(3)}));
}

TEST(FlatSetTest, SubsetChecks) {
  IdSet a = {ProcessId(1), ProcessId(2)};
  IdSet b = {ProcessId(1), ProcessId(2), ProcessId(3)};
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(IdSet{}.is_subset_of(a));
}

TEST(FlatSetTest, InsertAllCountsNewElements) {
  IdSet a = {ProcessId(1)};
  IdSet b = {ProcessId(1), ProcessId(2), ProcessId(3)};
  EXPECT_EQ(a.insert_all(b), 2U);
  EXPECT_EQ(a.insert_all(b), 0U);
}

TEST(FlatSetTest, LexicographicOrderForMapKeys) {
  IdSet a = {ProcessId(1)};
  IdSet b = {ProcessId(1), ProcessId(2)};
  IdSet c = {ProcessId(2)};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next() != b.next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13U);
  }
}

TEST(RngTest, NextInInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ForkIndependentStreams) {
  Rng base(3);
  Rng s1 = base.fork(1);
  Rng s2 = base.fork(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (s1.next() != s2.next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(HexTest, RoundTrip) {
  const Bytes data = {0x00, 0x7f, 0xff, 0x10};
  const std::string hex = to_hex(data);
  EXPECT_EQ(hex, "007fff10");
  const auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(HexTest, RejectsMalformed) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // non-hex
  EXPECT_TRUE(from_hex("").has_value());       // empty is fine
}

TEST(BytesTest, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
}

}  // namespace
}  // namespace bftcup

// A corpus of adversarial behaviors beyond the standard four, each probing
// one assumption of the model (§II-A).
#include <gtest/gtest.h>

#include "adversary/behaviors.hpp"
#include "cup/scenario_builder.hpp"
#include "cup/scenario_registry.hpp"
#include "graph/osr.hpp"
#include "test_util.hpp"

namespace bftcup {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

TEST(AttackCorpusTest, FakeIdsInPdCannotBlockConsensus) {
  // Byzantine 4 advertises a PD full of processes that do not exist (it
  // cannot mint identities that *answer* — Sybil resistance, §II-A).
  // Messages to them vanish; consensus must still solve.
  const auto report = cup::ScenarioBuilder(graph::figures::fig1b())
                          .mode(cup::Mode::kAuth)
                          .byz(cup::ByzBehavior::kFakePd)
                          .fake_pd(p(4), {p(901), p(902), p(903)})  // ghosts
                          .run();
  EXPECT_EQ(report.verdict(), "SOLVED");
}

TEST(AttackCorpusTest, GhostsNeverEnterTheSink) {
  // Ghost ids are known (via the Byzantine PD) but can never enter S1 (no
  // received PD) nor S2 (at most f=1 pointer). Membership stays real.
  const auto report = cup::ScenarioBuilder(graph::figures::fig1b())
                          .mode(cup::Mode::kAuth)
                          .byz(cup::ByzBehavior::kFakePd)
                          .fake_pd(p(4), {p(1), p(901)})
                          .run();
  ASSERT_EQ(report.verdict(), "SOLVED");
  for (const auto& [who, members] : report.memberships) {
    EXPECT_FALSE(members.contains(p(901))) << to_string(who);
  }
}

TEST(AttackCorpusTest, ReplayedSignedPdsAreIdempotent) {
  // A relay replaying the same signed PD hundreds of times must not distort
  // the view (first-wins) nor prevent convergence.
  sim::Simulator::Options options;
  options.horizon = 3'000;
  sim::Simulator simulator(options);

  // Victim: discovery-only probe (reuses node plumbing via scenario would
  // be heavier; direct messages suffice).
  protocol::KnowledgeView observed;
  auto victim = std::make_unique<test::ScriptedProcess>(p(1));
  auto discovery = std::make_shared<protocol::Discovery>(
      p(1), IdSet{p(2)}, 50);
  victim->on_start_do([discovery](sim::Context& ctx) {
    discovery->start(ctx);
  });
  victim->on_message_do([discovery](ProcessId from, const msg::Message& m,
                                    sim::Context& ctx) {
    discovery->handle_message(from, m, ctx);
  });
  victim->on_timer_do([discovery](int kind, sim::Context& ctx) {
    if ((kind & 0xff) == protocol::Discovery::kTimerKind) {
      discovery->on_timer(kind, ctx);
    }
  });
  simulator.add_process(std::move(victim));

  auto replayer = std::make_unique<test::ScriptedProcess>(p(2));
  replayer->on_message_do([](ProcessId from, const msg::Message& m,
                             sim::Context& ctx) {
    if (m.type != msg::MsgType::kGetPds) return;
    msg::SignedPd own;
    own.owner = p(2);
    own.pd = IdSet{p(3)};
    own.sig = ctx.signer().sign(msg::SignedPd::payload(p(2), own.pd));
    msg::Message reply;
    reply.type = msg::MsgType::kSetPds;
    for (int i = 0; i < 50; ++i) reply.pds.push_back(own);  // replay x50
    ctx.send(from, std::move(reply));
  });
  simulator.add_process(std::move(replayer));
  simulator.run();

  ASSERT_NE(discovery->view().pd_of(p(2)), nullptr);
  EXPECT_EQ(*discovery->view().pd_of(p(2)), (IdSet{p(3)}));
  // S_PD holds exactly own + one copy of PD_2.
  EXPECT_EQ(discovery->signed_pds().size(), 2U);
}

TEST(AttackCorpusTest, CrashMidConsensusStillTerminates) {
  // A sink member that behaves correctly through discovery and then goes
  // silent mid-consensus (crash fault, weaker than Byzantine): the quorum
  // ⌈(|S|+f+1)/2⌉ tolerates it.
  const auto inst = graph::figures::fig1b();
  const auto report =
      cup::ScenarioBuilder(inst)  // 4 crashes...
          .mode(cup::Mode::kAuth)
          .byz(cup::ByzBehavior::kFakePd)  // ByzantineNode participates
          .fake_pd(p(4), inst.graph.out_neighbors(p(4)))  // true PD
          .run();
  // 4 participates in discovery but never in PBFT (our ByzantineNode stays
  // silent in consensus) — exactly the crash-after-discovery pattern.
  EXPECT_EQ(report.verdict(), "SOLVED");
}

TEST(AttackCorpusTest, WrongValueFloodCannotOutvoteMembers) {
  // Byzantine answers GETDECIDEDVAL instantly with 666 while real members
  // are still deciding; the ⌈(|S|+1)/2⌉ rule keeps non-members safe even
  // though the liar is the fastest responder.
  const auto report =
      cup::ScenarioBuilder(graph::figures::fig1b())
          .mode(cup::Mode::kAuth)
          .byz(cup::ByzBehavior::kWrongValue)
          .gst(1'000)  // slow start maximizes the liar's head start
          .run();
  ASSERT_EQ(report.verdict(), "SOLVED");
  for (const auto& [who, d] : report.decisions) {
    EXPECT_NE(d.value, 666U) << to_string(who);
  }
}

// --- the explorer-found corpus (registry family "explored/*") -------------
// Minimized by the adversary explorer's shrinker (1-minimal: no single
// deletion preserves the classification); lines live in
// scenario_registry.cpp, digests in determinism_test.cpp. These tests pin
// the *verdicts* each counterexample was checked in for, replayed from the
// registry name alone.

TEST(ExploredCorpusTest, VerdictsMatchTheMinimizedFindings) {
  const struct {
    const char* name;
    const char* verdict;
  } expected[] = {
      {"explored/agreement-14960b90", "AGREEMENT-VIOLATED"},
      {"explored/agreement-2085e512", "AGREEMENT-VIOLATED"},
      {"explored/agreement-2085e512-guarded", "NO-TERMINATION"},
      {"explored/agreement-unsat-a872e429", "AGREEMENT-VIOLATED"},
      {"explored/liveness-94af2f39", "NO-TERMINATION"},
      {"explored/liveness-489bf1e6", "NO-TERMINATION"},
      {"explored/liveness-fda77490", "NO-TERMINATION"},
      {"explored/witness-45674aae", "SOLVED"},
  };
  const auto& registry = cup::ScenarioRegistry::paper();
  for (const auto& [name, verdict] : expected) {
    EXPECT_EQ(registry.run(name).verdict(), verdict) << name;
  }
}

TEST(ExploredCorpusTest, AdversaryFreeAgreementBreakHasNoByzantineHelp) {
  // The star finding: agreement breaks among 8 *correct* processes. Pin
  // the structural facts that make it remarkable, not just the verdict.
  const auto& registry = cup::ScenarioRegistry::paper();
  const cup::Scenario scenario =
      registry.make("explored/agreement-14960b90");
  EXPECT_TRUE(scenario.faulty.empty());
  EXPECT_TRUE(
      graph::check_bft_cup_requirements(scenario.graph, scenario.faulty,
                                        scenario.f)
          .satisfied);
  const auto report = cup::run_scenario(scenario);
  EXPECT_FALSE(report.agreement);
  EXPECT_EQ(report.correct.size(), 8U);
}

TEST(ExploredCorpusTest, ClosureGuardTradesTheNewAttackForLiveness) {
  // Same genome, guard on vs off — the fig4a/bridge-hiding pattern holds
  // for the generalized attack the explorer found.
  const auto& registry = cup::ScenarioRegistry::paper();
  const auto attack = registry.run("explored/agreement-2085e512");
  const auto guarded = registry.run("explored/agreement-2085e512-guarded");
  EXPECT_FALSE(attack.agreement);
  EXPECT_TRUE(guarded.agreement);
  EXPECT_FALSE(guarded.all_correct_decided);
}

class AttackMatrixSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(AttackMatrixSweep, CupftSolvesUnderEveryBehaviorOnFig4b) {
  const auto [byz_int, seed] = GetParam();
  const auto report = cup::ScenarioBuilder(graph::figures::fig4b())
                          .mode(cup::Mode::kCupft)
                          .byz(static_cast<cup::ByzBehavior>(byz_int))
                          .seed(seed)
                          .run();
  EXPECT_TRUE(report.agreement) << "byz=" << byz_int << " seed=" << seed;
  EXPECT_TRUE(report.all_correct_decided)
      << "byz=" << byz_int << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AttackMatrixSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),  // all four behaviors
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace bftcup

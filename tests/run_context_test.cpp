// The run engine's recycling contract: a RunContext that has executed any
// number of prior runs is observationally identical to a fresh simulator.
//
// This is the state-leak tripwire for the whole pooled engine — simulator
// reset, arena rewind, keyring cache, the retained content-addressed
// caches, and the bucketed event queue all sit under it. The property runs
// every explored/* corpus scenario and the dyn/* fault-timeline family
// (the paths that exercise crash/recover, partitions, late joins, fake
// PDs, and the Byzantine behaviors) twice through ONE context, interleaved,
// and demands byte-identical RunReport digests against fresh runs. Under
// ASan this is also where use-after-rewind bugs surface first.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cup/run_context.hpp"
#include "cup/scenario_builder.hpp"
#include "cup/scenario_registry.hpp"

namespace bftcup {
namespace {

using cup::RunContext;
using cup::RunReport;
using cup::Scenario;
using cup::ScenarioRegistry;

std::vector<std::string> recycling_corpus() {
  std::vector<std::string> names;
  for (const auto& [name, entry] : ScenarioRegistry::paper().entries()) {
    (void)entry;
    if (name.starts_with("explored/") || name.starts_with("dyn/")) {
      names.push_back(name);
    }
  }
  return names;
}

Scenario scenario_for(const std::string& name, std::uint64_t seed) {
  const auto* entry = ScenarioRegistry::paper().find(name);
  EXPECT_NE(entry, nullptr) << name;
  return entry->make(seed).seed(seed).build();
}

TEST(RunContextTest, RecycledRunsMatchFreshRunsByteForByte) {
  const auto corpus = recycling_corpus();
  ASSERT_GE(corpus.size(), 10u);  // explored/* (8) + dyn/* (6)

  RunContext context;
  // Two interleaved passes through one context: pass 2 replays every
  // scenario on a context warmed by *all* of them, so cross-scenario
  // leakage (not just same-scenario) would be caught.
  std::vector<std::string> first_pass;
  for (int pass = 0; pass < 2; ++pass) {
    std::size_t index = 0;
    for (const std::string& name : corpus) {
      const std::uint64_t seed = 1 + (index++ % 2) * 6;  // seeds 1 and 7
      const Scenario scenario = scenario_for(name, seed);
      const std::string fresh = cup::run_scenario(scenario).digest();
      const std::string recycled = context.run(scenario).digest();
      EXPECT_EQ(recycled, fresh) << name << " seed " << seed
                                 << " pass " << pass;
      if (pass == 0) {
        first_pass.push_back(recycled);
      } else {
        EXPECT_EQ(recycled, first_pass[index - 1]) << name << " pass replay";
      }
    }
  }
  EXPECT_EQ(context.runs_executed(), corpus.size() * 2);
}

TEST(RunContextTest, KnobsAreDigestNeutral) {
  const Scenario base = scenario_for("dyn/crash-mid-discovery", 5);
  const std::string reference = cup::run_scenario(base).digest();

  for (const bool pooling : {false, true}) {
    for (const bool arena : {false, true}) {
      const auto* entry = ScenarioRegistry::paper().find("dyn/crash-mid-discovery");
      ASSERT_NE(entry, nullptr);
      const Scenario scenario = entry->make(5)
                                    .seed(5)
                                    .context_pooling(pooling)
                                    .arena(arena)
                                    .build();
      RunContext context;
      EXPECT_EQ(context.run(scenario).digest(), reference)
          << "pooling=" << pooling << " arena=" << arena;
    }
  }
}

TEST(RunContextTest, RunEngineCountersDescribeTheContext) {
  const Scenario scenario = scenario_for("explored/agreement-14960b90", 1);

  RunContext context;
  const RunReport first = context.run(scenario);
  EXPECT_EQ(first.contexts_recycled, 0u);
  EXPECT_GT(first.arena_bytes_peak, 0u);

  // Identical replays on the recycled context: the work *requested* is a
  // pure function of the run (evaluations constant), and within a few
  // replays the probe gate's deterministic retry cadence must realign with
  // a stored view and start serving membership evaluations from the
  // retained memo (the cadence cycles through at most kProbeRetry offsets).
  std::uint64_t warm_hits = 0;
  for (int replay = 1; replay <= 10; ++replay) {
    const RunReport r = context.run(scenario);
    EXPECT_EQ(r.contexts_recycled, static_cast<std::uint64_t>(replay));
    EXPECT_EQ(r.evaluations, first.evaluations) << "replay " << replay;
    EXPECT_EQ(r.digest(), first.digest()) << "replay " << replay;
    warm_hits += r.eval_cache_hits;
  }
  EXPECT_GT(warm_hits, 0u);
}

TEST(RunContextTest, ArenaOffRunsReportNoArenaBytes) {
  const auto* entry = ScenarioRegistry::paper().find("dyn/staggered-join");
  ASSERT_NE(entry, nullptr);
  const Scenario scenario = entry->make(3).seed(3).arena(false).build();
  RunContext context;
  const RunReport report = context.run(scenario);
  EXPECT_EQ(report.arena_bytes_peak, 0u);
}

TEST(RunContextTest, PoolingOffDelegatesToFreshRuns) {
  const auto* entry = ScenarioRegistry::paper().find("dyn/link-flap");
  ASSERT_NE(entry, nullptr);
  const Scenario scenario = entry->make(2).seed(2).context_pooling(false).build();
  RunContext context;
  const RunReport a = context.run(scenario);
  const RunReport b = context.run(scenario);
  EXPECT_EQ(a.contexts_recycled, 0u);
  EXPECT_EQ(b.contexts_recycled, 0u);  // never recycled: fresh every time
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(context.runs_executed(), 2u);
}

}  // namespace
}  // namespace bftcup

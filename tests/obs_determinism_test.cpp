// The observation-only property: Scenario::metrics and trace_capacity must
// be invisible in results. Every explored-corpus and dynamic registry
// scenario is replayed with the full observability stack attached — metrics
// on, the span flight recorder installed — at serial and parallel thread
// counts, and the RunReport digest must be byte-identical to the bare run.
// This is the obs analogue of parallel_determinism_test: the corpus covers
// adversarial topologies (big-SCC shapes included, so the certification
// span and fallback counter fire) and fault-timeline churn.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cup/scenario_registry.hpp"

namespace bftcup {
namespace {

using cup::RunReport;
using cup::ScenarioRegistry;

std::vector<std::string> corpus() {
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  std::vector<std::string> names = registry.names_with_tag("explored");
  for (std::string& name : registry.names_with_tag("dynamic")) {
    names.push_back(std::move(name));
  }
  return names;
}

TEST(ObsDeterminismTest, CorpusDigestsAreObsInvariantAtEveryThreadCount) {
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  const std::vector<std::string> names = corpus();
  ASSERT_FALSE(names.empty());

  for (const std::string& name : names) {
    // Baseline: observability fully off (no registry, no tracer).
    const RunReport bare = cup::run_scenario(
        registry.builder(name).seed(1).metrics(false).build());
    const std::string expected = bare.digest();
    EXPECT_TRUE(bare.metrics.empty()) << name;
    EXPECT_EQ(bare.spans, nullptr) << name;

    for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const RunReport observed = cup::run_scenario(registry.builder(name)
                                                       .seed(1)
                                                       .metrics(true)
                                                       .tracing(true)
                                                       .parallel_eval(threads)
                                                       .build());
      EXPECT_EQ(observed.digest(), expected)
          << name << " with obs on at parallel_eval=" << threads;
      EXPECT_EQ(observed.verdict(), bare.verdict())
          << name << " at parallel_eval=" << threads;
      ASSERT_NE(observed.spans, nullptr) << name;
      EXPECT_GT(observed.spans->started, 0u) << name;
      EXPECT_FALSE(observed.metrics.empty()) << name;

      // Legacy counter fields are mirrors of the snapshot's standard
      // names — they can never drift from it.
      EXPECT_EQ(observed.evaluations,
                observed.metrics.counter("eval.requested"))
          << name;
      EXPECT_EQ(observed.eval_cache_hits,
                observed.metrics.counter("eval.cache_hits"))
          << name;
      EXPECT_EQ(observed.signatures_verified,
                observed.metrics.counter("sig.verified"))
          << name;
      EXPECT_EQ(observed.signatures_cached,
                observed.metrics.counter("sig.cached"))
          << name;
      EXPECT_EQ(observed.big_scc_fallbacks,
                observed.metrics.counter("engine.big_scc_fallbacks"))
          << name;
      EXPECT_EQ(observed.eval_tasks_dispatched,
                observed.metrics.counter("engine.eval_tasks_dispatched"))
          << name;
      EXPECT_EQ(observed.arena_bytes_peak,
                observed.metrics.gauge("engine.arena_bytes_peak"))
          << name;
    }
  }
}

TEST(ObsDeterminismTest, DeterministicTraceShapeIsThreadCountInvariant) {
  // Wall times differ every run, but what the run *did* — which spans
  // opened, how many, in which start order, over which sim-time windows —
  // is replay state and must match across thread counts. Spot-check with
  // the first corpus scenario (explored shapes drive the membership kernel
  // hardest, so the parallel path genuinely executes).
  const std::vector<std::string> names = corpus();
  ASSERT_FALSE(names.empty());
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  const std::string& name = names.front();

  const auto traced = [&](std::size_t threads) {
    return cup::run_scenario(registry.builder(name)
                                 .seed(1)
                                 .tracing(true)
                                 .parallel_eval(threads)
                                 .build());
  };
  const RunReport serial = traced(1);
  const RunReport parallel = traced(8);
  ASSERT_NE(serial.spans, nullptr);
  ASSERT_NE(parallel.spans, nullptr);

  // Only the protocol/simulator layers are compared: they always execute
  // on the run's own thread, so their spans are replay state — same spans,
  // same completion order, same sim-time windows, same site arguments.
  // Scheduling spans (workpool.*) describe how work was placed, and the
  // membership-evaluation spans/probes cover whatever the caller context
  // evaluated — under a parallel dispatch some evaluations move to obs-
  // silent workers, so both families legitimately thin out with the thread
  // count (like the eval_tasks_dispatched counter).
  struct Shape {
    std::string name;
    SimTime sim_begin;
    SimTime sim_end;
    std::uint64_t arg;
    bool operator==(const Shape&) const = default;
  };
  const auto shape_of = [](const obs::SpanTrace& trace) {
    std::vector<Shape> shape;
    for (const obs::SpanRecord& rec : trace.records) {
      const std::string& span_name = trace.names[rec.name_id];
      const bool replay_layer = span_name.rfind("run.", 0) == 0 ||
                                span_name.rfind("sim.", 0) == 0 ||
                                span_name.rfind("discovery.", 0) == 0 ||
                                span_name.rfind("pbft.", 0) == 0;
      if (!replay_layer) continue;
      shape.push_back({span_name, rec.sim_begin, rec.sim_end, rec.arg});
    }
    return shape;
  };
  const std::vector<Shape> serial_shape = shape_of(*serial.spans);
  const std::vector<Shape> parallel_shape = shape_of(*parallel.spans);
  ASSERT_EQ(serial_shape.size(), parallel_shape.size()) << name;
  EXPECT_FALSE(serial_shape.empty()) << name;
  for (std::size_t i = 0; i < serial_shape.size(); ++i) {
    EXPECT_TRUE(serial_shape[i] == parallel_shape[i])
        << name << " record " << i << ": " << serial_shape[i].name << " vs "
        << parallel_shape[i].name;
  }
}

TEST(ObsDeterminismTest, TinyRingDigestsMatchUnboundedTrace) {
  // The flight recorder's wrap-around path must be as invisible as the
  // recorder itself: a capacity that drops most records cannot change the
  // run.
  const std::vector<std::string> names = corpus();
  ASSERT_FALSE(names.empty());
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  const std::string& name = names.front();

  const RunReport roomy = cup::run_scenario(
      registry.builder(name).seed(1).tracing(true).build());
  const RunReport tiny = cup::run_scenario(
      registry.builder(name).seed(1).trace_capacity(8).build());
  EXPECT_EQ(tiny.digest(), roomy.digest());
  ASSERT_NE(tiny.spans, nullptr);
  EXPECT_LE(tiny.spans->records.size(), 8u);
  EXPECT_EQ(tiny.spans->started, roomy.spans->started);
  EXPECT_GT(tiny.spans->dropped, 0u);
}

}  // namespace
}  // namespace bftcup

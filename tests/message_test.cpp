#include <gtest/gtest.h>

#include "msg/message.hpp"

namespace bftcup::msg {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

TEST(MessageTest, TypeNamesCoverAllVariants) {
  for (auto t : {MsgType::kGetPds, MsgType::kSetPds, MsgType::kGetDecidedVal,
                 MsgType::kDecidedVal, MsgType::kPbftPrePrepare,
                 MsgType::kPbftPrepare, MsgType::kPbftCommit,
                 MsgType::kPbftViewChange, MsgType::kPbftNewView,
                 MsgType::kPbftDecide, MsgType::kRrbForward}) {
    EXPECT_STRNE(to_string(t), "?");
  }
}

TEST(MessageTest, SignedPdPayloadIsCanonical) {
  const Bytes a = SignedPd::payload(p(1), IdSet{p(2), p(3)});
  const Bytes b = SignedPd::payload(p(1), IdSet{p(3), p(2)});
  EXPECT_EQ(a, b);  // FlatSet ordering makes the encoding order-free
}

TEST(MessageTest, SignedPdPayloadBindsOwnerAndContents) {
  const Bytes base = SignedPd::payload(p(1), IdSet{p(2)});
  EXPECT_NE(base, SignedPd::payload(p(2), IdSet{p(2)}));
  EXPECT_NE(base, SignedPd::payload(p(1), IdSet{p(3)}));
}

TEST(MessageTest, PbftPayloadDomainSeparatedFromPd) {
  // A signature over a PD must never validate as a PBFT phase message.
  const Bytes pd = SignedPd::payload(p(1), IdSet{});
  const Bytes pbft = pbft_payload(MsgType::kPbftPrepare, 0, 0);
  EXPECT_NE(pd, pbft);
}

TEST(MessageTest, PbftPayloadBindsPhaseViewValue) {
  const Bytes base = pbft_payload(MsgType::kPbftPrepare, 3, 42);
  EXPECT_NE(base, pbft_payload(MsgType::kPbftCommit, 3, 42));
  EXPECT_NE(base, pbft_payload(MsgType::kPbftPrepare, 4, 42));
  EXPECT_NE(base, pbft_payload(MsgType::kPbftPrepare, 3, 43));
}

TEST(MessageTest, EncodedSizeGrowsWithContent) {
  Message small;
  small.type = MsgType::kGetPds;
  Message big;
  big.type = MsgType::kSetPds;
  for (std::uint64_t i = 0; i < 10; ++i) {
    SignedPd spd;
    spd.owner = p(i);
    spd.pd = IdSet{p(i + 1), p(i + 2), p(i + 3)};
    big.pds.push_back(spd);
  }
  EXPECT_GT(big.encoded_size(), small.encoded_size());
}

TEST(MessageTest, EncodedSizeCountsCertificates) {
  Message m;
  m.type = MsgType::kPbftViewChange;
  const std::size_t bare = m.encoded_size();
  QuorumCert cert;
  cert.view = 1;
  cert.value = 9;
  cert.shares.resize(4);
  m.cert = cert;
  EXPECT_GT(m.encoded_size(), bare + 4 * 64);  // four 64-byte signatures
}

TEST(MessageTest, EncodedSizeCountsRrbPath) {
  Message m;
  m.type = MsgType::kRrbForward;
  m.origin = p(1);
  m.origin_pd = IdSet{p(2)};
  const std::size_t bare = m.encoded_size();
  m.path = {p(3), p(4), p(5)};
  EXPECT_GT(m.encoded_size(), bare);
}

}  // namespace
}  // namespace bftcup::msg

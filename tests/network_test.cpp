// Regression tests for the partial-synchrony clamp (paper §II-A): a message
// sent at time t is delivered by max(t, GST) + δ, never before t + min_delay.
#include <gtest/gtest.h>

#include "sim/network.hpp"

namespace bftcup::sim {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

TEST(SynchronyCapTest, SentExactlyAtGstIsPostGst) {
  // The boundary message is a post-GST message: its cap is GST + δ, not
  // GST + δ plus pre-GST slack.
  NetConfig cfg;
  cfg.gst = 1'000;
  cfg.delta = 10;
  EXPECT_EQ(synchrony_cap(1'000, cfg), 1'010);
  // One tick earlier is still capped at GST + δ...
  EXPECT_EQ(synchrony_cap(999, cfg), 1'010);
  // ...one tick later moves the cap with the send time.
  EXPECT_EQ(synchrony_cap(1'001, cfg), 1'011);
}

TEST(SynchronyCapTest, CapNeverUndercutsMinDelayFloor) {
  NetConfig cfg;
  cfg.gst = 0;
  cfg.delta = 5;
  cfg.min_delay = 20;  // over-constrained: floor beats δ
  EXPECT_EQ(synchrony_cap(100, cfg), 120);
  // With min_delay <= δ the cap is the classic max(t, GST) + δ.
  cfg.min_delay = 1;
  EXPECT_EQ(synchrony_cap(100, cfg), 105);
}

TEST(SynchronyCapTest, SaturatesNearTheTimeLimit) {
  NetConfig cfg;
  cfg.gst = kSimTimeMax - 5;
  cfg.delta = 100;
  EXPECT_EQ(synchrony_cap(0, cfg), kSimTimeMax);
  // The floor saturates too.
  cfg.gst = 0;
  cfg.delta = 1;
  cfg.min_delay = 100;
  EXPECT_EQ(synchrony_cap(kSimTimeMax - 5, cfg), kSimTimeMax);
}

TEST(RandomDelayPolicyTest, SentExactlyAtGstDeliversWithinDelta) {
  NetConfig cfg;
  cfg.gst = 500;
  cfg.delta = 10;
  Rng rng(11);
  RandomDelayPolicy policy;
  for (int i = 0; i < 300; ++i) {
    const SimTime t = policy.delivery_time(p(1), p(2), 500, rng, cfg);
    EXPECT_GT(t, 500);
    EXPECT_LE(t, 510);
  }
}

TEST(RandomDelayPolicyTest, MinDelayAboveDeltaDeliversAtTheFloorPostGst) {
  NetConfig cfg;
  cfg.gst = 0;
  cfg.delta = 5;
  cfg.min_delay = 20;
  Rng rng(7);
  RandomDelayPolicy policy;
  for (int i = 0; i < 100; ++i) {
    // The post-GST window [sent + min_delay, sent + δ] is empty; the floor
    // wins and delivery lands exactly on it.
    EXPECT_EQ(policy.delivery_time(p(1), p(2), 100, rng, cfg), 120);
  }
}

TEST(RandomDelayPolicyTest, MinDelayAboveDeltaPreGstStaysInWindow) {
  NetConfig cfg;
  cfg.gst = 1'000;
  cfg.delta = 5;
  cfg.min_delay = 20;
  Rng rng(7);
  RandomDelayPolicy policy;
  for (int i = 0; i < 300; ++i) {
    const SimTime t = policy.delivery_time(p(1), p(2), 100, rng, cfg);
    EXPECT_GE(t, 120);     // never before the floor
    EXPECT_LE(t, 1'005);   // never after max(t, GST) + δ
  }
}

TEST(WrappedPolicyTest, StretchClampCannotBeatTheFloor) {
  // Regression: the stretch policies clamp to synchrony_cap; before the fix
  // a min_delay > δ configuration let that clamp deliver *earlier* than the
  // physical floor.
  NetConfig cfg;
  cfg.gst = 0;
  cfg.delta = 5;
  cfg.min_delay = 20;
  Rng rng(3);
  SlowSenderPolicy slow(std::make_unique<RandomDelayPolicy>(), IdSet{p(9)},
                        /*release_at=*/2);
  GroupStretchPolicy stretch(std::make_unique<RandomDelayPolicy>(),
                             IdSet{p(1)}, IdSet{p(2)}, /*release_at=*/2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(slow.delivery_time(p(9), p(1), 100, rng, cfg), 120);
    EXPECT_GE(stretch.delivery_time(p(1), p(2), 100, rng, cfg), 120);
  }
}

}  // namespace
}  // namespace bftcup::sim

// Seeded randomized equivalence of every blocked-bitset kernel
// (common/bitset64.hpp) against the scalar FlatSet reference, plus the
// adaptive probe's representation invariants. Runs under ASan in the
// default preset and under the tsan preset (the kernels are meant for
// shared read-only snapshots, so the suite doubles as the data-race
// canary for them).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/bitset64.hpp"
#include "common/flat_set.hpp"
#include "common/random.hpp"

namespace bftcup {
namespace {

/// A random bit universe of `bits` bits at roughly `density` (percent),
/// returned both ways: as a BitSet and as the sorted index list the scalar
/// reference operates on.
struct Universe {
  BitSet bits;
  std::vector<std::size_t> indices;
};

Universe make_universe(std::size_t bits, unsigned density_pct, Rng& rng) {
  Universe u;
  u.bits.reset_bits(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.next_below(100) < density_pct) {
      u.bits.set(i);
      u.indices.push_back(i);
    }
  }
  return u;
}

std::vector<std::size_t> to_indices(const BitSet& bits) {
  std::vector<std::size_t> out;
  bits.for_each_set([&](std::size_t i) { out.push_back(i); });
  return out;
}

// Universe sizes straddle the word boundary: empty, single partial word,
// exactly one word, unaligned multi-word tails, and a larger block.
const std::size_t kSizes[] = {0, 1, 63, 64, 65, 127, 200, 1024, 4096 + 17};

TEST(BitsetKernelTest, RandomizedEquivalenceAgainstScalarReference) {
  Rng rng(2024);
  for (const std::size_t bits : kSizes) {
    for (const unsigned density : {0U, 10U, 50U, 100U}) {
      const Universe a = make_universe(bits, density, rng);
      const Universe b = make_universe(bits, 100U - density, rng);

      // count
      EXPECT_EQ(a.bits.count(), a.indices.size());

      // intersect / intersect_count
      std::vector<std::size_t> want_and;
      std::set_intersection(a.indices.begin(), a.indices.end(),
                            b.indices.begin(), b.indices.end(),
                            std::back_inserter(want_and));
      EXPECT_EQ(a.bits.intersect_count(b.bits), want_and.size());
      BitSet scratch = a.bits;
      scratch.intersect_with(b.bits);
      EXPECT_EQ(to_indices(scratch), want_and);

      // union
      std::vector<std::size_t> want_or;
      std::set_union(a.indices.begin(), a.indices.end(), b.indices.begin(),
                     b.indices.end(), std::back_inserter(want_or));
      scratch = a.bits;
      scratch.union_with(b.bits);
      EXPECT_EQ(to_indices(scratch), want_or);

      // difference
      std::vector<std::size_t> want_diff;
      std::set_difference(a.indices.begin(), a.indices.end(),
                          b.indices.begin(), b.indices.end(),
                          std::back_inserter(want_diff));
      scratch = a.bits;
      scratch.difference_with(b.bits);
      EXPECT_EQ(to_indices(scratch), want_diff);

      // is_subset
      const bool want_subset = std::includes(b.indices.begin(),
                                             b.indices.end(),
                                             a.indices.begin(),
                                             a.indices.end());
      EXPECT_EQ(a.bits.is_subset_of(b.bits), want_subset);
      BitSet both = a.bits;
      both.union_with(b.bits);
      EXPECT_TRUE(a.bits.is_subset_of(both));
      EXPECT_TRUE(b.bits.is_subset_of(both));

      // intersects
      EXPECT_EQ(bitset_kernel::intersects(a.bits.data(), b.bits.data(),
                                          a.bits.word_count()),
                !want_and.empty());

      // test() against membership, including the unset tail positions.
      for (std::size_t i = 0; i < bits; ++i) {
        EXPECT_EQ(a.bits.test(i),
                  std::binary_search(a.indices.begin(), a.indices.end(), i));
      }
    }
  }
}

TEST(BitsetKernelTest, TailBitsStayZeroThroughMutation) {
  // 65 bits -> two words, 63 tail bits in the second. Every mutator must
  // keep the tail zero or whole-word kernels would report phantom members.
  BitSet a;
  a.reset_bits(65);
  for (std::size_t i = 0; i < 65; ++i) a.set(i);
  EXPECT_EQ(a.count(), 65U);
  BitSet b;
  b.reset_bits(65);
  b.set(64);
  b.union_with(a);
  EXPECT_EQ(b.count(), 65U);
  b.difference_with(a);
  EXPECT_EQ(b.count(), 0U);
  EXPECT_TRUE(b.is_subset_of(a));
}

TEST(BitsetKernelTest, ResetKeepsCapacityAndClearsContent) {
  BitSet a;
  a.reset_bits(256);
  for (std::size_t i = 0; i < 256; i += 3) a.set(i);
  a.reset_bits(64);
  EXPECT_EQ(a.count(), 0U);
  EXPECT_EQ(a.word_count(), 1U);
  a.set(63);
  EXPECT_TRUE(a.test(63));
}

TEST(BitSpanTest, BorrowsWithoutCopying) {
  BitSet a;
  a.reset_bits(130);
  a.set(0);
  a.set(64);
  a.set(129);
  const BitSpan span = a.span();
  EXPECT_EQ(span.count(), 3U);
  EXPECT_TRUE(span.test(64));
  EXPECT_FALSE(span.test(65));
  EXPECT_FALSE(span.test(10'000));  // out of range -> false, not UB
}

TEST(AdaptiveIdProbeTest, AgreesWithFlatSetAcrossRepresentations) {
  Rng rng(7777);
  // Small sparse (FlatSet path), large dense (bitset path), large sparse
  // (spread guard keeps the FlatSet path).
  struct Shape {
    std::size_t size;
    std::uint64_t spread;
  };
  for (const Shape shape : {Shape{8, 4}, Shape{256, 2}, Shape{256, 1000}}) {
    IdSet set;
    const std::uint64_t base = 5000;
    while (set.size() < shape.size) {
      set.insert(ProcessId(base + rng.next_below(shape.size * shape.spread)));
    }
    const AdaptiveIdProbe probe(set);
    // Representation is a pure function of contents: dense iff the set is
    // big and its id window tight (replay determinism depends on this).
    const std::uint64_t span =
        set.values().back().raw() - set.values().front().raw() + 1;
    const bool expect_dense =
        set.size() >= AdaptiveIdProbe::kDenseMinSize &&
        span <= set.size() * AdaptiveIdProbe::kDenseMaxSpread;
    EXPECT_EQ(probe.dense(), expect_dense);
    for (std::uint64_t raw = 0; raw < base + shape.size * shape.spread + 10;
         raw += 3) {
      EXPECT_EQ(probe.contains(ProcessId(raw)), set.contains(ProcessId(raw)));
    }
    // Below/above the window (dense fast-reject path).
    EXPECT_FALSE(probe.contains(ProcessId(0)));
    EXPECT_FALSE(probe.contains(ProcessId(std::uint64_t{1} << 40)));
  }
}

TEST(AdaptiveIdProbeTest, ScratchBackedProbeMatchesOwned) {
  IdSet set;
  for (std::uint64_t i = 0; i < 128; ++i) set.insert(ProcessId(100 + 2 * i));
  std::pmr::vector<std::uint64_t> scratch;
  const AdaptiveIdProbe owned(set);
  const AdaptiveIdProbe borrowed(set, &scratch);
  ASSERT_TRUE(owned.dense());
  ASSERT_TRUE(borrowed.dense());
  EXPECT_FALSE(scratch.empty());
  for (std::uint64_t raw = 0; raw < 500; ++raw) {
    EXPECT_EQ(owned.contains(ProcessId(raw)), borrowed.contains(ProcessId(raw)));
  }
}

TEST(FlatSetMergeTest, InsertAllMatchesElementwiseInsert) {
  Rng rng(31337);
  for (int round = 0; round < 50; ++round) {
    IdSet a, b;
    const std::size_t na = rng.next_below(200);
    const std::size_t nb = rng.next_below(200);
    for (std::size_t i = 0; i < na; ++i) a.insert(ProcessId(rng.next_below(300)));
    for (std::size_t i = 0; i < nb; ++i) b.insert(ProcessId(rng.next_below(300)));

    IdSet reference = a;
    std::size_t added_ref = 0;
    for (ProcessId id : b) added_ref += reference.insert(id) ? 1U : 0U;

    IdSet merged = a;
    const std::size_t added = merged.insert_all(b);
    EXPECT_EQ(merged, reference);
    EXPECT_EQ(added, added_ref);
  }
  // Degenerate shapes the merge special-cases.
  IdSet empty;
  IdSet one{ProcessId(5)};
  IdSet target;
  EXPECT_EQ(target.insert_all(empty), 0U);
  EXPECT_EQ(target.insert_all(one), 1U);
  EXPECT_EQ(target.insert_all(one), 0U);
}

}  // namespace
}  // namespace bftcup

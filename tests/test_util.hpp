// Shared helpers for simulator-based tests.
#pragma once

#include <functional>
#include <memory>

#include "sim/simulator.hpp"

namespace bftcup::test {

/// A process scripted with lambdas; handy for exercising the simulator and
/// single protocol components without a full node.
class ScriptedProcess : public sim::Process {
 public:
  using StartFn = std::function<void(sim::Context&)>;
  using MessageFn =
      std::function<void(ProcessId, const msg::Message&, sim::Context&)>;
  using TimerFn = std::function<void(int, sim::Context&)>;

  explicit ScriptedProcess(ProcessId id) : sim::Process(id) {}

  ScriptedProcess& on_start_do(StartFn fn) {
    start_ = std::move(fn);
    return *this;
  }
  ScriptedProcess& on_message_do(MessageFn fn) {
    message_ = std::move(fn);
    return *this;
  }
  ScriptedProcess& on_timer_do(TimerFn fn) {
    timer_ = std::move(fn);
    return *this;
  }
  ScriptedProcess& on_recover_do(StartFn fn) {
    recover_ = std::move(fn);
    return *this;
  }

  void on_start(sim::Context& ctx) override {
    if (start_) start_(ctx);
  }
  void on_message(ProcessId from, const msg::Message& message,
                  sim::Context& ctx) override {
    if (message_) message_(from, message, ctx);
  }
  void on_timer(int kind, sim::Context& ctx) override {
    if (timer_) timer_(kind, ctx);
  }
  void on_recover(sim::Context& ctx) override {
    if (recover_) recover_(ctx);
  }

 private:
  StartFn start_;
  MessageFn message_;
  TimerFn timer_;
  StartFn recover_;
};

}  // namespace bftcup::test

#include <gtest/gtest.h>

#include "graph/extended_osr.hpp"
#include "graph/figures.hpp"

namespace bftcup::graph {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

Digraph complete(std::initializer_list<std::uint64_t> ids) {
  Digraph g;
  for (auto a : ids) {
    for (auto b : ids) {
      if (a != b) g.add_edge(p(a), p(b));
    }
  }
  return g;
}

std::optional<SinkInfo> find_sink(const std::vector<SinkInfo>& sinks,
                                  const IdSet& members) {
  for (const SinkInfo& s : sinks) {
    if (s.members == members) return s;
  }
  return std::nullopt;
}

TEST(AllSinksTest, CompleteTriangle) {
  const auto sinks = all_sinks(complete({1, 2, 3}));
  ASSERT_EQ(sinks.size(), 1U);
  EXPECT_EQ(sinks[0].members, (IdSet{p(1), p(2), p(3)}));
  EXPECT_EQ(sinks[0].f, 1U);  // g <= min(κ-1, (|S1|-1)/2) = min(1, 1)
  EXPECT_EQ(sinks[0].k(), 2U);
}

TEST(AllSinksTest, CompleteK5HasF2) {
  const auto sinks = all_sinks(complete({1, 2, 3, 4, 5}));
  const auto k5 = find_sink(sinks, {p(1), p(2), p(3), p(4), p(5)});
  ASSERT_TRUE(k5.has_value());
  EXPECT_EQ(k5->f, 2U);
  EXPECT_EQ(k5->k(), 3U);
}

TEST(AllSinksTest, Fig2cHasTwoTiedSinks) {
  // Observation 1: both halves of system AB can self-declare.
  const auto inst = figures::fig2c();
  const auto sinks = all_sinks(inst.graph);
  const auto a = find_sink(sinks, {p(1), p(2), p(3), p(4)});
  const auto b = find_sink(sinks, {p(5), p(6), p(7), p(8)});
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->k(), b->k());  // the fatal tie
}

TEST(AllSinksTest, Fig4aBSideCannotDeclare) {
  // The extra links 6->3 and 7->2 keep {5,6,7,8} out of the sink family.
  const auto inst = figures::fig4a();
  const auto sinks = all_sinks(inst.graph);
  EXPECT_FALSE(
      find_sink(sinks, {p(5), p(6), p(7), p(8)}).has_value());
  const auto a = find_sink(sinks, {p(1), p(2), p(3), p(4)});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->k(), 2U);
}

TEST(ExtendedOsrTest, Fig2cViolatesC1) {
  const auto inst = figures::fig2c();
  const ExtendedOsrReport r = check_extended_k_osr(inst.graph, 1);
  EXPECT_FALSE(r.satisfied);
  EXPECT_NE(r.reason.find("tie"), std::string::npos);
}

TEST(ExtendedOsrTest, CompleteTriangleSatisfies) {
  const ExtendedOsrReport r = check_extended_k_osr(complete({1, 2, 3}), 2);
  EXPECT_TRUE(r.satisfied) << r.reason;
  EXPECT_EQ(r.core, (IdSet{p(1), p(2), p(3)}));
  EXPECT_EQ(r.core_k, 2U);
}

TEST(BftCupftRequirementsTest, Fig4aSatisfies) {
  const auto inst = figures::fig4a();
  const BftCupftReport r =
      check_bft_cupft_requirements(inst.graph, inst.faulty, inst.f);
  EXPECT_TRUE(r.satisfied) << r.reason;
  EXPECT_EQ(r.safe_core, inst.expected_core);
  EXPECT_EQ(r.core_k, 2U);
}

TEST(BftCupftRequirementsTest, Fig4bSatisfies) {
  const auto inst = figures::fig4b();
  const BftCupftReport r =
      check_bft_cupft_requirements(inst.graph, inst.faulty, inst.f);
  EXPECT_TRUE(r.satisfied) << r.reason;
  EXPECT_EQ(r.safe_core, inst.expected_core);
}

TEST(BftCupftRequirementsTest, Fig3bSatisfies) {
  // fig3b's safe graph is a K5 — a valid (if degenerate) extended 3-OSR.
  const auto inst = figures::fig3b();
  const BftCupftReport r =
      check_bft_cupft_requirements(inst.graph, inst.faulty, inst.f);
  EXPECT_TRUE(r.satisfied) << r.reason;
  EXPECT_EQ(r.safe_core, inst.expected_core);
}

TEST(BftCupftRequirementsTest, Fig3aFails) {
  // fig3a is a fine BFT-CUP graph but NOT extended: {2,3,4,6} absorb {5,7}
  // at k = 2, tying with the true sink {5,7,8}.
  const auto inst = figures::fig3a();
  const BftCupftReport r =
      check_bft_cupft_requirements(inst.graph, inst.faulty, inst.f);
  EXPECT_FALSE(r.satisfied);
}

TEST(BftCupftRequirementsTest, Fig2cFails) {
  const auto inst = figures::fig2c();
  const BftCupftReport r =
      check_bft_cupft_requirements(inst.graph, inst.faulty, inst.f);
  EXPECT_FALSE(r.satisfied);
}

TEST(BftCupftRequirementsTest, TooManyFaulty) {
  const auto inst = figures::fig4a();
  IdSet faulty = inst.faulty;
  faulty.insert(p(8));
  EXPECT_FALSE(
      check_bft_cupft_requirements(inst.graph, faulty, inst.f).satisfied);
}

}  // namespace
}  // namespace bftcup::graph

// FaultTimeline semantics (see sim/fault_timeline.hpp) and the cup-layer
// fault scenarios built on top of it.
#include <gtest/gtest.h>

#include "cup/scenario_builder.hpp"
#include "cup/scenario_registry.hpp"
#include "protocol/discovery.hpp"
#include "protocol/pbft.hpp"
#include "test_util.hpp"

namespace bftcup::sim {
namespace {

using test::ScriptedProcess;

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

msg::Message ping() {
  msg::Message m;
  m.type = msg::MsgType::kGetPds;
  return m;
}

/// delta == min_delay == 1 makes every delivery land exactly one tick after
/// the send, so tests can reason about absolute times.
Simulator::Options lockstep_options() {
  Simulator::Options options;
  options.net.gst = 0;
  options.net.delta = 1;
  options.net.min_delay = 1;
  return options;
}

TEST(FaultTimelineTest, CrashDropsDeliveriesAndTimers) {
  Simulator simulator(lockstep_options());
  FaultTimeline timeline;
  timeline.crash(p(2), 10);
  simulator.set_fault_timeline(timeline);

  int b_deliveries = 0;
  int b_timer_fires = 0;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) { ctx.set_timer(20, 1); });
  a->on_timer_do([](int, Context& ctx) { ctx.send(p(2), ping()); });
  auto b = std::make_unique<ScriptedProcess>(p(2));
  b->on_start_do([](Context& ctx) { ctx.set_timer(15, 1); });
  b->on_message_do(
      [&](ProcessId, const msg::Message&, Context&) { ++b_deliveries; });
  b->on_timer_do([&](int, Context&) { ++b_timer_fires; });
  simulator.add_process(std::move(a));
  simulator.add_process(std::move(b));
  simulator.run();

  EXPECT_EQ(b_deliveries, 0);   // sent at t=21, b down since t=10
  EXPECT_EQ(b_timer_fires, 0);  // armed for t=15, lapsed while down
  EXPECT_EQ(simulator.trace().messages_sent(), 1U);
  EXPECT_EQ(simulator.trace().messages_delivered(), 0U);
  EXPECT_EQ(simulator.trace().messages_dropped(), 1U);
}

TEST(FaultTimelineTest, RecoverResumesDeliveryAndCallsOnRecover) {
  Simulator simulator(lockstep_options());
  FaultTimeline timeline;
  timeline.crash(p(2), 10).recover(p(2), 30);
  simulator.set_fault_timeline(timeline);

  SimTime recovered_at = -1;
  SimTime delivered_at = -1;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) { ctx.set_timer(40, 1); });
  a->on_timer_do([](int, Context& ctx) { ctx.send(p(2), ping()); });
  auto b = std::make_unique<ScriptedProcess>(p(2));
  b->on_recover_do([&](Context& ctx) { recovered_at = ctx.now(); });
  b->on_message_do([&](ProcessId, const msg::Message&, Context& ctx) {
    delivered_at = ctx.now();
  });
  simulator.add_process(std::move(a));
  simulator.add_process(std::move(b));
  simulator.run();

  EXPECT_EQ(recovered_at, 30);
  EXPECT_EQ(delivered_at, 41);  // sent at t=40, b back up
  EXPECT_EQ(simulator.trace().messages_dropped(), 0U);
}

TEST(FaultTimelineTest, MessageInFlightAcrossRecoveryIsDelivered) {
  // a sends at t=5 with delivery at t=6; b crashes at 2 and recovers at 4 —
  // but also: a message sent at t=1 (delivery t=2) while b crashes exactly
  // at t=2 is dropped, because same-time fault actions apply first.
  Simulator simulator(lockstep_options());
  FaultTimeline timeline;
  timeline.crash(p(2), 2).recover(p(2), 4);
  simulator.set_fault_timeline(timeline);

  std::vector<SimTime> deliveries;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) {
    ctx.set_timer(1, 1);  // fires t=1: send -> delivery t=2 (dropped)
    ctx.set_timer(5, 2);  // fires t=5: send -> delivery t=6 (delivered)
  });
  a->on_timer_do([](int, Context& ctx) { ctx.send(p(2), ping()); });
  auto b = std::make_unique<ScriptedProcess>(p(2));
  b->on_message_do([&](ProcessId, const msg::Message&, Context& ctx) {
    deliveries.push_back(ctx.now());
  });
  simulator.add_process(std::move(a));
  simulator.add_process(std::move(b));
  simulator.run();

  EXPECT_EQ(deliveries, (std::vector<SimTime>{6}));
  EXPECT_EQ(simulator.trace().messages_dropped(), 1U);
}

TEST(FaultTimelineTest, LinkDownLosesOnlySendsInsideTheWindow) {
  Simulator simulator(lockstep_options());
  FaultTimeline timeline;
  timeline.link_down(p(1), p(2), 10, 30);
  simulator.set_fault_timeline(timeline);

  std::vector<SimTime> deliveries;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) {
    ctx.set_timer(5, 1);   // send at t=5: before the window, delivered
    ctx.set_timer(15, 2);  // send at t=15: inside, lost
    ctx.set_timer(30, 3);  // send at t=30: window is [10, 30), delivered
  });
  a->on_timer_do([](int, Context& ctx) { ctx.send(p(2), ping()); });
  auto b = std::make_unique<ScriptedProcess>(p(2));
  b->on_message_do([&](ProcessId, const msg::Message&, Context& ctx) {
    deliveries.push_back(ctx.now());
  });
  simulator.add_process(std::move(a));
  simulator.add_process(std::move(b));
  simulator.run();

  EXPECT_EQ(deliveries, (std::vector<SimTime>{6, 31}));
  EXPECT_EQ(simulator.trace().messages_sent(), 3U);
  EXPECT_EQ(simulator.trace().messages_dropped(), 1U);
}

TEST(FaultTimelineTest, LinkDownIsDirected) {
  Simulator simulator(lockstep_options());
  FaultTimeline timeline;
  timeline.link_down(p(1), p(2), 0, 100);
  simulator.set_fault_timeline(timeline);

  int a_got = 0;
  int b_got = 0;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) { ctx.set_timer(5, 1); });
  a->on_timer_do([](int, Context& ctx) { ctx.send(p(2), ping()); });
  a->on_message_do([&](ProcessId, const msg::Message&, Context&) { ++a_got; });
  auto b = std::make_unique<ScriptedProcess>(p(2));
  b->on_start_do([](Context& ctx) { ctx.set_timer(5, 1); });
  b->on_timer_do([](int, Context& ctx) { ctx.send(p(1), ping()); });
  b->on_message_do([&](ProcessId, const msg::Message&, Context&) { ++b_got; });
  simulator.add_process(std::move(a));
  simulator.add_process(std::move(b));
  simulator.run();

  EXPECT_EQ(b_got, 0);  // 1 -> 2 is down
  EXPECT_EQ(a_got, 1);  // 2 -> 1 is unaffected
}

TEST(FaultTimelineTest, PartitionBlocksBothDirectionsUntilHeal) {
  Simulator simulator(lockstep_options());
  FaultTimeline timeline;
  timeline.partition({p(1)}, {p(2)}, 0, 20);
  simulator.set_fault_timeline(timeline);

  std::vector<SimTime> deliveries;
  auto send_at = [](ScriptedProcess& proc, ProcessId to) {
    proc.on_start_do([](Context& ctx) {
      ctx.set_timer(5, 1);
      ctx.set_timer(25, 2);
    });
    proc.on_timer_do([to](int, Context& ctx) { ctx.send(to, ping()); });
  };
  auto a = std::make_unique<ScriptedProcess>(p(1));
  send_at(*a, p(2));
  a->on_message_do([&](ProcessId, const msg::Message&, Context& ctx) {
    deliveries.push_back(ctx.now());
  });
  auto b = std::make_unique<ScriptedProcess>(p(2));
  send_at(*b, p(1));
  b->on_message_do([&](ProcessId, const msg::Message&, Context& ctx) {
    deliveries.push_back(ctx.now());
  });
  simulator.add_process(std::move(a));
  simulator.add_process(std::move(b));
  simulator.run();

  // Both t=5 sends lost (both directions blocked); both t=25 sends arrive.
  EXPECT_EQ(deliveries, (std::vector<SimTime>{26, 26}));
  EXPECT_EQ(simulator.trace().messages_dropped(), 2U);
}

TEST(FaultTimelineTest, JoinDefersStartAndDropsEarlierTraffic) {
  Simulator simulator(lockstep_options());
  FaultTimeline timeline;
  timeline.join(p(2), 50);
  simulator.set_fault_timeline(timeline);

  SimTime started_at = -1;
  int got = 0;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) {
    ctx.set_timer(10, 1);  // delivery at t=11, before the join -> dropped
    ctx.set_timer(60, 2);  // delivery at t=61 -> delivered
  });
  a->on_timer_do([](int, Context& ctx) { ctx.send(p(2), ping()); });
  auto b = std::make_unique<ScriptedProcess>(p(2));
  b->on_start_do([&](Context& ctx) { started_at = ctx.now(); });
  b->on_message_do([&](ProcessId, const msg::Message&, Context&) { ++got; });
  simulator.add_process(std::move(a));
  simulator.add_process(std::move(b));
  simulator.run();

  EXPECT_EQ(started_at, 50);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(simulator.trace().messages_dropped(), 1U);
}

TEST(FaultTimelineTest, OverlappingLinkWindowsNest) {
  // Two overlapping outages of the same link: the first up event must end
  // only its own window, not both.
  Simulator simulator(lockstep_options());
  FaultTimeline timeline;
  timeline.link_down(p(1), p(2), 0, 100);
  timeline.link_down(p(1), p(2), 50, 200);
  simulator.set_fault_timeline(timeline);

  std::vector<SimTime> deliveries;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) {
    ctx.set_timer(120, 1);  // inside the second window -> lost
    ctx.set_timer(210, 2);  // after both windows -> delivered
  });
  a->on_timer_do([](int, Context& ctx) { ctx.send(p(2), ping()); });
  auto b = std::make_unique<ScriptedProcess>(p(2));
  b->on_message_do([&](ProcessId, const msg::Message&, Context& ctx) {
    deliveries.push_back(ctx.now());
  });
  simulator.add_process(std::move(a));
  simulator.add_process(std::move(b));
  simulator.run();

  EXPECT_EQ(deliveries, (std::vector<SimTime>{211}));
  EXPECT_EQ(simulator.trace().messages_dropped(), 1U);
}

TEST(FaultTimelineTest, CrashAndRecoverComposeWithLateJoin) {
  // crash/recover scheduled before a late join must not start the process
  // early: on_start fires exactly once, at the first moment it is both
  // joined and not crashed.
  struct Case {
    SimTime join, crash, recover, expected_start;
    bool expect_recover_call;
  };
  const Case cases[] = {
      {1'000, 500, 800, 1'000, false},  // recover before join: start at join
      {500, 600, 800, 500, true},       // normal: start, crash, recover
      {600, 500, 800, 800, false},      // join while crashed: start at recover
  };
  for (const Case& c : cases) {
    Simulator simulator(lockstep_options());
    FaultTimeline timeline;
    timeline.join(p(2), c.join).crash(p(2), c.crash).recover(p(2), c.recover);
    simulator.set_fault_timeline(timeline);

    std::vector<SimTime> starts;
    std::vector<SimTime> recovers;
    auto a = std::make_unique<ScriptedProcess>(p(1));
    auto b = std::make_unique<ScriptedProcess>(p(2));
    b->on_start_do([&](Context& ctx) { starts.push_back(ctx.now()); });
    b->on_recover_do([&](Context& ctx) { recovers.push_back(ctx.now()); });
    simulator.add_process(std::move(a));
    simulator.add_process(std::move(b));
    simulator.run();

    ASSERT_EQ(starts.size(), 1U) << "join=" << c.join;
    EXPECT_EQ(starts.front(), c.expected_start) << "join=" << c.join;
    EXPECT_EQ(recovers.size(), c.expect_recover_call ? 1U : 0U)
        << "join=" << c.join;
  }
}

namespace {

/// Minimal node wrapping a Discovery instance, with fault-recovery wiring.
class DiscoveryHarness final : public Process {
 public:
  DiscoveryHarness(ProcessId id, IdSet pd, SimTime period)
      : Process(id), discovery_(id, std::move(pd), period) {}

  void on_start(Context& ctx) override { discovery_.start(ctx); }
  void on_message(ProcessId from, const msg::Message& m,
                  Context& ctx) override {
    discovery_.handle_message(from, m, ctx);
  }
  void on_timer(int kind, Context& ctx) override {
    if ((kind & 0xff) == protocol::Discovery::kTimerKind) {
      discovery_.on_timer(kind, ctx);
    }
  }
  void on_recover(Context& ctx) override { discovery_.restart(ctx); }

  [[nodiscard]] const protocol::Discovery& discovery() const {
    return discovery_;
  }

 private:
  protocol::Discovery discovery_;
};

}  // namespace

TEST(FaultTimelineTest, RecoveryDoesNotDoubleTheDiscoveryPollRate) {
  // The timer armed before the crash fires *after* recovery (armed t=50,
  // fires t=100, crash window [60, 70)). Without the epoch guard both that
  // chain and restart()'s fresh chain would keep re-arming, doubling the
  // GETPDS rate for the rest of the run.
  Simulator::Options options = lockstep_options();
  options.horizon = 1'000;
  Simulator simulator(options);
  FaultTimeline timeline;
  timeline.crash(p(1), 60).recover(p(1), 70);
  simulator.set_fault_timeline(timeline);

  auto a = std::make_unique<DiscoveryHarness>(p(1), IdSet{p(2)}, 50);
  const DiscoveryHarness* a_raw = a.get();
  auto b = std::make_unique<test::ScriptedProcess>(p(2));
  simulator.add_process(std::move(a));
  simulator.add_process(std::move(b));
  simulator.run();

  // One chain: start (t=0), t=50, restart (t=70), then every 50 ticks from
  // t=120 on — about 21 rounds. A doubled rate would be ~39.
  EXPECT_GE(a_raw->discovery().rounds(), 15U);
  EXPECT_LE(a_raw->discovery().rounds(), 25U);
}

TEST(FaultTimelineTest, WindowOpeningAtZeroCoversStartupTraffic) {
  // A partition documented as active from t=0 must already be in force
  // when on_start traffic is sent.
  Simulator simulator(lockstep_options());
  FaultTimeline timeline;
  timeline.partition({p(1)}, {p(2)}, 0, 50);
  simulator.set_fault_timeline(timeline);

  std::vector<SimTime> deliveries;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) {
    ctx.send(p(2), ping());  // sent at t=0, inside the window -> lost
    ctx.set_timer(60, 1);    // sent at t=60, after the heal -> delivered
  });
  a->on_timer_do([](int, Context& ctx) { ctx.send(p(2), ping()); });
  auto b = std::make_unique<ScriptedProcess>(p(2));
  b->on_message_do([&](ProcessId, const msg::Message&, Context& ctx) {
    deliveries.push_back(ctx.now());
  });
  simulator.add_process(std::move(a));
  simulator.add_process(std::move(b));
  simulator.run();

  EXPECT_EQ(deliveries, (std::vector<SimTime>{61}));
  EXPECT_EQ(simulator.trace().messages_dropped(), 1U);
}

namespace {

/// Wraps a non-leader PbftInstance; a kRearmKind timer triggers the
/// crash-recovery re-arm path mid-run.
class PbftHarness final : public Process {
 public:
  static constexpr int kRearmKind = 99;

  PbftHarness(ProcessId id, IdSet members) : Process(id) {
    protocol::PbftInstance::Config config;
    config.members = std::move(members);
    config.assumed_f = 1;
    config.base_timeout = 600;
    pbft_.emplace(id, std::move(config));
  }

  void on_start(Context& ctx) override {
    pbft_->start(/*value=*/7, ctx);
    ctx.set_timer(100, kRearmKind);
  }
  void on_message(ProcessId, const msg::Message&, Context&) override {}
  void on_timer(int kind, Context& ctx) override {
    if ((kind & 0xff) == kRearmKind) {
      pbft_->rearm_view_timer(ctx);
    } else if ((kind & 0xff) == protocol::PbftInstance::kTimerKind) {
      pbft_->on_timer(kind, ctx);
    }
  }

 private:
  std::optional<protocol::PbftInstance> pbft_;
};

}  // namespace

TEST(FaultTimelineTest, PbftRearmSupersedesThePendingViewTimer) {
  // The view timer armed at start (fires t~600) is superseded by the
  // re-arm at t=100 (fires t~700). Without the epoch bump both fires
  // would be valid and each view-change escalation would double: one
  // VIEWCHANGE broadcast (2 sends) is correct within the horizon.
  Simulator::Options options;
  options.net.gst = 0;
  options.net.delta = 1;
  options.horizon = 1'500;
  Simulator simulator(options);

  const IdSet members{p(1), p(2), p(3)};
  simulator.add_process(std::make_unique<PbftHarness>(p(2), members));
  for (std::uint64_t raw : {1ULL, 3ULL}) {
    simulator.add_process(std::make_unique<test::ScriptedProcess>(p(raw)));
  }
  simulator.run();

  EXPECT_EQ(simulator.trace().messages_sent(), 2U);
}

TEST(FaultTimelineTest, EmptyTimelineIsByteIdenticalToNone) {
  auto run_once = [](bool with_empty_timeline) {
    Simulator simulator(lockstep_options());
    if (with_empty_timeline) simulator.set_fault_timeline(FaultTimeline());
    std::vector<SimTime> arrivals;
    auto a = std::make_unique<ScriptedProcess>(p(1));
    a->on_start_do([](Context& ctx) {
      for (int i = 0; i < 10; ++i) ctx.send(p(2), ping());
    });
    auto b = std::make_unique<ScriptedProcess>(p(2));
    b->on_message_do([&](ProcessId, const msg::Message&, Context& ctx) {
      arrivals.push_back(ctx.now());
    });
    simulator.add_process(std::move(a));
    simulator.add_process(std::move(b));
    simulator.run();
    return arrivals;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

}  // namespace
}  // namespace bftcup::sim

namespace bftcup::cup {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

TEST(FaultScenarioTest, BuilderValidatesTimelineActions) {
  EXPECT_THROW(ScenarioBuilder(graph::figures::fig1b())
                   .crash_at(p(99), 10)
                   .build(),
               ScenarioError);
  EXPECT_THROW(ScenarioBuilder(graph::figures::fig1b())
                   .drop_link(p(1), p(2), 50, 50),
               ScenarioError);
  EXPECT_THROW(ScenarioBuilder(graph::figures::fig1b())
                   .partition({p(1), p(2)}, {p(2), p(3)}, 0, 100)
                   .build(),
               ScenarioError);
  // A well-formed timeline passes.
  EXPECT_NO_THROW(ScenarioBuilder(graph::figures::fig1b())
                      .crash_at(p(2), 10)
                      .recover_at(p(2), 100)
                      .build());
}

TEST(FaultScenarioTest, DynamicScenariosBehaveAsDocumented) {
  const auto& registry = ScenarioRegistry::paper();
  const struct {
    const char* name;
    const char* verdict;
  } expectations[] = {
      {"dyn/crash-mid-discovery", "SOLVED"},
      {"dyn/crash-mid-consensus", "SOLVED"},
      {"dyn/crash-beyond-budget", "NO-TERMINATION"},
      {"dyn/partition-heal-before-gst", "SOLVED"},
      {"dyn/staggered-join", "SOLVED"},
      {"dyn/link-flap", "SOLVED"},
  };
  for (const auto& expected : expectations) {
    const RunReport report = registry.run(expected.name, 3);
    EXPECT_EQ(report.verdict(), expected.verdict) << expected.name;
    EXPECT_TRUE(report.agreement) << expected.name;
    EXPECT_TRUE(report.validity) << expected.name;
  }
}

TEST(FaultScenarioTest, FaultRunsReportDrops) {
  const auto report =
      ScenarioRegistry::paper().run("dyn/staggered-join", 1);
  EXPECT_GT(report.messages_dropped, 0U);
  EXPECT_EQ(report.verdict(), "SOLVED");
}

TEST(FaultScenarioTest, FaultScenariosReplayBitIdentically) {
  const auto& registry = ScenarioRegistry::paper();
  for (const char* name :
       {"dyn/crash-mid-discovery", "dyn/partition-heal-before-gst",
        "dyn/staggered-join"}) {
    EXPECT_EQ(registry.run(name, 5).digest(), registry.run(name, 5).digest())
        << name;
  }
}

}  // namespace
}  // namespace bftcup::cup

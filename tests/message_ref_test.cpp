#include <gtest/gtest.h>

#include "msg/message_ref.hpp"

namespace bftcup::msg {
namespace {

Message sample() {
  Message m;
  m.type = MsgType::kSetPds;
  SignedPd spd;
  spd.owner = ProcessId(4);
  spd.pd = {ProcessId(1), ProcessId(2), ProcessId(3)};
  m.pds.push_back(spd);
  m.value = 42;
  m.path = {ProcessId(7), ProcessId(8)};
  return m;
}

TEST(MessageRefTest, CachesTheCanonicalEncodedSize) {
  const Message m = sample();
  const std::size_t expected = m.encoded_size();
  const MessageRef ref = MessageRef::make(m);
  EXPECT_EQ(ref.encoded_size(), expected);
  EXPECT_EQ(ref->encoded_size(), expected);  // payload unchanged by caching
}

TEST(MessageRefTest, SharesOnePayloadAcrossCopies) {
  const MessageRef ref = MessageRef::make(sample());
  const MessageRef copy = ref;
  EXPECT_EQ(&*ref, &*copy);  // same payload object, no deep copy
  EXPECT_EQ(copy->value, 42U);
  EXPECT_EQ(copy->pds.size(), 1U);
}

TEST(MessageRefTest, DefaultIsNull) {
  MessageRef ref;
  EXPECT_FALSE(static_cast<bool>(ref));
  EXPECT_TRUE(static_cast<bool>(MessageRef::make(Message{})));
}

}  // namespace
}  // namespace bftcup::msg

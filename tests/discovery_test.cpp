#include <gtest/gtest.h>

#include "graph/figures.hpp"
#include "pd/participant_detector.hpp"
#include "protocol/discovery.hpp"
#include "test_util.hpp"

namespace bftcup::protocol {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

/// Minimal process running only the Discovery component.
class DiscoveryOnlyProcess : public sim::Process {
 public:
  DiscoveryOnlyProcess(ProcessId id, IdSet pd)
      : sim::Process(id), discovery_(id, std::move(pd), 20) {}

  void on_start(sim::Context& ctx) override { discovery_.start(ctx); }
  void on_message(ProcessId from, const msg::Message& message,
                  sim::Context& ctx) override {
    discovery_.handle_message(from, message, ctx);
  }
  void on_timer(int kind, sim::Context& ctx) override {
    if ((kind & 0xff) == Discovery::kTimerKind) discovery_.on_timer(kind, ctx);
  }

  Discovery& discovery() { return discovery_; }

 private:
  Discovery discovery_;
};

struct Fixture {
  sim::Simulator simulator;
  std::map<ProcessId, DiscoveryOnlyProcess*> nodes;

  explicit Fixture(const graph::Digraph& g, const IdSet& silent = {},
                   std::uint64_t seed = 1, SimTime horizon = 5'000)
      : simulator([&] {
          sim::Simulator::Options options;
          options.seed = seed;
          options.horizon = horizon;
          options.net.gst = 0;
          options.net.delta = 5;
          return options;
        }()) {
    const auto pds = pd::ParticipantDetector::from_graph(g);
    for (ProcessId id : g.vertices()) {
      if (silent.contains(id)) {
        simulator.add_process(
            std::make_unique<test::ScriptedProcess>(id));  // never answers
        continue;
      }
      auto node = std::make_unique<DiscoveryOnlyProcess>(id, pds.pd_of(id));
      nodes.emplace(id, node.get());
      simulator.add_process(std::move(node));
    }
  }
};

TEST(DiscoveryTest, TheoremTwoOnFig1b) {
  // Theorem 2: every correct process eventually discovers all correct sink
  // members and receives their PDs.
  const auto inst = graph::figures::fig1b();
  Fixture fx(inst.graph, inst.faulty);
  fx.simulator.run();

  const IdSet correct_sink = inst.expected_sink;  // {1,2,3}
  for (const auto& [id, node] : fx.nodes) {
    const KnowledgeView& view = node->discovery().view();
    EXPECT_TRUE(correct_sink.is_subset_of(view.known()))
        << to_string(id) << " known";
    EXPECT_TRUE(correct_sink.is_subset_of(view.received()))
        << to_string(id) << " received";
  }
}

TEST(DiscoveryTest, NonSinkLearnsWholeSafeGraphOnFig1b) {
  const auto inst = graph::figures::fig1b();
  Fixture fx(inst.graph, inst.faulty);
  fx.simulator.run();
  // Process 5 starts knowing only {1,2}; the sink answers with everything it
  // has, which eventually includes all correct PDs reachable from 5.
  const KnowledgeView& v5 = fx.nodes.at(p(5))->discovery().view();
  for (std::uint64_t id : {1, 2, 3}) {
    EXPECT_NE(v5.pd_of(p(id)), nullptr) << "PD_" << id;
  }
}

TEST(DiscoveryTest, Fig1aClustersStayMutuallyUnknown) {
  // The impossibility structure: with Byzantine 4 silent, {1,2,3} never
  // learn that {5,...,8} exist, and vice versa.
  const auto inst = graph::figures::fig1a();
  Fixture fx(inst.graph, inst.faulty);
  fx.simulator.run();
  const KnowledgeView& v1 = fx.nodes.at(p(1))->discovery().view();
  for (std::uint64_t hidden : {5, 6, 7, 8}) {
    EXPECT_FALSE(v1.known().contains(p(hidden)));
  }
  const KnowledgeView& v8 = fx.nodes.at(p(8))->discovery().view();
  for (std::uint64_t hidden : {1, 2, 3}) {
    EXPECT_FALSE(v8.known().contains(p(hidden)));
  }
}

TEST(DiscoveryTest, ForgedPdIsRejected) {
  // A Byzantine process cannot fabricate another owner's PD: the signature
  // check drops it.
  sim::Simulator::Options options;
  options.horizon = 1'000;
  sim::Simulator simulator(options);

  auto victim = std::make_unique<DiscoveryOnlyProcess>(p(1), IdSet{p(2)});
  auto* victim_ptr = victim.get();

  auto attacker = std::make_unique<test::ScriptedProcess>(p(2));
  attacker->on_message_do([&](ProcessId from, const msg::Message& message,
                              sim::Context& ctx) {
    if (message.type != msg::MsgType::kGetPds) return;
    msg::Message reply;
    reply.type = msg::MsgType::kSetPds;
    msg::SignedPd forged;
    forged.owner = p(3);  // claims to be PD_3
    forged.pd = IdSet{p(2)};
    forged.sig = ctx.signer().sign(
        msg::SignedPd::payload(p(3), forged.pd));  // signed by 2, not 3!
    reply.pds = {forged};
    // Also a self-signed own PD, which IS acceptable.
    msg::SignedPd own;
    own.owner = p(2);
    own.pd = IdSet{p(1)};
    own.sig = ctx.signer().sign(msg::SignedPd::payload(p(2), own.pd));
    reply.pds.push_back(own);
    ctx.send(from, std::move(reply));
  });

  simulator.add_process(std::move(victim));
  simulator.add_process(std::move(attacker));
  simulator.run();

  const KnowledgeView& view = victim_ptr->discovery().view();
  EXPECT_EQ(view.pd_of(p(3)), nullptr);   // forged: rejected
  ASSERT_NE(view.pd_of(p(2)), nullptr);   // self-signed: accepted
  EXPECT_EQ(*view.pd_of(p(2)), (IdSet{p(1)}));
}

TEST(DiscoveryTest, StopQuiescesPolling) {
  const auto inst = graph::figures::fig2a();
  Fixture fx(inst.graph, /*silent=*/{}, /*seed=*/1, /*horizon=*/100'000);
  // Stop all discovery after the view converged; rounds must stop growing.
  fx.simulator.run();
  // Horizon-bounded: every node kept polling until the horizon. Rounds are
  // therefore >= horizon/period - 1; this guards the re-arming logic.
  for (const auto& [id, node] : fx.nodes) {
    EXPECT_GT(node->discovery().rounds(), 100U);
  }
}

TEST(DiscoveryTest, RoundsCountedAndViewMonotone) {
  const auto inst = graph::figures::fig2a();
  Fixture fx(inst.graph, inst.faulty, 7, 2'000);
  fx.simulator.run();
  auto& node = *fx.nodes.at(p(1));
  EXPECT_GE(node.discovery().rounds(), 1U);
  // All correct PDs of the K4 (minus silent 4) received.
  EXPECT_EQ(node.discovery().view().received(), (IdSet{p(1), p(2), p(3)}));
}

}  // namespace
}  // namespace bftcup::protocol

// End-to-end runs of the BFT-CUPFT protocol (Section VI): nobody knows f.
#include <gtest/gtest.h>

#include "cup/scenario_builder.hpp"

namespace bftcup::cup {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

ScenarioBuilder cupft_builder(graph::Digraph g, IdSet faulty) {
  return ScenarioBuilder(std::move(g))
      .faulty(std::move(faulty))
      .mode(Mode::kCupft)
      .horizon(2'000'000)
      .gst(0)
      .delta(10);
}

TEST(CupftIntegrationTest, Fig4aSolvesWithCore1234) {
  const auto inst = graph::figures::fig4a();
  const auto report = cupft_builder(inst.graph, inst.faulty).run();
  EXPECT_EQ(report.verdict(), "SOLVED");
  for (const auto& [who, members] : report.memberships) {
    EXPECT_EQ(members, (IdSet{p(1), p(2), p(3), p(4)})) << to_string(who);
  }
}

TEST(CupftIntegrationTest, Fig4bSolvesWithCore8to12) {
  const auto inst = graph::figures::fig4b();
  const auto report = cupft_builder(inst.graph, inst.faulty).run();
  EXPECT_EQ(report.verdict(), "SOLVED");
  for (const auto& [who, members] : report.memberships) {
    EXPECT_EQ(members, (IdSet{p(8), p(9), p(10), p(11), p(12)}))
        << to_string(who);
  }
}

TEST(CupftIntegrationTest, Fig4aBenignFakePdStillSolves) {
  // Byzantine 5 advertises a *different* fake PD that keeps pointing into
  // the A side: the bridge evidence survives and the core is found.
  const auto inst = graph::figures::fig4a();
  const auto report = cupft_builder(inst.graph, inst.faulty)
                          .byz(ByzBehavior::kFakePd)
                          .fake_pd(p(5), {p(4), p(6)})
                          .run();
  EXPECT_EQ(report.verdict(), "SOLVED");
}

TEST(CupftIntegrationTest, Fig4aBridgeHidingFakePdAttackSplits) {
  // FINDING (documented in DESIGN.md §4.6): fig4a's graph engineering
  // counts 5 -> 4 as an escape that stops {5,6,7,8} from self-declaring.
  // A Byzantine 5 that *hides* that edge (fake PD {6,7,8}) completes a
  // phantom K4 on the B side: {5,6,7,8} transiently passes the predicate
  // with k = 2 before the A-side knowledge arrives, and the B side decides
  // separately. Algorithm 4 as specified has no defense against this;
  // the run is an executable witness of the gap.
  const auto inst = graph::figures::fig4a();
  const auto report = cupft_builder(inst.graph, inst.faulty)
                          .byz(ByzBehavior::kFakePd)
                          .fake_pd(p(5), {p(6), p(7), p(8)})  // hides 5 -> 4
                          .run();
  EXPECT_NE(report.verdict(), "SOLVED");
}

TEST(CupftIntegrationTest, Fig4bWrongValueByzantine) {
  const auto inst = graph::figures::fig4b();
  const auto report = cupft_builder(inst.graph, inst.faulty)
                          .byz(ByzBehavior::kWrongValue)
                          .run();
  EXPECT_EQ(report.verdict(), "SOLVED");
  for (const auto& [who, d] : report.decisions) {
    EXPECT_NE(d.value, 666U);
  }
}

TEST(CupftIntegrationTest, Fig3bSolvesWithoutKnowingF) {
  // fig3b satisfies BFT-CUPFT; CupftNode must find the K5 core (+ absorbed
  // silent Byzantine {5,7}) with no f provided.
  const auto inst = graph::figures::fig3b();
  const auto report = cupft_builder(inst.graph, inst.faulty).run();
  EXPECT_EQ(report.verdict(), "SOLVED");
  for (const auto& [who, members] : report.memberships) {
    EXPECT_EQ(members,
              (IdSet{p(1), p(2), p(3), p(4), p(5), p(6), p(7)}))
        << to_string(who);
  }
}

TEST(CupftIntegrationTest, Fig2cSplitsWhenSchedulingIsFast) {
  // Theorem 7 bites the Core algorithm too: fig2c violates C1, and with a
  // fast schedule each half sees its own sink as a *strict* local maximum
  // before learning of the other — so it terminates and decides. On an
  // insufficient graph no unknown-f protocol can do better (that is the
  // impossibility); the model's answer is the checker rejecting the graph.
  const auto inst = graph::figures::fig2c();
  const auto report =
      cupft_builder(inst.graph, inst.faulty).horizon(300'000).run();
  EXPECT_FALSE(report.agreement);
}

TEST(CupftIntegrationTest, Fig3aTrueSinkDecidesOthersStarve) {
  // BFT-CUP-sufficient but BFT-CUPFT-insufficient. Deterministic split of
  // knowledge: {5,7,8} never learn the K5 side exists (their PDs point only
  // at each other), so they decide among themselves; {2,3,4,6} either see
  // the tie (k = 2 vs k = 2) and wait forever or adopt the over-absorbed
  // family whose quorum cannot assemble. Either way they never decide and
  // never contradict {5,7,8}.
  const auto inst = graph::figures::fig3a();
  const auto report =
      cupft_builder(inst.graph, inst.faulty).horizon(300'000).run();
  EXPECT_TRUE(report.agreement);
  for (std::uint64_t id : {5, 7, 8}) {
    EXPECT_TRUE(report.decisions.contains(p(id)));
  }
  for (std::uint64_t id : {2, 3, 4, 6}) {
    EXPECT_FALSE(report.decisions.contains(p(id)));
  }
}

TEST(CupftIntegrationTest, LateGstStillSolves) {
  const auto inst = graph::figures::fig4a();
  const auto report =
      cupft_builder(inst.graph, inst.faulty).gst(20'000).seed(11).run();
  EXPECT_EQ(report.verdict(), "SOLVED");
}

class CupftSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CupftSweep, RandomCupftGraphsSolve) {
  Rng rng(GetParam());
  graph::generators::CupftParams gp;
  gp.f = 1;
  gp.core_size = 5;
  gp.periphery = 4;
  gp.byzantine_in_core = 1;
  const auto sys = graph::generators::random_cupft(gp, rng);

  const auto report = cupft_builder(sys.graph, sys.faulty)
                          .seed(GetParam() * 13 + 1)
                          .run();
  EXPECT_EQ(report.verdict(), "SOLVED") << "seed=" << GetParam();
  EXPECT_TRUE(report.validity);
  // Every correct process converged on the full core (incl. the Byzantine
  // member, absorbed per S2).
  for (const auto& [who, members] : report.memberships) {
    EXPECT_EQ(members, sys.sink) << to_string(who);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CupftSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(CupftIntegrationTest, AuthAndCupftAgreeOnSameGraph) {
  // The "price of not knowing f" must be latency/messages, not outcomes.
  const auto inst = graph::figures::fig4a();
  const auto ra = cupft_builder(inst.graph, inst.faulty)
                      .mode(Mode::kAuth)
                      .f(inst.f)
                      .run();
  const auto rc = cupft_builder(inst.graph, inst.faulty).run();
  EXPECT_EQ(ra.verdict(), "SOLVED");
  EXPECT_EQ(rc.verdict(), "SOLVED");
}

}  // namespace
}  // namespace bftcup::cup

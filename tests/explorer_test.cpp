// The adversary explorer's three contracts: mutants are always valid,
// shrinking reaches a verified 1-minimal fixpoint, and exploration is a
// pure function of the master seed — identical across repeats and across
// BatchRunner thread counts.
#include <gtest/gtest.h>

#include <set>

#include "explore/explorer.hpp"
#include "graph/figures.hpp"

namespace bftcup {
namespace {

using explore::Classification;
using explore::Explorer;
using explore::ExplorerOptions;
using explore::FindingKind;
using explore::Genome;
using explore::Mutator;
using explore::Shrinker;
using explore::TimelineGene;

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

Genome fig1b_genome() {
  Genome genome;
  const auto inst = graph::figures::fig1b();
  genome.graph = inst.graph;
  genome.faulty = inst.faulty;
  genome.f = inst.f;
  genome.mode = cup::Mode::kAuth;
  genome.horizon = 300'000;
  return genome;
}

/// The known bridge-hiding attack (registered as
/// fig4a/bridge-hiding-attack): Byzantine 5 advertises {6,7,8}.
Genome bridge_hiding_genome() {
  Genome genome;
  const auto inst = graph::figures::fig4a();
  genome.graph = inst.graph;
  genome.faulty = inst.faulty;
  genome.f = inst.f;
  genome.mode = cup::Mode::kCupft;
  genome.byz = cup::ByzBehavior::kFakePd;
  genome.fake_pds[p(5)] = IdSet{p(6), p(7), p(8)};
  genome.horizon = 300'000;
  return genome;
}

TEST(GenomeTest, LineRoundTripsEveryFeature) {
  Genome genome = fig1b_genome();
  genome.byz = cup::ByzBehavior::kFakePd;
  genome.fake_pds[p(4)] = IdSet{p(1), p(901)};  // includes a ghost id
  genome.timeline.push_back(
      {TimelineGene::Kind::kCrash, p(2), {}, {}, {}, 60, 0});
  genome.timeline.push_back(
      {TimelineGene::Kind::kRecover, p(2), {}, {}, {}, 5'000, 0});
  genome.timeline.push_back(
      {TimelineGene::Kind::kDrop, p(1), p(2), {}, {}, 0, 2'000});
  genome.timeline.push_back({TimelineGene::Kind::kPartition,
                             {},
                             {},
                             IdSet{p(1), p(2)},
                             IdSet{p(3), p(5)},
                             10,
                             500});
  genome.timeline.push_back(
      {TimelineGene::Kind::kJoin, p(3), {}, {}, {}, 400, 0});
  genome.gst = 1'234;
  genome.delta = 17;
  genome.seed = 42;
  genome.closure_guard = true;

  const std::string line = genome.to_line();
  const auto parsed = Genome::parse_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_line(), line);
  EXPECT_EQ(*parsed, genome);
  EXPECT_TRUE(parsed->valid());
}

TEST(GenomeTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(Genome::parse_line("").has_value());
  EXPECT_FALSE(Genome::parse_line("nonsense").has_value());
  EXPECT_FALSE(Genome::parse_line("e=1>2|v=1.2").has_value());  // e before v
  EXPECT_FALSE(Genome::parse_line("v=1.2|bogus=3").has_value());
  EXPECT_FALSE(Genome::parse_line("v=1.2|tl=warp:1@5").has_value());
}

TEST(GenomeTest, WithoutVertexStripsEveryReference) {
  Genome genome = bridge_hiding_genome();
  genome.timeline.push_back(
      {TimelineGene::Kind::kCrash, p(5), {}, {}, {}, 60, 0});
  genome.timeline.push_back({TimelineGene::Kind::kPartition,
                             {},
                             {},
                             IdSet{p(5), p(6)},
                             IdSet{p(1), p(2)},
                             0,
                             100});
  const Genome reduced = explore::without_vertex(genome, p(5));
  EXPECT_FALSE(reduced.graph.has_vertex(p(5)));
  EXPECT_FALSE(reduced.faulty.contains(p(5)));
  EXPECT_FALSE(reduced.fake_pds.contains(p(5)));
  ASSERT_EQ(reduced.timeline.size(), 1U);  // crash dropped, partition kept
  EXPECT_EQ(reduced.timeline[0].kind, TimelineGene::Kind::kPartition);
  EXPECT_FALSE(reduced.timeline[0].group_a.contains(p(5)));
}

TEST(MutatorTest, EveryMutantPassesBuildValidation) {
  // The corpus-validity property: walk a mutation chain from each seed and
  // re-validate every mutant through the ScenarioBuilder gate (valid() is
  // exactly try { build() }). Also spot-check the structural bounds.
  Mutator mutator;
  Rng rng(2024);
  for (const Genome& seed : Explorer::default_seeds()) {
    ASSERT_TRUE(seed.valid());
    Genome current = seed;
    for (int step = 0; step < 60; ++step) {
      const auto mutant = mutator.mutate(current, rng);
      if (!mutant.has_value()) continue;  // attempt budget ran out; rare
      EXPECT_TRUE(mutant->valid()) << mutant->to_line();
      EXPECT_NO_THROW((void)mutant->to_builder().build());
      EXPECT_LE(mutant->graph.vertex_count(), mutator.options().max_vertices);
      EXPECT_LE(mutant->timeline.size(), mutator.options().max_timeline);
      EXPECT_NE(mutant->to_line(), current.to_line());
      current = *mutant;
    }
  }
}

TEST(MutatorTest, IsDeterministicGivenTheRngStream) {
  Mutator mutator;
  const Genome seed = bridge_hiding_genome();
  Rng rng_a(7);
  Rng rng_b(7);
  for (int step = 0; step < 20; ++step) {
    const auto a = mutator.mutate(seed, rng_a);
    const auto b = mutator.mutate(seed, rng_b);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a.has_value()) EXPECT_EQ(a->to_line(), b->to_line());
  }
}

TEST(ShrinkerTest, BridgeHidingShrinksToAVerifiedFixpoint) {
  const Genome start = bridge_hiding_genome();
  const Shrinker shrinker;
  const Classification target{FindingKind::kAgreement,
                              /*requirements_satisfied=*/true};
  ASSERT_TRUE(shrinker.reproduces(start, target));

  const auto outcome = shrinker.shrink(start, target);
  EXPECT_TRUE(outcome.fixpoint);
  EXPECT_TRUE(shrinker.reproduces(outcome.genome, target))
      << outcome.genome.to_line();
  // Minimization is monotone in every deletable dimension.
  EXPECT_LE(outcome.genome.graph.vertex_count(), start.graph.vertex_count());
  EXPECT_LE(outcome.genome.graph.edge_count(), start.graph.edge_count());

  // The fixpoint property, re-checked independently: no single further
  // deletion still reproduces the classification.
  for (const Genome& reduction : Shrinker::reductions(outcome.genome)) {
    EXPECT_FALSE(shrinker.reproduces(reduction, target))
        << reduction.to_line();
  }
}

TEST(ShrinkerTest, PreservesTheRequirementsSatisfiedDimension) {
  // Shrinking a requirements-satisfied agreement attack must never slide
  // into the trivial split-brain (which breaks agreement only because the
  // requirements no longer hold).
  const Shrinker shrinker;
  const Classification target{FindingKind::kAgreement, true};
  const auto outcome = shrinker.shrink(bridge_hiding_genome(), target);
  EXPECT_TRUE(explore::requirements_satisfied(outcome.genome));
}

TEST(ExplorerTest, ResultIsIdenticalAcrossThreadCountsAndRepeats) {
  ExplorerOptions options;
  options.master_seed = 11;
  options.generations = 2;
  options.population = 10;
  options.shrink = false;  // keep the double run affordable; shrinking is
                           // serial and covered by the fixpoint tests
  const auto seeds = Explorer::default_seeds();

  options.threads = 1;
  const auto serial = Explorer(options).explore(seeds);
  options.threads = 4;
  const auto pooled = Explorer(options).explore(seeds);
  options.threads = 3;
  const auto odd = Explorer(options).explore(seeds);

  EXPECT_EQ(serial.digest(), pooled.digest());
  EXPECT_EQ(serial.digest(), odd.digest());
  EXPECT_EQ(serial.runs, pooled.runs);
  ASSERT_EQ(serial.corpus.size(), pooled.corpus.size());
  for (std::size_t i = 0; i < serial.corpus.size(); ++i) {
    EXPECT_EQ(serial.corpus[i].genome.to_line(),
              pooled.corpus[i].genome.to_line());
    EXPECT_EQ(serial.corpus[i].signature, pooled.corpus[i].signature);
  }
  ASSERT_EQ(serial.findings.size(), pooled.findings.size());
  for (std::size_t i = 0; i < serial.findings.size(); ++i) {
    EXPECT_EQ(serial.findings[i].name, pooled.findings[i].name);
    EXPECT_EQ(serial.findings[i].digest, pooled.findings[i].digest);
  }
}

TEST(ExplorerTest, RegisteredFindingsReplayByName) {
  ExplorerOptions options;
  options.master_seed = 11;
  options.generations = 2;
  options.population = 10;
  options.shrink = false;
  const auto result = Explorer(options).explore(Explorer::default_seeds());

  cup::ScenarioRegistry registry;
  explore::register_findings(registry, result.findings);
  EXPECT_EQ(registry.names_with_tag("explored").size(),
            result.findings.size());
  for (const explore::Finding& finding : result.findings) {
    const std::string name = "explored/" + finding.name;
    ASSERT_TRUE(registry.contains(name));
    const cup::RunReport replay = registry.run(name, finding.genome.seed);
    EXPECT_EQ(replay.verdict(), finding.verdict) << name;
    EXPECT_EQ(replay.digest(), finding.digest) << name;
  }
}

TEST(CoverageTest, SignatureSeparatesVerdictsAndCollapsesNoise) {
  // Two runs of the same scenario at nearby seeds land in the same
  // coverage class; a structurally different outcome lands in a new one.
  const Genome base = fig1b_genome();
  Genome seed2 = base;
  seed2.seed = 2;
  const auto report_a = cup::run_scenario(base.to_builder().build());
  const auto report_b = cup::run_scenario(seed2.to_builder().build());
  const auto report_bad =
      cup::run_scenario(bridge_hiding_genome().to_builder().build());
  EXPECT_EQ(explore::coverage_signature(report_a),
            explore::coverage_signature(report_b));
  EXPECT_NE(explore::coverage_signature(report_a),
            explore::coverage_signature(report_bad));

  explore::CoverageMap map;
  EXPECT_TRUE(map.add(explore::coverage_signature(report_a)));
  EXPECT_FALSE(map.add(explore::coverage_signature(report_b)));
  EXPECT_TRUE(map.add(explore::coverage_signature(report_bad)));
  EXPECT_EQ(map.size(), 2U);
}

}  // namespace
}  // namespace bftcup

// Hostile-wire layer: determinism, transparency, safety, and the explorer
// plumbing around it.
//
// 1. Pinned digests for the wire/* registry family — the hostile-wire runs
//    are as bit-replayable as every other scenario, and safety (agreement,
//    validity) holds on all of them even though liveness may not.
// 2. Transparency: enabling the wire path at rate 0, or the loss wrapper
//    with all-zero knobs, reproduces the wire-off golden digests byte for
//    byte. This is the load-bearing guarantee that the layer costs nothing
//    when off and that encode_frame -> decode_frame is a faithful inverse
//    on every frame a real run produces.
// 3. WireMutator / LossyDelayPolicy determinism in isolation.
// 4. Genome wire genes: one-line artifact round-trip, pre-wire lines parse
//    to the wire-off defaults (corpus compatibility).
// 5. Builder validation, shrinker wire reductions, and the oracle's
//    kWireSafety attribution on the planted CI genome.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cup/runner.hpp"
#include "cup/scenario_builder.hpp"
#include "cup/scenario_registry.hpp"
#include "explore/genome.hpp"
#include "explore/oracle.hpp"
#include "explore/shrinker.hpp"
#include "msg/message.hpp"
#include "msg/wire.hpp"
#include "sim/network.hpp"
#include "sim/wire_mutator.hpp"

namespace bftcup {
namespace {

// --- 1. pinned digests ------------------------------------------------------

struct WireGolden {
  const char* scenario;
  std::uint64_t seed;
  const char* digest;
};

/// Captured on the implementation that introduced the hostile-wire layer
/// (tools/cup_explore --digests wire --seed {1,7}). Mutation schedules are a
/// pure function of (scenario, seed), so these must stay byte-identical.
constexpr WireGolden kWireCorpus[] = {
    {"wire/fig1b-bitflip", 1,
     "9ba0e91df9b6bc6f25739c05b78c99f0d9681d82c04b1934423f66fcc94eb0e6"},  // SOLVED
    {"wire/fig1b-bitflip", 7,
     "ff49fb975773647fd327732094ea7f465c62045899f71017a57c0125b74ba9b2"},  // SOLVED
    {"wire/fig1b-burst", 1,
     "571c3735496cd0f1ed0c722f9b6c63b1ddad81c2569eaf768969458fd21691b0"},  // NO-TERMINATION
    {"wire/fig1b-burst", 7,
     "2b54cda886fb94c30371b12a2aef76be94e269e54d90b591d26adfdd669071ca"},  // NO-TERMINATION
    {"wire/fig1b-lossy", 1,
     "bb037f7f390c73130a0fbd42f6353370eb9408e473734bdfda35b1575fc0b939"},  // SOLVED
    {"wire/fig1b-lossy", 7,
     "711d8ec28cef259b6263b7f7c4d27ecac84153a927e2ac1b35a528aa011b43aa"},  // NO-TERMINATION
    {"wire/fig1b-storm", 1,
     "486e2620b041bc25c0022a988e56b7b8b6a93c7832ac07178fb65b2cdeace97a"},  // NO-TERMINATION
    {"wire/fig1b-storm", 7,
     "e7f909ce861e56bf00852cae242393105188d8ded4106a1f39e6669edf752612"},  // SOLVED
    {"wire/fig4a-garbage", 1,
     "e6d65d59d7ff91134837d48ab7197b8632f6ab1c532a88debf1c33397a431f58"},  // NO-TERMINATION
    {"wire/fig4a-garbage", 7,
     "1d77ccdfff3703f261892d964875a578fc2d30b616dbbfb2f08c352420197916"},  // NO-TERMINATION
    {"wire/fig4a-splice-cert", 1,
     "6e6f5fb58457016b35b3583fd7dd4e739145dbc417ea593d400852872eb21817"},  // NO-TERMINATION
    {"wire/fig4a-splice-cert", 7,
     "2a1b1444b502cb0eb4ace1f2dda25b34f481924b1a7fc406ef80db767179c657"},  // NO-TERMINATION
};

TEST(WireCorpusTest, PinnedDigestsAndSafetyUnderHostileWire) {
  const auto& registry = cup::ScenarioRegistry::paper();
  for (const WireGolden& g : kWireCorpus) {
    const cup::RunReport report = registry.run(g.scenario, g.seed);
    EXPECT_EQ(report.digest(), g.digest)
        << g.scenario << " seed " << g.seed << " (" << report.verdict() << ")";
    // The wire may cost liveness (some of these never terminate); it must
    // never cost safety.
    EXPECT_TRUE(report.agreement) << g.scenario << " seed " << g.seed;
    EXPECT_TRUE(report.validity) << g.scenario << " seed " << g.seed;
    // Every wire scenario actually exercises its fault model.
    EXPECT_GT(report.frames_mutated + report.frames_lost, 0u)
        << g.scenario << " seed " << g.seed;
  }
}

TEST(WireCorpusTest, EveryWireTaggedScenarioIsPinned) {
  const auto names = cup::ScenarioRegistry::paper().names_with_tag("wire");
  EXPECT_EQ(names.size() * 2, std::size(kWireCorpus))
      << "new wire/* scenario: extend kWireCorpus (both seeds)";
}

// --- 2. transparency --------------------------------------------------------

// fig1b/silent goldens from tests/determinism_test.cpp kGoldenCorpus.
constexpr const char* kFig1bSilentSeed1 =
    "22043fed842d818a15b5f42c9c857f8cb2ff0df19bf4d06a9c9e282ef27a5657";
constexpr const char* kFig1bSilentSeed7 =
    "ff49fb975773647fd327732094ea7f465c62045899f71017a57c0125b74ba9b2";

TEST(WireTransparencyTest, RateZeroWirePathReproducesGoldenDigest) {
  // enabled + rate 0 routes every targeted delivery through
  // encode_frame -> decode_frame but never perturbs a frame. If the frame
  // codec were lossy in any way, these digests would diverge.
  const auto& registry = cup::ScenarioRegistry::paper();
  const auto run = [&](std::uint64_t seed) {
    return registry.builder("fig1b/silent", seed).wire_mutation(0.0).run();
  };
  EXPECT_EQ(run(1).digest(), kFig1bSilentSeed1);
  EXPECT_EQ(run(7).digest(), kFig1bSilentSeed7);
}

TEST(WireTransparencyTest, ZeroLossConfigReproducesGoldenDigest) {
  // loss(0, 0): the wrapper is installed but draws nothing and drops
  // nothing — bit-transparent per the LossyDelayPolicy contract.
  const auto& registry = cup::ScenarioRegistry::paper();
  const auto run = [&](std::uint64_t seed) {
    return registry.builder("fig1b/silent", seed).loss(0.0, 0).run();
  };
  EXPECT_EQ(run(1).digest(), kFig1bSilentSeed1);
  EXPECT_EQ(run(7).digest(), kFig1bSilentSeed7);
}

// --- 3. component determinism ----------------------------------------------

sim::WireConfig storm_config() {
  sim::WireConfig config;
  config.enabled = true;
  config.rate = 0.7;
  config.seed = 3;
  return config;
}

/// A deterministic stream of distinct valid frames to feed a mutator.
Bytes nth_frame(std::size_t i) {
  msg::Message m;
  m.type = msg::MsgType::kDecidedVal;
  m.value = Value(1000 + i);
  return msg::encode_frame(m);
}

TEST(WireMutatorTest, SameSeedSameSchedule) {
  sim::WireMutator a(storm_config(), /*sim_seed=*/42);
  sim::WireMutator b(storm_config(), /*sim_seed=*/42);
  for (std::size_t i = 0; i < 300; ++i) {
    const Bytes frame = nth_frame(i);
    const auto ra = a.process(frame);
    const auto rb = b.process(frame);
    EXPECT_EQ(ra.kind, rb.kind) << "delivery " << i;
    EXPECT_EQ(ra.frames, rb.frames) << "delivery " << i;
  }
}

TEST(WireMutatorTest, WireSeedRerollsSchedule) {
  sim::WireConfig other = storm_config();
  other.seed = 4;
  sim::WireMutator a(storm_config(), 42);
  sim::WireMutator b(other, 42);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    const Bytes frame = nth_frame(i);
    if (a.process(frame).frames != b.process(frame).frames) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(WireMutatorTest, RateZeroPassesFramesThroughUntouched) {
  sim::WireConfig config;
  config.enabled = true;
  config.rate = 0.0;
  sim::WireMutator mutator(config, 42);
  for (std::size_t i = 0; i < 50; ++i) {
    const Bytes frame = nth_frame(i);
    const auto result = mutator.process(frame);
    EXPECT_FALSE(result.kind.has_value());
    ASSERT_EQ(result.frames.size(), 1u);
    EXPECT_EQ(result.frames.front(), frame);
  }
}

TEST(LossyDelayPolicyTest, SameSeedSameDropAndDelaySchedule) {
  sim::LossConfig config;
  config.enabled = true;
  config.drop_p = 0.4;
  config.jitter = 5;
  const sim::NetConfig net;
  const auto schedule = [&] {
    sim::LossyDelayPolicy policy(
        std::make_unique<sim::RandomDelayPolicy>(), config);
    Rng rng(9);
    std::vector<SimTime> out;
    for (SimTime t = 0; t < 500; ++t) {
      // Mirror the simulator's per-send order: should_drop first, then
      // delivery_time only for survivors.
      if (policy.should_drop(ProcessId(1), ProcessId(2), t, rng, net)) {
        out.push_back(-1);
      } else {
        out.push_back(
            policy.delivery_time(ProcessId(1), ProcessId(2), t, rng, net));
      }
    }
    return out;
  };
  const auto a = schedule();
  const auto b = schedule();
  EXPECT_EQ(a, b);
  // Sanity: the schedule actually drops and delivers.
  EXPECT_GT(std::count(a.begin(), a.end(), SimTime(-1)), 0);
  EXPECT_LT(std::count(a.begin(), a.end(), SimTime(-1)),
            static_cast<long>(a.size()));
}

TEST(LossyDelayPolicyTest, AllZeroKnobsAreBitTransparent) {
  // With every knob at its zero default the wrapper must neither drop nor
  // touch the RNG: its delivery times match the bare inner policy draw for
  // draw on a same-seeded stream.
  sim::LossConfig zero;
  zero.enabled = true;
  const sim::NetConfig net;
  sim::LossyDelayPolicy wrapped(std::make_unique<sim::RandomDelayPolicy>(),
                                zero);
  sim::RandomDelayPolicy bare;
  Rng rng_wrapped(7);
  Rng rng_bare(7);
  for (SimTime t = 0; t < 200; ++t) {
    EXPECT_FALSE(
        wrapped.should_drop(ProcessId(1), ProcessId(2), t, rng_wrapped, net));
    EXPECT_EQ(
        wrapped.delivery_time(ProcessId(1), ProcessId(2), t, rng_wrapped, net),
        bare.delivery_time(ProcessId(1), ProcessId(2), t, rng_bare, net));
  }
}

TEST(LossyDelayPolicyTest, BurstWindowsRecurWithPeriod) {
  sim::LossConfig config;
  config.enabled = true;
  config.burst_start = 10;
  config.burst_len = 5;
  config.burst_period = 100;  // [10,15), [110,115), ...
  const sim::NetConfig net;
  sim::LossyDelayPolicy policy(std::make_unique<sim::RandomDelayPolicy>(),
                               config);
  Rng rng(1);
  const auto dropped = [&](SimTime t) {
    return policy.should_drop(ProcessId(1), ProcessId(2), t, rng, net);
  };
  // Default burst_drop_p is 1.0: total blackout inside, untouched outside.
  EXPECT_FALSE(dropped(9));
  EXPECT_TRUE(dropped(10));
  EXPECT_TRUE(dropped(14));
  EXPECT_FALSE(dropped(15));
  EXPECT_TRUE(dropped(112));
  EXPECT_FALSE(dropped(215));
  EXPECT_TRUE(dropped(1010));
}

// --- 4. genome wire genes ---------------------------------------------------

TEST(WireGenomeTest, WireGenesRoundTripThroughLine) {
  explore::Genome g;
  g.graph = graph::figures::fig1b().graph;
  g.faulty = {ProcessId(4)};
  g.wire_rate_pm = 250;
  g.wire_kinds = 1u << static_cast<std::size_t>(sim::WireMutationKind::kSplice);
  g.wire_types = 1u << static_cast<std::size_t>(msg::MsgType::kGetPds);
  g.loss_pm = 50;
  g.loss_jitter = 20;
  g.burst_start = 20;
  g.burst_len = 40;
  g.burst_period = 500;
  EXPECT_TRUE(g.wire_active());
  const std::string line = g.to_line();
  EXPECT_NE(line.find("|wm=250:4:1"), std::string::npos) << line;
  EXPECT_NE(line.find("|loss=50:20"), std::string::npos) << line;
  EXPECT_NE(line.find("|burst=20:40:500"), std::string::npos) << line;
  const auto back = explore::Genome::parse_line(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, g);
  EXPECT_EQ(back->to_line(), line);
}

TEST(WireGenomeTest, WireOffGenomeEmitsPreWireLine) {
  // All-default wire genes must leave the artifact byte-identical to the
  // pre-wire format: no wm/loss/burst keys at all. Content-addressed
  // finding names and stored corpus lines depend on this.
  explore::Genome g;
  g.graph = graph::figures::fig1b().graph;
  g.faulty = {ProcessId(4)};
  EXPECT_FALSE(g.wire_active());
  const std::string line = g.to_line();
  EXPECT_EQ(line.find("wm="), std::string::npos) << line;
  EXPECT_EQ(line.find("loss="), std::string::npos) << line;
  EXPECT_EQ(line.find("burst="), std::string::npos) << line;
  const auto back = explore::Genome::parse_line(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->wire_rate_pm, 0u);
  EXPECT_EQ(back->wire_kinds, sim::kAllWireMutationKinds);
  EXPECT_EQ(back->wire_types, sim::kAllWireMsgTypes);
  EXPECT_EQ(back->loss_pm, 0u);
  EXPECT_EQ(back->burst_len, SimTime(0));
  EXPECT_FALSE(back->wire_active());
}

TEST(WireGenomeTest, WireGenesFlowIntoScenario) {
  explore::Genome g;
  g.graph = graph::figures::fig1b().graph;
  g.faulty = {ProcessId(4)};
  g.wire_rate_pm = 125;
  g.loss_pm = 40;
  g.loss_jitter = 3;
  const cup::Scenario s = g.to_builder().build();
  EXPECT_TRUE(s.sim.wire.enabled);
  EXPECT_DOUBLE_EQ(s.sim.wire.rate, 0.125);
  EXPECT_TRUE(s.loss.enabled);
  EXPECT_DOUBLE_EQ(s.loss.drop_p, 0.040);
  EXPECT_EQ(s.loss.jitter, SimTime(3));
}

// --- 5. builder validation, shrinker, oracle --------------------------------

TEST(WireBuilderTest, OutOfRangeWireKnobsThrow) {
  const auto& registry = cup::ScenarioRegistry::paper();
  EXPECT_THROW(registry.builder("fig1b/silent").wire_mutation(1.5).build(),
               cup::ScenarioError);
  EXPECT_THROW(
      registry.builder("fig1b/silent").wire_mutation(0.5, /*kind_mask=*/0)
          .build(),
      cup::ScenarioError);
  EXPECT_THROW(registry.builder("fig1b/silent")
                   .wire_mutation(0.5, sim::kAllWireMutationKinds,
                                  /*type_mask=*/sim::kAllWireMsgTypes + 1)
                   .build(),
               cup::ScenarioError);
  EXPECT_THROW(registry.builder("fig1b/silent").loss(2.0).build(),
               cup::ScenarioError);
  EXPECT_THROW(
      registry.builder("fig1b/silent").loss_burst(0, 10, 0, /*drop_p=*/-0.5)
          .build(),
      cup::ScenarioError);
}

/// The CI-planted wire-safety genome (tools/cup_explore --wire-smoke): a
/// two-bridge split topology whose wire-off baseline is NO-TERMINATION
/// (clean safety) and whose naive-mode run under frame mutation breaks
/// agreement.
constexpr const char* kWirePlantLine =
    "v=1.2.3.4.5.6.7.8|e=1>2;1>3;1>4;2>1;2>3;2>4;3>1;3>2;3>4;3>6;4>1;4>2;"
    "4>3;4>5;5>4;5>6;5>7;5>8;6>3;6>5;6>7;6>8;7>5;7>6;7>8;8>5;8>6;8>7|f=1|"
    "mode=naive|byz=silent|faulty=|fpd=|tl=|gst=0|delta=10|hz=300000|"
    "seed=16|cg=0|wm=250:63:2047";

TEST(WireShrinkerTest, ReductionsIncludeWireGeneShrinks) {
  const auto plant = explore::Genome::parse_line(kWirePlantLine);
  ASSERT_TRUE(plant.has_value());
  const auto reductions = explore::Shrinker::reductions(*plant);
  bool zeroes_rate = false;
  bool clears_one_kind = false;
  bool narrows_types = false;
  for (const explore::Genome& r : reductions) {
    if (r.wire_rate_pm == 0) zeroes_rate = true;
    if (r.wire_rate_pm == plant->wire_rate_pm &&
        std::popcount(r.wire_kinds) ==
            std::popcount(plant->wire_kinds) - 1) {
      clears_one_kind = true;
    }
    if (r.wire_rate_pm == plant->wire_rate_pm &&
        std::popcount(r.wire_types) ==
            std::popcount(plant->wire_types) - 1) {
      narrows_types = true;
    }
  }
  EXPECT_TRUE(zeroes_rate);
  EXPECT_TRUE(clears_one_kind);
  EXPECT_TRUE(narrows_types);

  explore::Genome lossy = *plant;
  lossy.wire_rate_pm = 0;
  lossy.loss_pm = 80;
  lossy.burst_start = 10;
  lossy.burst_len = 20;
  lossy.burst_period = 100;
  bool zeroes_loss = false;
  bool clears_burst = false;
  for (const explore::Genome& r : explore::Shrinker::reductions(lossy)) {
    if (r.loss_pm == 0 && r.burst_len == lossy.burst_len) zeroes_loss = true;
    if (r.burst_len == 0 && r.loss_pm == lossy.loss_pm) clears_burst = true;
  }
  EXPECT_TRUE(zeroes_loss);
  EXPECT_TRUE(clears_burst);
}

TEST(WireOracleTest, PlantClassifiesAsWireSafetyAndBaselineIsClean) {
  const auto plant = explore::Genome::parse_line(kWirePlantLine);
  ASSERT_TRUE(plant.has_value());
  ASSERT_TRUE(plant->wire_active());

  // The planted run breaks agreement under the hostile wire (naive mode has
  // no signatures, so a mutated frame can forge knowledge).
  const cup::RunReport report = cup::run_scenario(plant->to_builder().build());
  ASSERT_FALSE(report.agreement && report.validity);
  const auto classification = explore::classify(*plant, report);
  ASSERT_TRUE(classification.has_value());
  EXPECT_EQ(classification->kind, explore::FindingKind::kWireSafety);

  // The same genome with the wire stripped replays clean at the same seed —
  // the break is the wire's fault, not the scenario's.
  explore::Genome stripped = *plant;
  stripped.wire_rate_pm = 0;
  EXPECT_FALSE(stripped.wire_active());
  const cup::RunReport baseline =
      cup::run_scenario(stripped.to_builder().build());
  EXPECT_TRUE(baseline.agreement);
  EXPECT_TRUE(baseline.validity);

  // With attribution disabled the same run classifies as a plain agreement
  // finding (naive mode, include_naive default).
  explore::OracleOptions no_attr;
  no_attr.attribute_wire = false;
  const auto plain = explore::classify(*plant, report, no_attr);
  ASSERT_TRUE(plain.has_value());
  EXPECT_NE(plain->kind, explore::FindingKind::kWireSafety);
}

}  // namespace
}  // namespace bftcup

// The bucketed event queue must drain the exact (time, seq) total order a
// binary heap would — the golden digest corpus sits on top of it. These
// tests cross-validate against std::priority_queue on randomized
// workloads spanning both levels (near-future ring and far-future
// overflow), exercise the push-while-draining path, and prove clear()
// reuse (the recycled-simulator path) starts bit-identically.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "common/random.hpp"
#include "sim/bucket_queue.hpp"

namespace bftcup::sim {
namespace {

struct TestEvent {
  SimTime time = 0;
  std::uint64_t seq = 0;
  int payload = 0;
};

struct After {
  bool operator()(const TestEvent& a, const TestEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

using Reference =
    std::priority_queue<TestEvent, std::vector<TestEvent>, After>;

/// Drains both queues fully, interleaving bursts of pushes scheduled
/// relative to the last popped time — the simulator's access pattern.
void cross_validate(Rng& rng, BucketQueue<TestEvent>& queue, SimTime max_gap,
                    int bursts) {
  Reference reference;
  std::uint64_t seq = 0;
  SimTime now = 0;
  int payload = 0;

  const auto push_burst = [&](SimTime base) {
    const int count = static_cast<int>(rng.next_below(6)) + 1;
    for (int i = 0; i < count; ++i) {
      TestEvent ev;
      ev.time = base + static_cast<SimTime>(rng.next_below(
                           static_cast<std::uint64_t>(max_gap)));
      ev.seq = seq++;
      ev.payload = payload++;
      queue.push(ev);
      reference.push(ev);
    }
  };

  push_burst(0);
  for (int burst = 0; burst < bursts; ++burst) {
    // Drain a few, pushing new work from the popped timestamps like event
    // handlers do (including same-tick pushes while the bucket drains).
    const int pops = static_cast<int>(rng.next_below(4)) + 1;
    for (int p = 0; p < pops && !queue.empty(); ++p) {
      ASSERT_FALSE(reference.empty());
      const TestEvent expected = reference.top();
      reference.pop();
      const TestEvent got = queue.pop();
      ASSERT_EQ(got.time, expected.time);
      ASSERT_EQ(got.seq, expected.seq);
      ASSERT_EQ(got.payload, expected.payload);
      now = got.time;
      if (rng.chance(0.7)) push_burst(now);
    }
  }
  while (!queue.empty()) {
    ASSERT_FALSE(reference.empty());
    const TestEvent expected = reference.top();
    reference.pop();
    const TestEvent got = queue.pop();
    ASSERT_EQ(got.time, expected.time);
    ASSERT_EQ(got.seq, expected.seq);
  }
  EXPECT_TRUE(reference.empty());
}

TEST(BucketQueueTest, MatchesHeapOrderOnNearFutureWorkload) {
  Rng rng(42);
  BucketQueue<TestEvent> queue;
  // All delays inside the ring window: the pure O(1) regime.
  cross_validate(rng, queue, /*max_gap=*/600, /*bursts=*/400);
}

TEST(BucketQueueTest, MatchesHeapOrderAcrossTheOverflowBoundary) {
  Rng rng(7);
  BucketQueue<TestEvent> queue;
  // Delays up to 8x the ring size: every event crosses heap -> ring
  // migration at least conceptually, and sparse stretches force the
  // empty-ring jump.
  cross_validate(rng, queue, /*max_gap=*/8 * BucketQueue<TestEvent>::kRingSize,
                 /*bursts=*/300);
}

TEST(BucketQueueTest, SameTickEventsDrainInSeqOrder) {
  // The simulator pushes in globally ascending seq (the FIFO tie-break);
  // same-tick events must drain in exactly that order — including events
  // scheduled *for the current tick while it drains* (a handler sending
  // with zero residual delay).
  BucketQueue<TestEvent> queue;
  for (std::uint64_t s = 0; s < 5; ++s) queue.push({.time = 10, .seq = s});
  for (std::uint64_t s = 0; s < 5; ++s) {
    EXPECT_EQ(queue.pop().seq, s);
    if (s == 2) queue.push({.time = 10, .seq = 5});  // same-tick append
  }
  EXPECT_EQ(queue.pop().seq, 5u);
  EXPECT_TRUE(queue.empty());
}

TEST(BucketQueueTest, ClearedQueueReplaysIdentically) {
  const auto drain_log = [](BucketQueue<TestEvent>& queue) {
    Rng rng(99);
    std::uint64_t seq = 0;
    std::vector<std::pair<SimTime, std::uint64_t>> log;
    for (int i = 0; i < 500; ++i) {
      queue.push({.time = static_cast<SimTime>(rng.next_below(5000)),
                  .seq = seq++});
    }
    while (!queue.empty()) {
      const TestEvent ev = queue.pop();
      log.emplace_back(ev.time, ev.seq);
    }
    return log;
  };

  BucketQueue<TestEvent> queue;
  queue.reserve(512);
  const auto first = drain_log(queue);
  queue.clear();  // keeps capacity; state must be as-new
  const auto second = drain_log(queue);
  EXPECT_EQ(first, second);

  // Clearing a partially drained queue (the mid-run reset path). clear()
  // first: a drained queue's cursor sits past every new timestamp, and
  // pushing into the past is outside the queue's contract.
  queue.clear();
  Rng rng(5);
  std::uint64_t seq = 0;
  for (int i = 0; i < 100; ++i) {
    queue.push({.time = static_cast<SimTime>(rng.next_below(3000)),
                .seq = seq++});
  }
  for (int i = 0; i < 37; ++i) (void)queue.pop();
  queue.clear();
  EXPECT_TRUE(queue.empty());
  const auto third = drain_log(queue);
  EXPECT_EQ(first, third);
}

}  // namespace
}  // namespace bftcup::sim

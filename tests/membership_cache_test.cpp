// The incremental membership engine's contract: every cache layer stores
// pure functions of immutable inputs, so results are bit-identical with
// caching on or off.
//
// 1. Property: across randomized add_pd sequences on random_cupft graphs,
//    an incremental strategy (dirty-SCC candidate reuse + split memo,
//    persistent across steps) returns the exact candidate sequence of a
//    cold search, for both strategies.
// 2. The per-simulation shared evaluation cache returns the cold result
//    and reports hits once views converge.
// 3. The signature-verification memo serves accepts AND rejects without
//    changing outcomes.
// 4. Regression: SearchOptions::exhaustive_cap >= 64 no longer shifts a
//    64-bit mask out of range (UB) — oversized caps are clamped and
//    oversized SCCs are skipped promptly.
#include <gtest/gtest.h>

#include "crypto/verify_cache.hpp"
#include "cup/scenario_registry.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "protocol/core.hpp"
#include "protocol/eval_cache.hpp"
#include "protocol/sink.hpp"
#include "protocol/sink_search.hpp"

namespace bftcup {
namespace {

using protocol::EvalScratch;
using protocol::ExhaustiveSinkSearch;
using protocol::KnowledgeView;
using protocol::SearchOptions;
using protocol::SharedEvalCache;
using protocol::SinkCandidate;
using protocol::StructuredSinkSearch;

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

/// All (owner, PD) pairs of a graph, in a deterministic shuffled order.
std::vector<std::pair<ProcessId, IdSet>> shuffled_pds(const graph::Digraph& g,
                                                      Rng& rng) {
  std::vector<std::pair<ProcessId, IdSet>> pds;
  for (ProcessId id : g.vertices()) {
    pds.emplace_back(id, g.out_neighbors(id));
  }
  rng.shuffle(pds);
  return pds;
}

template <typename Strategy>
void expect_incremental_matches_cold(const graph::Digraph& g,
                                     std::uint64_t seed) {
  Rng rng(seed);
  const auto pds = shuffled_pds(g, rng);
  ASSERT_FALSE(pds.empty());

  SearchOptions warm_options;
  warm_options.incremental = true;
  SearchOptions cold_options;
  cold_options.incremental = false;
  const Strategy warm(warm_options);
  const Strategy cold(cold_options);

  KnowledgeView view(pds.front().first, pds.front().second);
  for (std::size_t i = 1; i < pds.size(); ++i) {
    view.add_pd(pds[i].first, pds[i].second);
    // Same view, same options apart from the memo flag: the candidate
    // sequences must be identical element-for-element (order included —
    // downstream tie-breaks depend on it).
    const std::vector<SinkCandidate> warm_result = warm.candidates(view);
    const std::vector<SinkCandidate> cold_result = cold.candidates(view);
    ASSERT_EQ(warm_result, cold_result)
        << "strategy=" << warm.name() << " seed=" << seed << " step=" << i;
  }
  // The warm run must actually have exercised the caches.
  const EvalScratch::Stats& stats = view.eval_scratch().stats;
  EXPECT_GT(stats.scc_hits + stats.split_hits, 0U) << warm.name();
}

TEST(IncrementalSearchPropertyTest, ExhaustiveMatchesColdOnRandomCupft) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 101);
    graph::generators::CupftParams params;
    params.f = 1;
    params.core_size = 5 + seed % 3;
    params.periphery = 6;
    const auto sys = graph::generators::random_cupft(params, rng);
    expect_incremental_matches_cold<ExhaustiveSinkSearch>(sys.graph, seed);
  }
}

TEST(IncrementalSearchPropertyTest, StructuredMatchesColdOnRandomCupft) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 131);
    graph::generators::CupftParams params;
    params.f = 1;
    params.core_size = 5 + seed % 3;
    params.periphery = 8;
    const auto sys = graph::generators::random_cupft(params, rng);
    expect_incremental_matches_cold<StructuredSinkSearch>(sys.graph, seed);
  }
}

TEST(IncrementalSearchPropertyTest, SplitMemoSurvivesUnrelatedAddPd) {
  // The per-S1 split memo is never invalidated; adding an unrelated PD must
  // leave memoized answers equal to a cold recomputation.
  const auto sys = [] {
    Rng rng(7);
    graph::generators::CupftParams params;
    return graph::generators::random_cupft(params, rng);
  }();
  KnowledgeView view = KnowledgeView::omniscient(sys.graph);

  const ExhaustiveSinkSearch warm;  // defaults: incremental
  const auto before = warm.candidates(view);

  // The ground-truth core's κ must have been memoized during enumeration,
  // and must match an independent computation.
  const IdSet safe_core = sys.sink.set_difference(sys.faulty);
  const auto memo_kappa = view.eval_scratch().memoized_kappa(safe_core);
  ASSERT_TRUE(memo_kappa.has_value());
  EXPECT_EQ(*memo_kappa,
            graph::strong_connectivity(
                view.knowledge_graph().induced(safe_core)));

  // A brand-new process advertising a PD full of fresh ids: known() grows,
  // received() grows, no existing SCC changes membership.
  view.add_pd(p(900), IdSet{p(901), p(902)});
  const auto after = warm.candidates(view);

  SearchOptions cold_options;
  cold_options.incremental = false;
  const ExhaustiveSinkSearch cold(cold_options);
  EXPECT_EQ(after, cold.candidates(view));
  EXPECT_GE(after.size(), before.size());
  // κ memo entries survive unrelated revisions untouched.
  EXPECT_EQ(view.eval_scratch().memoized_kappa(safe_core), memo_kappa);
}

TEST(SharedEvalCacheTest, SinkResultMatchesColdAndReportsHits) {
  const auto sys = [] {
    Rng rng(3);
    graph::generators::BftCupParams params;
    return graph::generators::random_bft_cup(params, rng);
  }();
  const KnowledgeView view = KnowledgeView::omniscient(sys.graph);
  const ExhaustiveSinkSearch search;

  SharedEvalCache cache(true);
  const auto cold = protocol::try_find_sink(view, sys.f, search);
  const auto first = protocol::try_find_sink(view, sys.f, search, &cache);
  const auto second = protocol::try_find_sink(view, sys.f, search, &cache);

  ASSERT_TRUE(cold.has_value());
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->members, cold->members);
  EXPECT_EQ(second->members, cold->members);
  EXPECT_EQ(second->s1, cold->s1);
  EXPECT_EQ(second->s2, cold->s2);
  EXPECT_EQ(cache.stats().evaluations, 2U);
  EXPECT_EQ(cache.stats().hits, 1U);

  // Disabled memo: still counts, never hits.
  SharedEvalCache counting_only(false);
  (void)protocol::try_find_sink(view, sys.f, search, &counting_only);
  (void)protocol::try_find_sink(view, sys.f, search, &counting_only);
  EXPECT_EQ(counting_only.stats().evaluations, 2U);
  EXPECT_EQ(counting_only.stats().hits, 0U);
}

TEST(SharedEvalCacheTest, CoreResultKeyedByViewDigest) {
  const auto view_a =
      KnowledgeView::omniscient(graph::figures::fig4a().graph);
  const auto view_b =
      KnowledgeView::omniscient(graph::figures::fig4b().graph);
  const ExhaustiveSinkSearch search;
  SharedEvalCache cache(true);

  const auto a1 = protocol::try_find_core(view_a, search, &cache);
  const auto b1 = protocol::try_find_core(view_b, search, &cache);
  const auto a2 = protocol::try_find_core(view_a, search, &cache);
  EXPECT_EQ(cache.stats().evaluations, 3U);
  EXPECT_EQ(cache.stats().hits, 1U);  // only the repeated view hits
  ASSERT_TRUE(a1.has_value());
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a1->members, a2->members);
  ASSERT_TRUE(b1.has_value());
  EXPECT_NE(a1->members, b1->members);
}

TEST(VerifyCacheTest, MemoizesAcceptsAndRejects) {
  crypto::KeyRegistry registry(42);
  crypto::VerifyCache cache(true);
  const Bytes payload = to_bytes("hello");
  const crypto::Signature good = registry.sign_as(p(1), payload);
  crypto::Signature forged = good;
  forged.bytes[0] ^= 0xff;

  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(cache.verify(registry, p(1), payload, good));
    EXPECT_FALSE(cache.verify(registry, p(1), payload, forged));
    // Same signature under the wrong signer must also (cachedly) fail.
    EXPECT_FALSE(cache.verify(registry, p(2), payload, good));
  }
  EXPECT_EQ(cache.stats().lookups, 9U);
  EXPECT_EQ(cache.stats().hits, 6U);  // everything after the first round

  crypto::VerifyCache disabled(false);
  EXPECT_TRUE(disabled.verify(registry, p(1), payload, good));
  EXPECT_TRUE(disabled.verify(registry, p(1), payload, good));
  EXPECT_EQ(disabled.stats().lookups, 2U);
  EXPECT_EQ(disabled.stats().hits, 0U);
}

TEST(SearchOptionsTest, OversizedExhaustiveCapIsClampedNotUndefined) {
  SearchOptions huge;
  huge.exhaustive_cap = 1000;
  EXPECT_EQ(huge.validated().exhaustive_cap, 63U);

  // A 70-member cycle is one big SCC. Un-clamped, enumeration would shift a
  // 64-bit mask by 70 (UB) and then walk 2^70 subsets; clamped, the SCC
  // takes the big-SCC certification path: the component itself is evaluated
  // (a 70-cycle has κ = 1, no outside edges, so exactly (C, ∅, g=0)) and
  // every sampled C \ D is refuted (κ = 0 once the ring is broken).
  graph::Digraph cycle;
  for (std::uint64_t i = 1; i <= 70; ++i) {
    cycle.add_edge(p(i), p(i % 70 + 1));
  }
  const auto view = KnowledgeView::omniscient(cycle);
  IdSet all;
  for (std::uint64_t i = 1; i <= 70; ++i) all.insert(p(i));
  const ExhaustiveSinkSearch search(huge);
  const auto candidates = search.candidates(view);
  ASSERT_EQ(candidates.size(), 1U);
  EXPECT_EQ(candidates[0].s1, all);
  EXPECT_TRUE(candidates[0].s2.empty());
  EXPECT_EQ(candidates[0].g, 0U);

  SearchOptions cold = huge;
  cold.incremental = false;
  EXPECT_EQ(ExhaustiveSinkSearch(cold).candidates(view), candidates);
}

TEST(RunReportCacheStatsTest, SurfacedAndExcludedFromDigest) {
  const auto& registry = cup::ScenarioRegistry::paper();
  const cup::RunReport warm = registry.run("fig1b/silent", 1);
  EXPECT_GT(warm.evaluations, 0U);
  EXPECT_GT(warm.signatures_verified + warm.signatures_cached, 0U);

  const cup::Scenario cold_scenario =
      registry.builder("fig1b/silent", 1).caching(false).build();
  const cup::RunReport cold = cup::run_scenario(cold_scenario);
  EXPECT_EQ(cold.eval_cache_hits, 0U);
  EXPECT_EQ(cold.signatures_cached, 0U);
  // The cache knobs change the counters but never the replayed behavior.
  EXPECT_EQ(warm.digest(), cold.digest());
}

}  // namespace
}  // namespace bftcup

#include <gtest/gtest.h>

#include "adversary/behaviors.hpp"
#include "cup/scenario_builder.hpp"
#include "protocol/discovery.hpp"
#include "test_util.hpp"

namespace bftcup::adversary {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

/// Victim running only Discovery, for probing Byzantine discovery behavior.
class Probe : public sim::Process {
 public:
  Probe(ProcessId id, IdSet pd)
      : sim::Process(id), discovery_(id, std::move(pd), 20) {}
  void on_start(sim::Context& ctx) override { discovery_.start(ctx); }
  void on_message(ProcessId from, const msg::Message& m,
                  sim::Context& ctx) override {
    discovery_.handle_message(from, m, ctx);
  }
  void on_timer(int kind, sim::Context& ctx) override {
    if ((kind & 0xff) == protocol::Discovery::kTimerKind) {
      discovery_.on_timer(kind, ctx);
    }
  }
  const protocol::KnowledgeView& view() const { return discovery_.view(); }

 private:
  protocol::Discovery discovery_;
};

sim::Simulator make_sim(SimTime horizon = 2'000) {
  sim::Simulator::Options options;
  options.horizon = horizon;
  return sim::Simulator(options);
}

TEST(AdversaryTest, SilentNodeSendsNothing) {
  auto simulator = make_sim();
  auto probe = std::make_unique<Probe>(p(1), IdSet{p(2)});
  auto* probe_ptr = probe.get();
  simulator.add_process(std::move(probe));
  simulator.add_process(std::make_unique<SilentNode>(p(2)));
  simulator.run();
  EXPECT_EQ(probe_ptr->view().pd_of(p(2)), nullptr);
}

TEST(AdversaryTest, FakePdIsServedAndVerifies) {
  auto simulator = make_sim();
  auto probe = std::make_unique<Probe>(p(1), IdSet{p(2)});
  auto* probe_ptr = probe.get();
  simulator.add_process(std::move(probe));

  ByzantineConfig config;
  config.advertised_pd = IdSet{p(7), p(8)};  // a lie about its own PD
  simulator.add_process(std::make_unique<ByzantineNode>(p(2), config));
  simulator.run();

  // Lying about one's OWN PD is allowed by the model; the signature is the
  // node's own, so the victim accepts it.
  ASSERT_NE(probe_ptr->view().pd_of(p(2)), nullptr);
  EXPECT_EQ(*probe_ptr->view().pd_of(p(2)), (IdSet{p(7), p(8)}));
}

TEST(AdversaryTest, RelayWithholdingCannotStopDirectContact) {
  // Byzantine 2 withholds relayed PDs (relay_pds = false). That only slows
  // discovery: once the victim learns 3 *exists* (from 2's own PD), the
  // complete communication graph lets it query 3 directly (§II-C: knowledge
  // limits whom you can contact, not the network).
  auto simulator = make_sim();
  auto probe = std::make_unique<Probe>(p(1), IdSet{p(2)});
  auto* probe_ptr = probe.get();
  simulator.add_process(std::move(probe));

  ByzantineConfig config;
  config.advertised_pd = IdSet{p(3)};
  config.relay_pds = false;
  simulator.add_process(std::make_unique<ByzantineNode>(p(2), config));
  simulator.add_process(std::make_unique<Probe>(p(3), IdSet{p(2)}));
  simulator.run();

  EXPECT_NE(probe_ptr->view().pd_of(p(2)), nullptr);
  EXPECT_TRUE(probe_ptr->view().known().contains(p(3)));
  EXPECT_NE(probe_ptr->view().pd_of(p(3)), nullptr);  // got it from 3 itself
}

TEST(AdversaryTest, CrashAtStopsActivity) {
  auto simulator = make_sim(5'000);
  auto probe = std::make_unique<Probe>(p(1), IdSet{p(2)});
  simulator.add_process(std::move(probe));

  ByzantineConfig config;
  config.advertised_pd = IdSet{p(1)};
  config.crash_at = 1;  // crashes before it can answer anything
  simulator.add_process(std::make_unique<ByzantineNode>(p(2), config));
  const auto before = simulator.trace().messages_sent();
  simulator.run();
  (void)before;
  // The probe keeps polling but 2 never answers after its crash time; no
  // SETPDS from 2 means its PD is never received.
  // (Deliveries of GETPDS to 2 still count as sent/delivered messages.)
  SUCCEED();
}

TEST(AdversaryTest, WrongDecidedValueOnlyAffectsAskers) {
  auto simulator = make_sim();
  ByzantineConfig config;
  config.advertised_pd = IdSet{};
  config.wrong_decided_value = 666;
  auto byz = std::make_unique<ByzantineNode>(p(2), config);
  simulator.add_process(std::move(byz));

  Value got = 0;
  auto asker = std::make_unique<test::ScriptedProcess>(p(1));
  asker->on_start_do([](sim::Context& ctx) {
    msg::Message m;
    m.type = msg::MsgType::kGetDecidedVal;
    ctx.send(p(2), std::move(m));
  });
  asker->on_message_do(
      [&](ProcessId, const msg::Message& m, sim::Context&) {
        if (m.type == msg::MsgType::kDecidedVal) got = m.value;
      });
  simulator.add_process(std::move(asker));
  simulator.run();
  EXPECT_EQ(got, 666U);
}

TEST(AdversaryTest, EquivocationSignaturesVerifyButConflict) {
  // The equivocator's conflicting phase messages all carry ITS own valid
  // signatures — the attack is semantic, not cryptographic.
  auto simulator = make_sim();
  ByzantineConfig config;
  config.advertised_pd = IdSet{};
  config.equivocate_consensus = true;
  config.consensus_members = {p(1), p(2), p(3)};
  config.value_a = 1;
  config.value_b = 2;
  simulator.add_process(std::make_unique<ByzantineNode>(p(1), config));

  std::map<ProcessId, std::vector<Value>> seen;
  for (std::uint64_t id : {2, 3}) {
    auto node = std::make_unique<test::ScriptedProcess>(p(id));
    node->on_message_do([&, id](ProcessId from, const msg::Message& m,
                                sim::Context& ctx) {
      if (m.type != msg::MsgType::kPbftPrePrepare) return;
      EXPECT_TRUE(ctx.verifier().verify(
          from, msg::pbft_payload(m.type, m.view, m.value), m.sig));
      seen[p(id)].push_back(m.value);
    });
    simulator.add_process(std::move(node));
  }
  simulator.run();
  ASSERT_FALSE(seen[p(2)].empty());
  ASSERT_FALSE(seen[p(3)].empty());
  EXPECT_NE(seen[p(2)].front(), seen[p(3)].front());  // the equivocation
}

TEST(AdversaryTest, EndToEndFaultMatrixOnFig1b) {
  // Matrix sweep: every behavior x a couple of seeds; consensus must solve
  // and never adopt the bogus value.
  for (auto byz : {cup::ByzBehavior::kSilent, cup::ByzBehavior::kFakePd,
                   cup::ByzBehavior::kWrongValue,
                   cup::ByzBehavior::kEquivocate}) {
    for (std::uint64_t seed : {1, 9}) {
      const auto report = cup::ScenarioBuilder(graph::figures::fig1b())
                              .mode(cup::Mode::kAuth)
                              .byz(byz)
                              .seed(seed)
                              .run();
      EXPECT_TRUE(report.all_correct_decided)
          << "byz=" << static_cast<int>(byz) << " seed=" << seed;
      EXPECT_TRUE(report.agreement);
      for (const auto& [who, d] : report.decisions) {
        EXPECT_NE(d.value, 666U);
      }
    }
  }
}

}  // namespace
}  // namespace bftcup::adversary

#include <gtest/gtest.h>

#include "protocol/pbft.hpp"
#include "test_util.hpp"

namespace bftcup::protocol {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

class PbftProcess : public sim::Process {
 public:
  PbftProcess(ProcessId id, PbftInstance::Config config, Value proposal)
      : sim::Process(id),
        pbft_(id, std::move(config)),
        proposal_(proposal) {}

  void on_start(sim::Context& ctx) override { pbft_.start(proposal_, ctx); }
  void on_message(ProcessId from, const msg::Message& message,
                  sim::Context& ctx) override {
    pbft_.handle_message(from, message, ctx);
    maybe_decide(ctx);
  }
  void on_timer(int kind, sim::Context& ctx) override {
    pbft_.on_timer(kind, ctx);
    maybe_decide(ctx);
  }

  PbftInstance& pbft() { return pbft_; }

 private:
  void maybe_decide(sim::Context& ctx) {
    if (pbft_.decided() && !reported_) {
      reported_ = true;
      ctx.decide(pbft_.decision());
    }
  }

  PbftInstance pbft_;
  Value proposal_;
  bool reported_ = false;
};

struct Fixture {
  sim::Simulator simulator;
  IdSet members;
  IdSet correct;

  Fixture(std::size_t n, std::size_t f, const IdSet& silent,
          std::uint64_t seed = 1, SimTime gst = 0)
      : simulator([&] {
          sim::Simulator::Options options;
          options.seed = seed;
          options.horizon = 500'000;
          options.net.gst = gst;
          options.net.delta = 10;
          return options;
        }()) {
    for (std::uint64_t i = 1; i <= n; ++i) members.insert(p(i));
    correct = members.set_difference(silent);
    for (ProcessId id : members) {
      if (silent.contains(id)) {
        simulator.add_process(std::make_unique<test::ScriptedProcess>(id));
        continue;
      }
      PbftInstance::Config config;
      config.members = members;
      config.assumed_f = f;
      config.base_timeout = 200;
      simulator.add_process(std::make_unique<PbftProcess>(
          id, std::move(config), 100 + id.raw()));
    }
    simulator.set_stop_condition(
        [this](const sim::Trace& t) { return t.all_decided(correct); });
  }
};

TEST(PbftTest, QuorumSizeMatchesPaperFormula) {
  PbftInstance::Config config;
  config.members = {p(1), p(2), p(3), p(4)};
  config.assumed_f = 1;
  const PbftInstance inst(p(1), config);
  EXPECT_EQ(inst.quorum(), 3U);  // ceil((4+1+1)/2)

  PbftInstance::Config c7;
  c7.members = {p(1), p(2), p(3), p(4), p(5), p(6), p(7)};
  c7.assumed_f = 2;
  EXPECT_EQ(PbftInstance(p(1), c7).quorum(), 5U);  // ceil((7+2+1)/2)
}

TEST(PbftTest, AllCorrectFaultFreeDecidesLeaderValue) {
  Fixture fx(4, 1, {});
  fx.simulator.run();
  const auto& trace = fx.simulator.trace();
  EXPECT_TRUE(trace.all_decided(fx.correct));
  EXPECT_TRUE(trace.agreement(fx.correct));
  // View 0's leader is the smallest id; its proposal wins.
  EXPECT_EQ(trace.common_value(fx.correct), 101U);
}

TEST(PbftTest, SilentFollowerDoesNotBlock) {
  Fixture fx(4, 1, {p(3)});
  fx.simulator.run();
  EXPECT_TRUE(fx.simulator.trace().all_decided(fx.correct));
  EXPECT_TRUE(fx.simulator.trace().agreement(fx.correct));
}

TEST(PbftTest, SilentLeaderTriggersViewChange) {
  Fixture fx(4, 1, {p(1)});  // view-0 leader silent
  fx.simulator.run();
  const auto& trace = fx.simulator.trace();
  EXPECT_TRUE(trace.all_decided(fx.correct));
  EXPECT_TRUE(trace.agreement(fx.correct));
  // Some correct process must have moved beyond view 0.
  EXPECT_EQ(trace.common_value(fx.correct), 102U);  // leader of view 1
}

TEST(PbftTest, TwoConsecutiveSilentLeaders) {
  Fixture fx(7, 2, {p(1), p(2)});
  fx.simulator.run();
  EXPECT_TRUE(fx.simulator.trace().all_decided(fx.correct));
  EXPECT_TRUE(fx.simulator.trace().agreement(fx.correct));
}

TEST(PbftTest, WorksBeforeGstStabilizes) {
  Fixture fx(4, 1, {p(4)}, /*seed=*/3, /*gst=*/5'000);
  fx.simulator.run();
  EXPECT_TRUE(fx.simulator.trace().all_decided(fx.correct));
  EXPECT_TRUE(fx.simulator.trace().agreement(fx.correct));
}

class PbftSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PbftSeedSweep, AgreementAcrossSchedules) {
  Fixture fx(5, 1, {p(2)}, GetParam(), /*gst=*/1'000);
  fx.simulator.run();
  EXPECT_TRUE(fx.simulator.trace().all_decided(fx.correct));
  EXPECT_TRUE(fx.simulator.trace().agreement(fx.correct));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbftSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(PbftTest, EquivocatingLeaderCannotSplitDecisions) {
  // Byzantine leader sends value A to half the members and value B to the
  // rest (full fake phase traffic). Quorum intersection must prevent two
  // different decisions; a view change then recovers liveness.
  sim::Simulator::Options options;
  options.horizon = 500'000;
  options.net.delta = 10;
  sim::Simulator simulator(options);

  IdSet members;
  for (std::uint64_t i = 1; i <= 4; ++i) members.insert(p(i));
  const IdSet correct = members.set_difference(IdSet{p(1)});

  auto equivocator = std::make_unique<test::ScriptedProcess>(p(1));
  equivocator->on_start_do([members](sim::Context& ctx) {
    std::size_t idx = 0;
    for (ProcessId to : members) {
      if (to == p(1)) continue;
      const Value v = (idx++ < 1) ? 501 : 502;
      for (auto phase :
           {msg::MsgType::kPbftPrePrepare, msg::MsgType::kPbftPrepare,
            msg::MsgType::kPbftCommit}) {
        msg::Message m;
        m.type = phase;
        m.view = 0;
        m.value = v;
        m.sig = ctx.signer().sign(msg::pbft_payload(phase, 0, v));
        ctx.send(to, std::move(m));
      }
    }
  });
  simulator.add_process(std::move(equivocator));

  for (ProcessId id : correct) {
    PbftInstance::Config config;
    config.members = members;
    config.assumed_f = 1;
    config.base_timeout = 200;
    simulator.add_process(
        std::make_unique<PbftProcess>(id, config, 100 + id.raw()));
  }
  simulator.set_stop_condition(
      [correct](const sim::Trace& t) { return t.all_decided(correct); });
  simulator.run();

  EXPECT_TRUE(simulator.trace().all_decided(correct));
  EXPECT_TRUE(simulator.trace().agreement(correct));
}

TEST(PbftTest, ForgedSignatureDropped) {
  // A member relaying a prepare with someone else's id but its own key must
  // be ignored: no quorum can form from forged shares.
  sim::Simulator::Options options;
  options.horizon = 3'000;
  sim::Simulator simulator(options);
  IdSet members = {p(1), p(2), p(3)};

  // Node 3 sends a prepare whose signature is corrupted in transit-style.
  auto forger = std::make_unique<test::ScriptedProcess>(p(3));
  forger->on_start_do([](sim::Context& ctx) {
    msg::Message m;
    m.type = msg::MsgType::kPbftPrepare;
    m.view = 0;
    m.value = 999;
    m.sig = ctx.signer().sign(msg::pbft_payload(m.type, 0, 999));
    m.sig.bytes[0] ^= 0x01;  // no longer verifies
    ctx.send(p(1), std::move(m));
  });

  PbftInstance::Config config;
  config.members = members;
  config.assumed_f = 1;
  auto honest = std::make_unique<PbftProcess>(p(1), config, 100);
  auto* honest_ptr = honest.get();
  simulator.add_process(std::move(honest));
  simulator.add_process(std::make_unique<test::ScriptedProcess>(p(2)));
  simulator.add_process(std::move(forger));
  // Run briefly: 999 was never pre-prepared by the leader and a single
  // prepare cannot reach quorum 3.
  simulator.run();
  EXPECT_FALSE(honest_ptr->pbft().decided());
}

}  // namespace
}  // namespace bftcup::protocol

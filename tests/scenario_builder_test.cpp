#include <gtest/gtest.h>

#include "cup/scenario_builder.hpp"

namespace bftcup::cup {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

graph::Digraph triangle() {
  graph::Digraph g;
  g.add_edge(p(1), p(2));
  g.add_edge(p(2), p(3));
  g.add_edge(p(3), p(1));
  return g;
}

TEST(ScenarioBuilderTest, FigureConstructorSeedsGraphFaultyAndF) {
  const auto instance = graph::figures::fig1b();
  const Scenario s = ScenarioBuilder(instance).build();
  EXPECT_EQ(s.graph, instance.graph);
  EXPECT_EQ(s.faulty, instance.faulty);
  EXPECT_EQ(s.f, instance.f);
  EXPECT_EQ(s.mode, Mode::kAuth);
}

TEST(ScenarioBuilderTest, FluentChainSetsEveryField) {
  const Scenario s = ScenarioBuilder(graph::figures::fig4a())
                         .mode(Mode::kCupft)
                         .byz(ByzBehavior::kEquivocate)
                         .seed(99)
                         .gst(200)
                         .delta(7)
                         .horizon(50'000)
                         .proposal(p(1), 42)
                         .discovery_period(25)
                         .pbft_base_timeout(900)
                         .closure_guard()
                         .build();
  EXPECT_EQ(s.mode, Mode::kCupft);
  EXPECT_EQ(s.byz, ByzBehavior::kEquivocate);
  EXPECT_EQ(s.sim.seed, 99u);
  EXPECT_EQ(s.sim.net.gst, 200);
  EXPECT_EQ(s.sim.net.delta, 7);
  EXPECT_EQ(s.sim.horizon, 50'000);
  EXPECT_EQ(s.proposals.at(p(1)), 42u);
  EXPECT_EQ(s.discovery_period, 25);
  EXPECT_EQ(s.pbft_base_timeout, 900);
  EXPECT_TRUE(s.cupft_known_closure);
}

TEST(ScenarioBuilderTest, RawIdFaultyOverload) {
  const Scenario s = ScenarioBuilder(triangle())
                         .mode(Mode::kNaive)
                         .faulty({1, 3})
                         .build();
  EXPECT_EQ(s.faulty, (IdSet{p(1), p(3)}));
}

TEST(ScenarioBuilderTest, ProposeRangeCoversInclusiveBounds) {
  const Scenario s = ScenarioBuilder(triangle())
                         .mode(Mode::kNaive)
                         .propose_range(1, 3, 777)
                         .build();
  EXPECT_EQ(s.proposals.size(), 3u);
  EXPECT_EQ(s.proposals.at(p(2)), 777u);
}

TEST(ScenarioBuilderTest, EmptyGraphRejected) {
  EXPECT_THROW(ScenarioBuilder().build(), ScenarioError);
}

TEST(ScenarioBuilderTest, FaultyOutsideGraphRejected) {
  EXPECT_THROW(
      ScenarioBuilder(triangle()).mode(Mode::kNaive).faulty({9}).build(),
      ScenarioError);
}

TEST(ScenarioBuilderTest, InconsistentFRejected) {
  // f must leave at least one process: f >= n is nonsense.
  EXPECT_THROW(ScenarioBuilder(triangle()).f(3).build(), ScenarioError);
}

TEST(ScenarioBuilderTest, KnownFPremiseViolationNeedsOptIn) {
  // 2 faulty > f = 1 in known-f mode: a witness setup, not a typo — unless
  // the caller says so.
  auto builder = ScenarioBuilder(triangle()).mode(Mode::kAuth).f(1);
  builder.faulty({1, 2});
  EXPECT_THROW(builder.build(), ScenarioError);
  EXPECT_NO_THROW(builder.allow_premise_violation().build());
}

TEST(ScenarioBuilderTest, ProposalForUnknownVertexRejected) {
  EXPECT_THROW(
      ScenarioBuilder(triangle()).mode(Mode::kNaive).proposal(p(9), 1).build(),
      ScenarioError);
}

TEST(ScenarioBuilderTest, FakePdValidation) {
  // Fake PD for a process that is not faulty.
  EXPECT_THROW(ScenarioBuilder(triangle())
                   .mode(Mode::kNaive)
                   .byz(ByzBehavior::kFakePd)
                   .fake_pd(p(1), {p(2)})
                   .build(),
               ScenarioError);
  // A fake PD may advertise ghost processes: that is a real attack (the
  // ghosts just never answer), so it must NOT be rejected.
  EXPECT_NO_THROW(ScenarioBuilder(triangle())
                      .mode(Mode::kNaive)
                      .faulty({1})
                      .byz(ByzBehavior::kFakePd)
                      .fake_pd(p(1), {p(9)})
                      .build());
  // Fake PD set while the behavior is not kFakePd.
  EXPECT_THROW(ScenarioBuilder(triangle())
                   .mode(Mode::kNaive)
                   .faulty({1})
                   .byz(ByzBehavior::kSilent)
                   .fake_pd(p(1), {p(2)})
                   .build(),
               ScenarioError);
  // The consistent version passes.
  EXPECT_NO_THROW(ScenarioBuilder(triangle())
                      .mode(Mode::kNaive)
                      .faulty({1})
                      .byz(ByzBehavior::kFakePd)
                      .fake_pd(p(1), {p(2)})
                      .build());
}

TEST(ScenarioBuilderTest, NonPositivePeriodsRejected) {
  EXPECT_THROW(ScenarioBuilder(triangle()).discovery_period(0).build(),
               ScenarioError);
  EXPECT_THROW(ScenarioBuilder(triangle()).pbft_base_timeout(-1).build(),
               ScenarioError);
  EXPECT_THROW(ScenarioBuilder(triangle()).horizon(0).build(),
               ScenarioError);
  EXPECT_THROW(ScenarioBuilder(triangle()).delta(0).build(), ScenarioError);
}

TEST(ScenarioBuilderTest, ErrorsNameTheProblem) {
  try {
    (void)ScenarioBuilder(triangle()).mode(Mode::kNaive).faulty({9}).build();
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("p9"), std::string::npos);
  }
}

TEST(ScenarioBuilderTest, RunExecutesTheBuiltScenario) {
  const RunReport report =
      ScenarioBuilder(graph::figures::fig1b()).mode(Mode::kAuth).seed(42).run();
  EXPECT_EQ(report.verdict(), "SOLVED");
}

TEST(ScenarioBuilderTest, BuildIsRepeatable) {
  const ScenarioBuilder builder =
      ScenarioBuilder(graph::figures::fig1b()).mode(Mode::kAuth).seed(7);
  const Scenario a = builder.build();
  const Scenario b = builder.build();
  EXPECT_EQ(a.graph, b.graph);
  EXPECT_EQ(a.sim.seed, b.sim.seed);
}

}  // namespace
}  // namespace bftcup::cup

// Property-style sweeps over random graphs, cross-validating the protocol
// components against the omniscient graph checkers.
#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/extended_osr.hpp"
#include "graph/generators.hpp"
#include "graph/osr.hpp"
#include "protocol/core.hpp"
#include "protocol/sink.hpp"

namespace bftcup {
namespace {

using graph::generators::BftCupParams;
using graph::generators::CupftParams;
using graph::generators::GeneratedSystem;

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

// --- Graph-theory invariants ------------------------------------------

TEST_P(SeededProperty, KappaMonotoneUnderEdgeAddition) {
  Rng rng(GetParam());
  // Random strongly connected base: a cycle plus chords.
  graph::Digraph g;
  const std::size_t n = 6 + rng.next_below(4);
  for (std::uint64_t i = 0; i < n; ++i) {
    g.add_edge(ProcessId(i), ProcessId((i + 1) % n));
  }
  std::size_t prev = graph::strong_connectivity(g);
  EXPECT_EQ(prev, 1U);
  for (int chord = 0; chord < 8; ++chord) {
    const ProcessId a(rng.next_below(n));
    const ProcessId b(rng.next_below(n));
    if (a == b) continue;
    g.add_edge(a, b);
    const std::size_t next = graph::strong_connectivity(g);
    EXPECT_GE(next, prev);  // adding edges never reduces κ
    prev = next;
  }
}

TEST_P(SeededProperty, KappaEqualsMinPairwiseDisjointPaths) {
  Rng rng(GetParam() ^ 0xabc);
  graph::Digraph g;
  const std::size_t n = 5;
  for (std::uint64_t i = 0; i < n; ++i) {
    g.add_edge(ProcessId(i), ProcessId((i + 1) % n));
  }
  for (int chord = 0; chord < 6; ++chord) {
    g.add_edge(ProcessId(rng.next_below(n)), ProcessId(rng.next_below(n)));
  }
  const std::size_t kappa = graph::strong_connectivity(g);
  std::size_t min_pairs = SIZE_MAX;
  for (ProcessId a : g.vertices()) {
    for (ProcessId b : g.vertices()) {
      if (a == b) continue;
      min_pairs = std::min(min_pairs, graph::disjoint_path_count(g, a, b));
    }
  }
  EXPECT_EQ(kappa, min_pairs);
}

TEST_P(SeededProperty, MaxOsrKIsTight) {
  Rng rng(GetParam() ^ 0x123);
  BftCupParams params;
  params.f = 1 + GetParam() % 2;
  params.sink_size = 2 * params.f + 2;
  params.non_sink = 3;
  params.byzantine_in_sink = 0;
  const GeneratedSystem sys = graph::generators::random_bft_cup(params, rng);
  const std::size_t k = graph::max_osr_k(sys.graph);
  ASSERT_GT(k, 0U);
  EXPECT_TRUE(graph::check_k_osr(sys.graph, k).satisfied);
  EXPECT_FALSE(graph::check_k_osr(sys.graph, k + 1).satisfied);
}

// --- Protocol-vs-checker agreement ------------------------------------

TEST_P(SeededProperty, SinkPredicateMatchesGroundTruthOnBftCupGraphs) {
  Rng rng(GetParam() ^ 0x777);
  BftCupParams params;
  params.f = 1;
  params.sink_size = 5;
  params.non_sink = 4;
  params.byzantine_in_sink = 1;
  const GeneratedSystem sys = graph::generators::random_bft_cup(params, rng);

  // Theorem 4: with the true f, ANY satisfying candidate equals the sink.
  const auto view = protocol::KnowledgeView::omniscient(sys.graph);
  const protocol::ExhaustiveSinkSearch search;
  for (const auto& c : search.candidates(view)) {
    if (c.g != sys.f) continue;
    EXPECT_EQ(c.members(), sys.sink);
  }
}

TEST_P(SeededProperty, CoreMatchesCheckerOnCupftGraphs) {
  Rng rng(GetParam() ^ 0x999);
  CupftParams params;
  params.f = 1;
  params.core_size = 5;
  params.periphery = 3 + GetParam() % 3;
  params.byzantine_in_core = 1;
  const GeneratedSystem sys = graph::generators::random_cupft(params, rng);

  const auto checker =
      graph::check_bft_cupft_requirements(sys.graph, sys.faulty, sys.f);
  ASSERT_TRUE(checker.satisfied) << checker.reason;

  const auto view = protocol::KnowledgeView::omniscient(sys.graph);
  const protocol::ExhaustiveSinkSearch search;
  const auto core = protocol::try_find_core(view, search);
  ASSERT_TRUE(core.has_value());
  // Protocol core = checker core + Byzantine members inside it.
  EXPECT_EQ(core->members.set_difference(sys.faulty), checker.safe_core);
}

TEST_P(SeededProperty, SinkSurvivesAnyFaultPlacement) {
  // Remove any single sink member from a generated f=1 graph: what remains
  // still satisfies the 2-OSR safe-subgraph requirements.
  Rng rng(GetParam() ^ 0x3f);
  BftCupParams params;
  params.f = 1;
  params.sink_size = 5;
  params.non_sink = 3;
  params.byzantine_in_sink = 1;
  const GeneratedSystem sys = graph::generators::random_bft_cup(params, rng);
  for (ProcessId victim : sys.sink) {
    const auto r =
        graph::check_bft_cup_requirements(sys.graph, IdSet{victim}, sys.f);
    EXPECT_TRUE(r.satisfied)
        << "victim " << to_string(victim) << ": " << r.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace bftcup

// Unit coverage for the observability layer (src/obs/): metrics registry
// snapshot/delta/merge algebra, the span flight-recorder ring, thread-local
// scope install/restore, and the Chrome trace-event exporter's document
// shape. The cross-cutting property — obs on/off never moves a digest — is
// obs_determinism_test.cpp's job; this file pins the layer's own contracts.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "obs/trace_export.hpp"

namespace bftcup::obs {
namespace {

TEST(HistogramDataTest, BucketsByBitWidth) {
  EXPECT_EQ(HistogramData::bucket_of(0), 0u);
  EXPECT_EQ(HistogramData::bucket_of(1), 1u);
  EXPECT_EQ(HistogramData::bucket_of(2), 2u);
  EXPECT_EQ(HistogramData::bucket_of(3), 2u);
  EXPECT_EQ(HistogramData::bucket_of(4), 3u);
  EXPECT_EQ(HistogramData::bucket_of(255), 8u);
  EXPECT_EQ(HistogramData::bucket_of(256), 9u);
  EXPECT_EQ(HistogramData::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(HistogramDataTest, RecordMergeDelta) {
  HistogramData h;
  h.record(0);
  h.record(3);
  h.record(3);
  h.record(100);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 106u);
  EXPECT_EQ(h.max, 100u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[7], 1u);

  HistogramData other;
  other.record(1000);
  HistogramData merged = h;
  merged.merge(other);
  EXPECT_EQ(merged.count, 5u);
  EXPECT_EQ(merged.sum, 1106u);
  EXPECT_EQ(merged.max, 1000u);

  // Delta of a cumulative histogram: per-bucket subtraction; max reports
  // the `after` high-water (documented upper bound for the window).
  const HistogramData d = HistogramData::delta(h, merged);
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(d.sum, 1000u);
  EXPECT_EQ(d.max, 1000u);
  EXPECT_EQ(d.buckets[10], 1u);
  EXPECT_EQ(d.buckets[2], 0u);
}

TEST(MetricsRegistryTest, InternedReferencesAreStableAndSnapshotted) {
  MetricsRegistry registry;
  MetricsRegistry::Counter& a = registry.counter("a");
  a.add();
  // Interning more names must not invalidate the first reference
  // (node-based map contract hot sites rely on).
  for (int i = 0; i < 100; ++i) {
    registry.counter("c" + std::to_string(i)).add();
  }
  a.add(2);
  EXPECT_EQ(&a, &registry.counter("a"));
  registry.gauge("g").set_max(7);
  registry.gauge("g").set_max(3);  // lower value must not win
  registry.histogram("h").record(5);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("a"), 3u);
  EXPECT_EQ(snap.counter("absent"), 0u);
  EXPECT_EQ(snap.gauge("g"), 7u);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
}

TEST(MetricsSnapshotTest, DeltaSubtractsCountersAndReportsGaugeLevels) {
  MetricsRegistry registry;
  registry.counter("runs").add(5);
  registry.gauge("level").set(10);
  registry.histogram("h").record(4);
  const MetricsSnapshot before = registry.snapshot();

  registry.counter("runs").add(2);
  registry.counter("fresh").add(1);  // name born after `before`
  registry.gauge("level").set(8);
  registry.histogram("h").record(4);
  const MetricsSnapshot after = registry.snapshot();

  const MetricsSnapshot d = MetricsSnapshot::delta(before, after);
  EXPECT_EQ(d.counter("runs"), 2u);
  EXPECT_EQ(d.counter("fresh"), 1u);
  EXPECT_EQ(d.gauge("level"), 8u);  // a gauge is a level, not a count
  EXPECT_EQ(d.histograms.at("h").count, 1u);
}

TEST(MetricsSnapshotTest, MergeAddsCountersAndMaxesGauges) {
  MetricsSnapshot a;
  a.counters["x"] = 3;
  a.gauges["peak"] = 100;
  a.histograms["h"].record(2);

  MetricsSnapshot b;
  b.counters["x"] = 4;
  b.counters["y"] = 1;
  b.gauges["peak"] = 70;
  b.histograms["h"].record(9);

  // Commutativity: the placement-independence property BatchRunner's
  // aggregation rests on.
  MetricsSnapshot ab = a;
  ab.merge(b);
  MetricsSnapshot ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.counter("x"), 7u);
  EXPECT_EQ(ab.counter("y"), 1u);
  EXPECT_EQ(ab.gauge("peak"), 100u);
  EXPECT_EQ(ab.histograms.at("h").count, 2u);
}

TEST(SpanTracerTest, RecordsNestedSpansInCompletionOrder) {
  SpanTracer tracer(16);
  {
    const ObsScope scope(nullptr, &tracer);
    const ScopedSpan outer("outer", 42);
    { const ScopedSpan inner("inner"); }
    { const ScopedSpan inner("inner"); }
  }
  const SpanTrace trace = tracer.take();
  ASSERT_EQ(trace.records.size(), 3u);
  EXPECT_EQ(trace.started, 3u);
  EXPECT_EQ(trace.dropped, 0u);
  // Completion order: the two inners close before the outer.
  EXPECT_EQ(trace.names[trace.records[0].name_id], "inner");
  EXPECT_EQ(trace.names[trace.records[1].name_id], "inner");
  EXPECT_EQ(trace.names[trace.records[2].name_id], "outer");
  EXPECT_EQ(trace.records[0].depth, 1u);
  EXPECT_EQ(trace.records[2].depth, 0u);
  EXPECT_EQ(trace.records[2].seq, 0u);  // outer started first
  EXPECT_EQ(trace.records[2].arg, 42u);
  // Interning collapsed the repeated literal.
  EXPECT_EQ(trace.names.size(), 2u);
  EXPECT_GE(trace.records[0].wall_end_ns, trace.records[0].wall_begin_ns);
}

TEST(SpanTracerTest, RingKeepsTheMostRecentWindowAndCountsDrops) {
  SpanTracer tracer(4);
  {
    const ObsScope scope(nullptr, &tracer);
    for (std::uint64_t i = 0; i < 10; ++i) {
      const ScopedSpan span("s", i);
    }
  }
  const SpanTrace trace = tracer.take();
  ASSERT_EQ(trace.records.size(), 4u);
  EXPECT_EQ(trace.started, 10u);
  EXPECT_EQ(trace.dropped, 6u);
  // The survivors are the last four, oldest-first.
  EXPECT_EQ(trace.records[0].arg, 6u);
  EXPECT_EQ(trace.records[3].arg, 9u);
}

TEST(SpanTracerTest, TakeResetsTheRecorder) {
  SpanTracer tracer(8);
  {
    const ObsScope scope(nullptr, &tracer);
    const ScopedSpan span("s");
  }
  EXPECT_EQ(tracer.take().records.size(), 1u);
  const SpanTrace empty = tracer.take();
  EXPECT_TRUE(empty.records.empty());
  EXPECT_EQ(empty.started, 0u);
}

TEST(SpanTracerTest, SimClockSeamStampsBothEnds) {
  SpanTracer tracer(8);
  std::int64_t clock = 100;
  tracer.set_sim_clock(
      [](const void* ctx) { return *static_cast<const std::int64_t*>(ctx); },
      &clock);
  {
    const ObsScope scope(nullptr, &tracer);
    const ScopedSpan span("s");
    clock = 250;
  }
  const SpanTrace trace = tracer.take();
  ASSERT_EQ(trace.records.size(), 1u);
  EXPECT_EQ(trace.records[0].sim_begin, 100);
  EXPECT_EQ(trace.records[0].sim_end, 250);
}

TEST(ObsScopeTest, InstallsRestoresAndNests) {
  EXPECT_EQ(current_metrics(), nullptr);
  EXPECT_EQ(current_tracer(), nullptr);
  MetricsRegistry outer_metrics;
  SpanTracer outer_tracer(4);
  {
    const ObsScope outer(&outer_metrics, &outer_tracer);
    EXPECT_EQ(current_metrics(), &outer_metrics);
    EXPECT_EQ(current_tracer(), &outer_tracer);
    {
      MetricsRegistry inner_metrics;
      const ObsScope inner(&inner_metrics, nullptr);
      EXPECT_EQ(current_metrics(), &inner_metrics);
      EXPECT_EQ(current_tracer(), nullptr);
    }
    EXPECT_EQ(current_metrics(), &outer_metrics);
    EXPECT_EQ(current_tracer(), &outer_tracer);
  }
  EXPECT_EQ(current_metrics(), nullptr);
  EXPECT_EQ(current_tracer(), nullptr);
}

TEST(ObsScopeTest, SpanSitesAreInertWithoutATracer) {
  // The disabled path: no scope installed, constructing a span records
  // nothing and touches no tracer (would crash if it dereferenced one).
  const ScopedSpan span("orphan", 7);
  MetricsRegistry registry;
  {
    const ObsScope scope(&registry, nullptr);
    const ScopedSpan also_inert("still-no-tracer");
  }
  EXPECT_TRUE(registry.snapshot().empty());
}

TEST(TraceExportTest, EmitsChromeTraceEventDocument) {
  SpanTracer tracer(8);
  {
    const ObsScope scope(nullptr, &tracer);
    const ScopedSpan outer("run.execute");
    const ScopedSpan inner("phase \"quoted\"", 3);
  }
  const std::string json =
      to_chrome_trace_json(tracer.take(), "unit seed=1");
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"unit seed=1\""), std::string::npos);
  EXPECT_NE(json.find("\"run.execute\""), std::string::npos);
  // The quote in the span name must arrive escaped.
  EXPECT_NE(json.find("phase \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"spans_started\":2"), std::string::npos);
  EXPECT_NE(json.find("\"spans_dropped\":0"), std::string::npos);
}

TEST(TraceExportTest, EmptyTraceIsStillAValidDocument) {
  const std::string json = to_chrome_trace_json(SpanTrace{}, "empty");
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"spans_started\":0"), std::string::npos);
}

}  // namespace
}  // namespace bftcup::obs

// End-to-end runs of the authenticated BFT-CUP protocol (Section III).
#include <gtest/gtest.h>

#include "cup/scenario_builder.hpp"

namespace bftcup::cup {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

ScenarioBuilder base_builder(graph::Digraph g, std::size_t f, IdSet faulty) {
  return ScenarioBuilder(std::move(g))
      .f(f)
      .faulty(std::move(faulty))
      .mode(Mode::kAuth)
      .horizon(2'000'000)
      .gst(0)
      .delta(10);
}

ScenarioBuilder base_builder(const graph::figures::Instance& inst) {
  return base_builder(inst.graph, inst.f, inst.faulty);
}

TEST(AuthCupIntegrationTest, Fig1bSilentByzantineSolves) {
  const auto report = base_builder(graph::figures::fig1b()).run();
  EXPECT_EQ(report.verdict(), "SOLVED");
  EXPECT_TRUE(report.validity);
  // Every correct process settled on the sink {1,2,3,4} (Theorem 4: all and
  // only the sink members of G_di).
  for (const auto& [who, members] : report.memberships) {
    EXPECT_EQ(members, (IdSet{p(1), p(2), p(3), p(4)})) << to_string(who);
  }
}

TEST(AuthCupIntegrationTest, Fig1bFakePdByzantineSolves) {
  const auto report =
      base_builder(graph::figures::fig1b())
          .byz(ByzBehavior::kFakePd)
          .fake_pd(p(4), {p(1), p(2), p(3)})  // the paper's walkthrough
          .run();
  EXPECT_EQ(report.verdict(), "SOLVED");
}

TEST(AuthCupIntegrationTest, Fig1bWrongValueByzantineSolves) {
  const auto report = base_builder(graph::figures::fig1b())
                          .byz(ByzBehavior::kWrongValue)
                          .run();
  EXPECT_EQ(report.verdict(), "SOLVED");
  // Non-sink members needed ceil((|S|+1)/2) identical answers, so the bogus
  // 666 can never win.
  for (const auto& [who, d] : report.decisions) {
    EXPECT_NE(d.value, 666U);
  }
}

TEST(AuthCupIntegrationTest, Fig1bEquivocatingByzantine) {
  const auto report = base_builder(graph::figures::fig1b())
                          .byz(ByzBehavior::kEquivocate)
                          .run();
  EXPECT_TRUE(report.all_correct_decided);
  EXPECT_TRUE(report.agreement);
}

TEST(AuthCupIntegrationTest, Fig1aSplitsExactlyAsThePaperArgues) {
  // Fig. 1a misses the BFT-CUP requirements (removing 4 disconnects
  // G_safe). With 4 silent, each cluster finds a *local* set satisfying the
  // predicate and decides independently — the executable form of the
  // caption's "solving consensus in this system is impossible".
  const auto report =
      base_builder(graph::figures::fig1a()).horizon(300'000).run();
  EXPECT_FALSE(report.agreement);
  EXPECT_EQ(report.verdict(), "AGREEMENT-VIOLATED");
  // The split is along the two clusters.
  ASSERT_TRUE(report.decisions.contains(p(1)));
  ASSERT_TRUE(report.decisions.contains(p(5)));
  EXPECT_NE(report.decisions.at(p(1)).value,
            report.decisions.at(p(5)).value);
}

TEST(AuthCupIntegrationTest, Fig3aTrueSinkDecidesAndNobodyContradictsIt) {
  // FINDING (DESIGN.md §4.6): on fig3a even the *known-f* predicate admits
  // a second satisfying family at g = 1 — {2,3,4,6} absorbing {1,5,7} — a
  // gap between Theorem 4's statement and the predicate as exemplified
  // (the paper's own Fig. 1b walkthrough forces the S2-absorbing reading of
  // P3, under which the non-sink exclusion argument no longer goes
  // through). Executable consequences, which we pin down:
  //   * the true sink {5,7,8} always finds itself and decides;
  //   * processes adopting the false family can stall (their quorum of 5
  //     exceeds its 4 live participants) but can never decide a
  //     conflicting value — Agreement over deciders holds.
  const auto report =
      base_builder(graph::figures::fig3a()).horizon(300'000).run();
  EXPECT_TRUE(report.agreement);
  for (std::uint64_t id : {5, 7, 8}) {
    EXPECT_TRUE(report.decisions.contains(p(id))) << "p" << id;
  }
  EXPECT_EQ(report.memberships.at(p(5)), (IdSet{p(5), p(7), p(8)}));
}

TEST(AuthCupIntegrationTest, Fig3bSolvesWithF2) {
  const auto report = base_builder(graph::figures::fig3b()).run();
  EXPECT_EQ(report.verdict(), "SOLVED");
}

TEST(AuthCupIntegrationTest, LateGstStillSolves) {
  const auto report = base_builder(graph::figures::fig1b())
                          .gst(20'000)  // long chaotic prefix
                          .seed(5)
                          .run();
  EXPECT_EQ(report.verdict(), "SOLVED");
  EXPECT_GT(report.messages_sent, 0U);
}

class LateGstSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LateGstSweep, ChaoticPrefixNeverSplitsFig1b) {
  // Regression for a PBFT safety bug: pre-GST reordering let replicas
  // commit in a view they had already left, assembling commit quorums for
  // two values. Agreement must hold under every schedule.
  const auto report = base_builder(graph::figures::fig1b())
                          .gst(2'000)
                          .seed(GetParam())
                          .run();
  EXPECT_TRUE(report.agreement) << "seed=" << GetParam();
  EXPECT_EQ(report.verdict(), "SOLVED") << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LateGstSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

struct SweepParams {
  std::uint64_t seed;
  std::size_t f;
  ByzBehavior byz;
};

class AuthCupSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(AuthCupSweep, RandomGraphsSolveConsensus) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  graph::generators::BftCupParams gp;
  gp.f = param.f;
  gp.sink_size = 2 * param.f + 1 + param.f;
  gp.non_sink = 3;
  gp.byzantine_in_sink = param.f;
  const auto sys = graph::generators::random_bft_cup(gp, rng);

  const auto report = base_builder(sys.graph, sys.f, sys.faulty)
                          .byz(param.byz)
                          .seed(param.seed * 31 + 7)
                          .run();
  EXPECT_EQ(report.verdict(), "SOLVED")
      << "seed=" << param.seed << " f=" << param.f;
  EXPECT_TRUE(report.validity);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AuthCupSweep,
    ::testing::Values(SweepParams{1, 1, ByzBehavior::kSilent},
                      SweepParams{2, 1, ByzBehavior::kSilent},
                      SweepParams{3, 1, ByzBehavior::kFakePd},
                      SweepParams{4, 1, ByzBehavior::kWrongValue},
                      SweepParams{5, 2, ByzBehavior::kSilent},
                      SweepParams{6, 2, ByzBehavior::kFakePd},
                      SweepParams{7, 2, ByzBehavior::kWrongValue},
                      SweepParams{8, 1, ByzBehavior::kEquivocate}));

TEST(AuthCupIntegrationTest, DecisionValueWasProposedBySomeCorrectProcess) {
  const auto report = base_builder(graph::figures::fig1b()).run();
  ASSERT_TRUE(report.common_value.has_value());
  bool from_correct = false;
  for (ProcessId id : report.correct) {
    if (*report.common_value == default_proposal(id)) from_correct = true;
  }
  EXPECT_TRUE(from_correct);  // silent Byzantine proposed nothing
}

TEST(AuthCupIntegrationTest, MessageAndByteMetricsPopulated) {
  const auto report = base_builder(graph::figures::fig1b()).run();
  EXPECT_GT(report.messages_sent, 0U);
  EXPECT_GT(report.messages_delivered, 0U);
  EXPECT_GT(report.bytes_sent, report.messages_sent);  // > 1 byte each
  ASSERT_TRUE(report.completion_time.has_value());
  EXPECT_GT(*report.completion_time, 0);
}

}  // namespace
}  // namespace bftcup::cup

#include <gtest/gtest.h>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"

namespace bftcup::codec {
namespace {

TEST(CodecTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.put_u8(0xab);
  enc.put_u32(0xdeadbeef);
  enc.put_u64(0x0123456789abcdefULL);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0xab);
  EXPECT_EQ(dec.get_u32(), 0xdeadbeefU);
  EXPECT_EQ(dec.get_u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.at_end());
  EXPECT_TRUE(dec.ok());
}

TEST(CodecTest, VarintRoundTripBoundaries) {
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  255,  300,  (1U << 14) - 1, (1U << 14),
                                  1ULL << 32, ~0ULL};
  Encoder enc;
  for (auto v : values) enc.put_varint(v);
  Decoder dec(enc.bytes());
  for (auto v : values) EXPECT_EQ(dec.get_varint(), v);
  EXPECT_TRUE(dec.at_end());
}

TEST(CodecTest, StringAndBytesRoundTrip) {
  Encoder enc;
  enc.put_string("hello");
  enc.put_string("");
  enc.put_bytes(Bytes{1, 2, 3});
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "hello");
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_EQ(dec.get_bytes(), (Bytes{1, 2, 3}));
}

TEST(CodecTest, IdSetRoundTrip) {
  const IdSet ids = {ProcessId(1), ProcessId(1000), ProcessId(5)};
  Encoder enc;
  enc.put_id_set(ids);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_id_set(), ids);
}

TEST(CodecTest, EmptyIdSet) {
  Encoder enc;
  enc.put_id_set({});
  Decoder dec(enc.bytes());
  const auto back = dec.get_id_set();
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(CodecTest, CanonicalEncodingIsOrderIndependent) {
  // FlatSet sorts, so insertion order cannot change the bytes (signatures
  // depend on this).
  Encoder e1, e2;
  e1.put_id_set(IdSet{ProcessId(3), ProcessId(1), ProcessId(2)});
  e2.put_id_set(IdSet{ProcessId(2), ProcessId(3), ProcessId(1)});
  EXPECT_EQ(e1.bytes(), e2.bytes());
}

TEST(DecoderTest, TruncatedInputFails) {
  Encoder enc;
  enc.put_u64(42);
  const Bytes full = enc.bytes();
  const Bytes truncated(full.begin(), full.begin() + 4);
  Decoder dec(truncated);
  EXPECT_FALSE(dec.get_u64().has_value());
  EXPECT_FALSE(dec.ok());
}

TEST(DecoderTest, FailureIsSticky) {
  Decoder dec(Bytes{});
  EXPECT_FALSE(dec.get_u8().has_value());
  EXPECT_FALSE(dec.get_u32().has_value());
  EXPECT_FALSE(dec.ok());
}

TEST(DecoderTest, MalformedVarintOverflowRejected) {
  // 10 bytes of continuation with high garbage overflows 64 bits.
  const Bytes bad(11, 0xff);
  Decoder dec(bad);
  EXPECT_FALSE(dec.get_varint().has_value());
}

TEST(DecoderTest, HugeIdSetCountRejected) {
  Encoder enc;
  enc.put_varint(1'000'000);  // count way beyond remaining bytes
  enc.put_varint(1);
  Decoder dec(enc.bytes());
  EXPECT_FALSE(dec.get_id_set().has_value());
}

TEST(DecoderTest, BytesLengthBeyondBufferRejected) {
  Encoder enc;
  enc.put_varint(100);  // claims 100 bytes, provides none
  Decoder dec(enc.bytes());
  EXPECT_FALSE(dec.get_bytes().has_value());
}

}  // namespace
}  // namespace bftcup::codec

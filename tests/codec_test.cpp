#include <gtest/gtest.h>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"

namespace bftcup::codec {
namespace {

TEST(CodecTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.put_u8(0xab);
  enc.put_u32(0xdeadbeef);
  enc.put_u64(0x0123456789abcdefULL);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0xab);
  EXPECT_EQ(dec.get_u32(), 0xdeadbeefU);
  EXPECT_EQ(dec.get_u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.at_end());
  EXPECT_TRUE(dec.ok());
}

TEST(CodecTest, VarintRoundTripBoundaries) {
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  255,  300,  (1U << 14) - 1, (1U << 14),
                                  1ULL << 32, ~0ULL};
  Encoder enc;
  for (auto v : values) enc.put_varint(v);
  Decoder dec(enc.bytes());
  for (auto v : values) EXPECT_EQ(dec.get_varint(), v);
  EXPECT_TRUE(dec.at_end());
}

TEST(CodecTest, StringAndBytesRoundTrip) {
  Encoder enc;
  enc.put_string("hello");
  enc.put_string("");
  enc.put_bytes(Bytes{1, 2, 3});
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "hello");
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_EQ(dec.get_bytes(), (Bytes{1, 2, 3}));
}

TEST(CodecTest, IdSetRoundTrip) {
  const IdSet ids = {ProcessId(1), ProcessId(1000), ProcessId(5)};
  Encoder enc;
  enc.put_id_set(ids);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_id_set(), ids);
}

TEST(CodecTest, EmptyIdSet) {
  Encoder enc;
  enc.put_id_set({});
  Decoder dec(enc.bytes());
  const auto back = dec.get_id_set();
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(CodecTest, CanonicalEncodingIsOrderIndependent) {
  // FlatSet sorts, so insertion order cannot change the bytes (signatures
  // depend on this).
  Encoder e1, e2;
  e1.put_id_set(IdSet{ProcessId(3), ProcessId(1), ProcessId(2)});
  e2.put_id_set(IdSet{ProcessId(2), ProcessId(3), ProcessId(1)});
  EXPECT_EQ(e1.bytes(), e2.bytes());
}

TEST(DecoderTest, TruncatedInputFails) {
  Encoder enc;
  enc.put_u64(42);
  const Bytes full = enc.bytes();
  const Bytes truncated(full.begin(), full.begin() + 4);
  Decoder dec(truncated);
  EXPECT_FALSE(dec.get_u64().has_value());
  EXPECT_FALSE(dec.ok());
}

TEST(DecoderTest, FailureIsSticky) {
  Decoder dec(Bytes{});
  EXPECT_FALSE(dec.get_u8().has_value());
  EXPECT_FALSE(dec.get_u32().has_value());
  EXPECT_FALSE(dec.ok());
}

TEST(DecoderTest, MalformedVarintOverflowRejected) {
  // 10 bytes of continuation with high garbage overflows 64 bits.
  const Bytes bad(11, 0xff);
  Decoder dec(bad);
  EXPECT_FALSE(dec.get_varint().has_value());
}

TEST(DecoderTest, HugeIdSetCountRejected) {
  Encoder enc;
  enc.put_varint(1'000'000);  // count way beyond remaining bytes
  enc.put_varint(1);
  Decoder dec(enc.bytes());
  EXPECT_FALSE(dec.get_id_set().has_value());
}

TEST(DecoderTest, BytesLengthBeyondBufferRejected) {
  Encoder enc;
  enc.put_varint(100);  // claims 100 bytes, provides none
  Decoder dec(enc.bytes());
  EXPECT_FALSE(dec.get_bytes().has_value());
}

// --- canonical-form hardening (hostile-wire PR) ---------------------------
// A hostile wire can hand the decoder any byte string; every non-canonical
// shape must be rejected so that "decode succeeded" implies "re-encoding is
// byte-identical" — the property the wire fuzz harness leans on.

TEST(DecoderTest, OverlongVarintRejected) {
  // 0x80 0x00 encodes 0 in two bytes; the canonical form is the single
  // byte 0x00. An overlong continuation must fail, not silently alias.
  const Bytes overlong{0x80, 0x00};
  Decoder dec(overlong);
  EXPECT_FALSE(dec.get_varint().has_value());
  EXPECT_FALSE(dec.ok());
}

TEST(DecoderTest, OverlongVarint127Rejected) {
  // 0xff 0x00 would decode as 127 (payload bits 0x7f + zero high group);
  // canonical 127 is the single byte 0x7f.
  const Bytes overlong{0xff, 0x00};
  Decoder dec(overlong);
  EXPECT_FALSE(dec.get_varint().has_value());
}

TEST(DecoderTest, TwoByteVarintWithNonzeroHighGroupAccepted) {
  // 0xff 0x01 = 0x7f | (1 << 7) = 255: a genuinely two-byte value.
  const Bytes two_byte{0xff, 0x01};
  Decoder dec(two_byte);
  const auto v = dec.get_varint();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 255U);
  EXPECT_TRUE(dec.at_end());
}

TEST(DecoderTest, CanonicalVarintsStillRoundTrip) {
  // The overlong rejection must not clip any value the encoder produces.
  const std::uint64_t values[] = {0, 1, 127, 128, 16383, 16384, ~0ULL};
  for (const std::uint64_t v : values) {
    Encoder enc;
    enc.put_varint(v);
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.get_varint(), v);
    EXPECT_TRUE(dec.at_end());
  }
}

TEST(DecoderTest, UnsortedIdSetRejected) {
  // put_id_set emits strictly ascending ids; a hand-built descending pair
  // is non-canonical and must fail.
  Encoder enc;
  enc.put_varint(2);
  enc.put_id(ProcessId(5));
  enc.put_id(ProcessId(3));
  Decoder dec(enc.bytes());
  EXPECT_FALSE(dec.get_id_set().has_value());
}

TEST(DecoderTest, DuplicateIdSetEntryRejected) {
  // Duplicates would silently collapse (set semantics) and break the
  // decode-implies-canonical property: {1,1} re-encodes as a 1-element set.
  Encoder enc;
  enc.put_varint(2);
  enc.put_id(ProcessId(1));
  enc.put_id(ProcessId(1));
  Decoder dec(enc.bytes());
  EXPECT_FALSE(dec.get_id_set().has_value());
}

TEST(DecoderTest, AtEndDetectsTrailingBytes) {
  // Frame-level parsers reject trailing garbage via at_end(); the primitive
  // must report it correctly after a complete decode.
  Encoder enc;
  enc.put_u8(7);
  Bytes padded = enc.bytes();
  padded.push_back(0x00);
  Decoder dec(padded);
  EXPECT_EQ(dec.get_u8(), 7);
  EXPECT_TRUE(dec.ok());
  EXPECT_FALSE(dec.at_end());
}

}  // namespace
}  // namespace bftcup::codec

// Determinism guarantees of the refactored event core.
//
// 1. Same-time events drain in seq (submission) order — the FIFO tie-break
//    that makes the priority queue deterministic.
// 2. The golden digest corpus: RunReport::digest() for every registry
//    scenario that predates the zero-copy refactor, captured on the seed
//    implementation (commit f202124). The refactor — MessageRef payload
//    sharing, ProcessTable, FaultTimeline plumbing, the synchrony_cap floor
//    fix — must leave every one of these byte-identical. If an intentional
//    semantic change ever breaks this, regenerate the table and say so in
//    the commit message.
// 3. The pooled-vs-serial sweep over the new fault-timeline scenarios:
//    thread placement must not leak into results.
#include <gtest/gtest.h>

#include <string_view>

#include "cup/batch_runner.hpp"
#include "cup/scenario_registry.hpp"
#include "test_util.hpp"

namespace bftcup {
namespace {

using test::ScriptedProcess;

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

TEST(QueueOrderTest, SameTimeTimersDrainInArmingOrder) {
  sim::Simulator::Options options;
  sim::Simulator simulator(options);
  std::vector<int> fired;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](sim::Context& ctx) {
    // All fire at t=10; seq order == arming order, not kind order.
    ctx.set_timer(10, 3);
    ctx.set_timer(10, 1);
    ctx.set_timer(10, 2);
  });
  a->on_timer_do([&](int kind, sim::Context&) { fired.push_back(kind); });
  simulator.add_process(std::move(a));
  simulator.run();
  EXPECT_EQ(fired, (std::vector<int>{3, 1, 2}));
}

TEST(QueueOrderTest, SameTimeEventsAcrossProcessesDrainInSeqOrder) {
  sim::Simulator::Options options;
  sim::Simulator simulator(options);
  std::vector<std::uint64_t> order;
  for (std::uint64_t raw : {2ULL, 1ULL, 3ULL}) {
    auto proc = std::make_unique<ScriptedProcess>(p(raw));
    proc->on_start_do([](sim::Context& ctx) { ctx.set_timer(5, 0); });
    proc->on_timer_do([&order, raw](int, sim::Context&) {
      order.push_back(raw);
    });
    simulator.add_process(std::move(proc));
  }
  simulator.run();
  // on_start runs sorted by id (1, 2, 3), so the timers are armed — and at
  // the shared fire time drained — in exactly that order.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3}));
}

struct GoldenDigest {
  const char* scenario;
  std::uint64_t seed;
  const char* digest;
};

/// Captured on the pre-refactor seed implementation; see file comment.
constexpr GoldenDigest kGoldenCorpus[] = {
    {"adhoc/f1", 1,
     "0eea805e0aba1c86db77ade70f9b7ec345c83f379e9def2849fcbcb51e749520"},  // SOLVED
    {"adhoc/f1", 7,
     "f77c5e855f2bbaa4fcced4d30b81c88fa8cda980268e7efee7cc530b55b106bd"},  // SOLVED
    {"adhoc/f2", 1,
     "7649fd19e6e0061444859c3a75fefa1645d87cca4281e6eabc74dfc1140b07f3"},  // SOLVED
    {"adhoc/f2", 7,
     "706791437ca961a7386ed829ce39f9fc97d7cb1518337611f47f3b6929459370"},  // SOLVED
    {"blockchain/committee", 1,
     "7903f8b8debaa12da18ee00b3e601eca58a2791fb922faed3956da0bfb986b4f"},  // SOLVED
    {"blockchain/committee", 7,
     "76407bc44c569bb589287a81b032c22e00abdf75881c002501d28fe758ce0d03"},  // SOLVED
    {"fig1a/silent", 1,
     "12978f2baa7bb3fd45e5d40267814f1aefa8a31e85898a3b1ac75668548b4ed4"},  // AGREEMENT-VIOLATED
    {"fig1a/silent", 7,
     "a1e0c02fa13514bd5e974061fd379c66466a3b3af9ec7764903b10944d518ead"},  // AGREEMENT-VIOLATED
    {"fig1b/fake-pd", 1,
     "52bde43358237b61dea87997b0e0d81f134980ad3a635101e747c22c78059603"},  // SOLVED
    {"fig1b/fake-pd", 7,
     "7257d671aa7e1f778b41c9eaff50b888c13c4295c0afb00d3e5480709d7a2109"},  // SOLVED
    {"fig1b/silent", 1,
     "22043fed842d818a15b5f42c9c857f8cb2ff0df19bf4d06a9c9e282ef27a5657"},  // SOLVED
    {"fig1b/silent", 7,
     "ff49fb975773647fd327732094ea7f465c62045899f71017a57c0125b74ba9b2"},  // SOLVED
    {"fig1b/wrong-value", 1,
     "c37b9281e512effc0fae1ad47c47d902aeff61db328dd462d0ea4313c5605c0a"},  // SOLVED
    {"fig1b/wrong-value", 7,
     "0e7d214a2b47844632e7f18bfeeb0e7d956675cd6ec3a5814471c5da6b2df93f"},  // SOLVED
    {"fig2/system-a-naive", 1,
     "3c43daf467cb77398e638fb707ccdda4693d904c3e9d49ad17fab496ebb1e3ba"},  // SOLVED
    {"fig2/system-a-naive", 7,
     "3c7846ccad468c908c1168ab710067268b07ec3cee7b0f02ab98b78213416a45"},  // SOLVED
    {"fig2/system-ab-cupft", 1,
     "4e14626fe2d4af0d0cde429a5f6b36f1701d991929d4a18f71669ffadbaf414b"},  // NO-TERMINATION
    {"fig2/system-ab-cupft", 7,
     "5bae7c9c2fc0f0b3aad75d7078a47d90a4ed88d959e70cde370566c7439ac85f"},  // NO-TERMINATION
    {"fig2/system-ab-naive", 1,
     "8483e0db25b5b73ea2520bcdaf9b0cf27db2c23320cffb3a1ea5fae4f455cc11"},  // AGREEMENT-VIOLATED
    {"fig2/system-ab-naive", 7,
     "8eaa0b978aebb52ccc06b44ac7d39738fd99b63d38ff33465d2e66a4a3be2ea1"},  // AGREEMENT-VIOLATED
    {"fig2/system-b-naive", 1,
     "da83da5319d2b70220df68dd9035a1f843a963ee4c5cc03915c3600b511c8ef6"},  // SOLVED
    {"fig2/system-b-naive", 7,
     "22e60f15a3051abcdfd5583faa9539832f3305ee4b893271adf25992cf289e01"},  // SOLVED
    {"fig3a/auth", 1,
     "e09c73e4d6eaf48f1d117b6b035d496164cda00ae9a5b855ca876be47670e0ce"},  // NO-TERMINATION
    {"fig3a/auth", 7,
     "eaecca7ddeb89a24ca743570f2d7662961b507f6503d7a7bf209e7d0ed26dadb"},  // NO-TERMINATION
    {"fig3a/cupft", 1,
     "cfdefae66effd12236bc0fd4debb4ee4e32c6bb34c59a58e839852f4919a92dc"},  // NO-TERMINATION
    {"fig3a/cupft", 7,
     "d73cb5ddab2646b5224da207f3e112a89f8ef9890a920a6c3ffa19448a9d0369"},  // NO-TERMINATION
    {"fig3b/auth", 1,
     "ba5482f9dd55aee83df6ba022138016dbdf7602279c849ffe3f68016ee69a4eb"},  // SOLVED
    {"fig3b/auth", 7,
     "b7451291271fcdfcccfb36fa9daa41975c08bb41a371428282cb667371b8ae44"},  // SOLVED
    {"fig3b/cupft", 1,
     "ca5ecab4a52945e2a8521007c6ac1a8359aeca3059fb707701d55b736169dcf1"},  // SOLVED
    {"fig3b/cupft", 7,
     "96679115247e79e83757062f477fbe123adf0cb0a6d7d1d9ab842fdf9c4e271d"},  // SOLVED
    {"fig4a/bridge-hiding-attack", 1,
     "099462156e24234f3e7f28c8d983e2de2344b1bea6103ec19d6669b49c1fad80"},  // AGREEMENT-VIOLATED
    {"fig4a/bridge-hiding-attack", 7,
     "6167dec9f074ffa9a303a441b8959ae68f7eae8b0fe0e189dd88fb3b3d1497ff"},  // AGREEMENT-VIOLATED
    {"fig4a/bridge-hiding-guarded", 1,
     "80d2cd1a26c8fd80bf0694bf7703b075d023b5df2453a98caee61250acac4aff"},  // NO-TERMINATION
    {"fig4a/bridge-hiding-guarded", 7,
     "8159336229279df882fea1da45fc2c7638902af59116ba8239a13a1b44572333"},  // NO-TERMINATION
    {"fig4a/closure-guard-cost", 1,
     "b67a911861d912821ad6f369ba81fdeb680a2e3fc0597c327e26247c3fd22d1e"},  // NO-TERMINATION
    {"fig4a/closure-guard-cost", 7,
     "02cd46fd5d86accb336da60498e6263ea175191c2cb39c5f32c46ccecdbb1e82"},  // NO-TERMINATION
    {"fig4a/cupft-fake-pd", 1,
     "484c1537631a29dae169294d0847e0b52b93d1067715d3e1984c4e8f96574632"},  // SOLVED
    {"fig4a/cupft-fake-pd", 7,
     "d1914b91501b1f1b5f06c826ca51c4f047b92401a96551d3fcbc42ed994c3a53"},  // SOLVED
    {"fig4a/cupft-silent", 1,
     "9934e5d4cd806b9a824bb8e865766a0090c2bc08234ff82d7b4a869de59597be"},  // SOLVED
    {"fig4a/cupft-silent", 7,
     "627413d04b65fdc8368430b2e2792dd563c7d48e611f93650c05c49aa23d7e61"},  // SOLVED
    {"fig4b/cupft-fake-pd", 1,
     "579c51e82c2bad52ecf63f24a149a802b8444988831d47fa36a391d02ad8c2ba"},  // SOLVED
    {"fig4b/cupft-fake-pd", 7,
     "f8f24da6c95de0180b79d6b91280498cc2cad5952b67243b72ebe03a08389d3e"},  // SOLVED
    {"fig4b/cupft-silent", 1,
     "9a89193503553feb3a6154cbb742069b7b8612d5b0e876448af75bc69791a15c"},  // SOLVED
    {"fig4b/cupft-silent", 7,
     "1772eea8d3a90eeff43fdaf7b631b9faac1e2b206fe74e1ecb1377f0e1ae3b5c"},  // SOLVED
    {"price-of-f/core5-peri10/auth", 1,
     "1353578c1490cdb39ce41350ca760aac7e58c6f771e7f0e7db0fdc607379b64a"},  // SOLVED
    {"price-of-f/core5-peri10/auth", 7,
     "0625d26c2510dd17f10b2d5fea1a42e6b3b2b2b9cba466ea55682e99463a1e47"},  // SOLVED
    {"price-of-f/core5-peri10/cupft", 1,
     "1353578c1490cdb39ce41350ca760aac7e58c6f771e7f0e7db0fdc607379b64a"},  // SOLVED
    {"price-of-f/core5-peri10/cupft", 7,
     "0625d26c2510dd17f10b2d5fea1a42e6b3b2b2b9cba466ea55682e99463a1e47"},  // SOLVED
    {"price-of-f/core5-peri3/auth", 1,
     "0c96c00dc49d18b7916d35d451865a89390ab64ad62c0fa12af9755a01a376c3"},  // SOLVED
    {"price-of-f/core5-peri3/auth", 7,
     "7ea69f90dbda67d01adc58ade194b3ff574a193adcec43b022c9af0d46b62f66"},  // SOLVED
    {"price-of-f/core5-peri3/cupft", 1,
     "0c96c00dc49d18b7916d35d451865a89390ab64ad62c0fa12af9755a01a376c3"},  // SOLVED
    {"price-of-f/core5-peri3/cupft", 7,
     "7ea69f90dbda67d01adc58ade194b3ff574a193adcec43b022c9af0d46b62f66"},  // SOLVED
    {"price-of-f/core5-peri6/auth", 1,
     "660827caf16c374178be456e602c7fa27f284a360036fe0d6a45caaa5bf8e5cd"},  // SOLVED
    {"price-of-f/core5-peri6/auth", 7,
     "31d852de2a3443bf628aede955090a6e19adcf9eeca505e4954545762f6de3c9"},  // SOLVED
    {"price-of-f/core5-peri6/cupft", 1,
     "660827caf16c374178be456e602c7fa27f284a360036fe0d6a45caaa5bf8e5cd"},  // SOLVED
    {"price-of-f/core5-peri6/cupft", 7,
     "31d852de2a3443bf628aede955090a6e19adcf9eeca505e4954545762f6de3c9"},  // SOLVED
    {"price-of-f/core7-peri10/auth", 1,
     "09f9bb302193b6e7dd5a15ecd1dd37d06407dfe225cacfbbacd7f479cda889da"},  // SOLVED
    {"price-of-f/core7-peri10/auth", 7,
     "d02cd0d94bc9f93b55f194d2e7752565feaa3487f156c3e975d6592f80c8fb42"},  // SOLVED
    {"price-of-f/core7-peri10/cupft", 1,
     "09f9bb302193b6e7dd5a15ecd1dd37d06407dfe225cacfbbacd7f479cda889da"},  // SOLVED
    {"price-of-f/core7-peri10/cupft", 7,
     "d02cd0d94bc9f93b55f194d2e7752565feaa3487f156c3e975d6592f80c8fb42"},  // SOLVED
    {"price-of-f/core7-peri3/auth", 1,
     "c067716a5afc3a613111202a7f2d0484614029719b09ffb730edc04b911505be"},  // SOLVED
    {"price-of-f/core7-peri3/auth", 7,
     "50ac80f54ddf8c3dd60c7c57c2f96c1c1b97a0ce674867c21db568b2626b642d"},  // SOLVED
    {"price-of-f/core7-peri3/cupft", 1,
     "c067716a5afc3a613111202a7f2d0484614029719b09ffb730edc04b911505be"},  // SOLVED
    {"price-of-f/core7-peri3/cupft", 7,
     "50ac80f54ddf8c3dd60c7c57c2f96c1c1b97a0ce674867c21db568b2626b642d"},  // SOLVED
    {"price-of-f/core7-peri6/auth", 1,
     "fb6e1c1b375e13d380baf0060b9c83eff723550596d4e8e6ab45b320b46fa513"},  // SOLVED
    {"price-of-f/core7-peri6/auth", 7,
     "f3f1a52b3db59c306f8dbe9d982362dcb11fa0408e9954066d3a151be9aea9d5"},  // SOLVED
    {"price-of-f/core7-peri6/cupft", 1,
     "fb6e1c1b375e13d380baf0060b9c83eff723550596d4e8e6ab45b320b46fa513"},  // SOLVED
    {"price-of-f/core7-peri6/cupft", 7,
     "f3f1a52b3db59c306f8dbe9d982362dcb11fa0408e9954066d3a151be9aea9d5"},  // SOLVED
    {"quickstart/fig1b-auth", 1,
     "22043fed842d818a15b5f42c9c857f8cb2ff0df19bf4d06a9c9e282ef27a5657"},  // SOLVED
    {"quickstart/fig1b-auth", 7,
     "ff49fb975773647fd327732094ea7f465c62045899f71017a57c0125b74ba9b2"},  // SOLVED
    {"table1/async/known-n-known-f", 1,
     "a14f7945681385219fc63c4b810d2845fefa583c4333d5e7c4deaa253b27fe33"},  // NO-TERMINATION
    {"table1/async/known-n-known-f", 7,
     "a14f7945681385219fc63c4b810d2845fefa583c4333d5e7c4deaa253b27fe33"},  // NO-TERMINATION
    {"table1/async/unknown-n-known-f", 1,
     "cee28880d9dada8e7077f19e90ec5b71e080d6c45ed0042edc710ae9b19a18f7"},  // NO-TERMINATION
    {"table1/async/unknown-n-known-f", 7,
     "cee28880d9dada8e7077f19e90ec5b71e080d6c45ed0042edc710ae9b19a18f7"},  // NO-TERMINATION
    {"table1/async/unknown-n-unknown-f", 1,
     "43190b09f895d0313c3f459900b1c6cb62700695bfa2996f0bf05cf7fd1ad6d7"},  // NO-TERMINATION
    {"table1/async/unknown-n-unknown-f", 7,
     "43190b09f895d0313c3f459900b1c6cb62700695bfa2996f0bf05cf7fd1ad6d7"},  // NO-TERMINATION
    {"table1/partial-sync/known-n-known-f", 1,
     "d02a9c5d0b5d0ebd962601d76cedf9b348edc69a7ce9a347dc5a7be250a2ce5b"},  // SOLVED
    {"table1/partial-sync/known-n-known-f", 7,
     "562a534733e7c5a1956f08845c4f2b9cfc13a933937671ddddbafd2da9bbb8f1"},  // SOLVED
    {"table1/partial-sync/unknown-n-known-f", 1,
     "7aeb172e6178f56b23d1ae8fee33035e8c7c698e379f94b17f337ac6e07aa328"},  // SOLVED
    {"table1/partial-sync/unknown-n-known-f", 7,
     "705d1258f20e0435c265543c9a5fae35efd499a12d4ece6caf17493db87f085e"},  // SOLVED
    {"table1/partial-sync/unknown-n-unknown-f", 1,
     "ca495ddd6f804dff1088322a63927ad5c19868dee401d7d78c3e4367d84b74f1"},  // SOLVED
    {"table1/partial-sync/unknown-n-unknown-f", 7,
     "be1fda756ba6b5903254d0d53cf81dddfa845c55d6f509a084079a42acebb125"},  // SOLVED
    {"table1/sync/known-n-known-f", 1,
     "01c99d089ae474b5fa4298383e28d8e2d9b68e7053ec426510615aa1485c32fa"},  // SOLVED
    {"table1/sync/known-n-known-f", 7,
     "995b24f25268ee43fd96fef7de8f74d5f56b8776e9bd6ee3c254ce0138b79f5c"},  // SOLVED
    {"table1/sync/unknown-n-known-f", 1,
     "f78c5e9198652a25d8684d5094be4bce39b5a340567e1544f7fb5f494c628975"},  // SOLVED
    {"table1/sync/unknown-n-known-f", 7,
     "434654584e5d68c21018f4aaa7d5c40ca64fb35140a4f80c4d6adc6859d683c3"},  // SOLVED
    {"table1/sync/unknown-n-unknown-f", 1,
     "96b1b9efb874c69bc39cc122ae753997257c753283e4da3166fbaf91e08379be"},  // SOLVED
    {"table1/sync/unknown-n-unknown-f", 7,
     "8285103f5a28704e7273ebab42d7d3ca64600b502ef6cc8de949ce869d07c41b"},  // SOLVED
};

TEST(GoldenCorpusTest, DigestsMatchThePreRefactorImplementation) {
  const auto& registry = cup::ScenarioRegistry::paper();
  for (const GoldenDigest& golden : kGoldenCorpus) {
    const cup::RunReport report = registry.run(golden.scenario, golden.seed);
    EXPECT_EQ(report.digest(), golden.digest)
        << golden.scenario << " seed=" << golden.seed;
  }
}

TEST(GoldenCorpusTest, DigestsSurviveTheFullObservabilityStack) {
  // The observation-only contract against the strongest oracle available:
  // with metrics collection AND the span flight recorder attached — serial
  // and under the intra-run pool — every golden digest must still match
  // the constants captured before src/obs/ existed. Complements
  // obs_determinism_test's explored/dyn sweep with the paper-figure corpus.
  const auto& registry = cup::ScenarioRegistry::paper();
  for (const GoldenDigest& golden : kGoldenCorpus) {
    for (std::size_t threads : {std::size_t{0}, std::size_t{8}}) {
      const cup::RunReport report =
          cup::run_scenario(registry.builder(golden.scenario, golden.seed)
                                .metrics(true)
                                .tracing(true)
                                .parallel_eval(threads)
                                .build());
      EXPECT_EQ(report.digest(), golden.digest)
          << golden.scenario << " seed=" << golden.seed
          << " parallel_eval=" << threads;
    }
  }
}

/// The explorer-found attack corpus (see register_explored in
/// scenario_registry.cpp), captured when the findings were minimized and
/// checked in. Each one-line genome must replay bit-identically forever;
/// an intentional semantic change must regenerate this table and say so.
constexpr GoldenDigest kExploredCorpus[] = {
    {"explored/agreement-14960b90", 1,
     "83db300bdff54d51becb5b1999360b5ed4c8db9830bb9aa880b48293063b23e0"},  // AGREEMENT-VIOLATED
    {"explored/agreement-14960b90", 7,
     "234aa6cfef02ace1e1bdd1c7ed7330b68d0f0e7bb0eb8c9cda20c8b3530a1f6f"},  // NO-TERMINATION
    {"explored/agreement-2085e512", 1,
     "0d6e03b1097b2be19749ab1efb167f6d9242d2777379df1e94e717c704fd2312"},  // AGREEMENT-VIOLATED
    {"explored/agreement-2085e512", 7,
     "477e7658914ee3b7a5d448a16faf1919564f906c71fcff44c0bcd3c0cc69ea75"},  // AGREEMENT-VIOLATED
    {"explored/agreement-2085e512-guarded", 1,
     "42f02ad4e747acb8a7f5f61442218b68181436fd1c40f8ef1437527e39fd8a10"},  // NO-TERMINATION
    {"explored/agreement-2085e512-guarded", 7,
     "817c95038187c146c08919f746206338d9f59076903a57734a6c3c17e1d2b3d1"},  // NO-TERMINATION
    {"explored/agreement-unsat-a872e429", 1,
     "770210d38111571356617fde443cb141d549dea409f25ff53988688f995cefbd"},  // AGREEMENT-VIOLATED
    {"explored/agreement-unsat-a872e429", 7,
     "b738f51679a398cfd5b131f42cd7ef74a373e3535e02d09fe6a4ee5bb7682207"},  // AGREEMENT-VIOLATED
    {"explored/liveness-94af2f39", 1,
     "a19c0e11445b11e06b6e2f2e23fed432f26e755e1bd34dc1b7b095415c748d3f"},  // NO-TERMINATION
    {"explored/liveness-94af2f39", 7,
     "92c4d6b220ec8dc75d78a5e00847aefefc298b25ca920fc16874044dfc2ef7f5"},  // AGREEMENT-VIOLATED
    {"explored/liveness-489bf1e6", 1,
     "da708bc47abc650bc19f09b0db0b9521e5e5734a18d577d5e2463bed06fdac96"},  // NO-TERMINATION
    {"explored/liveness-489bf1e6", 7,
     "2ea0edac1143a77f783ed59fd2063c5b5a33f9ef1defd48a4e3ad464bed1aeda"},  // AGREEMENT-VIOLATED
    {"explored/liveness-fda77490", 1,
     "b2443d5e54113c568b3e8db354ca8717f537cb428955e4261cef648b35dba231"},  // NO-TERMINATION
    {"explored/liveness-fda77490", 7,
     "84b1dfd3f2a5bf2b0f89b25fbe4602a4f6fed7edd8180db69cb14873251b54ac"},  // NO-TERMINATION
    {"explored/witness-45674aae", 1,
     "b70e3aba8b845f47a3afa354e507ea20e8fbaedbd9cc048eb37bb50250de2ba3"},  // SOLVED
    {"explored/witness-45674aae", 7,
     "f5c1d1cb0d76223922ce21efbb36ace0ec8a4b6c9689e422e0b2e21d77e59dba"},  // SOLVED
};

TEST(GoldenCorpusTest, ExploredCorpusReplaysFromRegistryNamesAlone) {
  const auto& registry = cup::ScenarioRegistry::paper();
  // Every checked-in explored/* scenario is covered here (at two seeds).
  EXPECT_EQ(registry.names_with_tag("explored").size() * 2,
            std::size(kExploredCorpus));
  for (const GoldenDigest& golden : kExploredCorpus) {
    const cup::RunReport report = registry.run(golden.scenario, golden.seed);
    EXPECT_EQ(report.digest(), golden.digest)
        << golden.scenario << " seed=" << golden.seed;
  }
}

TEST(GoldenCorpusTest, DigestsAreInvariantUnderDisabledCaches) {
  // The membership-engine caches (dirty-SCC candidate reuse, the shared
  // evaluation memo, the signature-verification memo) store pure functions
  // of immutable inputs; turning every layer off must replay each golden
  // digest byte-identically. A representative slice of the corpus covering
  // every node mode and adversary family keeps the double-run affordable.
  constexpr const char* kCacheInvarianceSubset[] = {
      "adhoc/f1",
      "blockchain/committee",
      "fig1a/silent",
      "fig1b/fake-pd",
      "fig1b/wrong-value",
      "fig2/system-ab-naive",
      "fig3a/cupft",
      "fig3b/auth",
      "fig4a/bridge-hiding-attack",
      "fig4b/cupft-silent",
      "price-of-f/core5-peri3/cupft",
      "table1/partial-sync/unknown-n-unknown-f",
  };
  const auto& registry = cup::ScenarioRegistry::paper();
  std::size_t matched = 0;
  for (const char* name : kCacheInvarianceSubset) {
    bool found = false;
    for (const GoldenDigest& golden : kGoldenCorpus) {
      if (std::string_view(golden.scenario) != name || golden.seed != 1) {
        continue;
      }
      found = true;
      ++matched;
      const cup::Scenario cold =
          registry.builder(name, golden.seed).caching(false).build();
      EXPECT_EQ(cup::run_scenario(cold).digest(), golden.digest)
          << name << " seed=" << golden.seed << " (caches disabled)";
    }
    // A renamed/typo'd subset entry must fail loudly, not shrink coverage.
    EXPECT_TRUE(found) << name << " matched no golden corpus entry";
  }
  EXPECT_EQ(matched, std::size(kCacheInvarianceSubset));
}

TEST(PooledVsSerialTest, DynamicScenarioSweepIsThreadPlacementInvariant) {
  cup::Sweep sweep;
  sweep.add_tag(cup::ScenarioRegistry::paper(), "dynamic");
  sweep.seeds(1, 3);

  cup::BatchRunner::Options options;
  options.threads = 4;
  options.verify_determinism = true;  // asserts pooled == serial digests
  const cup::BatchReport report = cup::BatchRunner(options).run(sweep);
  EXPECT_EQ(report.runs().size(), sweep.run_count());
  for (const auto& stats : report.scenarios()) {
    EXPECT_EQ(stats.agreement_violations, 0U) << stats.scenario;
    EXPECT_EQ(stats.validity_violations, 0U) << stats.scenario;
  }
}

}  // namespace
}  // namespace bftcup

#include <gtest/gtest.h>

#include "cup/scenario_builder.hpp"

namespace bftcup::cup {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

TEST(RunReportTest, VerdictPriorities) {
  RunReport r;
  r.all_correct_decided = true;
  EXPECT_EQ(r.verdict(), "SOLVED");
  r.validity = false;
  EXPECT_EQ(r.verdict(), "VALIDITY-VIOLATED");
  r.agreement = false;
  EXPECT_EQ(r.verdict(), "AGREEMENT-VIOLATED");  // agreement trumps validity
  r.agreement = true;
  r.validity = true;
  r.all_correct_decided = false;
  EXPECT_EQ(r.verdict(), "NO-TERMINATION");
}

TEST(RunnerTest, DefaultProposalsAreDistinctPerProcess) {
  EXPECT_NE(default_proposal(p(1)), default_proposal(p(2)));
  EXPECT_EQ(default_proposal(p(3)), default_proposal(p(3)));
}

TEST(RunnerTest, CustomProposalsWin) {
  const auto report = ScenarioBuilder(graph::figures::fig2a())
                          .mode(Mode::kAuth)
                          .propose_range(1, 4, 31337)
                          .run();
  EXPECT_EQ(report.verdict(), "SOLVED");
  EXPECT_EQ(report.common_value, 31337U);
}

TEST(RunnerTest, ReportsCorrectSetExcludesFaulty) {
  const auto report =
      ScenarioBuilder(graph::figures::fig1b()).mode(Mode::kAuth).run();
  EXPECT_FALSE(report.correct.contains(p(4)));
  EXPECT_EQ(report.correct.size(), 7U);
  // Faulty silent node never decides.
  EXPECT_FALSE(report.decisions.contains(p(4)));
}

TEST(RunnerTest, MembershipTimesPrecedeDecisions) {
  const auto report =
      ScenarioBuilder(graph::figures::fig1b()).mode(Mode::kAuth).run();
  ASSERT_TRUE(report.all_correct_decided);
  for (const auto& [who, d] : report.decisions) {
    ASSERT_TRUE(report.membership_times.contains(who)) << to_string(who);
    EXPECT_LE(report.membership_times.at(who), d.time) << to_string(who);
  }
}

TEST(RunnerTest, DeterministicForFixedSeed) {
  auto run_once = [] {
    return ScenarioBuilder(graph::figures::fig1b())
        .mode(Mode::kAuth)
        .seed(1234)
        .run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.completion_time, b.completion_time);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (const auto& [who, d] : a.decisions) {
    EXPECT_EQ(d.value, b.decisions.at(who).value);
    EXPECT_EQ(d.time, b.decisions.at(who).time);
  }
}

TEST(RunnerTest, DifferentSeedsDifferentSchedules) {
  auto run_with = [](std::uint64_t seed) {
    return ScenarioBuilder(graph::figures::fig1b())
        .mode(Mode::kAuth)
        .seed(seed)
        .gst(2'000)  // chaotic prefix amplifies schedule differences
        .run();
  };
  const auto a = run_with(1);
  const auto b = run_with(2);
  EXPECT_EQ(a.verdict(), "SOLVED");
  EXPECT_EQ(b.verdict(), "SOLVED");
  EXPECT_NE(a.completion_time, b.completion_time);  // schedules differ
}

TEST(RunnerTest, CustomSearchStrategyIsUsed) {
  const auto report =
      ScenarioBuilder(graph::figures::fig1b())
          .mode(Mode::kAuth)
          .search(std::make_shared<protocol::StructuredSinkSearch>())
          .run();
  EXPECT_EQ(report.verdict(), "SOLVED");
}

TEST(RunnerTest, EquivocatorValuesCountAsProposed) {
  // Deciding one of the equivocator's values must not be flagged as a
  // Validity violation (Byzantine processes are processes too).
  const auto report = ScenarioBuilder(graph::figures::fig1b())
                          .mode(Mode::kAuth)
                          .byz(ByzBehavior::kEquivocate)
                          .run();
  EXPECT_TRUE(report.agreement);
  EXPECT_TRUE(report.validity);
}

}  // namespace
}  // namespace bftcup::cup

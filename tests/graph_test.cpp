#include <gtest/gtest.h>

#include "graph/condensation.hpp"
#include "graph/digraph.hpp"
#include "graph/scc.hpp"

namespace bftcup::graph {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

Digraph cycle(std::initializer_list<std::uint64_t> ids) {
  Digraph g;
  std::vector<std::uint64_t> v(ids);
  for (std::size_t i = 0; i < v.size(); ++i) {
    g.add_edge(p(v[i]), p(v[(i + 1) % v.size()]));
  }
  return g;
}

TEST(DigraphTest, AddVertexAndEdge) {
  Digraph g;
  g.add_vertex(p(1));
  EXPECT_TRUE(g.has_vertex(p(1)));
  EXPECT_FALSE(g.has_vertex(p(2)));
  EXPECT_TRUE(g.add_edge(p(1), p(2)));
  EXPECT_FALSE(g.add_edge(p(1), p(2)));  // duplicate
  EXPECT_TRUE(g.has_edge(p(1), p(2)));
  EXPECT_FALSE(g.has_edge(p(2), p(1)));
  EXPECT_EQ(g.vertex_count(), 2U);
  EXPECT_EQ(g.edge_count(), 1U);
}

TEST(DigraphTest, SelfLoopsIgnored) {
  Digraph g;
  EXPECT_FALSE(g.add_edge(p(1), p(1)));
  EXPECT_EQ(g.edge_count(), 0U);
}

TEST(DigraphTest, Neighbors) {
  Digraph g;
  g.add_edge(p(1), p(2));
  g.add_edge(p(1), p(3));
  g.add_edge(p(4), p(1));
  EXPECT_EQ(g.out_neighbors(p(1)), (IdSet{p(2), p(3)}));
  EXPECT_EQ(g.in_neighbors(p(1)), (IdSet{p(4)}));
  EXPECT_EQ(g.out_neighbors(p(99)), IdSet{});
}

TEST(DigraphTest, InducedSubgraph) {
  Digraph g;
  g.add_edge(p(1), p(2));
  g.add_edge(p(2), p(3));
  g.add_edge(p(3), p(1));
  const Digraph sub = g.induced({p(1), p(2)});
  EXPECT_EQ(sub.vertex_count(), 2U);
  EXPECT_TRUE(sub.has_edge(p(1), p(2)));
  EXPECT_FALSE(sub.has_edge(p(2), p(3)));
  EXPECT_EQ(sub.edge_count(), 1U);
}

TEST(DigraphTest, InducedIgnoresUnknownVertices) {
  Digraph g;
  g.add_edge(p(1), p(2));
  const Digraph sub = g.induced({p(1), p(42)});
  EXPECT_EQ(sub.vertex_count(), 1U);
}

TEST(DigraphTest, UndirectedCounterpart) {
  Digraph g;
  g.add_edge(p(1), p(2));
  const Digraph u = g.undirected_counterpart();
  EXPECT_TRUE(u.has_edge(p(1), p(2)));
  EXPECT_TRUE(u.has_edge(p(2), p(1)));
}

TEST(DigraphTest, WeakConnectivity) {
  Digraph g;
  g.add_edge(p(1), p(2));
  g.add_vertex(p(3));
  EXPECT_FALSE(g.weakly_connected());
  g.add_edge(p(3), p(2));
  EXPECT_TRUE(g.weakly_connected());
  EXPECT_TRUE(Digraph{}.weakly_connected());  // vacuous
}

TEST(DigraphTest, Reachability) {
  Digraph g;
  g.add_edge(p(1), p(2));
  g.add_edge(p(2), p(3));
  g.add_edge(p(4), p(1));
  EXPECT_EQ(g.reachable_from(p(1)), (IdSet{p(1), p(2), p(3)}));
  EXPECT_EQ(g.reachable_from(p(4)), (IdSet{p(1), p(2), p(3), p(4)}));
  EXPECT_EQ(g.reachable_from(p(99)), IdSet{});
}

TEST(DigraphTest, EqualityIgnoresInsertionOrder) {
  Digraph a, b;
  a.add_edge(p(1), p(2));
  a.add_edge(p(2), p(3));
  b.add_edge(p(2), p(3));
  b.add_edge(p(1), p(2));
  EXPECT_EQ(a, b);
  b.add_edge(p(3), p(1));
  EXPECT_FALSE(a == b);
}

TEST(SccTest, SingleCycleIsOneComponent) {
  const Digraph g = cycle({1, 2, 3, 4});
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 1U);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(SccTest, ChainIsAllSingletons) {
  Digraph g;
  g.add_edge(p(1), p(2));
  g.add_edge(p(2), p(3));
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 3U);
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(SccTest, TwoComponents) {
  Digraph g = cycle({1, 2, 3});
  g.add_edge(p(3), p(4));
  g.add_edge(p(4), p(5));
  g.add_edge(p(5), p(4));
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 2U);
}

TEST(SccTest, EmptyGraph) {
  const SccResult scc = strongly_connected_components(Digraph{});
  EXPECT_EQ(scc.count, 0U);
  EXPECT_FALSE(is_strongly_connected(Digraph{}));
}

TEST(SccTest, LargeCycleIterativeDfsNoOverflow) {
  // 50k-node cycle would blow a recursive Tarjan's stack.
  Digraph g;
  const std::size_t n = 50'000;
  for (std::size_t i = 0; i < n; ++i) {
    g.add_edge(p(i), p((i + 1) % n));
  }
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(CondensationTest, UniqueSink) {
  Digraph g = cycle({1, 2, 3});  // sink
  g.add_edge(p(4), p(1));
  g.add_edge(p(5), p(4));
  const Condensation c = condense(g);
  ASSERT_EQ(c.sink_components.size(), 1U);
  EXPECT_EQ(unique_sink_members(g), (IdSet{p(1), p(2), p(3)}));
}

TEST(CondensationTest, TwoSinks) {
  Digraph g;
  g.add_edge(p(1), p(2));  // 2 is a sink
  g.add_edge(p(1), p(3));  // 3 is a sink
  const Condensation c = condense(g);
  EXPECT_EQ(c.sink_components.size(), 2U);
  EXPECT_EQ(unique_sink_members(g), IdSet{});
  EXPECT_EQ(sink_members(g), (IdSet{p(2), p(3)}));
}

TEST(CondensationTest, DagEdgesDeduplicated) {
  Digraph g = cycle({1, 2});
  g.add_edge(p(1), p(3));
  g.add_edge(p(2), p(3));
  const Condensation c = condense(g);
  // Component of {1,2} has exactly one DAG edge to component of {3}.
  const std::size_t c12 = c.sccs.component[*g.index_of(p(1))];
  EXPECT_EQ(c.dag_out[c12].size(), 1U);
}

}  // namespace
}  // namespace bftcup::graph

// Compile-only fixture for tools/check_thread_safety.py: correct lock
// discipline over an annotated Mutex MUST build cleanly under
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
// (and under g++, where the annotations expand to nothing). Its twin,
// thread_safety_negative.cpp, must NOT build — together they prove the
// analysis is actually on and actually understands the shim.
#include "common/thread_annotations.hpp"

namespace {

class GuardedCounter {
 public:
  void increment() {
    bftcup::MutexLock lock(mutex_);
    ++value_;
  }

  [[nodiscard]] int value() {
    bftcup::MutexLock lock(mutex_);
    return value_;
  }

 private:
  bftcup::Mutex mutex_;
  int value_ BFTCUP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  GuardedCounter counter;
  counter.increment();
  return counter.value() == 1 ? 0 : 1;
}

// cup_lint fixture: R1 must fire — reducing parallel results in completion
// order into a digest-path container. The worker pool's determinism
// contract requires results to land in index-addressed slots merged by
// index; collecting them keyed by completion instead makes the reduction
// order depend on thread scheduling, and the hash-table walk that drains
// it is exactly the nondeterministic step R1 polices.
// Not compiled; scanned by `cup_lint.py --self-test tests/lint_corpus`.
// cup-lint-expect: R1
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Candidate {
  std::uint64_t id = 0;
};

struct CompletionLog {
  // Keyed by "arrival ticket" handed out as tasks finish — scheduling
  // order, not index order.
  std::unordered_map<std::size_t, std::vector<Candidate>> by_completion;
};

std::vector<Candidate> reduce_results(const CompletionLog& log) {
  std::vector<Candidate> digest_feed;
  for (const auto& [ticket, produced] : log.by_completion) {
    digest_feed.insert(digest_feed.end(), produced.begin(), produced.end());
  }
  return digest_feed;
}

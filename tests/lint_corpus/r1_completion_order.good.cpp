// cup_lint fixture: the slot-addressed twin of r1_completion_order.bad.cpp.
// Results land in pre-sized slots addressed by task index, and the
// reduction walks the slots in index order — byte-identical to a serial
// loop at any worker count, which is the WorkPool determinism contract.
#include <cstddef>
#include <cstdint>
#include <vector>

struct Candidate {
  std::uint64_t id = 0;
};

struct SlotLog {
  // One slot per task index, pre-sized before the dispatch; workers write
  // only their own slots.
  std::vector<std::vector<Candidate>> slots;
};

std::vector<Candidate> reduce_results(const SlotLog& log) {
  std::vector<Candidate> digest_feed;
  for (const auto& produced : log.slots) {
    digest_feed.insert(digest_feed.end(), produced.begin(), produced.end());
  }
  return digest_feed;
}

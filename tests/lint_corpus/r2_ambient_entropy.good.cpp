// cup_lint fixture: the deterministic twin of r2_ambient_entropy.bad.cpp.
// All randomness flows through a seeded generator owned by the simulation;
// the one justified exception is annotated.
#include <cstdint>

namespace sim {
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 1) {}
  std::uint64_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

 private:
  std::uint64_t state_;
};
}  // namespace sim

std::uint64_t jitter_seed(sim::Rng& rng) {
  return rng.next();
}

std::uint64_t wall_clock_for_bench_label() {
  // cup-lint: rng-ok(bench label only; the value never reaches a replayed path)
  return static_cast<std::uint64_t>(time(nullptr));
}

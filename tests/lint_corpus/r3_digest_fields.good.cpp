// cup_lint fixture: the classified twin of r3_digest_fields.bad.cpp.
// Every RunReport field is hashed or justified; every RunRecord field
// appears in both emitters.
#include <cstdint>
#include <string>

struct RunReport {
  std::uint64_t messages_sent = 0;
  // cup-lint: digest-excluded(varies with fault timeline, not behavior)
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;

  std::string digest() const;
};

std::string RunReport::digest() const {
  return std::to_string(messages_sent) + "." + std::to_string(bytes_sent);
}

struct RunRecord {
  std::string scenario;
  std::uint64_t seed = 0;
  std::uint64_t arena_peak = 0;
};

struct BatchReport {
  RunRecord run;
  std::string runs_csv() const;
  std::string to_json() const;
};

std::string BatchReport::runs_csv() const {
  return run.scenario + "," + std::to_string(run.seed) + "," +
         std::to_string(run.arena_peak);
}

std::string BatchReport::to_json() const {
  return "{\"scenario\":\"" + run.scenario +
         "\",\"seed\":" + std::to_string(run.seed) +
         ",\"arena_peak\":" + std::to_string(run.arena_peak) + "}";
}

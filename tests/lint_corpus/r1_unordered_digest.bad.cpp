// cup_lint fixture: R1 must fire — iterating a hash table on a digest path.
// Not compiled; scanned by `cup_lint.py --self-test tests/lint_corpus`.
// cup-lint-expect: R1
#include <cstdint>
#include <string>
#include <unordered_map>

struct TraceRecord {
  std::unordered_map<std::string, std::uint64_t> sent_by_type;
};

std::string coverage_histogram(const TraceRecord& record) {
  std::string signature;
  // Hash-table order depends on the allocator and the hash seed: two runs
  // of the same scenario would emit different signatures.
  for (const auto& [type, count] : record.sent_by_type) {
    signature += type + ":" + std::to_string(count) + ",";
  }
  return signature;
}

// cup_lint fixture: R3 must fire — an unclassified RunReport field, a
// hashed-but-marked contradiction, and a RunRecord field that does not
// round-trip through the CSV/JSON emitters. Not compiled.
// cup-lint-expect: R3
#include <cstdint>
#include <string>

struct RunReport {
  std::uint64_t messages_sent = 0;
  // Neither hashed by digest() nor marked digest-excluded: unclassified.
  std::uint64_t messages_dropped = 0;
  // Hashed below AND marked excluded: a contradiction.
  // cup-lint: digest-excluded(pretends to be a cache counter)
  std::uint64_t bytes_sent = 0;

  std::string digest() const;
};

std::string RunReport::digest() const {
  return std::to_string(messages_sent) + "." + std::to_string(bytes_sent);
}

struct RunRecord {
  std::string scenario;
  std::uint64_t seed = 0;
  std::uint64_t arena_peak = 0;  ///< missing from both emitters below
};

struct BatchReport {
  RunRecord run;
  std::string runs_csv() const;
  std::string to_json() const;
};

std::string BatchReport::runs_csv() const {
  return run.scenario + "," + std::to_string(run.seed);
}

std::string BatchReport::to_json() const {
  return "{\"scenario\":\"" + run.scenario +
         "\",\"seed\":" + std::to_string(run.seed) + "}";
}

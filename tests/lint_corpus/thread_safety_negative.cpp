// Negative compile-only fixture for tools/check_thread_safety.py: reading
// and writing a GUARDED_BY member without its mutex MUST fail under
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
// If this file ever compiles under that configuration, the analysis is
// silently off and the whole annotation layer is decorative — the driver
// treats that as a hard failure.
#include "common/thread_annotations.hpp"

namespace {

class GuardedCounter {
 public:
  void increment_unguarded() {
    ++value_;  // BAD: -Wthread-safety must reject this access
  }

  [[nodiscard]] int value_unguarded() const {
    return value_;  // BAD: and this one
  }

 private:
  bftcup::Mutex mutex_;
  int value_ BFTCUP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  GuardedCounter counter;
  counter.increment_unguarded();
  return counter.value_unguarded();
}

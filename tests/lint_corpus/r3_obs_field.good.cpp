// cup_lint fixture: the classified twin of r3_obs_field.bad.cpp. The obs::
// fields stay out of digest() and each carries the digest-excluded marker
// recording the observability determinism contract.
#include <cstdint>
#include <string>

namespace obs {
struct MetricsSnapshot {
  std::uint64_t counters = 0;
};
}  // namespace obs

struct RunReport {
  std::uint64_t messages_sent = 0;
  // cup-lint: digest-excluded(observability snapshot, behavior-neutral by contract)
  obs::MetricsSnapshot metrics;
  // cup-lint: digest-excluded(observability trace; wall-clock values differ every run)
  obs::MetricsSnapshot spans;

  std::string digest() const;
};

std::string RunReport::digest() const {
  return std::to_string(messages_sent);
}

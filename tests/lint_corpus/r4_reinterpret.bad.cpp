// cup_lint fixture: R4 must fire — reinterpret_cast outside the audited
// codec/ + run_arena allowlist — and M1 for the empty justification.
// Not compiled.
// cup-lint-expect: R4
// cup-lint-expect: M1
#include <cstdint>

std::uint32_t first_word(const unsigned char* frame) {
  // Unaligned, aliasing-violating load: UB the optimizer may exploit.
  return *reinterpret_cast<const std::uint32_t*>(frame);
}

std::uint64_t second_word(const unsigned char* frame) {
  // A marker with no justification does not allowlist anything.
  // cup-lint: cast-ok()
  return *reinterpret_cast<const std::uint64_t*>(frame + 4);
}

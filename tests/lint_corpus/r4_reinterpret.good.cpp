// cup_lint fixture: the audited twin of r4_reinterpret.bad.cpp — memcpy
// for the byte reads (no aliasing or alignment UB), and one justified
// pointer-to-integer cast.
#include <cstdint>
#include <cstring>

std::uint32_t first_word(const unsigned char* frame) {
  std::uint32_t word = 0;
  std::memcpy(&word, frame, sizeof(word));
  return word;
}

std::uintptr_t slot_tag(const unsigned char* frame) {
  // cup-lint: cast-ok(pointer-to-integer for a debug tag; never cast back)
  return reinterpret_cast<std::uintptr_t>(frame);
}

// cup_lint fixture: the ordered twin of r1_unordered_digest.bad.cpp.
// std::map iterates in key order (replayable); the membership lookup keeps
// an unordered index but justifies the one place it is walked.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

struct TraceRecord {
  std::map<std::string, std::uint64_t> sent_by_type;
  std::unordered_map<std::string, std::uint64_t> index;
};

std::string coverage_histogram(const TraceRecord& record) {
  std::string signature;
  for (const auto& [type, count] : record.sent_by_type) {
    signature += type + ":" + std::to_string(count) + ",";
  }
  std::uint64_t total = 0;
  // cup-lint: ordered-ok(order-insensitive fold: addition commutes)
  for (const auto& [type, count] : record.index) {
    total += count;
  }
  signature += std::to_string(total);
  return signature;
}

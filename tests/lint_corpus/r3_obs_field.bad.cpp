// cup_lint fixture: R3's obs clause must fire — one obs:: typed RunReport
// field serialized by digest() (observability state must never enter the
// digest, wall times differ every run) and one left unmarked (the
// determinism contract must be recorded with a digest-excluded marker).
// Not compiled.
// cup-lint-expect: R3
#include <cstdint>
#include <string>

namespace obs {
struct MetricsSnapshot {
  std::uint64_t counters = 0;
};
}  // namespace obs

struct RunReport {
  std::uint64_t messages_sent = 0;
  // Serialized below: the obs clause rejects this outright, marker or not.
  obs::MetricsSnapshot metrics;
  // Not hashed, but missing the digest-excluded marker: unclassified obs
  // state.
  obs::MetricsSnapshot spans;

  std::string digest() const;
};

std::string RunReport::digest() const {
  return std::to_string(messages_sent) + "." +
         std::to_string(metrics.counters);
}

// cup_lint fixture: R2 must fire — ambient entropy and wall-clock sources
// outside sim::Rng. Not compiled; scanned by --self-test.
// cup-lint-expect: R2
#include <cstdlib>
#include <ctime>
#include <functional>
#include <random>

std::uint64_t jitter_seed() {
  std::random_device device;  // hardware entropy: never replayable
  std::mt19937 engine(device());
  return engine() ^ static_cast<std::uint64_t>(time(nullptr)) ^
         static_cast<std::uint64_t>(rand());
}

std::size_t bucket_of(const int* slot) {
  // Address-dependent hashing: the same run hashes differently per ASLR.
  return std::hash<const int*>{}(slot);
}

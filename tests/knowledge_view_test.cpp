#include <gtest/gtest.h>

#include "graph/figures.hpp"
#include "protocol/knowledge_view.hpp"

namespace bftcup::protocol {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

TEST(KnowledgeViewTest, InitialStateMatchesAlgorithmOne) {
  KnowledgeView view(p(1), IdSet{p(2), p(3)});
  EXPECT_EQ(view.known(), (IdSet{p(1), p(2), p(3)}));
  EXPECT_EQ(view.received(), (IdSet{p(1)}));
  ASSERT_NE(view.pd_of(p(1)), nullptr);
  EXPECT_EQ(*view.pd_of(p(1)), (IdSet{p(2), p(3)}));
  EXPECT_EQ(view.pd_of(p(2)), nullptr);
}

TEST(KnowledgeViewTest, AddPdExpandsKnown) {
  KnowledgeView view(p(1), IdSet{p(2)});
  EXPECT_TRUE(view.add_pd(p(2), IdSet{p(3), p(4)}));
  EXPECT_TRUE(view.known().contains(p(3)));
  EXPECT_TRUE(view.known().contains(p(4)));
  EXPECT_TRUE(view.received().contains(p(2)));
}

TEST(KnowledgeViewTest, FirstPdWinsAgainstEquivocation) {
  KnowledgeView view(p(1), IdSet{});
  EXPECT_TRUE(view.add_pd(p(2), IdSet{p(3)}));
  // A second, different "PD_2" must not replace the first.
  view.add_pd(p(2), IdSet{p(4)});
  EXPECT_EQ(*view.pd_of(p(2)), (IdSet{p(3)}));
}

TEST(KnowledgeViewTest, AddPdIdempotent) {
  KnowledgeView view(p(1), IdSet{});
  EXPECT_TRUE(view.add_pd(p(2), IdSet{p(3)}));
  EXPECT_FALSE(view.add_pd(p(2), IdSet{p(3)}));
}

TEST(KnowledgeViewTest, KnowledgeGraphOnlyUsesReceivedPds) {
  KnowledgeView view(p(1), IdSet{p(2)});
  view.add_known(p(5));
  const graph::Digraph k = view.knowledge_graph();
  EXPECT_TRUE(k.has_edge(p(1), p(2)));
  EXPECT_TRUE(k.has_vertex(p(5)));
  EXPECT_TRUE(k.out_neighbors(p(2)).empty());  // PD_2 not received
}

TEST(KnowledgeViewTest, OutReachAndInDegreeCounts) {
  KnowledgeView view(p(1), IdSet{p(2), p(3)});
  view.add_pd(p(2), IdSet{p(3)});
  view.add_pd(p(3), IdSet{p(4)});
  // Processes of {1,2,3} with an out-edge into {p4}: only 3.
  EXPECT_EQ(view.out_reach_count(IdSet{p(1), p(2), p(3)}, IdSet{p(4)}), 1U);
  // In-degree of 3 from {1,2}: both point to it.
  EXPECT_EQ(view.in_degree_from(IdSet{p(1), p(2)}, p(3)), 2U);
  // Unreceived members contribute nothing.
  EXPECT_EQ(view.in_degree_from(IdSet{p(4)}, p(1)), 0U);
}

TEST(KnowledgeViewTest, OmniscientMatchesGraph) {
  const auto inst = graph::figures::fig1b();
  const KnowledgeView view = KnowledgeView::omniscient(inst.graph);
  EXPECT_EQ(view.known(), inst.graph.vertices());
  EXPECT_EQ(view.received(), inst.graph.vertices());
  for (ProcessId id : inst.graph.vertices()) {
    ASSERT_NE(view.pd_of(id), nullptr);
    EXPECT_EQ(*view.pd_of(id), inst.graph.out_neighbors(id));
  }
  // Knowledge graph reconstructs the original.
  EXPECT_EQ(view.knowledge_graph(), inst.graph);
}

}  // namespace
}  // namespace bftcup::protocol

#include <gtest/gtest.h>

#include <set>

#include "common/random.hpp"
#include "graph/connectivity.hpp"
#include "graph/figures.hpp"
#include "graph/paths.hpp"

namespace bftcup::graph {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

Digraph complete(std::size_t n) {
  Digraph g;
  for (std::uint64_t a = 1; a <= n; ++a) {
    for (std::uint64_t b = 1; b <= n; ++b) {
      if (a != b) g.add_edge(p(a), p(b));
    }
  }
  return g;
}

/// True iff the returned paths are valid graph paths from `from` to `to`
/// and pairwise internally node-disjoint.
::testing::AssertionResult valid_disjoint(
    const Digraph& g, ProcessId from, ProcessId to,
    const std::vector<std::vector<ProcessId>>& paths) {
  std::set<ProcessId> used_internal;
  for (const auto& path : paths) {
    if (path.size() < 2 || path.front() != from || path.back() != to) {
      return ::testing::AssertionFailure() << "bad endpoints";
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (!g.has_edge(path[i], path[i + 1])) {
        return ::testing::AssertionFailure()
               << "missing edge " << to_string(path[i]) << "->"
               << to_string(path[i + 1]);
      }
    }
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      if (!used_internal.insert(path[i]).second) {
        return ::testing::AssertionFailure()
               << "shared internal vertex " << to_string(path[i]);
      }
      if (path[i] == from || path[i] == to) {
        return ::testing::AssertionFailure() << "endpoint used internally";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(DisjointPathsWitnessTest, DirectEdgeOnly) {
  Digraph g;
  g.add_edge(p(1), p(2));
  const auto paths = disjoint_paths(g, p(1), p(2));
  ASSERT_EQ(paths.size(), 1U);
  EXPECT_EQ(paths[0], (std::vector<ProcessId>{p(1), p(2)}));
}

TEST(DisjointPathsWitnessTest, CountMatchesConnectivity) {
  const Digraph g = complete(5);
  const auto paths = disjoint_paths(g, p(1), p(2));
  EXPECT_EQ(paths.size(), disjoint_path_count(g, p(1), p(2)));
  EXPECT_TRUE(valid_disjoint(g, p(1), p(2), paths));
}

TEST(DisjointPathsWitnessTest, UnreachableOrDegenerate) {
  Digraph g;
  g.add_edge(p(1), p(2));
  g.add_vertex(p(3));
  EXPECT_TRUE(disjoint_paths(g, p(1), p(3)).empty());
  EXPECT_TRUE(disjoint_paths(g, p(1), p(1)).empty());
  EXPECT_TRUE(disjoint_paths(g, p(1), p(99)).empty());
  EXPECT_TRUE(disjoint_paths(g, p(2), p(1)).empty());  // wrong direction
}

TEST(DisjointPathsWitnessTest, BottleneckYieldsSinglePath) {
  Digraph g;
  g.add_edge(p(1), p(2));
  g.add_edge(p(1), p(3));
  g.add_edge(p(2), p(5));
  g.add_edge(p(3), p(5));
  g.add_edge(p(5), p(4));
  const auto paths = disjoint_paths(g, p(1), p(4));
  ASSERT_EQ(paths.size(), 1U);  // everything funnels through 5
  EXPECT_TRUE(valid_disjoint(g, p(1), p(4), paths));
}

TEST(DisjointPathsWitnessTest, Fig1bNonSinkHasTwoWitnesses) {
  // Definition 1's requirement made concrete: process 5 reaches each sink
  // member of fig. 1b over two disjoint routes.
  const auto inst = figures::fig1b();
  const Digraph safe =
      inst.graph.induced(inst.graph.vertices().set_difference(inst.faulty));
  for (std::uint64_t sink : {1, 2, 3}) {
    const auto paths = disjoint_paths(safe, p(5), p(sink));
    EXPECT_GE(paths.size(), 2U) << "to p" << sink;
    EXPECT_TRUE(valid_disjoint(safe, p(5), p(sink), paths));
  }
}

class DisjointPathsSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisjointPathsSweep, WitnessCountAlwaysMatchesFlowCount) {
  Rng rng(GetParam());
  Digraph g;
  const std::size_t n = 8;
  for (std::uint64_t i = 0; i < n; ++i) {
    g.add_edge(p(i + 1), p((i + 1) % n + 1));
  }
  for (int e = 0; e < 12; ++e) {
    g.add_edge(p(rng.next_below(n) + 1), p(rng.next_below(n) + 1));
  }
  for (ProcessId a : g.vertices()) {
    for (ProcessId b : g.vertices()) {
      if (a == b) continue;
      const auto paths = disjoint_paths(g, a, b);
      EXPECT_EQ(paths.size(), disjoint_path_count(g, a, b))
          << to_string(a) << "->" << to_string(b);
      EXPECT_TRUE(valid_disjoint(g, a, b, paths));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointPathsSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace bftcup::graph

// Unit tests for Algorithm 3's value exchange (lines 5-10).
#include <gtest/gtest.h>

#include "protocol/consensus.hpp"
#include "test_util.hpp"

namespace bftcup::protocol {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

/// Non-member side: requests the decided value from `members` at startup.
class AskerProcess : public sim::Process {
 public:
  AskerProcess(ProcessId id, IdSet members)
      : sim::Process(id), exchange_(id), members_(std::move(members)) {}

  void on_start(sim::Context& ctx) override {
    exchange_.request(members_, ctx);
  }
  void on_message(ProcessId from, const msg::Message& m,
                  sim::Context& ctx) override {
    exchange_.handle_message(from, m, ctx);
    if (const auto v = exchange_.fetched()) ctx.decide(*v);
  }

 private:
  ValueExchange exchange_;
  IdSet members_;
};

/// Member side: serves GETDECIDEDVAL, deciding its value at `decide_at`.
class ServerProcess : public sim::Process {
 public:
  ServerProcess(ProcessId id, Value value, SimTime decide_at)
      : sim::Process(id),
        exchange_(id),
        value_(value),
        decide_at_(decide_at) {}

  void on_start(sim::Context& ctx) override {
    if (decide_at_ == 0) {
      exchange_.set_local_decision(value_, ctx);
    } else {
      ctx.set_timer(decide_at_, 7);
    }
  }
  void on_message(ProcessId from, const msg::Message& m,
                  sim::Context& ctx) override {
    exchange_.handle_message(from, m, ctx);
  }
  void on_timer(int kind, sim::Context& ctx) override {
    if (kind == 7) exchange_.set_local_decision(value_, ctx);
  }

 private:
  ValueExchange exchange_;
  Value value_;
  SimTime decide_at_;
};

msg::Message decided_val(Value v) {
  msg::Message m;
  m.type = msg::MsgType::kDecidedVal;
  m.value = v;
  return m;
}

sim::Simulator make_sim() {
  sim::Simulator::Options options;
  options.horizon = 50'000;
  return sim::Simulator(options);
}

TEST(ValueExchangeTest, MajorityOfIdenticalAnswersDecides) {
  auto simulator = make_sim();
  IdSet members;
  // 5 members, one lying: ceil((5+1)/2) = 3 identical answers required.
  for (std::uint64_t id = 1; id <= 5; ++id) {
    members.insert(p(id));
    simulator.add_process(std::make_unique<ServerProcess>(
        p(id), id == 1 ? 666 : 42, /*decide_at=*/0));
  }
  simulator.add_process(std::make_unique<AskerProcess>(p(10), members));
  simulator.run();
  ASSERT_TRUE(simulator.trace().decisions().contains(p(10)));
  EXPECT_EQ(simulator.trace().decisions().at(p(10)).value, 42U);
}

TEST(ValueExchangeTest, MinorityOfLiarsCannotWin) {
  auto simulator = make_sim();
  IdSet members;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    members.insert(p(id));
    // Two liars of four: needed = ceil(5/2) = 3 > 2, so no value wins.
    simulator.add_process(std::make_unique<ServerProcess>(
        p(id), id <= 2 ? 666 : 42, 0));
  }
  simulator.add_process(std::make_unique<AskerProcess>(p(10), members));
  simulator.run();
  EXPECT_FALSE(simulator.trace().decisions().contains(p(10)));
}

TEST(ValueExchangeTest, DeferredReplyWaitsForLocalDecision) {
  // Alg. 3 line 9: "wait until val != ⊥". Members decide late; the earlier
  // request must still be answered.
  auto simulator = make_sim();
  IdSet members;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    members.insert(p(id));
    simulator.add_process(
        std::make_unique<ServerProcess>(p(id), 42, /*decide_at=*/1'000));
  }
  simulator.add_process(std::make_unique<AskerProcess>(p(10), members));
  simulator.run();
  ASSERT_TRUE(simulator.trace().decisions().contains(p(10)));
  const auto& d = simulator.trace().decisions().at(p(10));
  EXPECT_EQ(d.value, 42U);
  EXPECT_GE(d.time, 1'000);
}

TEST(ValueExchangeTest, AnswersFromNonMembersIgnored) {
  auto simulator = make_sim();
  IdSet members = {p(1), p(2), p(3)};
  for (std::uint64_t id = 1; id <= 3; ++id) {
    simulator.add_process(std::make_unique<ServerProcess>(
        p(id), 42, /*decide_at=*/20'000));  // too late to matter much
  }
  // An outsider floods bogus answers immediately.
  auto outsider = std::make_unique<test::ScriptedProcess>(p(9));
  outsider->on_start_do([](sim::Context& ctx) {
    for (int i = 0; i < 10; ++i) ctx.send(p(10), decided_val(666));
  });
  simulator.add_process(std::move(outsider));
  simulator.add_process(std::make_unique<AskerProcess>(p(10), members));
  simulator.run();
  // Either undecided or decided with the members' value — never 666.
  const auto& decisions = simulator.trace().decisions();
  if (decisions.contains(p(10))) {
    EXPECT_EQ(decisions.at(p(10)).value, 42U);
  }
}

TEST(ValueExchangeTest, DuplicateAnswersFromSameMemberCountOnce) {
  auto simulator = make_sim();
  IdSet members = {p(1), p(2), p(3)};
  // Only member 1 answers — three times. needed = 2; duplicates must not
  // accumulate.
  auto repeater = std::make_unique<test::ScriptedProcess>(p(1));
  repeater->on_message_do(
      [](ProcessId from, const msg::Message& m, sim::Context& ctx) {
        if (m.type != msg::MsgType::kGetDecidedVal) return;
        for (int i = 0; i < 3; ++i) ctx.send(from, decided_val(42));
      });
  simulator.add_process(std::move(repeater));
  simulator.add_process(std::make_unique<test::ScriptedProcess>(p(2)));
  simulator.add_process(std::make_unique<test::ScriptedProcess>(p(3)));
  simulator.add_process(std::make_unique<AskerProcess>(p(10), members));
  simulator.run();
  EXPECT_FALSE(simulator.trace().decisions().contains(p(10)));
}

}  // namespace
}  // namespace bftcup::protocol

#include <gtest/gtest.h>

#include "graph/figures.hpp"
#include "graph/graphio.hpp"

namespace bftcup::graph::io {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

TEST(EdgeListTest, ParseBasic) {
  const auto g = parse_edge_list("1 -> 2\n2 -> 3\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(g->has_edge(p(1), p(2)));
  EXPECT_TRUE(g->has_edge(p(2), p(3)));
  EXPECT_EQ(g->edge_count(), 2U);
}

TEST(EdgeListTest, CommentsBlanksAndVertices) {
  const auto g = parse_edge_list(
      "# a comment\n"
      "\n"
      "v 7\n"
      "1 -> 2\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(g->has_vertex(p(7)));
  EXPECT_EQ(g->vertex_count(), 3U);
}

TEST(EdgeListTest, WhitespaceTolerant) {
  const auto g = parse_edge_list("  1   ->   2  \r\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(g->has_edge(p(1), p(2)));
}

TEST(EdgeListTest, MalformedRejected) {
  EXPECT_FALSE(parse_edge_list("1 - 2\n").has_value());
  EXPECT_FALSE(parse_edge_list("x -> 2\n").has_value());
  EXPECT_FALSE(parse_edge_list("1 -> \n").has_value());
  EXPECT_FALSE(parse_edge_list("v abc\n").has_value());
}

TEST(EdgeListTest, RoundTripFigure) {
  const Digraph original = figures::fig1b().graph;
  const auto back = parse_edge_list(to_edge_list(original));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, original);
}

TEST(EdgeListTest, RoundTripWithIsolatedVertex) {
  Digraph g;
  g.add_vertex(p(9));
  g.add_edge(p(1), p(2));
  const auto back = parse_edge_list(to_edge_list(g));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, g);
}

TEST(DotTest, ContainsVerticesAndEdges) {
  Digraph g;
  g.add_edge(p(1), p(2));
  const std::string dot = to_dot(g, {p(2)});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("p1 -> p2"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);  // faulty marker
}

}  // namespace
}  // namespace bftcup::graph::io

// The large-n frontier pieces: certified pivot connectivity on graphs
// straddling the n = 64 switch point, and the big-SCC certification path
// of the sink search (components beyond the enumeration caps are certified
// or refuted, never silently skipped).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/random.hpp"
#include "cup/scenario_builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "protocol/sink_search.hpp"

namespace bftcup {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

graph::Digraph complete_graph(std::uint64_t n) {
  graph::Digraph g;
  for (std::uint64_t a = 1; a <= n; ++a) {
    for (std::uint64_t b = 1; b <= n; ++b) {
      if (a != b) g.add_edge(p(a), p(b));
    }
  }
  return g;
}

graph::Digraph ring_graph(std::uint64_t n) {
  graph::Digraph g;
  for (std::uint64_t i = 1; i <= n; ++i) {
    g.add_edge(p(i), p(i % n + 1));
  }
  return g;
}

/// κ by the definition: min over ordered pairs of the disjoint-path count.
/// Independent of the pivot machinery under test (disjoint_path_count runs
/// one plain max-flow per pair).
std::size_t reference_kappa(const graph::Digraph& g) {
  const IdSet vertices = g.vertices();
  if (vertices.size() < 2) return 0;
  std::size_t best = vertices.size();
  for (ProcessId a : vertices) {
    for (ProcessId b : vertices) {
      if (a == b) continue;
      best = std::min(best, graph::disjoint_path_count(g, a, b));
    }
  }
  return best;
}

/// Random strongly-connected-ish graph: a ring backbone (guarantees κ >= 1)
/// plus `extra` random chords.
graph::Digraph random_backbone_graph(std::uint64_t n, std::size_t extra,
                                     Rng& rng) {
  graph::Digraph g = ring_graph(n);
  for (std::size_t e = 0; e < extra; ++e) {
    const std::uint64_t a = 1 + rng.next_below(n);
    const std::uint64_t b = 1 + rng.next_below(n);
    if (a != b) g.add_edge(p(a), p(b));
  }
  return g;
}

TEST(PivotConnectivityTest, MatchesAllPairsReferenceAcrossSwitchPoint) {
  Rng rng(4242);
  // Sizes straddle the n = 64 pivot threshold; chord counts sweep sparse
  // (κ = 1) through dense (κ >= 3) regimes.
  for (const std::uint64_t n : {60, 63, 64, 65, 70}) {
    for (const std::size_t extra : {0UL, n / 2UL, 2UL * n, 6UL * n}) {
      const graph::Digraph g = random_backbone_graph(n, extra, rng);
      const std::size_t want = reference_kappa(g);
      EXPECT_EQ(graph::strong_connectivity(g), want)
          << "n=" << n << " extra=" << extra;
      EXPECT_TRUE(graph::is_k_strongly_connected(g, want));
      if (want > 0) {
        EXPECT_FALSE(graph::is_k_strongly_connected(g, want + 1));
      }
    }
  }
}

TEST(PivotConnectivityTest, ClosedFormsAtLargeSizes) {
  // Complete graph: κ = n-1 (certificate, no flow probes). Ring: κ = 1
  // (degree bound). Both above the pivot threshold.
  EXPECT_EQ(graph::strong_connectivity(complete_graph(96)), 95U);
  EXPECT_EQ(graph::strong_connectivity(ring_graph(96)), 1U);
  EXPECT_TRUE(graph::is_k_strongly_connected(complete_graph(96), 95));
  EXPECT_FALSE(graph::is_k_strongly_connected(complete_graph(96), 96));
  EXPECT_TRUE(graph::is_k_strongly_connected(ring_graph(96), 1));
  EXPECT_FALSE(graph::is_k_strongly_connected(ring_graph(96), 2));
  // Not strongly connected at all: κ = 0 regardless of size.
  graph::Digraph chain;
  for (std::uint64_t i = 1; i < 80; ++i) chain.add_edge(p(i), p(i + 1));
  EXPECT_EQ(graph::strong_connectivity(chain), 0U);
}

TEST(BigSccSearchTest, CertifiesCompleteComponentBeyondEveryCap) {
  // K70 cannot be bitmask-enumerated by either strategy; the certification
  // path must still surface the component itself as a candidate with the
  // full threshold range.
  const auto view = protocol::KnowledgeView::omniscient(complete_graph(70));
  for (const bool structured : {false, true}) {
    protocol::SearchOptions options;
    options.incremental = false;
    std::vector<protocol::SinkCandidate> candidates =
        structured
            ? protocol::StructuredSinkSearch(options).candidates(view)
            : protocol::ExhaustiveSinkSearch(options).candidates(view);
    IdSet all;
    for (std::uint64_t i = 1; i <= 70; ++i) all.insert(p(i));
    // g up to (|S1|-1)/2 = 34 for the whole component (κ-1 = 68 is larger).
    bool found_max_g = false;
    for (const protocol::SinkCandidate& c : candidates) {
      if (c.s1 == all && c.g == 34 && c.s2.empty()) found_max_g = true;
    }
    EXPECT_TRUE(found_max_g) << (structured ? "structured" : "exhaustive");
  }
}

TEST(BigSccSearchTest, RefutesRingComponentBeyondEveryCap) {
  // A 70-ring: κ = 1, so the component certifies only at g = 0, and every
  // sampled C \ D breaks the ring (κ = 0) and yields nothing.
  const auto view = protocol::KnowledgeView::omniscient(ring_graph(70));
  protocol::SearchOptions options;
  options.incremental = false;
  const auto candidates =
      protocol::StructuredSinkSearch(options).candidates(view);
  ASSERT_EQ(candidates.size(), 1U);
  EXPECT_EQ(candidates[0].g, 0U);
  EXPECT_EQ(candidates[0].s1.size(), 70U);
}

TEST(BigSccSearchTest, SampledPathIsDeterministic) {
  // The sampling RNG is seeded from the component's member ids, so two
  // independent searches (and the incremental/cold pair) agree exactly.
  Rng rng(99);
  graph::Digraph g = random_backbone_graph(80, 240, rng);
  const auto view = protocol::KnowledgeView::omniscient(g);
  protocol::SearchOptions cold;
  cold.incremental = false;
  const auto first = protocol::StructuredSinkSearch(cold).candidates(view);
  const auto second = protocol::StructuredSinkSearch(cold).candidates(view);
  EXPECT_EQ(first, second);

  protocol::SearchOptions incr;
  incr.incremental = true;
  const auto view2 = protocol::KnowledgeView::omniscient(g);
  EXPECT_EQ(protocol::StructuredSinkSearch(incr).candidates(view2), first);
}

TEST(BigSccSearchTest, FallbackCounterCountsAndResets) {
  protocol::reset_big_scc_fallbacks();
  EXPECT_EQ(protocol::big_scc_fallbacks(), 0U);
  const auto view = protocol::KnowledgeView::omniscient(ring_graph(70));
  protocol::SearchOptions options;
  options.incremental = false;
  const protocol::StructuredSinkSearch search(options);
  (void)search.candidates(view);
  EXPECT_EQ(protocol::big_scc_fallbacks(), 1U);
  (void)search.candidates(view);
  EXPECT_EQ(protocol::big_scc_fallbacks(), 2U);
  protocol::reset_big_scc_fallbacks();
  EXPECT_EQ(protocol::big_scc_fallbacks(), 0U);
}

TEST(BigSccSearchTest, SamplesRecoverPlantedSubcomponent) {
  // K69 plus one weakly attached extra member that joins the SCC but ruins
  // its connectivity: the planted satisfying S1 is C minus that member,
  // which only the sampled C \ D family can reach (|C| = 70 > every cap).
  graph::Digraph g = complete_graph(69);
  // 70 points at one clique member and is pointed back at, so the SCC is
  // all 70 vertices but κ(C) = 1 through the weak member.
  g.add_edge(p(70), p(1));
  g.add_edge(p(1), p(70));
  const auto view = protocol::KnowledgeView::omniscient(g);
  protocol::SearchOptions options;
  options.incremental = false;
  options.removal_cap = 1;
  // There are only 70 single removals; a budget of 300 (4x attempts, seeded
  // deterministically from the member ids) collects essentially all of
  // them, the planted one included.
  options.big_scc_samples = 300;
  const auto candidates =
      protocol::StructuredSinkSearch(options).candidates(view);
  IdSet clique;
  for (std::uint64_t i = 1; i <= 69; ++i) clique.insert(p(i));
  bool found = false;
  for (const protocol::SinkCandidate& c : candidates) {
    if (c.s1 == clique && c.g >= 30) found = true;
  }
  EXPECT_TRUE(found);
}

// End-to-end: the fallback counter must survive the whole run pipeline
// (execute_scenario resets it, the search increments it, RunReport carries
// it out). A ring is the topology where the path genuinely fires during
// discovery: received knowledge stays path fragments until the last PD
// closes the cycle, so the SCC jumps from < 64 straight to n.
TEST(BigSccSearchTest, RunReportCountsFallbackWhenSccJumpsPastCap) {
  graph::generators::GeneratedSystem ring;
  for (std::uint64_t i = 0; i < 70; ++i) ring.graph.add_vertex(p(i + 1));
  for (std::uint64_t i = 0; i < 70; ++i) {
    ring.graph.add_edge_unchecked(p(i + 1), p((i + 1) % 70 + 1));
  }
  ring.f = 0;
  for (std::uint64_t i = 0; i < 70; ++i) ring.sink.insert(p(i + 1));
  const auto report =
      cup::ScenarioBuilder(ring)
          .mode(cup::Mode::kAuth)
          .seed(17)
          .search(std::make_shared<protocol::StructuredSinkSearch>())
          .run();
  EXPECT_TRUE(report.all_correct_decided);
  EXPECT_TRUE(report.agreement);
  EXPECT_GT(report.big_scc_fallbacks, 0U);
}

// Counter-case: a complete K70 run decides WITHOUT the fallback path. A
// node's received SCC grows one PD at a time, so at exactly 63 received it
// already certifies the sink with S2 = the 7 known-but-unreceived members —
// the enumeration cap is never crossed. Documents that the counter is a
// "view jumped past the cap" diagnostic, not a "the system is big" one.
TEST(BigSccSearchTest, CompleteGraphRunCertifiesBelowCapViaEscapeSet) {
  graph::generators::GeneratedSystem big;
  for (std::uint64_t i = 1; i <= 70; ++i) big.graph.add_vertex(p(i));
  for (std::uint64_t a = 1; a <= 70; ++a) {
    for (std::uint64_t b = 1; b <= 70; ++b) {
      if (a != b) big.graph.add_edge_unchecked(p(a), p(b));
    }
  }
  big.faulty.insert(p(1));
  big.f = 1;
  for (std::uint64_t i = 1; i <= 70; ++i) big.sink.insert(p(i));
  const auto report =
      cup::ScenarioBuilder(big)
          .mode(cup::Mode::kAuth)
          .seed(17)
          .search(std::make_shared<protocol::StructuredSinkSearch>())
          .run();
  EXPECT_TRUE(report.all_correct_decided);
  EXPECT_TRUE(report.agreement);
  EXPECT_EQ(report.big_scc_fallbacks, 0U);
}

}  // namespace
}  // namespace bftcup

// Pins every property the paper's text states about its figures.
#include <gtest/gtest.h>

#include "graph/condensation.hpp"
#include "graph/connectivity.hpp"
#include "graph/figures.hpp"
#include "graph/osr.hpp"

namespace bftcup::graph::figures {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

TEST(Fig1aTest, Pd1IsAsStatedInThePaper) {
  const auto inst = fig1a();
  EXPECT_EQ(inst.graph.out_neighbors(p(1)), (IdSet{p(2), p(3), p(4)}));
}

TEST(Fig1aTest, RemovingByzantine4SplitsTheGraph) {
  const auto inst = fig1a();
  const IdSet correct = inst.graph.vertices().set_difference(inst.faulty);
  const Digraph safe = inst.graph.induced(correct);
  EXPECT_FALSE(safe.weakly_connected());
}

TEST(Fig1aTest, CannotReachOtherClusterWithout4) {
  const auto inst = fig1a();
  const Digraph safe =
      inst.graph.induced(inst.graph.vertices().set_difference(inst.faulty));
  // {1,2,3} cannot acquire knowledge about {5,...,8} (paper caption).
  const IdSet reach = safe.reachable_from(p(1));
  EXPECT_FALSE(reach.contains(p(5)));
  EXPECT_FALSE(reach.contains(p(8)));
}

TEST(Fig1bTest, Pd1IsAsStatedInThePaper) {
  const auto inst = fig1b();
  EXPECT_EQ(inst.graph.out_neighbors(p(1)), (IdSet{p(2), p(3), p(4)}));
}

TEST(Fig1bTest, SafeSinkIs123) {
  const auto inst = fig1b();
  const Digraph safe =
      inst.graph.induced(inst.graph.vertices().set_difference(inst.faulty));
  EXPECT_EQ(unique_sink_members(safe), (IdSet{p(1), p(2), p(3)}));
}

TEST(Fig1bTest, ByzantineIsASinkMemberOfTheFullGraph) {
  const auto inst = fig1b();
  EXPECT_TRUE(unique_sink_members(inst.graph).contains(p(4)));
}

TEST(Fig2Test, SystemsAAndBAre2Osr) {
  for (const auto& inst : {fig2a(), fig2b()}) {
    const Digraph safe =
        inst.graph.induced(inst.graph.vertices().set_difference(inst.faulty));
    EXPECT_TRUE(check_k_osr(safe, 2).satisfied);
  }
}

TEST(Fig2Test, SystemAbIs1OsrAllCorrect) {
  const auto inst = fig2c();
  EXPECT_TRUE(inst.faulty.empty());
  EXPECT_TRUE(check_k_osr(inst.graph, 1).satisfied);
  EXPECT_FALSE(check_k_osr(inst.graph, 2).satisfied);
}

TEST(Fig2Test, AbContainsBothSystemsEdges) {
  const auto ab = fig2c();
  const auto a = fig2a();
  for (ProcessId v : a.graph.vertices()) {
    for (ProcessId w : a.graph.out_neighbors(v)) {
      EXPECT_TRUE(ab.graph.has_edge(v, w));
    }
  }
  EXPECT_TRUE(ab.graph.has_edge(p(4), p(5)));
  EXPECT_TRUE(ab.graph.has_edge(p(5), p(4)));
}

TEST(Fig3Test, SharedProcessesHaveIdenticalPds) {
  // The indistinguishability argument requires {1,2,3,4,6} to look the same
  // in both systems.
  const auto a = fig3a();
  const auto b = fig3b();
  for (std::uint64_t id : {1, 2, 3, 4, 6}) {
    EXPECT_EQ(a.graph.out_neighbors(p(id)), b.graph.out_neighbors(p(id)))
        << "PD_" << id;
  }
}

TEST(Fig3Test, Fig3aSinkIsTriangle578) {
  const auto inst = fig3a();
  const Digraph safe =
      inst.graph.induced(inst.graph.vertices().set_difference(inst.faulty));
  EXPECT_EQ(unique_sink_members(safe), (IdSet{p(5), p(7), p(8)}));
  EXPECT_EQ(strong_connectivity(safe.induced({p(5), p(7), p(8)})), 2U);
}

TEST(Fig3Test, Fig3bSinkIsK5) {
  const auto inst = fig3b();
  const Digraph safe =
      inst.graph.induced(inst.graph.vertices().set_difference(inst.faulty));
  EXPECT_EQ(unique_sink_members(safe), inst.expected_sink);
  EXPECT_TRUE(check_k_osr(safe, 3).satisfied);  // paper: "a 3-OSR PD"
}

TEST(Fig3Test, NobodyInS1Knows8InFig3a) {
  const auto inst = fig3a();
  for (std::uint64_t id : {1, 2, 3, 4, 6}) {
    EXPECT_FALSE(inst.graph.out_neighbors(p(id)).contains(p(8)));
  }
}

TEST(Fig4Test, Fig4aHasTheTwoExtraLinks) {
  const auto inst = fig4a();
  EXPECT_TRUE(inst.graph.has_edge(p(6), p(3)));
  EXPECT_TRUE(inst.graph.has_edge(p(7), p(2)));
}

TEST(Fig4Test, Fig4aFullGraphSinkDiffersFromCore) {
  const auto inst = fig4a();
  // Full graph is one big SCC (sink = everything) while the core is only
  // {1,2,3,4} — the caption's "sink differs from core".
  EXPECT_EQ(unique_sink_members(inst.graph), inst.graph.vertices());
  EXPECT_NE(unique_sink_members(inst.graph), inst.expected_core);
}

TEST(Fig4Test, Fig4bSinkEqualsCore) {
  const auto inst = fig4b();
  const Digraph safe =
      inst.graph.induced(inst.graph.vertices().set_difference(inst.faulty));
  EXPECT_EQ(unique_sink_members(safe), inst.expected_core);
}

TEST(Fig4Test, Fig4bPeripheryIsASimpleCycle) {
  const auto inst = fig4b();
  const IdSet periphery = {p(1), p(2), p(3), p(4), p(5), p(6), p(7)};
  const Digraph ring = inst.graph.induced(periphery);
  EXPECT_EQ(strong_connectivity(ring), 1U);
}

TEST(Fig4Test, Fig4bEveryPeripheryProcessKnowsThreeCoreMembers) {
  const auto inst = fig4b();
  const IdSet core_full = {p(8), p(9), p(10), p(11), p(12)};
  for (std::uint64_t id = 1; id <= 7; ++id) {
    const IdSet targets =
        inst.graph.out_neighbors(p(id)).set_intersection(core_full);
    EXPECT_EQ(targets.size(), 3U) << "process " << id;
  }
}

TEST(AllFiguresTest, FaultyWithinThreshold) {
  for (const auto& inst : {fig1a(), fig1b(), fig2a(), fig2b(), fig2c(),
                           fig3a(), fig3b(), fig4a(), fig4b()}) {
    EXPECT_LE(inst.faulty.size(), inst.f);
  }
}

}  // namespace
}  // namespace bftcup::graph::figures

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace bftcup::sim {
namespace {

using test::ScriptedProcess;

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

msg::Message ping() {
  msg::Message m;
  m.type = msg::MsgType::kGetPds;
  return m;
}

TEST(SimulatorTest, DeliversMessagesWithinDelta) {
  Simulator::Options options;
  options.net.gst = 0;
  options.net.delta = 10;
  Simulator simulator(options);

  SimTime delivered_at = -1;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) { ctx.send(p(2), ping()); });
  auto b = std::make_unique<ScriptedProcess>(p(2));
  b->on_message_do([&](ProcessId from, const msg::Message&, Context& ctx) {
    EXPECT_EQ(from, p(1));
    delivered_at = ctx.now();
  });
  simulator.add_process(std::move(a));
  simulator.add_process(std::move(b));
  simulator.run();

  EXPECT_GE(delivered_at, 1);
  EXPECT_LE(delivered_at, 10);
  EXPECT_EQ(simulator.trace().messages_sent(), 1U);
  EXPECT_EQ(simulator.trace().messages_delivered(), 1U);
}

TEST(SimulatorTest, PreGstMessagesArriveByGstPlusDelta) {
  Simulator::Options options;
  options.net.gst = 500;
  options.net.delta = 10;
  options.seed = 3;
  Simulator simulator(options);

  std::vector<SimTime> arrivals;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) {
    for (int i = 0; i < 50; ++i) ctx.send(p(2), ping());
  });
  auto b = std::make_unique<ScriptedProcess>(p(2));
  b->on_message_do([&](ProcessId, const msg::Message&, Context& ctx) {
    arrivals.push_back(ctx.now());
  });
  simulator.add_process(std::move(a));
  simulator.add_process(std::move(b));
  simulator.run();

  ASSERT_EQ(arrivals.size(), 50U);
  bool any_late = false;  // adversary should actually use the pre-GST slack
  for (SimTime t : arrivals) {
    EXPECT_LE(t, 510);
    any_late |= (t > 10);
  }
  EXPECT_TRUE(any_late);
}

TEST(SimulatorTest, DeterministicReplay) {
  auto run_once = [] {
    Simulator::Options options;
    options.seed = 77;
    options.net.gst = 100;
    Simulator simulator(options);
    std::vector<SimTime> arrivals;
    auto a = std::make_unique<ScriptedProcess>(p(1));
    a->on_start_do([](Context& ctx) {
      for (int i = 0; i < 20; ++i) ctx.send(p(2), ping());
    });
    auto b = std::make_unique<ScriptedProcess>(p(2));
    b->on_message_do([&](ProcessId, const msg::Message&, Context& ctx) {
      arrivals.push_back(ctx.now());
    });
    simulator.add_process(std::move(a));
    simulator.add_process(std::move(b));
    simulator.run();
    return arrivals;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimulatorTest, TimersFireInOrder) {
  Simulator::Options options;
  Simulator simulator(options);
  std::vector<int> fired;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) {
    ctx.set_timer(30, 3);
    ctx.set_timer(10, 1);
    ctx.set_timer(20, 2);
  });
  a->on_timer_do([&](int kind, Context&) { fired.push_back(kind); });
  simulator.add_process(std::move(a));
  simulator.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SendToUnknownIdIsDropped) {
  Simulator::Options options;
  Simulator simulator(options);
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) { ctx.send(p(42), ping()); });
  simulator.add_process(std::move(a));
  simulator.run();
  EXPECT_EQ(simulator.trace().messages_sent(), 1U);
  EXPECT_EQ(simulator.trace().messages_delivered(), 0U);
}

TEST(SimulatorTest, HorizonStopsTheRun) {
  Simulator::Options options;
  options.horizon = 100;
  Simulator simulator(options);
  int fires = 0;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) { ctx.set_timer(10, 1); });
  a->on_timer_do([&](int, Context& ctx) {
    ++fires;
    ctx.set_timer(10, 1);  // would re-arm forever
  });
  simulator.add_process(std::move(a));
  simulator.run();
  EXPECT_GT(fires, 0);
  EXPECT_LE(fires, 10);
}

TEST(SimulatorTest, StopConditionEndsEarly) {
  Simulator::Options options;
  Simulator simulator(options);
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) { ctx.set_timer(5, 1); });
  a->on_timer_do([](int, Context& ctx) {
    ctx.decide(7);
    ctx.set_timer(5, 1);
  });
  simulator.add_process(std::move(a));
  simulator.set_stop_condition(
      [](const Trace& t) { return !t.decisions().empty(); });
  simulator.run();
  EXPECT_EQ(simulator.trace().decisions().size(), 1U);
}

TEST(SimulatorTest, BroadcastSkipsSelf) {
  Simulator::Options options;
  Simulator simulator(options);
  int self_deliveries = 0;
  auto a = std::make_unique<ScriptedProcess>(p(1));
  a->on_start_do([](Context& ctx) {
    ctx.broadcast(IdSet{p(1), p(2)}, ping());
  });
  a->on_message_do(
      [&](ProcessId, const msg::Message&, Context&) { ++self_deliveries; });
  auto b = std::make_unique<ScriptedProcess>(p(2));
  simulator.add_process(std::move(a));
  simulator.add_process(std::move(b));
  simulator.run();
  EXPECT_EQ(self_deliveries, 0);
  EXPECT_EQ(simulator.trace().messages_sent(), 1U);
}

TEST(TraceTest, AgreementAndCompletion) {
  Trace trace;
  trace.record_decision(p(1), 5, 10);
  trace.record_decision(p(2), 5, 20);
  const IdSet both = {p(1), p(2)};
  EXPECT_TRUE(trace.agreement(both));
  EXPECT_TRUE(trace.all_decided(both));
  EXPECT_EQ(trace.completion_time(both), 20);
  EXPECT_EQ(trace.common_value(both), 5U);

  trace.record_decision(p(3), 9, 30);
  const IdSet all = {p(1), p(2), p(3)};
  EXPECT_FALSE(trace.agreement(all));
  EXPECT_FALSE(trace.common_value(all).has_value());
}

TEST(TraceTest, DuplicateDecisionIgnored) {
  Trace trace;
  trace.record_decision(p(1), 5, 10);
  trace.record_decision(p(1), 9, 20);  // Integrity: first decision sticks
  EXPECT_EQ(trace.decisions().at(p(1)).value, 5U);
}

TEST(TraceTest, PartialDecisionsNotComplete) {
  Trace trace;
  trace.record_decision(p(1), 5, 10);
  EXPECT_FALSE(trace.all_decided(IdSet{p(1), p(2)}));
  EXPECT_FALSE(trace.completion_time(IdSet{p(1), p(2)}).has_value());
  EXPECT_TRUE(trace.agreement(IdSet{p(1), p(2)}));  // vacuous
}

TEST(DelayPolicyTest, GroupStretchHoldsCrossTraffic) {
  NetConfig cfg;
  cfg.gst = 10'000;
  cfg.delta = 10;
  Rng rng(1);
  GroupStretchPolicy policy(std::make_unique<RandomDelayPolicy>(),
                            IdSet{p(1)}, IdSet{p(2)}, 5'000);
  for (int i = 0; i < 20; ++i) {
    EXPECT_GE(policy.delivery_time(p(1), p(2), 0, rng, cfg), 5'000);
    EXPECT_LE(policy.delivery_time(p(2), p(1), 0, rng, cfg), 10'010);
  }
  // Intra-group traffic is not stretched.
  bool any_fast = false;
  for (int i = 0; i < 50; ++i) {
    any_fast |= policy.delivery_time(p(1), p(3), 0, rng, cfg) < 5'000;
  }
  EXPECT_TRUE(any_fast);
}

TEST(DelayPolicyTest, SlowSenderHoldsAllItsTraffic) {
  NetConfig cfg;
  cfg.gst = 10'000;
  cfg.delta = 10;
  Rng rng(1);
  SlowSenderPolicy policy(std::make_unique<RandomDelayPolicy>(), IdSet{p(9)},
                          3'000);
  EXPECT_GE(policy.delivery_time(p(9), p(1), 0, rng, cfg), 3'000);
  bool any_fast = false;
  for (int i = 0; i < 50; ++i) {
    any_fast |= policy.delivery_time(p(1), p(9), 0, rng, cfg) < 3'000;
  }
  EXPECT_TRUE(any_fast);
}

TEST(DelayPolicyTest, SynchronyCapSaturates) {
  NetConfig cfg;
  cfg.gst = kSimTimeMax - 5;
  cfg.delta = 100;
  EXPECT_EQ(synchrony_cap(0, cfg), kSimTimeMax);
}

TEST(DelayPolicyTest, PostGstRespectsDelta) {
  NetConfig cfg;
  cfg.gst = 0;
  cfg.delta = 7;
  Rng rng(4);
  RandomDelayPolicy policy;
  for (int i = 0; i < 200; ++i) {
    const SimTime t = policy.delivery_time(p(1), p(2), 100, rng, cfg);
    EXPECT_GT(t, 100);
    EXPECT_LE(t, 107);
  }
}

}  // namespace
}  // namespace bftcup::sim

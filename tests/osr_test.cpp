#include <gtest/gtest.h>

#include "graph/figures.hpp"
#include "graph/osr.hpp"

namespace bftcup::graph {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

Digraph complete(std::initializer_list<std::uint64_t> ids) {
  Digraph g;
  for (auto a : ids) {
    for (auto b : ids) {
      if (a != b) g.add_edge(p(a), p(b));
    }
  }
  return g;
}

TEST(OsrTest, CompleteTriangleIs2Osr) {
  const Digraph g = complete({1, 2, 3});
  const OsrReport r = check_k_osr(g, 2);
  EXPECT_TRUE(r.satisfied) << r.reason;
  EXPECT_EQ(r.sink, (IdSet{p(1), p(2), p(3)}));
}

TEST(OsrTest, DisconnectedFails) {
  Digraph g = complete({1, 2, 3});
  g.add_vertex(p(9));
  const OsrReport r = check_k_osr(g, 1);
  EXPECT_FALSE(r.satisfied);
  EXPECT_NE(r.reason.find("not connected"), std::string::npos);
}

TEST(OsrTest, TwoSinksFail) {
  Digraph g = complete({1, 2});
  Digraph h = complete({3, 4});
  for (ProcessId v : h.vertices()) {
    for (ProcessId w : h.out_neighbors(v)) g.add_edge(v, w);
  }
  g.add_edge(p(5), p(1));
  g.add_edge(p(5), p(3));  // 5 connects both, but two sink SCCs remain
  const OsrReport r = check_k_osr(g, 1);
  EXPECT_FALSE(r.satisfied);
  EXPECT_NE(r.reason.find("sinks"), std::string::npos);
}

TEST(OsrTest, SingletonSinkRejectedForPositiveK) {
  Digraph g;
  g.add_edge(p(2), p(1));
  g.add_edge(p(3), p(1));
  g.add_edge(p(3), p(2));
  EXPECT_FALSE(check_k_osr(g, 1).satisfied);
}

TEST(OsrTest, NonSinkNeedsKDisjointPathsIntoSink) {
  Digraph g = complete({1, 2, 3});
  g.add_edge(p(9), p(1));  // only one path start
  EXPECT_TRUE(check_k_osr(g, 1).satisfied);
  EXPECT_FALSE(check_k_osr(g, 2).satisfied);
  g.add_edge(p(9), p(2));
  EXPECT_TRUE(check_k_osr(g, 2).satisfied);
}

TEST(OsrTest, MaxOsrKOfCompleteGraphs) {
  EXPECT_EQ(max_osr_k(complete({1, 2, 3})), 2U);
  EXPECT_EQ(max_osr_k(complete({1, 2, 3, 4})), 3U);
}

TEST(OsrTest, MaxOsrKLimitedByNonSinkFanIn) {
  Digraph g = complete({1, 2, 3, 4});
  g.add_edge(p(9), p(1));
  g.add_edge(p(9), p(2));
  EXPECT_EQ(max_osr_k(g), 2U);  // sink κ=3 but 9 has only 2 entry points
}

TEST(OsrTest, MaxOsrKZeroCases) {
  EXPECT_EQ(max_osr_k(Digraph{}), 0U);
  Digraph two_sinks;
  two_sinks.add_edge(p(1), p(2));
  two_sinks.add_edge(p(1), p(3));
  EXPECT_EQ(max_osr_k(two_sinks), 0U);
}

TEST(BftCupRequirementsTest, Fig1bSatisfies) {
  const auto inst = figures::fig1b();
  const BftCupReport r =
      check_bft_cup_requirements(inst.graph, inst.faulty, inst.f);
  EXPECT_TRUE(r.satisfied) << r.reason;
  EXPECT_EQ(r.safe_sink, inst.expected_sink);
}

TEST(BftCupRequirementsTest, Fig1aFails) {
  const auto inst = figures::fig1a();
  const BftCupReport r =
      check_bft_cup_requirements(inst.graph, inst.faulty, inst.f);
  EXPECT_FALSE(r.satisfied);
}

TEST(BftCupRequirementsTest, TooManyFaultyRejected) {
  const auto inst = figures::fig1b();
  IdSet faulty = inst.faulty;
  faulty.insert(p(5));
  const BftCupReport r = check_bft_cup_requirements(inst.graph, faulty, 1);
  EXPECT_FALSE(r.satisfied);
  EXPECT_NE(r.reason.find("more than f"), std::string::npos);
}

TEST(BftCupRequirementsTest, SinkSizeBelowTwoFPlusOneRejected) {
  // Complete triangle with f = 1 and one faulty *sink* member: safe sink has
  // only 2 < 2f+1 processes.
  const Digraph g = complete({1, 2, 3});
  const BftCupReport r = check_bft_cup_requirements(g, {p(3)}, 1);
  EXPECT_FALSE(r.satisfied);
}

TEST(BftCupRequirementsTest, Fig3aSatisfiesWithSink578) {
  const auto inst = figures::fig3a();
  const BftCupReport r =
      check_bft_cup_requirements(inst.graph, inst.faulty, inst.f);
  EXPECT_TRUE(r.satisfied) << r.reason;
  EXPECT_EQ(r.safe_sink, inst.expected_sink);
}

TEST(BftCupRequirementsTest, Fig3bSatisfiesWithF2) {
  const auto inst = figures::fig3b();
  const BftCupReport r =
      check_bft_cup_requirements(inst.graph, inst.faulty, inst.f);
  EXPECT_TRUE(r.satisfied) << r.reason;
  EXPECT_EQ(r.safe_sink, inst.expected_sink);
}

}  // namespace
}  // namespace bftcup::graph

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/maxflow.hpp"

namespace bftcup::graph {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

Digraph complete(std::size_t n) {
  Digraph g;
  for (std::uint64_t a = 1; a <= n; ++a) {
    for (std::uint64_t b = 1; b <= n; ++b) {
      if (a != b) g.add_edge(p(a), p(b));
    }
  }
  return g;
}

Digraph directed_cycle(std::size_t n) {
  Digraph g;
  for (std::uint64_t i = 1; i <= n; ++i) {
    g.add_edge(p(i), p(i % n + 1));
  }
  return g;
}

TEST(MaxFlowTest, ResetReusesTheArenaAcrossNetworks) {
  MaxFlow flow(4);
  flow.add_edge(0, 1, 3);
  flow.add_edge(1, 2, 2);
  flow.add_edge(2, 3, 5);
  EXPECT_EQ(flow.run(0, 3), 2);

  // Smaller network after reset: stale rows must not leak edges.
  flow.reset(2);
  flow.add_edge(0, 1, 7);
  EXPECT_EQ(flow.run(0, 1), 7);

  // Larger network after reset.
  flow.reset(5);
  flow.add_edge(0, 1, 1);
  flow.add_edge(0, 2, 1);
  flow.add_edge(1, 4, 1);
  flow.add_edge(2, 3, 1);
  flow.add_edge(3, 4, 1);
  EXPECT_EQ(flow.run(0, 4), 2);
}

TEST(MaxFlowTest, SimplePath) {
  MaxFlow flow(4);
  flow.add_edge(0, 1, 3);
  flow.add_edge(1, 2, 2);
  flow.add_edge(2, 3, 5);
  EXPECT_EQ(flow.run(0, 3), 2);
}

TEST(MaxFlowTest, ParallelPaths) {
  MaxFlow flow(4);
  flow.add_edge(0, 1, 1);
  flow.add_edge(1, 3, 1);
  flow.add_edge(0, 2, 1);
  flow.add_edge(2, 3, 1);
  EXPECT_EQ(flow.run(0, 3), 2);
}

TEST(MaxFlowTest, LimitStopsEarly) {
  MaxFlow flow(2);
  flow.add_edge(0, 1, 10);
  EXPECT_EQ(flow.run(0, 1, 3), 3);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  MaxFlow flow(3);
  flow.add_edge(0, 1, 1);
  EXPECT_EQ(flow.run(0, 2), 0);
}

TEST(MaxFlowTest, ClassicNetwork) {
  // CLRS-style example with a known max flow of 23.
  MaxFlow flow(6);
  flow.add_edge(0, 1, 16);
  flow.add_edge(0, 2, 13);
  flow.add_edge(1, 2, 10);
  flow.add_edge(2, 1, 4);
  flow.add_edge(1, 3, 12);
  flow.add_edge(3, 2, 9);
  flow.add_edge(2, 4, 14);
  flow.add_edge(4, 3, 7);
  flow.add_edge(3, 5, 20);
  flow.add_edge(4, 5, 4);
  EXPECT_EQ(flow.run(0, 5), 23);
}

TEST(DisjointPathsTest, DirectEdgeCountsAsOnePath) {
  Digraph g;
  g.add_edge(p(1), p(2));
  EXPECT_EQ(disjoint_path_count(g, p(1), p(2)), 1U);
  EXPECT_EQ(disjoint_path_count(g, p(2), p(1)), 0U);
}

TEST(DisjointPathsTest, CompleteGraphHasNMinusOne) {
  const Digraph g = complete(5);
  EXPECT_EQ(disjoint_path_count(g, p(1), p(2)), 4U);
}

TEST(DisjointPathsTest, InternalBottleneck) {
  // Two paths 1->a->4 and 1->b->4 sharing nothing: 2 disjoint paths; then
  // all traffic through c only: 1.
  Digraph g;
  g.add_edge(p(1), p(2));
  g.add_edge(p(2), p(4));
  g.add_edge(p(1), p(3));
  g.add_edge(p(3), p(4));
  EXPECT_EQ(disjoint_path_count(g, p(1), p(4)), 2U);

  Digraph h;
  h.add_edge(p(1), p(2));
  h.add_edge(p(1), p(3));
  h.add_edge(p(2), p(5));
  h.add_edge(p(3), p(5));
  h.add_edge(p(5), p(4));
  EXPECT_EQ(disjoint_path_count(h, p(1), p(4)), 1U);  // 5 is a cut vertex
}

TEST(DisjointPathsTest, HasKDisjointPaths) {
  const Digraph g = complete(4);
  EXPECT_TRUE(has_k_disjoint_paths(g, p(1), p(2), 3));
  EXPECT_FALSE(has_k_disjoint_paths(g, p(1), p(2), 4));
  EXPECT_TRUE(has_k_disjoint_paths(g, p(1), p(2), 0));  // vacuous
}

TEST(DisjointPathsTest, MissingEndpoints) {
  const Digraph g = complete(3);
  EXPECT_EQ(disjoint_path_count(g, p(1), p(99)), 0U);
  EXPECT_EQ(disjoint_path_count(g, p(1), p(1)), 0U);
}

TEST(StrongConnectivityTest, CompleteGraphs) {
  for (std::size_t n = 2; n <= 6; ++n) {
    EXPECT_EQ(strong_connectivity(complete(n)), n - 1) << "K_" << n;
  }
}

TEST(StrongConnectivityTest, DirectedCycleIsOne) {
  EXPECT_EQ(strong_connectivity(directed_cycle(6)), 1U);
}

TEST(StrongConnectivityTest, NotStronglyConnectedIsZero) {
  Digraph g;
  g.add_edge(p(1), p(2));
  EXPECT_EQ(strong_connectivity(g), 0U);
  EXPECT_EQ(strong_connectivity(Digraph{}), 0U);
  Digraph single;
  single.add_vertex(p(1));
  EXPECT_EQ(strong_connectivity(single), 0U);
}

TEST(StrongConnectivityTest, CompleteMinusOneEdge) {
  Digraph g = complete(4);
  // Remove edge 1->2 by rebuilding.
  Digraph h;
  for (ProcessId v : g.vertices()) {
    for (ProcessId w : g.out_neighbors(v)) {
      if (!(v == p(1) && w == p(2))) h.add_edge(v, w);
    }
  }
  // κ(1,2) drops to 2 (paths through 3 and 4 only).
  EXPECT_EQ(strong_connectivity(h), 2U);
}

TEST(StrongConnectivityTest, IsKStronglyConnectedAgreesWithKappa) {
  const Digraph g = complete(5);
  for (std::size_t k = 1; k <= 4; ++k) {
    EXPECT_TRUE(is_k_strongly_connected(g, k));
  }
  EXPECT_FALSE(is_k_strongly_connected(g, 5));
}

TEST(StrongConnectivityTest, TwoTrianglesBridged) {
  // Triangles {1,2,3} and {4,5,6} joined by 3<->4: κ = 1.
  Digraph g;
  auto tri = [&](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
    g.add_edge(p(a), p(b));
    g.add_edge(p(b), p(a));
    g.add_edge(p(b), p(c));
    g.add_edge(p(c), p(b));
    g.add_edge(p(a), p(c));
    g.add_edge(p(c), p(a));
  };
  tri(1, 2, 3);
  tri(4, 5, 6);
  g.add_edge(p(3), p(4));
  g.add_edge(p(4), p(3));
  EXPECT_EQ(strong_connectivity(g), 1U);
}

TEST(AllPairsTest, NonSinkToSinkPaths) {
  // 5 -> {1,2} where {1,2,3} is a complete triangle: 5 has 2 disjoint paths
  // to each of 1, 2, 3.
  Digraph g = complete(3);
  g.add_edge(p(5), p(1));
  g.add_edge(p(5), p(2));
  EXPECT_TRUE(all_pairs_k_connected(g, {p(5)}, {p(1), p(2), p(3)}, 2));
  EXPECT_FALSE(all_pairs_k_connected(g, {p(5)}, {p(1), p(2), p(3)}, 3));
}

TEST(AllPairsTest, SkipsSelfPairs) {
  const Digraph g = complete(3);
  EXPECT_TRUE(all_pairs_k_connected(g, {p(1), p(2)}, {p(1), p(2)}, 2));
}

}  // namespace
}  // namespace bftcup::graph

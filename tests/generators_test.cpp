#include <gtest/gtest.h>

#include <algorithm>

#include "graph/connectivity.hpp"
#include "graph/extended_osr.hpp"
#include "graph/generators.hpp"
#include "graph/osr.hpp"
#include "graph/scc.hpp"

namespace bftcup::graph::generators {
namespace {

class RandomBftCupTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBftCupTest, SatisfiesTheoremOneRequirements) {
  Rng rng(GetParam());
  for (std::size_t f = 1; f <= 2; ++f) {
    BftCupParams params;
    params.f = f;
    params.sink_size = 2 * f + 1 + f;  // room for f Byzantine inside
    params.non_sink = 4;
    params.byzantine_in_sink = f;
    const GeneratedSystem sys = random_bft_cup(params, rng);
    const BftCupReport r =
        check_bft_cup_requirements(sys.graph, sys.faulty, sys.f);
    EXPECT_TRUE(r.satisfied) << "f=" << f << ": " << r.reason;
    EXPECT_EQ(r.safe_sink, sys.sink.set_difference(sys.faulty));
    EXPECT_LE(sys.faulty.size(), f);
  }
}

TEST_P(RandomBftCupTest, ByzantinePlacementRespectsParams) {
  Rng rng(GetParam() ^ 0x55);
  BftCupParams params;
  params.f = 2;
  params.sink_size = 7;
  params.non_sink = 5;
  params.byzantine_in_sink = 1;
  const GeneratedSystem sys = random_bft_cup(params, rng);
  const IdSet byz_in_sink = sys.faulty.set_intersection(sys.sink);
  EXPECT_EQ(byz_in_sink.size(), 1U);
  EXPECT_EQ(sys.faulty.size(), 2U);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBftCupTest,
                         ::testing::Values(1, 2, 3, 7, 11, 13, 42, 99));

class RandomCupftTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCupftTest, SatisfiesBftCupftRequirements) {
  Rng rng(GetParam());
  CupftParams params;
  params.f = 1;
  params.core_size = 5;
  params.periphery = 5;
  params.byzantine_in_core = 1;
  const GeneratedSystem sys = random_cupft(params, rng);
  const BftCupftReport r =
      check_bft_cupft_requirements(sys.graph, sys.faulty, sys.f);
  EXPECT_TRUE(r.satisfied) << r.reason;
  EXPECT_EQ(r.safe_core, sys.sink.set_difference(sys.faulty));
}

TEST_P(RandomCupftTest, PeripheryCannotSelfDeclare) {
  Rng rng(GetParam() ^ 0x77);
  CupftParams params;
  params.f = 1;
  params.core_size = 5;
  params.periphery = 6;
  params.byzantine_in_core = 0;
  const GeneratedSystem sys = random_cupft(params, rng);
  for (const SinkInfo& s : all_sinks(sys.graph)) {
    if (s.members == sys.sink || sys.sink.is_subset_of(s.members)) continue;
    // Anything that is not (a superset of) the core must be weaker.
    EXPECT_LT(s.k(), 2U);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCupftTest,
                         ::testing::Values(1, 2, 3, 7, 11, 13, 42, 99));

TEST(SplitBrainTest, CombinedGraphIsWeaklyConnectedAndBridged) {
  Rng rng(5);
  BftCupParams side;
  side.f = 1;
  side.sink_size = 4;
  side.non_sink = 0;
  side.byzantine_in_sink = 1;
  const GeneratedSystem sys = random_split_brain(side, rng);
  EXPECT_TRUE(sys.graph.weakly_connected());
  EXPECT_EQ(sys.graph.vertex_count(), 8U);
  // Exactly one pair of cross edges (a <-> b with b >= 1000).
  std::size_t cross = 0;
  for (ProcessId v : sys.graph.vertices()) {
    for (ProcessId w : sys.graph.out_neighbors(v)) {
      if ((v.raw() < 1000) != (w.raw() < 1000)) ++cross;
    }
  }
  EXPECT_EQ(cross, 2U);
}

TEST(SplitBrainTest, BothHalvesTieAsSinks) {
  Rng rng(9);
  BftCupParams side;
  side.f = 1;
  side.sink_size = 4;
  side.non_sink = 0;
  side.byzantine_in_sink = 1;
  const GeneratedSystem sys = random_split_brain(side, rng);
  // The fatal Observation-1 structure: the combined graph cannot satisfy
  // property C1.
  const ExtendedOsrReport r = check_extended_k_osr(sys.graph, 1);
  EXPECT_FALSE(r.satisfied);
}

class ScaleFamilyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScaleFamilyTest, CommitteeOfCommitteesStructure) {
  Rng rng(GetParam());
  HierarchyParams params;
  params.total = 600;
  const GeneratedSystem sys = committee_of_committees(params, rng);

  EXPECT_GE(sys.graph.vertex_count(), params.total);
  EXPECT_EQ(sys.faulty.size(), params.f);
  EXPECT_TRUE(sys.faulty.is_subset_of(sys.sink));
  EXPECT_EQ(sys.sink.size(), params.root_size);

  // Sub-quadratic by construction: each non-root member emits at most
  // 1 + parent_fanout edges, the root is the only clique.
  const std::size_t n = sys.graph.vertex_count();
  const std::size_t edge_budget =
      params.root_size * (params.root_size - 1) +
      n * (1 + params.parent_fanout);
  EXPECT_LE(sys.graph.edge_count(), edge_budget);

  // The root is the unique certifiable sink: it is the only SCC with
  // κ >= f+1 (every other committee is a ring, κ = 1), checked via the
  // omniscient predicate on the safe graph.
  const Digraph safe = sys.graph.induced(
      sys.graph.vertices().set_difference(sys.faulty));
  const IdSet safe_root = sys.sink.set_difference(sys.faulty);
  EXPECT_GE(strong_connectivity(safe.induced(safe_root)), params.f + 1);
  // Every vertex reaches the root (discovery can always converge).
  for (ProcessId v : safe.vertices()) {
    EXPECT_TRUE(safe_root.is_subset_of(safe.reachable_from(v))) << v.raw();
  }
}

TEST_P(ScaleFamilyTest, AdhocMeshStructure) {
  Rng rng(GetParam() ^ 0x33);
  AdhocMeshParams params;
  params.total = 600;
  const GeneratedSystem sys = adhoc_mesh(params, rng);

  EXPECT_EQ(sys.graph.vertex_count(), params.total);
  EXPECT_LE(sys.faulty.size(), params.f);
  EXPECT_EQ(sys.sink.size(), params.sink_size);

  const std::size_t edge_budget =
      params.sink_size * (params.sink_size - 1) +
      params.total *
          std::max(params.fanout, params.f + 1 + params.byzantine_in_sink);
  EXPECT_LE(sys.graph.edge_count(), edge_budget);

  // Layered DAG periphery: every non-sink vertex is a singleton SCC, i.e.
  // nothing outside the sink clique is on a directed cycle.
  const Digraph safe = sys.graph.induced(
      sys.graph.vertices().set_difference(sys.faulty));
  const IdSet safe_sink = sys.sink.set_difference(sys.faulty);
  EXPECT_GE(strong_connectivity(safe.induced(safe_sink)), params.f + 1);
  for (const IdSet& scc : strongly_connected_components(safe).members) {
    if (scc.size() > 1) EXPECT_EQ(scc, safe_sink);
  }
  for (ProcessId v : safe.vertices()) {
    if (sys.sink.contains(v)) continue;
    EXPECT_TRUE(safe_sink.is_subset_of(safe.reachable_from(v))) << v.raw();
  }
}

TEST(ScaleFamilyTest, SameSeedSameSystem) {
  for (int which = 0; which < 2; ++which) {
    Rng rng_a(1234);
    Rng rng_b(1234);
    GeneratedSystem a, b;
    if (which == 0) {
      HierarchyParams params;
      params.total = 300;
      a = committee_of_committees(params, rng_a);
      b = committee_of_committees(params, rng_b);
    } else {
      AdhocMeshParams params;
      params.total = 300;
      a = adhoc_mesh(params, rng_a);
      b = adhoc_mesh(params, rng_b);
    }
    EXPECT_EQ(a.graph, b.graph);
    EXPECT_EQ(a.faulty, b.faulty);
    EXPECT_EQ(a.sink, b.sink);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScaleFamilyTest,
                         ::testing::Values(1, 7, 42));

}  // namespace
}  // namespace bftcup::graph::generators

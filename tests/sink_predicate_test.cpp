// Pins the isSink evaluations the paper states explicitly.
#include <gtest/gtest.h>

#include "graph/figures.hpp"
#include "protocol/sink_predicate.hpp"

namespace bftcup::protocol {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

KnowledgeView omniscient(const graph::Digraph& g) {
  return KnowledgeView::omniscient(g);
}

TEST(IsSinkTest, Fig1bScenarioFromSectionIII) {
  // "process 2 is slow, process 4 sends P = {1,2,3} as its PD": process 1's
  // view holds PDs of 1, 3, 4 — the conditions hold with S1 = {1,3,4},
  // S2 = {2}.
  const auto inst = graph::figures::fig1b();
  KnowledgeView view(p(1), inst.graph.out_neighbors(p(1)));
  view.add_pd(p(3), inst.graph.out_neighbors(p(3)));
  view.add_pd(p(4), IdSet{p(1), p(2), p(3)});

  const auto s2 = is_sink(view, 1, IdSet{p(1), p(3), p(4)});
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(*s2, (IdSet{p(2)}));
  EXPECT_TRUE(is_sink(view, 1, IdSet{p(1), p(3), p(4)}, IdSet{p(2)}));
}

TEST(IsSinkTest, Fig1bFullKnowledgeS1AllCorrectSink) {
  // Scenario I: Byzantine 4 silent, all correct PDs received.
  const auto inst = graph::figures::fig1b();
  const IdSet correct = inst.graph.vertices().set_difference(inst.faulty);
  KnowledgeView view(p(1), inst.graph.out_neighbors(p(1)));
  for (ProcessId id : correct) {
    view.add_pd(id, inst.graph.out_neighbors(id));
  }
  const auto s2 = is_sink(view, 1, IdSet{p(1), p(2), p(3)});
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(*s2, (IdSet{p(4)}));  // silent Byzantine absorbed via P4
}

TEST(IsSinkTest, ObservationOneOnFig2c) {
  // "isSink(1, {1,2,3}, {4}) = true and isSink(1, {6,7,8}, {5}) = true".
  const auto view = omniscient(graph::figures::fig2c().graph);
  EXPECT_TRUE(is_sink(view, 1, IdSet{p(1), p(2), p(3)}, IdSet{p(4)}));
  EXPECT_TRUE(is_sink(view, 1, IdSet{p(6), p(7), p(8)}, IdSet{p(5)}));
}

TEST(IsSinkTest, Fig3aNonSinkDeclaration) {
  // "isSink(2, {1,2,3,4,6}, {5,7}) = true" (Section IV).
  const auto view = omniscient(graph::figures::fig3a().graph);
  EXPECT_TRUE(is_sink(view, 2, IdSet{p(1), p(2), p(3), p(4), p(6)},
                      IdSet{p(5), p(7)}));
}

TEST(IsSinkTest, Fig3aTrueSinkAlsoDeclarable) {
  const auto view = omniscient(graph::figures::fig3a().graph);
  EXPECT_TRUE(is_sink(view, 1, IdSet{p(5), p(7), p(8)}, IdSet{}));
}

TEST(IsSinkTest, P1SizeViolation) {
  const auto view = omniscient(graph::figures::fig2c().graph);
  // |S1| = 2 < 2*1+1.
  EXPECT_FALSE(is_sink(view, 1, IdSet{p(1), p(2)}).has_value());
}

TEST(IsSinkTest, P2ConnectivityViolation) {
  // A directed 3-cycle has κ = 1 < f+1 = 2.
  graph::Digraph g;
  g.add_edge(p(1), p(2));
  g.add_edge(p(2), p(3));
  g.add_edge(p(3), p(1));
  const auto view = omniscient(g);
  EXPECT_FALSE(is_sink(view, 1, IdSet{p(1), p(2), p(3)}).has_value());
}

TEST(IsSinkTest, S1MustBeReceived) {
  const auto inst = graph::figures::fig2c().graph;
  KnowledgeView view(p(1), inst.out_neighbors(p(1)));
  // Process 1 knows 2 and 3 but has not received their PDs.
  EXPECT_FALSE(is_sink(view, 1, IdSet{p(1), p(2), p(3)}).has_value());
}

TEST(IsSinkTest, P3EscapeViolation) {
  // Fig. 4a's B-side: 5->4, 6->3, 7->2 escape and cannot be absorbed.
  const auto view = omniscient(graph::figures::fig4a().graph);
  EXPECT_FALSE(is_sink(view, 1, IdSet{p(5), p(6), p(7), p(8)}).has_value());
  EXPECT_FALSE(is_sink(view, 1, IdSet{p(5), p(6), p(8)}).has_value());
  EXPECT_FALSE(is_sink(view, 1, IdSet{p(6), p(7), p(8)}).has_value());
}

TEST(IsSinkTest, ExplicitS2MustMatchDerived) {
  const auto view = omniscient(graph::figures::fig2c().graph);
  EXPECT_FALSE(is_sink(view, 1, IdSet{p(1), p(2), p(3)}, IdSet{}));
  EXPECT_FALSE(is_sink(view, 1, IdSet{p(1), p(2), p(3)}, IdSet{p(4), p(5)}));
}

TEST(AdmissibleThresholdsTest, CompleteK5) {
  graph::Digraph g;
  for (std::uint64_t a = 1; a <= 5; ++a) {
    for (std::uint64_t b = 1; b <= 5; ++b) {
      if (a != b) g.add_edge(p(a), p(b));
    }
  }
  const auto view = omniscient(g);
  const IdSet all = g.vertices();
  const auto splits = admissible_thresholds(view, all);
  ASSERT_EQ(splits.size(), 3U);  // g ∈ {0, 1, 2}
  EXPECT_EQ(splits.back().g, 2U);
  EXPECT_TRUE(splits.back().s2.empty());
}

TEST(AdmissibleThresholdsTest, UnreceivedS1Empty) {
  KnowledgeView view(p(1), IdSet{p(2)});
  EXPECT_TRUE(admissible_thresholds(view, IdSet{p(2)}).empty());
}

TEST(IsSinkStarTest, Fig2cBothHalves) {
  const auto view = omniscient(graph::figures::fig2c().graph);
  const auto fa = is_sink_star(view, IdSet{p(1), p(2), p(3), p(4)});
  const auto fb = is_sink_star(view, IdSet{p(5), p(6), p(7), p(8)});
  ASSERT_TRUE(fa.has_value());
  ASSERT_TRUE(fb.has_value());
  EXPECT_EQ(*fa, 1U);
  EXPECT_EQ(*fb, 1U);
}

TEST(IsSinkStarTest, RejectsNonSink) {
  const auto view = omniscient(graph::figures::fig4a().graph);
  EXPECT_FALSE(is_sink_star(view, IdSet{p(5), p(6), p(7), p(8)}).has_value());
}

TEST(IsSinkStarTest, MaximalWitnessReturned) {
  // Full fig3b graph: S1 = K5 {1,2,3,4,6} absorbs the Byzantine {5,7} into
  // S2 (every K5 member points at them), witnessing g = 2.
  const auto view = omniscient(graph::figures::fig3b().graph);
  const auto f = is_sink_star(view, view.known());
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, 2U);
}

TEST(IsSinkStarTest, SetNotCoveringDerivedS2Rejected) {
  // {1,2,3,4,6} alone is NOT isSink*-declarable on the full fig3b graph:
  // the derived S2 = {5,7} must be part of the declared set.
  const auto view = omniscient(graph::figures::fig3b().graph);
  EXPECT_FALSE(
      is_sink_star(view, IdSet{p(1), p(2), p(3), p(4), p(6)}).has_value());
}

}  // namespace
}  // namespace bftcup::protocol

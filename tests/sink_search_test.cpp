#include <gtest/gtest.h>

#include <algorithm>

#include "graph/figures.hpp"
#include "graph/generators.hpp"
#include "protocol/sink.hpp"
#include "protocol/sink_search.hpp"

namespace bftcup::protocol {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

bool has_candidate(const std::vector<SinkCandidate>& cs, const IdSet& members,
                   std::size_t g) {
  return std::any_of(cs.begin(), cs.end(), [&](const SinkCandidate& c) {
    return c.g == g && c.members() == members;
  });
}

TEST(ExhaustiveSearchTest, FindsPaperExampleCandidate) {
  const auto inst = graph::figures::fig1b();
  KnowledgeView view(p(1), inst.graph.out_neighbors(p(1)));
  view.add_pd(p(3), inst.graph.out_neighbors(p(3)));
  view.add_pd(p(4), IdSet{p(1), p(2), p(3)});

  const ExhaustiveSinkSearch search;
  const auto candidates = search.candidates(view);
  EXPECT_TRUE(has_candidate(candidates, IdSet{p(1), p(2), p(3), p(4)}, 1));
}

TEST(ExhaustiveSearchTest, EmptyViewNoCandidatesAtPositiveG) {
  KnowledgeView view(p(1), IdSet{p(2)});
  const ExhaustiveSinkSearch search;
  for (const SinkCandidate& c : search.candidates(view)) {
    EXPECT_EQ(c.g, 0U);  // nothing stronger than the trivial candidates
  }
}

TEST(ExhaustiveSearchTest, Fig2cFindsBothHalves) {
  const auto view =
      KnowledgeView::omniscient(graph::figures::fig2c().graph);
  const ExhaustiveSinkSearch search;
  const auto candidates = search.candidates(view);
  EXPECT_TRUE(
      has_candidate(candidates, IdSet{p(1), p(2), p(3), p(4)}, 1));
  EXPECT_TRUE(
      has_candidate(candidates, IdSet{p(5), p(6), p(7), p(8)}, 1));
}

TEST(ExhaustiveSearchTest, OversizedSccTakesCertificationPath) {
  graph::Digraph g;
  for (std::uint64_t a = 1; a <= 8; ++a) {
    for (std::uint64_t b = 1; b <= 8; ++b) {
      if (a != b) g.add_edge(p(a), p(b));
    }
  }
  SearchOptions options;
  options.exhaustive_cap = 4;  // K8's SCC exceeds the cap -> big-SCC path
  const ExhaustiveSinkSearch search(options);
  const auto candidates = search.candidates(KnowledgeView::omniscient(g));
  // The component itself is certified: K8 has κ = 7 and no outside edges,
  // so (S1 = K8, S2 = ∅) is admissible up to g = (|S1|-1)/2 = 3.
  IdSet all;
  for (std::uint64_t a = 1; a <= 8; ++a) all.insert(p(a));
  for (std::size_t g_val : {0U, 1U, 2U, 3U}) {
    EXPECT_TRUE(has_candidate(candidates, all, g_val)) << "g=" << g_val;
  }
  // No subsets beyond the sampled C \ D family sneak in at higher g.
  for (const SinkCandidate& c : candidates) EXPECT_LE(c.g, 3U);
}

TEST(StructuredSearchTest, FindsWholeSccCandidates) {
  // A realistic in-protocol view: an A-side process of fig2c that has
  // received only A-side PDs. The received-knowledge SCC is the K4, which
  // the structured strategy tries directly.
  const auto inst = graph::figures::fig2c();
  KnowledgeView view(p(1), inst.graph.out_neighbors(p(1)));
  for (std::uint64_t id : {2, 3, 4}) {
    view.add_pd(p(id), inst.graph.out_neighbors(p(id)));
  }
  const StructuredSinkSearch search;
  const auto candidates = search.candidates(view);
  EXPECT_TRUE(has_candidate(candidates, IdSet{p(1), p(2), p(3), p(4)}, 1));
}

TEST(StructuredSearchTest, RemovalsRecoverSubsets) {
  // Fig. 1b knowledge with 4's fake PD pointing back: the satisfying
  // S1 = {1,2,3} is the K4 SCC minus one node — reachable with removal_cap 1.
  const auto inst = graph::figures::fig1b();
  KnowledgeView view(p(1), inst.graph.out_neighbors(p(1)));
  view.add_pd(p(2), inst.graph.out_neighbors(p(2)));
  view.add_pd(p(3), inst.graph.out_neighbors(p(3)));
  view.add_pd(p(4), IdSet{p(1), p(2), p(3)});

  SearchOptions options;
  options.removal_cap = 1;
  const StructuredSinkSearch search(options);
  const auto candidates = search.candidates(view);
  EXPECT_TRUE(has_candidate(candidates, IdSet{p(1), p(2), p(3), p(4)}, 1));
}

class StrategyAgreementTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(StrategyAgreementTest, StructuredFindsWhatExhaustiveFinds) {
  // On generated BFT-CUP systems, any member-set the exhaustive strategy
  // finds at the true f must also be found by the structured strategy
  // (possibly via different witnesses).
  Rng rng(GetParam());
  graph::generators::BftCupParams params;
  params.f = 1;
  params.sink_size = 5;
  params.non_sink = 3;
  params.byzantine_in_sink = 1;
  const auto sys = graph::generators::random_bft_cup(params, rng);
  const auto view = KnowledgeView::omniscient(sys.graph);

  const ExhaustiveSinkSearch exhaustive;
  const StructuredSinkSearch structured;
  const auto ce = exhaustive.candidates(view);
  const auto cs = structured.candidates(view);

  for (const SinkCandidate& c : ce) {
    if (c.g != params.f) continue;
    EXPECT_TRUE(has_candidate(cs, c.members(), c.g))
        << "structured missed members set of size " << c.members().size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyAgreementTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(TryFindSinkTest, RequiresExactG) {
  const auto view =
      KnowledgeView::omniscient(graph::figures::fig3b().graph);
  const ExhaustiveSinkSearch search;
  // At f = 2 the K5 core (+ absorbed Byzantine) is found...
  const auto at2 = try_find_sink(view, 2, search);
  ASSERT_TRUE(at2.has_value());
  EXPECT_EQ(at2->members, view.known());
  // ... and an absurd threshold finds nothing.
  EXPECT_FALSE(try_find_sink(view, 3, search).has_value());
}

TEST(TryFindSinkTest, ReturnsMembersUnionS1S2) {
  const auto view =
      KnowledgeView::omniscient(graph::figures::fig1b().graph);
  const ExhaustiveSinkSearch search;
  const auto sink = try_find_sink(view, 1, search);
  ASSERT_TRUE(sink.has_value());
  EXPECT_EQ(sink->members, sink->s1.set_union(sink->s2));
  EXPECT_EQ(sink->members, (IdSet{p(1), p(2), p(3), p(4)}));
}

}  // namespace
}  // namespace bftcup::protocol

#include <gtest/gtest.h>

#include "graph/figures.hpp"
#include "pd/participant_detector.hpp"
#include "protocol/rrb.hpp"
#include "test_util.hpp"

namespace bftcup::protocol {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

class RrbOnlyProcess : public sim::Process {
 public:
  RrbOnlyProcess(ProcessId id, IdSet pd, std::size_t f)
      : sim::Process(id), rrb_(id, std::move(pd), f, 200) {}

  void on_start(sim::Context& ctx) override { rrb_.start(ctx); }
  void on_message(ProcessId from, const msg::Message& message,
                  sim::Context& ctx) override {
    rrb_.handle_message(from, message, ctx);
  }
  void on_timer(int kind, sim::Context& /*ctx*/) override {
    if ((kind & 0xff) == RrbDiscovery::kTimerKind) {
      rrb_.stop();  // a single flood round suffices on reliable channels
    }
  }

  RrbDiscovery& rrb() { return rrb_; }

 private:
  RrbDiscovery rrb_;
};

struct Fixture {
  sim::Simulator simulator;
  std::map<ProcessId, RrbOnlyProcess*> nodes;

  Fixture(const graph::Digraph& g, std::size_t f, const IdSet& silent = {},
          std::uint64_t seed = 1)
      : simulator([&] {
          sim::Simulator::Options options;
          options.seed = seed;
          options.horizon = 50'000;
          options.net.delta = 5;
          return options;
        }()) {
    const auto pds = pd::ParticipantDetector::from_graph(g);
    for (ProcessId id : g.vertices()) {
      if (silent.contains(id)) {
        simulator.add_process(std::make_unique<test::ScriptedProcess>(id));
        continue;
      }
      auto node = std::make_unique<RrbOnlyProcess>(id, pds.pd_of(id), f);
      nodes.emplace(id, node.get());
      simulator.add_process(std::move(node));
    }
  }
};

TEST(RrbTest, DirectNeighborsDeliverImmediately) {
  graph::Digraph g;
  g.add_edge(p(1), p(2));
  g.add_edge(p(2), p(1));
  Fixture fx(g, 1);
  fx.simulator.run();
  EXPECT_NE(fx.nodes.at(p(1))->rrb().view().pd_of(p(2)), nullptr);
  EXPECT_NE(fx.nodes.at(p(2))->rrb().view().pd_of(p(1)), nullptr);
}

TEST(RrbTest, SinkMembersLearnEachOtherOnFig1b) {
  // f = 1: sink members are pairwise connected by 2+ disjoint paths (K4-ish
  // among {1,2,3,4} with 4 silent — direct edges still count).
  const auto inst = graph::figures::fig1b();
  Fixture fx(inst.graph, inst.f, inst.faulty);
  fx.simulator.run();
  for (std::uint64_t a : {1, 2, 3}) {
    for (std::uint64_t b : {1, 2, 3}) {
      if (a == b) continue;
      EXPECT_NE(fx.nodes.at(p(a))->rrb().view().pd_of(p(b)), nullptr)
          << a << " should deliver PD_" << b;
    }
  }
}

TEST(RrbTest, SingleIndirectPathIsNotEnough) {
  // 1 -> 2 -> 3 chain (with back edges to allow relaying): 3's PD reaches 1
  // only through 2, a single path — with f = 1 it must NOT be delivered.
  graph::Digraph g;
  g.add_edge(p(1), p(2));
  g.add_edge(p(2), p(1));
  g.add_edge(p(2), p(3));
  g.add_edge(p(3), p(2));
  Fixture fx(g, 1);
  fx.simulator.run();
  EXPECT_EQ(fx.nodes.at(p(1))->rrb().view().pd_of(p(3)), nullptr);
  // The signed protocol would have accepted it — that is the ablation gap.
}

TEST(RrbTest, TwoDisjointRelaysDeliver) {
  // origin 4 reaches 1 via relays 2 and 3 (disjoint).
  graph::Digraph g;
  for (auto [a, b] : {std::pair{4, 2}, {2, 4}, {4, 3}, {3, 4},
                      {2, 1}, {1, 2}, {3, 1}, {1, 3}}) {
    g.add_edge(p(a), p(b));
  }
  Fixture fx(g, 1);
  fx.simulator.run();
  EXPECT_NE(fx.nodes.at(p(1))->rrb().view().pd_of(p(4)), nullptr);
}

TEST(RrbTest, MalformedPathRejected) {
  sim::Simulator::Options options;
  options.horizon = 1'000;
  sim::Simulator simulator(options);
  auto victim = std::make_unique<RrbOnlyProcess>(p(1), IdSet{p(2)}, 1);
  auto* victim_ptr = victim.get();
  auto attacker = std::make_unique<test::ScriptedProcess>(p(2));
  attacker->on_start_do([](sim::Context& ctx) {
    // Claims a relay path whose last hop is not the sender.
    msg::Message m;
    m.type = msg::MsgType::kRrbForward;
    m.origin = p(9);
    m.origin_pd = IdSet{p(1)};
    m.path = {p(7)};
    ctx.send(p(1), std::move(m));
  });
  simulator.add_process(std::move(victim));
  simulator.add_process(std::move(attacker));
  simulator.run();
  EXPECT_EQ(victim_ptr->rrb().view().pd_of(p(9)), nullptr);
}

TEST(RrbTest, ConflictingContentsNeedDisjointPathsPerVersion) {
  // A Byzantine relay can inject a *different* PD for the origin; each
  // version accumulates its own evidence and a single lying relay can never
  // reach > f disjoint paths.
  sim::Simulator::Options options;
  options.horizon = 5'000;
  sim::Simulator simulator(options);

  auto victim = std::make_unique<RrbOnlyProcess>(p(1), IdSet{p(2), p(3)}, 1);
  auto* victim_ptr = victim.get();
  auto liar = std::make_unique<test::ScriptedProcess>(p(2));
  liar->on_start_do([](sim::Context& ctx) {
    msg::Message m;
    m.type = msg::MsgType::kRrbForward;
    m.origin = p(9);
    m.origin_pd = IdSet{p(2)};  // fake contents
    m.path = {p(2)};
    ctx.send(p(1), m);
  });
  auto honest = std::make_unique<test::ScriptedProcess>(p(3));

  simulator.add_process(std::move(victim));
  simulator.add_process(std::move(liar));
  simulator.add_process(std::move(honest));
  simulator.run();
  EXPECT_EQ(victim_ptr->rrb().view().pd_of(p(9)), nullptr);
}

}  // namespace
}  // namespace bftcup::protocol

// Ablation of CupftNode's knowledge-closure guard against the
// bridge-hiding fake-PD attack (DESIGN.md §4.6).
#include <gtest/gtest.h>

#include "cup/runner.hpp"
#include "graph/figures.hpp"

namespace bftcup::cup {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

Scenario attack_scenario(bool closure_guard) {
  const auto inst = graph::figures::fig4a();
  Scenario s;
  s.graph = inst.graph;
  s.faulty = inst.faulty;  // Byzantine 5
  s.mode = Mode::kCupft;
  s.byz = ByzBehavior::kFakePd;
  s.fake_pds[p(5)] = IdSet{p(6), p(7), p(8)};  // hides the 5->4 bridge
  s.cupft_known_closure = closure_guard;
  s.sim.horizon = 300'000;
  return s;
}

TEST(ClosureGuardTest, WithoutGuardTheAttackBreaksTheRun) {
  const auto report = run_scenario(attack_scenario(false));
  EXPECT_NE(report.verdict(), "SOLVED");
}

TEST(ClosureGuardTest, GuardPreservesAgreementUnderAttack) {
  // With the guard, a B-side process cannot adopt the phantom {5,6,7,8}
  // while its own PD's target 3 (or transitively learned A-side processes)
  // are unheard-from; by the time they answered, the tie with {1,2,3,4} is
  // visible. Safety holds; multiple seeds to derisk scheduling luck.
  for (std::uint64_t seed : {1, 2, 3, 5, 8}) {
    Scenario s = attack_scenario(true);
    s.sim.seed = seed;
    const auto report = run_scenario(s);
    EXPECT_TRUE(report.agreement) << "seed=" << seed;
    // No two different cores may both decide.
    std::optional<Value> value;
    for (const auto& [who, d] : report.decisions) {
      if (value) {
        EXPECT_EQ(*value, d.value);
      }
      value = d.value;
    }
  }
}

TEST(ClosureGuardTest, GuardCostsLivenessWithSilentOutsideByzantine) {
  // The flip side: fig. 4a with Byzantine 5 *silent*. The A side never hears
  // PD_5 and 5 is outside the core candidate {1,2,3,4} -> under the guard
  // nobody ever adopts a core. This is the negative result: Algorithm 4
  // cannot be repaired by a local rule that both defeats the attack and
  // stays live.
  const auto inst = graph::figures::fig4a();
  Scenario s;
  s.graph = inst.graph;
  s.faulty = inst.faulty;
  s.mode = Mode::kCupft;
  s.byz = ByzBehavior::kSilent;
  s.cupft_known_closure = true;
  s.sim.horizon = 150'000;
  const auto report = run_scenario(s);
  EXPECT_EQ(report.verdict(), "NO-TERMINATION");
  EXPECT_TRUE(report.decisions.empty());
}

TEST(ClosureGuardTest, GuardIsHarmlessWhenEveryoneSpeaks) {
  // All-correct fig. 4a (threshold exists, nobody faulty): the guard delays
  // adoption only until every PD arrived; consensus still solves.
  const auto inst = graph::figures::fig4a();
  Scenario s;
  s.graph = inst.graph;
  s.mode = Mode::kCupft;
  s.cupft_known_closure = true;
  const auto report = run_scenario(s);
  EXPECT_EQ(report.verdict(), "SOLVED");
}

}  // namespace
}  // namespace bftcup::cup

// Ablation of CupftNode's knowledge-closure guard against the
// bridge-hiding fake-PD attack (DESIGN.md §4.6).
#include <gtest/gtest.h>

#include "cup/scenario_builder.hpp"

namespace bftcup::cup {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

ScenarioBuilder attack_builder(bool closure_guard) {
  // Fig. 4a with Byzantine 5 hiding the 5->4 bridge behind a fake PD.
  return ScenarioBuilder(graph::figures::fig4a())
      .mode(Mode::kCupft)
      .byz(ByzBehavior::kFakePd)
      .fake_pd(p(5), {p(6), p(7), p(8)})
      .closure_guard(closure_guard)
      .horizon(300'000);
}

TEST(ClosureGuardTest, WithoutGuardTheAttackBreaksTheRun) {
  const auto report = attack_builder(false).run();
  EXPECT_NE(report.verdict(), "SOLVED");
}

TEST(ClosureGuardTest, GuardPreservesAgreementUnderAttack) {
  // With the guard, a B-side process cannot adopt the phantom {5,6,7,8}
  // while its own PD's target 3 (or transitively learned A-side processes)
  // are unheard-from; by the time they answered, the tie with {1,2,3,4} is
  // visible. Safety holds; multiple seeds to derisk scheduling luck.
  for (std::uint64_t seed : {1, 2, 3, 5, 8}) {
    const auto report = attack_builder(true).seed(seed).run();
    EXPECT_TRUE(report.agreement) << "seed=" << seed;
    // No two different cores may both decide.
    std::optional<Value> value;
    for (const auto& [who, d] : report.decisions) {
      if (value) {
        EXPECT_EQ(*value, d.value);
      }
      value = d.value;
    }
  }
}

TEST(ClosureGuardTest, GuardCostsLivenessWithSilentOutsideByzantine) {
  // The flip side: fig. 4a with Byzantine 5 *silent*. The A side never hears
  // PD_5 and 5 is outside the core candidate {1,2,3,4} -> under the guard
  // nobody ever adopts a core. This is the negative result: Algorithm 4
  // cannot be repaired by a local rule that both defeats the attack and
  // stays live.
  const auto report = ScenarioBuilder(graph::figures::fig4a())
                          .mode(Mode::kCupft)
                          .byz(ByzBehavior::kSilent)
                          .closure_guard()
                          .horizon(150'000)
                          .run();
  EXPECT_EQ(report.verdict(), "NO-TERMINATION");
  EXPECT_TRUE(report.decisions.empty());
}

TEST(ClosureGuardTest, GuardIsHarmlessWhenEveryoneSpeaks) {
  // All-correct fig. 4a (threshold exists, nobody faulty): the guard delays
  // adoption only until every PD arrived; consensus still solves.
  const auto report = ScenarioBuilder(graph::figures::fig4a().graph)
                          .mode(Mode::kCupft)
                          .closure_guard()
                          .run();
  EXPECT_EQ(report.verdict(), "SOLVED");
}

}  // namespace
}  // namespace bftcup::cup

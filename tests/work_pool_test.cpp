// The deterministic fork-join pool (common/work_pool.hpp): chunk coverage,
// slot-addressed results at any worker count, lowest-chunk exception
// propagation, nested-dispatch rejection, and the WorkPoolScope install /
// cache behavior the run engine relies on.
#include "common/work_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace bftcup {
namespace {

/// Per-index writes into a pre-sized slot vector — the canonical use.
std::vector<std::size_t> squares_via_pool(std::size_t workers,
                                          std::size_t count,
                                          std::size_t chunk) {
  WorkPool pool(workers);
  std::vector<std::size_t> slots(count, 0);
  pool.run(count, chunk,
           [&](std::size_t begin, std::size_t end, std::size_t) {
             for (std::size_t i = begin; i < end; ++i) slots[i] = i * i;
           });
  return slots;
}

TEST(WorkPoolTest, CoversEveryIndexExactlyOnce) {
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000}}) {
      for (std::size_t chunk : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                std::size_t{64}, std::size_t{2000}}) {
        WorkPool pool(workers);
        std::vector<std::atomic<int>> hits(count);
        pool.run(count, chunk,
                 [&](std::size_t begin, std::size_t end, std::size_t) {
                   for (std::size_t i = begin; i < end; ++i) {
                     hits[i].fetch_add(1, std::memory_order_relaxed);
                   }
                 });
        for (std::size_t i = 0; i < count; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "workers=" << workers << " count=" << count
              << " chunk=" << chunk << " index=" << i;
        }
      }
    }
  }
}

TEST(WorkPoolTest, SlotResultsAreIdenticalAtAnyWorkerCount) {
  const std::vector<std::size_t> serial = squares_via_pool(1, 257, 10);
  EXPECT_EQ(squares_via_pool(2, 257, 10), serial);
  EXPECT_EQ(squares_via_pool(8, 257, 10), serial);
  EXPECT_EQ(squares_via_pool(8, 257, 1), serial);
  EXPECT_EQ(squares_via_pool(8, 257, 1000), serial);
}

TEST(WorkPoolTest, ZeroCountNeverInvokesTheTask) {
  WorkPool pool(4);
  std::atomic<int> calls{0};
  pool.run(0, 16, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(pool.tasks_dispatched(), 0u);
}

TEST(WorkPoolTest, WorkerIndexStaysInRangeAndZeroIsTheCaller) {
  WorkPool pool(3);
  std::atomic<bool> in_range{true};
  pool.run(100, 1, [&](std::size_t, std::size_t, std::size_t worker) {
    if (worker >= 3) in_range.store(false);
  });
  EXPECT_TRUE(in_range.load());

  // workers == 1: everything executes on the calling thread.
  WorkPool serial(1);
  const auto caller = std::this_thread::get_id();
  bool all_on_caller = true;
  serial.run(17, 4, [&](std::size_t, std::size_t, std::size_t worker) {
    if (std::this_thread::get_id() != caller || worker != 0) {
      all_on_caller = false;
    }
  });
  EXPECT_TRUE(all_on_caller);
}

TEST(WorkPoolTest, TasksDispatchedCountsChunksCumulatively) {
  WorkPool pool(2);
  pool.run(10, 3, [](std::size_t, std::size_t, std::size_t) {});  // 4 chunks
  EXPECT_EQ(pool.tasks_dispatched(), 4u);
  pool.run(10, 5, [](std::size_t, std::size_t, std::size_t) {});  // +2
  EXPECT_EQ(pool.tasks_dispatched(), 6u);
}

TEST(WorkPoolTest, LowestChunkExceptionWinsDeterministically) {
  // Several chunks throw; which error surfaces must not depend on
  // completion order, so the lowest chunk index wins at every worker count.
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    WorkPool pool(workers);
    try {
      pool.run(64, 1, [](std::size_t begin, std::size_t, std::size_t) {
        if (begin % 2 == 1) {
          throw std::runtime_error("chunk " + std::to_string(begin));
        }
      });
      FAIL() << "expected the dispatch to rethrow";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "chunk 1") << "workers=" << workers;
    }
  }
}

TEST(WorkPoolTest, PoolStaysUsableAfterAnException) {
  WorkPool pool(4);
  EXPECT_THROW(pool.run(8, 1,
                        [](std::size_t, std::size_t, std::size_t) {
                          throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  std::atomic<std::size_t> sum{0};
  pool.run(8, 1, [&](std::size_t begin, std::size_t, std::size_t) {
    sum.fetch_add(begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 28u);
}

TEST(WorkPoolTest, NestedDispatchIsRejectedNotDeadlocked) {
  WorkPool pool(2);
  EXPECT_THROW(
      pool.run(4, 1,
               [&](std::size_t, std::size_t, std::size_t) {
                 pool.run(2, 1, [](std::size_t, std::size_t, std::size_t) {});
               }),
      std::logic_error);

  // Dispatching a *different* pool from inside a task is equally a
  // fork-join deadlock risk and equally rejected.
  WorkPool other(2);
  EXPECT_THROW(
      pool.run(4, 1,
               [&](std::size_t, std::size_t, std::size_t) {
                 other.run(2, 1, [](std::size_t, std::size_t, std::size_t) {});
               }),
      std::logic_error);
}

TEST(WorkPoolTest, UsableWorkPoolIsNullInsideATask) {
  const WorkPoolScope scope(2);
  ASSERT_NE(scope.pool(), nullptr);
  EXPECT_EQ(current_work_pool(), scope.pool());
  EXPECT_EQ(usable_work_pool(), scope.pool());
  std::atomic<bool> nested_sees_null{true};
  scope.pool()->run(4, 1, [&](std::size_t, std::size_t, std::size_t) {
    // Inside a task the pool is installed but not usable — parallel-capable
    // inner loops must fall back to their serial form.
    if (usable_work_pool() != nullptr) nested_sees_null.store(false);
  });
  EXPECT_TRUE(nested_sees_null.load());
  EXPECT_EQ(usable_work_pool(), scope.pool());
}

TEST(WorkPoolScopeTest, ZeroInstallsNothingAndScopesRestore) {
  EXPECT_EQ(current_work_pool(), nullptr);
  {
    const WorkPoolScope none(0);
    EXPECT_EQ(none.pool(), nullptr);
    EXPECT_EQ(current_work_pool(), nullptr);
    {
      const WorkPoolScope two(2);
      EXPECT_EQ(two.pool()->workers(), 2u);
      EXPECT_EQ(current_work_pool(), two.pool());
    }
    EXPECT_EQ(current_work_pool(), nullptr);
  }
  EXPECT_EQ(current_work_pool(), nullptr);
}

TEST(WorkPoolScopeTest, PoolsAreCachedPerThreadAndWorkerCount) {
  WorkPool* first = nullptr;
  {
    const WorkPoolScope scope(3);
    first = scope.pool();
  }
  const WorkPoolScope again(3);
  // Consecutive runs at the same setting reuse the spawned threads — the
  // recycled-run-engine steady state.
  EXPECT_EQ(again.pool(), first);
}

}  // namespace
}  // namespace bftcup

// Shared helpers for the experiment harnesses.
//
// Row/header printing is routed through the BatchReport formatting in
// cup/batch_runner.hpp, which uses <cinttypes> width-safe conversions
// instead of per-call-site printf casts.
#pragma once

#include <cstdio>
#include <string>

#include "cup/batch_runner.hpp"

namespace bftcup::bench {

inline void print_header(const char* experiment, const char* claim) {
  cup::print_run_header(stdout, experiment, claim);
}

inline void print_row(const std::string& name, const cup::RunReport& report) {
  cup::print_run_row(stdout, name, report);
}

}  // namespace bftcup::bench

// Shared helpers for the experiment harnesses.
//
// Row/header printing is routed through the BatchReport formatting in
// cup/batch_runner.hpp, which uses <cinttypes> width-safe conversions
// instead of per-call-site printf casts.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "common/sys_resource.hpp"
#include "cup/batch_runner.hpp"
#include "graph/digraph.hpp"

namespace bftcup::bench {

inline void print_header(const char* experiment, const char* claim) {
  cup::print_run_header(stdout, experiment, claim);
}

inline void print_row(const std::string& name, const cup::RunReport& report) {
  cup::print_run_row(stdout, name, report);
}

inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Process peak RSS in bytes; see common/sys_resource.hpp (promoted there
/// so BatchReport and tools can report memory without the bench harness).
inline std::uint64_t peak_rss_bytes() { return bftcup::peak_rss_bytes(); }

/// The membership/run-engine bench system: a complete core of
/// `kShardedCoreSize` processes (the sink the search must find, small
/// enough for exhaustive enumeration) plus a periphery of directed
/// 3-cycles, each member also pointing at two distinct core members. The
/// knowledge graph decomposes into one core SCC and many small periphery
/// SCCs — the regime the membership engine targets. One definition serves
/// bench_membership and bench_runengine so their checked-in BENCH_*.json
/// baselines stay measurements of the same workload family.
inline constexpr std::size_t kShardedCoreSize = 8;

inline graph::Digraph make_sharded_graph(std::size_t n) {
  graph::Digraph g;
  for (std::uint64_t a = 1; a <= kShardedCoreSize; ++a) {
    for (std::uint64_t b = 1; b <= kShardedCoreSize; ++b) {
      if (a != b) g.add_edge(ProcessId(a), ProcessId(b));
    }
  }
  for (std::uint64_t base = kShardedCoreSize + 1; base + 2 <= n; base += 3) {
    for (std::uint64_t k = 0; k < 3; ++k) {
      const std::uint64_t id = base + k;
      g.add_edge(ProcessId(id), ProcessId(base + (k + 1) % 3));
      g.add_edge(ProcessId(id), ProcessId(id % kShardedCoreSize + 1));
      g.add_edge(ProcessId(id), ProcessId((id + 3) % kShardedCoreSize + 1));
    }
  }
  return g;
}

}  // namespace bftcup::bench

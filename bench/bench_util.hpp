// Shared helpers for the experiment harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "cup/runner.hpp"

namespace bftcup::bench {

inline void print_header(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n    paper claim: %s\n", experiment, claim);
  std::printf("%-34s %-20s %10s %10s %12s\n", "scenario", "verdict",
              "latency", "messages", "value");
}

inline void print_row(const std::string& name, const cup::RunReport& r) {
  std::printf("%-34s %-20s %10lld %10llu %12llu\n", name.c_str(),
              r.verdict().c_str(),
              static_cast<long long>(r.completion_time.value_or(-1)),
              static_cast<unsigned long long>(r.messages_sent),
              static_cast<unsigned long long>(r.common_value.value_or(0)));
}

}  // namespace bftcup::bench

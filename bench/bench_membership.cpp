// Membership-engine throughput: the algorithmic core behind every PD merge.
//
// Two workloads, each at n ∈ {16, 64, 128} processes, each run cold (every
// cache layer off — the pre-engine code path) and incremental (dirty-SCC
// candidate reuse, per-S1 split memo, shared evaluation cache, signature
// memo):
//
//  - incr-reeval/<strategy>: one observer's KnowledgeView absorbs the PDs
//    of a random_cupft system in a shuffled order and re-runs the candidate
//    search after every add_pd — exactly what maybe_find_membership does per
//    SETPDS merge. Measures evaluations/sec over the whole sequence.
//  - discovery/exhaustive: full run_scenario wall time (discovery to
//    membership to decision) on a generated CUPFT system, caches on vs off.
//
// Emits BENCH_membership.json (cold/incremental pairs + speedups) so the
// repo's perf trajectory is recorded; tools/check_bench_regression.py gates
// CI on the incremental numbers.
//
// Usage: bench_membership [output.json] [--quick]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "cup/scenario_builder.hpp"
#include "protocol/eval_cache.hpp"
#include "protocol/sink_search.hpp"

namespace bftcup::bench {
namespace {

struct Result {
  std::string workload;
  std::string strategy;
  std::string mode;  ///< "cold" | "incremental"
  std::size_t n = 0;
  std::uint64_t evals = 0;
  double seconds = 0.0;
  // Discovery workload only: where the run's crypto/search effort went.
  std::uint64_t eval_hits = 0;
  std::uint64_t sig_computed = 0;
  std::uint64_t sig_hits = 0;

  [[nodiscard]] double evals_per_sec() const {
    return seconds > 0 ? static_cast<double>(evals) / seconds : 0.0;
  }
};


/// One observer view re-evaluated after every add_pd, like a node does per
/// SETPDS merge: first the shuffled build-up of the whole system, then a
/// steady-state phase where straggler PDs trickle in (each a fresh singleton
/// SCC) and the membership rule re-fires on an otherwise stable view.
/// `incremental` toggles every engine layer this workload can reach
/// (strategy memos; there is no cross-node sharing here).
template <typename Strategy>
Result run_incr_reeval_once(std::size_t n, bool incremental,
                            const char* strategy) {
  const graph::Digraph g = make_sharded_graph(n);
  std::vector<std::pair<ProcessId, IdSet>> pds;
  for (ProcessId id : g.vertices()) {
    pds.emplace_back(id, g.out_neighbors(id));
  }
  Rng rng(7);
  rng.shuffle(pds);
  // Steady-state stragglers: late processes whose PD names a core member.
  for (std::uint64_t s = 0; s < 16; ++s) {
    pds.emplace_back(ProcessId(1000 + s),
                     IdSet{ProcessId(s % kShardedCoreSize + 1)});
  }

  protocol::SearchOptions options;
  options.incremental = incremental;
  const Strategy search(options);

  std::uint64_t evals = 0;
  std::size_t candidates_seen = 0;  // defeat dead-code elimination
  const double t0 = now_seconds();
  protocol::KnowledgeView view(pds.front().first, pds.front().second);
  for (std::size_t i = 1; i < pds.size(); ++i) {
    view.add_pd(pds[i].first, pds[i].second);
    candidates_seen += search.candidates(view).size();
    ++evals;
  }
  const double elapsed = now_seconds() - t0;
  // Keep the accumulated candidate count observable so the search calls
  // cannot be elided.
  volatile std::size_t sink = candidates_seen;
  (void)sink;

  Result result;
  result.workload = "incr-reeval";
  result.strategy = strategy;
  result.mode = incremental ? "incremental" : "cold";
  result.n = n;
  result.evals = evals;
  result.seconds = elapsed;
  return result;
}

/// Best-of-3: the speedup ratio feeds the CI gate, so a single scheduler
/// hiccup in a ~10 ms leg must not move the recorded number.
template <typename Strategy>
Result run_incr_reeval(std::size_t n, bool incremental, const char* strategy) {
  Result best = run_incr_reeval_once<Strategy>(n, incremental, strategy);
  for (int rep = 1; rep < 3; ++rep) {
    Result r = run_incr_reeval_once<Strategy>(n, incremental, strategy);
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

/// Full simulation: discovery to membership to decision, every node
/// evaluating per merge. Incremental additionally shares the evaluation
/// cache across nodes and memoizes signature checks. Three seeds per leg:
/// a single ~100 ms run is too small a quantum for a gated wall-time ratio
/// on a busy machine (counters are summed; the seconds are the caller's).
Result run_discovery(std::size_t n, bool incremental) {
  Result result;
  result.workload = "discovery";
  result.strategy = "exhaustive";
  result.mode = incremental ? "incremental" : "cold";
  result.n = n;
  for (std::uint64_t seed : {11, 12, 13}) {
    const auto report = cup::ScenarioBuilder(make_sharded_graph(n))
                            .mode(cup::Mode::kCupft)
                            .seed(seed)
                            .horizon(400'000)
                            .caching(incremental)
                            .run();
    result.evals += report.evaluations;
    result.eval_hits += report.eval_cache_hits;
    result.sig_computed += report.signatures_verified;
    result.sig_hits += report.signatures_cached;
  }
  return result;
}

/// The discovery legs are gated now (the PR 5 probe-gate fix), so the
/// recorded speedup_vs_cold must survive scheduler hiccups *and*
/// clock-frequency drift across a ~1 s bench. Each rep times cold and
/// incremental back to back (drift cancels within the pair), a discarded
/// warmup rep absorbs first-touch page faults, and the *median* per-rep
/// ratio is recorded (best-of couples the two sides to different hiccups;
/// the median pair keeps them coupled).
std::pair<Result, Result> timed_discovery_pair(std::size_t n) {
  constexpr int kReps = 6;
  std::vector<std::pair<Result, Result>> pairs;
  for (int rep = 0; rep <= kReps; ++rep) {
    // Alternate which side runs first: whichever leg follows the other
    // inherits its freshly freed allocator pages, and that small edge must
    // not land on one side systematically.
    const bool cold_first = rep % 2 == 0;
    Result c, i;
    for (int leg = 0; leg < 2; ++leg) {
      const bool incremental = (leg == 0) != cold_first;
      const double t0 = now_seconds();
      Result r = run_discovery(n, incremental);
      r.seconds = now_seconds() - t0;
      (incremental ? i : c) = std::move(r);
    }
    if (rep > 0) pairs.emplace_back(std::move(c), std::move(i));  // drop warmup
  }
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    return a.first.seconds * b.second.seconds <
           b.first.seconds * a.second.seconds;  // by cold/incr ratio
  });
  return pairs[pairs.size() / 2];
}

const Result* find(const std::vector<Result>& results, const Result& like) {
  for (const Result& r : results) {
    if (r.workload == like.workload && r.strategy == like.strategy &&
        r.n == like.n && r.mode == "cold") {
      return &r;
    }
  }
  return nullptr;
}

void write_json(const std::string& path, const std::vector<Result>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_membership: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"membership\",\n");
  std::fprintf(f, "  \"baseline_commit\": \"3374ac2 (pre incremental membership engine)\",\n");
  std::fprintf(f, "  \"results\": [\n");
  bool first = true;
  for (const Result& r : results) {
    if (r.mode != "incremental") continue;  // cold runs feed the speedup only
    const Result* cold = find(results, r);
    const double speedup =
        (cold != nullptr && r.seconds > 0 && cold->seconds > 0)
            ? cold->evals_per_sec() > 0
                  ? r.evals_per_sec() / cold->evals_per_sec()
                  : cold->seconds / r.seconds
            : 0.0;
    std::fprintf(f,
                 "%s    {\"workload\": \"%s\", \"strategy\": \"%s\", \"n\": "
                 "%zu, \"evals\": %llu, \"seconds\": %.6f, \"evals_per_sec\": "
                 "%.0f, \"cold_seconds\": %.6f, \"speedup_vs_cold\": %.3f",
                 first ? "" : ",\n", r.workload.c_str(), r.strategy.c_str(),
                 r.n, static_cast<unsigned long long>(r.evals), r.seconds,
                 r.evals_per_sec(), cold != nullptr ? cold->seconds : 0.0,
                 speedup);
    if (r.workload == "discovery") {
      // Gated since the PR 5 probe-gate fix: the ratio comes from
      // interleaved median-of-pairs measurement (drift-robust; see
      // timed_discovery_pair), and the adaptive gate
      // keeps the engine at or above cold speed on this churn-bound path.
      std::fprintf(f,
                   ", \"eval_hits\": %llu, \"signatures_computed\": %llu, "
                   "\"signatures_memoized\": %llu, \"gate\": true",
                   static_cast<unsigned long long>(r.eval_hits),
                   static_cast<unsigned long long>(r.sig_computed),
                   static_cast<unsigned long long>(r.sig_hits));
    }
    std::fprintf(f, "}");
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

void print_row(const Result& r, const std::vector<Result>& results) {
  double speedup = 0.0;
  if (r.mode == "incremental") {
    if (const Result* cold = find(results, r); cold != nullptr) {
      speedup = cold->seconds > 0 ? cold->seconds / r.seconds : 0.0;
    }
  }
  std::printf("%-14s %-11s %-12s %5zu %9llu %10.3f %12.0f %8.2fx\n",
              r.workload.c_str(), r.strategy.c_str(), r.mode.c_str(), r.n,
              static_cast<unsigned long long>(r.evals), r.seconds,
              r.evals_per_sec(), speedup);
}

}  // namespace
}  // namespace bftcup::bench

int main(int argc, char** argv) {
  using namespace bftcup::bench;
  std::string out = "BENCH_membership.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out = argv[i];
    }
  }

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{16, 64}
            : std::vector<std::size_t>{16, 64, 128};

  std::vector<Result> results;
  std::printf("%-14s %-11s %-12s %5s %9s %10s %12s %9s\n", "workload",
              "strategy", "mode", "n", "evals", "seconds", "evals/sec",
              "speedup");
  for (std::size_t n : sizes) {
    // The discovery pair measures first: its gated ratio is sensitive to
    // allocator state, and the incr-reeval legs churn the heap hard.
    auto [cold_disc, incr_disc] = timed_discovery_pair(n);
    results.push_back(std::move(cold_disc));
    print_row(results.back(), results);
    results.push_back(std::move(incr_disc));
    print_row(results.back(), results);
    for (const bool incremental : {false, true}) {
      results.push_back(run_incr_reeval<bftcup::protocol::ExhaustiveSinkSearch>(
          n, incremental, "exhaustive"));
      print_row(results.back(), results);
      results.push_back(run_incr_reeval<bftcup::protocol::StructuredSinkSearch>(
          n, incremental, "structured"));
      print_row(results.back(), results);
    }
  }
  write_json(out, results);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

// Experiment P1 — Discovery convergence: simulated time, rounds, and
// traffic for Algorithm 1 as the system grows (systems-level addition; the
// paper proves Theorem 2 but reports no numbers).
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>

#include "cup/scenario_builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace bftcup;

cup::RunReport run(std::size_t f, std::size_t non_sink, std::uint64_t seed) {
  Rng rng(seed);
  graph::generators::BftCupParams params;
  params.f = f;
  params.sink_size = 2 * f + 1 + f;
  params.non_sink = non_sink;
  params.byzantine_in_sink = f;
  const auto sys = graph::generators::random_bft_cup(params, rng);

  return cup::ScenarioBuilder(sys)
      .mode(cup::Mode::kAuth)
      .seed(seed * 7 + 1)
      .run();
}

void print_experiment() {
  std::printf("\n=== P1: Discovery convergence (Alg. 1, Theorem 2) ===\n");
  std::printf("%4s %4s %6s | %14s %14s %12s %12s\n", "f", "n", "seed",
              "sink-found(max)", "decide(max)", "messages", "bytes");
  for (std::size_t f : {1, 2}) {
    for (std::size_t non_sink : {2, 6, 12, 20}) {
      const auto report = run(f, non_sink, 3);
      SimTime sink_found = 0;
      for (const auto& [who, t] : report.membership_times) {
        sink_found = std::max(sink_found, t);
      }
      std::printf("%4zu %4zu %6d | %14" PRId64 " %14" PRId64 " %12" PRIu64
                  " %12" PRIu64 "   %s\n",
                  f, 2 * f + 1 + f + non_sink, 3, sink_found,
                  report.completion_time.value_or(-1), report.messages_sent,
                  report.bytes_sent, report.verdict().c_str());
    }
  }
}

void BM_DiscoveryToDecision(benchmark::State& state) {
  const auto f = static_cast<std::size_t>(state.range(0));
  const auto non_sink = static_cast<std::size_t>(state.range(1));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = run(f, non_sink, seed++);
    benchmark::DoNotOptimize(report.all_correct_decided);
    state.counters["sim_ticks"] =
        static_cast<double>(report.completion_time.value_or(-1));
    state.counters["messages"] = static_cast<double>(report.messages_sent);
    state.counters["bytes"] = static_cast<double>(report.bytes_sent);
  }
}
BENCHMARK(BM_DiscoveryToDecision)
    ->ArgsProduct({{1, 2}, {2, 6, 12}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

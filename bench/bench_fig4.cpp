// Experiment F4 — Fig. 4: graphs satisfying the BFT-CUPFT requirements;
// the Core algorithm discovers the core and consensus solves without f.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "graph/extended_osr.hpp"
#include "graph/figures.hpp"

namespace {

using namespace bftcup;

const cup::ScenarioRegistry& registry() {
  return cup::ScenarioRegistry::paper();
}

void print_membership(const cup::RunReport& r) {
  if (r.memberships.empty()) return;
  const auto& first = r.memberships.begin()->second;
  std::printf("    discovered core: {");
  for (ProcessId m : first) std::printf(" %s", to_string(m).c_str());
  std::printf(" }\n");
}

void print_experiment() {
  bench::print_header(
      "F4: Fig. 4 — BFT-CUPFT graphs",
      "4a: core {1,2,3,4} != full-graph sink; 4b: core = sink {8..12}; "
      "consensus solvable without f in both");

  for (const auto& [name, inst] :
       {std::pair{"fig4a", graph::figures::fig4a()},
        std::pair{"fig4b", graph::figures::fig4b()}}) {
    const auto check =
        graph::check_bft_cupft_requirements(inst.graph, inst.faulty, inst.f);
    std::printf("checker %s: %s (core k=%zu)\n", name,
                check.satisfied ? "ACCEPT" : check.reason.c_str(),
                check.core_k);

    const auto report =
        registry().run(std::string(name) + "/cupft-silent", 1);
    bench::print_row(std::string(name) + ", BFT-CUPFT silent-byz", report);
    print_membership(report);

    bench::print_row(std::string(name) + ", BFT-CUPFT fake-pd-byz",
                     registry().run(std::string(name) + "/cupft-fake-pd", 1));
  }

  // Ablation: the bridge-hiding attack on fig4a (DESIGN.md §4.6 finding 3)
  // without and with the knowledge-closure guard.
  std::printf("--- bridge-hiding fake-PD attack ablation (fig4a) ---\n");
  bench::print_row("attack, no guard",
                   registry().run("fig4a/bridge-hiding-attack", 1));
  bench::print_row("attack, closure guard",
                   registry().run("fig4a/bridge-hiding-guarded", 1));
  bench::print_row("silent-byz, closure guard (cost)",
                   registry().run("fig4a/closure-guard-cost", 1));
}

void BM_Fig4CupftEndToEnd(benchmark::State& state) {
  const std::string name =
      state.range(0) == 0 ? "fig4a/cupft-silent" : "fig4b/cupft-silent";
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = registry().run(name, seed++);
    benchmark::DoNotOptimize(report.all_correct_decided);
    state.counters["sim_ticks"] =
        static_cast<double>(report.completion_time.value_or(-1));
    state.counters["messages"] = static_cast<double>(report.messages_sent);
  }
}
BENCHMARK(BM_Fig4CupftEndToEnd)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ExtendedOsrChecker(benchmark::State& state) {
  const auto inst =
      state.range(0) == 0 ? graph::figures::fig4a() : graph::figures::fig4b();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::check_bft_cupft_requirements(inst.graph, inst.faulty, inst.f));
  }
}
BENCHMARK(BM_ExtendedOsrChecker)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

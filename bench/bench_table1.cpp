// Experiment T1 — Table I: the (im)possibility of solving Byzantine
// consensus deterministically under different system models.
//
// Each cell is a registry scenario ("table1/<timing>/<knowledge>"); the
// 9-cell x 5-seed sweep runs through BatchRunner. ✓ cells must report
// SOLVED on every seed; ✗ cells must never decide within the horizon while
// preserving Agreement (an executable witness consistent with FLP, not a
// proof).
#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hpp"

namespace {

using namespace bftcup;

/// Knowledge column: what the processes are (not) given.
enum class Knowledge { kKnownNKnownF, kUnknownNKnownF, kUnknownNUnknownF };
/// Communication row.
enum class Timing { kSync, kPartialSync, kAsync };

const char* knowledge_key(Knowledge k) {
  switch (k) {
    case Knowledge::kKnownNKnownF:
      return "known-n-known-f";
    case Knowledge::kUnknownNKnownF:
      return "unknown-n-known-f";
    case Knowledge::kUnknownNUnknownF:
      return "unknown-n-unknown-f";
  }
  return "?";
}

const char* timing_key(Timing t) {
  switch (t) {
    case Timing::kSync:
      return "sync";
    case Timing::kPartialSync:
      return "partial-sync";
    case Timing::kAsync:
      return "async";
  }
  return "?";
}

std::string cell_name(Knowledge k, Timing t) {
  return std::string("table1/") + timing_key(t) + "/" + knowledge_key(k);
}

const char* knowledge_name(Knowledge k) {
  switch (k) {
    case Knowledge::kKnownNKnownF:
      return "known n, known f";
    case Knowledge::kUnknownNKnownF:
      return "unknown n, known f";
    case Knowledge::kUnknownNUnknownF:
      return "unknown n, unknown f";
  }
  return "?";
}

const char* timing_name(Timing t) {
  switch (t) {
    case Timing::kSync:
      return "synchronous";
    case Timing::kPartialSync:
      return "partially synchronous";
    case Timing::kAsync:
      return "asynchronous";
  }
  return "?";
}

void print_table1() {
  std::printf("\n=== T1: Table I — (im)possibility matrix ===\n");
  std::printf("    paper claim: all 9 cells solvable except the async row\n");

  // All 9 cells x 5 seeds, hardware-parallel.
  cup::Sweep sweep;
  sweep.add_tag(cup::ScenarioRegistry::paper(), "table1").seeds(1, 5);
  const cup::BatchReport report = cup::BatchRunner().run(sweep);

  std::map<std::string, cup::ScenarioStats> by_name;
  for (const auto& stats : report.scenarios()) {
    by_name[stats.scenario] = stats;
  }

  std::printf("%-24s %-22s %-10s %-28s\n", "communication", "knowledge",
              "expected", "measured (5 seeds)");
  for (Timing t : {Timing::kSync, Timing::kPartialSync, Timing::kAsync}) {
    for (Knowledge k :
         {Knowledge::kKnownNKnownF, Knowledge::kUnknownNKnownF,
          Knowledge::kUnknownNUnknownF}) {
      const cup::ScenarioStats& stats = by_name.at(cell_name(k, t));
      const std::size_t violated = stats.agreement_violations;
      const bool expected_solvable = t != Timing::kAsync;
      std::printf("%-24s %-22s %-10s solved=%zu/5 violations=%zu  %s\n",
                  timing_name(t), knowledge_name(k),
                  expected_solvable ? "yes" : "no", stats.solved, violated,
                  (expected_solvable ? stats.solved == 5 : stats.solved == 0) &&
                          violated == 0
                      ? "[matches]"
                      : "[MISMATCH]");
    }
  }
}

void BM_Table1Cell(benchmark::State& state) {
  const auto knowledge = static_cast<Knowledge>(state.range(0));
  const auto timing = static_cast<Timing>(state.range(1));
  const std::string name = cell_name(knowledge, timing);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = cup::ScenarioRegistry::paper().run(name, seed++);
    benchmark::DoNotOptimize(report.messages_sent);
    state.counters["sim_ticks"] =
        static_cast<double>(report.completion_time.value_or(-1));
    state.counters["messages"] = static_cast<double>(report.messages_sent);
  }
}
BENCHMARK(BM_Table1Cell)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

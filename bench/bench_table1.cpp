// Experiment T1 — Table I: the (im)possibility of solving Byzantine
// consensus deterministically under different system models.
//
// Each cell is exercised by executable runs (N seeds). ✓ cells must report
// SOLVED on every seed; ✗ cells must never decide within the horizon while
// preserving Agreement (an executable witness consistent with FLP, not a
// proof).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "graph/figures.hpp"

namespace {

using namespace bftcup;

/// Knowledge column: what the processes are (not) given.
enum class Knowledge { kKnownNKnownF, kUnknownNKnownF, kUnknownNUnknownF };
/// Communication row.
enum class Timing { kSync, kPartialSync, kAsync };

cup::Scenario cell_scenario(Knowledge knowledge, Timing timing,
                            std::uint64_t seed) {
  cup::Scenario s;
  switch (knowledge) {
    case Knowledge::kKnownNKnownF: {
      // Known membership: complete knowledge graph, known f -> the pipeline
      // degenerates to PBFT among everyone.
      auto inst = graph::figures::fig2a();  // K4, f=1, 4 silent
      s.graph = inst.graph;
      s.faulty = inst.faulty;
      s.f = inst.f;
      s.mode = cup::Mode::kAuth;
      break;
    }
    case Knowledge::kUnknownNKnownF: {
      auto inst = graph::figures::fig1b();  // BFT-CUP graph
      s.graph = inst.graph;
      s.faulty = inst.faulty;
      s.f = inst.f;
      s.mode = cup::Mode::kAuth;
      break;
    }
    case Knowledge::kUnknownNUnknownF: {
      auto inst = graph::figures::fig4a();  // BFT-CUPFT graph
      s.graph = inst.graph;
      s.faulty = inst.faulty;
      s.mode = cup::Mode::kCupft;
      break;
    }
  }
  s.sim.seed = seed;
  switch (timing) {
    case Timing::kSync:
      s.sim.net.gst = 0;  // bounded delays from the start
      s.sim.net.delta = 5;
      break;
    case Timing::kPartialSync:
      s.sim.net.gst = 30'000;
      s.sim.net.delta = 10;
      break;
    case Timing::kAsync: {
      // No GST within any horizon; the adversary freezes the traffic of
      // enough correct processes to starve every quorum (allowed in a truly
      // asynchronous system, where "slow" and "crashed" are
      // indistinguishable).
      s.sim.net.gst = kSimTimeMax / 2;
      s.sim.net.delta = 10;
      s.sim.horizon = 400'000;
      IdSet frozen;
      // Freeze two correct processes (with f=1 Byzantine already silent, no
      // quorum can assemble).
      if (s.mode == cup::Mode::kCupft) {
        frozen = {ProcessId(1), ProcessId(2)};
      } else {
        frozen = {ProcessId(1), ProcessId(2)};
      }
      s.make_policy = [frozen] {
        return std::make_unique<sim::SlowSenderPolicy>(
            std::make_unique<sim::RandomDelayPolicy>(), frozen,
            /*release_at=*/kSimTimeMax / 2);
      };
      break;
    }
  }
  return s;
}

const char* knowledge_name(Knowledge k) {
  switch (k) {
    case Knowledge::kKnownNKnownF:
      return "known n, known f";
    case Knowledge::kUnknownNKnownF:
      return "unknown n, known f";
    case Knowledge::kUnknownNUnknownF:
      return "unknown n, unknown f";
  }
  return "?";
}

const char* timing_name(Timing t) {
  switch (t) {
    case Timing::kSync:
      return "synchronous";
    case Timing::kPartialSync:
      return "partially synchronous";
    case Timing::kAsync:
      return "asynchronous";
  }
  return "?";
}

void print_table1() {
  std::printf("\n=== T1: Table I — (im)possibility matrix ===\n");
  std::printf("    paper claim: all 9 cells solvable except the async row\n");
  std::printf("%-24s %-22s %-10s %-28s\n", "communication", "knowledge",
              "expected", "measured (5 seeds)");
  for (Timing t : {Timing::kSync, Timing::kPartialSync, Timing::kAsync}) {
    for (Knowledge k :
         {Knowledge::kKnownNKnownF, Knowledge::kUnknownNKnownF,
          Knowledge::kUnknownNUnknownF}) {
      std::size_t solved = 0, violated = 0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto report = cup::run_scenario(cell_scenario(k, t, seed));
        if (report.verdict() == "SOLVED") ++solved;
        if (!report.agreement) ++violated;
      }
      const bool expected_solvable = t != Timing::kAsync;
      std::printf("%-24s %-22s %-10s solved=%zu/5 violations=%zu  %s\n",
                  timing_name(t), knowledge_name(k),
                  expected_solvable ? "yes" : "no", solved, violated,
                  (expected_solvable ? solved == 5 : solved == 0) &&
                          violated == 0
                      ? "[matches]"
                      : "[MISMATCH]");
    }
  }
}

void BM_Table1Cell(benchmark::State& state) {
  const auto knowledge = static_cast<Knowledge>(state.range(0));
  const auto timing = static_cast<Timing>(state.range(1));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = cup::run_scenario(cell_scenario(knowledge, timing, seed++));
    benchmark::DoNotOptimize(report.messages_sent);
    state.counters["sim_ticks"] =
        static_cast<double>(report.completion_time.value_or(-1));
    state.counters["messages"] = static_cast<double>(report.messages_sent);
  }
}
BENCHMARK(BM_Table1Cell)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

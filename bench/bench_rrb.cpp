// Experiment P4 — signed vs unsigned discovery ablation.
//
// The original BFT-CUP delivers a PD only after receiving it over > f
// node-disjoint paths (reachable reliable broadcast); the authenticated
// variant (Section III) accepts a single signed copy. Same topology, same
// schedule: compare traffic and delivered knowledge.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "graph/figures.hpp"
#include "graph/generators.hpp"
#include "pd/participant_detector.hpp"
#include "protocol/discovery.hpp"
#include "protocol/rrb.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace bftcup;

struct Counters {
  std::size_t pds_delivered = 0;
  std::uint64_t path_checks = 0;
};

class SignedDiscoveryProcess : public sim::Process {
 public:
  SignedDiscoveryProcess(ProcessId id, IdSet pd, Counters* counters)
      : sim::Process(id), discovery_(id, std::move(pd), 50),
        counters_(counters) {}

  void on_start(sim::Context& ctx) override { discovery_.start(ctx); }
  void on_message(ProcessId from, const msg::Message& m,
                  sim::Context& ctx) override {
    const std::size_t before = discovery_.view().received().size();
    discovery_.handle_message(from, m, ctx);
    counters_->pds_delivered += discovery_.view().received().size() - before;
  }
  void on_timer(int kind, sim::Context& ctx) override {
    if ((kind & 0xff) == protocol::Discovery::kTimerKind) {
      discovery_.on_timer(kind, ctx);
    }
  }

 private:
  protocol::Discovery discovery_;
  Counters* counters_;
};

class RrbProcess : public sim::Process {
 public:
  RrbProcess(ProcessId id, IdSet pd, std::size_t f, Counters* counters)
      : sim::Process(id), rrb_(id, std::move(pd), f, 500),
        counters_(counters) {}

  void on_start(sim::Context& ctx) override { rrb_.start(ctx); }
  void on_message(ProcessId from, const msg::Message& m,
                  sim::Context& ctx) override {
    if (rrb_.handle_message(from, m, ctx)) ++counters_->pds_delivered;
    counters_->path_checks = rrb_.path_checks();
  }
  void on_timer(int, sim::Context&) override { rrb_.stop(); }

 private:
  protocol::RrbDiscovery rrb_;
  Counters* counters_;
};

struct Result {
  std::uint64_t messages;
  std::uint64_t bytes;
  std::size_t pds_delivered;
  std::uint64_t path_checks;
};

Result run(const graph::Digraph& g, const IdSet& silent, std::size_t f,
           bool signed_variant, SimTime horizon = 20'000) {
  sim::Simulator::Options options;
  options.horizon = horizon;
  options.net.delta = 10;
  sim::Simulator simulator(options);
  Counters counters;
  const auto pds = pd::ParticipantDetector::from_graph(g);
  for (ProcessId id : g.vertices()) {
    if (silent.contains(id)) continue;  // silent Byzantine: absent
    if (signed_variant) {
      simulator.add_process(std::make_unique<SignedDiscoveryProcess>(
          id, pds.pd_of(id), &counters));
    } else {
      simulator.add_process(
          std::make_unique<RrbProcess>(id, pds.pd_of(id), f, &counters));
    }
  }
  simulator.run();
  return {simulator.trace().messages_sent(), simulator.trace().bytes_sent(),
          counters.pds_delivered, counters.path_checks};
}

void print_experiment() {
  std::printf("\n=== P4: signed vs unsigned (RRB) discovery ===\n");
  std::printf("%18s %10s | %10s %10s %12s %12s\n", "topology", "variant",
              "messages", "bytes", "pds-delivrd", "path-checks");
  Rng rng(3);
  graph::generators::BftCupParams params;
  params.f = 1;
  params.sink_size = 5;
  params.non_sink = 5;
  params.byzantine_in_sink = 1;
  const auto sys = graph::generators::random_bft_cup(params, rng);

  for (const auto& [name, g, silent, f] :
       {std::tuple{"fig1b", graph::figures::fig1b().graph,
                   graph::figures::fig1b().faulty, std::size_t{1}},
        std::tuple{"random(n=10,f=1)", sys.graph, sys.faulty,
                   std::size_t{1}}}) {
    for (bool signed_variant : {true, false}) {
      const Result r = run(g, silent, f, signed_variant);
      std::printf("%18s %10s | %10llu %10llu %12zu %12llu\n", name,
                  signed_variant ? "signed" : "rrb",
                  static_cast<unsigned long long>(r.messages),
                  static_cast<unsigned long long>(r.bytes), r.pds_delivered,
                  static_cast<unsigned long long>(r.path_checks));
    }
  }
}

void BM_Discovery(benchmark::State& state) {
  const bool signed_variant = state.range(0) == 0;
  const auto inst = graph::figures::fig1b();
  for (auto _ : state) {
    const Result r = run(inst.graph, inst.faulty, inst.f, signed_variant);
    benchmark::DoNotOptimize(r.pds_delivered);
    state.counters["messages"] = static_cast<double>(r.messages);
    state.counters["delivered"] = static_cast<double>(r.pds_delivered);
  }
}
BENCHMARK(BM_Discovery)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment P5 — graph-algorithm microbenchmarks: the κ / disjoint-path /
// SCC machinery every checker and every node runs.
#include <benchmark/benchmark.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/osr.hpp"
#include "graph/scc.hpp"

namespace {

using namespace bftcup;

graph::Digraph complete(std::size_t n) {
  graph::Digraph g;
  for (std::uint64_t a = 1; a <= n; ++a) {
    for (std::uint64_t b = 1; b <= n; ++b) {
      if (a != b) g.add_edge(ProcessId(a), ProcessId(b));
    }
  }
  return g;
}

graph::Digraph random_strong(std::size_t n, std::size_t extra,
                             std::uint64_t seed) {
  Rng rng(seed);
  graph::Digraph g;
  for (std::uint64_t i = 0; i < n; ++i) {
    g.add_edge(ProcessId(i), ProcessId((i + 1) % n));
  }
  for (std::size_t e = 0; e < extra; ++e) {
    g.add_edge(ProcessId(rng.next_below(n)), ProcessId(rng.next_below(n)));
  }
  return g;
}

void BM_Tarjan(benchmark::State& state) {
  const auto g = random_strong(static_cast<std::size_t>(state.range(0)),
                               static_cast<std::size_t>(state.range(0)) * 4,
                               1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::strongly_connected_components(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Tarjan)->Range(16, 4096)->Complexity(benchmark::oN);

void BM_DisjointPaths(benchmark::State& state) {
  const auto g = complete(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::disjoint_path_count(g, ProcessId(1), ProcessId(2)));
  }
}
BENCHMARK(BM_DisjointPaths)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_StrongConnectivity(benchmark::State& state) {
  const auto g = complete(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::strong_connectivity(g));
  }
}
BENCHMARK(BM_StrongConnectivity)->Arg(4)->Arg(6)->Arg(8)->Arg(12)->Arg(16);

void BM_IsKStronglyConnected(benchmark::State& state) {
  const auto g = complete(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::is_k_strongly_connected(g, 2));
  }
}
BENCHMARK(BM_IsKStronglyConnected)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_KOsrCheck(benchmark::State& state) {
  Rng rng(7);
  graph::generators::BftCupParams params;
  params.f = 1;
  params.sink_size = 5;
  params.non_sink = static_cast<std::size_t>(state.range(0));
  params.byzantine_in_sink = 1;
  const auto sys = graph::generators::random_bft_cup(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::check_bft_cup_requirements(sys.graph, sys.faulty, sys.f));
  }
}
BENCHMARK(BM_KOsrCheck)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_MaxOsrK(benchmark::State& state) {
  const auto g = complete(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::max_osr_k(g));
  }
}
BENCHMARK(BM_MaxOsrK)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

BENCHMARK_MAIN();

// Experiment P2 — sink/core candidate-search cost: exhaustive vs structured
// strategies, and the underlying κ computations, as sink size grows.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "graph/generators.hpp"
#include "protocol/core.hpp"
#include "protocol/sink_search.hpp"

namespace {

using namespace bftcup;

protocol::KnowledgeView view_for(std::size_t core_size, std::uint64_t seed) {
  Rng rng(seed);
  graph::generators::CupftParams params;
  params.f = 1;
  params.core_size = core_size;
  params.periphery = 4;
  params.byzantine_in_core = 1;
  const auto sys = graph::generators::random_cupft(params, rng);
  return protocol::KnowledgeView::omniscient(sys.graph);
}

void print_experiment() {
  std::printf("\n=== P2: candidate search ablation ===\n");
  std::printf("%10s %12s | %12s %12s\n", "core size", "strategy",
              "candidates", "core found");
  for (std::size_t core : {4, 5, 6, 8, 10}) {
    const auto view = view_for(core, 3);
    for (const char* which : {"exhaustive", "structured"}) {
      std::unique_ptr<protocol::SinkSearch> search;
      if (which[0] == 'e') {
        search = std::make_unique<protocol::ExhaustiveSinkSearch>();
      } else {
        search = std::make_unique<protocol::StructuredSinkSearch>();
      }
      const auto candidates = search->candidates(view);
      const auto found = protocol::try_find_core(view, *search);
      std::printf("%10zu %12s | %12zu %12s\n", core, which, candidates.size(),
                  found ? "yes" : "no");
    }
  }
}

template <typename Strategy>
void BM_Search(benchmark::State& state) {
  const auto view = view_for(static_cast<std::size_t>(state.range(0)), 3);
  const Strategy search;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.candidates(view));
  }
}
BENCHMARK_TEMPLATE(BM_Search, protocol::ExhaustiveSinkSearch)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10);
BENCHMARK_TEMPLATE(BM_Search, protocol::StructuredSinkSearch)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(14);

void BM_TryFindCore(benchmark::State& state) {
  const auto view = view_for(static_cast<std::size_t>(state.range(0)), 3);
  const protocol::ExhaustiveSinkSearch search;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::try_find_core(view, search));
  }
}
BENCHMARK(BM_TryFindCore)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

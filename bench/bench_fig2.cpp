// Experiment F2 — Fig. 2 / Theorem 7: the impossibility of BFT-CUP-grade
// knowledge without a known fault threshold, as executable runs.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "graph/figures.hpp"

namespace {

using namespace bftcup;

constexpr Value kV = 111;
constexpr Value kU = 222;

cup::Scenario ab_scenario(cup::Mode mode, std::uint64_t seed) {
  const auto inst = graph::figures::fig2c();
  cup::Scenario s;
  s.graph = inst.graph;
  s.mode = mode;
  s.sim.seed = seed;
  s.sim.net.gst = 800'000;
  s.sim.horizon = mode == cup::Mode::kNaive ? 1'000'000 : 150'000;
  for (std::uint64_t id = 1; id <= 4; ++id) s.proposals[ProcessId(id)] = kV;
  for (std::uint64_t id = 5; id <= 8; ++id) s.proposals[ProcessId(id)] = kU;
  s.make_policy = [] {
    IdSet a, b;
    for (std::uint64_t id = 1; id <= 4; ++id) a.insert(ProcessId(id));
    for (std::uint64_t id = 5; id <= 8; ++id) b.insert(ProcessId(id));
    return std::make_unique<sim::GroupStretchPolicy>(
        std::make_unique<sim::RandomDelayPolicy>(), a, b, 700'000);
  };
  return s;
}

void print_experiment() {
  bench::print_header("F2: Fig. 2 — Theorem 7 impossibility",
                      "A decides v, B decides u, AB violates Agreement "
                      "under any unknown-f protocol with G_di knowledge");

  {
    const auto inst = graph::figures::fig2a();
    cup::Scenario s;
    s.graph = inst.graph;
    s.faulty = inst.faulty;
    s.mode = cup::Mode::kNaive;
    for (std::uint64_t id = 1; id <= 4; ++id) s.proposals[ProcessId(id)] = kV;
    bench::print_row("system A, naive unknown-f", cup::run_scenario(s));
  }
  {
    const auto inst = graph::figures::fig2b();
    cup::Scenario s;
    s.graph = inst.graph;
    s.faulty = inst.faulty;
    s.mode = cup::Mode::kNaive;
    for (std::uint64_t id = 5; id <= 8; ++id) s.proposals[ProcessId(id)] = kU;
    bench::print_row("system B, naive unknown-f", cup::run_scenario(s));
  }

  std::size_t violations = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto report = cup::run_scenario(ab_scenario(cup::Mode::kNaive, seed));
    if (!report.agreement) ++violations;
    if (seed == 1) bench::print_row("system AB, naive unknown-f", report);
  }
  std::printf("agreement violations on AB (naive): %zu/5 seeds\n", violations);

  bench::print_row("system AB, BFT-CUPFT (fixed)",
                   cup::run_scenario(ab_scenario(cup::Mode::kCupft, 1)));
}

void BM_SystemAbNaiveSplit(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = cup::run_scenario(ab_scenario(cup::Mode::kNaive, seed++));
    benchmark::DoNotOptimize(report.agreement);
    state.counters["violated"] = report.agreement ? 0 : 1;
  }
}
BENCHMARK(BM_SystemAbNaiveSplit)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment F2 — Fig. 2 / Theorem 7: the impossibility of BFT-CUP-grade
// knowledge without a known fault threshold, as executable runs.
#include <benchmark/benchmark.h>

#include <cinttypes>

#include "bench_util.hpp"

namespace {

using namespace bftcup;

const cup::ScenarioRegistry& registry() {
  return cup::ScenarioRegistry::paper();
}

void print_experiment() {
  bench::print_header("F2: Fig. 2 — Theorem 7 impossibility",
                      "A decides v, B decides u, AB violates Agreement "
                      "under any unknown-f protocol with G_di knowledge");

  bench::print_row("system A, naive unknown-f",
                   registry().run("fig2/system-a-naive", 1));
  bench::print_row("system B, naive unknown-f",
                   registry().run("fig2/system-b-naive", 1));

  // The split-brain sweep: 5 seeds of system AB, hardware-parallel.
  cup::Sweep sweep;
  sweep.add(registry(), "fig2/system-ab-naive").seeds(1, 5);
  const cup::BatchReport batch = cup::BatchRunner().run(sweep);
  const cup::RunRecord& first =
      *batch.runs_of("fig2/system-ab-naive").front();
  std::printf("%-34s %-20s %10" PRId64 " %10" PRIu64 " %12" PRIu64 "\n",
              "system AB, naive unknown-f", first.verdict.c_str(),
              first.latency, first.messages, first.value);
  const auto stats = batch.scenarios();
  std::printf("agreement violations on AB (naive): %zu/%zu seeds\n",
              stats.front().agreement_violations, stats.front().runs);

  bench::print_row("system AB, BFT-CUPFT (fixed)",
                   registry().run("fig2/system-ab-cupft", 1));
}

void BM_SystemAbNaiveSplit(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = registry().run("fig2/system-ab-naive", seed++);
    benchmark::DoNotOptimize(report.agreement);
    state.counters["violated"] = report.agreement ? 0 : 1;
  }
}
BENCHMARK(BM_SystemAbNaiveSplit)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

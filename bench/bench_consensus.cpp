// Experiment P3 — the price of not knowing f: AuthCup (known f) vs CUPFT
// (unknown f) end-to-end on identical BFT-CUPFT-compatible topologies
// (the registry's "price-of-f" family).
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <string>

#include "cup/batch_runner.hpp"

namespace {

using namespace bftcup;

std::string family_name(std::size_t core, std::size_t periphery,
                        const char* mode) {
  return "price-of-f/core" + std::to_string(core) + "-peri" +
         std::to_string(periphery) + "/" + mode;
}

/// The single run a (scenario, 1-seed) sweep produced; fails loudly if the
/// name ever drifts from the registry's.
const cup::RunRecord& only_run(const cup::BatchReport& batch,
                               const std::string& name) {
  const auto runs = batch.runs_of(name);
  if (runs.empty()) {
    std::fprintf(stderr, "no sweep results for \"%s\"\n", name.c_str());
    std::abort();
  }
  return *runs.front();
}

void print_experiment() {
  std::printf("\n=== P3: known-f (BFT-CUP) vs unknown-f (BFT-CUPFT) ===\n");
  std::printf("%6s %6s | %10s %10s | %10s %10s | %8s\n", "core", "peri",
              "auth-lat", "auth-msgs", "cupft-lat", "cupft-msgs", "overhead");

  // All 12 (topology, mode) points in one hardware-parallel batch.
  cup::Sweep sweep;
  sweep.add_tag(cup::ScenarioRegistry::paper(), "price-of-f").seeds(5, 1);
  const cup::BatchReport batch = cup::BatchRunner().run(sweep);

  for (std::size_t core : {5, 7}) {
    for (std::size_t periphery : {3, 6, 10}) {
      const cup::RunRecord& auth =
          only_run(batch, family_name(core, periphery, "auth"));
      const cup::RunRecord& cupft =
          only_run(batch, family_name(core, periphery, "cupft"));
      const double overhead =
          auth.latency > 0 && cupft.latency > 0
              ? static_cast<double>(cupft.latency) /
                    static_cast<double>(auth.latency)
              : 0.0;
      std::printf("%6zu %6zu | %10" PRId64 " %10" PRIu64 " | %10" PRId64
                  " %10" PRIu64 " | %7.2fx  %s/%s\n",
                  core, periphery, auth.latency, auth.messages, cupft.latency,
                  cupft.messages, overhead, auth.verdict.c_str(),
                  cupft.verdict.c_str());
    }
  }
}

void BM_Consensus(benchmark::State& state) {
  const auto core = static_cast<std::size_t>(state.range(1));
  // Measured point: the registry's periphery-6 family (the closest to the
  // pre-registry periphery-5 setup). The factory — which generates the
  // random topology — runs once, outside the timed loop; only the seed
  // changes per iteration.
  cup::ScenarioBuilder builder = cup::ScenarioRegistry::paper().builder(
      family_name(core, 6, state.range(0) == 0 ? "auth" : "cupft"));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = cup::run_scenario(builder.seed(seed++).build());
    benchmark::DoNotOptimize(report.all_correct_decided);
    state.counters["sim_ticks"] =
        static_cast<double>(report.completion_time.value_or(-1));
    state.counters["messages"] = static_cast<double>(report.messages_sent);
  }
}
BENCHMARK(BM_Consensus)
    ->ArgsProduct({{0, 1}, {5, 7}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

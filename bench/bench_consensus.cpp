// Experiment P3 — the price of not knowing f: AuthCup (known f) vs CUPFT
// (unknown f) end-to-end on identical BFT-CUPFT-compatible topologies.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cup/runner.hpp"
#include "graph/generators.hpp"

namespace {

using namespace bftcup;

struct Setup {
  graph::Digraph graph;
  IdSet faulty;
  std::size_t f;
};

Setup make_setup(std::size_t core, std::size_t periphery,
                 std::uint64_t seed) {
  Rng rng(seed);
  graph::generators::CupftParams params;
  params.f = 1;
  params.core_size = core;
  params.periphery = periphery;
  params.byzantine_in_core = 1;
  const auto sys = graph::generators::random_cupft(params, rng);
  return {sys.graph, sys.faulty, sys.f};
}

cup::RunReport run_mode(const Setup& setup, cup::Mode mode,
                        std::uint64_t seed) {
  cup::Scenario s;
  s.graph = setup.graph;
  s.faulty = setup.faulty;
  s.f = setup.f;
  s.mode = mode;
  s.sim.seed = seed;
  return cup::run_scenario(s);
}

void print_experiment() {
  std::printf("\n=== P3: known-f (BFT-CUP) vs unknown-f (BFT-CUPFT) ===\n");
  std::printf("%6s %6s | %10s %10s | %10s %10s | %8s\n", "core", "peri",
              "auth-lat", "auth-msgs", "cupft-lat", "cupft-msgs", "overhead");
  for (std::size_t core : {5, 7}) {
    for (std::size_t periphery : {3, 6, 10}) {
      const Setup setup = make_setup(core, periphery, 11);
      const auto auth = run_mode(setup, cup::Mode::kAuth, 5);
      const auto cupft = run_mode(setup, cup::Mode::kCupft, 5);
      const double overhead =
          auth.completion_time && cupft.completion_time && *auth.completion_time
              ? static_cast<double>(*cupft.completion_time) /
                    static_cast<double>(*auth.completion_time)
              : 0.0;
      std::printf("%6zu %6zu | %10lld %10llu | %10lld %10llu | %7.2fx  %s/%s\n",
                  core, periphery,
                  static_cast<long long>(auth.completion_time.value_or(-1)),
                  static_cast<unsigned long long>(auth.messages_sent),
                  static_cast<long long>(cupft.completion_time.value_or(-1)),
                  static_cast<unsigned long long>(cupft.messages_sent),
                  overhead, auth.verdict().c_str(), cupft.verdict().c_str());
    }
  }
}

void BM_Consensus(benchmark::State& state) {
  const Setup setup = make_setup(static_cast<std::size_t>(state.range(1)), 5,
                                 11);
  const auto mode =
      state.range(0) == 0 ? cup::Mode::kAuth : cup::Mode::kCupft;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = run_mode(setup, mode, seed++);
    benchmark::DoNotOptimize(report.all_correct_decided);
    state.counters["sim_ticks"] =
        static_cast<double>(report.completion_time.value_or(-1));
    state.counters["messages"] = static_cast<double>(report.messages_sent);
  }
}
BENCHMARK(BM_Consensus)
    ->ArgsProduct({{0, 1}, {5, 7}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Large-n frontier: does the stack hold up when the system outgrows the
// figures-scale corpus by three orders of magnitude?
//
// Three workload families, one JSON (BENCH_scale.json):
//
//  - setkernel/<op>: the blocked-bitset kernels (common/bitset64.hpp)
//    against the scalar FlatSet reference at |set| ∈ {1024, 4096, 65536}.
//    Records speedup_vs_scalar — the adaptive-representation switch in the
//    membership hot paths is only worth its complexity if this ratio stays
//    well above 1 for the sizes where the dense probe engages.
//  - bigscc/<certify|refute>: the big-SCC certification path of
//    sink_search at component sizes {64, 128, 256} — beyond every
//    enumeration cap, so each evaluation exercises the κ early-exit
//    certificates plus the seeded C \ D sampling. certify = complete
//    component (κ = n-1 certificate), refute = directed ring (degree-bound
//    certificate, samples all refuted).
//  - scale-<adhoc|committees>: full run_scenario (discovery to membership
//    convergence to decision) on the hierarchical generator families at
//    n ∈ {1k, 10k, 100k}, each at threads ∈ {1, 2, 8} (the intra-run
//    WorkPool membership kernel; threads=1 is the serial path). Records
//    events/sec (delivered messages over wall time), peak RSS, and
//    parallel_speedup = serial seconds / this row's seconds — a same-machine
//    ratio, so it gates robustly across runner speeds. Legs run in
//    ascending n so the RSS high-water mark is attributable per leg.
//
// The 1k/10k rows gate CI (tools/check_bench_regression.py); the 100k rows
// are recorded ungated (too slow for per-PR CI, tracked for the trajectory).
// NOTE: the checked-in baseline was recorded on a single-core container, so
// its parallel_speedup values sit near 1.0 — the gate only fails on drops,
// and a multi-core re-record can only raise the recorded ratios.
//
// Usage: bench_scale [output.json] [--quick] [--huge]
//   --quick  CI mode: scale legs at 1k and 10k only.
//   --huge   additionally run the n = 1M scale legs (minutes; not part of
//            the checked-in baseline).
#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/bitset64.hpp"
#include "cup/scenario_builder.hpp"
#include "graph/generators.hpp"
#include "protocol/sink_search.hpp"

namespace bftcup::bench {
namespace {

struct Result {
  std::string workload;
  std::string strategy;
  std::string mode;
  std::size_t n = 0;
  std::size_t threads = 0;   ///< scale runs only: WorkPool width (1 = serial)
  std::uint64_t events = 0;  ///< ops, evaluations, or delivered messages
  double seconds = 0.0;
  double speedup_vs_scalar = 0.0;  ///< setkernel only
  double parallel_speedup = 0.0;   ///< scale only: serial s / this row's s
  std::uint64_t peak_rss = 0;      ///< scale runs only
  std::uint64_t big_scc_fallbacks = 0;
  bool gate = true;

  [[nodiscard]] double events_per_sec() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
  }
};

// --- setkernel -------------------------------------------------------------

/// Two deterministic id sets of `size` drawn from a universe 4x as large
/// (25% density — above the adaptive probe's switch point, the regime the
/// kernels own).
std::pair<IdSet, IdSet> make_operand_sets(std::size_t size) {
  Rng rng(0x5ca1eULL + size);
  const std::uint64_t universe = 4 * size;
  IdSet a, b;
  while (a.size() < size) a.insert(ProcessId(rng.next_below(universe)));
  while (b.size() < size) b.insert(ProcessId(rng.next_below(universe)));
  return {std::move(a), std::move(b)};
}

BitSet to_bitset(const IdSet& set, std::uint64_t universe) {
  BitSet bits;
  bits.reset_bits(universe);
  for (ProcessId id : set) bits.set(id.raw());
  return bits;
}

/// Times `reps` runs of `op` (which must return something accumulable so
/// the calls cannot be elided) and returns seconds.
template <typename Op>
double time_op(std::size_t reps, Op&& op) {
  volatile std::uint64_t observed = 0;
  const double t0 = now_seconds();
  std::uint64_t acc = 0;
  for (std::size_t r = 0; r < reps; ++r) acc += op();
  const double elapsed = now_seconds() - t0;
  observed = acc;
  (void)observed;
  return elapsed;
}

Result run_setkernel(const char* op_name, std::size_t size) {
  const auto [a, b] = make_operand_sets(size);
  const std::uint64_t universe = 4 * size;
  const BitSet bits_a = to_bitset(a, universe);
  const BitSet bits_b = to_bitset(b, universe);
  BitSet out;
  out.reset_bits(universe);

  // Rep counts sized so both sides run long enough (tens of ms) that the
  // ratio is scheduler-robust; the bitset side does `kWordRatio`x more reps
  // because its per-op cost is a fraction of the scalar side's.
  const std::size_t scalar_reps =
      std::max<std::size_t>(3, (std::size_t{1} << 22) >> std::bit_width(size));
  const std::size_t bitset_reps = scalar_reps * 16;

  double scalar_s = 0.0;
  double bitset_s = 0.0;
  if (std::strcmp(op_name, "intersect") == 0) {
    scalar_s = time_op(scalar_reps,
                       [&] { return a.set_intersection(b).size(); });
    bitset_s = time_op(bitset_reps, [&] { return bits_a.intersect_count(bits_b); });
  } else if (std::strcmp(op_name, "union") == 0) {
    scalar_s = time_op(scalar_reps, [&] { return a.set_union(b).size(); });
    bitset_s = time_op(bitset_reps, [&] {
      out = bits_a;
      out.union_with(bits_b);
      return out.count();
    });
  } else {  // subset
    // Probe against a superset so the answer is `true` and both sides must
    // scan everything — random operands early-exit on the first mismatch,
    // which times the branch predictor, not the kernel. The true path is
    // also the hot one (P1's S1 ⊆ S_received holds for every real
    // candidate).
    const IdSet super = a.set_union(b);
    const BitSet bits_super = to_bitset(super, universe);
    scalar_s = time_op(scalar_reps,
                       [&] { return a.is_subset_of(super) ? 1U : 0U; });
    bitset_s = time_op(bitset_reps, [&] {
      return bits_a.is_subset_of(bits_super) ? 1U : 0U;
    });
  }

  Result r;
  r.workload = "setkernel";
  r.strategy = op_name;
  r.mode = "bitset";
  r.n = size;
  r.events = bitset_reps;
  r.seconds = bitset_s;
  const double scalar_per_op = scalar_s / static_cast<double>(scalar_reps);
  const double bitset_per_op = bitset_s / static_cast<double>(bitset_reps);
  r.speedup_vs_scalar =
      bitset_per_op > 0 ? scalar_per_op / bitset_per_op : 0.0;
  return r;
}

/// Best-of-3 on the ratio: the gated number must not move on a hiccup.
Result best_setkernel(const char* op_name, std::size_t size) {
  Result best = run_setkernel(op_name, size);
  for (int rep = 1; rep < 3; ++rep) {
    Result r = run_setkernel(op_name, size);
    if (r.speedup_vs_scalar > best.speedup_vs_scalar) best = r;
  }
  return best;
}

// --- bigscc ----------------------------------------------------------------

Result run_bigscc(bool certify, std::size_t n) {
  graph::Digraph g;
  if (certify) {
    // Complete component: the κ = n-1 certificate fires, every sampled
    // C \ D is itself complete and certifies too.
    for (std::uint64_t a = 1; a <= n; ++a) {
      for (std::uint64_t b = 1; b <= n; ++b) {
        if (a != b) g.add_edge(ProcessId(a), ProcessId(b));
      }
    }
  } else {
    // Directed ring: κ = 1 by the degree-bound certificate; every sampled
    // removal breaks the ring (κ = 0) and is refuted.
    for (std::uint64_t i = 1; i <= n; ++i) {
      g.add_edge(ProcessId(i), ProcessId(i % n + 1));
    }
  }
  const auto view = protocol::KnowledgeView::omniscient(g);

  protocol::SearchOptions options;
  options.incremental = false;  // measure the search, not the memo
  const protocol::StructuredSinkSearch search(options);

  const std::size_t reps = certify ? 64 : 256;
  std::size_t candidates_seen = 0;
  const double t0 = now_seconds();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    candidates_seen += search.candidates(view).size();
  }
  const double elapsed = now_seconds() - t0;
  volatile std::size_t sink = candidates_seen;
  (void)sink;

  Result r;
  r.workload = "bigscc";
  r.strategy = certify ? "certify" : "refute";
  r.mode = "structured";
  r.n = n;
  r.events = reps;
  r.seconds = elapsed;
  return r;
}

Result best_bigscc(bool certify, std::size_t n) {
  Result best = run_bigscc(certify, n);
  for (int rep = 1; rep < 3; ++rep) {
    Result r = run_bigscc(certify, n);
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

// --- scale runs ------------------------------------------------------------

Result run_scale(const char* family, std::size_t total, std::size_t threads,
                 bool gate) {
  Rng rng(0xbf7c0bULL + total);
  graph::generators::GeneratedSystem sys;
  if (std::strcmp(family, "adhoc") == 0) {
    graph::generators::AdhocMeshParams params;
    params.total = total;
    sys = graph::generators::adhoc_mesh(params, rng);
  } else {
    graph::generators::HierarchyParams params;
    params.total = total;
    sys = graph::generators::committee_of_committees(params, rng);
  }

  // Structured search with a small removal budget: per-view components are
  // rings/singletons plus the root clique, so each evaluation is a handful
  // of κ certificates. The shared eval memo stays off — hashing a canonical
  // view per merge is pure overhead when every view is distinct by
  // construction (100k nodes each converge through a different PD order).
  protocol::SearchOptions options;
  options.removal_cap = 1;
  options.big_scc_samples = 4;
  auto search = std::make_shared<protocol::StructuredSinkSearch>(options);

  // threads == 1 runs the plain serial path (no pool installed): that is
  // the reference the parallel_speedup ratio is measured against, and a
  // single-worker pool would only add dispatch overhead to it.
  const double t0 = now_seconds();
  const auto report = cup::ScenarioBuilder(sys)
                          .mode(cup::Mode::kAuth)
                          .seed(17)
                          .search(std::move(search))
                          .eval_cache(false)
                          .parallel_eval(threads <= 1 ? 0 : threads)
                          .run();
  const double elapsed = now_seconds() - t0;
  if (!report.all_correct_decided || !report.agreement) {
    std::fprintf(stderr,
                 "bench_scale: %s n=%zu did NOT converge (decided=%d "
                 "agreement=%d) — scale claim void\n",
                 family, total, report.all_correct_decided ? 1 : 0,
                 report.agreement ? 1 : 0);
    std::exit(1);
  }

  Result r;
  r.workload = std::string("scale-") + family;
  r.strategy = "structured";
  r.mode = "auth";
  r.n = total;
  r.threads = threads;
  r.events = report.messages_delivered;
  r.seconds = elapsed;
  r.peak_rss = peak_rss_bytes();
  r.big_scc_fallbacks = report.big_scc_fallbacks;
  r.gate = gate;
  return r;
}

// --- output ----------------------------------------------------------------

void write_json(const std::string& path, const std::vector<Result>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scale: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"scale\",\n");
  std::fprintf(f, "  \"results\": [\n");
  bool first = true;
  for (const Result& r : results) {
    std::fprintf(f,
                 "%s    {\"workload\": \"%s\", \"strategy\": \"%s\", \"mode\": "
                 "\"%s\", \"n\": %zu, \"events\": %llu, \"seconds\": %.6f, "
                 "\"events_per_sec\": %.0f",
                 first ? "" : ",\n", r.workload.c_str(), r.strategy.c_str(),
                 r.mode.c_str(), r.n,
                 static_cast<unsigned long long>(r.events), r.seconds,
                 r.events_per_sec());
    if (r.workload == "setkernel") {
      std::fprintf(f, ", \"speedup_vs_scalar\": %.3f", r.speedup_vs_scalar);
    }
    if (r.threads > 0) {
      // host_cpus records the recording machine's core count next to every
      // threads-axis row: check_bench_regression.py skips the
      // parallel_speedup gate when a baseline was recorded single-core
      // (its speedups near-or-below 1.0 say nothing about the kernel).
      std::fprintf(f,
                   ", \"threads\": %zu, \"parallel_speedup\": %.3f, "
                   "\"host_cpus\": %u",
                   r.threads, r.parallel_speedup,
                   std::max(1u, std::thread::hardware_concurrency()));
    }
    if (r.peak_rss > 0) {
      std::fprintf(f, ", \"peak_rss_mb\": %.1f, \"big_scc_fallbacks\": %llu",
                   static_cast<double>(r.peak_rss) / (1024.0 * 1024.0),
                   static_cast<unsigned long long>(r.big_scc_fallbacks));
    }
    std::fprintf(f, ", \"gate\": %s}", r.gate ? "true" : "false");
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

void print_row(const Result& r) {
  std::printf(
      "%-18s %-10s %-10s %8zu %3zu %12llu %10.3f %14.0f %8.2fx %8.2fx %8.1f\n",
      r.workload.c_str(), r.strategy.c_str(), r.mode.c_str(), r.n, r.threads,
      static_cast<unsigned long long>(r.events), r.seconds, r.events_per_sec(),
      r.speedup_vs_scalar, r.parallel_speedup,
      static_cast<double>(r.peak_rss) / (1024.0 * 1024.0));
}

}  // namespace
}  // namespace bftcup::bench

int main(int argc, char** argv) {
  using namespace bftcup::bench;
  std::string out = "BENCH_scale.json";
  bool quick = false;
  bool huge = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--huge") == 0) {
      huge = true;
    } else {
      out = argv[i];
    }
  }

  std::vector<Result> results;
  std::printf("%-18s %-10s %-10s %8s %3s %12s %10s %14s %9s %9s %8s\n",
              "workload", "strategy", "mode", "n", "thr", "events", "seconds",
              "events/sec", "speedup", "par_spd", "rss_mb");

  for (const std::size_t size : {std::size_t{1024}, std::size_t{4096},
                                 std::size_t{65536}}) {
    for (const char* op : {"intersect", "union", "subset"}) {
      results.push_back(best_setkernel(op, size));
      print_row(results.back());
    }
  }

  for (const std::size_t n :
       {std::size_t{64}, std::size_t{128}, std::size_t{256}}) {
    for (const bool certify : {true, false}) {
      results.push_back(best_bigscc(certify, n));
      print_row(results.back());
    }
  }

  // Ascending n: peak_rss is a process high-water mark, so each leg's
  // reading is its own (see peak_rss_bytes). Each (family, n) leg runs the
  // threads axis with the serial row first — parallel_speedup for the wider
  // rows is measured against that same-leg serial time.
  std::vector<std::pair<std::size_t, bool>> scale_legs = {
      {1'000, true}, {10'000, true}};
  if (!quick) scale_legs.emplace_back(100'000, false);
  if (!quick && huge) scale_legs.emplace_back(1'000'000, false);
  for (const auto& [n, gate] : scale_legs) {
    for (const char* family : {"adhoc", "committees"}) {
      double serial_seconds = 0.0;
      for (const std::size_t threads :
           {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        Result r = run_scale(family, n, threads, gate);
        if (threads == 1) serial_seconds = r.seconds;
        r.parallel_speedup =
            r.seconds > 0 ? serial_seconds / r.seconds : 0.0;
        results.push_back(std::move(r));
        print_row(results.back());
      }
    }
  }

  write_json(out, results);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

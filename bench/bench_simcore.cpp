// Raw simulation-core throughput: the cost floor under every Table I /
// figure sweep. Two workloads, each at n ∈ {16, 64, 256} processes:
//
//  - timer-storm: every process perpetually re-arms a 1-tick timer. This is
//    pure event-queue churn — push/pop, dispatch, process lookup — with no
//    message payload at all.
//  - bcast-fanout: one hub broadcasts a quorum-cert-sized SETPDS message to
//    the other n-1 processes every tick. This is the discovery/PBFT hot
//    path: per-recipient enqueue cost for a payload-carrying message.
//
// Emits BENCH_simcore.json (machine-readable) so the repo's perf trajectory
// is recorded run over run, and prints a human table. The embedded baseline
// was measured on the pre-zero-copy core (commit f202124, Release, same
// workloads) — speedup_vs_baseline tracks the refactor's effect.
//
// Usage: bench_simcore [output.json]
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "msg/message.hpp"
#include "sim/simulator.hpp"

namespace bftcup::bench {
namespace {

/// events/sec measured at commit f202124 (map-based tables, deep-copy
/// broadcast, per-send encoded_size), Release build on the CI reference
/// machine. Keyed as "<workload>/<n>".
struct BaselineEntry {
  const char* key;
  double events_per_sec;
};
constexpr BaselineEntry kBaseline[] = {
    {"timer-storm/16", 12094771},  {"timer-storm/64", 8085727},
    {"timer-storm/256", 5916198},  {"bcast-fanout/16", 603719},
    {"bcast-fanout/64", 580256},   {"bcast-fanout/256", 495740},
};

double baseline_for(const std::string& key) {
  for (const BaselineEntry& e : kBaseline) {
    if (key == e.key) return e.events_per_sec;
  }
  return 0.0;
}

struct Result {
  std::string workload;
  std::size_t n = 0;
  std::uint64_t events = 0;
  double seconds = 0.0;

  [[nodiscard]] std::string key() const {
    return workload + "/" + std::to_string(n);
  }
  [[nodiscard]] double events_per_sec() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
  }
};

sim::Simulator::Options sim_options() {
  sim::Simulator::Options options;
  options.seed = 42;
  options.net.gst = 0;
  options.net.delta = 10;
  options.horizon = kSimTimeMax / 4;
  return options;
}

// --- timer-storm -----------------------------------------------------------

class TimerStormProcess final : public sim::Process {
 public:
  TimerStormProcess(ProcessId id, std::uint64_t* budget, std::uint64_t* fires)
      : sim::Process(id), budget_(budget), fires_(fires) {}

  void on_start(sim::Context& ctx) override { ctx.set_timer(1, 0); }
  void on_message(ProcessId, const msg::Message&, sim::Context&) override {}
  void on_timer(int, sim::Context& ctx) override {
    ++*fires_;
    if (*budget_ > 0) {
      --*budget_;
      ctx.set_timer(1, 0);
    }
  }

 private:
  std::uint64_t* budget_;
  std::uint64_t* fires_;
};

Result run_timer_storm(std::size_t n, std::uint64_t target_events) {
  std::uint64_t budget = target_events;
  std::uint64_t fires = 0;
  sim::Simulator simulator(sim_options());
  for (std::size_t i = 1; i <= n; ++i) {
    simulator.add_process(std::make_unique<TimerStormProcess>(
        ProcessId(i), &budget, &fires));
  }
  const auto t0 = std::chrono::steady_clock::now();
  simulator.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;

  Result result;
  result.workload = "timer-storm";
  result.n = n;
  result.events = fires;
  result.seconds = elapsed.count();
  return result;
}

// --- bcast-fanout ----------------------------------------------------------

/// A SETPDS message the size discovery actually produces once a handful of
/// PDs have been collected: 8 signed PDs of 16 members each (~1.5 KiB).
msg::Message fat_message() {
  msg::Message m;
  m.type = msg::MsgType::kSetPds;
  for (std::uint64_t owner = 1; owner <= 8; ++owner) {
    msg::SignedPd spd;
    spd.owner = ProcessId(owner);
    for (std::uint64_t member = 1; member <= 16; ++member) {
      spd.pd.insert(ProcessId(member));
    }
    m.pds.push_back(std::move(spd));
  }
  return m;
}

class FanoutHub final : public sim::Process {
 public:
  FanoutHub(ProcessId id, IdSet peers, std::uint64_t* rounds)
      : sim::Process(id), peers_(std::move(peers)), rounds_(rounds),
        payload_(fat_message()) {}

  void on_start(sim::Context& ctx) override { ctx.set_timer(1, 0); }
  void on_message(ProcessId, const msg::Message&, sim::Context&) override {}
  void on_timer(int, sim::Context& ctx) override {
    if (*rounds_ == 0) return;
    --*rounds_;
    ctx.broadcast(peers_, payload_);
    ctx.set_timer(1, 0);
  }

 private:
  IdSet peers_;
  std::uint64_t* rounds_;
  msg::Message payload_;
};

class FanoutSink final : public sim::Process {
 public:
  explicit FanoutSink(ProcessId id) : sim::Process(id) {}
  void on_start(sim::Context&) override {}
  void on_message(ProcessId, const msg::Message&, sim::Context&) override {}
};

Result run_bcast_fanout(std::size_t n, std::uint64_t target_deliveries) {
  std::uint64_t rounds = target_deliveries / (n - 1);
  sim::Simulator simulator(sim_options());
  IdSet peers;
  for (std::size_t i = 2; i <= n; ++i) peers.insert(ProcessId(i));
  simulator.add_process(
      std::make_unique<FanoutHub>(ProcessId(1), peers, &rounds));
  for (std::size_t i = 2; i <= n; ++i) {
    simulator.add_process(std::make_unique<FanoutSink>(ProcessId(i)));
  }
  const auto t0 = std::chrono::steady_clock::now();
  simulator.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;

  Result result;
  result.workload = "bcast-fanout";
  result.n = n;
  result.events = simulator.trace().messages_delivered();
  result.seconds = elapsed.count();
  return result;
}

// --- reporting -------------------------------------------------------------

void write_json(const std::string& path, const std::vector<Result>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_simcore: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"simcore\",\n");
  std::fprintf(f, "  \"baseline_commit\": \"f202124 (pre zero-copy core)\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    const double base = baseline_for(r.key());
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"n\": %zu, \"events\": %llu, "
                 "\"seconds\": %.6f, \"events_per_sec\": %.0f, "
                 "\"baseline_events_per_sec\": %.0f, "
                 "\"speedup_vs_baseline\": %.3f}%s\n",
                 r.workload.c_str(), r.n,
                 static_cast<unsigned long long>(r.events), r.seconds,
                 r.events_per_sec(), base,
                 base > 0 ? r.events_per_sec() / base : 0.0,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace bftcup::bench

int main(int argc, char** argv) {
  using namespace bftcup::bench;
  const std::string out = argc > 1 ? argv[1] : "BENCH_simcore.json";

  std::vector<Result> results;
  std::printf("%-18s %8s %12s %10s %14s %9s\n", "workload", "n", "events",
              "seconds", "events/sec", "speedup");
  for (std::size_t n : {std::size_t{16}, std::size_t{64}, std::size_t{256}}) {
    for (int pass = 0; pass < 2; ++pass) {
      // Pass 0 is a warm-up at 1/10 scale; only pass 1 is recorded.
      const std::uint64_t scale = pass == 0 ? 150'000 : 1'500'000;
      Result timer = run_timer_storm(n, scale);
      Result bcast = run_bcast_fanout(n, scale);
      if (pass == 0) continue;
      for (const Result* rp : {&timer, &bcast}) {
        const Result& r = *rp;
        const double base = baseline_for(r.key());
        std::printf("%-18s %8zu %12llu %10.3f %14.0f %8.2fx\n",
                    r.workload.c_str(), r.n,
                    static_cast<unsigned long long>(r.events), r.seconds,
                    r.events_per_sec(),
                    base > 0 ? r.events_per_sec() / base : 0.0);
        results.push_back(r);
      }
    }
  }
  write_json(out, results);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

// Experiment F1 — Fig. 1a/1b: a graph that fails vs. satisfies the BFT-CUP
// requirements, under a silent Byzantine participant 4.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "graph/figures.hpp"
#include "graph/osr.hpp"

namespace {

using namespace bftcup;

cup::Scenario scenario_for(const graph::figures::Instance& inst,
                           cup::ByzBehavior byz, std::uint64_t seed,
                           SimTime horizon) {
  cup::Scenario s;
  s.graph = inst.graph;
  s.faulty = inst.faulty;
  s.f = inst.f;
  s.mode = cup::Mode::kAuth;
  s.byz = byz;
  s.sim.seed = seed;
  s.sim.horizon = horizon;
  if (byz == cup::ByzBehavior::kFakePd) {
    s.fake_pds[ProcessId(4)] = IdSet{ProcessId(1), ProcessId(2), ProcessId(3)};
  }
  return s;
}

void print_experiment() {
  bench::print_header(
      "F1: Fig. 1a vs Fig. 1b",
      "1a: consensus impossible when 4 is silent; 1b: solvable with f=1");

  const auto a = graph::figures::fig1a();
  const auto b = graph::figures::fig1b();

  const auto ra = graph::check_bft_cup_requirements(a.graph, a.faulty, a.f);
  const auto rb = graph::check_bft_cup_requirements(b.graph, b.faulty, b.f);
  std::printf("checker fig1a: %s (%s)\n", ra.satisfied ? "ACCEPT" : "REJECT",
              ra.reason.c_str());
  std::printf("checker fig1b: %s\n", rb.satisfied ? "ACCEPT" : "REJECT");

  bench::print_row("fig1a silent-byz (run)",
                   cup::run_scenario(scenario_for(
                       a, cup::ByzBehavior::kSilent, 1, 150'000)));
  bench::print_row("fig1b silent-byz (run)",
                   cup::run_scenario(scenario_for(
                       b, cup::ByzBehavior::kSilent, 1, 2'000'000)));
  bench::print_row("fig1b fake-pd-byz (run)",
                   cup::run_scenario(scenario_for(
                       b, cup::ByzBehavior::kFakePd, 2, 2'000'000)));
  bench::print_row("fig1b wrong-value-byz (run)",
                   cup::run_scenario(scenario_for(
                       b, cup::ByzBehavior::kWrongValue, 3, 2'000'000)));
}

void BM_Fig1bEndToEnd(benchmark::State& state) {
  const auto inst = graph::figures::fig1b();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = cup::run_scenario(
        scenario_for(inst, cup::ByzBehavior::kSilent, seed++, 2'000'000));
    benchmark::DoNotOptimize(report.all_correct_decided);
    state.counters["sim_ticks"] =
        static_cast<double>(report.completion_time.value_or(-1));
    state.counters["messages"] = static_cast<double>(report.messages_sent);
  }
}
BENCHMARK(BM_Fig1bEndToEnd)->Unit(benchmark::kMillisecond);

void BM_Fig1aCheckerReject(benchmark::State& state) {
  const auto inst = graph::figures::fig1a();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::check_bft_cup_requirements(inst.graph, inst.faulty, inst.f));
  }
}
BENCHMARK(BM_Fig1aCheckerReject);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment F1 — Fig. 1a/1b: a graph that fails vs. satisfies the BFT-CUP
// requirements, under a silent Byzantine participant 4.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "graph/figures.hpp"
#include "graph/osr.hpp"

namespace {

using namespace bftcup;

const cup::ScenarioRegistry& registry() {
  return cup::ScenarioRegistry::paper();
}

void print_experiment() {
  bench::print_header(
      "F1: Fig. 1a vs Fig. 1b",
      "1a: consensus impossible when 4 is silent; 1b: solvable with f=1");

  const auto a = graph::figures::fig1a();
  const auto b = graph::figures::fig1b();

  const auto ra = graph::check_bft_cup_requirements(a.graph, a.faulty, a.f);
  const auto rb = graph::check_bft_cup_requirements(b.graph, b.faulty, b.f);
  std::printf("checker fig1a: %s (%s)\n", ra.satisfied ? "ACCEPT" : "REJECT",
              ra.reason.c_str());
  std::printf("checker fig1b: %s\n", rb.satisfied ? "ACCEPT" : "REJECT");

  bench::print_row("fig1a silent-byz (run)", registry().run("fig1a/silent", 1));
  bench::print_row("fig1b silent-byz (run)", registry().run("fig1b/silent", 1));
  bench::print_row("fig1b fake-pd-byz (run)",
                   registry().run("fig1b/fake-pd", 2));
  bench::print_row("fig1b wrong-value-byz (run)",
                   registry().run("fig1b/wrong-value", 3));
}

void BM_Fig1bEndToEnd(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = registry().run("fig1b/silent", seed++);
    benchmark::DoNotOptimize(report.all_correct_decided);
    state.counters["sim_ticks"] =
        static_cast<double>(report.completion_time.value_or(-1));
    state.counters["messages"] = static_cast<double>(report.messages_sent);
  }
}
BENCHMARK(BM_Fig1bEndToEnd)->Unit(benchmark::kMillisecond);

void BM_Fig1aCheckerReject(benchmark::State& state) {
  const auto inst = graph::figures::fig1a();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::check_bft_cup_requirements(inst.graph, inst.faulty, inst.f));
  }
}
BENCHMARK(BM_Fig1aCheckerReject);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Run-engine throughput: runs/sec of the pooled RunContext vs fresh
// simulators — the unit of work BatchRunner and the adversary explorer
// execute millions of times.
//
// Workloads, each on the sharded CUPFT system (one 8-clique core + 3-cycle
// periphery, the membership engine's target regime):
//
//  - seed-sweep/<n>: one scenario crossed with 32 seeds, the BatchRunner
//    pattern. Pooling recycles the simulator, arena, keyring, and the
//    content-addressed caches; the converged views of the topology are
//    identical across seeds, so the exponential membership searches of the
//    steady state are answered from the retained evaluation memo.
//  - replay/<n>: the same (scenario, seed) 32 times, the shrinker / CI
//    replay pattern. Every cache layer converges to 100% hits.
//
// Each leg also cross-checks that the pooled digests match the fresh
// digests run by run — a bench that got faster by diverging would abort.
//
// Emits BENCH_runengine.json; tools/check_bench_regression.py gates CI on
// speedup_vs_fresh (a same-machine ratio, robust to runner speed).
//
// Usage: bench_runengine [output.json] [--quick]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cup/run_context.hpp"
#include "cup/scenario_builder.hpp"

namespace bftcup::bench {
namespace {

constexpr std::uint64_t kRuns = 32;

struct Result {
  std::string workload;
  std::size_t n = 0;
  std::uint64_t runs = 0;
  std::uint64_t events = 0;  ///< messages delivered per run (scale witness)
  double seconds = 0.0;          ///< pooled
  double fresh_seconds = 0.0;    ///< fresh-context baseline

  [[nodiscard]] double runs_per_sec() const {
    return seconds > 0 ? static_cast<double>(runs) / seconds : 0.0;
  }
  [[nodiscard]] double fresh_runs_per_sec() const {
    return fresh_seconds > 0 ? static_cast<double>(runs) / fresh_seconds : 0.0;
  }
  [[nodiscard]] double speedup() const {
    return fresh_seconds > 0 && seconds > 0 ? fresh_seconds / seconds : 0.0;
  }
};

cup::Scenario make_scenario(std::size_t n, std::uint64_t seed) {
  return cup::ScenarioBuilder(make_sharded_graph(n))
      .mode(cup::Mode::kCupft)
      .seed(seed)
      .horizon(400'000)
      .build();
}

std::uint64_t seed_for(const std::string& workload, std::uint64_t i) {
  return workload == "replay" ? 7 : 1 + i;
}

/// One timed leg over the workload's run list. Fresh mode disables pooling
/// per scenario (the pre-run-engine execution path) and uses a throwaway
/// context; pooled mode recycles the *persistent* context the caller owns,
/// like a long-lived BatchRunner / explorer worker does — the steady state
/// the engine exists for, not the first 32 runs after a cold start (the
/// discarded warmup rep absorbs those).
double run_leg(const std::string& workload, std::size_t n,
               cup::RunContext* pooled, std::uint64_t& events,
               std::vector<std::string>* digests) {
  cup::RunContext fresh_context;
  cup::RunContext& context = pooled != nullptr ? *pooled : fresh_context;
  events = 0;
  const double t0 = now_seconds();
  for (std::uint64_t i = 0; i < kRuns; ++i) {
    cup::Scenario scenario = make_scenario(n, seed_for(workload, i));
    scenario.context_pooling = pooled != nullptr;
    const cup::RunReport report = context.run(scenario);
    events += report.messages_delivered;
    if (digests != nullptr) digests->push_back(report.digest());
  }
  return now_seconds() - t0;
}

/// Interleaved fresh/pooled reps (clock drift cancels in the pair), one
/// discarded warmup rep, medians by ratio — the same discipline as the
/// gated bench_membership discovery pair.
Result measure(const std::string& workload, std::size_t n, int reps) {
  cup::RunContext pooled_context;

  // Correctness cross-check once, before timing: recycled == fresh, run by
  // run (this also serves as the pooled context's first warmup pass).
  std::vector<std::string> fresh_digests;
  std::vector<std::string> pooled_digests;
  std::uint64_t events = 0;
  (void)run_leg(workload, n, nullptr, events, &fresh_digests);
  (void)run_leg(workload, n, &pooled_context, events, &pooled_digests);
  if (fresh_digests != pooled_digests) {
    throw std::logic_error("bench_runengine: pooled digests diverged from "
                           "fresh digests on " + workload);
  }

  std::vector<std::pair<double, double>> pairs;  // (fresh, pooled)
  for (int rep = 0; rep <= reps; ++rep) {
    const bool fresh_first = rep % 2 == 0;
    double fresh = 0, pooled = 0;
    for (int leg = 0; leg < 2; ++leg) {
      const bool is_pooled = (leg == 0) != fresh_first;
      const double seconds = run_leg(
          workload, n, is_pooled ? &pooled_context : nullptr, events, nullptr);
      (is_pooled ? pooled : fresh) = seconds;
    }
    if (rep > 0) pairs.emplace_back(fresh, pooled);  // drop warmup
  }
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    return a.first * b.second < b.first * a.second;  // by fresh/pooled ratio
  });
  const auto& median = pairs[pairs.size() / 2];

  Result result;
  result.workload = workload;
  result.n = n;
  result.runs = kRuns;
  result.events = events / kRuns;
  result.fresh_seconds = median.first;
  result.seconds = median.second;
  return result;
}

void write_json(const std::string& path, const std::vector<Result>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_runengine: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"runengine\",\n");
  std::fprintf(f, "  \"baseline\": \"fresh simulator per run, same build\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "%s    {\"workload\": \"%s\", \"n\": %zu, \"runs\": %llu, "
                 "\"events_per_run\": %llu, \"seconds\": %.6f, "
                 "\"runs_per_sec\": %.0f, \"fresh_seconds\": %.6f, "
                 "\"fresh_runs_per_sec\": %.0f, \"speedup_vs_fresh\": %.3f}",
                 i == 0 ? "" : ",\n", r.workload.c_str(), r.n,
                 static_cast<unsigned long long>(r.runs),
                 static_cast<unsigned long long>(r.events), r.seconds,
                 r.runs_per_sec(), r.fresh_seconds, r.fresh_runs_per_sec(),
                 r.speedup());
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace bftcup::bench

int main(int argc, char** argv) {
  using namespace bftcup::bench;
  std::string out = "BENCH_runengine.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out = argv[i];
    }
  }

  const int reps = quick ? 2 : 4;
  std::vector<Result> results;
  std::printf("%-12s %5s %6s %10s %12s %12s %9s\n", "workload", "n", "runs",
              "ev/run", "fresh r/s", "pooled r/s", "speedup");
  for (const std::string workload : {"seed-sweep", "replay"}) {
    for (const std::size_t n : quick ? std::vector<std::size_t>{16}
                                     : std::vector<std::size_t>{16, 64}) {
      results.push_back(measure(workload, n, reps));
      const Result& r = results.back();
      std::printf("%-12s %5zu %6llu %10llu %12.0f %12.0f %8.2fx\n",
                  r.workload.c_str(), r.n,
                  static_cast<unsigned long long>(r.runs),
                  static_cast<unsigned long long>(r.events),
                  r.fresh_runs_per_sec(), r.runs_per_sec(), r.speedup());
    }
  }
  write_json(out, results);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

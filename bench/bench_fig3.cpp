// Experiment F3 — Fig. 3 / Observation 1: non-sink members can declare
// themselves a sink when f is unknown; with the true f the predicate and the
// protocol stay correct.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "graph/figures.hpp"
#include "protocol/sink_predicate.hpp"

namespace {

using namespace bftcup;

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

void print_experiment() {
  bench::print_header(
      "F3: Fig. 3 — false sink declarations (Observation 1)",
      "isSink(2,{1,2,3,4,6},{5,7}) = true on fig3a although its real sink "
      "is {5,7,8} with f=1");

  const auto a = graph::figures::fig3a();

  const auto view_a = protocol::KnowledgeView::omniscient(a.graph);
  const IdSet s1 = {p(1), p(2), p(3), p(4), p(6)};
  std::printf("isSink(2, {1,2,3,4,6}, {5,7}) on fig3a : %s (paper: true)\n",
              protocol::is_sink(view_a, 2, s1, IdSet{p(5), p(7)}) ? "true"
                                                                  : "false");
  std::printf(
      "isSink(1, {1,2,3,4,6}, ...) on fig3a  : %s "
      "(FINDING: passes even at the true f — see DESIGN.md 4.6)\n",
      protocol::is_sink(view_a, 1, s1).has_value() ? "true" : "false");
  std::printf("isSink(1, {5,7,8}, {}) on fig3a       : %s (the real sink)\n",
              protocol::is_sink(view_a, 1, IdSet{p(5), p(7), p(8)}, IdSet{})
                  ? "true"
                  : "false");

  const auto& registry = cup::ScenarioRegistry::paper();
  // Known-f run on fig3a: all processes settle on {5,7,8}.
  bench::print_row("fig3a, known f=1", registry.run("fig3a/auth", 1));
  // Unknown-f (correct protocol) on fig3a: must not decide — tie at k=2.
  bench::print_row("fig3a, BFT-CUPFT", registry.run("fig3a/cupft", 1));
  // fig3b (the indistinguishable 3-OSR system): solvable both ways.
  bench::print_row("fig3b, known f=2", registry.run("fig3b/auth", 1));
  bench::print_row("fig3b, BFT-CUPFT", registry.run("fig3b/cupft", 1));
}

void BM_IsSinkOnFig3a(benchmark::State& state) {
  const auto view =
      protocol::KnowledgeView::omniscient(graph::figures::fig3a().graph);
  const IdSet s1 = {p(1), p(2), p(3), p(4), p(6)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::is_sink(view, 2, s1));
  }
}
BENCHMARK(BM_IsSinkOnFig3a);

void BM_IsSinkStarOnFig3a(benchmark::State& state) {
  const auto view =
      protocol::KnowledgeView::omniscient(graph::figures::fig3a().graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        protocol::is_sink_star(view, IdSet{p(5), p(7), p(8)}));
  }
}
BENCHMARK(BM_IsSinkStarOnFig3a);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#include "cup/cupft_node.hpp"

namespace bftcup::cup {

CupftNode::CupftNode(ProcessId id, Params params)
    : CupftNode(id, std::move(params), Options()) {}

}  // namespace bftcup::cup

// Named, paper-anchored scenario catalog.
//
// Every experiment the paper reports — each Table I cell, each figure
// instance, each adversary behavior, and the generated families the
// examples exercise — is registered here exactly once, under a stable
// name like "fig1b/fake-pd" or "table1/async/unknown-n-unknown-f".
// Benches, examples, and tests look scenarios up instead of re-assembling
// them, so a change to an experiment's parameters lands in one place.
//
// Entries are factories over the simulation seed: `builder(name, seed)`
// returns a ScenarioBuilder that call sites may tweak further (a longer
// horizon, an extra proposal) before build()/run().
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "cup/scenario_builder.hpp"

namespace bftcup::cup {

namespace detail {
/// Rejects empty names and CSV/JSON metacharacters. The report layer now
/// quotes and escapes (see BatchReport::runs_csv/to_json), so exports
/// survive any name — this gate keeps *registry* names portable to every
/// downstream consumer (shell one-liners, spreadsheets, grep) rather than
/// merely round-trippable. Shared by ScenarioRegistry::add and Sweep::add
/// so both entry paths enforce the same contract.
void validate_scenario_name(const std::string& name);
}  // namespace detail

class ScenarioRegistry {
 public:
  struct Entry {
    std::string name;
    std::string description;  ///< paper anchor + expected behavior
    std::vector<std::string> tags;
    std::function<ScenarioBuilder(std::uint64_t seed)> make;
  };

  ScenarioRegistry() = default;

  /// The shared catalog of paper scenarios (built once, immutable).
  static const ScenarioRegistry& paper();

  /// Registers an entry. Throws ScenarioError on a duplicate name.
  void add(Entry entry);

  [[nodiscard]] const Entry* find(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Factory invocation; throws ScenarioError on an unknown name.
  [[nodiscard]] ScenarioBuilder builder(std::string_view name,
                                        std::uint64_t seed = 1) const;
  [[nodiscard]] Scenario make(std::string_view name,
                              std::uint64_t seed = 1) const;
  [[nodiscard]] RunReport run(std::string_view name,
                              std::uint64_t seed = 1) const;

  /// All names, sorted (the map order).
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::vector<std::string> names_with_tag(
      std::string_view tag) const;

  [[nodiscard]] const std::map<std::string, Entry, std::less<>>& entries()
      const {
    return entries_;
  }

 private:
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace bftcup::cup

#include "cup/scenario_builder.hpp"

#include <utility>

namespace bftcup::cup {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw ScenarioError("ScenarioBuilder: " + what);
}

}  // namespace

ScenarioBuilder::ScenarioBuilder(graph::Digraph g) {
  scenario_.graph = std::move(g);
}

ScenarioBuilder::ScenarioBuilder(const graph::figures::Instance& instance) {
  scenario_.graph = instance.graph;
  scenario_.faulty = instance.faulty;
  scenario_.f = instance.f;
}

ScenarioBuilder::ScenarioBuilder(
    const graph::generators::GeneratedSystem& system) {
  scenario_.graph = system.graph;
  scenario_.faulty = system.faulty;
  scenario_.f = system.f;
}

ScenarioBuilder& ScenarioBuilder::graph(graph::Digraph g) {
  scenario_.graph = std::move(g);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::mode(Mode mode) {
  scenario_.mode = mode;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::byz(ByzBehavior behavior) {
  scenario_.byz = behavior;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::faulty(IdSet ids) {
  scenario_.faulty = std::move(ids);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::faulty(
    std::initializer_list<std::uint64_t> raw_ids) {
  IdSet ids;
  for (std::uint64_t raw : raw_ids) ids.insert(ProcessId(raw));
  scenario_.faulty = std::move(ids);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::f(std::size_t f) {
  scenario_.f = f;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t seed) {
  scenario_.sim.seed = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::gst(SimTime gst) {
  scenario_.sim.net.gst = gst;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::delta(SimTime delta) {
  scenario_.sim.net.delta = delta;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::horizon(SimTime horizon) {
  scenario_.sim.horizon = horizon;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::proposal(ProcessId id, Value value) {
  scenario_.proposals[id] = value;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::propose_range(std::uint64_t first,
                                                std::uint64_t last,
                                                Value value) {
  for (std::uint64_t raw = first; raw <= last; ++raw) {
    scenario_.proposals[ProcessId(raw)] = value;
  }
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fake_pd(ProcessId id, IdSet advertised) {
  scenario_.fake_pds[id] = std::move(advertised);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::crash_at(ProcessId p, SimTime at) {
  scenario_.timeline.crash(p, at);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::recover_at(ProcessId p, SimTime at) {
  scenario_.timeline.recover(p, at);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::drop_link(ProcessId from, ProcessId to,
                                            SimTime at, SimTime up_at) {
  if (up_at <= at) {
    fail("drop_link window [" + std::to_string(at) + ", " +
         std::to_string(up_at) + ") is empty");
  }
  scenario_.timeline.link_down(from, to, at, up_at);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::partition(IdSet group_a, IdSet group_b,
                                            SimTime at, SimTime heal_at) {
  if (heal_at <= at) {
    fail("partition window [" + std::to_string(at) + ", " +
         std::to_string(heal_at) + ") is empty");
  }
  scenario_.timeline.partition(std::move(group_a), std::move(group_b), at,
                               heal_at);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::join_at(ProcessId p, SimTime at) {
  scenario_.timeline.join(p, at);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fault_timeline(sim::FaultTimeline timeline) {
  scenario_.timeline = std::move(timeline);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::wire_mutation(double rate,
                                                std::uint32_t kind_mask,
                                                std::uint32_t type_mask,
                                                std::uint64_t wire_seed) {
  scenario_.sim.wire.enabled = true;
  scenario_.sim.wire.rate = rate;
  scenario_.sim.wire.kind_mask = kind_mask;
  scenario_.sim.wire.type_mask = type_mask;
  scenario_.sim.wire.seed = wire_seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::loss(double drop_p, SimTime jitter) {
  scenario_.loss.enabled = true;
  scenario_.loss.drop_p = drop_p;
  scenario_.loss.jitter = jitter;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::loss_burst(SimTime start, SimTime len,
                                             SimTime period, double drop_p) {
  scenario_.loss.enabled = true;
  scenario_.loss.burst_start = start;
  scenario_.loss.burst_len = len;
  scenario_.loss.burst_period = period;
  scenario_.loss.burst_drop_p = drop_p;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::discovery_period(SimTime period) {
  scenario_.discovery_period = period;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::pbft_base_timeout(SimTime timeout) {
  scenario_.pbft_base_timeout = timeout;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::delay_policy(
    std::function<std::unique_ptr<sim::DelayPolicy>()> make) {
  scenario_.make_policy = std::move(make);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::search(
    std::shared_ptr<const protocol::SinkSearch> search) {
  scenario_.search = std::move(search);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::closure_guard(bool enabled) {
  scenario_.cupft_known_closure = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::eval_cache(bool enabled) {
  scenario_.eval_cache = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::incremental_search(bool enabled) {
  scenario_.incremental_search = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::verify_cache(bool enabled) {
  scenario_.sim.verify_cache = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::caching(bool enabled) {
  return eval_cache(enabled).incremental_search(enabled).verify_cache(enabled);
}

ScenarioBuilder& ScenarioBuilder::context_pooling(bool enabled) {
  scenario_.context_pooling = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::arena(bool enabled) {
  scenario_.arena = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::parallel_eval(std::size_t threads) {
  scenario_.parallel_eval = threads;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::tracing(bool enabled) {
  scenario_.trace_capacity = enabled ? kDefaultTraceCapacity : 0;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::trace_capacity(std::size_t records) {
  scenario_.trace_capacity = records;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::metrics(bool enabled) {
  scenario_.metrics = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::allow_premise_violation(bool allowed) {
  allow_premise_violation_ = allowed;
  return *this;
}

Scenario ScenarioBuilder::build() const {
  const Scenario& s = scenario_;
  if (s.graph.vertex_count() == 0) {
    fail("the knowledge connectivity graph has no vertices");
  }
  const IdSet vertices = s.graph.vertices();
  if (!s.faulty.is_subset_of(vertices)) {
    for (ProcessId id : s.faulty) {
      if (!vertices.contains(id)) {
        fail("faulty process " + to_string(id) + " is not a graph vertex");
      }
    }
  }
  if (s.f >= s.graph.vertex_count()) {
    fail("f = " + std::to_string(s.f) + " is not consistent with a " +
         std::to_string(s.graph.vertex_count()) + "-process graph");
  }
  if (s.mode == Mode::kAuth && s.faulty.size() > s.f &&
      !allow_premise_violation_) {
    fail("|faulty| = " + std::to_string(s.faulty.size()) +
         " exceeds f = " + std::to_string(s.f) +
         " in known-f mode; call allow_premise_violation() if this witness "
         "scenario is intentional");
  }
  for (const auto& [id, value] : s.proposals) {
    (void)value;
    if (!vertices.contains(id)) {
      fail("proposal for " + to_string(id) + ", which is not a graph vertex");
    }
  }
  // Fake PD *members* are deliberately unvalidated: advertising ghost
  // processes that do not exist is a real attack (Sybil resistance means
  // they cannot answer, not that they cannot be named).
  for (const auto& [id, pd] : s.fake_pds) {
    (void)pd;
    if (!s.faulty.contains(id)) {
      fail("fake PD for " + to_string(id) + ", which is not faulty");
    }
  }
  if (!s.fake_pds.empty() && s.byz != ByzBehavior::kFakePd) {
    fail("fake PDs are set but the Byzantine behavior is not kFakePd");
  }
  for (const sim::FaultAction& action : s.timeline.actions()) {
    if (action.at < 0) {
      fail(std::string(to_string(action.kind)) +
           " fault action scheduled at negative time");
    }
    switch (action.kind) {
      case sim::FaultAction::Kind::kCrash:
      case sim::FaultAction::Kind::kRecover:
      case sim::FaultAction::Kind::kJoin:
        if (!vertices.contains(action.subject)) {
          fail(std::string(to_string(action.kind)) + " fault action targets " +
               to_string(action.subject) + ", which is not a graph vertex");
        }
        break;
      case sim::FaultAction::Kind::kLinkDown:
      case sim::FaultAction::Kind::kLinkUp:
        if (!vertices.contains(action.subject) ||
            !vertices.contains(action.peer)) {
          fail("link fault action references a non-vertex endpoint");
        }
        break;
      case sim::FaultAction::Kind::kPartition:
      case sim::FaultAction::Kind::kHeal:
        if (!action.group_a.is_subset_of(vertices) ||
            !action.group_b.is_subset_of(vertices)) {
          fail("partition groups must be subsets of the graph vertices");
        }
        if (!action.group_a.set_intersection(action.group_b).empty()) {
          fail("partition groups must be disjoint");
        }
        break;
    }
  }
  if (s.sim.wire.enabled) {
    if (s.sim.wire.rate < 0.0 || s.sim.wire.rate > 1.0) {
      fail("wire mutation rate must be in [0, 1]");
    }
    if (s.sim.wire.kind_mask == 0 ||
        (s.sim.wire.kind_mask & ~sim::kAllWireMutationKinds) != 0) {
      fail("wire kind_mask must be a non-empty subset of the mutation kinds");
    }
    if (s.sim.wire.type_mask == 0 ||
        (s.sim.wire.type_mask & ~sim::kAllWireMsgTypes) != 0) {
      fail("wire type_mask must be a non-empty subset of the message types");
    }
  }
  if (s.loss.enabled) {
    if (s.loss.drop_p < 0.0 || s.loss.drop_p > 1.0) {
      fail("loss drop probability must be in [0, 1]");
    }
    if (s.loss.burst_drop_p < 0.0 || s.loss.burst_drop_p > 1.0) {
      fail("burst drop probability must be in [0, 1]");
    }
    if (s.loss.jitter < 0) fail("loss jitter must be non-negative");
    if (s.loss.burst_start < 0 || s.loss.burst_len < 0 ||
        s.loss.burst_period < 0) {
      fail("burst loss window parameters must be non-negative");
    }
  }
  if (s.discovery_period <= 0) fail("discovery_period must be positive");
  if (s.pbft_base_timeout <= 0) fail("pbft_base_timeout must be positive");
  if (s.sim.horizon <= 0) fail("horizon must be positive");
  if (s.sim.net.delta <= 0) fail("delta must be positive");
  if (s.sim.net.gst < 0) fail("gst must be non-negative");
  return scenario_;
}

RunReport ScenarioBuilder::run() const {
  return run_scenario(build());
}

}  // namespace bftcup::cup

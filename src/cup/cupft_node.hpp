// CupftNode — consensus in the BFT-CUPFT model (Section VI): no process
// knows the fault threshold; membership is the Core algorithm (Algorithm 4).
//
// `min_core_k` guards against the degenerate g = 0 reading of Algorithm 4
// (with g = 0 any two mutually-received processes pass the predicate by
// absorbing everything known into S2). Any Byzantine-tolerant deployment
// has f >= 1, hence k(core) = f+1 >= 2; see DESIGN.md §4.2.
#pragma once

#include "cup/node_base.hpp"
#include "protocol/core.hpp"

namespace bftcup::cup {

class CupftNode final : public CupNodeBase {
 public:
  struct Options {
    /// Reject candidates with k below this (see header comment).
    std::size_t min_core_k = 2;
    /// Knowledge-closure guard: adopt a core only once the PD of every
    /// known process outside the candidate has been received. This defeats
    /// the bridge-hiding fake-PD attack (a phantom candidate cannot become
    /// the strict maximum before the hidden side is learned), but costs
    /// liveness whenever a Byzantine process *outside* the core stays
    /// silent forever — evidence that Algorithm 4 cannot be patched by a
    /// purely local rule; see DESIGN.md §4.6 and the ablation tests.
    bool require_known_closure = false;
  };

  CupftNode(ProcessId id, Params params, Options options)
      : CupNodeBase(id, std::move(params)), options_(options) {}
  // Out-of-line: Options' defaults cannot be instantiated inside the class.
  CupftNode(ProcessId id, Params params);

  /// The threshold this node discovered (meaningful after membership).
  [[nodiscard]] std::optional<std::size_t> discovered_f() const {
    return discovered_f_;
  }

 protected:
  [[nodiscard]] std::optional<Membership> evaluate(
      const protocol::KnowledgeView& view) override {
    const auto core = protocol::try_find_core(view, search(), eval_cache());
    if (!core || core->k() < options_.min_core_k) return std::nullopt;
    if (options_.require_known_closure) {
      for (ProcessId known : view.known()) {
        if (!core->members.contains(known) &&
            !view.received().contains(known)) {
          return std::nullopt;  // someone we know is still unheard-from
        }
      }
    }
    discovered_f_ = core->g;
    return Membership{core->members, core->g};
  }

 private:
  Options options_;
  std::optional<std::size_t> discovered_f_;
};

}  // namespace bftcup::cup

#include "cup/naive_node.hpp"

// Header-only on top of CupNodeBase; this TU anchors the header in the build.

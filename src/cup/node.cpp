#include "cup/node.hpp"

// AuthCupNode is header-only on top of CupNodeBase; this TU anchors the
// header in the build.

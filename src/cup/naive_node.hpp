// NaiveNode — the *incorrect* protocol of Section IV, kept as an executable
// witness of Theorem 7 / Observation 1.
//
// Without knowing f, a process that finds ANY self-declarable sink
// (∃ g >= min, S1, S2 with isSink(g, S1, S2)) and immediately runs consensus
// with it can violate Agreement: in system AB (Fig. 2c) the two halves each
// self-declare and decide different values. The experiment harness runs this
// node on fig2a/fig2b/fig2c and measures the violation.
#pragma once

#include "cup/node_base.hpp"

namespace bftcup::cup {

class NaiveNode final : public CupNodeBase {
 public:
  /// `min_g` mirrors Observation 1's examples, which use g >= 1 (a set that
  /// tolerates no fault at all would not be declared a BFT sink).
  NaiveNode(ProcessId id, Params params, std::size_t min_g = 1)
      : CupNodeBase(id, std::move(params)), min_g_(min_g) {}

 protected:
  [[nodiscard]] std::optional<Membership> evaluate(
      const protocol::KnowledgeView& view) override {
    // First self-declarable sink, preferring the largest witness g — no
    // core-uniqueness or subset-maximality checks. This is the rule the
    // impossibility result shows to be unsound.
    std::optional<Membership> best;
    std::size_t best_g = 0;
    for (const protocol::SinkCandidate& c : search().candidates(view)) {
      if (c.g < min_g_) continue;
      if (!best || c.g > best_g) {
        best = Membership{c.members(), c.g};
        best_g = c.g;
      }
    }
    return best;
  }

 private:
  std::size_t min_g_;
};

}  // namespace bftcup::cup

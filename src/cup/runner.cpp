#include "cup/runner.hpp"

#include "adversary/behaviors.hpp"
#include "common/hex.hpp"
#include "common/sys_resource.hpp"
#include "common/work_pool.hpp"
#include "crypto/sha256.hpp"
#include "cup/cupft_node.hpp"
#include "cup/naive_node.hpp"
#include "cup/node.hpp"
#include "protocol/sink_search.hpp"

namespace bftcup::cup {
namespace {

void append_u64(Bytes& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void append_id_set(Bytes& out, const IdSet& ids) {
  append_u64(out, ids.size());
  for (ProcessId id : ids) append_u64(out, id.raw());
}

}  // namespace

Value default_proposal(ProcessId id) {
  return 1000 + id.raw();
}

std::string RunReport::verdict() const {
  if (!agreement) return "AGREEMENT-VIOLATED";
  if (!validity) return "VALIDITY-VIOLATED";
  if (!all_correct_decided) return "NO-TERMINATION";
  return "SOLVED";
}

std::string RunReport::digest() const {
  Bytes bytes;
  append_id_set(bytes, correct);
  append_u64(bytes, static_cast<std::uint64_t>(all_correct_decided) |
                        static_cast<std::uint64_t>(agreement) << 1 |
                        static_cast<std::uint64_t>(validity) << 2);
  append_u64(bytes, common_value.value_or(kNoValue));
  append_u64(bytes, static_cast<std::uint64_t>(completion_time.value_or(-1)));
  append_u64(bytes, messages_sent);
  append_u64(bytes, messages_delivered);
  append_u64(bytes, bytes_sent);
  append_u64(bytes, decisions.size());
  for (const auto& [who, decision] : decisions) {
    append_u64(bytes, who.raw());
    append_u64(bytes, decision.value);
    append_u64(bytes, static_cast<std::uint64_t>(decision.time));
  }
  append_u64(bytes, memberships.size());
  for (const auto& [who, members] : memberships) {
    append_u64(bytes, who.raw());
    append_id_set(bytes, members);
  }
  append_u64(bytes, membership_times.size());
  for (const auto& [who, time] : membership_times) {
    append_u64(bytes, who.raw());
    append_u64(bytes, static_cast<std::uint64_t>(time));
  }
  return to_hex(crypto::digest_bytes(crypto::sha256(bytes)));
}

namespace detail {

sim::Simulator::Options sim_options_for(const Scenario& scenario) {
  sim::Simulator::Options options = scenario.sim;
  if (options.expected_processes == 0) {
    options.expected_processes = scenario.graph.vertex_count();
  }
  if (options.expected_events == 0) {
    // Rule of thumb from the simcore benches: a discovery-to-decision run
    // delivers a few dozen messages per process. A wrong hint only costs
    // memory.
    options.expected_events = 64 * options.expected_processes;
  }
  return options;
}

RunReport execute_scenario(
    const Scenario& scenario, sim::Simulator& simulator,
    const std::shared_ptr<protocol::SharedEvalCache>& eval_cache,
    obs::MetricsRegistry* metrics) {
  // Cross-run caches are cumulative; report deltas against entry.
  const protocol::SharedEvalCache::Stats eval_stats0 = eval_cache->stats();
  const crypto::VerifyCache::Stats verify_stats0 = simulator.verify_stats();
  // Bracket the run so the per-thread fallback counter and its once-per-run
  // warning rate limit are scoped to this scenario.
  protocol::reset_big_scc_fallbacks();
  // Install the intra-run pool for the whole run (README "Intra-run
  // parallelism"); the membership kernel's fan-out sites pick it up via
  // usable_work_pool(). Per-thread pools are cached across runs, so a
  // recycled context at a fixed setting reuses its spawned threads.
  const WorkPoolScope work_pool(scenario.parallel_eval);
  const std::uint64_t tasks0 =
      work_pool.pool() != nullptr ? work_pool.pool()->tasks_dispatched() : 0;

  // Observability scope (README "Observability"), installed thread-locally
  // like the work pool above. The registry is the caller's cumulative one
  // (RunContext) or a run-local stand-in; either way the report carries the
  // per-run delta. The tracer is always per-run: a flight recorder whose
  // ring dies with the report it fills.
  obs::MetricsRegistry local_metrics;
  obs::MetricsRegistry* registry =
      scenario.metrics ? (metrics != nullptr ? metrics : &local_metrics)
                       : nullptr;
  const obs::MetricsSnapshot metrics0 =
      registry != nullptr ? registry->snapshot() : obs::MetricsSnapshot{};
  std::unique_ptr<obs::SpanTracer> tracer;
  if (scenario.trace_capacity > 0) {
    tracer = std::make_unique<obs::SpanTracer>(scenario.trace_capacity);
    tracer->set_sim_clock(
        [](const void* ctx) {
          return static_cast<const sim::Simulator*>(ctx)->now();
        },
        &simulator);
  }
  const obs::ObsScope obs_scope(registry, tracer.get());

  if (scenario.make_policy || scenario.loss.enabled) {
    std::unique_ptr<sim::DelayPolicy> policy =
        scenario.make_policy ? scenario.make_policy()
                             : std::make_unique<sim::RandomDelayPolicy>();
    if (scenario.loss.enabled) {
      // The lossy wrapper goes outermost so its drop decision is asked first
      // and its jitter stretches whatever the scenario's policy scheduled.
      policy = std::make_unique<sim::LossyDelayPolicy>(std::move(policy),
                                                       scenario.loss);
    }
    simulator.set_delay_policy(std::move(policy));
  }
  if (!scenario.timeline.empty()) {
    simulator.set_fault_timeline(scenario.timeline);
  }

  std::shared_ptr<const protocol::SinkSearch> search = scenario.search;
  if (!search) {
    protocol::SearchOptions options;
    options.incremental = scenario.incremental_search;
    search = std::make_shared<protocol::ExhaustiveSinkSearch>(options);
  }

  const IdSet vertices = scenario.graph.vertices();
  const IdSet correct = vertices.set_difference(scenario.faulty);

  std::vector<Value> proposals;
  for (ProcessId id : vertices) {
    auto it = scenario.proposals.find(id);
    proposals.push_back(it != scenario.proposals.end()
                            ? it->second
                            : default_proposal(id));
  }

  // An equivocating Byzantine process "proposes" its two conflict values;
  // deciding one of them satisfies Validity's "proposed by some process".
  if (scenario.byz == ByzBehavior::kEquivocate && !scenario.faulty.empty()) {
    proposals.push_back(7770001);
    proposals.push_back(7770002);
  }

  std::size_t index = 0;
  for (ProcessId id : vertices) {
    const Value proposal = proposals[index++];
    const IdSet pd = scenario.graph.out_neighbors(id);

    if (scenario.faulty.contains(id)) {
      if (scenario.byz == ByzBehavior::kSilent) {
        simulator.add_process(std::make_unique<adversary::SilentNode>(id));
        continue;
      }
      adversary::ByzantineConfig config;
      config.advertised_pd = pd;
      if (scenario.byz == ByzBehavior::kFakePd) {
        auto it = scenario.fake_pds.find(id);
        if (it != scenario.fake_pds.end()) config.advertised_pd = it->second;
      } else if (scenario.byz == ByzBehavior::kEquivocate) {
        config.equivocate_consensus = true;
        // The adversary knows Π; hand it the whole membership to split.
        config.consensus_members = vertices;
        config.value_a = 7770001;
        config.value_b = 7770002;
      } else if (scenario.byz == ByzBehavior::kWrongValue) {
        config.wrong_decided_value = 666;
      }
      simulator.add_process(
          std::make_unique<adversary::ByzantineNode>(id, config));
      continue;
    }

    CupNodeBase::Params params;
    params.pd = pd;
    params.proposal = proposal;
    params.discovery_period = scenario.discovery_period;
    params.pbft_base_timeout = scenario.pbft_base_timeout;
    params.search = search;
    params.eval_cache = eval_cache;
    params.arena = scenario.arena ? simulator.run_resource() : nullptr;

    switch (scenario.mode) {
      case Mode::kAuth:
        simulator.add_process(
            std::make_unique<AuthCupNode>(id, scenario.f, std::move(params)));
        break;
      case Mode::kCupft: {
        CupftNode::Options options;
        options.require_known_closure = scenario.cupft_known_closure;
        simulator.add_process(
            std::make_unique<CupftNode>(id, std::move(params), options));
        break;
      }
      case Mode::kNaive:
        simulator.add_process(
            std::make_unique<NaiveNode>(id, std::move(params)));
        break;
    }
  }

  // Semantically trace.all_decided(correct), evaluated after *every* event
  // — which made the stop check itself an O(n)-per-event scan that
  // dominated large-n profiles. Decisions only accrue during a run, so the
  // scan can resume from the first still-undecided id: the cursor is
  // monotone, total work is O(n) per run, and the condition flips at
  // exactly the same event as the full scan.
  simulator.set_stop_condition(
      [correct, cursor = std::size_t{0}](const sim::Trace& trace) mutable {
        const auto& ids = correct.values();
        const auto& decided = trace.decisions();
        while (cursor < ids.size() && decided.contains(ids[cursor])) ++cursor;
        return cursor == ids.size();
      });
  {
    const obs::ScopedSpan run_span("run.execute");
    simulator.run();
  }

  const sim::Trace& trace = simulator.trace();
  RunReport report;
  report.correct = correct;
  report.all_correct_decided = trace.all_decided(correct);
  report.agreement = trace.agreement(correct);
  report.common_value = trace.common_value(correct);
  report.completion_time = trace.completion_time(correct);
  report.messages_sent = trace.messages_sent();
  report.messages_delivered = trace.messages_delivered();
  report.messages_dropped = trace.messages_dropped();
  report.bytes_sent = trace.bytes_sent();
  report.sent_by_type = trace.sent_by_type();
  // Hostile-wire counters come straight from the trace (per-run by
  // construction); the registry mirror below is additive like the others.
  report.frames_mutated = trace.frames_mutated();
  report.frames_rejected = trace.frames_rejected();
  report.frames_lost = trace.frames_lost();
  // The trace's flat maps are sorted by id, so these rebuilds preserve the
  // iteration (and digest serialization) order std::map gave.
  report.decisions.insert(trace.decisions().begin(), trace.decisions().end());
  report.memberships.insert(trace.memberships().begin(),
                            trace.memberships().end());
  report.membership_times.insert(trace.membership_times().begin(),
                                 trace.membership_times().end());
  const std::uint64_t evals =
      eval_cache->stats().evaluations - eval_stats0.evaluations;
  const std::uint64_t eval_hits = eval_cache->stats().hits - eval_stats0.hits;
  const auto& verify_stats = simulator.verify_stats();
  const std::uint64_t lookups = verify_stats.lookups - verify_stats0.lookups;
  const std::uint64_t sig_hits = verify_stats.hits - verify_stats0.hits;
  const std::uint64_t fallbacks = protocol::big_scc_fallbacks();
  const std::uint64_t tasks =
      work_pool.pool() != nullptr
          ? work_pool.pool()->tasks_dispatched() - tasks0
          : 0;
  if (registry != nullptr) {
    // Migrated counter plumbing: the registry is the carrier and the
    // legacy report fields below mirror the snapshot's standard names, so
    // the two can never drift apart while both exist.
    registry->counter("eval.requested").add(evals);
    registry->counter("eval.cache_hits").add(eval_hits);
    registry->counter("sig.verified").add(lookups - sig_hits);
    registry->counter("sig.cached").add(sig_hits);
    registry->counter("engine.big_scc_fallbacks").add(fallbacks);
    registry->counter("engine.eval_tasks_dispatched").add(tasks);
    // wire.* rows appear only on runs where the hostile wire actually acted:
    // a zero add would still intern the counter and grow every clean run's
    // snapshot, which the obs determinism suite pins.
    if (report.frames_mutated != 0) {
      registry->counter("wire.frames_mutated").add(report.frames_mutated);
      const sim::Trace::WireKindHistogram& by_kind = trace.mutated_by_kind();
      for (std::size_t i = 0; i < by_kind.size(); ++i) {
        if (by_kind[i] == 0) continue;
        registry
            ->counter(std::string("wire.mutated.") +
                      sim::to_string(static_cast<sim::WireMutationKind>(i)))
            .add(by_kind[i]);
      }
    }
    if (report.frames_rejected != 0) {
      registry->counter("wire.frames_rejected").add(report.frames_rejected);
    }
    if (report.frames_lost != 0) {
      registry->counter("wire.frames_lost").add(report.frames_lost);
    }
    registry->gauge("proc.peak_rss_bytes").set_max(peak_rss_bytes());
    report.metrics = obs::MetricsSnapshot::delta(metrics0,
                                                 registry->snapshot());
    report.evaluations = report.metrics.counter("eval.requested");
    report.eval_cache_hits = report.metrics.counter("eval.cache_hits");
    report.signatures_verified = report.metrics.counter("sig.verified");
    report.signatures_cached = report.metrics.counter("sig.cached");
    report.big_scc_fallbacks =
        report.metrics.counter("engine.big_scc_fallbacks");
    report.eval_tasks_dispatched =
        report.metrics.counter("engine.eval_tasks_dispatched");
  } else {
    report.evaluations = evals;
    report.eval_cache_hits = eval_hits;
    report.signatures_verified = lookups - sig_hits;
    report.signatures_cached = sig_hits;
    report.big_scc_fallbacks = fallbacks;
    report.eval_tasks_dispatched = tasks;
  }
  if (tracer != nullptr) {
    report.spans = std::make_shared<const obs::SpanTrace>(tracer->take());
  }

  // Validity: every decided value was somebody's proposal.
  for (const auto& [who, decision] : report.decisions) {
    bool proposed = false;
    for (Value v : proposals) {
      if (v == decision.value) {
        proposed = true;
        break;
      }
    }
    if (!proposed) report.validity = false;
  }
  return report;
}

}  // namespace detail

RunReport run_scenario(const Scenario& scenario) {
  sim::Simulator::Options options = detail::sim_options_for(scenario);
  // A one-shot run still routes its hot allocations through a local arena
  // when the knob is on: same code path the pooled engine uses, exercised
  // by the entire test corpus.
  sim::RunArena arena;
  if (scenario.arena) options.arena = &arena;
  sim::Simulator simulator(options);
  // Always created so evaluation counts reach the report; the memo itself
  // honors the knob.
  auto eval_cache =
      std::make_shared<protocol::SharedEvalCache>(scenario.eval_cache);
  RunReport report = detail::execute_scenario(scenario, simulator, eval_cache);
  report.arena_bytes_peak = scenario.arena ? arena.bytes_high_water() : 0;
  if (scenario.metrics) {
    // Post-run gauges: values the run body cannot know (the arena's
    // high-water is read after the report is built). Injected straight
    // into the snapshot, same mirror discipline as the counters.
    report.metrics.set_gauge("engine.arena_bytes_peak",
                             report.arena_bytes_peak);
    report.metrics.set_gauge("engine.contexts_recycled", 0);
  }
  return report;
}

}  // namespace bftcup::cup

#include "cup/run_context.hpp"

#include "sim/simulator.hpp"

namespace bftcup::cup {

RunContext::RunContext()
    : eval_cache_(std::make_shared<protocol::SharedEvalCache>(true)) {}

RunContext::~RunContext() = default;

RunReport RunContext::run(const Scenario& scenario) {
  if (!scenario.context_pooling) {
    ++runs_;
    return run_scenario(scenario);
  }

  sim::Simulator::Options options = detail::sim_options_for(scenario);
  options.arena = scenario.arena ? &arena_ : nullptr;
  options.keyring = &keyring_;

  if (eval_cache_->entry_count() > kEvalCacheMaxEntries) {
    eval_cache_->clear_entries();
  }
  eval_cache_->set_memo_enabled(scenario.eval_cache);

  std::uint64_t recycled = 0;
  if (!simulator_) {
    simulator_ = std::make_unique<sim::Simulator>(options);
  } else {
    recycled = ++recycled_;
    if (simulator_->verify_cache().entry_count() > kVerifyCacheMaxEntries) {
      simulator_->verify_cache().clear();
    }
    if (simulator_->sign_cache().entry_count() > kVerifyCacheMaxEntries) {
      simulator_->sign_cache().clear();
    }
    simulator_->reset(options);
  }

  RunReport report =
      detail::execute_scenario(scenario, *simulator_, eval_cache_, &metrics_);
  report.contexts_recycled = recycled;
  report.arena_bytes_peak = scenario.arena ? arena_.bytes_high_water() : 0;
  if (scenario.metrics) {
    // Post-run gauges, mirroring the fields above (see run_scenario).
    report.metrics.set_gauge("engine.arena_bytes_peak",
                             report.arena_bytes_peak);
    report.metrics.set_gauge("engine.contexts_recycled", recycled);
  }
  ++runs_;
  return report;
}

}  // namespace bftcup::cup

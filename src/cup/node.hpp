// AuthCupNode — consensus in the *authenticated BFT-CUP* model (Section III):
// every process is given the fault threshold f; membership is the Sink
// algorithm (Algorithm 2).
#pragma once

#include "cup/node_base.hpp"
#include "protocol/sink.hpp"

namespace bftcup::cup {

class AuthCupNode final : public CupNodeBase {
 public:
  AuthCupNode(ProcessId id, std::size_t f, Params params)
      : CupNodeBase(id, std::move(params)), f_(f) {}

 protected:
  [[nodiscard]] std::optional<Membership> evaluate(
      const protocol::KnowledgeView& view) override {
    const auto sink = protocol::try_find_sink(view, f_, search(), eval_cache());
    if (!sink) return std::nullopt;
    return Membership{sink->members, f_};
  }

 private:
  std::size_t f_;
};

}  // namespace bftcup::cup

// Recyclable run engine: one pooled execution context per worker thread.
//
// The unit of work this repo now executes millions of times — one short
// scenario run inside BatchRunner or the adversary explorer — used to pay
// full construction cost every time: a fresh Simulator, process table, key
// derivations, trace buffers, and a cold evaluation cache, all used for a
// few thousand events and thrown away. A RunContext keeps those engine
// parts alive between runs:
//
//  * a resettable Simulator — Simulator::reset() clears run state but
//    keeps every grown capacity (event-queue buckets, slot vectors, memo
//    hash buckets);
//  * a RunArena backing the per-run hot allocations (trace records,
//    discovery scratch, pending buffers), rewound — not freed — per run;
//  * a KeyringCache so per-process secrets are derived once per
//    (key-seed, id) and shared by every run that reuses them;
//  * cross-run *content-addressed* caches: the SharedEvalCache (keyed by
//    strategy + parameter + canonical view bytes) and the Simulator's signature
//    memo (keyed by key-seed + signer + payload + signature). Every key
//    binds all inputs its result depends on, so retained entries are
//    exact answers, and a recycled run is observationally identical to a
//    fresh one — the recycling property suite and BatchRunner's
//    verify_determinism both assert digest equality against fresh runs.
//
// The payoff is structural: the converged knowledge views of a topology
// family are identical across seeds, so after the first few runs the
// exponential membership searches of a batch are answered from the memo.
//
// Not thread-safe: one RunContext per worker, by construction in
// BatchRunner. Per-run counters in the returned reports are deltas, but
// they describe this context's cache state — under a thread pool they
// depend on which worker executed which prior runs (the behavioral fields
// and the digest never do).
#pragma once

#include <memory>

#include "crypto/keyring_cache.hpp"
#include "cup/runner.hpp"
#include "obs/metrics.hpp"
#include "sim/run_arena.hpp"

namespace bftcup::cup {

class RunContext {
 public:
  RunContext();
  ~RunContext();
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;
  RunContext(RunContext&&) = delete;
  RunContext& operator=(RunContext&&) = delete;

  /// Runs `scenario` on the recycled engine state; observationally
  /// identical to run_scenario(scenario). Honors the scenario's
  /// context_pooling / arena knobs (pooling off delegates to a fresh
  /// run_scenario call).
  [[nodiscard]] RunReport run(const Scenario& scenario);

  /// Completed runs, including delegated fresh ones.
  [[nodiscard]] std::uint64_t runs_executed() const { return runs_; }

  /// The context's cumulative metrics registry (src/obs/metrics.hpp):
  /// every pooled run on this context accumulates into it, and each run's
  /// RunReport::metrics is its per-run delta — the same cumulative/delta
  /// convention as the cross-run caches. Thread-confined with the context.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

 private:
  /// Entry caps for the cross-run memos: crossing one empties that memo
  /// (capacity and gate statistics are kept). A bound on footprint for
  /// million-run fuzzing sessions, never a correctness lever.
  // Eval entries carry their canonical view bytes (~KB each); signature
  // entries carry a payload + signature (~100 B each).
  static constexpr std::size_t kEvalCacheMaxEntries = 1u << 14;
  static constexpr std::size_t kVerifyCacheMaxEntries = 1u << 20;

  sim::RunArena arena_;
  crypto::KeyringCache keyring_;
  obs::MetricsRegistry metrics_;
  std::shared_ptr<protocol::SharedEvalCache> eval_cache_;
  std::unique_ptr<sim::Simulator> simulator_;  ///< created on first run
  std::uint64_t recycled_ = 0;  ///< pooled runs served by simulator_
  std::uint64_t runs_ = 0;
};

}  // namespace bftcup::cup

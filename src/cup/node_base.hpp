// Common node skeleton implementing Algorithm 3.
//
// Every variant follows the same phases:
//   1. run Discovery (Alg. 1) until a *membership rule* fires,
//   2. if this process is a member: run PBFT among the members,
//      else: fetch the decided value from a majority of members,
//   3. decide, serve late GETDECIDEDVAL requests, and quiesce.
// Subclasses differ only in the membership rule:
//   AuthCupNode  — Sink algorithm (Alg. 2, known f),
//   CupftNode    — Core algorithm (Alg. 4, unknown f),
//   NaiveNode    — the *incorrect* rule of Observation 1 (first
//                  self-declarable sink), used to exhibit Theorem 7's
//                  agreement violation as an executable run.
#pragma once

#include <memory>
#include <memory_resource>
#include <optional>
#include <vector>

#include "protocol/consensus.hpp"
#include "protocol/discovery.hpp"
#include "protocol/eval_cache.hpp"
#include "protocol/pbft.hpp"
#include "protocol/sink_search.hpp"

namespace bftcup::cup {

/// What a membership rule yields: who runs consensus, and the fault
/// threshold used for quorum sizing (given f, or the discovered g).
struct Membership {
  IdSet members;
  std::size_t assumed_f = 0;
};

class CupNodeBase : public sim::Process {
 public:
  struct Params {
    IdSet pd;                          ///< PD_i
    Value proposal = 0;
    SimTime discovery_period = 50;
    SimTime pbft_base_timeout = 600;
    /// Shared, stateless candidate-search strategy.
    std::shared_ptr<const protocol::SinkSearch> search;
    /// Per-simulation evaluation memo shared by every correct node (may be
    /// null); see protocol/eval_cache.hpp.
    std::shared_ptr<protocol::SharedEvalCache> eval_cache;
    /// Per-run allocation arena for the node's hot buffers (discovery
    /// scratch, pending-delivery vectors). Null = plain heap. The node is
    /// destroyed before the owning run context rewinds the arena.
    std::pmr::memory_resource* arena = nullptr;
  };

  CupNodeBase(ProcessId id, Params params);

  void on_start(sim::Context& ctx) override;
  void on_message(ProcessId from, const msg::Message& message,
                  sim::Context& ctx) override;
  void on_timer(int kind, sim::Context& ctx) override;
  void on_recover(sim::Context& ctx) override;

  [[nodiscard]] bool has_decided() const { return decided_.has_value(); }
  [[nodiscard]] Value decision() const { return *decided_; }
  [[nodiscard]] const std::optional<Membership>& membership() const {
    return membership_;
  }
  [[nodiscard]] const protocol::KnowledgeView& view() const {
    return discovery_.view();
  }
  [[nodiscard]] const protocol::Discovery& discovery() const {
    return discovery_;
  }

 protected:
  /// The membership rule; called after every knowledge change until it
  /// fires once.
  [[nodiscard]] virtual std::optional<Membership> evaluate(
      const protocol::KnowledgeView& view) = 0;

  [[nodiscard]] const protocol::SinkSearch& search() const {
    return *params_.search;
  }

  /// Shared evaluation memo (nullptr when the scenario disables it).
  [[nodiscard]] protocol::SharedEvalCache* eval_cache() const {
    return params_.eval_cache.get();
  }

 private:
  void maybe_find_membership(sim::Context& ctx);
  void finalize(Value value, sim::Context& ctx);

  Params params_;
  protocol::Discovery discovery_;
  protocol::ValueExchange exchange_;
  std::optional<Membership> membership_;
  std::optional<protocol::PbftInstance> pbft_;
  /// PBFT traffic can arrive before we have discovered the sink/core
  /// ourselves; it is buffered and replayed once the instance exists.
  /// Arena-backed in pooled runs (Params::arena).
  std::pmr::vector<std::pair<ProcessId, msg::Message>> pending_pbft_;
  /// Set by on_recover: this node was down and may have missed the decision
  /// traffic, so once membership is (re)discovered it fetches the decided
  /// value even as a member. Never set in fault-free runs.
  bool recovering_ = false;
  std::optional<Value> decided_;
};

}  // namespace bftcup::cup

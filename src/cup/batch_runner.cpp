#include "cup/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/sys_resource.hpp"
#include "common/thread_annotations.hpp"
#include "cup/run_context.hpp"

namespace bftcup::cup {

// ---------------------------------------------------------------- Sweep ----

Sweep& Sweep::add(std::string name, Factory factory) {
  detail::validate_scenario_name(name);
  entries_.push_back({std::move(name), std::move(factory)});
  return *this;
}

Sweep& Sweep::add(std::string name, ScenarioBuilder builder) {
  return add(std::move(name),
             [builder = std::move(builder)](std::uint64_t seed) mutable {
               return builder.seed(seed).build();
             });
}

Sweep& Sweep::add(const ScenarioRegistry& registry, std::string_view name) {
  const ScenarioRegistry::Entry* entry = registry.find(name);
  if (entry == nullptr) {
    throw ScenarioError("Sweep: unknown registry scenario \"" +
                        std::string(name) + "\"");
  }
  return add(entry->name, [make = entry->make](std::uint64_t seed) {
    return make(seed).seed(seed).build();
  });
}

Sweep& Sweep::add_tag(const ScenarioRegistry& registry, std::string_view tag) {
  const auto names = registry.names_with_tag(tag);
  if (names.empty()) {
    throw ScenarioError("Sweep: no registry scenario carries tag \"" +
                        std::string(tag) + "\"");
  }
  for (const std::string& name : names) add(registry, name);
  return *this;
}

Sweep& Sweep::seeds(std::uint64_t first, std::size_t count) {
  if (count == 0) throw ScenarioError("Sweep: seed count must be positive");
  seed_first_ = first;
  seed_count_ = count;
  return *this;
}

std::size_t Sweep::run_count() const {
  return entries_.size() * seed_count_;
}

std::vector<SweepPoint> Sweep::expand() const {
  std::vector<SweepPoint> points;
  points.reserve(run_count());
  for (const Entry& entry : entries_) {
    for (std::size_t i = 0; i < seed_count_; ++i) {
      const std::uint64_t seed = seed_first_ + i;
      points.push_back({entry.name, seed, entry.make(seed)});
    }
  }
  return points;
}

// ----------------------------------------------------------- RunRecord ----

RunRecord summarize(std::string scenario, std::uint64_t seed,
                    const RunReport& report) {
  RunRecord record;
  record.scenario = std::move(scenario);
  record.seed = seed;
  record.verdict = report.verdict();
  record.agreement = report.agreement;
  record.validity = report.validity;
  record.terminated = report.all_correct_decided;
  record.latency = report.completion_time.value_or(-1);
  record.messages = report.messages_sent;
  record.delivered = report.messages_delivered;
  record.bytes = report.bytes_sent;
  record.value = report.common_value.value_or(0);
  record.evaluations = report.evaluations;
  record.eval_hits = report.eval_cache_hits;
  record.signatures = report.signatures_verified;
  record.sig_hits = report.signatures_cached;
  record.recycled = report.contexts_recycled;
  record.arena_peak = report.arena_bytes_peak;
  record.peak_rss = peak_rss_bytes();
  record.frames_mutated = report.frames_mutated;
  record.frames_rejected = report.frames_rejected;
  record.frames_lost = report.frames_lost;
  record.digest = report.digest();
  return record;
}

obs::MetricsSnapshot merge_run_metrics(const std::vector<RunReport>& reports) {
  obs::MetricsSnapshot total;
  for (const RunReport& report : reports) total.merge(report.metrics);
  return total;
}

// ---------------------------------------------------------- BatchReport ----

namespace {

/// Nearest-rank percentile over an ascending vector (which is non-empty).
std::int64_t percentile(const std::vector<std::int64_t>& sorted, double p) {
  const std::size_t n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(n))));
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

}  // namespace

std::vector<ScenarioStats> BatchReport::scenarios() const {
  std::vector<ScenarioStats> stats;
  std::vector<std::vector<std::int64_t>> latencies;
  for (const RunRecord& run : runs_) {
    std::size_t index = 0;
    while (index < stats.size() && stats[index].scenario != run.scenario) {
      ++index;
    }
    if (index == stats.size()) {
      stats.push_back({});
      stats.back().scenario = run.scenario;
      latencies.emplace_back();
    }
    ScenarioStats& s = stats[index];
    ++s.runs;
    if (run.verdict == "SOLVED") ++s.solved;
    if (!run.agreement) ++s.agreement_violations;
    if (!run.validity) ++s.validity_violations;
    if (!run.terminated) ++s.non_terminations;
    if (run.latency >= 0) latencies[index].push_back(run.latency);
    s.messages_total += run.messages;
    s.bytes_total += run.bytes;
    s.evaluations_total += run.evaluations;
    s.eval_hits_total += run.eval_hits;
    s.signatures_total += run.signatures;
    s.sig_hits_total += run.sig_hits;
    s.peak_rss_max = std::max(s.peak_rss_max, run.peak_rss);
  }
  for (std::size_t i = 0; i < stats.size(); ++i) {
    auto& lat = latencies[i];
    if (lat.empty()) continue;
    std::sort(lat.begin(), lat.end());
    stats[i].latency_min = lat.front();
    stats[i].latency_max = lat.back();
    stats[i].latency_p50 = percentile(lat, 50.0);
    stats[i].latency_p99 = percentile(lat, 99.0);
  }
  return stats;
}

std::vector<const RunRecord*> BatchReport::runs_of(
    std::string_view scenario) const {
  std::vector<const RunRecord*> out;
  for (const RunRecord& run : runs_) {
    if (run.scenario == scenario) out.push_back(&run);
  }
  return out;
}

namespace {

constexpr const char* kRunsCsvHeader =
    "scenario,seed,verdict,agreement,validity,terminated,latency,messages,"
    "delivered,bytes,value,evaluations,eval_hits,signatures,sig_hits,"
    "recycled,arena_peak,peak_rss,frames_mutated,frames_rejected,"
    "frames_lost,digest";

// Earlier headers, still accepted on import (see from_runs_csv): the
// pre-hostile-wire 19-column format, the pre-peak-rss 18-column format, the
// pre-run-engine 16-column format, and the pre-cache-counter 12-column one.
constexpr const char* kPeakRssRunsCsvHeader =
    "scenario,seed,verdict,agreement,validity,terminated,latency,messages,"
    "delivered,bytes,value,evaluations,eval_hits,signatures,sig_hits,"
    "recycled,arena_peak,peak_rss,digest";
constexpr const char* kRunEngineRunsCsvHeader =
    "scenario,seed,verdict,agreement,validity,terminated,latency,messages,"
    "delivered,bytes,value,evaluations,eval_hits,signatures,sig_hits,"
    "recycled,arena_peak,digest";
constexpr const char* kCacheCounterRunsCsvHeader =
    "scenario,seed,verdict,agreement,validity,terminated,latency,messages,"
    "delivered,bytes,value,evaluations,eval_hits,signatures,sig_hits,digest";
constexpr const char* kLegacyRunsCsvHeader =
    "scenario,seed,verdict,agreement,validity,terminated,latency,messages,"
    "delivered,bytes,value,digest";

/// RFC-4180-style field quoting: fields containing the separator, a quote,
/// or a line break are wrapped in double quotes with embedded quotes
/// doubled. Everything else is emitted verbatim, so files of pre-escaping
/// releases are byte-identical (their names never needed quoting).
std::string csv_field(const std::string& value) {
  if (value.find_first_of(",\"\r\n") == std::string::npos) return value;
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Splits the CSV text into logical records: newlines inside a quoted
/// field belong to the field (csv_field quotes them), so a record may span
/// physical lines. Unquoted input (every legacy export) splits exactly
/// like a plain getline loop. Trailing \r (CRLF input) is stripped outside
/// quotes. Throws on an unterminated quote at end of input.
std::vector<std::string> split_csv_records(const std::string& text) {
  std::vector<std::string> records;
  std::string record;
  bool quoted = false;
  for (char c : text) {
    if (c == '"') quoted = !quoted;  // "" toggles twice; net effect is none
    if (c == '\n' && !quoted) {
      if (!record.empty() && record.back() == '\r') record.pop_back();
      records.push_back(std::move(record));
      record.clear();
    } else {
      record += c;
    }
  }
  if (quoted) {
    throw std::invalid_argument(
        "BatchReport: unterminated CSV quote at end of input");
  }
  if (!record.empty()) records.push_back(std::move(record));
  return records;
}

/// Splits one CSV record, honoring csv_field's quoting. Unquoted rows
/// (every legacy export) split exactly as the old naive splitter did.
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  bool quoted = false;
  for (std::string::size_type i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  if (quoted) {
    throw std::invalid_argument("BatchReport: unterminated CSV quote: " +
                                line);
  }
  out.push_back(std::move(field));
  return out;
}

}  // namespace

std::string BatchReport::runs_csv() const {
  std::string out = kRunsCsvHeader;
  out += '\n';
  for (const RunRecord& r : runs_) {
    out += csv_field(r.scenario);
    out += ',' + std::to_string(r.seed);
    out += ',' + csv_field(r.verdict);
    out += r.agreement ? ",1" : ",0";
    out += r.validity ? ",1" : ",0";
    out += r.terminated ? ",1" : ",0";
    out += ',' + std::to_string(r.latency);
    out += ',' + std::to_string(r.messages);
    out += ',' + std::to_string(r.delivered);
    out += ',' + std::to_string(r.bytes);
    out += ',' + std::to_string(r.value);
    out += ',' + std::to_string(r.evaluations);
    out += ',' + std::to_string(r.eval_hits);
    out += ',' + std::to_string(r.signatures);
    out += ',' + std::to_string(r.sig_hits);
    out += ',' + std::to_string(r.recycled);
    out += ',' + std::to_string(r.arena_peak);
    out += ',' + std::to_string(r.peak_rss);
    out += ',' + std::to_string(r.frames_mutated);
    out += ',' + std::to_string(r.frames_rejected);
    out += ',' + std::to_string(r.frames_lost);
    out += ',' + csv_field(r.digest);
    out += '\n';
  }
  return out;
}

BatchReport BatchReport::from_runs_csv(const std::string& csv) {
  std::vector<RunRecord> runs;
  bool header = true;
  // 22 = current format; 19 = pre-hostile-wire; 18 = pre-peak-rss; 16 =
  // pre-run-engine; 12 = pre-cache-counter. Old formats stay accepted so
  // persisted sweep outputs keep loading (absent counters read 0). Rows must
  // match the arity their header announced — a mixed file is corrupt.
  std::size_t expected_fields = 0;
  for (const std::string& line : split_csv_records(csv)) {
    if (line.empty()) continue;
    if (header) {
      if (line == kRunsCsvHeader) {
        expected_fields = 22;
      } else if (line == kPeakRssRunsCsvHeader) {
        expected_fields = 19;
      } else if (line == kRunEngineRunsCsvHeader) {
        expected_fields = 18;
      } else if (line == kCacheCounterRunsCsvHeader) {
        expected_fields = 16;
      } else if (line == kLegacyRunsCsvHeader) {
        expected_fields = 12;
      } else {
        throw std::invalid_argument("BatchReport: unexpected CSV header");
      }
      header = false;
      continue;
    }
    const auto fields = split_csv(line);
    if (fields.size() != expected_fields) {
      throw std::invalid_argument("BatchReport: malformed CSV row: " + line);
    }
    RunRecord r;
    r.scenario = fields[0];
    r.seed = std::stoull(fields[1]);
    r.verdict = fields[2];
    r.agreement = fields[3] == "1";
    r.validity = fields[4] == "1";
    r.terminated = fields[5] == "1";
    r.latency = std::stoll(fields[6]);
    r.messages = std::stoull(fields[7]);
    r.delivered = std::stoull(fields[8]);
    r.bytes = std::stoull(fields[9]);
    r.value = std::stoull(fields[10]);
    if (fields.size() >= 16) {
      r.evaluations = std::stoull(fields[11]);
      r.eval_hits = std::stoull(fields[12]);
      r.signatures = std::stoull(fields[13]);
      r.sig_hits = std::stoull(fields[14]);
    }
    if (fields.size() >= 18) {
      r.recycled = std::stoull(fields[15]);
      r.arena_peak = std::stoull(fields[16]);
    }
    if (fields.size() >= 19) {
      r.peak_rss = std::stoull(fields[17]);
    }
    if (fields.size() == 22) {
      r.frames_mutated = std::stoull(fields[18]);
      r.frames_rejected = std::stoull(fields[19]);
      r.frames_lost = std::stoull(fields[20]);
    }
    r.digest = fields.back();
    runs.push_back(std::move(r));
  }
  return BatchReport(std::move(runs));
}

std::string BatchReport::summary_csv() const {
  std::string out =
      "scenario,runs,solved,pass_rate,agreement_violations,"
      "validity_violations,non_terminations,latency_min,latency_p50,"
      "latency_p99,latency_max,messages_total,bytes_total,evaluations_total,"
      "eval_hits_total,signatures_total,sig_hits_total,peak_rss_max\n";
  for (const ScenarioStats& s : scenarios()) {
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.4f", s.pass_rate());
    out += csv_field(s.scenario);
    out += ',' + std::to_string(s.runs);
    out += ',' + std::to_string(s.solved);
    out += ',';
    out += rate;
    out += ',' + std::to_string(s.agreement_violations);
    out += ',' + std::to_string(s.validity_violations);
    out += ',' + std::to_string(s.non_terminations);
    out += ',' + std::to_string(s.latency_min);
    out += ',' + std::to_string(s.latency_p50);
    out += ',' + std::to_string(s.latency_p99);
    out += ',' + std::to_string(s.latency_max);
    out += ',' + std::to_string(s.messages_total);
    out += ',' + std::to_string(s.bytes_total);
    out += ',' + std::to_string(s.evaluations_total);
    out += ',' + std::to_string(s.eval_hits_total);
    out += ',' + std::to_string(s.signatures_total);
    out += ',' + std::to_string(s.sig_hits_total);
    out += ',' + std::to_string(s.peak_rss_max);
    out += '\n';
  }
  return out;
}

namespace {

/// JSON string escaping for the one field callers control (scenario names);
/// verdicts and digests are library-generated and never need it, but they
/// go through the same helper so the export cannot silently emit broken
/// JSON for any record.
std::string json_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string BatchReport::to_json() const {
  std::string out = "{\"runs\":[";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    const RunRecord& r = runs_[i];
    if (i != 0) out += ',';
    out += "{\"scenario\":\"" + json_escape(r.scenario) + "\"";
    out += ",\"seed\":" + std::to_string(r.seed);
    out += ",\"verdict\":\"" + json_escape(r.verdict) + "\"";
    out += r.agreement ? ",\"agreement\":true" : ",\"agreement\":false";
    out += r.validity ? ",\"validity\":true" : ",\"validity\":false";
    out += r.terminated ? ",\"terminated\":true" : ",\"terminated\":false";
    out += ",\"latency\":" + std::to_string(r.latency);
    out += ",\"messages\":" + std::to_string(r.messages);
    out += ",\"delivered\":" + std::to_string(r.delivered);
    out += ",\"bytes\":" + std::to_string(r.bytes);
    out += ",\"value\":" + std::to_string(r.value);
    out += ",\"evaluations\":" + std::to_string(r.evaluations);
    out += ",\"eval_hits\":" + std::to_string(r.eval_hits);
    out += ",\"signatures\":" + std::to_string(r.signatures);
    out += ",\"sig_hits\":" + std::to_string(r.sig_hits);
    out += ",\"recycled\":" + std::to_string(r.recycled);
    out += ",\"arena_peak\":" + std::to_string(r.arena_peak);
    out += ",\"peak_rss\":" + std::to_string(r.peak_rss);
    out += ",\"frames_mutated\":" + std::to_string(r.frames_mutated);
    out += ",\"frames_rejected\":" + std::to_string(r.frames_rejected);
    out += ",\"frames_lost\":" + std::to_string(r.frames_lost);
    out += ",\"digest\":\"" + json_escape(r.digest) + "\"}";
  }
  out += "]}";
  return out;
}

namespace {

/// Minimal parser for the flat JSON BatchReport::to_json emits, including
/// the escape sequences json_escape produces.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw std::invalid_argument(std::string("BatchReport JSON: expected '") +
                                  c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            // Strict: exactly 4 hex digits, and only the single-byte range
            // this writer emits (json_escape uses \u for control chars);
            // anything else is rejected rather than silently truncated.
            if (pos_ + 4 > text_.size()) {
              throw std::invalid_argument(
                  "BatchReport JSON: truncated \\u escape");
            }
            unsigned value = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[pos_ + static_cast<std::size_t>(k)];
              value <<= 4;
              if (h >= '0' && h <= '9') {
                value |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                value |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                value |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                throw std::invalid_argument(
                    "BatchReport JSON: malformed \\u escape");
              }
            }
            if (value > 0xff) {
              throw std::invalid_argument(
                  "BatchReport JSON: \\u escape beyond the single-byte "
                  "range this format emits");
            }
            c = static_cast<char>(value);
            pos_ += 4;
            break;
          }
          default:
            throw std::invalid_argument(
                std::string("BatchReport JSON: unsupported escape \\") + esc);
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) {
      throw std::invalid_argument("BatchReport JSON: unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  std::int64_t integer() {
    std::int64_t v = 0;
    parse_number(v);
    return v;
  }

  std::uint64_t unsigned_integer() {
    std::uint64_t v = 0;
    parse_number(v);
    return v;
  }

  bool boolean() {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    throw std::invalid_argument("BatchReport JSON: expected boolean");
  }

 private:
  template <typename T>
  void parse_number(T& out) {
    skip_ws();
    const auto [next, ec] = std::from_chars(
        text_.data() + pos_, text_.data() + text_.size(), out);
    if (ec != std::errc{}) {
      throw std::invalid_argument("BatchReport JSON: expected number");
    }
    pos_ = static_cast<std::size_t>(next - text_.data());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

BatchReport BatchReport::from_json(const std::string& json) {
  JsonCursor cursor(json);
  cursor.expect('{');
  if (cursor.string() != "runs") {
    throw std::invalid_argument("BatchReport JSON: expected \"runs\"");
  }
  cursor.expect(':');
  cursor.expect('[');
  std::vector<RunRecord> runs;
  if (!cursor.consume(']')) {
    do {
      cursor.expect('{');
      RunRecord r;
      do {
        const std::string key = cursor.string();
        cursor.expect(':');
        if (key == "scenario") {
          r.scenario = cursor.string();
        } else if (key == "seed") {
          r.seed = cursor.unsigned_integer();
        } else if (key == "verdict") {
          r.verdict = cursor.string();
        } else if (key == "agreement") {
          r.agreement = cursor.boolean();
        } else if (key == "validity") {
          r.validity = cursor.boolean();
        } else if (key == "terminated") {
          r.terminated = cursor.boolean();
        } else if (key == "latency") {
          r.latency = cursor.integer();
        } else if (key == "messages") {
          r.messages = cursor.unsigned_integer();
        } else if (key == "delivered") {
          r.delivered = cursor.unsigned_integer();
        } else if (key == "bytes") {
          r.bytes = cursor.unsigned_integer();
        } else if (key == "value") {
          r.value = cursor.unsigned_integer();
        } else if (key == "evaluations") {
          r.evaluations = cursor.unsigned_integer();
        } else if (key == "eval_hits") {
          r.eval_hits = cursor.unsigned_integer();
        } else if (key == "signatures") {
          r.signatures = cursor.unsigned_integer();
        } else if (key == "sig_hits") {
          r.sig_hits = cursor.unsigned_integer();
        } else if (key == "recycled") {
          r.recycled = cursor.unsigned_integer();
        } else if (key == "arena_peak") {
          r.arena_peak = cursor.unsigned_integer();
        } else if (key == "peak_rss") {
          r.peak_rss = cursor.unsigned_integer();
        } else if (key == "frames_mutated") {
          r.frames_mutated = cursor.unsigned_integer();
        } else if (key == "frames_rejected") {
          r.frames_rejected = cursor.unsigned_integer();
        } else if (key == "frames_lost") {
          r.frames_lost = cursor.unsigned_integer();
        } else if (key == "digest") {
          r.digest = cursor.string();
        } else {
          throw std::invalid_argument("BatchReport JSON: unknown key \"" +
                                      key + "\"");
        }
      } while (cursor.consume(','));
      cursor.expect('}');
      runs.push_back(std::move(r));
    } while (cursor.consume(','));
    cursor.expect(']');
  }
  cursor.expect('}');
  return BatchReport(std::move(runs));
}

void BatchReport::print_summary(std::FILE* out) const {
  std::fprintf(out,
               "%-36s %5s %9s %7s %9s %9s %9s %12s %12s %9s %6s %8s\n",
               "scenario", "runs", "pass", "viol", "lat-min", "lat-p50",
               "lat-p99", "messages", "bytes", "evals", "hit%", "rss-MiB");
  for (const ScenarioStats& s : scenarios()) {
    const double hit_rate =
        s.evaluations_total == 0
            ? 0.0
            : 100.0 * static_cast<double>(s.eval_hits_total) /
                  static_cast<double>(s.evaluations_total);
    const double rss_mib =
        static_cast<double>(s.peak_rss_max) / (1024.0 * 1024.0);
    std::fprintf(out,
                 "%-36s %5zu %8.0f%% %7zu %9" PRId64 " %9" PRId64 " %9" PRId64
                 " %12" PRIu64 " %12" PRIu64 " %9" PRIu64 " %5.0f%% %8.1f\n",
                 s.scenario.c_str(), s.runs, 100.0 * s.pass_rate(),
                 s.agreement_violations + s.validity_violations, s.latency_min,
                 s.latency_p50, s.latency_p99, s.messages_total, s.bytes_total,
                 s.evaluations_total, hit_rate, rss_mib);
  }
}

void print_run_header(std::FILE* out, const char* experiment,
                      const char* claim) {
  std::fprintf(out, "\n=== %s ===\n    paper claim: %s\n", experiment, claim);
  std::fprintf(out, "%-34s %-20s %10s %10s %12s\n", "scenario", "verdict",
               "latency", "messages", "value");
}

void print_run_row(std::FILE* out, const std::string& name,
                   const RunReport& report) {
  std::fprintf(out,
               "%-34s %-20s %10" PRId64 " %10" PRIu64 " %12" PRIu64 "\n",
               name.c_str(), report.verdict().c_str(),
               report.completion_time.value_or(-1), report.messages_sent,
               report.common_value.value_or(0));
}

// ---------------------------------------------------------- BatchRunner ----

BatchReport BatchRunner::run(const Sweep& sweep) const {
  return run(sweep.expand());
}

namespace {

/// First-failure slot shared by the pool's workers. The lock discipline is
/// machine-checked: `first` is GUARDED_BY the mutex, so any access outside
/// store()/take() fails the Clang -Wthread-safety build.
struct FailureSlot {
  Mutex mutex;
  std::exception_ptr first BFTCUP_GUARDED_BY(mutex);

  void store(std::exception_ptr error) BFTCUP_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    if (!first) first = std::move(error);
  }
  [[nodiscard]] std::exception_ptr take() BFTCUP_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    return first;
  }
};

/// Drains indices [0, count) through a work-stealing std::thread pool.
/// Every worker owns one recyclable RunContext (when `pooled`) handed to
/// each unit of work it claims — the run-engine steady state. The work
/// queue is a single atomic cursor; report aggregation needs no lock
/// because results land in caller-owned slots indexed by i (disjoint per
/// run), which also makes the output order independent of thread
/// placement. The first exception wins and is rethrown after the pool
/// drains.
void pool_execute(
    std::size_t count, std::size_t requested_threads, bool pooled,
    const std::function<void(std::size_t, RunContext*)>& work) {
  std::size_t threads =
      requested_threads != 0
          ? requested_threads
          : std::max(1U, std::thread::hardware_concurrency());
  threads = std::min(threads, count);

  std::atomic<std::size_t> next{0};
  FailureSlot failure;

  auto worker = [&] {
    std::optional<RunContext> context;
    if (pooled) context.emplace();
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        work(i, context ? &*context : nullptr);
      } catch (...) {
        failure.store(std::current_exception());
        return;
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (std::exception_ptr error = failure.take()) {
    std::rethrow_exception(error);
  }
}

/// One point through the worker's context (or fresh when pooling is off —
/// runner-level or scenario-level).
RunReport execute_point(const SweepPoint& point, RunContext* context) {
  if (context == nullptr) return run_scenario(point.config);
  return context->run(point.config);  // honors config.context_pooling
}

}  // namespace

BatchReport BatchRunner::run(std::vector<SweepPoint> points) const {
  std::vector<RunRecord> records(points.size());
  pool_execute(points.size(), options_.threads, options_.context_pooling,
               [&](std::size_t i, RunContext* context) {
                 records[i] = summarize(points[i].scenario, points[i].seed,
                                        execute_point(points[i], context));
               });

  if (options_.verify_determinism) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      // Always a fresh context: this is the recycled-vs-fresh tripwire.
      const RunRecord serial = summarize(points[i].scenario, points[i].seed,
                                         run_scenario(points[i].config));
      if (serial.digest != records[i].digest) {
        throw std::logic_error(
            "BatchRunner: nondeterministic run detected for (" +
            points[i].scenario + ", seed " +
            std::to_string(points[i].seed) +
            "): pooled digest " + records[i].digest + " != serial digest " +
            serial.digest);
      }
    }
  }

  return BatchReport(std::move(records));
}

std::vector<RunReport> BatchRunner::run_reports(
    std::vector<SweepPoint> points) const {
  std::vector<RunReport> reports(points.size());
  pool_execute(points.size(), options_.threads, options_.context_pooling,
               [&](std::size_t i, RunContext* context) {
                 reports[i] = execute_point(points[i], context);
               });

  if (options_.verify_determinism) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      const RunReport serial = run_scenario(points[i].config);
      if (serial.digest() != reports[i].digest()) {
        throw std::logic_error(
            "BatchRunner: nondeterministic run detected for (" +
            points[i].scenario + ", seed " + std::to_string(points[i].seed) +
            ")");
      }
    }
  }
  return reports;
}

}  // namespace bftcup::cup

// Fluent, validating construction of `Scenario`.
//
// The raw `Scenario` struct stays the runner's wire format, but everything
// outside src/cup/ assembles one through this builder:
//
//   const auto report = ScenarioBuilder(graph::figures::fig1b())
//                           .mode(Mode::kAuth)
//                           .byz(ByzBehavior::kFakePd)
//                           .fake_pd(ProcessId(4), {ProcessId(1)})
//                           .seed(7)
//                           .run();
//
// build() validates the assembled configuration (faulty ⊆ vertices, f
// consistent with the graph, proposals/fake PDs keyed by real processes,
// positive periods) and throws `ScenarioError` instead of letting a typo'd
// experiment silently measure the wrong system.
#pragma once

#include <initializer_list>
#include <stdexcept>
#include <string>

#include "cup/runner.hpp"
#include "graph/figures.hpp"
#include "graph/generators.hpp"

namespace bftcup::cup {

/// Thrown by ScenarioBuilder::build() on an inconsistent configuration.
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;

  /// Start from a bare knowledge connectivity graph (no faults).
  explicit ScenarioBuilder(graph::Digraph g);

  /// Start from a paper figure: graph + ground-truth faulty set + f.
  explicit ScenarioBuilder(const graph::figures::Instance& instance);

  /// Start from a generated system: graph + faulty set + f.
  explicit ScenarioBuilder(const graph::generators::GeneratedSystem& system);

  ScenarioBuilder& graph(graph::Digraph g);
  ScenarioBuilder& mode(Mode mode);
  ScenarioBuilder& byz(ByzBehavior behavior);
  ScenarioBuilder& faulty(IdSet ids);
  ScenarioBuilder& faulty(std::initializer_list<std::uint64_t> raw_ids);
  ScenarioBuilder& f(std::size_t f);

  ScenarioBuilder& seed(std::uint64_t seed);
  ScenarioBuilder& gst(SimTime gst);
  ScenarioBuilder& delta(SimTime delta);
  ScenarioBuilder& horizon(SimTime horizon);

  ScenarioBuilder& proposal(ProcessId id, Value value);
  /// Every process with raw id in [first, last] proposes `value` (the
  /// Theorem 7 experiments give each half of the system one value).
  ScenarioBuilder& propose_range(std::uint64_t first, std::uint64_t last,
                                 Value value);
  ScenarioBuilder& fake_pd(ProcessId id, IdSet advertised);

  // --- fault timeline (dynamic adversary) ---------------------------------
  // Scheduled faults interleave with deliveries under the deterministic
  // (time, seq) order; see sim/fault_timeline.hpp for the exact semantics.
  // A crashed *correct* process cannot decide, so a crash without a matching
  // recover_at before the horizon yields NO-TERMINATION by construction.

  /// Process `p` stops receiving (and therefore sending) at `at`.
  ScenarioBuilder& crash_at(ProcessId p, SimTime at);
  /// Process `p` comes back up at `at` and re-arms its periodic machinery.
  ScenarioBuilder& recover_at(ProcessId p, SimTime at);
  /// Messages sent from->to inside [at, up_at) are lost. Throws
  /// ScenarioError unless up_at > at.
  ScenarioBuilder& drop_link(ProcessId from, ProcessId to, SimTime at,
                             SimTime up_at);
  /// Bidirectional outage between the two groups over [at, heal_at).
  /// Throws ScenarioError unless heal_at > at.
  ScenarioBuilder& partition(IdSet group_a, IdSet group_b, SimTime at,
                             SimTime heal_at);
  /// Defers `p`'s start to `at` (late join / churn).
  ScenarioBuilder& join_at(ProcessId p, SimTime at);
  /// Replaces the whole script (for timelines assembled elsewhere).
  ScenarioBuilder& fault_timeline(sim::FaultTimeline timeline);

  // --- hostile wire (README "Hostile wire") --------------------------------
  // Both knobs break the paper's reliable-channel premise on purpose: they
  // are fault models for robustness testing, not paper assumptions. Safety
  // must survive them; Theorem 1 liveness need not.

  /// Seeded byte-level mutation of delivered frames: each targeted delivery
  /// is encoded, perturbed with probability `rate`, and re-parsed by the
  /// hardened decoder (rejects are counted and dropped). `kind_mask` selects
  /// mutation kinds (bit i = sim::WireMutationKind i), `type_mask` the
  /// targeted message types (bit i = msg::MsgType i), and `wire_seed` re-rolls
  /// the mutation schedule independently of the simulation seed.
  ScenarioBuilder& wire_mutation(
      double rate, std::uint32_t kind_mask = sim::kAllWireMutationKinds,
      std::uint32_t type_mask = sim::kAllWireMsgTypes,
      std::uint64_t wire_seed = 0);
  /// Seeded message loss: every send is dropped with probability `drop_p`,
  /// and surviving deliveries gain uniform extra delay in [0, jitter]
  /// (clamped to the partial-synchrony cap).
  ScenarioBuilder& loss(double drop_p, SimTime jitter = 0);
  /// Burst loss windows [start + k*period, start + k*period + len) — one
  /// window when period is 0 — inside which sends drop with `drop_p`
  /// (default: total blackout). Implies the loss model even when the
  /// baseline drop probability is zero.
  ScenarioBuilder& loss_burst(SimTime start, SimTime len, SimTime period = 0,
                              double drop_p = 1.0);

  ScenarioBuilder& discovery_period(SimTime period);
  ScenarioBuilder& pbft_base_timeout(SimTime timeout);
  ScenarioBuilder& delay_policy(
      std::function<std::unique_ptr<sim::DelayPolicy>()> make);
  ScenarioBuilder& search(std::shared_ptr<const protocol::SinkSearch> search);
  ScenarioBuilder& closure_guard(bool enabled = true);

  // --- membership-engine cache knobs ---------------------------------------
  // All three layers store pure functions of immutable inputs, so toggling
  // them cannot change a run's digest (the determinism suite asserts this);
  // they exist for A/B benchmarks and ablations. Defaults: all enabled.

  /// Per-simulation shared evaluation memo (canonical view -> sink/core result).
  ScenarioBuilder& eval_cache(bool enabled = true);
  /// Dirty-SCC candidate reuse inside the default search strategy. Ignored
  /// when a custom search() is installed (its own SearchOptions govern).
  ScenarioBuilder& incremental_search(bool enabled = true);
  /// Signature-verification memo (accepts and rejects) for the whole run.
  ScenarioBuilder& verify_cache(bool enabled = true);
  /// Master switch: sets all three knobs at once (`caching(false)` runs the
  /// fully cold engine — the pre-caching code path).
  ScenarioBuilder& caching(bool enabled);

  // --- run-engine knobs (README "Run engine"). Digest-neutral like the
  // cache knobs; they are mirrored into RunReport's contexts_recycled /
  // arena_bytes_peak counters. Defaults: both enabled.

  /// Allow BatchRunner / RunContext to execute this scenario on a recycled
  /// pooled context. Off forces a fresh simulator per run.
  ScenarioBuilder& context_pooling(bool enabled = true);
  /// Back the run's hot allocations with the context's bump arena.
  ScenarioBuilder& arena(bool enabled = true);
  /// Intra-run parallel membership evaluation: worker count for the run's
  /// WorkPool (0 = serial, the default). Digest-neutral at any setting —
  /// the parallel==serial property suite replays the corpus to assert it.
  ScenarioBuilder& parallel_eval(std::size_t threads);

  // --- observability knobs (README "Observability"). Observation only:
  // digest-neutral at every parallel_eval setting; the obs determinism
  // suite replays the corpus with them flipped to assert it.

  /// Span tracing over the run's hot layers: on installs a SpanTracer with
  /// the default flight-recorder capacity and exports RunReport::spans.
  ScenarioBuilder& tracing(bool enabled = true);
  /// Explicit flight-recorder capacity in span records (0 = tracing off).
  ScenarioBuilder& trace_capacity(std::size_t records);
  /// Collect the run's metrics delta into RunReport::metrics. The legacy
  /// RunReport counters are populated identically either way.
  ScenarioBuilder& metrics(bool enabled = true);

  /// Default flight-recorder capacity installed by tracing(true): deep
  /// enough to hold every span of the registry scenarios, and a bounded
  /// most-recent window (plus a drop count) for larger runs.
  static constexpr std::size_t kDefaultTraceCapacity = 1u << 15;

  /// Witness scenarios (fig. 1a, Theorem 7) intentionally violate the
  /// protocol premise |faulty| <= f; they must say so explicitly.
  ScenarioBuilder& allow_premise_violation(bool allowed = true);

  /// Validates and returns the assembled scenario. Throws ScenarioError.
  [[nodiscard]] Scenario build() const;

  /// build() + run_scenario(), the common one-shot path.
  [[nodiscard]] RunReport run() const;

 private:
  Scenario scenario_;
  bool allow_premise_violation_ = false;
};

}  // namespace bftcup::cup

#include "cup/scenario_registry.hpp"

#include <utility>

#include "explore/genome.hpp"
#include "msg/message.hpp"
#include "sim/network.hpp"
#include "sim/wire_mutator.hpp"

namespace bftcup::cup {
namespace {

using graph::figures::Instance;

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

// Theorem 7 experiment values: system A proposes v, system B proposes u.
constexpr Value kTheorem7V = 111;
constexpr Value kTheorem7U = 222;

/// The Theorem 7 "system AB" schedule: intra-group traffic is fast,
/// bridge traffic is stretched until both halves have decided.
std::function<std::unique_ptr<sim::DelayPolicy>()> ab_stretch_policy() {
  return [] {
    IdSet a, b;
    for (std::uint64_t id = 1; id <= 4; ++id) a.insert(p(id));
    for (std::uint64_t id = 5; id <= 8; ++id) b.insert(p(id));
    return std::make_unique<sim::GroupStretchPolicy>(
        std::make_unique<sim::RandomDelayPolicy>(), a, b, 700'000);
  };
}

ScenarioBuilder ab_base(Mode mode, std::uint64_t seed) {
  return ScenarioBuilder(graph::figures::fig2c())
      .mode(mode)
      .seed(seed)
      .gst(800'000)
      .horizon(mode == Mode::kNaive ? 1'000'000 : 150'000)
      .propose_range(1, 4, kTheorem7V)
      .propose_range(5, 8, kTheorem7U)
      .delay_policy(ab_stretch_policy());
}

void register_table1(ScenarioRegistry& registry) {
  struct Cell {
    const char* knowledge;
    Instance (*instance)();
    Mode mode;
  };
  const Cell cells[] = {
      // Known membership: complete graph, known f -> degenerates to PBFT.
      {"known-n-known-f", graph::figures::fig2a, Mode::kAuth},
      {"unknown-n-known-f", graph::figures::fig1b, Mode::kAuth},
      {"unknown-n-unknown-f", graph::figures::fig4a, Mode::kCupft},
  };
  for (const Cell& cell : cells) {
    registry.add({std::string("table1/sync/") + cell.knowledge,
                  "Table I, synchronous row: bounded delays from t=0; "
                  "consensus solvable",
                  {"table1", "sync", cell.knowledge},
                  [cell](std::uint64_t seed) {
                    return ScenarioBuilder(cell.instance())
                        .mode(cell.mode)
                        .seed(seed)
                        .gst(0)
                        .delta(5);
                  }});
    registry.add({std::string("table1/partial-sync/") + cell.knowledge,
                  "Table I, partially synchronous row: GST exists; "
                  "consensus solvable",
                  {"table1", "partial-sync", cell.knowledge},
                  [cell](std::uint64_t seed) {
                    return ScenarioBuilder(cell.instance())
                        .mode(cell.mode)
                        .seed(seed)
                        .gst(30'000)
                        .delta(10);
                  }});
    registry.add(
        {std::string("table1/async/") + cell.knowledge,
         "Table I, asynchronous row: no GST within the horizon, two correct "
         "processes starved; must not decide (FLP witness)",
         {"table1", "async", cell.knowledge},
         [cell](std::uint64_t seed) {
           // The adversary freezes the traffic of enough correct processes
           // to starve every quorum — allowed in a truly asynchronous
           // system, where "slow" and "crashed" are indistinguishable.
           const IdSet frozen{p(1), p(2)};
           return ScenarioBuilder(cell.instance())
               .mode(cell.mode)
               .seed(seed)
               .gst(kSimTimeMax / 2)
               .delta(10)
               .horizon(400'000)
               .delay_policy([frozen] {
                 return std::make_unique<sim::SlowSenderPolicy>(
                     std::make_unique<sim::RandomDelayPolicy>(), frozen,
                     /*release_at=*/kSimTimeMax / 2);
               });
         }});
  }
}

void register_fig1(ScenarioRegistry& registry) {
  registry.add({"fig1a/silent",
                "Fig. 1a: fails the BFT-CUP requirements; with 4 silent the "
                "remaining processes cannot terminate",
                {"fig1", "auth", "witness"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig1a())
                      .mode(Mode::kAuth)
                      .seed(seed)
                      .horizon(150'000);
                }});
  registry.add({"fig1b/silent",
                "Fig. 1b: satisfies BFT-CUP with f=1; solvable although the "
                "Byzantine 4 never speaks",
                {"fig1", "auth"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig1b())
                      .mode(Mode::kAuth)
                      .seed(seed)
                      .horizon(2'000'000);
                }});
  registry.add({"fig1b/fake-pd",
                "Fig. 1b: Byzantine 4 advertises the fake PD {1,2,3}; "
                "solvable regardless",
                {"fig1", "auth", "byz"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig1b())
                      .mode(Mode::kAuth)
                      .byz(ByzBehavior::kFakePd)
                      .fake_pd(p(4), {p(1), p(2), p(3)})
                      .seed(seed)
                      .horizon(2'000'000);
                }});
  registry.add({"fig1b/wrong-value",
                "Fig. 1b: Byzantine 4 serves a bogus DECIDEDVAL; validity "
                "must hold anyway",
                {"fig1", "auth", "byz"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig1b())
                      .mode(Mode::kAuth)
                      .byz(ByzBehavior::kWrongValue)
                      .seed(seed)
                      .horizon(2'000'000);
                }});
}

void register_fig2(ScenarioRegistry& registry) {
  registry.add({"fig2/system-a-naive",
                "Theorem 7 system A (Fig. 2a): naive unknown-f decides v",
                {"fig2", "theorem7", "naive", "witness"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig2a())
                      .mode(Mode::kNaive)
                      .seed(seed)
                      .propose_range(1, 4, kTheorem7V);
                }});
  registry.add({"fig2/system-b-naive",
                "Theorem 7 system B (Fig. 2b): naive unknown-f decides u",
                {"fig2", "theorem7", "naive", "witness"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig2b())
                      .mode(Mode::kNaive)
                      .seed(seed)
                      .propose_range(5, 8, kTheorem7U);
                }});
  registry.add({"fig2/system-ab-naive",
                "Theorem 7 system AB (Fig. 2c): slow bridge splits the naive "
                "protocol into two deciding halves — Agreement violated",
                {"fig2", "theorem7", "naive", "witness"},
                [](std::uint64_t seed) { return ab_base(Mode::kNaive, seed); }});
  registry.add({"fig2/system-ab-cupft",
                "Theorem 7 system AB under BFT-CUPFT: waits instead of "
                "splitting; safety preserved at the cost of liveness",
                {"fig2", "theorem7", "cupft"},
                [](std::uint64_t seed) { return ab_base(Mode::kCupft, seed); }});
}

void register_fig3(ScenarioRegistry& registry) {
  registry.add({"fig3a/auth",
                "Fig. 3a with the true f=1: all processes settle on the real "
                "sink {5,7,8}",
                {"fig3", "auth"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig3a())
                      .mode(Mode::kAuth)
                      .seed(seed);
                }});
  registry.add({"fig3a/cupft",
                "Fig. 3a, f unknown: tie at k=2 (Observation 1), must not "
                "decide",
                {"fig3", "cupft", "witness"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig3a())
                      .mode(Mode::kCupft)
                      .seed(seed)
                      .horizon(150'000);
                }});
  registry.add({"fig3b/auth",
                "Fig. 3b with the true f=2: solvable",
                {"fig3", "auth"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig3b())
                      .mode(Mode::kAuth)
                      .seed(seed);
                }});
  registry.add({"fig3b/cupft",
                "Fig. 3b, f unknown: the 3-OSR sink dominates; solvable",
                {"fig3", "cupft"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig3b())
                      .mode(Mode::kCupft)
                      .seed(seed);
                }});
}

void register_fig4(ScenarioRegistry& registry) {
  struct Fig4 {
    const char* prefix;
    Instance (*instance)();
  };
  for (const Fig4& fig :
       {Fig4{"fig4a", graph::figures::fig4a},
        Fig4{"fig4b", graph::figures::fig4b}}) {
    registry.add({std::string(fig.prefix) + "/cupft-silent",
                  "Fig. 4: BFT-CUPFT requirements hold; the Core algorithm "
                  "discovers the core and consensus solves without f",
                  {"fig4", "cupft"},
                  [fig](std::uint64_t seed) {
                    return ScenarioBuilder(fig.instance())
                        .mode(Mode::kCupft)
                        .seed(seed);
                  }});
    registry.add({std::string(fig.prefix) + "/cupft-fake-pd",
                  "Fig. 4 with the Byzantine member advertising a fake PD; "
                  "still solvable",
                  {"fig4", "cupft", "byz"},
                  [fig](std::uint64_t seed) {
                    return ScenarioBuilder(fig.instance())
                        .mode(Mode::kCupft)
                        .byz(ByzBehavior::kFakePd)
                        .seed(seed);
                  }});
  }
  registry.add({"fig4a/bridge-hiding-attack",
                "Bridge-hiding fake-PD attack on Fig. 4a (DESIGN.md 4.6 "
                "finding 3): 5 advertises {6,7,8} to hide the bridge",
                {"fig4", "cupft", "byz", "attack"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig4a())
                      .mode(Mode::kCupft)
                      .byz(ByzBehavior::kFakePd)
                      .fake_pd(p(5), {p(6), p(7), p(8)})
                      .seed(seed)
                      .horizon(300'000);
                }});
  registry.add({"fig4a/bridge-hiding-guarded",
                "The same attack with the knowledge-closure guard enabled",
                {"fig4", "cupft", "byz", "attack"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig4a())
                      .mode(Mode::kCupft)
                      .byz(ByzBehavior::kFakePd)
                      .fake_pd(p(5), {p(6), p(7), p(8)})
                      .closure_guard()
                      .seed(seed)
                      .horizon(300'000);
                }});
  registry.add({"fig4a/closure-guard-cost",
                "Closure guard on a benign run of Fig. 4a (latency cost of "
                "the guard)",
                {"fig4", "cupft"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig4a())
                      .mode(Mode::kCupft)
                      .closure_guard()
                      .seed(seed)
                      .horizon(150'000);
                }});
}

void register_generated(ScenarioRegistry& registry) {
  registry.add({"quickstart/fig1b-auth",
                "The README quickstart: Fig. 1b, everyone told f=1, "
                "Byzantine 4 silent",
                {"quickstart", "fig1", "auth"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig1b())
                      .mode(Mode::kAuth)
                      .seed(seed);
                }});
  for (std::size_t f : {std::size_t{1}, std::size_t{2}}) {
    registry.add(
        {"adhoc/f" + std::to_string(f),
         "Self-organizing ad-hoc network: random BFT-CUP topology, "
         "wrong-value Byzantine inside the sink, chaotic start-up",
         {"adhoc", "generated", "auth"},
         [f](std::uint64_t seed) {
           Rng rng(17 * f + 1);  // fixed topology; `seed` drives the schedule
           graph::generators::BftCupParams params;
           params.f = f;
           params.sink_size = 2 * f + 1 + f;
           params.non_sink = 6;
           params.byzantine_in_sink = f;
           return ScenarioBuilder(
                      graph::generators::random_bft_cup(params, rng))
               .mode(Mode::kAuth)
               .byz(ByzBehavior::kWrongValue)
               .seed(seed)
               .gst(5'000)
               .delta(20);
         }});
  }
  registry.add(
      {"blockchain/committee",
       "Validator committee of 5 discoverable by 8 light participants; "
       "nobody knows f; one validator advertises a fake PD",
       {"blockchain", "generated", "cupft"},
       [](std::uint64_t seed) {
         Rng rng(2024);
         graph::generators::CupftParams params;
         params.f = 1;
         params.core_size = 5;
         params.periphery = 8;
         params.byzantine_in_core = 1;
         const auto system = graph::generators::random_cupft(params, rng);
         ScenarioBuilder builder =
             ScenarioBuilder(system)
                 .mode(Mode::kCupft)
                 .byz(ByzBehavior::kFakePd)
                 .seed(seed);
         // Each participant proposes its preferred block hash (toy values).
         for (ProcessId id : system.graph.vertices()) {
           builder.proposal(id, 0xb10c0000 + id.raw());
         }
         return builder;
       }});
  // The "price of not knowing f" family (experiment P3): identical
  // generated topologies run in known-f and unknown-f modes.
  for (std::size_t core : {std::size_t{5}, std::size_t{7}}) {
    for (std::size_t periphery :
         {std::size_t{3}, std::size_t{6}, std::size_t{10}}) {
      for (Mode mode : {Mode::kAuth, Mode::kCupft}) {
        const std::string name =
            "price-of-f/core" + std::to_string(core) + "-peri" +
            std::to_string(periphery) +
            (mode == Mode::kAuth ? "/auth" : "/cupft");
        registry.add(
            {name,
             "AuthCup (known f) vs CUPFT (unknown f) on the same random "
             "BFT-CUPFT-compatible topology",
             {"price-of-f", "generated",
              mode == Mode::kAuth ? "auth" : "cupft"},
             [core, periphery, mode](std::uint64_t seed) {
               Rng rng(11);  // fixed topology shared by both modes
               graph::generators::CupftParams params;
               params.f = 1;
               params.core_size = core;
               params.periphery = periphery;
               params.byzantine_in_core = 1;
               return ScenarioBuilder(
                          graph::generators::random_cupft(params, rng))
                   .mode(mode)
                   .seed(seed);
             }});
      }
    }
  }
}

void register_dynamic(ScenarioRegistry& registry) {
  // The paper's adversary controls *when* faults manifest, not just which
  // processes are faulty; this family exercises the FaultTimeline. The
  // scenarios run the same protocols as their static counterparts — only
  // the fault schedule differs.
  registry.add({"dyn/crash-mid-discovery",
                "Fig. 1b graph with nobody Byzantine (the f=1 budget is "
                "spent on a timed crash instead): sink member 2 crashes "
                "during the first discovery round and recovers at t=5000; "
                "recovery re-polls and re-fetches, and the run solves",
                {"dynamic", "fault-timeline", "fig1", "auth"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig1b())
                      .faulty(IdSet{})
                      .mode(Mode::kAuth)
                      .seed(seed)
                      .crash_at(p(2), 5)
                      .recover_at(p(2), 5'000)
                      .horizon(2'000'000);
                }});
  registry.add({"dyn/crash-beyond-budget",
                "Fig. 1b: Byzantine 4 already spends the f=1 budget, then "
                "correct sink member 2 crashes at t=60 and never recovers — "
                "two faults against f=1, so termination fails (witness "
                "that timed crashes count against the fault budget)",
                {"dynamic", "fault-timeline", "fig1", "auth", "witness"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig1b())
                      .mode(Mode::kAuth)
                      .seed(seed)
                      .crash_at(p(2), 60)
                      .horizon(150'000);
                }});
  registry.add({"dyn/partition-heal-before-gst",
                "Fig. 2a: {1,2} and {3,4} are partitioned from t=0; the "
                "partition heals at t=20000, before GST=30000 — partial "
                "synchrony subsumes the outage and consensus solves",
                {"dynamic", "fault-timeline", "fig2", "auth"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig2a())
                      .mode(Mode::kAuth)
                      .seed(seed)
                      .gst(30'000)
                      .partition({p(1), p(2)}, {p(3), p(4)}, 0, 20'000)
                      .horizon(2'000'000);
                }});
  registry.add({"dyn/staggered-join",
                "Fig. 1b: sink members 2 and 3 join late (t=200, t=400) "
                "instead of starting at t=0; periodic discovery re-polls "
                "absorb the churn and the run still solves",
                {"dynamic", "fault-timeline", "fig1", "auth"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig1b())
                      .mode(Mode::kAuth)
                      .seed(seed)
                      .join_at(p(2), 200)
                      .join_at(p(3), 400)
                      .horizon(2'000'000);
                }});
  registry.add({"dyn/link-flap",
                "Fig. 1b: both directions of the 1<->2 link are down for "
                "[0, 2000); redundant knowledge paths plus re-polls after "
                "the window keep the run solvable",
                {"dynamic", "fault-timeline", "fig1", "auth"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig1b())
                      .mode(Mode::kAuth)
                      .seed(seed)
                      .drop_link(p(1), p(2), 0, 2'000)
                      .drop_link(p(2), p(1), 0, 2'000)
                      .horizon(2'000'000);
                }});
  registry.add({"dyn/crash-mid-consensus",
                "Fig. 4a (CUPFT): core member 2 crashes at t=30, while "
                "discovery/consensus is in flight, and recovers at t=10000; "
                "the remaining core members reach quorum without it and the "
                "recovery re-fetch brings it to the same value",
                {"dynamic", "fault-timeline", "fig4", "cupft"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig4a())
                      .mode(Mode::kCupft)
                      .seed(seed)
                      .crash_at(p(2), 30)
                      .recover_at(p(2), 10'000)
                      .horizon(2'000'000);
                }});
}

void register_wire(ScenarioRegistry& registry) {
  // Hostile-wire robustness family: the protocol under a byte-level
  // Byzantine wire (sim::WireMutator) and a lossy fault model
  // (sim::LossyDelayPolicy). Safety must hold on every entry — mutated or
  // lost frames may cost termination, never agreement or validity; the
  // assertions and pinned digests live in tests/wire_test.cpp.
  constexpr auto kind_bit = [](sim::WireMutationKind kind) {
    return 1u << static_cast<std::uint32_t>(kind);
  };
  constexpr auto type_bit = [](msg::MsgType type) {
    return 1u << static_cast<std::uint32_t>(type);
  };
  registry.add({"wire/fig1b-bitflip",
                "Fig. 1b under a 5% bit-flipping wire: flipped frames must "
                "be rejected or verified away, never decide a forged value",
                {"wire", "fig1", "auth"},
                [kind_bit](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig1b())
                      .mode(Mode::kAuth)
                      .seed(seed)
                      .wire_mutation(0.05,
                                     kind_bit(sim::WireMutationKind::kBitFlip))
                      .horizon(2'000'000);
                }});
  registry.add({"wire/fig1b-storm",
                "Fig. 1b under a 35% all-kinds mutation storm: truncation, "
                "splicing, replay, duplication, and garbage at once",
                {"wire", "fig1", "auth"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig1b())
                      .mode(Mode::kAuth)
                      .seed(seed)
                      .wire_mutation(0.35)
                      .horizon(2'000'000);
                }});
  registry.add(
      {"wire/fig4a-splice-cert",
       "Fig. 4a (CUPFT) with splice/replay mutations aimed at the "
       "cert-carrying consensus messages — a spliced quorum cert must "
       "never pass the Verifier",
       {"wire", "fig4", "cupft"},
       [kind_bit, type_bit](std::uint64_t seed) {
         return ScenarioBuilder(graph::figures::fig4a())
             .mode(Mode::kCupft)
             .seed(seed)
             .wire_mutation(0.25,
                            kind_bit(sim::WireMutationKind::kSplice) |
                                kind_bit(sim::WireMutationKind::kReplay),
                            type_bit(msg::MsgType::kDecidedVal) |
                                type_bit(msg::MsgType::kPbftCommit) |
                                type_bit(msg::MsgType::kPbftNewView) |
                                type_bit(msg::MsgType::kPbftDecide))
             .horizon(2'000'000);
       }});
  registry.add({"wire/fig4a-garbage",
                "Fig. 4a (CUPFT) with 25% of frames replaced by seeded "
                "garbage bytes: the decoder must reject every one",
                {"wire", "fig4", "cupft"},
                [kind_bit](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig4a())
                      .mode(Mode::kCupft)
                      .seed(seed)
                      .wire_mutation(0.25,
                                     kind_bit(sim::WireMutationKind::kGarbage))
                      .horizon(2'000'000);
                }});
  registry.add({"wire/fig1b-lossy",
                "Fig. 1b over a lossy link: 5% uniform drops plus jitter up "
                "to 20 ticks; re-polls ride out the loss",
                {"wire", "fig1", "auth", "loss"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig1b())
                      .mode(Mode::kAuth)
                      .seed(seed)
                      .loss(0.05, 20)
                      .horizon(2'000'000);
                }});
  registry.add({"wire/fig1b-burst",
                "Fig. 1b with recurring burst outages: every frame sent in "
                "[20+500k, 60+500k) is lost (the clean run completes by "
                "t=73, so the first window lands mid-discovery)",
                {"wire", "fig1", "auth", "loss"},
                [](std::uint64_t seed) {
                  return ScenarioBuilder(graph::figures::fig1b())
                      .mode(Mode::kAuth)
                      .seed(seed)
                      .loss_burst(20, 40, 500)
                      .horizon(2'000'000);
                }});
}

void register_explored(ScenarioRegistry& registry) {
  // The checked-in attack corpus: counterexamples and witnesses found and
  // minimized by the adversary explorer (src/explore/, tools/cup_explore).
  // Each entry is its one-line genome artifact verbatim — names match the
  // explorer's content-addressed output, digests are pinned for seeds 1
  // and 7 in tests/determinism_test.cpp, and verdicts are asserted by
  // tests/attack_corpus_test.cpp. Every line is 1-minimal: the shrinker
  // verified that no single deletion (timeline gene, fake-PD member or
  // entry, faulty mark, edge, vertex) preserves the classification.
  struct Found {
    const char* name;
    const char* description;
    const char* kind_tag;
    const char* role_tag;  ///< "attack" (requirements hold) or "witness"
    const char* line;
  };
  const Found corpus[] = {
      {"explored/agreement-14960b90",
       "Adversary-free agreement break: 8 correct processes, f=1, Theorem 1 "
       "SATISFIED, nobody Byzantine — yet partial views let different "
       "processes self-declare different sinks and decide different values "
       "(divergence from Theorem 4's uniqueness argument). Seed 1 splits; "
       "seed 7 stalls instead.",
       "agreement", "attack",
       "v=1.2.3.4.5.6.7.8|e=1>6;1>7;2>4;2>5;2>6;2>7;3>1;3>2;3>4;3>5;3>6;3>7;"
       "4>1;4>2;4>5;4>6;4>7;5>7;5>8;6>1;6>2;6>3;6>4;6>5;6>7;7>5;7>8;8>5;8>7|"
       "f=1|mode=auth|byz=silent|faulty=|fpd=|tl=|gst=0|delta=10|hz=300000|"
       "seed=1|cg=0"},
      {"explored/agreement-2085e512",
       "CUPFT agreement break with a merely discovery-participating "
       "Byzantine (true PD advertised, silent in consensus) on a shrunk "
       "Fig. 4a variant; Section V requirements SATISFIED. The "
       "bridge-hiding family generalized — no fake PD needed.",
       "agreement", "attack",
       "v=1.2.3.4.5.6.7.8|e=1>3;1>4;2>3;2>4;3>1;3>2;4>1;4>2;5>7;5>8;6>3;"
       "6>7;6>8;7>2;7>5;7>6;7>8;8>5;8>6;8>7|f=1|mode=cupft|byz=fakepd|"
       "faulty=5|fpd=|tl=|gst=0|delta=10|hz=300000|seed=1|cg=0"},
      {"explored/agreement-2085e512-guarded",
       "The same scenario with the knowledge-closure guard enabled: safety "
       "restored at the cost of liveness (NO-TERMINATION), mirroring "
       "fig4a/bridge-hiding-guarded.",
       "agreement", "attack",
       "v=1.2.3.4.5.6.7.8|e=1>3;1>4;2>3;2>4;3>1;3>2;4>1;4>2;5>7;5>8;6>3;"
       "6>7;6>8;7>2;7>5;7>6;7>8;8>5;8>6;8>7|f=1|mode=cupft|byz=fakepd|"
       "faulty=5|fpd=|tl=|gst=0|delta=10|hz=300000|seed=1|cg=1"},
      {"explored/agreement-unsat-a872e429",
       "The minimal split-brain: two disconnected complete components "
       "(sizes 3 and 4) each solve on their own values. The necessity "
       "witness for weak connectivity — agreement violated for the trivial "
       "reason the requirements no longer hold.",
       "agreement", "witness",
       "v=1.2.3.5.6.7.8|e=1>2;1>3;2>1;2>3;3>1;3>2;5>6;5>7;6>7;6>8;7>5;7>8;"
       "8>5;8>6|f=1|mode=auth|byz=silent|faulty=|fpd=|tl=|gst=0|delta=10|"
       "hz=300000|seed=1|cg=0"},
      {"explored/liveness-94af2f39",
       "Fake-PD liveness attack on CUPFT: Byzantine 5 advertises {7,8}; "
       "Section V requirements SATISFIED on G_safe, every correct process "
       "lives, yet discovery never converges to a decidable core. Seed 7 "
       "escalates to an agreement violation.",
       "liveness", "attack",
       "v=1.2.3.4.5.6.7.8|e=1>3;1>4;2>3;2>4;3>1;3>2;4>1;4>2;6>3;6>8;7>2;"
       "7>5;7>6;7>8;8>5;8>6;8>7|f=1|mode=cupft|byz=fakepd|faulty=5|"
       "fpd=5:7.8|tl=|gst=0|delta=10|hz=300000|seed=1|cg=0"},
      {"explored/liveness-489bf1e6",
       "Adversary-free non-termination: Theorem 1 SATISFIED (sink {5,7,8} "
       "of G_safe = G), nobody faulty, no timeline — yet two processes "
       "never decide (the Fig. 3a ambiguity family minimized; divergence "
       "between the solvability predicate and the implementation).",
       "liveness", "attack",
       "v=2.3.4.5.6.7.8|e=2>6;2>7;3>4;3>6;4>3;4>5;4>6;4>7;5>7;5>8;6>3;6>4;"
       "6>7;7>5;7>8;8>5;8>7|f=1|mode=auth|byz=silent|faulty=|fpd=|tl=|"
       "gst=0|delta=10|hz=300000|seed=1|cg=0"},
      {"explored/liveness-fda77490",
       "A single late join (process 2 at t=8990) permanently prevents "
       "termination on a CUPFT topology whose requirements are SATISFIED "
       "and whose no-join run solves — churn outlasting the discovery "
       "epoch is not absorbed.",
       "liveness", "attack",
       "v=1.2.3.4.5.6.7.8|e=1>3;1>4;2>3;2>4;3>1;3>2;3>4;4>1;4>2;4>3;5>4;"
       "5>8;6>3;6>8;7>6;7>8;8>5;8>7|f=1|mode=cupft|byz=silent|faulty=|fpd=|"
       "tl=join:2@8990|gst=0|delta=10|hz=300000|seed=1|cg=0"},
      {"explored/witness-45674aae",
       "Sufficiency-not-necessity witness: a 4-process CUPFT system whose "
       "periphery process knows a single core member (Definition 2 FAILS) "
       "still SOLVES under a benign schedule — the requirement checkers "
       "bound the adversarial worst case, not every run.",
       "witness", "witness",
       "v=2.3.4.7|e=2>3;2>4;3>2;3>4;4>2;4>3;7>2|f=1|mode=cupft|byz=silent|"
       "faulty=|fpd=|tl=|gst=0|delta=10|hz=300000|seed=1|cg=0"},
  };
  for (const Found& found : corpus) {
    const auto genome = explore::Genome::parse_line(found.line);
    if (!genome.has_value()) {
      throw ScenarioError(std::string("explored corpus line is malformed: ") +
                          found.name);
    }
    registry.add({found.name,
                  found.description,
                  {"explored", found.kind_tag, found.role_tag},
                  [genome = *genome](std::uint64_t seed) {
                    return genome.to_builder().seed(seed);
                  }});
  }
}

ScenarioRegistry build_paper_registry() {
  ScenarioRegistry registry;
  register_table1(registry);
  register_fig1(registry);
  register_fig2(registry);
  register_fig3(registry);
  register_fig4(registry);
  register_generated(registry);
  register_dynamic(registry);
  register_wire(registry);
  register_explored(registry);
  return registry;
}

}  // namespace

namespace detail {

void validate_scenario_name(const std::string& name) {
  if (name.empty()) {
    throw ScenarioError("scenario names must be non-empty");
  }
  for (char c : name) {
    if (c == ',' || c == '"' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x20) {
      throw ScenarioError(
          "scenario name \"" + name +
          "\" contains a character that breaks the CSV/JSON round-trip "
          "(comma, quote, backslash, or control character)");
    }
  }
}

}  // namespace detail

const ScenarioRegistry& ScenarioRegistry::paper() {
  static const ScenarioRegistry registry = build_paper_registry();
  return registry;
}

void ScenarioRegistry::add(Entry entry) {
  detail::validate_scenario_name(entry.name);
  if (entries_.contains(entry.name)) {
    throw ScenarioError("ScenarioRegistry: duplicate scenario \"" +
                        entry.name + "\"");
  }
  std::string name = entry.name;
  entries_.emplace(std::move(name), std::move(entry));
}

const ScenarioRegistry::Entry* ScenarioRegistry::find(
    std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

bool ScenarioRegistry::contains(std::string_view name) const {
  return entries_.contains(name);
}

ScenarioBuilder ScenarioRegistry::builder(std::string_view name,
                                          std::uint64_t seed) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    throw ScenarioError("ScenarioRegistry: unknown scenario \"" +
                        std::string(name) + "\"");
  }
  return entry->make(seed);
}

Scenario ScenarioRegistry::make(std::string_view name,
                                std::uint64_t seed) const {
  return builder(name, seed).build();
}

RunReport ScenarioRegistry::run(std::string_view name,
                                std::uint64_t seed) const {
  return run_scenario(make(name, seed));
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::vector<std::string> ScenarioRegistry::names_with_tag(
    std::string_view tag) const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) {
    for (const std::string& t : entry.tags) {
      if (t == tag) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

}  // namespace bftcup::cup

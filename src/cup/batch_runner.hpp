// Parallel experiment engine.
//
// A `Sweep` names a set of scenarios (inline builders, registry entries, or
// whole registry tags) crossed with a seed range; `BatchRunner` expands it
// into independent (scenario, seed) runs, executes them across a
// std::thread pool — each run owns its simulator, so the sweep is
// embarrassingly parallel — and aggregates a `BatchReport` with per-scenario
// pass rates, latency percentiles, traffic totals, and CSV/JSON export.
//
// Determinism: the simulator guarantees bit-identical replay for a
// (scenario, seed) pair. `Options::verify_determinism` re-runs every point
// serially after the pool drains and asserts the report digests match.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cup/scenario_builder.hpp"
#include "cup/scenario_registry.hpp"

namespace bftcup::cup {

/// One expanded (scenario, seed) run.
struct SweepPoint {
  std::string scenario;
  std::uint64_t seed = 1;
  Scenario config;
};

class Sweep {
 public:
  using Factory = std::function<Scenario(std::uint64_t seed)>;

  /// Adds a scenario from an explicit factory over the seed.
  Sweep& add(std::string name, Factory factory);

  /// Adds a scenario from a builder; the sweep's seed axis overrides the
  /// builder's seed per run.
  Sweep& add(std::string name, ScenarioBuilder builder);

  /// Adds one registry entry / every entry carrying a tag.
  Sweep& add(const ScenarioRegistry& registry, std::string_view name);
  Sweep& add_tag(const ScenarioRegistry& registry, std::string_view tag);

  /// Parameter axis: one scenario per value, named `prefix + value`.
  /// `make(value)` returns a ScenarioBuilder.
  template <typename V, typename MakeBuilder>
  Sweep& axis(const std::string& prefix, std::initializer_list<V> values,
              MakeBuilder make) {
    for (const V& value : values) {
      add(prefix + std::to_string(value), make(value));
    }
    return *this;
  }

  /// Seed axis: seeds first, first+1, ..., first+count-1 (default: seed 1).
  Sweep& seeds(std::uint64_t first, std::size_t count);

  [[nodiscard]] std::size_t scenario_count() const { return entries_.size(); }
  [[nodiscard]] std::size_t run_count() const;

  /// Builds every (scenario, seed) point, in deterministic order
  /// (scenarios in insertion order, seeds ascending).
  [[nodiscard]] std::vector<SweepPoint> expand() const;

 private:
  struct Entry {
    std::string name;
    Factory make;
  };
  std::vector<Entry> entries_;
  std::uint64_t seed_first_ = 1;
  std::size_t seed_count_ = 1;
};

/// Flattened outcome of one run — everything the experiment tables report,
/// in plain scalars so reports round-trip through CSV/JSON.
struct RunRecord {
  std::string scenario;
  std::uint64_t seed = 0;
  std::string verdict;  ///< SOLVED / NO-TERMINATION / ...
  bool agreement = true;
  bool validity = true;
  bool terminated = false;
  std::int64_t latency = -1;  ///< completion time; -1 when not all decided
  std::uint64_t messages = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bytes = 0;
  std::uint64_t value = 0;  ///< common decided value; 0 when none
  // Cache effectiveness (see RunReport): where search/crypto effort went.
  // Under a pooled BatchRunner these describe the executing context's
  // warm caches and so depend on thread placement; the behavioral fields
  // and the digest never do.
  std::uint64_t evaluations = 0;
  std::uint64_t eval_hits = 0;
  std::uint64_t signatures = 0;  ///< HMAC verifications computed
  std::uint64_t sig_hits = 0;    ///< served by the verification memo
  // Run-engine counters (RunReport::contexts_recycled / arena_bytes_peak).
  std::uint64_t recycled = 0;    ///< prior runs served by the context
  std::uint64_t arena_peak = 0;  ///< arena bytes high-water
  /// Process peak RSS in bytes when this record was summarized
  /// (common/sys_resource.hpp: ru_maxrss, normalized to bytes on every
  /// platform). A process-wide high-water mark, not a per-run figure —
  /// meaningful for the batch's memory ceiling, and excluded from the
  /// digest like every other executing-context property.
  std::uint64_t peak_rss = 0;
  // Hostile-wire counters (RunReport::frames_*): zero unless the scenario
  // enables the wire mutation layer or the lossy-network model.
  std::uint64_t frames_mutated = 0;   ///< deliveries perturbed on the wire
  std::uint64_t frames_rejected = 0;  ///< frames the hardened decoder refused
  std::uint64_t frames_lost = 0;      ///< sends dropped by the loss model
  std::string digest;            ///< RunReport::digest()

  friend bool operator==(const RunRecord&, const RunRecord&) = default;
};

/// Flattens a RunReport into a RunRecord (computes the digest).
[[nodiscard]] RunRecord summarize(std::string scenario, std::uint64_t seed,
                                  const RunReport& report);

/// Batch-level aggregation of per-run metrics snapshots (RunReport::metrics,
/// src/obs/metrics.hpp): counters and histogram buckets add, gauges keep
/// their maximum. Both operations are commutative and associative, so a
/// pooled batch and its serial replay merge to identical totals for every
/// placement-independent metric — the obs analogue of the cache-counter
/// sums batch_runner_test already pins.
[[nodiscard]] obs::MetricsSnapshot merge_run_metrics(
    const std::vector<RunReport>& reports);

/// Per-scenario aggregate over a batch.
struct ScenarioStats {
  std::string scenario;
  std::size_t runs = 0;
  std::size_t solved = 0;
  std::size_t agreement_violations = 0;
  std::size_t validity_violations = 0;
  std::size_t non_terminations = 0;
  // Latency over runs that completed; -1 when none did. Percentiles use
  // the nearest-rank method.
  std::int64_t latency_min = -1;
  std::int64_t latency_p50 = -1;
  std::int64_t latency_p99 = -1;
  std::int64_t latency_max = -1;
  std::uint64_t messages_total = 0;
  std::uint64_t bytes_total = 0;
  // Cache effectiveness across the scenario's runs.
  std::uint64_t evaluations_total = 0;
  std::uint64_t eval_hits_total = 0;
  std::uint64_t signatures_total = 0;
  std::uint64_t sig_hits_total = 0;
  /// Highest RunRecord::peak_rss across the scenario's runs (bytes; the
  /// process-wide high-water mark as of the scenario's last-summarized run).
  std::uint64_t peak_rss_max = 0;

  [[nodiscard]] double pass_rate() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(solved) / static_cast<double>(runs);
  }
};

class BatchReport {
 public:
  BatchReport() = default;
  explicit BatchReport(std::vector<RunRecord> runs) : runs_(std::move(runs)) {}

  [[nodiscard]] const std::vector<RunRecord>& runs() const { return runs_; }

  /// Aggregates per scenario, in first-seen order.
  [[nodiscard]] std::vector<ScenarioStats> scenarios() const;

  /// Records for one scenario, in run order.
  [[nodiscard]] std::vector<const RunRecord*> runs_of(
      std::string_view scenario) const;

  // --- export / import (round-trip: from_x(to_x(r)) == r) ---
  [[nodiscard]] std::string runs_csv() const;
  [[nodiscard]] std::string summary_csv() const;
  [[nodiscard]] std::string to_json() const;
  static BatchReport from_runs_csv(const std::string& csv);
  static BatchReport from_json(const std::string& json);

  /// Aggregate table, aligned for terminals.
  void print_summary(std::FILE* out = stdout) const;

  friend bool operator==(const BatchReport&, const BatchReport&) = default;

 private:
  std::vector<RunRecord> runs_;
};

// Width-safe single-run row formatting (the bench harnesses' table body).
void print_run_header(std::FILE* out, const char* experiment,
                      const char* claim);
void print_run_row(std::FILE* out, const std::string& name,
                   const RunReport& report);

class BatchRunner {
 public:
  struct Options {
    std::size_t threads = 0;  ///< 0 = hardware concurrency
    /// Re-run every point serially on a *fresh* context and assert digest
    /// equality with the pooled run — both the simulator's bit-replay
    /// guarantee and the run engine's recycling tripwire. Doubles the work.
    bool verify_determinism = false;
    /// Give each worker a recyclable cup::RunContext (pooled simulator,
    /// arena, cross-run caches) instead of a fresh simulator per run.
    /// Scenarios built with context_pooling(false) opt out per point.
    /// Behavior and digests are identical either way; only the
    /// cache-effectiveness counters differ.
    bool context_pooling = true;
  };

  BatchRunner() = default;
  explicit BatchRunner(Options options) : options_(options) {}

  [[nodiscard]] BatchReport run(const Sweep& sweep) const;
  [[nodiscard]] BatchReport run(std::vector<SweepPoint> points) const;

  /// Executes the points through the same pool but returns the full
  /// RunReports, indexed like `points`. The adversary explorer needs
  /// coverage features (message-type histogram, memberships) that the
  /// flattened RunRecord drops. `Options::verify_determinism` applies.
  [[nodiscard]] std::vector<RunReport> run_reports(
      std::vector<SweepPoint> points) const;

 private:
  Options options_;
};

}  // namespace bftcup::cup

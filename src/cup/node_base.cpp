#include "cup/node_base.hpp"

#include <cassert>

#include "common/logging.hpp"

namespace bftcup::cup {

CupNodeBase::CupNodeBase(ProcessId id, Params params)
    : sim::Process(id),
      params_(std::move(params)),
      discovery_(id, params_.pd, params_.discovery_period, params_.arena),
      exchange_(id),
      pending_pbft_(params_.arena != nullptr
                        ? params_.arena
                        : std::pmr::get_default_resource()) {
  assert(params_.search != nullptr);
}

void CupNodeBase::on_start(sim::Context& ctx) {
  discovery_.start(ctx);
  maybe_find_membership(ctx);
}

void CupNodeBase::maybe_find_membership(sim::Context& ctx) {
  if (membership_ || decided_) return;
  std::optional<Membership> found = evaluate(discovery_.view());
  if (!found) return;
  membership_ = std::move(found);
  ctx.report_membership(membership_->members);
  LOG_DEBUG("cup") << id() << " membership "
                   << (membership_->members.contains(id()) ? "member"
                                                           : "non-member")
                   << " |S|=" << membership_->members.size()
                   << " f=" << membership_->assumed_f;

  if (membership_->members.contains(id())) {
    // Alg. 3 line 4: members run consensus among themselves.
    protocol::PbftInstance::Config config;
    config.members = membership_->members;
    config.assumed_f = membership_->assumed_f;
    config.base_timeout = params_.pbft_base_timeout;
    pbft_.emplace(id(), std::move(config));
    pbft_->start(params_.proposal, ctx);
    for (auto& [from, message] : pending_pbft_) {
      pbft_->handle_message(from, message, ctx);
    }
    pending_pbft_.clear();
    if (pbft_->decided()) finalize(pbft_->decision(), ctx);
    if (recovering_ && !decided_) {
      // This member was down; the others may have decided and quiesced
      // while it was. Fetch the decided value alongside running PBFT —
      // whichever completes first finalizes.
      exchange_.request(membership_->members, ctx);
    }
  } else {
    // Alg. 3 lines 6-7: fetch the decision from a member majority.
    exchange_.request(membership_->members, ctx);
  }
}

void CupNodeBase::finalize(Value value, sim::Context& ctx) {
  if (decided_) return;
  decided_ = value;
  ctx.decide(value);
  exchange_.set_local_decision(value, ctx);  // serve (deferred) requesters
  discovery_.stop();                         // let the simulation quiesce
}

void CupNodeBase::on_message(ProcessId from, const msg::Message& message,
                             sim::Context& ctx) {
  switch (message.type) {
    case msg::MsgType::kGetPds:
    case msg::MsgType::kSetPds: {
      const bool changed = discovery_.handle_message(from, message, ctx);
      if (changed) maybe_find_membership(ctx);
      return;
    }
    case msg::MsgType::kPbftPrePrepare:
    case msg::MsgType::kPbftPrepare:
    case msg::MsgType::kPbftCommit:
    case msg::MsgType::kPbftViewChange:
    case msg::MsgType::kPbftNewView:
    case msg::MsgType::kPbftDecide: {
      if (!pbft_) {
        pending_pbft_.emplace_back(from, message);
        return;
      }
      pbft_->handle_message(from, message, ctx);
      if (pbft_->decided()) finalize(pbft_->decision(), ctx);
      return;
    }
    case msg::MsgType::kGetDecidedVal:
    case msg::MsgType::kDecidedVal: {
      exchange_.handle_message(from, message, ctx);
      if (const auto fetched = exchange_.fetched()) finalize(*fetched, ctx);
      return;
    }
    case msg::MsgType::kRrbForward:
      return;  // baseline traffic; CUP nodes ignore it
  }
}

void CupNodeBase::on_recover(sim::Context& ctx) {
  if (decided_) return;
  recovering_ = true;
  // Timers armed before the crash lapsed while this node was down: restart
  // the periodic discovery poll (epoch-guarded, so a pre-crash timer that
  // happens to fire after recovery cannot double the polling rate; a no-op
  // once discovery was stopped) and the PBFT view timeout. Also re-ask the
  // members for the decided value —
  // replies (and, for a member, the PBFT-DECIDE certificate broadcast) sent
  // while down were lost. A member adopting a majority-of-members answer is
  // safe by the same argument as Alg. 3 lines 7-9: any majority of S
  // contains a correct member, and correct members answer only their actual
  // decision. Members that have not decided yet queue the request and
  // answer once they do.
  discovery_.restart(ctx);
  if (pbft_ && !pbft_->decided()) pbft_->rearm_view_timer(ctx);
  if (membership_) exchange_.request(membership_->members, ctx);
}

void CupNodeBase::on_timer(int kind, sim::Context& ctx) {
  if ((kind & 0xff) == protocol::Discovery::kTimerKind) {
    if (!decided_) discovery_.on_timer(kind, ctx);
    return;
  }
  if ((kind & 0xff) == protocol::PbftInstance::kTimerKind && pbft_) {
    pbft_->on_timer(kind, ctx);
    if (pbft_->decided()) finalize(pbft_->decision(), ctx);
  }
}

}  // namespace bftcup::cup

// Scenario runner: knowledge connectivity graph in, verdict out.
//
// Builds a simulator from a graph plus fault/behavior assignments, runs the
// chosen protocol, and distills the trace into the quantities every
// experiment reports (termination, agreement, validity, latency, traffic).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "cup/node_base.hpp"
#include "graph/digraph.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace bftcup::cup {

enum class Mode {
  kAuth,   ///< AuthCupNode: knows f (authenticated BFT-CUP, Section III)
  kCupft,  ///< CupftNode: unknown f (BFT-CUPFT, Section VI)
  kNaive,  ///< NaiveNode: unknown f, unsound rule (Section IV witness)
};

enum class ByzBehavior {
  kSilent,      ///< never sends
  kFakePd,      ///< participates, advertises a fake own PD
  kEquivocate,  ///< fake PD honest, equivocates in consensus
  kWrongValue,  ///< serves a bogus DECIDEDVAL
};

struct Scenario {
  graph::Digraph graph;
  std::size_t f = 1;  ///< given to kAuth nodes; ground truth elsewhere
  Mode mode = Mode::kAuth;
  IdSet faulty;
  ByzBehavior byz = ByzBehavior::kSilent;
  /// Fake PDs for kFakePd (defaults to the true PD when absent).
  std::map<ProcessId, IdSet> fake_pds;
  /// Proposals (default: 1000 + id).
  std::map<ProcessId, Value> proposals;

  sim::Simulator::Options sim;
  /// Lossy-network fault model (README "Hostile wire"): seeded drop/jitter/
  /// burst loss wrapped around the delay policy (the scenario's make_policy
  /// or the default). Disabled by default; `sim.wire` holds the byte-level
  /// mutation config. Both break the paper's reliable-channel premise, so
  /// Theorem 1 liveness is out of scope while they are active — safety
  /// (agreement, validity, no forged senders or spliced certs) is not.
  sim::LossConfig loss;
  /// Time-scheduled fault script (crash/recover, link and partition windows,
  /// late joins). Empty by default; see ScenarioBuilder's fluent fault API.
  sim::FaultTimeline timeline;
  SimTime discovery_period = 50;
  SimTime pbft_base_timeout = 600;
  /// Optional custom delay policy (e.g. GroupStretchPolicy for Theorem 7).
  std::function<std::unique_ptr<sim::DelayPolicy>()> make_policy;
  std::shared_ptr<const protocol::SinkSearch> search;  ///< default: exhaustive
  /// kCupft only: enable the knowledge-closure guard (see CupftNode).
  bool cupft_known_closure = false;

  // --- membership-engine cache knobs (README "Membership engine caching").
  // All results are pure functions of their inputs, so every knob leaves
  // run digests bit-identical; they exist for A/B benchmarks and the
  // cache-invariance test suite. Signature memoization is `sim.verify_cache`.
  /// Share one evaluation memo (canonical view -> sink/core result) across all
  /// correct nodes of the run.
  bool eval_cache = true;
  /// Dirty-SCC candidate reuse in the *default* search strategy. Ignored
  /// when `search` is set — the provided strategy's own options govern.
  bool incremental_search = true;

  // --- run-engine knobs (README "Run engine"). Like the cache knobs, both
  // leave run digests bit-identical — the recycling property suite and
  // BatchRunner's verify_determinism assert it.
  /// Allow BatchRunner / RunContext to execute this scenario on a recycled
  /// context (pooled simulator + cross-run caches). Off forces a fresh
  /// simulator per run — the A/B baseline bench_runengine measures against.
  bool context_pooling = true;
  /// Back the run's hot allocations (trace records, node scratch, pending
  /// buffers) with the context's bump arena. Off uses the plain heap.
  bool arena = true;
  /// Intra-run parallel membership evaluation (README "Intra-run
  /// parallelism"): worker count for the WorkPool the run installs around
  /// execute_scenario. 0 (default) or 1 = serial. Like every knob in this
  /// block, the setting leaves run digests bit-identical — the pool's
  /// index-addressed dispatch contract guarantees it, and the
  /// parallel==serial property suite replays the corpus to assert it.
  std::size_t parallel_eval = 0;

  // --- observability knobs (README "Observability"). Observation only:
  // both leave run digests bit-identical at every parallel_eval setting —
  // the obs determinism suite replays the corpus with them flipped and
  // asserts it.
  /// Collect the run's metrics delta into RunReport::metrics (counters /
  /// gauges / histograms from src/obs/metrics.hpp). The legacy RunReport
  /// counter fields are populated either way and hold identical values.
  bool metrics = true;
  /// Span flight-recorder capacity in records; 0 (default) disables
  /// tracing entirely — no tracer is installed and span sites cost one
  /// thread-local load. Nonzero attaches a SpanTracer over the run and
  /// exports RunReport::spans (Chrome trace JSON via obs/trace_export.hpp).
  std::size_t trace_capacity = 0;
};

struct RunReport {
  IdSet correct;
  bool all_correct_decided = false;
  bool agreement = true;
  bool validity = true;  ///< decided values were proposed by someone
  std::optional<Value> common_value;
  std::optional<SimTime> completion_time;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  /// Messages lost to fault-timeline events (always 0 without a timeline).
  // cup-lint: digest-excluded(appending it would invalidate every golden digest)
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  /// Per-message-type sent counts (traffic shape; a coverage feature for the
  /// adversary explorer). Excluded from digest() like messages_dropped.
  // cup-lint: digest-excluded(coverage feature; golden digests predate it)
  sim::Trace::MsgHistogram sent_by_type{};
  // Cache-effectiveness counters (where the run's search/crypto time went).
  // Like messages_dropped they are excluded from digest(): they vary with
  // the cache knobs while the replayed behavior does not.
  // cup-lint: digest-excluded(cache knob, behavior-neutral)
  std::uint64_t evaluations = 0;       ///< membership evaluations requested
  // cup-lint: digest-excluded(cache knob, behavior-neutral)
  std::uint64_t eval_cache_hits = 0;   ///< served by the shared eval memo
  // cup-lint: digest-excluded(cache knob, behavior-neutral)
  std::uint64_t signatures_verified = 0;  ///< HMAC verifications computed
  // cup-lint: digest-excluded(cache knob, behavior-neutral)
  std::uint64_t signatures_cached = 0;    ///< served by the verification memo
  // Run-engine counters (digest-excluded like the cache counters; they
  // describe the *executing context*, not the run's behavior, and so vary
  // with pooling and thread placement).
  // cup-lint: digest-excluded(executing-context property, placement-varying)
  std::uint64_t contexts_recycled = 0;  ///< prior runs this context served
  // cup-lint: digest-excluded(executing-context property, placement-varying)
  std::uint64_t arena_bytes_peak = 0;   ///< RunArena high-water, 0 w/o arena
  /// SCCs routed through the big-SCC certification path (sink_search.hpp)
  /// during this run — a scale diagnostic: nonzero means the topology grew
  /// components past the enumeration caps and candidate coverage switched
  /// from exhaustive to certify-plus-sample.
  // cup-lint: digest-excluded(diagnostic counter, behavior-neutral)
  std::uint64_t big_scc_fallbacks = 0;
  // Hostile-wire counters (README "Hostile wire"). Zero whenever the wire
  // layer and loss model are off, and excluded from digest() like every
  // post-corpus field: the golden serialization predates them.
  /// Deliveries whose encoded frame the WireMutator perturbed.
  // cup-lint: digest-excluded(hostile-wire counter; golden digests predate it)
  std::uint64_t frames_mutated = 0;
  /// Mutated frames the hardened decode path refused (counted, dropped).
  // cup-lint: digest-excluded(hostile-wire counter; golden digests predate it)
  std::uint64_t frames_rejected = 0;
  /// Sends the lossy-network model dropped on the wire.
  // cup-lint: digest-excluded(hostile-wire counter; golden digests predate it)
  std::uint64_t frames_lost = 0;
  /// WorkPool chunks executed for this run (0 when parallel_eval <= 1) — a
  /// utilization diagnostic for the intra-run parallel kernel. Excluded
  /// from digest(): it describes how the work was *scheduled*, which the
  /// determinism contract requires to be invisible in results.
  // cup-lint: digest-excluded(scheduling diagnostic, thread-count-varying)
  std::uint64_t eval_tasks_dispatched = 0;
  // Observability artifacts (src/obs/). Observation only, by the layer's
  // determinism contract; cup_lint R3's obs clause rejects any obs:: field
  // that reaches digest(), on top of the marker discipline below.
  /// Per-run metrics delta (Scenario::metrics). The legacy counters above
  /// are mirrors of this snapshot's standard names when it is collected.
  // cup-lint: digest-excluded(observability snapshot, behavior-neutral by contract)
  obs::MetricsSnapshot metrics;
  /// Span flight-recorder contents when Scenario::trace_capacity > 0;
  /// null otherwise. Shared so copies of the report stay cheap.
  // cup-lint: digest-excluded(observability trace; wall-clock values differ every run)
  std::shared_ptr<const obs::SpanTrace> spans;
  std::map<ProcessId, sim::Decision> decisions;
  std::map<ProcessId, IdSet> memberships;
  std::map<ProcessId, SimTime> membership_times;

  /// One-line verdict for experiment tables.
  [[nodiscard]] std::string verdict() const;

  /// Hex SHA-256 over the report fields, in a fixed serialization order.
  /// Two runs of the same (scenario, seed) must produce equal digests
  /// regardless of which thread executed them — the bit-replay guarantee
  /// BatchRunner asserts. `messages_dropped` is deliberately NOT hashed:
  /// the serialization is pinned by determinism_test's golden corpus, and
  /// appending fields would invalidate every recorded digest.
  [[nodiscard]] std::string digest() const;
};

[[nodiscard]] RunReport run_scenario(const Scenario& scenario);

/// Default proposal for a process (kept stable across experiments).
[[nodiscard]] Value default_proposal(ProcessId id);

namespace detail {

/// Simulator options for `scenario`: the scenario's sim block plus pre-size
/// hints derived from the graph when the caller left them unset.
[[nodiscard]] sim::Simulator::Options sim_options_for(const Scenario& scenario);

/// The run body shared by run_scenario (fresh simulator per call) and
/// RunContext (recycled simulator). `simulator` must be freshly
/// constructed or reset for the scenario's sim options; `eval_cache`'s
/// memo flag must match scenario.eval_cache. Counters in the report are
/// deltas against the entry-time stats, so cumulative cross-run caches
/// report per-run figures. `metrics` optionally supplies the executing
/// context's cumulative MetricsRegistry (RunContext passes its own, so
/// registry contents persist across pooled runs); when null and
/// scenario.metrics is set, a run-local registry is used — the reported
/// delta is identical either way.
[[nodiscard]] RunReport execute_scenario(
    const Scenario& scenario, sim::Simulator& simulator,
    const std::shared_ptr<protocol::SharedEvalCache>& eval_cache,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace detail

}  // namespace bftcup::cup

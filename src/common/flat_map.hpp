// A small sorted-vector map, sibling of FlatSet.
//
// The simulator's trace records (decisions, memberships) hold at most one
// entry per process, are written once and read many times, and — unlike
// node-based std::map — want reserve() so a recycled run context can
// pre-size them from scenario hints and an arena can back their storage.
// Entries are kept sorted by key, so iteration order matches std::map and
// the digest serialization that was pinned on it.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <memory_resource>
#include <utility>
#include <vector>

namespace bftcup {

template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using storage_type = std::pmr::vector<value_type>;
  using const_iterator = typename storage_type::const_iterator;

  FlatMap() = default;
  /// Routes element storage through `mr` (e.g. a sim::RunArena). The map
  /// must be destroyed before the resource is rewound or destroyed.
  explicit FlatMap(std::pmr::memory_resource* mr) : items_(mr) {}

  void reserve(std::size_t n) { items_.reserve(n); }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] const_iterator begin() const { return items_.begin(); }
  [[nodiscard]] const_iterator end() const { return items_.end(); }

  [[nodiscard]] const_iterator find(const K& key) const {
    auto it = lower_bound(key);
    return it != items_.end() && it->first == key ? it : items_.end();
  }

  [[nodiscard]] bool contains(const K& key) const {
    return find(key) != items_.end();
  }

  [[nodiscard]] const V& at(const K& key) const {
    auto it = find(key);
    assert(it != items_.end() && "FlatMap::at: missing key");
    return it->second;
  }

  /// Inserts (key, value) if the key is absent — std::map::emplace
  /// semantics, which the trace relies on to keep only a process's first
  /// decision. Returns true on insertion.
  bool emplace(const K& key, V value) {
    auto it = lower_bound(key);
    if (it != items_.end() && it->first == key) return false;
    items_.emplace(it, key, std::move(value));
    return true;
  }

  void clear() { items_.clear(); }

 private:
  [[nodiscard]] auto lower_bound(const K& key) const {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const value_type& entry, const K& k) { return entry.first < k; });
  }

  storage_type items_;
};

}  // namespace bftcup

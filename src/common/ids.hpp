// Strongly-typed process identifiers.
//
// The paper (Section II-A) assumes each process has a unique ID, IDs are not
// necessarily consecutive, and faulty processes cannot mint additional IDs
// (Sybil resistance). We model IDs as an opaque 64-bit value wrapped in a
// strong type so they cannot be confused with indices, sizes, or times.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace bftcup {

/// Unique identifier of a process (participant). Not an array index: IDs are
/// sparse and survive serialization; use `IdSet` / maps keyed by `ProcessId`
/// for membership bookkeeping and `graph::Digraph` for index-based work.
class ProcessId {
 public:
  constexpr ProcessId() = default;
  constexpr explicit ProcessId(std::uint64_t raw) : raw_(raw) {}

  [[nodiscard]] constexpr std::uint64_t raw() const { return raw_; }

  friend constexpr auto operator<=>(ProcessId, ProcessId) = default;

 private:
  std::uint64_t raw_ = 0;
};

std::ostream& operator<<(std::ostream& os, ProcessId id);

[[nodiscard]] inline std::string to_string(ProcessId id) {
  return "p" + std::to_string(id.raw());
}

}  // namespace bftcup

template <>
struct std::hash<bftcup::ProcessId> {
  std::size_t operator()(bftcup::ProcessId id) const noexcept {
    // splitmix64 finalizer: raw ids are often small and consecutive in tests.
    std::uint64_t x = id.raw() + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

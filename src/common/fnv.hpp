// Fast non-cryptographic content hashing for memo-table bucketing.
//
// FNV-1a processed 8 bytes at a time. Used only to pick hash buckets —
// every memo that keys on it compares full key bytes on lookup, so a
// collision degrades to an equality check, never to a wrong result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace bftcup {

inline constexpr std::size_t kFnvOffsetBasis = 14695981039346656037ULL;

/// Mixes `size` bytes at `data` into `state` (start from kFnvOffsetBasis).
inline std::size_t fnv1a_mix(std::size_t state, const void* data,
                             std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes + i, 8);
    state = (state ^ word) * 1099511628211ULL;
  }
  for (; i < size; ++i) {
    state = (state ^ bytes[i]) * 1099511628211ULL;
  }
  return state;
}

inline std::size_t fnv1a_mix_u64(std::size_t state, std::uint64_t v) {
  return fnv1a_mix(state, &v, sizeof(v));
}

}  // namespace bftcup

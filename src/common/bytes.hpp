// Byte-buffer helpers shared by the codec and crypto modules.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace bftcup {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Copies a string's characters into a byte buffer (no encoding games;
/// protocol payloads are produced by the codec, this is for tests/keys).
[[nodiscard]] Bytes to_bytes(std::string_view s);

/// Constant-time equality, as a MAC comparison must not leak a prefix length.
[[nodiscard]] bool constant_time_equal(BytesView a, BytesView b);

}  // namespace bftcup

#include "common/work_pool.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "obs/span_tracer.hpp"

namespace bftcup {
namespace {

thread_local bool t_in_task = false;
thread_local WorkPool* t_current_pool = nullptr;

}  // namespace

WorkPool::WorkPool(std::size_t workers)
    : workers_(std::max<std::size_t>(workers, 1)) {}

WorkPool::~WorkPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool WorkPool::in_task() {
  return t_in_task;
}

void WorkPool::spawn_workers() {
  if (!threads_.empty() || workers_ <= 1) return;
  threads_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

void WorkPool::drain(std::size_t worker) {
  std::size_t count;
  std::size_t chunk;
  const Task* task;
  {
    MutexLock lock(mutex_);
    count = count_;
    chunk = chunk_;
    task = task_;
  }
  t_in_task = true;
  for (;;) {
    const std::size_t index =
        next_chunk_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t begin = index * chunk;
    if (begin >= count) break;
    const std::size_t end = std::min(count, begin + chunk);
    try {
      (*task)(begin, end, worker);
      tasks_dispatched_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      // Keep the error of the lowest chunk index so *which* exception
      // surfaces does not depend on completion order. Remaining chunks
      // still run — the dispatch always drains the whole index space.
      MutexLock lock(mutex_);
      if (!error_ || index < error_chunk_) {
        error_ = std::current_exception();
        error_chunk_ = index;
      }
    }
  }
  t_in_task = false;
}

void WorkPool::worker_loop(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      MutexLock lock(mutex_);
      while (!stopping_ && generation_ == seen_generation) {
        work_ready_.wait(mutex_);
      }
      if (stopping_) return;
      seen_generation = generation_;
    }
    drain(worker);
    bool last = false;
    {
      MutexLock lock(mutex_);
      last = --active_workers_ == 0;
    }
    if (last) work_done_.notify_all();
  }
}

void WorkPool::run(std::size_t count, std::size_t chunk, const Task& task) {
  if (t_in_task) {
    throw std::logic_error(
        "WorkPool: nested dispatch (run() from inside a task body)");
  }
  if (count == 0) return;
  chunk = std::max<std::size_t>(chunk, 1);

  // run() is only ever entered from the run's own thread (nested dispatch
  // throws above), so the spans land in that thread's flight recorder.
  // The dispatch span covers worker wake-up plus the caller's own chunk
  // drain; the join span isolates the tail wait for the last worker.
  const obs::ScopedSpan dispatch_span("workpool.dispatch", count);

  spawn_workers();
  {
    MutexLock lock(mutex_);
    task_ = &task;
    count_ = count;
    chunk_ = chunk;
    error_ = nullptr;
    error_chunk_ = 0;
    next_chunk_.store(0, std::memory_order_relaxed);
    active_workers_ = threads_.size();
    ++generation_;
  }
  work_ready_.notify_all();

  drain(0);  // the caller is worker 0

  std::exception_ptr error;
  {
    const obs::ScopedSpan join_span("workpool.join");
    MutexLock lock(mutex_);
    while (active_workers_ != 0) {
      work_done_.wait(mutex_);
    }
    task_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

WorkPool* current_work_pool() {
  return t_current_pool;
}

WorkPool* usable_work_pool() {
  return t_in_task ? nullptr : t_current_pool;
}

namespace {

/// Per-thread pool cache keyed by worker count: consecutive runs at the
/// same parallel_eval setting reuse the spawned threads (the recycled-run
/// engine's steady state). Thread exit joins the pools via the map's
/// destructor.
std::map<std::size_t, std::unique_ptr<WorkPool>>& thread_pool_cache() {
  thread_local std::map<std::size_t, std::unique_ptr<WorkPool>> cache;
  return cache;
}

}  // namespace

WorkPoolScope::WorkPoolScope(std::size_t threads)
    : pool_(nullptr), previous_(t_current_pool) {
  if (threads == 0) return;
  auto& slot = thread_pool_cache()[threads];
  if (!slot) slot = std::make_unique<WorkPool>(threads);
  pool_ = slot.get();
  t_current_pool = pool_;
}

WorkPoolScope::~WorkPoolScope() {
  if (pool_ != nullptr) t_current_pool = previous_;
}

}  // namespace bftcup

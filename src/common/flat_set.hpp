// A small sorted-vector set used pervasively for ID sets.
//
// Protocol state (S_known, S_received, PD contents, sink/core candidates) is
// dominated by small sets that are iterated far more often than mutated; a
// sorted vector beats node-based containers for those workloads and gives
// deterministic iteration order, which the deterministic simulator relies on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace bftcup {

template <typename T>
class FlatSet {
 public:
  using const_iterator = typename std::vector<T>::const_iterator;
  using value_type = T;

  FlatSet() = default;
  FlatSet(std::initializer_list<T> init) : items_(init) { normalize(); }
  explicit FlatSet(std::vector<T> items) : items_(std::move(items)) {
    normalize();
  }

  [[nodiscard]] bool contains(const T& v) const {
    return std::binary_search(items_.begin(), items_.end(), v);
  }

  /// Inserts `v`; returns true if it was not already present.
  bool insert(const T& v) {
    auto it = std::lower_bound(items_.begin(), items_.end(), v);
    if (it != items_.end() && *it == v) return false;
    items_.insert(it, v);
    return true;
  }

  /// Inserts every element of `other`; returns the number of new elements.
  template <typename Range>
  std::size_t insert_all(const Range& other) {
    std::size_t added = 0;
    for (const auto& v : other) added += insert(v) ? 1U : 0U;
    return added;
  }

  /// Sorted-input overload: a single linear merge instead of per-element
  /// binary search + memmove (O(n+m) vs O(n·m) — the S_known merges of a
  /// large-n discovery round are dominated by this call).
  std::size_t insert_all(const FlatSet& other) {
    if (other.items_.empty()) return 0;
    if (items_.empty()) {
      items_ = other.items_;
      return items_.size();
    }
    if (other.items_.size() == 1) {
      return insert(other.items_.front()) ? 1U : 0U;
    }
    std::vector<T> merged;
    merged.reserve(items_.size() + other.items_.size());
    std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                   other.items_.end(), std::back_inserter(merged));
    const std::size_t added = merged.size() - items_.size();
    items_ = std::move(merged);
    return added;
  }

  /// Removes `v`; returns true if it was present.
  bool erase(const T& v) {
    auto it = std::lower_bound(items_.begin(), items_.end(), v);
    if (it == items_.end() || *it != v) return false;
    items_.erase(it);
    return true;
  }

  /// Pre-allocates capacity for `n` elements (hot enumeration loops build
  /// many small sets of a known size).
  void reserve(std::size_t n) { items_.reserve(n); }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] const_iterator begin() const { return items_.begin(); }
  [[nodiscard]] const_iterator end() const { return items_.end(); }
  [[nodiscard]] const std::vector<T>& values() const { return items_; }
  void clear() { items_.clear(); }

  [[nodiscard]] bool is_subset_of(const FlatSet& other) const {
    return std::includes(other.items_.begin(), other.items_.end(),
                         items_.begin(), items_.end());
  }

  [[nodiscard]] FlatSet set_union(const FlatSet& other) const {
    FlatSet out;
    std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                   other.items_.end(), std::back_inserter(out.items_));
    return out;
  }

  [[nodiscard]] FlatSet set_difference(const FlatSet& other) const {
    FlatSet out;
    std::set_difference(items_.begin(), items_.end(), other.items_.begin(),
                        other.items_.end(), std::back_inserter(out.items_));
    return out;
  }

  [[nodiscard]] FlatSet set_intersection(const FlatSet& other) const {
    FlatSet out;
    std::set_intersection(items_.begin(), items_.end(), other.items_.begin(),
                          other.items_.end(), std::back_inserter(out.items_));
    return out;
  }

  friend bool operator==(const FlatSet&, const FlatSet&) = default;

  /// Lexicographic order (so FlatSets can key std::map / sort candidates).
  friend bool operator<(const FlatSet& a, const FlatSet& b) {
    return a.items_ < b.items_;
  }

 private:
  void normalize() {
    std::sort(items_.begin(), items_.end());
    items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
  }

  std::vector<T> items_;
};

}  // namespace bftcup

#include "common/random.hpp"

namespace bftcup {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed expansion via splitmix64, the recommended initializer for xoshiro.
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  // xoshiro256** by Blackman & Vigna (public domain).
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : next_below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // 53 bits of the draw give a uniform double in [0,1).
  const double u =
      static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  return u < p;
}

Rng Rng::fork(std::uint64_t stream_id) {
  std::uint64_t mix = s_[0] ^ rotl(stream_id, 31) ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  return Rng(mix);
}

}  // namespace bftcup

// Thin, portable wrappers over process resource accounting.
//
// Promoted out of bench/bench_util.hpp so non-bench consumers (BatchReport's
// summary, tools) can report memory without pulling the bench harness in.
#pragma once

#include <cstdint>

namespace bftcup {

/// Process peak resident set size in bytes, 0 where getrusage is
/// unavailable. ru_maxrss units differ by platform and are normalized here:
/// Linux reports KiB, macOS reports bytes. A high-water mark, not a live
/// figure — in a multi-leg bench run the legs must execute in
/// ascending-memory order for per-leg readings to be attributable
/// (bench_scale orders its n sweep ascending for exactly this reason).
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace bftcup

// Hex encoding for digests and debug output.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace bftcup {

[[nodiscard]] std::string to_hex(BytesView bytes);

/// Returns nullopt on odd length or non-hex characters.
[[nodiscard]] std::optional<Bytes> from_hex(std::string_view hex);

}  // namespace bftcup

// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded, but the logger sink
// is shared by every simulator BatchRunner drives on its pool, so the two
// mutable pieces are the only concurrency-aware state in common/: the
// level is an atomic (read on every call site's fast path), the sink
// pointer is guarded by a mutex held across each write so lines never
// interleave and a test swapping the sink cannot race a worker mid-line.
// The lock discipline is machine-checked by Clang's -Wthread-safety (see
// common/thread_annotations.hpp).
#pragma once

#include <atomic>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hpp"

namespace bftcup {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Run-scoped log capture: while one is alive, the constructing thread's
/// log lines are diverted into it instead of the shared sink. A pure
/// thread-local seam — installing one never touches the global Logger
/// state, so a test capturing its own run's warnings cannot race another
/// worker logging through the real sink (the flaw of swapping the sink).
/// Captures nest; the innermost wins and the previous one is restored on
/// destruction. The level gate still applies: only lines the Logger would
/// have emitted are captured.
class LogCapture {
 public:
  LogCapture();
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  /// Captured lines, formatted exactly as the sink would have printed them
  /// (sans trailing newline), in emission order.
  [[nodiscard]] const std::vector<std::string>& lines() const {
    return lines_;
  }

  /// Lines containing `needle` — the assertion helper tests want.
  [[nodiscard]] std::size_t count_containing(std::string_view needle) const;

 private:
  friend class Logger;

  void append(std::string line) { lines_.push_back(std::move(line)); }

  LogCapture* previous_;
  std::vector<std::string> lines_;
};

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  void set_sink(std::ostream* sink) BFTCUP_EXCLUDES(mutex_);

  [[nodiscard]] bool enabled(LogLevel level) const {
    const LogLevel current = level_.load(std::memory_order_relaxed);
    return level >= current && current != LogLevel::kOff;
  }

  void write(LogLevel level, std::string_view component,
             std::string_view message) BFTCUP_EXCLUDES(mutex_);

 private:
  Logger();

  /// The calling thread's innermost LogCapture, or nullptr. Thread-local,
  /// so reading it needs no lock.
  static LogCapture*& thread_capture();
  friend class LogCapture;

  mutable Mutex mutex_;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::ostream* sink_ BFTCUP_GUARDED_BY(mutex_);
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().write(level_, component_, out_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream out_;
};

}  // namespace detail
}  // namespace bftcup

#define BFTCUP_LOG(level, component)                         \
  if (!::bftcup::Logger::instance().enabled(level)) {        \
  } else                                                     \
    ::bftcup::detail::LogLine(level, component)

#define LOG_TRACE(component) BFTCUP_LOG(::bftcup::LogLevel::kTrace, component)
#define LOG_DEBUG(component) BFTCUP_LOG(::bftcup::LogLevel::kDebug, component)
#define LOG_INFO(component) BFTCUP_LOG(::bftcup::LogLevel::kInfo, component)
#define LOG_WARN(component) BFTCUP_LOG(::bftcup::LogLevel::kWarn, component)
#define LOG_ERROR(component) BFTCUP_LOG(::bftcup::LogLevel::kError, component)

// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded, so the logger stays
// trivially simple: a global level, a sink that defaults to stderr, and
// stream-style call sites. Tests silence it; examples turn it up.
#pragma once

#include <ostream>
#include <sstream>
#include <string_view>

namespace bftcup {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  void set_sink(std::ostream* sink) { sink_ = sink; }

  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= level_ && level_ != LogLevel::kOff;
  }

  void write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  Logger();

  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().write(level_, component_, out_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream out_;
};

}  // namespace detail
}  // namespace bftcup

#define BFTCUP_LOG(level, component)                         \
  if (!::bftcup::Logger::instance().enabled(level)) {        \
  } else                                                     \
    ::bftcup::detail::LogLine(level, component)

#define LOG_TRACE(component) BFTCUP_LOG(::bftcup::LogLevel::kTrace, component)
#define LOG_DEBUG(component) BFTCUP_LOG(::bftcup::LogLevel::kDebug, component)
#define LOG_INFO(component) BFTCUP_LOG(::bftcup::LogLevel::kInfo, component)
#define LOG_WARN(component) BFTCUP_LOG(::bftcup::LogLevel::kWarn, component)
#define LOG_ERROR(component) BFTCUP_LOG(::bftcup::LogLevel::kError, component)

// Clang thread-safety-analysis shim (-Wthread-safety).
//
// The BFTCUP_* macros expand to Clang's capability attributes when the
// compiler supports them and to nothing elsewhere, so g++ builds are
// unaffected while the CI lint job (clang++ with -Wthread-safety
// -Werror=thread-safety) machine-checks every lock discipline. libstdc++'s
// std::mutex carries no capability annotations, so annotated code uses the
// Mutex / MutexLock wrappers below — identical cost, analyzable.
//
// tools/check_thread_safety.py compiles tests/lint_corpus/
// thread_safety_positive.cpp (must build) and thread_safety_negative.cpp
// (must NOT build) against this header, so the analysis itself is
// regression-tested.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define BFTCUP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BFTCUP_THREAD_ANNOTATION
#define BFTCUP_THREAD_ANNOTATION(x)
#endif

#define BFTCUP_CAPABILITY(x) BFTCUP_THREAD_ANNOTATION(capability(x))
#define BFTCUP_SCOPED_CAPABILITY BFTCUP_THREAD_ANNOTATION(scoped_lockable)
#define BFTCUP_GUARDED_BY(x) BFTCUP_THREAD_ANNOTATION(guarded_by(x))
#define BFTCUP_PT_GUARDED_BY(x) BFTCUP_THREAD_ANNOTATION(pt_guarded_by(x))
#define BFTCUP_REQUIRES(...) \
  BFTCUP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BFTCUP_EXCLUDES(...) \
  BFTCUP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define BFTCUP_ACQUIRE(...) \
  BFTCUP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BFTCUP_RELEASE(...) \
  BFTCUP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BFTCUP_NO_THREAD_SAFETY_ANALYSIS \
  BFTCUP_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Documentation-only marker: the tagged type is deliberately *not*
/// mutex-protected because it is thread-confined — owned by exactly one
/// Simulator / RunContext / pool worker and never shared across threads
/// (SharedEvalCache, VerifyCache, SignCache, KeyringCache). The TSan CI
/// preset is the dynamic check of this claim; README "Static analysis"
/// records the audit. Greppable on purpose.
#define BFTCUP_THREAD_CONFINED

namespace bftcup {

/// std::mutex wearing Clang's `capability` attribute, so GUARDED_BY
/// members and REQUIRES/EXCLUDES contracts are enforced at compile time.
class BFTCUP_CAPABILITY("mutex") Mutex {
 public:
  void lock() BFTCUP_ACQUIRE() { mutex_.lock(); }
  void unlock() BFTCUP_RELEASE() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

/// RAII lock over Mutex (the annotated std::lock_guard analog).
class BFTCUP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) BFTCUP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() BFTCUP_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace bftcup

#include "common/sys_resource.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace bftcup {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS ru_maxrss is already in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux (and the BSDs) report KiB.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

}  // namespace bftcup

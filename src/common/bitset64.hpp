// Blocked 64-bit-word set kernels for the large-n paths.
//
// FlatSet stays the representation of record for protocol state (sorted,
// deterministic iteration, cheap at the small sizes the paper's figures
// use). Above a density threshold its element-wise merges and binary
// searches stop scaling, so the membership/graph hot paths switch to a
// dense bitset over a contiguous index or id window:
//
//  * BitSet / PmrBitSet — word-addressed bit arrays whose kernels
//    (intersect / union / difference / count / is_subset) run one 64-bit
//    word per step, simple enough for the compiler to auto-vectorize. The
//    pmr variant lets per-run scratch (EvalScratch::probe_words) live in
//    the run engine's bump arena.
//  * BitSpan — a borrowed read-only view so the kernels can run over
//    storage owned elsewhere without copying.
//  * AdaptiveIdProbe — the adaptive chooser used by the predicate and
//    graph code: binary-search FlatSet below the density threshold, dense
//    window bitset above it. The representation choice is a pure function
//    of the set's contents, so replays and cross-thread runs pick the same
//    one (bit-replay safe); both representations answer membership
//    identically.
//
// Iteration helpers emit indices in ascending order — a BitSet is an
// ordered container in the cup_lint sense (inventoried with FlatSet).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory_resource>
#include <vector>

#include "common/types.hpp"

namespace bftcup {

namespace bitset_kernel {

inline constexpr std::size_t kWordBits = 64;

[[nodiscard]] inline constexpr std::size_t words_for(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

/// popcount over a word run.
[[nodiscard]] inline std::size_t count(const std::uint64_t* w, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::popcount(w[i]);
  return total;
}

/// |a ∩ b| without materializing the intersection.
[[nodiscard]] inline std::size_t intersect_count(const std::uint64_t* a,
                                                 const std::uint64_t* b,
                                                 std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

inline void intersect(std::uint64_t* dst, const std::uint64_t* a,
                      const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i];
}

inline void unite(std::uint64_t* dst, const std::uint64_t* a,
                  const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
}

/// dst = a \ b.
inline void difference(std::uint64_t* dst, const std::uint64_t* a,
                       const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & ~b[i];
}

/// a ⊆ b over equal-length word runs.
[[nodiscard]] inline bool is_subset(const std::uint64_t* a,
                                    const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

[[nodiscard]] inline bool intersects(const std::uint64_t* a,
                                     const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

}  // namespace bitset_kernel

/// Borrowed read-only view over a word array.
struct BitSpan {
  const std::uint64_t* words = nullptr;
  std::size_t word_count = 0;

  [[nodiscard]] bool test(std::size_t bit) const {
    const std::size_t w = bit / bitset_kernel::kWordBits;
    if (w >= word_count) return false;
    return (words[w] >> (bit % bitset_kernel::kWordBits)) & 1U;
  }
  [[nodiscard]] std::size_t count() const {
    return bitset_kernel::count(words, word_count);
  }
};

/// Fixed-capacity bit array over [0, bit_size()); Words picks the backing
/// vector (heap or pmr). Unused tail bits of the last word are kept zero by
/// every mutator, so whole-word kernels never see garbage in the tail.
template <typename Words>
class BasicBitSet {
 public:
  BasicBitSet() = default;

  /// Carries an allocator-bearing (e.g. arena-backed) container in.
  explicit BasicBitSet(Words words) : words_(std::move(words)) {
    words_.clear();
  }

  /// Clears and re-sizes to cover bits [0, bits); keeps capacity.
  void reset_bits(std::size_t bits) {
    bit_size_ = bits;
    words_.assign(bitset_kernel::words_for(bits), 0);
  }

  [[nodiscard]] std::size_t bit_size() const { return bit_size_; }
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }
  [[nodiscard]] const std::uint64_t* data() const { return words_.data(); }
  [[nodiscard]] BitSpan span() const { return {words_.data(), words_.size()}; }

  void set(std::size_t bit) {
    words_[bit / bitset_kernel::kWordBits] |=
        std::uint64_t{1} << (bit % bitset_kernel::kWordBits);
  }
  void clear(std::size_t bit) {
    words_[bit / bitset_kernel::kWordBits] &=
        ~(std::uint64_t{1} << (bit % bitset_kernel::kWordBits));
  }
  [[nodiscard]] bool test(std::size_t bit) const {
    return (words_[bit / bitset_kernel::kWordBits] >>
            (bit % bitset_kernel::kWordBits)) &
           1U;
  }

  [[nodiscard]] std::size_t count() const {
    return bitset_kernel::count(words_.data(), words_.size());
  }
  [[nodiscard]] bool is_subset_of(const BasicBitSet& other) const {
    return bitset_kernel::is_subset(words_.data(), other.words_.data(),
                                    words_.size());
  }
  [[nodiscard]] std::size_t intersect_count(const BasicBitSet& other) const {
    return bitset_kernel::intersect_count(words_.data(), other.words_.data(),
                                          words_.size());
  }
  void intersect_with(const BasicBitSet& other) {
    bitset_kernel::intersect(words_.data(), words_.data(), other.words_.data(),
                             words_.size());
  }
  void union_with(const BasicBitSet& other) {
    bitset_kernel::unite(words_.data(), words_.data(), other.words_.data(),
                         words_.size());
  }
  void difference_with(const BasicBitSet& other) {
    bitset_kernel::difference(words_.data(), words_.data(),
                              other.words_.data(), words_.size());
  }

  /// Visits set bits in ascending order (deterministic iteration).
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int b = std::countr_zero(word);
        fn(w * bitset_kernel::kWordBits + static_cast<std::size_t>(b));
        word &= word - 1;
      }
    }
  }

 private:
  Words words_;
  std::size_t bit_size_ = 0;
};

using BitSet = BasicBitSet<std::vector<std::uint64_t>>;
using PmrBitSet = BasicBitSet<std::pmr::vector<std::uint64_t>>;

/// Adaptive membership probe over an IdSet: a dense window bitset when the
/// set is large and dense enough that word-indexed lookup beats binary
/// search, the FlatSet itself otherwise. The threshold is a pure function
/// of the contents (size and id spread), so every replay of the same set
/// picks the same representation. `scratch` optionally supplies reusable
/// word storage (e.g. the eval scratch's arena vector); without it the
/// probe owns a heap vector. The probe borrows `set` and must not outlive
/// it.
class AdaptiveIdProbe {
 public:
  /// Below this size, binary search wins on cache footprint alone.
  static constexpr std::size_t kDenseMinSize = 64;
  /// Window may be at most this many times the size (1/kDenseMaxSpread
  /// density floor), bounding the bitset at size/8 words.
  static constexpr std::size_t kDenseMaxSpread = 8;

  explicit AdaptiveIdProbe(const IdSet& set,
                           std::pmr::vector<std::uint64_t>* scratch = nullptr)
      : set_(&set) {
    if (set.size() < kDenseMinSize) return;
    base_ = set.values().front().raw();
    const std::uint64_t span = set.values().back().raw() - base_ + 1;
    if (span > set.size() * kDenseMaxSpread) return;
    const std::size_t words = bitset_kernel::words_for(span);
    if (scratch != nullptr) {
      scratch->assign(words, 0);
      words_ = scratch->data();
    } else {
      owned_.assign(words, 0);
      words_ = owned_.data();
    }
    span_ = span;
    for (ProcessId id : set) {
      const std::uint64_t bit = id.raw() - base_;
      words_[bit / 64] |= std::uint64_t{1} << (bit % 64);
    }
  }

  [[nodiscard]] bool dense() const { return words_ != nullptr; }

  [[nodiscard]] bool contains(ProcessId id) const {
    if (words_ == nullptr) return set_->contains(id);
    const std::uint64_t raw = id.raw();
    if (raw < base_ || raw - base_ >= span_) return false;
    const std::uint64_t bit = raw - base_;
    return (words_[bit / 64] >> (bit % 64)) & 1U;
  }

 private:
  const IdSet* set_;
  std::uint64_t base_ = 0;
  std::uint64_t span_ = 0;
  std::uint64_t* words_ = nullptr;
  std::vector<std::uint64_t> owned_;
};

}  // namespace bftcup

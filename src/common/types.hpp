// Shared aliases for the whole library.
#pragma once

#include <cstdint>
#include <limits>

#include "common/flat_set.hpp"
#include "common/ids.hpp"

namespace bftcup {

/// Simulated time in abstract "ticks". The simulator never interprets ticks
/// as wall-clock; δ and GST are expressed in the same unit.
using SimTime = std::int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// A set of process identifiers (PD contents, S_known, sink candidates, ...).
using IdSet = FlatSet<ProcessId>;

/// A consensus proposal/decision value. The paper treats values as opaque;
/// 64 bits is enough for every experiment while keeping messages compact.
using Value = std::uint64_t;

inline constexpr Value kNoValue = std::numeric_limits<Value>::max();

}  // namespace bftcup

#include "common/logging.hpp"

#include <iostream>

#include "common/ids.hpp"

namespace bftcup {
namespace {

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

Logger::Logger() : sink_(&std::cerr) {}

LogCapture*& Logger::thread_capture() {
  thread_local LogCapture* capture = nullptr;
  return capture;
}

LogCapture::LogCapture() : previous_(Logger::thread_capture()) {
  Logger::thread_capture() = this;
}

LogCapture::~LogCapture() {
  Logger::thread_capture() = previous_;
}

std::size_t LogCapture::count_containing(std::string_view needle) const {
  std::size_t n = 0;
  for (const std::string& line : lines_) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  // Swapping the sink must wait out any in-flight write: a test redirecting
  // output while a pool worker logs would otherwise race on the pointer.
  MutexLock lock(mutex_);
  sink_ = sink;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  if (!enabled(level)) return;
  // Thread-local capture seam: diverts this thread's lines before the
  // shared sink is ever involved, so no lock and no global state.
  if (LogCapture* capture = thread_capture(); capture != nullptr) {
    std::string line;
    line.reserve(component.size() + message.size() + 16);
    line += "[";
    line += level_name(level);
    line += "] ";
    line += component;
    line += ": ";
    line += message;
    capture->append(std::move(line));
    return;
  }
  // The sink is shared by every simulator; BatchRunner runs them on a pool.
  MutexLock lock(mutex_);
  if (sink_ == nullptr) return;
  (*sink_) << "[" << level_name(level) << "] " << component << ": " << message
           << '\n';
}

std::ostream& operator<<(std::ostream& os, ProcessId id) {
  return os << 'p' << id.raw();
}

}  // namespace bftcup

#include "common/logging.hpp"

#include <iostream>

#include "common/ids.hpp"

namespace bftcup {
namespace {

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

Logger::Logger() : sink_(&std::cerr) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  // Swapping the sink must wait out any in-flight write: a test redirecting
  // output while a pool worker logs would otherwise race on the pointer.
  MutexLock lock(mutex_);
  sink_ = sink;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  if (!enabled(level)) return;
  // The sink is shared by every simulator; BatchRunner runs them on a pool.
  MutexLock lock(mutex_);
  if (sink_ == nullptr) return;
  (*sink_) << "[" << level_name(level) << "] " << component << ": " << message
           << '\n';
}

std::ostream& operator<<(std::ostream& os, ProcessId id) {
  return os << 'p' << id.raw();
}

}  // namespace bftcup

// Deterministic fork-join worker pool for intra-run parallelism.
//
// The bit-replay contract (README "Determinism") forbids any execution
// order from leaking into results, so this pool is built around one rule:
// work is dispatched over an *index space*, and every effect of a task must
// land either in a pre-sized slot addressed by its index or in worker-local
// scratch that the caller merges in a fixed order after the join. Which
// worker claims which chunk is dynamic (an atomic cursor — that is where
// the load balancing comes from), but because no task output depends on
// claim order, the reduction is byte-identical to a serial loop at any
// worker count. cup_lint's R-series rules police the call sites: reducing
// into a digest-path container in completion order is a lint error.
//
// Shape: the caller participates as worker 0, `workers - 1` threads are
// spawned lazily on the first dispatch and parked on a condition variable
// between dispatches. A dispatch is a barrier — run() returns only after
// every chunk of [0, count) has executed. Exceptions propagate: the error
// thrown by the lowest-indexed failing chunk is rethrown on the caller
// (lowest-index, not first-to-fail, so *which* error surfaces is itself
// deterministic). Nested dispatch — run() from inside a task — throws
// std::logic_error instead of deadlocking; call sites that may execute
// both inside and outside tasks use usable_work_pool(), which returns
// nullptr inside a task so inner loops fall back to their serial form.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace bftcup {

class WorkPool {
 public:
  /// Task body: process indices [begin, end) as worker `worker`
  /// (0 = caller, 1..workers-1 = spawned threads). `worker` exists so a
  /// body can address per-worker scratch slots; it must NOT otherwise
  /// influence results.
  using Task =
      std::function<void(std::size_t begin, std::size_t end, std::size_t worker)>;

  /// A pool of `workers` total workers (clamped to >= 1). `workers == 1`
  /// spawns no threads: run() executes everything on the caller, through
  /// the same chunked code path — the cheap way to exercise the parallel
  /// plumbing serially.
  explicit WorkPool(std::size_t workers);
  ~WorkPool();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  [[nodiscard]] std::size_t workers() const { return workers_; }

  /// Fork-join dispatch of indices [0, count) in chunks of `chunk`
  /// (clamped to >= 1). Blocks until every chunk ran; rethrows the
  /// lowest-chunk exception if any task threw. Throws std::logic_error on
  /// nested dispatch (any pool, any thread currently inside a task).
  void run(std::size_t count, std::size_t chunk, const Task& task);

  /// Cumulative chunks executed by this pool over its lifetime (the
  /// RunReport::eval_tasks_dispatched feed; counters there report deltas).
  [[nodiscard]] std::uint64_t tasks_dispatched() const {
    return tasks_dispatched_.load(std::memory_order_relaxed);
  }

  /// True while the calling thread is executing a task body (of any pool).
  /// Dispatching in that state would deadlock the fork-join barrier, so
  /// run() rejects it; nested parallel-capable code checks this first.
  [[nodiscard]] static bool in_task();

 private:
  void spawn_workers();
  void worker_loop(std::size_t worker);
  /// Claims and executes chunks of the current dispatch as `worker`.
  void drain(std::size_t worker);

  const std::size_t workers_;

  Mutex mutex_;
  // Dispatch state, valid while a dispatch is in flight. `generation_`
  // increments per dispatch; parked workers wake on the change.
  const Task* task_ BFTCUP_GUARDED_BY(mutex_) = nullptr;
  std::size_t count_ BFTCUP_GUARDED_BY(mutex_) = 0;
  std::size_t chunk_ BFTCUP_GUARDED_BY(mutex_) = 1;
  std::uint64_t generation_ BFTCUP_GUARDED_BY(mutex_) = 0;
  std::size_t active_workers_ BFTCUP_GUARDED_BY(mutex_) = 0;
  bool stopping_ BFTCUP_GUARDED_BY(mutex_) = false;
  // First error by *chunk index* (not completion order).
  std::exception_ptr error_ BFTCUP_GUARDED_BY(mutex_);
  std::size_t error_chunk_ BFTCUP_GUARDED_BY(mutex_) = 0;

  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<std::uint64_t> tasks_dispatched_{0};

  // condition_variable_any waits directly on the annotated Mutex (it only
  // needs BasicLockable); every guarded field above is still only touched
  // under mutex_.
  std::condition_variable_any work_ready_;
  std::condition_variable_any work_done_;

  std::vector<std::thread> threads_;  // spawned on first dispatch
};

/// The pool installed for the current thread's run, or nullptr (serial).
/// Installed by WorkPoolScope (cup::detail::execute_scenario does this when
/// Scenario::parallel_eval > 0); read by the membership kernel's fan-out
/// sites via usable_work_pool().
[[nodiscard]] WorkPool* current_work_pool();

/// current_work_pool(), but nullptr when the calling thread is inside a
/// task body — the guard that turns would-be nested dispatches into the
/// serial fallback (e.g. κ pivot probes under a per-SCC fan-out).
[[nodiscard]] WorkPool* usable_work_pool();

/// RAII installation of a pool as current_work_pool() for this thread.
/// `threads == 0` installs nothing (serial). Pools are cached per thread
/// and per worker count, so consecutive runs at the same setting reuse the
/// spawned threads (the recycled-run engine's steady state).
class WorkPoolScope {
 public:
  explicit WorkPoolScope(std::size_t threads);
  ~WorkPoolScope();

  WorkPoolScope(const WorkPoolScope&) = delete;
  WorkPoolScope& operator=(const WorkPoolScope&) = delete;

  /// The installed pool (nullptr when threads was 0).
  [[nodiscard]] WorkPool* pool() const { return pool_; }

 private:
  WorkPool* pool_;
  WorkPool* previous_;
};

}  // namespace bftcup

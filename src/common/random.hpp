// Deterministic RNG used everywhere randomness is needed.
//
// std::mt19937_64 would work, but its state is bulky and its distributions
// are implementation-defined across standard libraries; xoshiro256** plus our
// own bounded-draw keeps every experiment bit-reproducible on any platform.
#pragma once

#include <cstdint>
#include <vector>

namespace bftcup {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over the full 64-bit range.
  std::uint64_t next();

  /// Uniform in [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Deterministically derives an independent stream (per-process RNGs).
  [[nodiscard]] Rng fork(std::uint64_t stream_id);

 private:
  std::uint64_t s_[4];
};

}  // namespace bftcup

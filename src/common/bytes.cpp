#include "common/bytes.hpp"

namespace bftcup {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace bftcup

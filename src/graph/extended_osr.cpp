#include "graph/extended_osr.hpp"

#include <algorithm>
#include <map>

#include "graph/connectivity.hpp"
#include "graph/osr.hpp"
// Layering note: the isSink* machinery lives with the protocol code because
// nodes evaluate it against partial views; the omniscient checkers reuse it
// through KnowledgeView::omniscient rather than duplicating the math.
#include "protocol/sink_search.hpp"

namespace bftcup::graph {

std::vector<SinkInfo> all_sinks(const Digraph& g) {
  const auto view = protocol::KnowledgeView::omniscient(g);
  protocol::SearchOptions options;
  options.exhaustive_cap = 20;
  const protocol::ExhaustiveSinkSearch search(options);

  std::map<IdSet, std::size_t> best;  // members -> max witness f
  for (const protocol::SinkCandidate& c : search.candidates(view)) {
    IdSet members = c.members();
    auto [it, inserted] = best.emplace(std::move(members), c.g);
    if (!inserted) it->second = std::max(it->second, c.g);
  }

  std::vector<SinkInfo> out;
  out.reserve(best.size());
  for (auto& [members, f] : best) out.push_back({members, f});
  return out;
}

ExtendedOsrReport check_extended_k_osr(const Digraph& g, std::size_t k) {
  ExtendedOsrReport report;

  const OsrReport osr = check_k_osr(g, k);
  if (!osr.satisfied) {
    report.reason = "not " + std::to_string(k) + "-OSR: " + osr.reason;
    return report;
  }

  const std::vector<SinkInfo> sinks = all_sinks(g);
  if (sinks.empty()) {
    report.reason = "no subset passes isSink*";
    return report;
  }

  // C1: a unique sink of strictly maximum connectivity.
  const auto max_it = std::max_element(
      sinks.begin(), sinks.end(),
      [](const SinkInfo& a, const SinkInfo& b) { return a.k() < b.k(); });
  const std::size_t max_k = max_it->k();
  std::size_t at_max = 0;
  for (const SinkInfo& s : sinks) at_max += (s.k() == max_k) ? 1U : 0U;
  if (at_max != 1) {
    report.reason = std::to_string(at_max) + " sinks tie at maximum k=" +
                    std::to_string(max_k) + " (C1 needs a strict maximum)";
    return report;
  }
  const IdSet& core = max_it->members;

  // C1 corollary (see paper): k(core) >= k since the graph is k-OSR.
  if (max_k < k) {
    report.reason = "core connectivity " + std::to_string(max_k) +
                    " below the k-OSR level " + std::to_string(k);
    return report;
  }

  // C2: k(core) node-disjoint paths from every non-core process in.
  const IdSet non_core = g.vertices().set_difference(core);
  if (!all_pairs_k_connected(g, non_core, core, max_k)) {
    report.reason =
        "a non-core process lacks " + std::to_string(max_k) +
        " node-disjoint paths into the core (C2)";
    return report;
  }

  report.satisfied = true;
  report.core = core;
  report.core_k = max_k;
  return report;
}

BftCupftReport check_bft_cupft_requirements(const Digraph& g,
                                            const IdSet& faulty,
                                            std::size_t f) {
  BftCupftReport report;
  if (faulty.size() > f) {
    report.reason = "more than f processes are faulty";
    return report;
  }
  const IdSet correct = g.vertices().set_difference(faulty);
  const Digraph safe = g.induced(correct);
  const ExtendedOsrReport ext = check_extended_k_osr(safe, f + 1);
  if (!ext.satisfied) {
    report.reason = "G_safe not extended (f+1)-OSR: " + ext.reason;
    return report;
  }
  if (ext.core.size() < 2 * f + 1) {
    report.reason = "core of G_safe has " + std::to_string(ext.core.size()) +
                    " processes (< 2f+1)";
    return report;
  }
  report.satisfied = true;
  report.safe_core = ext.core;
  report.core_k = ext.core_k;
  return report;
}

}  // namespace bftcup::graph

#include "graph/maxflow.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace bftcup::graph {

void MaxFlow::reset(std::size_t node_count) {
  edges_.clear();
  // Clear only the rows the previous network used; rows keep their capacity.
  const std::size_t reused = std::min(node_count_, adj_.size());
  for (std::size_t v = 0; v < reused; ++v) adj_[v].clear();
  if (adj_.size() < node_count) adj_.resize(node_count);
  node_count_ = node_count;
}

void MaxFlow::reset_flow() {
  for (Edge& e : edges_) e.capacity = e.original;
}

std::size_t MaxFlow::add_edge(std::size_t from, std::size_t to, int capacity) {
  const std::size_t idx = edges_.size();
  edges_.push_back({to, capacity, capacity});
  edges_.push_back({from, 0, 0});
  adj_[from].push_back(idx);
  adj_[to].push_back(idx + 1);
  return idx;
}

bool MaxFlow::bfs(std::size_t s, std::size_t t) {
  level_.assign(node_count_, -1);
  std::deque<std::size_t> queue{s};
  level_[s] = 0;
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop_front();
    for (std::size_t e : adj_[u]) {
      const Edge& edge = edges_[e];
      if (edge.capacity > 0 && level_[edge.to] < 0) {
        level_[edge.to] = level_[u] + 1;
        queue.push_back(edge.to);
      }
    }
  }
  return level_[t] >= 0;
}

int MaxFlow::dfs(std::size_t u, std::size_t t, int pushed) {
  if (u == t) return pushed;
  for (std::size_t& i = iter_[u]; i < adj_[u].size(); ++i) {
    const std::size_t e = adj_[u][i];
    Edge& edge = edges_[e];
    if (edge.capacity <= 0 || level_[edge.to] != level_[u] + 1) continue;
    const int got = dfs(edge.to, t, std::min(pushed, edge.capacity));
    if (got > 0) {
      edge.capacity -= got;
      edges_[e ^ 1].capacity += got;
      return got;
    }
  }
  return 0;
}

int MaxFlow::run(std::size_t s, std::size_t t, int limit) {
  if (s == t) return 0;
  int flow = 0;
  while (flow < limit && bfs(s, t)) {
    iter_.assign(node_count_, 0);
    while (flow < limit) {
      const int pushed = dfs(s, t, limit - flow);
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

int MaxFlow::flow_on(std::size_t e) const {
  return edges_[e].original - edges_[e].capacity;
}

}  // namespace bftcup::graph

// Dinic max-flow on unit-capacity-style networks.
//
// Used by connectivity.{hpp,cpp} to count internally node-disjoint paths
// (Menger's theorem via vertex splitting). Capacities are small integers, so
// int is ample and overflow-free.
//
// An instance doubles as a reusable arena: reset(n) clears the network but
// keeps every buffer's capacity, so the κ checks that run one flow per
// vertex pair stop paying an allocation storm per pair.
#pragma once

#include <cstddef>
#include <vector>

namespace bftcup::graph {

class MaxFlow {
 public:
  /// An empty arena; call reset() before adding edges.
  MaxFlow() = default;

  explicit MaxFlow(std::size_t node_count) { reset(node_count); }

  /// Re-initializes the network for `node_count` nodes, keeping allocated
  /// capacity (edge pool, adjacency rows, BFS scratch) for reuse.
  void reset(std::size_t node_count);

  /// Adds a directed edge with the given capacity; returns the edge index
  /// (the reverse edge is index+1).
  std::size_t add_edge(std::size_t from, std::size_t to, int capacity);

  /// Restores every edge to its original capacity, keeping the network
  /// topology. Cheaper than rebuilding: the batched connectivity checks run
  /// one flow per (source, target) pair over one shared network, paying a
  /// linear sweep instead of an adjacency rebuild per pair.
  void reset_flow();

  /// Computes max flow from s to t, stopping early once `limit` units have
  /// been pushed (useful for "are there >= k disjoint paths" checks).
  /// May be called once per reset(); call reset_flow() between runs to
  /// reuse the same network for another (s, t) pair.
  int run(std::size_t s, std::size_t t, int limit = 1 << 30);

  /// Flow pushed on edge `e` (as returned by add_edge), valid after run().
  [[nodiscard]] int flow_on(std::size_t e) const;

 private:
  struct Edge {
    std::size_t to;
    int capacity;
    int original;
  };

  bool bfs(std::size_t s, std::size_t t);
  int dfs(std::size_t u, std::size_t t, int pushed);

  std::size_t node_count_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace bftcup::graph

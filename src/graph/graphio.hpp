// Graph import/export: Graphviz DOT (for inspecting experiment inputs) and
// a simple edge-list text format (for test fixtures).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "graph/digraph.hpp"

namespace bftcup::graph::io {

/// Renders the graph as DOT. Faulty vertices (if given) are drawn doubled.
[[nodiscard]] std::string to_dot(const Digraph& g, const IdSet& faulty = {});

/// Edge-list format, one item per line:
///   "a -> b"   adds edge a -> b (a, b are unsigned ids)
///   "v a"      adds isolated vertex a
/// Blank lines and lines starting with '#' are skipped.
/// Returns nullopt on malformed input.
[[nodiscard]] std::optional<Digraph> parse_edge_list(std::string_view text);

/// Inverse of parse_edge_list (vertices without edges are emitted as "v a").
[[nodiscard]] std::string to_edge_list(const Digraph& g);

}  // namespace bftcup::graph::io

// Extended k-OSR PD (Definition 2) and the BFT-CUPFT model requirements.
//
// These checkers are *omniscient*: they see the whole knowledge connectivity
// graph (every process's PD), unlike protocol code, which only ever sees
// locally received PDs. Used by generators, tests, and experiment harnesses
// to validate inputs and establish ground truth.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"

namespace bftcup::graph {

/// A self-declarable sink of the graph under unknown fault threshold:
/// `members` passes isSink* with maximal witness threshold `f` (Section V);
/// its connectivity k_Gdi is f + 1.
struct SinkInfo {
  IdSet members;
  std::size_t f = 0;

  [[nodiscard]] std::size_t k() const { return f + 1; }
};

/// Every distinct member-set that passes isSink* on the omniscient view,
/// each with its maximal witness threshold. Exponential in component size
/// (exhaustive by design — ground truth); keep components <= ~16.
[[nodiscard]] std::vector<SinkInfo> all_sinks(const Digraph& g);

struct ExtendedOsrReport {
  bool satisfied = false;
  IdSet core;
  std::size_t core_k = 0;
  std::string reason;
};

/// Definition 2: g ∈ k-OSR, and there is a core with (C1) strictly maximum
/// connectivity among all sinks and (C2) k_Gdi(core) node-disjoint paths
/// from every non-core process to every core process.
[[nodiscard]] ExtendedOsrReport check_extended_k_osr(const Digraph& g,
                                                     std::size_t k);

struct BftCupftReport {
  bool satisfied = false;
  IdSet safe_core;
  std::size_t core_k = 0;
  std::string reason;
};

/// Section V closing requirements: G_safe = g[correct] belongs to the
/// extended (f+1)-OSR PD and its core has >= 2f+1 processes.
[[nodiscard]] BftCupftReport check_bft_cupft_requirements(const Digraph& g,
                                                          const IdSet& faulty,
                                                          std::size_t f);

}  // namespace bftcup::graph

// Strongly connected components (Tarjan, iterative).
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace bftcup::graph {

struct SccResult {
  /// component[v] = component id of dense vertex v; ids are 0..count-1 and
  /// assigned in reverse topological order of the condensation (Tarjan's
  /// natural order: an SCC's id is >= the ids of SCCs it can reach).
  std::vector<std::size_t> component;
  std::size_t count = 0;

  /// Members of each component as ProcessId sets.
  std::vector<IdSet> members;
};

[[nodiscard]] SccResult strongly_connected_components(const Digraph& g);

/// True if g (with >= 1 vertex) is strongly connected.
[[nodiscard]] bool is_strongly_connected(const Digraph& g);

}  // namespace bftcup::graph

#include "graph/figures.hpp"

#include <initializer_list>

namespace bftcup::graph::figures {
namespace {

ProcessId p(std::uint64_t raw) {
  return ProcessId(raw);
}

void pd(Digraph& g, std::uint64_t owner,
        std::initializer_list<std::uint64_t> targets) {
  g.add_vertex(p(owner));
  for (std::uint64_t t : targets) g.add_edge(p(owner), p(t));
}

void complete(Digraph& g, std::initializer_list<std::uint64_t> members) {
  for (std::uint64_t a : members) {
    for (std::uint64_t b : members) {
      if (a != b) g.add_edge(p(a), p(b));
    }
  }
}

}  // namespace

Instance fig1a() {
  Instance inst;
  Digraph& g = inst.graph;
  // Cluster {1,2,3}: complete. PD_1 = {2,3,4} per the paper.
  pd(g, 1, {2, 3, 4});
  pd(g, 2, {1, 3});
  pd(g, 3, {1, 2});
  // Byzantine 4 is the sole bridge to cluster {5,6,7,8}.
  pd(g, 4, {5, 1});
  pd(g, 5, {4, 6, 7});
  pd(g, 6, {7, 8});
  pd(g, 7, {5, 8});
  pd(g, 8, {5, 6});
  inst.faulty = {p(4)};
  inst.f = 1;
  return inst;
}

Instance fig1b() {
  Instance inst;
  Digraph& g = inst.graph;
  // Sink side: {1,2,3} complete among themselves, all know Byzantine 4,
  // and 4's (true) PD is {1,2,3} — matching the Sink-algorithm walkthrough
  // in Section III where 4 sends P = {1,2,3}.
  pd(g, 1, {2, 3, 4});
  pd(g, 2, {1, 3, 4});
  pd(g, 3, {1, 2, 4});
  pd(g, 4, {1, 2, 3});
  // Non-sink members each know two distinct sink members, giving the two
  // node-disjoint paths Definition 1 requires (direct edge + via the other).
  pd(g, 5, {1, 2});
  pd(g, 6, {2, 3});
  pd(g, 7, {1, 3});
  pd(g, 8, {2, 3});
  inst.faulty = {p(4)};
  inst.f = 1;
  inst.expected_sink = {p(1), p(2), p(3)};
  inst.expected_core = {p(1), p(2), p(3)};
  return inst;
}

Instance fig2a() {
  Instance inst;
  complete(inst.graph, {1, 2, 3, 4});
  inst.faulty = {p(4)};
  inst.f = 1;
  inst.expected_sink = {p(1), p(2), p(3)};
  inst.expected_core = {p(1), p(2), p(3)};
  return inst;
}

Instance fig2b() {
  Instance inst;
  complete(inst.graph, {5, 6, 7, 8});
  inst.faulty = {p(5)};
  inst.f = 1;
  inst.expected_sink = {p(6), p(7), p(8)};
  inst.expected_core = {p(6), p(7), p(8)};
  return inst;
}

Instance fig2c() {
  Instance inst;
  Digraph& g = inst.graph;
  complete(g, {1, 2, 3, 4});
  complete(g, {5, 6, 7, 8});
  // The only inter-cluster knowledge: 4 and 5 know each other.
  g.add_edge(p(4), p(5));
  g.add_edge(p(5), p(4));
  inst.f = 1;  // the system has a threshold; nobody is actually faulty
  return inst;
}

Instance fig3a() {
  Instance inst;
  Digraph& g = inst.graph;
  // S1 = {1,2,3,4,6} is complete (κ = 4) and every member also knows 5 and
  // 7, so isSink(2, S1, {5,7}) holds: 5 and 7 are each known by more than
  // two S1 members (P4) and no S1 member points outside S1 ∪ {5,7} (P3) —
  // nobody in S1 knows 8.
  pd(g, 1, {2, 3, 4, 6, 5, 7});
  pd(g, 2, {1, 3, 4, 6, 5, 7});
  pd(g, 3, {1, 2, 4, 6, 5, 7});
  pd(g, 4, {1, 2, 3, 6, 5, 7});
  pd(g, 6, {1, 2, 3, 4, 5, 7});
  // The true sink of G_safe (faulty = {1}) is the triangle {5,7,8}; process
  // 8 is known only inside the sink.
  pd(g, 5, {7, 8});
  pd(g, 7, {5, 8});
  pd(g, 8, {5, 7});
  inst.faulty = {p(1)};
  inst.f = 1;
  inst.expected_sink = {p(5), p(7), p(8)};
  return inst;
}

Instance fig3b() {
  Instance inst;
  Digraph& g = inst.graph;
  // Processes {1,2,3,4,6} keep byte-identical PDs to fig3a, so {2,3,4,6}
  // cannot distinguish the systems: in fig3a, 1 is Byzantine-but-behaving
  // and correct 5, 7, 8 are slow; here 5 and 7 are Byzantine-silent and 8
  // does not exist.
  pd(g, 1, {2, 3, 4, 6, 5, 7});
  pd(g, 2, {1, 3, 4, 6, 5, 7});
  pd(g, 3, {1, 2, 4, 6, 5, 7});
  pd(g, 4, {1, 2, 3, 6, 5, 7});
  pd(g, 6, {1, 2, 3, 4, 5, 7});
  // Byzantine 5 and 7 (true PDs point at each other).
  pd(g, 5, {7});
  pd(g, 7, {5});
  inst.faulty = {p(5), p(7)};
  inst.f = 2;
  inst.expected_sink = {p(1), p(2), p(3), p(4), p(6)};
  inst.expected_core = {p(1), p(2), p(3), p(4), p(6)};
  return inst;
}

Instance fig4a() {
  Instance inst;
  Digraph& g = inst.graph;
  complete(g, {1, 2, 3, 4});
  complete(g, {5, 6, 7, 8});
  g.add_edge(p(4), p(5));
  g.add_edge(p(5), p(4));
  // The paper's fix: extra links 6->3 and 7->2 stop {5,6,7,8} from ever
  // passing the sink predicate (their escapes cannot be absorbed into S2).
  g.add_edge(p(6), p(3));
  g.add_edge(p(7), p(2));
  inst.faulty = {p(5)};
  inst.f = 1;
  inst.expected_sink = {p(1), p(2), p(3), p(4)};
  inst.expected_core = {p(1), p(2), p(3), p(4)};
  return inst;
}

Instance fig4b() {
  Instance inst;
  Digraph& g = inst.graph;
  // Periphery: a simple 7-cycle (κ = 1, so no periphery subset can pass the
  // predicate with g >= 1) ...
  pd(g, 1, {2, 8, 9, 10});
  pd(g, 2, {3, 8, 9, 10});
  pd(g, 3, {4, 8, 9, 10});
  pd(g, 4, {5, 8, 9, 10});
  pd(g, 5, {6, 8, 9, 10});
  pd(g, 6, {7, 8, 9, 11});
  pd(g, 7, {1, 9, 10, 12});
  // ... and the core: K5 on {8..12} — strictly maximal connectivity (C1),
  // reachable from every periphery process via 3 disjoint direct links (C2).
  complete(g, {8, 9, 10, 11, 12});
  inst.faulty = {p(8)};
  inst.f = 1;
  inst.expected_sink = {p(9), p(10), p(11), p(12)};
  inst.expected_core = {p(9), p(10), p(11), p(12)};
  return inst;
}

}  // namespace bftcup::graph::figures

#include "graph/osr.hpp"

#include "graph/condensation.hpp"
#include "graph/connectivity.hpp"

namespace bftcup::graph {

OsrReport check_k_osr(const Digraph& g, std::size_t k) {
  OsrReport report;
  if (g.vertex_count() == 0) {
    report.reason = "empty graph";
    return report;
  }
  if (!g.weakly_connected()) {
    report.reason = "undirected counterpart is not connected";
    return report;
  }
  const Condensation c = condense(g);
  if (c.sink_components.size() != 1) {
    report.reason = "condensation has " +
                    std::to_string(c.sink_components.size()) +
                    " sinks (need exactly 1)";
    return report;
  }
  const IdSet sink = c.sccs.members[c.sink_components.front()];
  const Digraph sink_graph = g.induced(sink);
  if (sink.size() == 1) {
    // A singleton sink is k-strongly connected for no k >= 1 under the
    // disjoint-paths definition; accept only k == 0 (degenerate).
    if (k >= 1) {
      report.reason = "sink is a singleton, cannot be k-strongly connected";
      return report;
    }
  } else if (!is_k_strongly_connected(sink_graph, k)) {
    report.reason = "sink component is not " + std::to_string(k) +
                    "-strongly connected";
    return report;
  }
  const IdSet non_sink = g.vertices().set_difference(sink);
  if (!all_pairs_k_connected(g, non_sink, sink, k)) {
    report.reason = "a non-sink process lacks " + std::to_string(k) +
                    " node-disjoint paths into the sink";
    return report;
  }
  report.satisfied = true;
  report.sink = sink;
  return report;
}

std::size_t max_osr_k(const Digraph& g) {
  if (g.vertex_count() == 0 || !g.weakly_connected()) return 0;
  const Condensation c = condense(g);
  if (c.sink_components.size() != 1) return 0;
  const IdSet sink = c.sccs.members[c.sink_components.front()];
  if (sink.size() <= 1) return 0;

  const Digraph sink_graph = g.induced(sink);
  std::size_t k = strong_connectivity(sink_graph);

  // The non-sink-to-sink disjoint-path requirement can only lower k.
  const IdSet non_sink = g.vertices().set_difference(sink);
  while (k > 0 && !all_pairs_k_connected(g, non_sink, sink, k)) --k;
  return k;
}

BftCupReport check_bft_cup_requirements(const Digraph& g, const IdSet& faulty,
                                        std::size_t f) {
  BftCupReport report;
  if (faulty.size() > f) {
    report.reason = "more than f processes are faulty";
    return report;
  }
  const IdSet correct = g.vertices().set_difference(faulty);
  const Digraph safe = g.induced(correct);
  const OsrReport osr = check_k_osr(safe, f + 1);
  if (!osr.satisfied) {
    report.reason = "G_safe is not (f+1)-OSR: " + osr.reason;
    return report;
  }
  if (osr.sink.size() < 2 * f + 1) {
    report.reason = "sink of G_safe has " + std::to_string(osr.sink.size()) +
                    " processes (< 2f+1)";
    return report;
  }
  report.satisfied = true;
  report.safe_sink = osr.sink;
  return report;
}

}  // namespace bftcup::graph

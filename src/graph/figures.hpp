// Concrete knowledge connectivity graphs for every figure in the paper.
//
// The paper's figures are drawings; the text pins several of their
// properties (PD_1 = {2,3,4}, which processes are faulty, which sets are
// sinks, the isSink evaluations of Section IV). Each builder here recreates
// a graph consistent with *all* of those pinned properties; the figure tests
// assert them one by one, so any divergence from the paper is caught.
#pragma once

#include "graph/digraph.hpp"

namespace bftcup::graph::figures {

/// A figure instance: the graph plus its ground-truth fault configuration.
struct Instance {
  Digraph graph;
  IdSet faulty;
  std::size_t f = 0;       ///< system fault threshold
  IdSet expected_sink;     ///< sink of G_safe ({} when inapplicable)
  IdSet expected_core;     ///< core of G_safe ({} when inapplicable)
};

/// Fig. 1a: 8 processes, Byzantine 4 bridges {1,2,3} and {5,6,7,8};
/// does NOT satisfy the BFT-CUP requirements (removing 4 splits G_safe).
[[nodiscard]] Instance fig1a();

/// Fig. 1b: 8 processes, Byzantine 4; satisfies BFT-CUP with f = 1;
/// sink of G_safe = {1,2,3}. PD_1 = {2,3,4} as in the paper.
[[nodiscard]] Instance fig1b();

/// Fig. 2a (System A): {1,2,3,4} complete, process 4 faulty, f = 1.
[[nodiscard]] Instance fig2a();

/// Fig. 2b (System B): {5,6,7,8} complete, process 5 faulty, f = 1.
[[nodiscard]] Instance fig2b();

/// Fig. 2c (System AB): the union of A and B bridged by 4 <-> 5; 1-OSR,
/// all processes correct.
[[nodiscard]] Instance fig2c();

/// Fig. 3a: 8 processes, only 1 faulty (f = 1), 2-OSR with sink {5,7,8};
/// the non-sink set S1 = {1,2,3,4,6} satisfies isSink(2, S1, {5,7}).
[[nodiscard]] Instance fig3a();

/// Fig. 3b: 7 processes, 5 and 7 faulty (f = 2), 3-OSR with sink
/// {1,2,3,4,6}; processes {2,3,4,6} cannot distinguish it from fig3a.
[[nodiscard]] Instance fig3b();

/// Fig. 4a: fig. 2c plus links 6->3 and 7->2; satisfies BFT-CUPFT with
/// faulty = {5}, f = 1, core = {1,2,3,4} (full-graph sink != core).
[[nodiscard]] Instance fig4a();

/// Fig. 4b: a 12-process extended-OSR graph whose sink equals its core
/// {8..12}; faulty = {8}, f = 1.
[[nodiscard]] Instance fig4b();

}  // namespace bftcup::graph::figures

// k-One-Sink-Reducibility (Definition 1) and the BFT-CUP graph requirements
// (Theorem 1).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "graph/digraph.hpp"

namespace bftcup::graph {

struct OsrReport {
  bool satisfied = false;
  /// Populated on success.
  IdSet sink;
  /// Human-readable reason on failure (for diagnostics/tests).
  std::string reason;
};

/// Checks Definition 1: (1) undirected counterpart connected, (2) exactly one
/// sink SCC, (3) sink is k-strongly connected, (4) >= k node-disjoint paths
/// from every non-sink process to every sink process.
[[nodiscard]] OsrReport check_k_osr(const Digraph& g, std::size_t k);

/// The largest k such that g is k-OSR; 0 if not even 1-OSR (the structural
/// properties (1)-(2) fail, or the sink is a singleton with no connectivity).
[[nodiscard]] std::size_t max_osr_k(const Digraph& g);

struct BftCupReport {
  bool satisfied = false;
  IdSet safe_sink;  ///< Sink of G_safe when satisfied.
  std::string reason;
};

/// Checks Theorem 1 on the *safe subgraph* G_safe = g[correct]:
///   (a) G_safe is (f+1)-OSR, and (b) |sink(G_safe)| >= 2f+1.
/// `faulty` lists the Byzantine processes (ground truth, available to the
/// omniscient checker only — protocols never see it).
[[nodiscard]] BftCupReport check_bft_cup_requirements(const Digraph& g,
                                                      const IdSet& faulty,
                                                      std::size_t f);

}  // namespace bftcup::graph

#include "graph/connectivity.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "common/work_pool.hpp"
#include "graph/maxflow.hpp"
#include "graph/scc.hpp"

namespace bftcup::graph {
namespace {

constexpr int kInf = 1 << 29;

/// One flow arena per thread (sweeps run one simulator per thread), shared
/// by the pair-at-a-time and batched paths so the κ checks reuse buffers
/// instead of reallocating them per flow.
MaxFlow& flow_arena() {
  thread_local MaxFlow arena;
  return arena;
}

/// Builds the vertex-split flow network and returns the flow value from
/// `from` to `to`, capped at `limit`.
int split_graph_flow(const Digraph& g, std::size_t from, std::size_t to,
                     int limit) {
  if (limit <= 0) return 0;
  const std::size_t n = g.vertex_count();
  // Node 2v = v_in, 2v+1 = v_out.
  MaxFlow& flow = flow_arena();
  flow.reset(2 * n);
  for (std::size_t v = 0; v < n; ++v) {
    const int cap = (v == from || v == to) ? kInf : 1;
    flow.add_edge(2 * v, 2 * v + 1, cap);
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v : g.out(u)) {
      // A direct from->to edge is one whole path by itself; without the unit
      // cap the uncapacitated endpoint splits would let it carry any flow.
      const int cap = (u == from && v == to) ? 1 : kInf;
      flow.add_edge(2 * u + 1, 2 * v, cap);
    }
  }
  return flow.run(2 * from + 1, 2 * to, limit);
}

/// All-unit-capacity split network built once and reused (via reset_flow)
/// for every (source, target) pair of one graph — the batched form of
/// split_graph_flow. Capping *every* edge at 1 yields the same flow values:
/// any adjacency edge u->v either leaves the source's _out or crosses a
/// unit vertex split at u or v, except the direct source->target edge,
/// which split_graph_flow caps at 1 deliberately.
class BatchedSplitFlow {
 public:
  explicit BatchedSplitFlow(const Digraph& g) : flow_(flow_arena()) {
    const std::size_t n = g.vertex_count();
    flow_.reset(2 * n);
    for (std::size_t v = 0; v < n; ++v) flow_.add_edge(2 * v, 2 * v + 1, 1);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v : g.out(u)) flow_.add_edge(2 * u + 1, 2 * v, 1);
    }
  }

  /// Internally node-disjoint from->to path count, capped at `limit`.
  int count(std::size_t from, std::size_t to, int limit) {
    if (limit <= 0) return 0;
    flow_.reset_flow();
    return flow_.run(2 * from + 1, 2 * to, limit);
  }

 private:
  MaxFlow& flow_;
};

/// κ is bounded by the minimum in/out degree: κ(u,v) <= outdeg(u) and
/// <= indeg(v) by the path definition.
std::size_t degree_bound(const Digraph& g) {
  std::size_t bound = std::numeric_limits<std::size_t>::max();
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    bound = std::min({bound, g.out(v).size(), g.in(v).size()});
  }
  return bound;
}

/// The pivot vertices of the sub-quadratic κ path: any `bound + 3` distinct
/// vertices (all of them when the graph is smaller). Correctness argument
/// (probed pairs = every (p, v) and (v, p) with p a pivot): let (a, b)
/// attain κ and C be a minimum vertex cut for it (|C| = κ, or κ-1 plus the
/// direct a->b edge), so |C ∪ {a, b}| <= bound + 2 and some pivot p avoids
/// C ∪ {a, b}. If p cannot reach b without C, then C (plus a, if the
/// direct edge exists) cuts p from b, and the probed flow(p, b) <= κ;
/// otherwise every a->p path hits C (else a would reach b through p,
/// contradicting the cut), and the probed flow(a, p) <= κ. Every probed
/// flow is also >= κ by minimality, so the probed minimum equals κ —
/// (bound + 3) · 2n flows instead of n · (n-1).
std::size_t pivot_count(std::size_t n, std::size_t bound) {
  return std::min(n, bound + 3);
}

/// Graphs at or above this size take the pivot path; below it the all-pairs
/// loop is cheap and stays the reference implementation (the randomized
/// property test cross-validates the two on graphs straddling the
/// threshold).
constexpr std::size_t kPivotThreshold = 64;

/// Parallel form of the pivot probe loop: pivots fan out across the
/// installed WorkPool, each worker on its own BatchedSplitFlow (bound to
/// that thread's flow arena, so flow-reset reuse is preserved per worker).
/// The shared atomic `best` is a *work cap*, not a result accumulator:
/// every true pair flow is >= κ and every cap it is probed under is >= κ
/// (inductively — caps are prior probe results), so a capped probe returns
/// min(flow, cap) >= κ, and the κ-attaining pair returns exactly κ no
/// matter when its probe is scheduled. The final minimum is therefore
/// exactly κ at any thread count and any interleaving — the same value the
/// serial loop computes.
std::size_t pivot_connectivity_parallel(const Digraph& g, std::size_t bound,
                                        std::size_t pivots, WorkPool& pool) {
  const std::size_t n = g.vertex_count();
  std::atomic<std::size_t> best{bound};
  pool.run(pivots, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
    BatchedSplitFlow batched(g);
    for (std::size_t p = begin; p < end; ++p) {
      for (std::size_t v = 0; v < n; ++v) {
        if (v == p) continue;
        const auto probe = [&](std::size_t from, std::size_t to) {
          const std::size_t cap = best.load(std::memory_order_relaxed);
          if (cap <= 1) return false;  // κ floor reached: nothing can drop
          std::size_t flow = static_cast<std::size_t>(
              batched.count(from, to, static_cast<int>(cap)));
          std::size_t current = best.load(std::memory_order_relaxed);
          while (flow < current && !best.compare_exchange_weak(
                                       current, flow,
                                       std::memory_order_relaxed)) {
          }
          return true;
        };
        if (!probe(p, v) || !probe(v, p)) return;
      }
    }
  });
  // Strongly connected means κ >= 1; the early-exit floor can only have
  // fired with best == 1 == κ.
  return std::max<std::size_t>(best.load(std::memory_order_relaxed), 1);
}

/// Exact κ of a strongly connected, non-complete g via the pivot set.
std::size_t pivot_connectivity(const Digraph& g, std::size_t bound) {
  const std::size_t n = g.vertex_count();
  const std::size_t pivots = pivot_count(n, bound);
  if (WorkPool* pool = usable_work_pool();
      pool != nullptr && pool->workers() > 1 && pivots > 1) {
    return pivot_connectivity_parallel(g, bound, pivots, *pool);
  }
  BatchedSplitFlow batched(g);
  std::size_t best = bound;
  for (std::size_t p = 0; p < pivots; ++p) {
    for (std::size_t v = 0; v < n; ++v) {
      if (v == p) continue;
      best = std::min(best, static_cast<std::size_t>(batched.count(
                                p, v, static_cast<int>(best))));
      best = std::min(best, static_cast<std::size_t>(batched.count(
                                v, p, static_cast<int>(best))));
      // Strongly connected means κ >= 1; once best hits the floor no
      // further pair can lower it.
      if (best <= 1) return 1;
    }
  }
  return best;
}

/// Pivot-path form of the k-connectivity predicate: κ >= k iff every probed
/// pair carries k units (the probed minimum equals κ, see pivot_count).
/// With a pool installed, pivots fan out like pivot_connectivity_parallel;
/// the verdict is a conjunction of pure per-pair predicates, so it is
/// schedule-independent, and the shared flag only prunes work after the
/// answer is already `false`.
bool pivot_k_connected(const Digraph& g, std::size_t bound, std::size_t k) {
  const std::size_t n = g.vertex_count();
  const std::size_t pivots = pivot_count(n, bound);
  const int limit = static_cast<int>(std::min<std::size_t>(k, kInf));
  if (WorkPool* pool = usable_work_pool();
      pool != nullptr && pool->workers() > 1 && pivots > 1) {
    std::atomic<bool> connected{true};
    pool->run(pivots, 1, [&](std::size_t begin, std::size_t end,
                             std::size_t) {
      BatchedSplitFlow batched(g);
      for (std::size_t p = begin; p < end; ++p) {
        for (std::size_t v = 0; v < n; ++v) {
          if (v == p) continue;
          if (!connected.load(std::memory_order_relaxed)) return;
          if (batched.count(p, v, limit) < limit ||
              batched.count(v, p, limit) < limit) {
            connected.store(false, std::memory_order_relaxed);
            return;
          }
        }
      }
    });
    return connected.load(std::memory_order_relaxed);
  }
  BatchedSplitFlow batched(g);
  for (std::size_t p = 0; p < pivots; ++p) {
    for (std::size_t v = 0; v < n; ++v) {
      if (v == p) continue;
      if (batched.count(p, v, limit) < limit) return false;
      if (batched.count(v, p, limit) < limit) return false;
    }
  }
  return true;
}

}  // namespace

std::size_t disjoint_path_count(const Digraph& g, ProcessId from,
                                ProcessId to) {
  const auto u = g.index_of(from);
  const auto v = g.index_of(to);
  if (!u || !v || *u == *v) return 0;
  return static_cast<std::size_t>(split_graph_flow(g, *u, *v, kInf));
}

bool has_k_disjoint_paths(const Digraph& g, ProcessId from, ProcessId to,
                          std::size_t k) {
  if (k == 0) return true;
  const auto u = g.index_of(from);
  const auto v = g.index_of(to);
  if (!u || !v || *u == *v) return false;
  const int limit = static_cast<int>(std::min<std::size_t>(k, kInf));
  return split_graph_flow(g, *u, *v, limit) >= limit;
}

std::size_t strong_connectivity(const Digraph& g) {
  const std::size_t n = g.vertex_count();
  if (n < 2) return 0;
  if (!is_strongly_connected(g)) return 0;

  // Early-exit certificates, cheapest first: a complete graph has κ = n-1
  // by the path definition (no flow needed), and a degree bound of 1 pins
  // κ of any strongly connected graph to exactly 1.
  if (g.edge_count() == n * (n - 1)) return n - 1;
  const std::size_t bound = degree_bound(g);
  if (bound <= 1) return 1;

  if (n >= kPivotThreshold) return pivot_connectivity(g, bound);

  std::size_t best = bound;
  for (std::size_t u = 0; u < n && best > 0; ++u) {
    for (std::size_t v = 0; v < n && best > 0; ++v) {
      if (u == v) continue;
      const int f =
          split_graph_flow(g, u, v, static_cast<int>(best));
      best = std::min(best, static_cast<std::size_t>(f));
    }
  }
  return best;
}

bool is_k_strongly_connected(const Digraph& g, std::size_t k) {
  if (g.vertex_count() < 2) return false;
  if (k == 0) return is_strongly_connected(g);
  if (!is_strongly_connected(g)) return false;
  const std::size_t n = g.vertex_count();

  // Same certificates as strong_connectivity: κ <= min degree, and a
  // complete graph has κ = n-1 exactly.
  const std::size_t bound = degree_bound(g);
  if (k > bound) return false;
  if (g.edge_count() == n * (n - 1)) return n - 1 >= k;

  if (n >= kPivotThreshold) return pivot_k_connected(g, bound, k);

  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      if (split_graph_flow(g, u, v, static_cast<int>(k)) <
          static_cast<int>(k)) {
        return false;
      }
    }
  }
  return true;
}

bool all_pairs_k_connected(const Digraph& g, const IdSet& sources,
                           const IdSet& targets, std::size_t k) {
  for (ProcessId i : sources) {
    for (ProcessId j : targets) {
      if (i == j) continue;
      if (!has_k_disjoint_paths(g, i, j, k)) return false;
    }
  }
  return true;
}

}  // namespace bftcup::graph

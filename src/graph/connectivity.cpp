#include "graph/connectivity.hpp"

#include <algorithm>
#include <limits>

#include "graph/maxflow.hpp"
#include "graph/scc.hpp"

namespace bftcup::graph {
namespace {

constexpr int kInf = 1 << 29;

/// Builds the vertex-split flow network and returns the flow value from
/// `from` to `to`, capped at `limit`.
int split_graph_flow(const Digraph& g, std::size_t from, std::size_t to,
                     int limit) {
  if (limit <= 0) return 0;
  const std::size_t n = g.vertex_count();
  // Node 2v = v_in, 2v+1 = v_out. The arena persists across calls (per
  // thread; sweeps run one simulator per thread), so the κ checks that fire
  // one flow per vertex pair reset buffers instead of reallocating them.
  thread_local MaxFlow flow;
  flow.reset(2 * n);
  for (std::size_t v = 0; v < n; ++v) {
    const int cap = (v == from || v == to) ? kInf : 1;
    flow.add_edge(2 * v, 2 * v + 1, cap);
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v : g.out(u)) {
      // A direct from->to edge is one whole path by itself; without the unit
      // cap the uncapacitated endpoint splits would let it carry any flow.
      const int cap = (u == from && v == to) ? 1 : kInf;
      flow.add_edge(2 * u + 1, 2 * v, cap);
    }
  }
  return flow.run(2 * from + 1, 2 * to, limit);
}

}  // namespace

std::size_t disjoint_path_count(const Digraph& g, ProcessId from,
                                ProcessId to) {
  const auto u = g.index_of(from);
  const auto v = g.index_of(to);
  if (!u || !v || *u == *v) return 0;
  return static_cast<std::size_t>(split_graph_flow(g, *u, *v, kInf));
}

bool has_k_disjoint_paths(const Digraph& g, ProcessId from, ProcessId to,
                          std::size_t k) {
  if (k == 0) return true;
  const auto u = g.index_of(from);
  const auto v = g.index_of(to);
  if (!u || !v || *u == *v) return false;
  const int limit = static_cast<int>(std::min<std::size_t>(k, kInf));
  return split_graph_flow(g, *u, *v, limit) >= limit;
}

std::size_t strong_connectivity(const Digraph& g) {
  const std::size_t n = g.vertex_count();
  if (n < 2) return 0;
  if (!is_strongly_connected(g)) return 0;

  // κ is bounded by the minimum in/out degree + ... actually by the path
  // definition, κ(u,v) <= outdeg(u) and <= indeg(v), so κ <= min degree.
  std::size_t bound = std::numeric_limits<std::size_t>::max();
  for (std::size_t v = 0; v < n; ++v) {
    bound = std::min({bound, g.out(v).size(), g.in(v).size()});
  }

  std::size_t best = bound;
  for (std::size_t u = 0; u < n && best > 0; ++u) {
    for (std::size_t v = 0; v < n && best > 0; ++v) {
      if (u == v) continue;
      const int f =
          split_graph_flow(g, u, v, static_cast<int>(best));
      best = std::min(best, static_cast<std::size_t>(f));
    }
  }
  return best;
}

bool is_k_strongly_connected(const Digraph& g, std::size_t k) {
  if (g.vertex_count() < 2) return false;
  if (k == 0) return is_strongly_connected(g);
  if (!is_strongly_connected(g)) return false;
  const std::size_t n = g.vertex_count();
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      if (split_graph_flow(g, u, v, static_cast<int>(k)) <
          static_cast<int>(k)) {
        return false;
      }
    }
  }
  return true;
}

bool all_pairs_k_connected(const Digraph& g, const IdSet& sources,
                           const IdSet& targets, std::size_t k) {
  for (ProcessId i : sources) {
    for (ProcessId j : targets) {
      if (i == j) continue;
      if (!has_k_disjoint_paths(g, i, j, k)) return false;
    }
  }
  return true;
}

}  // namespace bftcup::graph

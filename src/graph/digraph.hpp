// Directed graph over sparse ProcessIds.
//
// Knowledge connectivity graphs (paper §II-C) have processes as vertices and
// an edge (i, j) iff i initially knows j. IDs are sparse, so the graph keeps
// an id<->dense-index mapping; all algorithms run on dense indices.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace bftcup::graph {

class Digraph {
 public:
  Digraph() = default;

  /// Builds a graph with the given vertices and no edges.
  explicit Digraph(const IdSet& vertices);

  /// Adds a vertex (no-op if present). Returns its dense index.
  std::size_t add_vertex(ProcessId id);

  /// Adds edge i -> j, inserting missing endpoints. Self-loops are ignored
  /// ("i knows itself" carries no information). Returns true if the edge is
  /// new.
  bool add_edge(ProcessId from, ProcessId to);

  /// add_edge without the duplicate scan — the caller guarantees the edge
  /// is not already present (e.g. projecting edges of a graph that already
  /// de-duplicated them). The scan is O(out-degree), which turns building a
  /// dense induced subgraph cubic; this keeps it linear in the edges. Both
  /// endpoints must already be vertices.
  void add_edge_unchecked(ProcessId from, ProcessId to);

  [[nodiscard]] bool has_vertex(ProcessId id) const;
  [[nodiscard]] bool has_edge(ProcessId from, ProcessId to) const;

  [[nodiscard]] std::size_t vertex_count() const { return ids_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// Dense index for an id; nullopt if absent.
  [[nodiscard]] std::optional<std::size_t> index_of(ProcessId id) const;
  [[nodiscard]] ProcessId id_of(std::size_t index) const {
    return ids_[index];
  }

  /// All vertex ids, sorted.
  [[nodiscard]] IdSet vertices() const;

  /// Out-/in-neighbors by dense index (sorted by insertion then normalized).
  [[nodiscard]] const std::vector<std::size_t>& out(std::size_t v) const {
    return out_[v];
  }
  [[nodiscard]] const std::vector<std::size_t>& in(std::size_t v) const {
    return in_[v];
  }

  [[nodiscard]] IdSet out_neighbors(ProcessId id) const;
  [[nodiscard]] IdSet in_neighbors(ProcessId id) const;

  /// Subgraph induced by `keep` (vertices outside the graph are ignored) —
  /// G_di[U] in the paper's notation.
  [[nodiscard]] Digraph induced(const IdSet& keep) const;

  /// The undirected counterpart G of G_di (paper §II-C): same vertices, each
  /// directed edge mirrored.
  [[nodiscard]] Digraph undirected_counterpart() const;

  /// True if the undirected counterpart is connected (trivially true for
  /// empty/singleton graphs).
  [[nodiscard]] bool weakly_connected() const;

  /// Vertices reachable from `from` following directed edges (including
  /// `from` itself). Empty set if `from` is not a vertex.
  [[nodiscard]] IdSet reachable_from(ProcessId from) const;

  friend bool operator==(const Digraph&, const Digraph&);

 private:
  std::vector<ProcessId> ids_;
  std::unordered_map<ProcessId, std::size_t> index_;
  std::vector<std::vector<std::size_t>> out_;
  std::vector<std::vector<std::size_t>> in_;
  std::size_t edge_count_ = 0;
};

}  // namespace bftcup::graph

// Vertex connectivity and node-disjoint paths (Menger / max-flow).
//
// Paper notation (§II-C):
//  * a digraph H is k-strongly connected iff every ordered pair (i, j) has
//    >= k internally node-disjoint i->j paths;
//  * κ(H) is the largest such k;
//  * Definition 1 further requires >= k node-disjoint paths from every
//    non-sink process to every sink process.
//
// Counting is done on the standard split graph: every vertex x becomes
// x_in -> x_out with capacity 1 (source uses its _out, target its _in; their
// own splits are uncapacitated by construction), every edge u -> v becomes
// u_out -> v_in with a large capacity. Max flow = max internally
// node-disjoint path count, including a direct u -> v edge as one path.
#pragma once

#include <cstddef>

#include "graph/digraph.hpp"

namespace bftcup::graph {

/// Max number of internally node-disjoint paths from `from` to `to`.
/// Returns 0 if either endpoint is missing or from == to.
[[nodiscard]] std::size_t disjoint_path_count(const Digraph& g, ProcessId from,
                                              ProcessId to);

/// True iff there are >= k internally node-disjoint paths from `from` to
/// `to`. Early-exits the flow at k units.
[[nodiscard]] bool has_k_disjoint_paths(const Digraph& g, ProcessId from,
                                        ProcessId to, std::size_t k);

/// κ(g): the maximum k for which g is k-strongly connected; 0 if g is not
/// strongly connected or has < 2 vertices. (By the path definition a
/// complete graph on n vertices has κ = n-1.) Exact at every size: small
/// graphs run the all-pairs reference loop, graphs of >= 64 vertices take
/// the sub-quadratic certified path — complete-graph and degree-bound
/// early exits, then (min-degree + 3) pivot vertices probed against every
/// other vertex over one batched max-flow network (a pivot-free minimum
/// cut would contradict the probed flows; see pivot_count in the .cpp).
[[nodiscard]] std::size_t strong_connectivity(const Digraph& g);

/// True iff g is k-strongly connected. Cheaper than computing κ exactly;
/// takes the same certified pivot path as strong_connectivity at >= 64
/// vertices.
[[nodiscard]] bool is_k_strongly_connected(const Digraph& g, std::size_t k);

/// True iff every i in `sources` has >= k node-disjoint paths to every j in
/// `targets` within g (pairs with i == j are skipped).
[[nodiscard]] bool all_pairs_k_connected(const Digraph& g,
                                         const IdSet& sources,
                                         const IdSet& targets, std::size_t k);

}  // namespace bftcup::graph

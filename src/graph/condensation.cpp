#include "graph/condensation.hpp"

#include <algorithm>

namespace bftcup::graph {

Condensation condense(const Digraph& g) {
  Condensation result;
  result.sccs = strongly_connected_components(g);
  const std::size_t c = result.sccs.count;
  result.dag_out.assign(c, {});

  for (std::size_t u = 0; u < g.vertex_count(); ++u) {
    const std::size_t cu = result.sccs.component[u];
    for (std::size_t v : g.out(u)) {
      const std::size_t cv = result.sccs.component[v];
      if (cu != cv) result.dag_out[cu].push_back(cv);
    }
  }
  for (auto& adj : result.dag_out) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  for (std::size_t i = 0; i < c; ++i) {
    if (result.dag_out[i].empty()) result.sink_components.push_back(i);
  }
  return result;
}

IdSet sink_members(const Digraph& g) {
  const Condensation c = condense(g);
  IdSet out;
  for (std::size_t comp : c.sink_components) {
    out.insert_all(c.sccs.members[comp]);
  }
  return out;
}

IdSet unique_sink_members(const Digraph& g) {
  const Condensation c = condense(g);
  if (c.sink_components.size() != 1) return {};
  return c.sccs.members[c.sink_components.front()];
}

}  // namespace bftcup::graph

#include "graph/scc.hpp"

#include <algorithm>

namespace bftcup::graph {

SccResult strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.vertex_count();
  SccResult result;
  result.component.assign(n, 0);
  if (n == 0) return result;

  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnset);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;

  // Explicit DFS stack: (vertex, next-child position).
  struct Frame {
    std::size_t v;
    std::size_t child;
  };
  std::vector<Frame> frames;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnset) continue;
    frames.push_back({root, 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::size_t v = f.v;
      if (f.child == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      const auto& children = g.out(v);
      if (f.child < children.size()) {
        const std::size_t w = children[f.child++];
        if (index[w] == kUnset) {
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          IdSet comp;
          for (;;) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = result.count;
            comp.insert(g.id_of(w));
            if (w == v) break;
          }
          result.members.push_back(std::move(comp));
          ++result.count;
        }
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] =
              std::min(lowlink[frames.back().v], lowlink[v]);
        }
      }
    }
  }
  return result;
}

bool is_strongly_connected(const Digraph& g) {
  if (g.vertex_count() == 0) return false;
  return strongly_connected_components(g).count == 1;
}

}  // namespace bftcup::graph

// Condensation DAG and sink components.
//
// The paper reduces G_di to its strongly connected components and requires
// exactly one sink component (Definition 1). A component is a *sink* iff it
// has no edges to other components.
#pragma once

#include <vector>

#include "graph/scc.hpp"

namespace bftcup::graph {

struct Condensation {
  SccResult sccs;
  /// dag_out[c] = component ids reachable from c via a direct edge.
  std::vector<std::vector<std::size_t>> dag_out;
  /// Component ids with no outgoing DAG edges.
  std::vector<std::size_t> sink_components;
};

[[nodiscard]] Condensation condense(const Digraph& g);

/// Members of all sink components, unioned.
[[nodiscard]] IdSet sink_members(const Digraph& g);

/// Members of the unique sink component; nullopt-like empty set if the
/// condensation has != 1 sink.
[[nodiscard]] IdSet unique_sink_members(const Digraph& g);

}  // namespace bftcup::graph

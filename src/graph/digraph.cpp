#include "graph/digraph.hpp"

#include <algorithm>

#include "common/bitset64.hpp"

namespace bftcup::graph {

Digraph::Digraph(const IdSet& vertices) {
  for (ProcessId id : vertices) add_vertex(id);
}

std::size_t Digraph::add_vertex(ProcessId id) {
  auto it = index_.find(id);
  if (it != index_.end()) return it->second;
  const std::size_t idx = ids_.size();
  ids_.push_back(id);
  index_.emplace(id, idx);
  out_.emplace_back();
  in_.emplace_back();
  return idx;
}

bool Digraph::add_edge(ProcessId from, ProcessId to) {
  if (from == to) return false;
  const std::size_t u = add_vertex(from);
  const std::size_t v = add_vertex(to);
  auto& adj = out_[u];
  if (std::find(adj.begin(), adj.end(), v) != adj.end()) return false;
  adj.push_back(v);
  in_[v].push_back(u);
  ++edge_count_;
  return true;
}

void Digraph::add_edge_unchecked(ProcessId from, ProcessId to) {
  if (from == to) return;
  const std::size_t u = index_.find(from)->second;
  const std::size_t v = index_.find(to)->second;
  out_[u].push_back(v);
  in_[v].push_back(u);
  ++edge_count_;
}

bool Digraph::has_vertex(ProcessId id) const {
  return index_.contains(id);
}

bool Digraph::has_edge(ProcessId from, ProcessId to) const {
  const auto u = index_of(from);
  const auto v = index_of(to);
  if (!u || !v) return false;
  const auto& adj = out_[*u];
  return std::find(adj.begin(), adj.end(), *v) != adj.end();
}

std::optional<std::size_t> Digraph::index_of(ProcessId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

IdSet Digraph::vertices() const {
  // ids_ is in insertion order; the normalizing constructor sorts once
  // instead of paying a memmove per out-of-order insert.
  return IdSet(ids_);
}

IdSet Digraph::out_neighbors(ProcessId id) const {
  IdSet result;
  if (const auto u = index_of(id)) {
    for (std::size_t v : out_[*u]) result.insert(ids_[v]);
  }
  return result;
}

IdSet Digraph::in_neighbors(ProcessId id) const {
  IdSet result;
  if (const auto u = index_of(id)) {
    for (std::size_t v : in_[*u]) result.insert(ids_[v]);
  }
  return result;
}

Digraph Digraph::induced(const IdSet& keep) const {
  // The edge filter runs |keep| · degree membership tests; the probe makes
  // each one a word lookup once keep is large and dense.
  const AdaptiveIdProbe probe(keep);
  Digraph sub;
  for (ProcessId id : keep) {
    if (has_vertex(id)) sub.add_vertex(id);
  }
  for (ProcessId id : keep) {
    const auto u = index_of(id);
    if (!u) continue;
    // out_[*u] holds each target once (add_edge de-duplicates), so the
    // projection cannot introduce duplicates either.
    for (std::size_t v : out_[*u]) {
      if (probe.contains(ids_[v])) sub.add_edge_unchecked(id, ids_[v]);
    }
  }
  return sub;
}

Digraph Digraph::undirected_counterpart() const {
  Digraph g;
  for (ProcessId id : ids_) g.add_vertex(id);
  for (std::size_t u = 0; u < ids_.size(); ++u) {
    for (std::size_t v : out_[u]) {
      g.add_edge(ids_[u], ids_[v]);
      g.add_edge(ids_[v], ids_[u]);
    }
  }
  return g;
}

bool Digraph::weakly_connected() const {
  if (ids_.size() <= 1) return true;
  std::vector<bool> seen(ids_.size(), false);
  std::vector<std::size_t> stack = {0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    auto visit = [&](std::size_t v) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    };
    for (std::size_t v : out_[u]) visit(v);
    for (std::size_t v : in_[u]) visit(v);
  }
  return visited == ids_.size();
}

IdSet Digraph::reachable_from(ProcessId from) const {
  const auto start = index_of(from);
  if (!start) return {};
  BitSet seen;
  seen.reset_bits(ids_.size());
  std::vector<ProcessId> collected;
  std::vector<std::size_t> stack = {*start};
  seen.set(*start);
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    collected.push_back(ids_[u]);
    for (std::size_t v : out_[u]) {
      if (!seen.test(v)) {
        seen.set(v);
        stack.push_back(v);
      }
    }
  }
  // Collect in DFS order, sort once: inserting into the sorted set inside
  // the loop is O(reach²) in memmoves.
  return IdSet(std::move(collected));
}

bool operator==(const Digraph& a, const Digraph& b) {
  if (a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count())
    return false;
  if (a.vertices() != b.vertices()) return false;
  for (std::size_t u = 0; u < a.ids_.size(); ++u) {
    const ProcessId id = a.ids_[u];
    if (a.out_neighbors(id) != b.out_neighbors(id)) return false;
  }
  return true;
}

}  // namespace bftcup::graph

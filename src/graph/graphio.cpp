#include "graph/graphio.hpp"

#include <charconv>
#include <sstream>

namespace bftcup::graph::io {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  s = trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

}  // namespace

std::string to_dot(const Digraph& g, const IdSet& faulty) {
  std::ostringstream out;
  out << "digraph knowledge {\n";
  for (ProcessId v : g.vertices()) {
    out << "  p" << v.raw();
    if (faulty.contains(v)) out << " [peripheries=2, color=red]";
    out << ";\n";
  }
  for (ProcessId v : g.vertices()) {
    for (ProcessId w : g.out_neighbors(v)) {
      out << "  p" << v.raw() << " -> p" << w.raw() << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::optional<Digraph> parse_edge_list(std::string_view text) {
  Digraph g;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, end == std::string_view::npos ? std::string_view::npos
                                           : end - pos);
    pos = end == std::string_view::npos ? text.size() + 1 : end + 1;

    line = trim(line);
    if (line.empty() || line.front() == '#') continue;

    if (line.substr(0, 2) == "v ") {
      const auto v = parse_u64(line.substr(2));
      if (!v) return std::nullopt;
      g.add_vertex(ProcessId(*v));
      continue;
    }
    const std::size_t arrow = line.find("->");
    if (arrow == std::string_view::npos) return std::nullopt;
    const auto a = parse_u64(line.substr(0, arrow));
    const auto b = parse_u64(line.substr(arrow + 2));
    if (!a || !b) return std::nullopt;
    g.add_edge(ProcessId(*a), ProcessId(*b));
  }
  return g;
}

std::string to_edge_list(const Digraph& g) {
  std::ostringstream out;
  for (ProcessId v : g.vertices()) {
    if (g.out_neighbors(v).empty() && g.in_neighbors(v).empty()) {
      out << "v " << v.raw() << "\n";
    }
  }
  for (ProcessId v : g.vertices()) {
    for (ProcessId w : g.out_neighbors(v)) {
      out << v.raw() << " -> " << w.raw() << "\n";
    }
  }
  return out.str();
}

}  // namespace bftcup::graph::io

// Parameterized random-graph families for tests and benchmarks.
//
// Construction is "guaranteed by design, then verified": each generator
// builds a graph that satisfies the target model's requirements
// structurally and (for small instances) callers can re-check with the
// omniscient checkers. Randomness only shapes the parts the requirements
// leave free (which sink members a non-sink process knows, periphery
// topology, which processes are Byzantine).
#pragma once

#include "common/random.hpp"
#include "graph/digraph.hpp"

namespace bftcup::graph::generators {

struct GeneratedSystem {
  Digraph graph;
  IdSet faulty;
  std::size_t f = 0;
  IdSet sink;  ///< ground-truth sink/core of G_safe
};

struct BftCupParams {
  std::size_t f = 1;
  /// Total sink size; must be >= 2f+1 + byzantine_in_sink.
  std::size_t sink_size = 4;
  std::size_t non_sink = 4;
  /// How many of the Byzantine processes sit inside the sink (<= f).
  std::size_t byzantine_in_sink = 1;
  /// Extra random knowledge edges among non-sink processes, per process.
  std::size_t extra_edges = 1;
};

/// A random graph satisfying the BFT-CUP requirements (Theorem 1):
/// the sink is a complete component (κ = size-1 >= f+1 after removing
/// faults), every correct non-sink process knows >= f+1+byz distinct sink
/// members, and non-sink processes form a random forest of knowledge with
/// `extra_edges` chords.
[[nodiscard]] GeneratedSystem random_bft_cup(const BftCupParams& params,
                                             Rng& rng);

struct CupftParams {
  std::size_t f = 1;
  /// Core size; must be >= 2f+1 + byzantine_in_core, and large enough that
  /// the safe core's connectivity strictly dominates (core is complete).
  std::size_t core_size = 5;
  std::size_t periphery = 5;
  std::size_t byzantine_in_core = 1;
};

/// A random graph satisfying the BFT-CUPFT requirements (Section V):
/// complete core (strict connectivity maximum), periphery arranged as a
/// simple cycle (κ = 1, so no periphery subset can pass the predicate with
/// g >= 1), each periphery process knowing >= f+1+byz distinct core members.
[[nodiscard]] GeneratedSystem random_cupft(const CupftParams& params,
                                           Rng& rng);

/// Two BFT-CUP systems bridged by a single pair of mutual edges — the
/// Fig. 2c shape generalized; used by the impossibility experiments.
[[nodiscard]] GeneratedSystem random_split_brain(const BftCupParams& side,
                                                 Rng& rng);

// ---------------------------------------------------------------------------
// Scale families (bench_scale): hierarchical topologies whose edge count and
// per-node knowledge reach stay O(n) as `total` grows, so discovery traffic
// and per-view search cost are sub-quadratic. Both keep the ground-truth sink
// a small complete committee — n = 100k changes how far knowledge must
// travel, not how hard the sink is to certify.

struct HierarchyParams {
  std::size_t f = 1;
  /// Complete root committee — the ground-truth sink. Must satisfy
  /// root_size >= 3f+1 (the silent faulty live here, and the root runs
  /// consensus among itself).
  std::size_t root_size = 7;
  /// Members per non-root committee (arranged as a directed ring, κ = 1, so
  /// no committee below the root can pass the predicate with g >= 1).
  std::size_t committee_size = 6;
  /// Child committees attached under each committee (tree depth is
  /// logarithmic in `total`).
  std::size_t branching = 8;
  /// Contacts each member keeps in its parent committee.
  std::size_t parent_fanout = 2;
  /// Total processes; committees are added until this floor is reached.
  std::size_t total = 1000;
};

/// Committee-of-committees: a complete root committee with a branching tree
/// of ring committees below it. Every member points at its ring successor
/// and `parent_fanout` random members of its parent committee, so knowledge
/// (and discovery traffic) flows strictly upward: each process reaches only
/// its own committee ring, the committees on its root path, and the root —
/// O(depth * committee_size) regardless of `total`. The `f` faulty processes
/// are silent root members; the root minus them is the unique certifiable
/// sink (κ = root_size - f - 1 >= f+1).
[[nodiscard]] GeneratedSystem committee_of_committees(
    const HierarchyParams& params, Rng& rng);

struct AdhocMeshParams {
  std::size_t f = 1;
  /// Complete sink clique; must be >= 3f+1 with all faulty placed inside.
  std::size_t sink_size = 7;
  /// Silent faulty inside the sink (<= f; the remainder are silent
  /// periphery processes in the outermost layer).
  std::size_t byzantine_in_sink = 1;
  /// Periphery layers; layer 1 points into the sink, layer L into L-1.
  std::size_t layers = 4;
  /// Contacts per periphery process in the next-lower layer. Layer 1 keeps
  /// max(fanout, f+1+byzantine_in_sink) sink contacts so every correct
  /// process still reaches a correct sink member.
  std::size_t fanout = 3;
  /// Total processes; periphery layers split the remainder evenly.
  std::size_t total = 1000;
};

/// Ad-hoc mesh: a complete sink clique with a layered DAG periphery — the
/// paper's ad-hoc deployment shape at scale. Every periphery process is its
/// own singleton SCC (edges only point toward lower layers), so the search
/// never enumerates periphery subsets, and per-node knowledge reach is
/// O(fanout^layers), independent of `total`.
[[nodiscard]] GeneratedSystem adhoc_mesh(const AdhocMeshParams& params,
                                         Rng& rng);

}  // namespace bftcup::graph::generators

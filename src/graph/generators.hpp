// Parameterized random-graph families for tests and benchmarks.
//
// Construction is "guaranteed by design, then verified": each generator
// builds a graph that satisfies the target model's requirements
// structurally and (for small instances) callers can re-check with the
// omniscient checkers. Randomness only shapes the parts the requirements
// leave free (which sink members a non-sink process knows, periphery
// topology, which processes are Byzantine).
#pragma once

#include "common/random.hpp"
#include "graph/digraph.hpp"

namespace bftcup::graph::generators {

struct GeneratedSystem {
  Digraph graph;
  IdSet faulty;
  std::size_t f = 0;
  IdSet sink;  ///< ground-truth sink/core of G_safe
};

struct BftCupParams {
  std::size_t f = 1;
  /// Total sink size; must be >= 2f+1 + byzantine_in_sink.
  std::size_t sink_size = 4;
  std::size_t non_sink = 4;
  /// How many of the Byzantine processes sit inside the sink (<= f).
  std::size_t byzantine_in_sink = 1;
  /// Extra random knowledge edges among non-sink processes, per process.
  std::size_t extra_edges = 1;
};

/// A random graph satisfying the BFT-CUP requirements (Theorem 1):
/// the sink is a complete component (κ = size-1 >= f+1 after removing
/// faults), every correct non-sink process knows >= f+1+byz distinct sink
/// members, and non-sink processes form a random forest of knowledge with
/// `extra_edges` chords.
[[nodiscard]] GeneratedSystem random_bft_cup(const BftCupParams& params,
                                             Rng& rng);

struct CupftParams {
  std::size_t f = 1;
  /// Core size; must be >= 2f+1 + byzantine_in_core, and large enough that
  /// the safe core's connectivity strictly dominates (core is complete).
  std::size_t core_size = 5;
  std::size_t periphery = 5;
  std::size_t byzantine_in_core = 1;
};

/// A random graph satisfying the BFT-CUPFT requirements (Section V):
/// complete core (strict connectivity maximum), periphery arranged as a
/// simple cycle (κ = 1, so no periphery subset can pass the predicate with
/// g >= 1), each periphery process knowing >= f+1+byz distinct core members.
[[nodiscard]] GeneratedSystem random_cupft(const CupftParams& params,
                                           Rng& rng);

/// Two BFT-CUP systems bridged by a single pair of mutual edges — the
/// Fig. 2c shape generalized; used by the impossibility experiments.
[[nodiscard]] GeneratedSystem random_split_brain(const BftCupParams& side,
                                                 Rng& rng);

}  // namespace bftcup::graph::generators

#include "graph/paths.hpp"

#include <map>

#include "graph/maxflow.hpp"

namespace bftcup::graph {

std::vector<std::vector<ProcessId>> disjoint_paths(const Digraph& g,
                                                   ProcessId from,
                                                   ProcessId to) {
  std::vector<std::vector<ProcessId>> result;
  const auto src = g.index_of(from);
  const auto dst = g.index_of(to);
  if (!src || !dst || *src == *dst) return result;

  const std::size_t n = g.vertex_count();
  constexpr int kInf = 1 << 29;

  // Same construction as connectivity.cpp: node 2v = v_in, 2v+1 = v_out,
  // but real edges carry capacity 1 so the flow decomposition below walks
  // concrete unit paths.
  MaxFlow flow(2 * n);
  for (std::size_t v = 0; v < n; ++v) {
    const int cap = (v == *src || v == *dst) ? kInf : 1;
    flow.add_edge(2 * v, 2 * v + 1, cap);
  }
  // edge index -> (u, v) in graph terms.
  std::vector<std::pair<std::size_t, std::size_t>> real_edges;
  std::vector<std::size_t> flow_edge_ids;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v : g.out(u)) {
      flow_edge_ids.push_back(flow.add_edge(2 * u + 1, 2 * v, 1));
      real_edges.emplace_back(u, v);
    }
  }
  const int total = flow.run(2 * *src + 1, 2 * *dst, kInf);
  if (total <= 0) return result;

  // Successor map of saturated edges. Internal vertices carry at most one
  // unit, so every vertex except `from` has at most one used out-edge;
  // `from` has `total` of them.
  std::multimap<std::size_t, std::size_t> next;
  for (std::size_t i = 0; i < real_edges.size(); ++i) {
    if (flow.flow_on(flow_edge_ids[i]) > 0) {
      next.emplace(real_edges[i].first, real_edges[i].second);
    }
  }

  // Detach the first hops before walking: the walk erases map entries and
  // must not invalidate this iteration.
  std::vector<std::size_t> first_hops;
  for (auto [it, end] = next.equal_range(*src); it != end; ++it) {
    first_hops.push_back(it->second);
  }
  next.erase(*src);

  for (std::size_t hop0 : first_hops) {
    std::vector<ProcessId> path = {from};
    std::size_t at = hop0;
    std::size_t guard = 2 * n + 2;  // breaks on any decomposition anomaly
    while (at != *dst && at != *src && guard-- > 0) {
      path.push_back(g.id_of(at));
      auto hop = next.find(at);
      if (hop == next.end()) {
        path.clear();
        break;
      }
      const std::size_t target = hop->second;
      next.erase(hop);
      at = target;
    }
    if (!path.empty() && at == *dst) {
      path.push_back(to);
      result.push_back(std::move(path));
    }
  }
  return result;
}

}  // namespace bftcup::graph

// Witness extraction for node-disjoint paths.
//
// connectivity.hpp answers "how many" internally node-disjoint paths exist;
// experiments and diagnostics also want the paths themselves (e.g. to show
// WHY a graph satisfies Definition 1/2, or which relays corroborated an RRB
// delivery). Paths are recovered by decomposing a unit max-flow on the
// vertex-split network.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace bftcup::graph {

/// A maximum cardinality set of internally node-disjoint paths from `from`
/// to `to`. Each path lists the full vertex sequence including endpoints;
/// a direct edge yields the 2-vertex path {from, to}. Empty if unreachable
/// or endpoints invalid/equal.
[[nodiscard]] std::vector<std::vector<ProcessId>> disjoint_paths(
    const Digraph& g, ProcessId from, ProcessId to);

}  // namespace bftcup::graph

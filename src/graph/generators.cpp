#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>

namespace bftcup::graph::generators {
namespace {

/// Picks `count` distinct elements of `pool` uniformly.
IdSet pick_distinct(const std::vector<ProcessId>& pool, std::size_t count,
                    Rng& rng) {
  assert(count <= pool.size());
  std::vector<ProcessId> shuffled = pool;
  rng.shuffle(shuffled);
  IdSet out;
  for (std::size_t i = 0; i < count; ++i) out.insert(shuffled[i]);
  return out;
}

void add_complete(Digraph& g, const std::vector<ProcessId>& members) {
  for (ProcessId a : members) {
    for (ProcessId b : members) {
      if (a != b) g.add_edge(a, b);
    }
  }
}

}  // namespace

GeneratedSystem random_bft_cup(const BftCupParams& params, Rng& rng) {
  assert(params.byzantine_in_sink <= params.f);
  assert(params.sink_size >= 2 * params.f + 1 + params.byzantine_in_sink);

  GeneratedSystem sys;
  sys.f = params.f;

  std::vector<ProcessId> sink_ids;
  for (std::size_t i = 0; i < params.sink_size; ++i) {
    sink_ids.emplace_back(i + 1);
  }
  std::vector<ProcessId> non_sink_ids;
  for (std::size_t i = 0; i < params.non_sink; ++i) {
    non_sink_ids.emplace_back(100 + i);
  }

  // Complete sink: κ = |sink|-1 >= f+1 survives removing <= f members.
  add_complete(sys.graph, sink_ids);
  for (ProcessId id : sink_ids) sys.sink.insert(id);

  // Byzantine placement: `byzantine_in_sink` inside, remainder outside.
  sys.faulty = pick_distinct(sink_ids, params.byzantine_in_sink, rng);
  const std::size_t byz_outside =
      std::min(params.f - params.byzantine_in_sink, non_sink_ids.size());
  sys.faulty.insert_all(pick_distinct(non_sink_ids, byz_outside, rng));

  // Every non-sink process knows f+1+byz_in_sink distinct sink members, so
  // at least f+1 of its targets are correct: with a complete sink that gives
  // f+1 node-disjoint paths to every correct sink member in G_safe.
  const std::size_t fan_in =
      std::min(params.f + 1 + params.byzantine_in_sink, sink_ids.size());
  for (std::size_t i = 0; i < non_sink_ids.size(); ++i) {
    const ProcessId id = non_sink_ids[i];
    for (ProcessId target : pick_distinct(sink_ids, fan_in, rng)) {
      sys.graph.add_edge(id, target);
    }
    // Forward chain keeps the non-sink region acyclic (a unique sink SCC).
    if (i + 1 < non_sink_ids.size()) {
      sys.graph.add_edge(id, non_sink_ids[i + 1]);
    }
    // Optional extra forward chords.
    for (std::size_t e = 0; e < params.extra_edges; ++e) {
      if (i + 2 < non_sink_ids.size()) {
        const std::size_t j =
            i + 2 + rng.next_below(non_sink_ids.size() - i - 2);
        sys.graph.add_edge(id, non_sink_ids[j]);
      }
    }
  }
  return sys;
}

GeneratedSystem random_cupft(const CupftParams& params, Rng& rng) {
  assert(params.byzantine_in_core <= params.f);
  assert(params.core_size >= 2 * params.f + 1 + params.byzantine_in_core);

  GeneratedSystem sys;
  sys.f = params.f;

  std::vector<ProcessId> core_ids;
  for (std::size_t i = 0; i < params.core_size; ++i) {
    core_ids.emplace_back(i + 1);
  }
  std::vector<ProcessId> periphery_ids;
  for (std::size_t i = 0; i < params.periphery; ++i) {
    periphery_ids.emplace_back(100 + i);
  }

  add_complete(sys.graph, core_ids);
  for (ProcessId id : core_ids) sys.sink.insert(id);
  sys.faulty = pick_distinct(core_ids, params.byzantine_in_core, rng);

  // Safe-core connectivity: k(K_m) = floor((m+1)/2) by the paper's isSink*
  // definition (g <= min(κ-1, (m-1)/2)); property C2 demands that many
  // node-disjoint periphery->core paths, so each periphery process knows
  // k_safe + byz distinct core members (>= k_safe of them correct).
  const std::size_t m_safe = params.core_size - params.byzantine_in_core;
  const std::size_t k_safe = (m_safe + 1) / 2;
  const std::size_t fan_in =
      std::min(k_safe + params.byzantine_in_core, core_ids.size());

  for (std::size_t i = 0; i < periphery_ids.size(); ++i) {
    const ProcessId id = periphery_ids[i];
    for (ProcessId target : pick_distinct(core_ids, fan_in, rng)) {
      sys.graph.add_edge(id, target);
    }
    // A simple cycle (κ = 1): periphery subsets can never witness g >= 1,
    // keeping the core's connectivity a strict maximum (C1).
    if (periphery_ids.size() > 1) {
      sys.graph.add_edge(id, periphery_ids[(i + 1) % periphery_ids.size()]);
    }
  }
  return sys;
}

GeneratedSystem random_split_brain(const BftCupParams& side, Rng& rng) {
  GeneratedSystem a = random_bft_cup(side, rng);
  GeneratedSystem b = random_bft_cup(side, rng);

  GeneratedSystem sys;
  sys.f = side.f;
  // Side A keeps its ids; side B is shifted by 1000.
  constexpr std::uint64_t kOffset = 1000;
  sys.graph = a.graph;
  for (ProcessId v : b.graph.vertices()) {
    const ProcessId shifted(v.raw() + kOffset);
    sys.graph.add_vertex(shifted);
    for (ProcessId w : b.graph.out_neighbors(v)) {
      sys.graph.add_edge(shifted, ProcessId(w.raw() + kOffset));
    }
  }
  // Bridge one Byzantine sink member per side (the fig. 2c shape: in the
  // combined system everyone is correct, and the bridges can be delayed to
  // make each side's execution indistinguishable from its solo system).
  assert(!a.faulty.empty() && !b.faulty.empty());
  const ProcessId bridge_a = *a.faulty.begin();
  const ProcessId bridge_b(b.faulty.begin()->raw() + kOffset);
  sys.graph.add_edge(bridge_a, bridge_b);
  sys.graph.add_edge(bridge_b, bridge_a);
  return sys;
}

GeneratedSystem committee_of_committees(const HierarchyParams& params,
                                        Rng& rng) {
  assert(params.f >= 1);
  assert(params.root_size >= 3 * params.f + 1);
  assert(params.committee_size >= 2);
  assert(params.branching >= 1);
  assert(params.parent_fanout >= 1);

  GeneratedSystem sys;
  sys.f = params.f;

  std::vector<ProcessId> root_ids;
  for (std::size_t i = 0; i < params.root_size; ++i) {
    root_ids.emplace_back(i + 1);
  }
  add_complete(sys.graph, root_ids);
  for (ProcessId id : root_ids) sys.sink.insert(id);
  sys.faulty = pick_distinct(root_ids, params.f, rng);

  // Grow the committee tree breadth-first until the population floor is
  // reached. Committee 0 is the root; children are rings.
  std::vector<std::vector<ProcessId>> committees{root_ids};
  std::size_t produced = params.root_size;
  std::uint64_t next_id = 100;
  for (std::size_t parent = 0;
       parent < committees.size() && produced < params.total; ++parent) {
    for (std::size_t child = 0;
         child < params.branching && produced < params.total; ++child) {
      std::vector<ProcessId> members;
      for (std::size_t i = 0; i < params.committee_size; ++i) {
        members.emplace_back(next_id++);
      }
      produced += members.size();
      const std::size_t fan =
          std::min(params.parent_fanout, committees[parent].size());
      for (std::size_t i = 0; i < members.size(); ++i) {
        // Ring successor (κ = 1 committee) + upward contacts; knowledge
        // never flows down, so every non-root SCC is exactly one ring.
        sys.graph.add_edge(members[i], members[(i + 1) % members.size()]);
        for (ProcessId target : pick_distinct(committees[parent], fan, rng)) {
          sys.graph.add_edge(members[i], target);
        }
      }
      committees.push_back(std::move(members));
    }
  }
  return sys;
}

GeneratedSystem adhoc_mesh(const AdhocMeshParams& params, Rng& rng) {
  assert(params.f >= 1);
  assert(params.byzantine_in_sink <= params.f);
  assert(params.sink_size >= 3 * params.f + 1);
  assert(params.layers >= 1);
  assert(params.fanout >= 1);
  assert(params.total > params.sink_size);

  GeneratedSystem sys;
  sys.f = params.f;

  std::vector<ProcessId> sink_ids;
  for (std::size_t i = 0; i < params.sink_size; ++i) {
    sink_ids.emplace_back(i + 1);
  }
  add_complete(sys.graph, sink_ids);
  for (ProcessId id : sink_ids) sys.sink.insert(id);
  sys.faulty = pick_distinct(sink_ids, params.byzantine_in_sink, rng);

  // Periphery: `layers` equal slices of the remaining population, ids
  // ascending outward. Edges only point at the next-lower layer, so every
  // periphery process is a singleton SCC.
  const std::size_t periphery = params.total - params.sink_size;
  const std::size_t per_layer = std::max<std::size_t>(1, periphery / params.layers);
  std::vector<ProcessId> lower = sink_ids;
  std::uint64_t next_id = 100;
  std::size_t placed = 0;
  for (std::size_t layer = 1; layer <= params.layers && placed < periphery;
       ++layer) {
    std::size_t size = layer == params.layers ? periphery - placed : per_layer;
    size = std::min(size, periphery - placed);
    std::vector<ProcessId> current;
    for (std::size_t i = 0; i < size; ++i) current.emplace_back(next_id++);
    placed += size;
    // Layer 1 keeps enough sink contacts that >= f+1 of them are correct
    // even if every faulty sink member lands in its contact set.
    const std::size_t fan = std::min(
        layer == 1
            ? std::max(params.fanout, params.f + 1 + params.byzantine_in_sink)
            : params.fanout,
        lower.size());
    for (ProcessId id : current) {
      for (ProcessId target : pick_distinct(lower, fan, rng)) {
        sys.graph.add_edge(id, target);
      }
    }
    lower = std::move(current);
  }
  // Faulty not placed in the sink are silent outermost-layer processes.
  const std::size_t byz_outside =
      std::min(params.f - params.byzantine_in_sink, lower.size());
  sys.faulty.insert_all(pick_distinct(lower, byz_outside, rng));
  return sys;
}

}  // namespace bftcup::graph::generators

// Decoder matching codec::Encoder. All reads are checked; a malformed buffer
// (e.g. crafted by a Byzantine process) flips the decoder into a failed state
// instead of reading out of bounds, and every subsequent read reports failure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace bftcup::codec {

class Decoder {
 public:
  explicit Decoder(BytesView data) : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> get_u8();
  [[nodiscard]] std::optional<std::uint32_t> get_u32();
  [[nodiscard]] std::optional<std::uint64_t> get_u64();
  [[nodiscard]] std::optional<std::uint64_t> get_varint();
  [[nodiscard]] std::optional<Bytes> get_bytes();
  [[nodiscard]] std::optional<std::string> get_string();
  [[nodiscard]] std::optional<ProcessId> get_id();
  [[nodiscard]] std::optional<IdSet> get_id_set();

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  [[nodiscard]] bool need(std::size_t n);

  BytesView data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace bftcup::codec

#include "codec/decoder.hpp"

namespace bftcup::codec {

bool Decoder::need(std::size_t n) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::optional<std::uint8_t> Decoder::get_u8() {
  if (!need(1)) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint32_t> Decoder::get_u32() {
  if (!need(4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> Decoder::get_u64() {
  if (!need(8)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::optional<std::uint64_t> Decoder::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (!need(1)) return std::nullopt;
    const std::uint8_t b = data_[pos_++];
    if (shift >= 63 && (b & 0x7f) > 1) {  // overflow past 64 bits
      failed_ = true;
      return std::nullopt;
    }
    if (shift > 0 && b == 0) {
      // Overlong encoding: a multi-byte varint whose final byte contributes
      // nothing (e.g. 0x80 0x00 for zero). The encoder never emits these, so
      // any occurrence is a hostile frame; rejecting keeps the encoding
      // canonical (one value, one byte string) for signed payloads.
      failed_ = true;
      return std::nullopt;
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) {
      failed_ = true;
      return std::nullopt;
    }
  }
}

std::optional<Bytes> Decoder::get_bytes() {
  const auto len = get_varint();
  if (!len || !need(*len)) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

std::optional<std::string> Decoder::get_string() {
  const auto len = get_varint();
  if (!len || !need(*len)) return std::nullopt;
  // Iterator-range construction widens each uint8_t to char individually —
  // same bytes as the old reinterpret_cast of data(), with no cast at all.
  std::string out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

std::optional<ProcessId> Decoder::get_id() {
  const auto raw = get_varint();
  if (!raw) return std::nullopt;
  return ProcessId(*raw);
}

std::optional<IdSet> Decoder::get_id_set() {
  const auto count = get_varint();
  if (!count) return std::nullopt;
  // A count larger than the remaining bytes is malformed (ids are >= 1 byte);
  // reject before looping so a huge count cannot stall the decoder.
  if (*count > remaining()) {
    failed_ = true;
    return std::nullopt;
  }
  IdSet out;
  std::optional<ProcessId> prev;
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto id = get_id();
    if (!id) return std::nullopt;
    // The encoder walks a sorted set, so ids arrive strictly ascending. An
    // out-of-order or duplicate id means the buffer was not produced by
    // put_id_set; rejecting keeps the encoding canonical (two distinct byte
    // strings can never decode to the same set).
    if (prev && *id <= *prev) {
      failed_ = true;
      return std::nullopt;
    }
    prev = *id;
    out.insert(*id);
  }
  return out;
}

}  // namespace bftcup::codec

#include "codec/encoder.hpp"

namespace bftcup::codec {

void Encoder::put_u8(std::uint8_t v) { out_.push_back(v); }

void Encoder::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out_.push_back(static_cast<std::uint8_t>(v));
}

void Encoder::put_bytes(BytesView data) {
  put_varint(data.size());
  out_.insert(out_.end(), data.begin(), data.end());
}

void Encoder::put_string(std::string_view s) {
  put_varint(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
}

void Encoder::put_id(ProcessId id) { put_varint(id.raw()); }

void Encoder::put_id_set(const IdSet& ids) {
  put_varint(ids.size());
  for (ProcessId id : ids) put_id(id);
}

}  // namespace bftcup::codec

// Deterministic binary encoding for signed payloads and wire messages.
//
// Signatures are computed over bytes, so payload encoding must be canonical:
// little-endian fixed ints, LEB128 varints for lengths, and IdSets emitted in
// sorted order (FlatSet already guarantees that).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace bftcup::codec {

class Encoder {
 public:
  Encoder() = default;

  /// Encodes into `reuse`'s storage: the buffer is cleared but its capacity
  /// is kept, so hot paths that encode the same payload shape repeatedly
  /// (signature verification loops) stop allocating per call. Retrieve the
  /// result with take().
  explicit Encoder(Bytes&& reuse) : out_(std::move(reuse)) { out_.clear(); }

  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_varint(std::uint64_t v);
  void put_bytes(BytesView data);          // length-prefixed
  void put_string(std::string_view s);     // length-prefixed
  void put_id(ProcessId id);
  void put_id_set(const IdSet& ids);       // count-prefixed, sorted

  [[nodiscard]] const Bytes& bytes() const { return out_; }
  [[nodiscard]] Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

}  // namespace bftcup::codec

// Self-describing wire frame for msg::Message — the byte format the
// hostile-wire layer (sim/wire_mutator.hpp) mutates and the hardened decode
// path parses.
//
// The simulator normally delivers structs by reference and only uses the
// codec for signed payloads and the bytes_sent metric. The hostile-wire
// delivery mode instead round-trips every targeted delivery through
// encode_frame -> (mutation) -> decode_frame, so the real codec::Decoder and
// the full message-parse path face every byte the adversary can put on the
// wire. decode_frame is therefore a hard trust boundary: any malformed frame
// must come back as nullopt — never a crash, never UB, never a partially
// initialized message.
//
// The frame layout matches Message::encoded_size()'s legacy metric encoding
// except for one extra byte: an explicit cert-presence flag. The legacy
// stream omits absent optional fields, which is fine for a size metric but
// ambiguous to parse; the metric encoding is pinned by the golden digests
// (RunReport::digest() hashes bytes_sent) and deliberately left untouched.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "msg/message.hpp"

namespace bftcup::msg {

/// Encodes `m` as a self-describing frame (see file comment for the layout).
[[nodiscard]] Bytes encode_frame(const Message& m);

/// Strict inverse of encode_frame. Returns nullopt when the frame is
/// malformed in any way: unknown MsgType, failed or non-canonical primitive
/// read (codec::Decoder rejects overlong varints), a signature blob that is
/// not exactly the Signature width, a count prefix larger than the bytes
/// that could back it, a cert-presence flag outside {0,1}, or trailing
/// bytes after a complete parse (Decoder::at_end() is enforced at the
/// exit). Never throws and never reads out of bounds.
[[nodiscard]] std::optional<Message> decode_frame(BytesView frame);

}  // namespace bftcup::msg

// Immutable, refcounted message payload.
//
// A broadcast to n peers used to deep-copy the flat Message (PD vectors,
// quorum certs) once per recipient and again into every queued event.
// Protocols now build the payload once, freeze it behind a MessageRef, and
// every fan-out edge is a refcount bump. The canonical wire size is computed
// once at construction, so the simulator charges traffic metrics per send
// without re-encoding the payload each time.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "msg/message.hpp"

namespace bftcup::msg {

class MessageRef {
 public:
  /// Null ref. Only ever observed inside the simulator (timer events carry
  /// no payload); a delivery always holds a non-null ref.
  MessageRef() = default;

  /// Takes ownership of `m`. The payload is immutable from here on — anyone
  /// wanting to alter a message (e.g. RRB path extension, Byzantine
  /// mutation) copies `**this` into a fresh Message first.
  [[nodiscard]] static MessageRef make(Message m) {
    return MessageRef(std::make_shared<const Payload>(std::move(m)));
  }

  [[nodiscard]] const Message& operator*() const { return payload_->message; }
  [[nodiscard]] const Message* operator->() const {
    return &payload_->message;
  }
  [[nodiscard]] explicit operator bool() const { return payload_ != nullptr; }

  /// Canonical wire size in bytes, cached at construction.
  [[nodiscard]] std::size_t encoded_size() const {
    return payload_->encoded_size;
  }

 private:
  struct Payload {
    explicit Payload(Message m)
        : message(std::move(m)), encoded_size(message.encoded_size()) {}
    Message message;
    std::size_t encoded_size;
  };

  explicit MessageRef(std::shared_ptr<const Payload> payload)
      : payload_(std::move(payload)) {}

  std::shared_ptr<const Payload> payload_;
};

}  // namespace bftcup::msg

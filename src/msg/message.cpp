#include "msg/message.hpp"

#include "codec/encoder.hpp"

namespace bftcup::msg {

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kGetPds:
      return "GETPDS";
    case MsgType::kSetPds:
      return "SETPDS";
    case MsgType::kGetDecidedVal:
      return "GETDECIDEDVAL";
    case MsgType::kDecidedVal:
      return "DECIDEDVAL";
    case MsgType::kPbftPrePrepare:
      return "PBFT-PREPREPARE";
    case MsgType::kPbftPrepare:
      return "PBFT-PREPARE";
    case MsgType::kPbftCommit:
      return "PBFT-COMMIT";
    case MsgType::kPbftViewChange:
      return "PBFT-VIEWCHANGE";
    case MsgType::kPbftNewView:
      return "PBFT-NEWVIEW";
    case MsgType::kPbftDecide:
      return "PBFT-DECIDE";
    case MsgType::kRrbForward:
      return "RRB-FORWARD";
  }
  return "?";
}

Bytes SignedPd::payload(ProcessId owner, const IdSet& pd) {
  Bytes out;
  payload_into(owner, pd, out);
  return out;
}

void SignedPd::payload_into(ProcessId owner, const IdSet& pd, Bytes& out) {
  codec::Encoder enc(std::move(out));
  enc.put_string("pd");  // domain separation from PBFT payloads
  enc.put_id(owner);
  enc.put_id_set(pd);
  out = enc.take();
}

Bytes pbft_payload(MsgType phase, std::uint32_t view, Value value) {
  codec::Encoder enc;
  enc.put_string("pbft");
  enc.put_u8(static_cast<std::uint8_t>(phase));
  enc.put_u32(view);
  enc.put_u64(value);
  return enc.take();
}

Bytes decided_val_payload(Value value) {
  codec::Encoder enc;
  enc.put_string("dval");  // domain separation from PBFT and PD payloads
  enc.put_u64(value);
  return enc.take();
}

std::size_t Message::encoded_size() const {
  codec::Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(type));
  enc.put_varint(pds.size());
  for (const SignedPd& spd : pds) {
    enc.put_id(spd.owner);
    enc.put_id_set(spd.pd);
    enc.put_bytes(BytesView(spd.sig.bytes.data(), spd.sig.bytes.size()));
  }
  enc.put_u64(value);
  enc.put_u32(view);
  enc.put_bytes(BytesView(sig.bytes.data(), sig.bytes.size()));
  if (cert) {
    enc.put_u32(cert->view);
    enc.put_u64(cert->value);
    enc.put_varint(cert->shares.size());
    for (const SigShare& share : cert->shares) {
      enc.put_id(share.signer);
      enc.put_bytes(
          BytesView(share.sig.bytes.data(), share.sig.bytes.size()));
    }
  }
  enc.put_id(origin);
  enc.put_id_set(origin_pd);
  enc.put_varint(path.size());
  for (ProcessId id : path) enc.put_id(id);
  return enc.bytes().size();
}

}  // namespace bftcup::msg

// Wire messages for every protocol in the library.
//
// One flat struct rather than a std::variant: the simulator routes opaque
// messages, Byzantine behaviors mutate fields freely, and the codec gives a
// canonical byte size for metrics. Unused fields stay empty and cost little.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "crypto/keys.hpp"

namespace bftcup::msg {

enum class MsgType : std::uint8_t {
  // Discovery (Algorithm 1).
  kGetPds,
  kSetPds,
  // Consensus wrapper (Algorithm 3).
  kGetDecidedVal,
  kDecidedVal,
  // PBFT-style consensus core among sink/core members.
  kPbftPrePrepare,
  kPbftPrepare,
  kPbftCommit,
  kPbftViewChange,
  kPbftNewView,
  /// Decision certificate: value + quorum of COMMIT signatures. Lets
  /// replicas that missed the commit quorum (e.g. partitioned by an
  /// equivocating leader) adopt the decision safely.
  kPbftDecide,
  // Unauthenticated reachable-reliable-broadcast baseline (original BFT-CUP
  // communication primitive).
  kRrbForward,
};

/// Number of MsgType values (for per-type counters, e.g. the trace's
/// message histogram). Keep in sync with the enum above.
inline constexpr std::size_t kMsgTypeCount =
    static_cast<std::size_t>(MsgType::kRrbForward) + 1;

[[nodiscard]] const char* to_string(MsgType type);

/// A participant-detector output signed by its owner: ⟨i, PD_i⟩_i.
/// Correct processes sign once at startup; Byzantine processes can sign any
/// *own* PD but cannot forge other owners' entries (Alg. 1, line 1 remark).
struct SignedPd {
  ProcessId owner;
  IdSet pd;
  crypto::Signature sig;

  /// Canonical byte encoding of (owner, pd) — the signed payload.
  [[nodiscard]] static Bytes payload(ProcessId owner, const IdSet& pd);

  /// Same encoding written into `out` (cleared first), reusing its capacity.
  /// Verification loops thread one scratch buffer through every call instead
  /// of allocating a fresh Bytes per signature check.
  static void payload_into(ProcessId owner, const IdSet& pd, Bytes& out);

  friend bool operator==(const SignedPd&, const SignedPd&) = default;
};

/// One signer's signature over a PBFT payload.
struct SigShare {
  ProcessId signer;
  crypto::Signature sig;

  friend bool operator==(const SigShare&, const SigShare&) = default;
};

/// Quorum certificate: `shares.size()` signatures over
/// pbft_payload(phase, view, value).
struct QuorumCert {
  std::uint32_t view = 0;
  Value value = kNoValue;
  std::vector<SigShare> shares;
};

struct Message {
  MsgType type = MsgType::kGetPds;

  // kSetPds.
  std::vector<SignedPd> pds;

  // Value-carrying messages (kDecidedVal, PBFT proposals).
  Value value = kNoValue;

  // PBFT.
  std::uint32_t view = 0;
  crypto::Signature sig{};           ///< sender's signature where applicable
  std::optional<QuorumCert> cert;    ///< prepared-proof in view-change/new-view

  // kRrbForward: unsigned PD relayed along an explicit node path.
  ProcessId origin{};
  IdSet origin_pd;
  std::vector<ProcessId> path;

  /// Canonical wire size in bytes (metrics only; the simulator does not
  /// serialize for delivery).
  [[nodiscard]] std::size_t encoded_size() const;
};

/// Canonical signed payload for PBFT phase messages.
[[nodiscard]] Bytes pbft_payload(MsgType phase, std::uint32_t view,
                                 Value value);

/// Canonical signed payload for DECIDEDVAL replies. Under reliable
/// authenticated channels the bare value was safe; a hostile wire can flip
/// value bits in transit, so the reply is signed and the fetch side counts
/// only verified votes.
[[nodiscard]] Bytes decided_val_payload(Value value);

}  // namespace bftcup::msg

#include "msg/wire.hpp"

#include <algorithm>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"

namespace bftcup::msg {
namespace {

/// A signature travels as a length-prefixed blob; anything but the exact
/// Signature width is a hostile frame.
bool get_signature(codec::Decoder& dec, crypto::Signature& out) {
  const auto blob = dec.get_bytes();
  if (!blob || blob->size() != out.bytes.size()) return false;
  std::copy(blob->begin(), blob->end(), out.bytes.begin());
  return true;
}

void put_signature(codec::Encoder& enc, const crypto::Signature& sig) {
  enc.put_bytes(BytesView(sig.bytes.data(), sig.bytes.size()));
}

}  // namespace

Bytes encode_frame(const Message& m) {
  codec::Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(m.type));
  enc.put_varint(m.pds.size());
  for (const SignedPd& spd : m.pds) {
    enc.put_id(spd.owner);
    enc.put_id_set(spd.pd);
    put_signature(enc, spd.sig);
  }
  enc.put_u64(m.value);
  enc.put_u32(m.view);
  put_signature(enc, m.sig);
  enc.put_u8(m.cert ? 1 : 0);
  if (m.cert) {
    enc.put_u32(m.cert->view);
    enc.put_u64(m.cert->value);
    enc.put_varint(m.cert->shares.size());
    for (const SigShare& share : m.cert->shares) {
      enc.put_id(share.signer);
      put_signature(enc, share.sig);
    }
  }
  enc.put_id(m.origin);
  enc.put_id_set(m.origin_pd);
  enc.put_varint(m.path.size());
  for (ProcessId id : m.path) enc.put_id(id);
  return enc.take();
}

std::optional<Message> decode_frame(BytesView frame) {
  codec::Decoder dec(frame);
  Message m;

  const auto type = dec.get_u8();
  if (!type || *type >= kMsgTypeCount) return std::nullopt;
  m.type = static_cast<MsgType>(*type);

  const auto pd_count = dec.get_varint();
  // Every SignedPd costs at least one byte per field, so a count beyond the
  // remaining bytes is malformed; rejecting before the loop (and before
  // reserve) keeps a hostile count from ballooning allocation.
  if (!pd_count || *pd_count > dec.remaining()) return std::nullopt;
  m.pds.reserve(static_cast<std::size_t>(*pd_count));
  for (std::uint64_t i = 0; i < *pd_count; ++i) {
    SignedPd spd;
    const auto owner = dec.get_id();
    if (!owner) return std::nullopt;
    spd.owner = *owner;
    auto pd = dec.get_id_set();
    if (!pd) return std::nullopt;
    spd.pd = std::move(*pd);
    if (!get_signature(dec, spd.sig)) return std::nullopt;
    m.pds.push_back(std::move(spd));
  }

  const auto value = dec.get_u64();
  if (!value) return std::nullopt;
  m.value = *value;
  const auto view = dec.get_u32();
  if (!view) return std::nullopt;
  m.view = *view;
  if (!get_signature(dec, m.sig)) return std::nullopt;

  const auto has_cert = dec.get_u8();
  if (!has_cert || *has_cert > 1) return std::nullopt;
  if (*has_cert == 1) {
    QuorumCert cert;
    const auto cert_view = dec.get_u32();
    if (!cert_view) return std::nullopt;
    cert.view = *cert_view;
    const auto cert_value = dec.get_u64();
    if (!cert_value) return std::nullopt;
    cert.value = *cert_value;
    const auto share_count = dec.get_varint();
    if (!share_count || *share_count > dec.remaining()) return std::nullopt;
    cert.shares.reserve(static_cast<std::size_t>(*share_count));
    for (std::uint64_t i = 0; i < *share_count; ++i) {
      SigShare share;
      const auto signer = dec.get_id();
      if (!signer) return std::nullopt;
      share.signer = *signer;
      if (!get_signature(dec, share.sig)) return std::nullopt;
      cert.shares.push_back(share);
    }
    m.cert = std::move(cert);
  }

  const auto origin = dec.get_id();
  if (!origin) return std::nullopt;
  m.origin = *origin;
  auto origin_pd = dec.get_id_set();
  if (!origin_pd) return std::nullopt;
  m.origin_pd = std::move(*origin_pd);

  const auto path_count = dec.get_varint();
  if (!path_count || *path_count > dec.remaining()) return std::nullopt;
  m.path.reserve(static_cast<std::size_t>(*path_count));
  for (std::uint64_t i = 0; i < *path_count; ++i) {
    const auto hop = dec.get_id();
    if (!hop) return std::nullopt;
    m.path.push_back(*hop);
  }

  // A complete parse must consume the whole frame: trailing bytes mean the
  // frame was not produced by encode_frame and is rejected outright.
  if (!dec.ok() || !dec.at_end()) return std::nullopt;
  return m;
}

}  // namespace bftcup::msg

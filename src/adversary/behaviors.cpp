#include "adversary/behaviors.hpp"

#include <array>

namespace bftcup::adversary {

ByzantineNode::ByzantineNode(ProcessId id, ByzantineConfig config)
    : sim::Process(id),
      config_(std::move(config)),
      view_(id, config_.advertised_pd) {}

bool ByzantineNode::crashed(const sim::Context& ctx) const {
  return config_.crash_at && ctx.now() >= *config_.crash_at;
}

void ByzantineNode::on_start(sim::Context& ctx) {
  msg::SignedPd own;
  own.owner = id();
  own.pd = config_.advertised_pd;
  own.sig = ctx.signer().sign(
      msg::SignedPd::payload(id(), config_.advertised_pd));
  spds_.push_back(std::move(own));
  signed_own_ = true;

  if (config_.equivocate_consensus) {
    // Fire the equivocation once discovery has plausibly converged. The
    // adversary knows the membership, so no discovery is needed on its side.
    ctx.set_timer(1, 99);
  }
}

void ByzantineNode::equivocate(sim::Context& ctx) {
  if (equivocated_) return;
  equivocated_ = true;
  // Split the members into two halves and push conflicting full-phase
  // traffic at them. Signatures are the node's own, so they verify — the
  // damage is limited to whatever the quorum intersection argument allows.
  const auto& ids = config_.consensus_members.values();
  const std::size_t recipients = ids.size() - (config_.consensus_members.contains(id()) ? 1 : 0);
  // Six distinct payloads total (3 phases x 2 values); each half of the
  // membership receives shared refs, not per-recipient copies.
  constexpr msg::MsgType kPhases[] = {msg::MsgType::kPbftPrePrepare,
                                      msg::MsgType::kPbftPrepare,
                                      msg::MsgType::kPbftCommit};
  auto make_phase_refs = [&](Value v) {
    std::array<msg::MessageRef, 3> refs;
    for (std::size_t i = 0; i < 3; ++i) {
      msg::Message m;
      m.type = kPhases[i];
      m.view = 0;
      m.value = v;
      m.sig = ctx.signer().sign(msg::pbft_payload(kPhases[i], 0, v));
      refs[i] = msg::MessageRef::make(std::move(m));
    }
    return refs;
  };
  const auto refs_a = make_phase_refs(config_.value_a);
  const auto refs_b = make_phase_refs(config_.value_b);
  std::size_t sent = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == id()) continue;
    const auto& refs = (sent++ < recipients / 2) ? refs_a : refs_b;
    for (const msg::MessageRef& ref : refs) ctx.send(ids[i], ref);
  }
}

void ByzantineNode::on_timer(int kind, sim::Context& ctx) {
  if (crashed(ctx)) return;
  if (kind == 99) equivocate(ctx);
}

void ByzantineNode::on_message(ProcessId from, const msg::Message& message,
                               sim::Context& ctx) {
  if (crashed(ctx)) return;
  switch (message.type) {
    case msg::MsgType::kGetPds: {
      msg::Message reply;
      reply.type = msg::MsgType::kSetPds;
      if (config_.relay_pds) {
        reply.pds = spds_;
      } else if (signed_own_) {
        reply.pds = {spds_.front()};
      }
      ctx.send(from, std::move(reply));
      return;
    }
    case msg::MsgType::kSetPds: {
      if (!config_.relay_pds) return;
      for (const msg::SignedPd& spd : message.pds) {
        if (view_.pd_of(spd.owner) != nullptr) continue;
        msg::SignedPd::payload_into(spd.owner, spd.pd, payload_scratch_);
        if (!ctx.verifier().verify(spd.owner, payload_scratch_, spd.sig))
          continue;
        view_.add_pd(spd.owner, spd.pd);
        spds_.push_back(spd);
      }
      return;
    }
    case msg::MsgType::kGetDecidedVal: {
      if (config_.wrong_decided_value) {
        msg::Message reply;
        reply.type = msg::MsgType::kDecidedVal;
        reply.value = *config_.wrong_decided_value;
        // Signed as itself — a Byzantine process can vouch for any value
        // with its own key, so the fetch side's majority count (not the
        // signature check) is what protects validity here.
        reply.sig = ctx.signer().sign(msg::decided_val_payload(reply.value));
        ctx.send(from, std::move(reply));
      }
      return;
    }
    default:
      return;  // ignores consensus traffic (silent within PBFT)
  }
}

}  // namespace bftcup::adversary

// Byzantine process behaviors for fault-injection runs.
//
// The adversary is static (§II-A): faulty processes are fixed up front, may
// know the whole membership Π and may coordinate, but cannot forge other
// processes' signatures (they only hold their own Signer).
#pragma once

#include <memory>
#include <optional>

#include "protocol/knowledge_view.hpp"
#include "sim/process.hpp"

namespace bftcup::adversary {

/// Never sends anything. (Scenario I of Section III: Byzantine sink members
/// remain silent.)
class SilentNode final : public sim::Process {
 public:
  explicit SilentNode(ProcessId id) : sim::Process(id) {}
  void on_start(sim::Context&) override {}
  void on_message(ProcessId, const msg::Message&, sim::Context&) override {}
};

/// Configuration for the active Byzantine node.
struct ByzantineConfig {
  /// PD advertised in discovery. The node signs it itself (it may lie about
  /// its own PD — that is allowed; it cannot lie about others').
  IdSet advertised_pd;
  /// Relay collected (verified) PDs of others? Withholding slows discovery.
  bool relay_pds = true;
  /// Answer GETDECIDEDVAL with this bogus value.
  std::optional<Value> wrong_decided_value;
  /// Equivocate in PBFT: as leader (or impostor) send conflicting
  /// pre-prepares/prepares/commits for `value_a`/`value_b` to the two halves
  /// of `consensus_members`. The adversary knows Π, so the member set is
  /// handed to it by the harness.
  bool equivocate_consensus = false;
  IdSet consensus_members;
  Value value_a = 0;
  Value value_b = 1;
  /// Stop all activity at this time (crash-style fault).
  std::optional<SimTime> crash_at;
};

/// An actively malicious participant: takes part in discovery (possibly
/// with a fake PD), optionally equivocates in consensus and serves wrong
/// decided values.
class ByzantineNode final : public sim::Process {
 public:
  ByzantineNode(ProcessId id, ByzantineConfig config);

  void on_start(sim::Context& ctx) override;
  void on_message(ProcessId from, const msg::Message& message,
                  sim::Context& ctx) override;
  void on_timer(int kind, sim::Context& ctx) override;

 private:
  [[nodiscard]] bool crashed(const sim::Context& ctx) const;
  void equivocate(sim::Context& ctx);

  ByzantineConfig config_;
  std::vector<msg::SignedPd> spds_;  ///< own fake PD + relayed genuine PDs
  protocol::KnowledgeView view_;
  Bytes payload_scratch_;  ///< reused verify buffer (see Discovery)
  bool signed_own_ = false;
  bool equivocated_ = false;
};

}  // namespace bftcup::adversary

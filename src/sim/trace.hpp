// Execution trace: everything the experiment harnesses measure.
#pragma once

#include <array>
#include <map>
#include <optional>

#include "common/types.hpp"
#include "msg/message.hpp"

namespace bftcup::sim {

struct Decision {
  Value value = kNoValue;
  SimTime time = 0;
};

class Trace {
 public:
  /// Per-message-type sent counts (the coverage signature's traffic shape).
  using MsgHistogram = std::array<std::uint64_t, msg::kMsgTypeCount>;

  void record_decision(ProcessId who, Value value, SimTime time);
  void record_send(std::size_t bytes, msg::MsgType type);
  void record_delivery();
  /// A sent message lost to a fault (downed link, crashed or not-yet-joined
  /// recipient) instead of delivered.
  void record_drop();
  void record_membership(ProcessId who, const IdSet& members, SimTime time);

  [[nodiscard]] const std::map<ProcessId, Decision>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] const std::map<ProcessId, IdSet>& memberships() const {
    return memberships_;
  }
  [[nodiscard]] const std::map<ProcessId, SimTime>& membership_times() const {
    return membership_times_;
  }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return messages_delivered_;
  }
  [[nodiscard]] std::uint64_t messages_dropped() const {
    return messages_dropped_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] const MsgHistogram& sent_by_type() const {
    return sent_by_type_;
  }

  /// True iff every process in `who` decided.
  [[nodiscard]] bool all_decided(const IdSet& who) const;

  /// True iff no two processes in `who` decided different values
  /// (vacuously true with < 2 decisions).
  [[nodiscard]] bool agreement(const IdSet& who) const;

  /// Latest decision time among `who`; nullopt unless all decided.
  [[nodiscard]] std::optional<SimTime> completion_time(const IdSet& who) const;

  /// The decided value if all of `who` decided the same one.
  [[nodiscard]] std::optional<Value> common_value(const IdSet& who) const;

 private:
  std::map<ProcessId, Decision> decisions_;
  std::map<ProcessId, IdSet> memberships_;
  std::map<ProcessId, SimTime> membership_times_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
  MsgHistogram sent_by_type_{};
};

}  // namespace bftcup::sim

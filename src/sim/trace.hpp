// Execution trace: everything the experiment harnesses measure.
//
// Record storage is FlatMap (sorted vectors) rather than std::map: a run
// writes at most one record per process, the recycled-run engine wants
// reserve() from scenario hints instead of per-run node allocation, and a
// RunArena can back the vectors. Iteration order (sorted by id) matches the
// std::map the digest serialization was pinned on.
#pragma once

#include <array>
#include <memory_resource>
#include <optional>

#include "common/flat_map.hpp"
#include "common/types.hpp"
#include "msg/message.hpp"
#include "sim/wire_mutator.hpp"

namespace bftcup::sim {

struct Decision {
  Value value = kNoValue;
  SimTime time = 0;
};

class Trace {
 public:
  /// Per-message-type sent counts (the coverage signature's traffic shape).
  using MsgHistogram = std::array<std::uint64_t, msg::kMsgTypeCount>;
  using DecisionMap = FlatMap<ProcessId, Decision>;
  using MembershipMap = FlatMap<ProcessId, IdSet>;
  using TimeMap = FlatMap<ProcessId, SimTime>;

  Trace() = default;
  /// Backs the record vectors with `mr` (a RunArena in pooled runs). The
  /// trace must be destroyed before the arena rewinds.
  explicit Trace(std::pmr::memory_resource* mr)
      : decisions_(mr), memberships_(mr), membership_times_(mr) {}

  /// Pre-sizes the per-process record maps (scenario hint: process count).
  void reserve(std::size_t processes);

  void record_decision(ProcessId who, Value value, SimTime time);
  void record_send(std::size_t bytes, msg::MsgType type);
  void record_delivery();
  /// A sent message lost to a fault (downed link, crashed or not-yet-joined
  /// recipient) instead of delivered.
  void record_drop();
  void record_membership(ProcessId who, const IdSet& members, SimTime time);

  /// Hostile-wire accounting (sim/wire_mutator.hpp). A mutated delivery is
  /// one WireMutator::process() call that perturbed the frame; a rejected
  /// frame is one msg::decode_frame refusal (counted and dropped); a lost
  /// frame is one DelayPolicy::should_drop hit.
  void record_frame_mutated(WireMutationKind kind);
  void record_frame_rejected();
  void record_frame_lost();

  [[nodiscard]] const DecisionMap& decisions() const { return decisions_; }
  [[nodiscard]] const MembershipMap& memberships() const {
    return memberships_;
  }
  [[nodiscard]] const TimeMap& membership_times() const {
    return membership_times_;
  }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return messages_delivered_;
  }
  [[nodiscard]] std::uint64_t messages_dropped() const {
    return messages_dropped_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] const MsgHistogram& sent_by_type() const {
    return sent_by_type_;
  }

  using WireKindHistogram = std::array<std::uint64_t, kWireMutationKindCount>;
  [[nodiscard]] std::uint64_t frames_mutated() const { return frames_mutated_; }
  [[nodiscard]] std::uint64_t frames_rejected() const {
    return frames_rejected_;
  }
  [[nodiscard]] std::uint64_t frames_lost() const { return frames_lost_; }
  [[nodiscard]] const WireKindHistogram& mutated_by_kind() const {
    return mutated_by_kind_;
  }

  /// True iff every process in `who` decided.
  [[nodiscard]] bool all_decided(const IdSet& who) const;

  /// True iff no two processes in `who` decided different values
  /// (vacuously true with < 2 decisions).
  [[nodiscard]] bool agreement(const IdSet& who) const;

  /// Latest decision time among `who`; nullopt unless all decided.
  [[nodiscard]] std::optional<SimTime> completion_time(const IdSet& who) const;

  /// The decided value if all of `who` decided the same one.
  [[nodiscard]] std::optional<Value> common_value(const IdSet& who) const;

 private:
  DecisionMap decisions_;
  MembershipMap memberships_;
  TimeMap membership_times_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
  MsgHistogram sent_by_type_{};
  std::uint64_t frames_mutated_ = 0;
  std::uint64_t frames_rejected_ = 0;
  std::uint64_t frames_lost_ = 0;
  WireKindHistogram mutated_by_kind_{};
};

}  // namespace bftcup::sim

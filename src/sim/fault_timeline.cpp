#include "sim/fault_timeline.hpp"

#include <algorithm>

namespace bftcup::sim {

const char* to_string(FaultAction::Kind kind) {
  switch (kind) {
    case FaultAction::Kind::kCrash:
      return "CRASH";
    case FaultAction::Kind::kRecover:
      return "RECOVER";
    case FaultAction::Kind::kLinkDown:
      return "LINK-DOWN";
    case FaultAction::Kind::kLinkUp:
      return "LINK-UP";
    case FaultAction::Kind::kPartition:
      return "PARTITION";
    case FaultAction::Kind::kHeal:
      return "HEAL";
    case FaultAction::Kind::kJoin:
      return "JOIN";
  }
  return "?";
}

FaultTimeline& FaultTimeline::crash(ProcessId p, SimTime at) {
  FaultAction action;
  action.kind = FaultAction::Kind::kCrash;
  action.at = at;
  action.subject = p;
  actions_.push_back(std::move(action));
  return *this;
}

FaultTimeline& FaultTimeline::recover(ProcessId p, SimTime at) {
  FaultAction action;
  action.kind = FaultAction::Kind::kRecover;
  action.at = at;
  action.subject = p;
  actions_.push_back(std::move(action));
  return *this;
}

FaultTimeline& FaultTimeline::link_down(ProcessId from, ProcessId to,
                                        SimTime at, SimTime up_at) {
  FaultAction down;
  down.kind = FaultAction::Kind::kLinkDown;
  down.at = at;
  down.subject = from;
  down.peer = to;
  actions_.push_back(std::move(down));

  FaultAction up;
  up.kind = FaultAction::Kind::kLinkUp;
  up.at = up_at;
  up.subject = from;
  up.peer = to;
  actions_.push_back(std::move(up));
  return *this;
}

FaultTimeline& FaultTimeline::partition(IdSet group_a, IdSet group_b,
                                        SimTime at, SimTime heal_at) {
  FaultAction cut;
  cut.kind = FaultAction::Kind::kPartition;
  cut.at = at;
  cut.group_a = group_a;
  cut.group_b = group_b;
  actions_.push_back(std::move(cut));

  FaultAction heal;
  heal.kind = FaultAction::Kind::kHeal;
  heal.at = heal_at;
  heal.group_a = std::move(group_a);
  heal.group_b = std::move(group_b);
  actions_.push_back(std::move(heal));
  return *this;
}

FaultTimeline& FaultTimeline::join(ProcessId p, SimTime at) {
  FaultAction action;
  action.kind = FaultAction::Kind::kJoin;
  action.at = at;
  action.subject = p;
  actions_.push_back(std::move(action));
  return *this;
}

void FaultTimeline::reset_runtime() {
  down_links_.clear();
  partitions_.clear();
}

void FaultTimeline::apply(const FaultAction& action) {
  switch (action.kind) {
    case FaultAction::Kind::kLinkDown:
      down_links_.emplace_back(action.subject, action.peer);
      break;
    case FaultAction::Kind::kLinkUp: {
      // Erase ONE matching entry: overlapping identical windows each
      // contribute their own down entry, and each up event ends only its
      // own window.
      auto it = std::find(down_links_.begin(), down_links_.end(),
                          std::pair(action.subject, action.peer));
      if (it != down_links_.end()) down_links_.erase(it);
      break;
    }
    case FaultAction::Kind::kPartition:
      partitions_.emplace_back(action.group_a, action.group_b);
      break;
    case FaultAction::Kind::kHeal: {
      auto it = std::find_if(
          partitions_.begin(), partitions_.end(), [&action](const auto& p) {
            return p.first == action.group_a && p.second == action.group_b;
          });
      if (it != partitions_.end()) partitions_.erase(it);
      break;
    }
    case FaultAction::Kind::kCrash:
    case FaultAction::Kind::kRecover:
    case FaultAction::Kind::kJoin:
      break;  // per-process up/down state lives in the simulator's table
  }
}

bool FaultTimeline::is_link_down(ProcessId from, ProcessId to) const {
  for (const auto& [a, b] : down_links_) {
    if (a == from && b == to) return true;
  }
  for (const auto& [group_a, group_b] : partitions_) {
    if ((group_a.contains(from) && group_b.contains(to)) ||
        (group_b.contains(from) && group_a.contains(to))) {
      return true;
    }
  }
  return false;
}

}  // namespace bftcup::sim

// Time-scheduled fault injection (dynamic adversary, paper §II).
//
// The seed simulator fixed the fault set at construction time: a process was
// Byzantine from t=0 or correct forever. The paper's adversary is stronger —
// it controls *when* faults manifest. A FaultTimeline is an ordered script
// of fault actions the simulator turns into ordinary queue events, so fault
// state changes interleave with deliveries and timers under the same
// (time, seq) order and the seeded bit-replay guarantee extends to fault
// scenarios unchanged. An empty timeline costs nothing and leaves every
// pre-existing run byte-identical.
//
// Semantics (documented here once, asserted by fault_timeline_test):
//  - crash(p, t):   from t on, deliveries and timers addressed to p are
//                   dropped at dispatch. Messages already in flight when p
//                   recovers are delivered normally.
//  - recover(p, t): p resumes; the simulator calls Process::on_recover so
//                   the process can re-arm timers lost while down.
//  - link_down:     messages *sent* from->to inside [at, up_at) are lost at
//                   send time. Traffic already in flight is unaffected
//                   (packets on the wire survive the cut).
//  - partition:     every link between group_a and group_b, both directions,
//                   is down inside [at, heal_at).
//  - join(p, t):    p's on_start is deferred to t (late join / churn);
//                   traffic addressed to p before t is dropped at dispatch.
//
// Joined/crashed are orthogonal, so crash/recover and join compose in any
// order: a process is up iff joined and not crashed, on_start fires exactly
// once at the first moment it is up, and later up-transitions call
// on_recover. Overlapping identical link/partition windows nest: each down
// event needs its own up event.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace bftcup::sim {

struct FaultAction {
  enum class Kind : std::uint8_t {
    kCrash,
    kRecover,
    kLinkDown,
    kLinkUp,
    kPartition,
    kHeal,
    kJoin,
  };
  Kind kind = Kind::kCrash;
  SimTime at = 0;
  ProcessId subject;  ///< kCrash/kRecover/kJoin subject; kLink* source
  ProcessId peer;     ///< kLink* target
  IdSet group_a;      ///< kPartition/kHeal
  IdSet group_b;
};

[[nodiscard]] const char* to_string(FaultAction::Kind kind);

/// The script (shared, immutable once a run starts) plus the live link state
/// while a run executes. The simulator owns its copy; runtime state never
/// leaks back into the Scenario that configured it.
class FaultTimeline {
 public:
  FaultTimeline& crash(ProcessId p, SimTime at);
  FaultTimeline& recover(ProcessId p, SimTime at);
  /// Directed from->to outage over [at, up_at).
  FaultTimeline& link_down(ProcessId from, ProcessId to, SimTime at,
                           SimTime up_at);
  /// Bidirectional group outage over [at, heal_at).
  FaultTimeline& partition(IdSet group_a, IdSet group_b, SimTime at,
                           SimTime heal_at);
  FaultTimeline& join(ProcessId p, SimTime at);

  [[nodiscard]] bool empty() const { return actions_.empty(); }
  [[nodiscard]] const std::vector<FaultAction>& actions() const {
    return actions_;
  }

  // --- runtime, driven by the simulator ---

  /// Clears live link state (a timeline is reusable across runs).
  void reset_runtime();

  /// Applies a link-state action (kLinkDown/kLinkUp/kPartition/kHeal).
  /// Crash/recover/join are handled by the simulator itself, which owns the
  /// per-process up/down bit.
  void apply(const FaultAction& action);

  /// True iff a message sent from->to right now would be lost.
  [[nodiscard]] bool is_link_down(ProcessId from, ProcessId to) const;

 private:
  std::vector<FaultAction> actions_;
  std::vector<std::pair<ProcessId, ProcessId>> down_links_;
  std::vector<std::pair<IdSet, IdSet>> partitions_;
};

}  // namespace bftcup::sim

// Deterministic byte-level Byzantine wire mutation (hostile-wire layer).
//
// The simulator's channels are reliable and authenticated; every byte a
// node decodes was produced by our own encoder. WireMutator drops that
// assumption at the delivery seam: per (message, delivery) it can truncate
// the encoded frame, flip bits, splice two captured frames together,
// duplicate, replay a stale frame, or synthesize garbage. Mutation operates
// on the *encoded bytes* (msg/wire.hpp), so every hostile frame exercises
// the real codec::Decoder and message-parse path, and a frame the decoder
// rejects is counted and dropped instead of delivered.
//
// Determinism contract: the mutator owns a dedicated Rng derived from
// (simulator seed, WireConfig::seed) and draws only at process() calls,
// which the simulator issues in its deterministic delivery order — so the
// whole mutation schedule is a pure function of (scenario, seed) and replays
// bit-identically at any thread count. With `enabled` false the simulator
// never constructs a mutator and never draws: the layer costs nothing and
// every pre-existing digest is unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/random.hpp"
#include "msg/message.hpp"

namespace bftcup::sim {

enum class WireMutationKind : std::uint8_t {
  kTruncate,   ///< cut the frame short (partial read / torn write)
  kBitFlip,    ///< flip 1-4 random bits in place
  kSplice,     ///< prefix of this frame + suffix of a captured frame
  kDuplicate,  ///< deliver the frame twice
  kReplay,     ///< deliver a stale captured frame instead
  kGarbage,    ///< replace the frame with random bytes
};

inline constexpr std::size_t kWireMutationKindCount = 6;

/// Mask with every mutation kind enabled (bit i = WireMutationKind i).
inline constexpr std::uint32_t kAllWireMutationKinds =
    (1u << kWireMutationKindCount) - 1;

/// Mask with every MsgType targeted (bit i = MsgType i).
inline constexpr std::uint32_t kAllWireMsgTypes =
    (1u << msg::kMsgTypeCount) - 1;

[[nodiscard]] const char* to_string(WireMutationKind kind);

struct WireConfig {
  /// Master switch. Off = the simulator delivers structs directly, no
  /// encode/decode, no RNG draws, digests untouched.
  bool enabled = false;
  /// Per-delivery mutation probability in [0, 1]. Rate 0 with `enabled`
  /// still routes targeted deliveries through encode -> decode (the wire
  /// path itself is exercised) but never perturbs a frame.
  double rate = 0.0;
  /// Enabled mutation kinds (bit i = WireMutationKind i). Must be a
  /// non-empty subset of kAllWireMutationKinds.
  std::uint32_t kind_mask = kAllWireMutationKinds;
  /// Targeted message types (bit i = MsgType i). Untargeted types bypass
  /// the wire path entirely.
  std::uint32_t type_mask = kAllWireMsgTypes;
  /// Extra entropy folded into the mutator's RNG stream, so sweeps can vary
  /// the wire schedule independently of the simulation seed.
  std::uint64_t seed = 0;
};

class WireMutator {
 public:
  WireMutator(WireConfig config, std::uint64_t sim_seed);

  [[nodiscard]] bool targets(msg::MsgType type) const {
    return (config_.type_mask >> static_cast<std::size_t>(type) & 1u) != 0;
  }

  struct Result {
    /// The applied mutation, nullopt when the frame passed untouched.
    std::optional<WireMutationKind> kind;
    /// Frames to deliver in place of the original (0, 1, or 2 entries —
    /// truncate-to-nothing yields an empty undecodable frame, duplicate
    /// yields two).
    std::vector<Bytes> frames;
  };

  /// Consumes one targeted delivery's encoded frame. Captures the pristine
  /// frame in a small ring (splice/replay material), then draws the
  /// mutation schedule. Deterministic given construction inputs and call
  /// order.
  [[nodiscard]] Result process(BytesView frame);

 private:
  [[nodiscard]] Bytes mutate_bytes(BytesView frame, WireMutationKind kind);

  WireConfig config_;
  Rng rng_;
  std::vector<WireMutationKind> enabled_kinds_;
  /// Ring of recently captured pristine frames (splice/replay material).
  std::vector<Bytes> captured_;
  std::size_t ring_next_ = 0;
};

}  // namespace bftcup::sim

#include "sim/simulator.hpp"

#include <cassert>

#include "common/logging.hpp"

namespace bftcup::sim {

void Process::on_timer(int /*kind*/, Context& /*ctx*/) {}

SimTime Context::now() const {
  return sim_->now();
}

void Context::send(ProcessId to, msg::Message message) {
  sim_->do_send(self_, to, std::move(message));
}

void Context::broadcast(const IdSet& to, const msg::Message& message) {
  for (ProcessId id : to) {
    if (id != self_) sim_->do_send(self_, id, message);
  }
}

void Context::set_timer(SimTime delay, int kind) {
  sim_->do_set_timer(self_, delay, kind);
}

const crypto::Signer& Context::signer() const {
  return sim_->signers_.at(self_);
}

const crypto::Verifier& Context::verifier() const {
  return sim_->verifier_;
}

Rng& Context::rng() {
  return sim_->process_rngs_.at(self_);
}

void Context::decide(Value value) {
  sim_->do_decide(self_, value);
}

void Context::report_membership(const IdSet& members) {
  sim_->do_report_membership(self_, members);
}

Simulator::Simulator(Options options)
    : options_(options),
      rng_(options.seed),
      registry_(options.seed ^ 0xb5f7c0deULL),
      verifier_(&registry_),
      policy_(std::make_unique<RandomDelayPolicy>()) {}

void Simulator::add_process(std::unique_ptr<Process> process) {
  assert(!started_ && "processes must be added before run()");
  const ProcessId id = process->id();
  assert(!processes_.contains(id) && "duplicate process id");
  signers_.emplace(id, crypto::Signer(id, &registry_));
  process_rngs_.emplace(id, rng_.fork(id.raw() + 17));
  processes_.emplace(id, std::move(process));
}

void Simulator::set_stop_condition(std::function<bool(const Trace&)> cond) {
  stop_ = std::move(cond);
}

void Simulator::set_delay_policy(std::unique_ptr<DelayPolicy> policy) {
  policy_ = std::move(policy);
}

void Simulator::do_send(ProcessId from, ProcessId to, msg::Message message) {
  trace_.record_send(message.encoded_size());
  if (!processes_.contains(to)) {
    // Sending to an id that does not exist (e.g. learned from a lying PD)
    // silently drops: there is no process to deliver to.
    return;
  }
  Event ev;
  ev.time = policy_->delivery_time(from, to, now_, rng_, options_.net);
  ev.seq = next_seq_++;
  ev.kind = Event::Kind::kDelivery;
  ev.from = from;
  ev.to = to;
  ev.message = std::move(message);
  if (ev.time >= options_.horizon) return;  // never materializes in the run
  queue_.push(std::move(ev));
}

void Simulator::do_set_timer(ProcessId who, SimTime delay, int kind) {
  Event ev;
  ev.time = now_ + std::max<SimTime>(delay, 1);
  ev.seq = next_seq_++;
  ev.kind = Event::Kind::kTimer;
  ev.to = who;
  ev.timer_kind = kind;
  if (ev.time >= options_.horizon) return;
  queue_.push(std::move(ev));
}

void Simulator::do_decide(ProcessId who, Value value) {
  LOG_DEBUG("sim") << who << " decides " << value << " at t=" << now_;
  trace_.record_decision(who, value, now_);
}

void Simulator::do_report_membership(ProcessId who, const IdSet& members) {
  trace_.record_membership(who, members, now_);
}

void Simulator::run() {
  started_ = true;
  for (auto& [id, process] : processes_) {
    Context ctx(this, id);
    process->on_start(ctx);
  }
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    if (now_ >= options_.horizon) break;

    auto it = processes_.find(ev.to);
    if (it == processes_.end()) continue;
    Context ctx(this, ev.to);
    if (ev.kind == Event::Kind::kDelivery) {
      trace_.record_delivery();
      it->second->on_message(ev.from, ev.message, ctx);
    } else {
      it->second->on_timer(ev.timer_kind, ctx);
    }
    if (stop_ && stop_(trace_)) break;
  }
}

}  // namespace bftcup::sim

#include "sim/simulator.hpp"

#include <cassert>

#include "common/logging.hpp"
#include "crypto/keyring_cache.hpp"
#include "msg/wire.hpp"
#include "obs/span_tracer.hpp"

namespace bftcup::sim {

void Process::on_timer(int /*kind*/, Context& /*ctx*/) {}
void Process::on_recover(Context& /*ctx*/) {}

SimTime Context::now() const {
  return sim_->now();
}

void Context::send(ProcessId to, msg::Message message) {
  sim_->do_send(self_, to, msg::MessageRef::make(std::move(message)));
}

void Context::send(ProcessId to, msg::MessageRef message) {
  sim_->do_send(self_, to, std::move(message));
}

void Context::broadcast(const IdSet& to, const msg::Message& message) {
  broadcast(to, msg::MessageRef::make(message));
}

void Context::broadcast(const IdSet& to, const msg::MessageRef& message) {
  for (ProcessId id : to) {
    if (id != self_) sim_->do_send(self_, id, message);
  }
}

void Context::set_timer(SimTime delay, int kind) {
  sim_->do_set_timer(self_, delay, kind);
}

const crypto::Signer& Context::signer() const {
  ProcessTable::Slot* slot = sim_->table_.find(self_);
  assert(slot != nullptr);
  return slot->signer;
}

const crypto::Verifier& Context::verifier() const {
  return sim_->verifier_;
}

Rng& Context::rng() {
  ProcessTable::Slot* slot = sim_->table_.find(self_);
  assert(slot != nullptr);
  return slot->rng;
}

void Context::decide(Value value) {
  sim_->do_decide(self_, value);
}

void Context::report_membership(const IdSet& members) {
  sim_->do_report_membership(self_, members);
}

Simulator::Simulator(Options options)
    : options_(options),
      rng_(options.seed),
      registry_(options.seed ^ 0xb5f7c0deULL),
      verify_cache_(options.verify_cache),
      verifier_(&registry_, &verify_cache_) {
  configure(/*reuse=*/false);
}

void Simulator::reset(Options options) {
  // Destroy the previous run's arena-backed state *before* rewinding: the
  // processes (whose views hold arena-backed scratch), the queued events,
  // and the trace. Retained-capacity containers (queue buckets, slot
  // vector, memo buckets) never allocate from the arena, so they survive.
  table_.clear();
  queue_.clear();
  trace_.reset();
  stop_ = nullptr;
  policy_.reset();
  timeline_ = FaultTimeline{};
  timeline_active_ = false;
  // A detached arena (options.arena changed) is left untouched — its
  // memory belongs to its owner, which may still be serving other users.
  // Only the arena adopted for the next run is rewound, now that nothing
  // of ours references it.
  options_ = options;
  if (options_.arena != nullptr) options_.arena->rewind();

  rng_ = Rng(options_.seed);
  registry_.reset(options_.seed ^ 0xb5f7c0deULL);
  // The verification memo persists: its key binds the registry seed, the
  // signer, the payload, and the signature, so every retained entry is
  // still the correct answer. Only the enable knob is per-run.
  verify_cache_.set_memo_enabled(options_.verify_cache);
  next_seq_ = 0;
  now_ = 0;
  started_ = false;
  configure(/*reuse=*/true);
}

/// Shared tail of construction and reset: applies hints, binds the
/// keyring, installs the default delay policy, and (re)creates the trace
/// against the current run resource.
void Simulator::configure(bool reuse) {
  registry_.attach_keyring(options_.keyring);
  // The sign memo rides the same knob as the verification memo: both
  // directions of the "signature memoization" layer, both value-neutral.
  registry_.attach_sign_cache(options_.verify_cache ? &sign_cache_ : nullptr);
  policy_ = std::make_unique<RandomDelayPolicy>();
  wire_.reset();
  if (options_.wire.enabled) wire_.emplace(options_.wire, options_.seed);
  if (options_.expected_processes != 0) {
    table_.reserve(options_.expected_processes);
  }
  if (!reuse && options_.expected_events != 0) {
    queue_.reserve(options_.expected_events);  // capacity persists afterwards
  }
  trace_.emplace(run_resource());
  if (options_.expected_processes != 0) {
    trace_->reserve(options_.expected_processes);
  }
}

void Simulator::add_process(std::unique_ptr<Process> process) {
  assert(!started_ && "processes must be added before run()");
  const ProcessId id = process->id();
  assert(!table_.contains(id) && "duplicate process id");
  // Fork order is add order — part of the replay contract.
  crypto::Signer signer(id, &registry_);
  Rng process_rng = rng_.fork(id.raw() + 17);
  table_.add(std::move(process), signer, std::move(process_rng));
}

void Simulator::set_stop_condition(std::function<bool(const Trace&)> cond) {
  stop_ = std::move(cond);
}

void Simulator::set_delay_policy(std::unique_ptr<DelayPolicy> policy) {
  policy_ = std::move(policy);
}

void Simulator::set_fault_timeline(FaultTimeline timeline) {
  assert(!started_ && "the fault timeline must be set before run()");
  timeline_ = std::move(timeline);
}

void Simulator::do_send(ProcessId from, ProcessId to, msg::MessageRef message) {
  trace_->record_send(message.encoded_size(), message->type);
  if (timeline_active_ && timeline_.is_link_down(from, to)) {
    // Lost on the wire: sent (and counted as such), never queued.
    trace_->record_drop();
    return;
  }
  if (!table_.contains(to)) {
    // Sending to an id that does not exist (e.g. learned from a lying PD)
    // silently drops: there is no process to deliver to.
    return;
  }
  if (policy_->should_drop(from, to, now_, rng_, options_.net)) {
    // Lossy-network fault model: the message vanishes on the wire.
    trace_->record_drop();
    trace_->record_frame_lost();
    return;
  }
  Event ev;
  ev.time = policy_->delivery_time(from, to, now_, rng_, options_.net);
  ev.seq = next_seq_++;
  ev.kind = Event::Kind::kDelivery;
  ev.from = from;
  ev.to = to;
  ev.message = std::move(message);
  if (ev.time >= options_.horizon) return;  // never materializes in the run
  queue_.push(std::move(ev));
}

void Simulator::do_set_timer(ProcessId who, SimTime delay, int kind) {
  Event ev;
  ev.time = now_ + std::max<SimTime>(delay, 1);
  ev.seq = next_seq_++;
  ev.kind = Event::Kind::kTimer;
  ev.to = who;
  ev.timer_kind = kind;
  if (ev.time >= options_.horizon) return;
  queue_.push(std::move(ev));
}

void Simulator::do_decide(ProcessId who, Value value) {
  LOG_DEBUG("sim") << who << " decides " << value << " at t=" << now_;
  trace_->record_decision(who, value, now_);
}

void Simulator::do_report_membership(ProcessId who, const IdSet& members) {
  trace_->record_membership(who, members, now_);
}

void Simulator::schedule_fault_actions() {
  const auto& actions = timeline_.actions();
  // Late joiners start down; their kJoin action brings them up. (A join at
  // t=0 flips the slot back up in the apply pass below, before the start
  // loop — equivalent to a normal start.)
  for (const FaultAction& action : actions) {
    if (action.kind != FaultAction::Kind::kJoin) continue;
    if (ProcessTable::Slot* slot = table_.find(action.subject)) {
      slot->joined = false;
    }
  }
  // Fault actions apply before any same-time event. For t=0 that includes
  // the on_start calls themselves — a window opening at 0 must already be
  // in force when start-up traffic is sent — so t=0 actions are applied
  // here instead of queued. Later actions are queued first (low seq), so
  // at equal times faults still precede deliveries and timers.
  for (std::uint32_t i = 0; i < actions.size(); ++i) {
    if (actions[i].at <= 0) {
      apply_fault(actions[i]);
      continue;
    }
    if (actions[i].at >= options_.horizon) continue;
    Event ev;
    ev.time = actions[i].at;
    ev.seq = next_seq_++;
    ev.kind = Event::Kind::kFault;
    ev.fault_index = i;
    queue_.push(std::move(ev));
  }
}

/// Starts the process if this transition made it up for the first time,
/// or resumes it if it was already started. Must be called after a slot's
/// joined/crashed state changed upward.
void Simulator::start_or_resume(ProcessTable::Slot& slot) {
  if (!slot.up()) return;
  Context ctx(this, slot.process->id());
  if (!slot.started) {
    slot.started = true;
    slot.process->on_start(ctx);
  } else {
    slot.process->on_recover(ctx);
  }
}

void Simulator::apply_fault(const FaultAction& action) {
  LOG_DEBUG("sim") << "fault " << to_string(action.kind) << " at t=" << now_;
  timeline_.apply(action);
  ProcessTable::Slot* slot = table_.find(action.subject);
  switch (action.kind) {
    case FaultAction::Kind::kCrash:
      if (slot != nullptr) slot->crashed = true;
      break;
    case FaultAction::Kind::kRecover:
      if (slot != nullptr && slot->crashed) {
        slot->crashed = false;
        start_or_resume(*slot);
      }
      break;
    case FaultAction::Kind::kJoin:
      if (slot != nullptr && !slot->joined) {
        slot->joined = true;
        start_or_resume(*slot);
      }
      break;
    case FaultAction::Kind::kLinkDown:
    case FaultAction::Kind::kLinkUp:
    case FaultAction::Kind::kPartition:
    case FaultAction::Kind::kHeal:
      break;  // link state lives inside the timeline
  }
}

/// Hostile-wire delivery: round-trip the payload through the byte codec so
/// the real decoder faces whatever the mutator produced. The receiver still
/// learns the queue's true sender id (sender authentication is part of the
/// channel model, not the frame), but every *byte* of the payload — type,
/// PDs, signatures, quorum cert — is attacker-controlled. Rejected frames
/// are counted and dropped; accepted ones are delivered as decoded, which
/// for an unmutated frame is bit-identical to the original message.
void Simulator::deliver_via_wire(ProcessTable::Slot& slot, const Event& ev,
                                 Context& ctx) {
  const Bytes frame = msg::encode_frame(*ev.message);
  WireMutator::Result result = wire_->process(frame);
  if (result.kind) trace_->record_frame_mutated(*result.kind);
  for (const Bytes& out : result.frames) {
    std::optional<msg::Message> decoded = msg::decode_frame(out);
    if (!decoded) {
      trace_->record_frame_rejected();
      continue;
    }
    slot.process->on_message(ev.from, *decoded, ctx);
  }
}

void Simulator::run() {
  // Observability (README "Observability"): resolve the run's metrics
  // observer once — the per-event cost below is a pointer null check when
  // metrics are off, and the counter is bumped through the interned
  // pointer, never a per-event name lookup. Pure observation: nothing read
  // back, so dispatch order and results are untouched.
  obs::MetricsRegistry* const metrics = obs::current_metrics();
  obs::MetricsRegistry::Counter* const event_counter =
      metrics != nullptr ? &metrics->counter("sim.events") : nullptr;

  started_ = true;
  table_.finalize();
  timeline_.reset_runtime();
  timeline_active_ = !timeline_.empty();
  if (timeline_active_) schedule_fault_actions();

  for (std::uint32_t i = 0; i < table_.size(); ++i) {
    ProcessTable::Slot& slot = table_.slot(i);
    // Down (late joiner / crashed at t=0) slots are started by their fault
    // action; a join at t=0 may have started its process already.
    if (!slot.up() || slot.started) continue;
    slot.started = true;
    Context ctx(this, slot.process->id());
    slot.process->on_start(ctx);
  }

  while (!queue_.empty()) {
    Event ev = queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    if (now_ >= options_.horizon) break;
    if (event_counter != nullptr) event_counter->add();

    if (ev.kind == Event::Kind::kFault) {
      const obs::ScopedSpan span("sim.dispatch.fault");
      apply_fault(timeline_.actions()[ev.fault_index]);
      continue;  // fault actions never touch the trace; skip the stop check
    }

    const std::uint32_t index = table_.index_of(ev.to);
    if (index == ProcessTable::kNoIndex) continue;
    ProcessTable::Slot& slot = table_.slot(index);
    if (!slot.up()) {
      // Crashed or not yet joined: deliveries are lost, timers lapse.
      if (ev.kind == Event::Kind::kDelivery) trace_->record_drop();
      continue;
    }
    Context ctx(this, ev.to);
    if (ev.kind == Event::Kind::kDelivery) {
      trace_->record_delivery();
      const obs::ScopedSpan span("sim.dispatch.delivery", ev.to.raw());
      if (wire_ && wire_->targets(ev.message->type)) {
        deliver_via_wire(slot, ev, ctx);
      } else {
        slot.process->on_message(ev.from, *ev.message, ctx);
      }
    } else {
      const obs::ScopedSpan span("sim.dispatch.timer", ev.to.raw());
      slot.process->on_timer(ev.timer_kind, ctx);
    }
    if (stop_ && stop_(*trace_)) break;
  }
}

}  // namespace bftcup::sim

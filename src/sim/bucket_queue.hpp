// Two-level bucketed event queue for the simulator hot path.
//
// A classic calendar-queue specialization for the simulator's access
// pattern: events are pushed at most `horizon` ticks ahead, almost always
// within a few hundred ticks of `now` (delivery delays and protocol
// timers), and must drain in exact (time, seq) order — the total order the
// golden digest corpus pins.
//
//  * Near future: a power-of-two ring of one-tick buckets. push is an
//    append (events for one tick arrive in ascending seq by construction,
//    so a bucket is always seq-sorted); pop is a cursor bump. O(1) both
//    ways, no comparator, no sift.
//  * Far future (>= ring window ahead): a binary min-heap on (time, seq).
//    As the cursor advances, heap entries entering the window migrate into
//    their ring bucket — heap pops come out in (time, seq) order, and any
//    later direct push for that tick carries a larger seq, so migration
//    preserves the per-bucket seq ordering invariant.
//
// clear() keeps every bucket's capacity and the heap's buffer, so a
// recycled simulator replays its next run without re-growing the queue —
// the RunContext steady state.
//
// Ev must expose `.time` (SimTime, non-negative, never below the last
// popped time) and `.seq` (unique, strictly increasing across pushes).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace bftcup::sim {

template <typename Ev>
class BucketQueue {
 public:
  /// Ring of 1024 one-tick buckets: covers every delivery delay and all but
  /// the most backed-off protocol timers in one bump, while keeping the
  /// empty-bucket scan between sparse events trivially cheap.
  static constexpr std::size_t kRingBits = 10;
  static constexpr std::size_t kRingSize = std::size_t{1} << kRingBits;
  static constexpr std::size_t kRingMask = kRingSize - 1;

  BucketQueue() : ring_(kRingSize) {}

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Pre-sizes the buckets and the overflow heap from the caller's
  /// expected-events hint (Simulator::Options). Bucket capacity persists
  /// across clear(), so this is a one-time warmup, not a per-run cost.
  void reserve(std::size_t expected_events) {
    if (expected_events == 0) return;
    const std::size_t per_bucket =
        std::max<std::size_t>(2, expected_events >> kRingBits);
    for (auto& bucket : ring_) bucket.reserve(per_bucket);
    far_.reserve(std::max<std::size_t>(16, expected_events / 8));
  }

  void push(Ev ev) {
    assert(ev.time >= base_ && "events are never scheduled in the past");
    // Fail-soft in release builds: a buggy custom DelayPolicy that
    // schedules into the past gets its event clamped to "now" (the old
    // binary heap delivered such events out of order; hanging the run on
    // an underflowed ring index would be strictly worse).
    if (ev.time < base_) ev.time = base_;
    ++size_;
    if (static_cast<std::size_t>(ev.time - base_) < kRingSize) {
      ring_[static_cast<std::size_t>(ev.time) & kRingMask].push_back(
          std::move(ev));
      ++in_ring_;
      return;
    }
    far_.push_back(std::move(ev));
    std::push_heap(far_.begin(), far_.end(), After{});
  }

  /// Removes and returns the (time, seq)-minimal event. Precondition:
  /// !empty().
  Ev pop() {
    assert(size_ > 0);
    for (;;) {
      auto& bucket = ring_[static_cast<std::size_t>(base_) & kRingMask];
      if (cursor_ < bucket.size()) {
        Ev ev = std::move(bucket[cursor_]);
        ++cursor_;
        --in_ring_;
        --size_;
        if (cursor_ == bucket.size()) {
          bucket.clear();
          cursor_ = 0;
        }
        return ev;
      }
      // Bucket drained: advance the window. With an empty ring, jump
      // straight to the earliest far event instead of scanning tick by
      // tick across a sparse stretch.
      bucket.clear();
      cursor_ = 0;
      if (in_ring_ == 0) {
        assert(!far_.empty());
        base_ = std::max(base_ + 1, far_.front().time);
      } else {
        ++base_;
      }
      migrate();
    }
  }

  /// Empties the queue; keeps bucket and heap capacity for the next run.
  void clear() {
    for (auto& bucket : ring_) bucket.clear();
    far_.clear();
    base_ = 0;
    cursor_ = 0;
    in_ring_ = 0;
    size_ = 0;
  }

 private:
  struct After {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Moves far-future events whose tick entered the ring window into their
  /// buckets. Heap pops arrive in (time, seq) order and strictly precede
  /// any direct push for the same tick (a tick inside the window never
  /// leaves it, and seq grows monotonically), so buckets stay seq-sorted.
  void migrate() {
    while (!far_.empty() &&
           static_cast<std::size_t>(far_.front().time - base_) < kRingSize) {
      std::pop_heap(far_.begin(), far_.end(), After{});
      Ev ev = std::move(far_.back());
      far_.pop_back();
      ring_[static_cast<std::size_t>(ev.time) & kRingMask].push_back(
          std::move(ev));
      ++in_ring_;
    }
  }

  std::vector<std::vector<Ev>> ring_;
  std::vector<Ev> far_;  ///< min-heap on (time, seq)
  SimTime base_ = 0;     ///< current drain tick; ring window = [base_, base_+R)
  std::size_t cursor_ = 0;   ///< next undrained index in the base_ bucket
  std::size_t in_ring_ = 0;  ///< events currently in ring buckets
  std::size_t size_ = 0;
};

}  // namespace bftcup::sim

#include "sim/trace.hpp"

namespace bftcup::sim {

void Trace::reserve(std::size_t processes) {
  decisions_.reserve(processes);
  memberships_.reserve(processes);
  membership_times_.reserve(processes);
}

void Trace::record_decision(ProcessId who, Value value, SimTime time) {
  // Integrity: only the first decision counts (Consensus decides at most
  // once; a second record would indicate a protocol bug and is kept out of
  // the trace so tests can assert on decisions_.size()).
  decisions_.emplace(who, Decision{value, time});
}

void Trace::record_send(std::size_t bytes, msg::MsgType type) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  ++sent_by_type_[static_cast<std::size_t>(type)];
}

void Trace::record_delivery() {
  ++messages_delivered_;
}

void Trace::record_drop() {
  ++messages_dropped_;
}

void Trace::record_frame_mutated(WireMutationKind kind) {
  ++frames_mutated_;
  ++mutated_by_kind_[static_cast<std::size_t>(kind)];
}

void Trace::record_frame_rejected() {
  ++frames_rejected_;
}

void Trace::record_frame_lost() {
  ++frames_lost_;
}

void Trace::record_membership(ProcessId who, const IdSet& members,
                              SimTime time) {
  memberships_.emplace(who, members);
  membership_times_.emplace(who, time);
}

bool Trace::all_decided(const IdSet& who) const {
  for (ProcessId id : who) {
    if (!decisions_.contains(id)) return false;
  }
  return true;
}

bool Trace::agreement(const IdSet& who) const {
  std::optional<Value> seen;
  for (ProcessId id : who) {
    auto it = decisions_.find(id);
    if (it == decisions_.end()) continue;
    if (seen && *seen != it->second.value) return false;
    seen = it->second.value;
  }
  return true;
}

std::optional<SimTime> Trace::completion_time(const IdSet& who) const {
  SimTime latest = 0;
  for (ProcessId id : who) {
    auto it = decisions_.find(id);
    if (it == decisions_.end()) return std::nullopt;
    latest = std::max(latest, it->second.time);
  }
  return latest;
}

std::optional<Value> Trace::common_value(const IdSet& who) const {
  if (!all_decided(who) || !agreement(who)) return std::nullopt;
  if (who.empty()) return std::nullopt;
  return decisions_.at(*who.begin()).value;
}

}  // namespace bftcup::sim

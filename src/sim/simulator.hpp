// Deterministic discrete-event simulator.
//
// Owns the processes, the key registry (simulated PKI), the delay policy,
// the event queue, and the trace. Single-threaded; all nondeterminism flows
// from the seeded Rng, so a (seed, topology, policy) triple replays
// bit-identically.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <queue>

#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/trace.hpp"

namespace bftcup::sim {

class Simulator {
 public:
  struct Options {
    std::uint64_t seed = 1;
    NetConfig net;
    SimTime horizon = 1'000'000;  ///< hard stop (simulated time)
  };

  explicit Simulator(Options options);

  /// Registers a process. Must be called before run().
  void add_process(std::unique_ptr<Process> process);

  /// Stop early once this returns true (checked after every event).
  void set_stop_condition(std::function<bool(const Trace&)> cond);

  void set_delay_policy(std::unique_ptr<DelayPolicy> policy);

  /// Runs to quiescence, the horizon, or the stop condition.
  void run();

  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] crypto::KeyRegistry& registry() { return registry_; }

  /// Capability factory for a process (used by node builders that need the
  /// signer before the simulation starts, e.g. to pre-sign their PD).
  [[nodiscard]] crypto::Signer signer_for(ProcessId id) {
    return crypto::Signer(id, &registry_);
  }

 private:
  friend class Context;

  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break => determinism
    enum class Kind { kDelivery, kTimer } kind = Kind::kDelivery;
    ProcessId from;
    ProcessId to;
    msg::Message message;
    int timer_kind = 0;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Context entry points.
  void do_send(ProcessId from, ProcessId to, msg::Message message);
  void do_set_timer(ProcessId who, SimTime delay, int kind);
  void do_decide(ProcessId who, Value value);
  void do_report_membership(ProcessId who, const IdSet& members);

  Options options_;
  Rng rng_;
  crypto::KeyRegistry registry_;
  crypto::Verifier verifier_;
  std::unique_ptr<DelayPolicy> policy_;
  std::map<ProcessId, std::unique_ptr<Process>> processes_;
  std::map<ProcessId, crypto::Signer> signers_;
  std::map<ProcessId, Rng> process_rngs_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0;
  bool started_ = false;
  Trace trace_;
  std::function<bool(const Trace&)> stop_;
};

}  // namespace bftcup::sim

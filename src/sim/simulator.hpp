// Deterministic discrete-event simulator.
//
// Owns the processes (a dense ProcessTable), the key registry (simulated
// PKI), the delay policy, the fault timeline, the event queue, and the
// trace. Single-threaded; all nondeterminism flows from the seeded Rng, so a
// (seed, topology, policy, timeline) tuple replays bit-identically.
//
// The event queue is the hot path of every experiment sweep: a two-level
// bucketed queue (sim/bucket_queue.hpp) drains the exact (time, seq) total
// order with O(1) push/pop, and an Event is a small POD-ish record whose
// message payload is a refcounted MessageRef, so queue churn moves ~64
// bytes and a refcount instead of deep-copying PD vectors per delivery.
//
// A Simulator is *recyclable*: reset() returns it to the
// just-constructed state while keeping every capacity it grew (queue
// buckets, process slots, verification memo buckets) and every cross-run
// cache whose keys bind all of their inputs (the seed-bound verification
// memo, the attached keyring). cup::RunContext drives this to run
// batch sweeps with near-zero per-run setup cost; a reset simulator is
// observationally identical to a fresh one (asserted by the recycling
// property suite and BatchRunner's verify_determinism).
#pragma once

#include <functional>
#include <memory>
#include <memory_resource>
#include <optional>

#include "msg/message_ref.hpp"
#include "sim/bucket_queue.hpp"
#include "sim/fault_timeline.hpp"
#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/process_table.hpp"
#include "sim/run_arena.hpp"
#include "sim/trace.hpp"
#include "sim/wire_mutator.hpp"

namespace bftcup::crypto {
class KeyringCache;
}

namespace bftcup::sim {

class Simulator {
 public:
  struct Options {
    std::uint64_t seed = 1;
    NetConfig net;
    SimTime horizon = 1'000'000;  ///< hard stop (simulated time)
    /// Memoize signature-verification outcomes (see
    /// crypto/verify_cache.hpp). Verification is a pure function of
    /// (key seed, signer, payload, signature), so replay stays
    /// bit-identical; off still counts verifications for the run report.
    bool verify_cache = true;
    /// Hostile-wire layer (sim/wire_mutator.hpp). When enabled, targeted
    /// deliveries are routed through encode_frame -> mutation ->
    /// decode_frame; frames the hardened decoder rejects are counted and
    /// dropped. Disabled (the default) costs nothing and leaves every
    /// digest unchanged.
    WireConfig wire;

    // --- recyclable-run plumbing (cup::RunContext) -----------------------
    /// Pre-size hints: process count and expected event volume. Zero means
    /// "no hint"; wrong hints cost only memory, never correctness.
    std::size_t expected_processes = 0;
    std::size_t expected_events = 0;
    /// Per-run bump allocator backing the trace records and the per-node
    /// scratch (see sim/run_arena.hpp). Owned by the caller, which must
    /// not rewind it while this simulator still holds a run's state, and
    /// must dedicate it to this one simulator: reset() rewinds the adopted
    /// arena wholesale, which would invalidate any other user's storage.
    RunArena* arena = nullptr;
    /// Cross-run key-derivation cache (crypto/keyring_cache.hpp). Owned by
    /// the caller; must outlive the simulator.
    crypto::KeyringCache* keyring = nullptr;
  };

  explicit Simulator(Options options);

  /// Returns the simulator to the just-constructed state for `options`,
  /// retaining grown capacity and the seed-bound verification memo. The
  /// previous run's processes, queue, trace, and timeline are destroyed
  /// first, then the arena (if any) is rewound — so by the time this
  /// returns, nothing references pre-reset arena memory.
  void reset(Options options);

  /// Registers a process. Must be called before run().
  void add_process(std::unique_ptr<Process> process);

  /// Stop early once this returns true (checked after every event).
  void set_stop_condition(std::function<bool(const Trace&)> cond);

  void set_delay_policy(std::unique_ptr<DelayPolicy> policy);

  /// Installs the fault script. The simulator keeps its own copy; runtime
  /// fault state never leaks back into the caller's timeline. An empty
  /// timeline is free and leaves the run byte-identical to a timeline-less
  /// one.
  void set_fault_timeline(FaultTimeline timeline);

  /// Runs to quiescence, the horizon, or the stop condition.
  void run();

  [[nodiscard]] const Trace& trace() const { return *trace_; }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] crypto::KeyRegistry& registry() { return registry_; }

  /// Signature-verification counters (total lookups, memo hits). Counters
  /// are cumulative across a recycled simulator's runs; per-run figures are
  /// deltas against a snapshot the runner takes before run().
  [[nodiscard]] const crypto::VerifyCache::Stats& verify_stats() const {
    return verify_cache_.stats();
  }

  /// The signature memos themselves (cap management by the owning context).
  [[nodiscard]] crypto::VerifyCache& verify_cache() { return verify_cache_; }
  [[nodiscard]] crypto::SignCache& sign_cache() { return sign_cache_; }

  /// The memory resource for per-run scratch (the configured arena, or the
  /// default heap resource when the run is arena-less).
  [[nodiscard]] std::pmr::memory_resource* run_resource() const {
    return options_.arena != nullptr
               ? static_cast<std::pmr::memory_resource*>(options_.arena)
               : std::pmr::get_default_resource();
  }

  /// Capability factory for a process (used by node builders that need the
  /// signer before the simulation starts, e.g. to pre-sign their PD).
  [[nodiscard]] crypto::Signer signer_for(ProcessId id) {
    return crypto::Signer(id, &registry_);
  }

 private:
  friend class Context;

  /// Queue record. Deliveries reference a shared immutable payload; timers
  /// and fault actions carry no payload at all.
  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break => determinism
    ProcessId from;
    ProcessId to;
    msg::MessageRef message;
    std::int32_t timer_kind = 0;
    std::uint32_t fault_index = 0;  ///< into FaultTimeline::actions()
    enum class Kind : std::uint8_t { kDelivery, kTimer, kFault };
    Kind kind = Kind::kDelivery;
  };

  // Context entry points.
  void do_send(ProcessId from, ProcessId to, msg::MessageRef message);
  void do_set_timer(ProcessId who, SimTime delay, int kind);
  void do_decide(ProcessId who, Value value);
  void do_report_membership(ProcessId who, const IdSet& members);

  void schedule_fault_actions();
  void apply_fault(const FaultAction& action);
  void start_or_resume(ProcessTable::Slot& slot);
  void configure(bool reuse);
  void deliver_via_wire(ProcessTable::Slot& slot, const Event& ev,
                        Context& ctx);

  Options options_;
  Rng rng_;
  crypto::KeyRegistry registry_;
  crypto::VerifyCache verify_cache_;
  crypto::SignCache sign_cache_;
  crypto::Verifier verifier_;
  std::unique_ptr<DelayPolicy> policy_;
  /// Present iff options_.wire.enabled (rebuilt by configure()).
  std::optional<WireMutator> wire_;
  ProcessTable table_;
  FaultTimeline timeline_;
  bool timeline_active_ = false;
  BucketQueue<Event> queue_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0;
  bool started_ = false;
  /// optional so reset() can re-bind the trace to a rewound arena (pmr
  /// containers pin their resource at construction).
  std::optional<Trace> trace_;
  std::function<bool(const Trace&)> stop_;
};

}  // namespace bftcup::sim

// Deterministic discrete-event simulator.
//
// Owns the processes (a dense ProcessTable), the key registry (simulated
// PKI), the delay policy, the fault timeline, the event queue, and the
// trace. Single-threaded; all nondeterminism flows from the seeded Rng, so a
// (seed, topology, policy, timeline) tuple replays bit-identically.
//
// The event queue is the hot path of every experiment sweep: an Event is a
// small POD-ish record whose message payload is a refcounted MessageRef, so
// queue churn moves ~64 bytes and a refcount instead of deep-copying PD
// vectors and quorum certs per queued delivery.
#pragma once

#include <functional>
#include <memory>
#include <queue>

#include "msg/message_ref.hpp"
#include "sim/fault_timeline.hpp"
#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/process_table.hpp"
#include "sim/trace.hpp"

namespace bftcup::sim {

class Simulator {
 public:
  struct Options {
    std::uint64_t seed = 1;
    NetConfig net;
    SimTime horizon = 1'000'000;  ///< hard stop (simulated time)
    /// Memoize signature-verification outcomes for the whole run (see
    /// crypto/verify_cache.hpp). Verification is a pure function of
    /// (signer, payload, signature), so replay stays bit-identical; off
    /// still counts verifications for the run report.
    bool verify_cache = true;
  };

  explicit Simulator(Options options);

  /// Registers a process. Must be called before run().
  void add_process(std::unique_ptr<Process> process);

  /// Stop early once this returns true (checked after every event).
  void set_stop_condition(std::function<bool(const Trace&)> cond);

  void set_delay_policy(std::unique_ptr<DelayPolicy> policy);

  /// Installs the fault script. The simulator keeps its own copy; runtime
  /// fault state never leaks back into the caller's timeline. An empty
  /// timeline is free and leaves the run byte-identical to a timeline-less
  /// one.
  void set_fault_timeline(FaultTimeline timeline);

  /// Runs to quiescence, the horizon, or the stop condition.
  void run();

  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] crypto::KeyRegistry& registry() { return registry_; }

  /// Signature-verification counters (total lookups, memo hits).
  [[nodiscard]] const crypto::VerifyCache::Stats& verify_stats() const {
    return verify_cache_.stats();
  }

  /// Capability factory for a process (used by node builders that need the
  /// signer before the simulation starts, e.g. to pre-sign their PD).
  [[nodiscard]] crypto::Signer signer_for(ProcessId id) {
    return crypto::Signer(id, &registry_);
  }

 private:
  friend class Context;

  /// Queue record. Deliveries reference a shared immutable payload; timers
  /// and fault actions carry no payload at all.
  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break => determinism
    ProcessId from;
    ProcessId to;
    msg::MessageRef message;
    std::int32_t timer_kind = 0;
    std::uint32_t fault_index = 0;  ///< into FaultTimeline::actions()
    enum class Kind : std::uint8_t { kDelivery, kTimer, kFault };
    Kind kind = Kind::kDelivery;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Context entry points.
  void do_send(ProcessId from, ProcessId to, msg::MessageRef message);
  void do_set_timer(ProcessId who, SimTime delay, int kind);
  void do_decide(ProcessId who, Value value);
  void do_report_membership(ProcessId who, const IdSet& members);

  void schedule_fault_actions();
  void apply_fault(const FaultAction& action);
  void start_or_resume(ProcessTable::Slot& slot);

  Options options_;
  Rng rng_;
  crypto::KeyRegistry registry_;
  crypto::VerifyCache verify_cache_;
  crypto::Verifier verifier_;
  std::unique_ptr<DelayPolicy> policy_;
  ProcessTable table_;
  FaultTimeline timeline_;
  bool timeline_active_ = false;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0;
  bool started_ = false;
  Trace trace_;
  std::function<bool(const Trace&)> stop_;
};

}  // namespace bftcup::sim

// Partial-synchrony delivery scheduling (paper §II-A).
//
// Channels are reliable and authenticated: every sent message is delivered
// exactly once, and the receiver learns the true sender. The adversary
// controls *when*, subject to partial synchrony: a message sent at time t is
// delivered by max(t, GST) + δ. Before GST the delay is arbitrary within
// that cap; after GST it is at most δ.
#pragma once

#include <memory>

#include "common/random.hpp"
#include "common/types.hpp"

namespace bftcup::sim {

struct NetConfig {
  SimTime gst = 0;       ///< global stabilization time
  SimTime delta = 10;    ///< post-GST delay bound δ
  SimTime min_delay = 1; ///< messages never arrive at their send instant
};

/// Strategy deciding each message's delivery time. Implementations must
/// respect the partial-synchrony cap unless they explicitly model
/// asynchrony (Table I's third row).
class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;

  [[nodiscard]] virtual SimTime delivery_time(ProcessId from, ProcessId to,
                                              SimTime sent, Rng& rng,
                                              const NetConfig& cfg) = 0;
};

/// Uniform random delay in [min_delay, δ] after GST; before GST, an
/// adversarial uniform draw over the whole allowed window.
class RandomDelayPolicy final : public DelayPolicy {
 public:
  [[nodiscard]] SimTime delivery_time(ProcessId from, ProcessId to,
                                      SimTime sent, Rng& rng,
                                      const NetConfig& cfg) override;
};

/// Wraps another policy and stretches messages crossing between two process
/// groups until `release_at` (still capped by partial synchrony). This is
/// the scheduler used in Theorem 7's system AB: intra-group traffic is fast,
/// inter-group traffic arrives "after max{tA+ΔA, tB+ΔB}".
class GroupStretchPolicy final : public DelayPolicy {
 public:
  GroupStretchPolicy(std::unique_ptr<DelayPolicy> inner, IdSet group_a,
                     IdSet group_b, SimTime release_at);

  [[nodiscard]] SimTime delivery_time(ProcessId from, ProcessId to,
                                      SimTime sent, Rng& rng,
                                      const NetConfig& cfg) override;

 private:
  std::unique_ptr<DelayPolicy> inner_;
  IdSet group_a_;
  IdSet group_b_;
  SimTime release_at_;
};

/// Stretches every message *sent by* one of `slow` until `release_at`
/// (capped by partial synchrony). Models slow-but-correct processes in the
/// indistinguishability scenarios.
class SlowSenderPolicy final : public DelayPolicy {
 public:
  SlowSenderPolicy(std::unique_ptr<DelayPolicy> inner, IdSet slow,
                   SimTime release_at);

  [[nodiscard]] SimTime delivery_time(ProcessId from, ProcessId to,
                                      SimTime sent, Rng& rng,
                                      const NetConfig& cfg) override;

 private:
  std::unique_ptr<DelayPolicy> inner_;
  IdSet slow_;
  SimTime release_at_;
};

/// Clamp helper shared by policies: the partial-synchrony delivery cap
/// max(sent, GST) + δ, never below the physical floor sent + min_delay.
/// A message sent exactly at GST is post-GST: its cap is GST + δ. When
/// min_delay > δ the configuration is over-constrained and the floor wins —
/// policies clamping to this cap therefore still honor min_delay.
[[nodiscard]] SimTime synchrony_cap(SimTime sent, const NetConfig& cfg);

}  // namespace bftcup::sim

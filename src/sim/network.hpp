// Partial-synchrony delivery scheduling (paper §II-A).
//
// Channels are reliable and authenticated: every sent message is delivered
// exactly once, and the receiver learns the true sender. The adversary
// controls *when*, subject to partial synchrony: a message sent at time t is
// delivered by max(t, GST) + δ. Before GST the delay is arbitrary within
// that cap; after GST it is at most δ.
//
// LossyDelayPolicy deliberately breaks the reliable-channel premise: it is a
// fault model (hostile-wire PR), not a paper assumption. Runs under it are
// outside Theorem 1's hypotheses, so the oracle treats liveness differently
// when it is active — safety, however, must still hold.
#pragma once

#include <memory>

#include "common/random.hpp"
#include "common/types.hpp"

namespace bftcup::sim {

struct NetConfig {
  SimTime gst = 0;       ///< global stabilization time
  SimTime delta = 10;    ///< post-GST delay bound δ
  SimTime min_delay = 1; ///< messages never arrive at their send instant
};

/// Strategy deciding each message's delivery time. Implementations must
/// respect the partial-synchrony cap unless they explicitly model
/// asynchrony (Table I's third row).
class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;

  [[nodiscard]] virtual SimTime delivery_time(ProcessId from, ProcessId to,
                                              SimTime sent, Rng& rng,
                                              const NetConfig& cfg) = 0;

  /// Asked once per send, before delivery_time. A true return drops the
  /// message on the floor (counted, never delivered). The default neither
  /// drops nor touches `rng` — existing policies keep their exact draw
  /// sequence, so every pre-existing digest is unchanged.
  [[nodiscard]] virtual bool should_drop(ProcessId /*from*/, ProcessId /*to*/,
                                         SimTime /*sent*/, Rng& /*rng*/,
                                         const NetConfig& /*cfg*/) {
    return false;
  }
};

/// Uniform random delay in [min_delay, δ] after GST; before GST, an
/// adversarial uniform draw over the whole allowed window.
class RandomDelayPolicy final : public DelayPolicy {
 public:
  [[nodiscard]] SimTime delivery_time(ProcessId from, ProcessId to,
                                      SimTime sent, Rng& rng,
                                      const NetConfig& cfg) override;
};

/// Wraps another policy and stretches messages crossing between two process
/// groups until `release_at` (still capped by partial synchrony). This is
/// the scheduler used in Theorem 7's system AB: intra-group traffic is fast,
/// inter-group traffic arrives "after max{tA+ΔA, tB+ΔB}".
class GroupStretchPolicy final : public DelayPolicy {
 public:
  GroupStretchPolicy(std::unique_ptr<DelayPolicy> inner, IdSet group_a,
                     IdSet group_b, SimTime release_at);

  [[nodiscard]] SimTime delivery_time(ProcessId from, ProcessId to,
                                      SimTime sent, Rng& rng,
                                      const NetConfig& cfg) override;

 private:
  std::unique_ptr<DelayPolicy> inner_;
  IdSet group_a_;
  IdSet group_b_;
  SimTime release_at_;
};

/// Stretches every message *sent by* one of `slow` until `release_at`
/// (capped by partial synchrony). Models slow-but-correct processes in the
/// indistinguishability scenarios.
class SlowSenderPolicy final : public DelayPolicy {
 public:
  SlowSenderPolicy(std::unique_ptr<DelayPolicy> inner, IdSet slow,
                   SimTime release_at);

  [[nodiscard]] SimTime delivery_time(ProcessId from, ProcessId to,
                                      SimTime sent, Rng& rng,
                                      const NetConfig& cfg) override;

 private:
  std::unique_ptr<DelayPolicy> inner_;
  IdSet slow_;
  SimTime release_at_;
};

/// Knobs for the lossy-network fault model. All probabilities are in [0, 1].
struct LossConfig {
  bool enabled = false;
  /// Baseline per-message drop probability (outside burst windows).
  double drop_p = 0.0;
  /// Extra uniform delay in [0, jitter] added to the inner policy's delivery
  /// time, clamped back to the partial-synchrony cap: delayed messages still
  /// obey δ; the loss model breaks reliability, not synchrony.
  SimTime jitter = 0;
  /// Burst loss windows: [burst_start + k*burst_period,
  /// burst_start + k*burst_period + burst_len) for k = 0, 1, ... — a single
  /// window when burst_period is 0. A burst_len of 0 disables bursts.
  SimTime burst_start = 0;
  SimTime burst_len = 0;
  SimTime burst_period = 0;
  /// Drop probability inside a burst window (default: total blackout).
  double burst_drop_p = 1.0;
};

/// Wraps another policy with seeded message loss and jitter (LossConfig).
/// Deterministic: drop/jitter draws come from the simulator RNG in send
/// order, so the loss schedule is a pure function of (scenario, seed). With
/// all knobs at their zero defaults the wrapper draws nothing and is
/// bit-transparent.
class LossyDelayPolicy final : public DelayPolicy {
 public:
  LossyDelayPolicy(std::unique_ptr<DelayPolicy> inner, LossConfig config);

  [[nodiscard]] SimTime delivery_time(ProcessId from, ProcessId to,
                                      SimTime sent, Rng& rng,
                                      const NetConfig& cfg) override;

  [[nodiscard]] bool should_drop(ProcessId from, ProcessId to, SimTime sent,
                                 Rng& rng, const NetConfig& cfg) override;

 private:
  [[nodiscard]] bool in_burst(SimTime t) const;

  std::unique_ptr<DelayPolicy> inner_;
  LossConfig config_;
};

/// Clamp helper shared by policies: the partial-synchrony delivery cap
/// max(sent, GST) + δ, never below the physical floor sent + min_delay.
/// A message sent exactly at GST is post-GST: its cap is GST + δ. When
/// min_delay > δ the configuration is over-constrained and the floor wins —
/// policies clamping to this cap therefore still honor min_delay.
[[nodiscard]] SimTime synchrony_cap(SimTime sent, const NetConfig& cfg);

}  // namespace bftcup::sim

// Process abstraction: event handlers + the capabilities a process may use.
#pragma once

#include "common/random.hpp"
#include "common/types.hpp"
#include "crypto/signer.hpp"
#include "msg/message.hpp"
#include "msg/message_ref.hpp"

namespace bftcup::sim {

class Simulator;

/// Handed to every event handler. A process can read the clock, send
/// messages to processes it knows, arm timers, sign as itself, verify any
/// signature, and record a decision. It can NOT reach other processes'
/// state, keys, or the global membership — the capability set mirrors the
/// paper's model exactly.
class Context {
 public:
  Context(Simulator* sim, ProcessId self) : sim_(sim), self_(self) {}

  [[nodiscard]] SimTime now() const;
  [[nodiscard]] ProcessId self() const { return self_; }

  void send(ProcessId to, msg::Message message);
  /// Zero-copy send: the payload is shared, not copied into the queue.
  void send(ProcessId to, msg::MessageRef message);

  /// Convenience broadcast: freezes `message` into one shared payload, then
  /// fans out refcount bumps. Prefer the MessageRef overload when the same
  /// payload is reused across calls (periodic polls, cached replies).
  void broadcast(const IdSet& to, const msg::Message& message);
  void broadcast(const IdSet& to, const msg::MessageRef& message);

  /// Arms a one-shot timer firing `delay` from now with the given kind.
  void set_timer(SimTime delay, int kind);

  [[nodiscard]] const crypto::Signer& signer() const;
  [[nodiscard]] const crypto::Verifier& verifier() const;
  [[nodiscard]] Rng& rng();

  /// Records this process's (single) consensus decision.
  void decide(Value value);

  /// Records the sink/core membership this process settled on (metrics).
  void report_membership(const IdSet& members);

 private:
  Simulator* sim_;
  ProcessId self_;
};

class Process {
 public:
  explicit Process(ProcessId id) : id_(id) {}
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] ProcessId id() const { return id_; }

  virtual void on_start(Context& ctx) = 0;
  virtual void on_message(ProcessId from, const msg::Message& message,
                          Context& ctx) = 0;
  virtual void on_timer(int kind, Context& ctx);

  /// Called when a FaultTimeline recovery brings this process back up.
  /// Timers armed before the crash were dropped while it was down; override
  /// to re-arm periodic machinery. Default: do nothing.
  virtual void on_recover(Context& ctx);

 private:
  ProcessId id_;
};

}  // namespace bftcup::sim

// Dense per-process storage for the simulator hot path.
//
// The seed simulator kept three std::map<ProcessId, …> tables (process,
// signer, per-process rng) and paid tree walks on every dispatched event.
// A ProcessTable resolves a ProcessId to a dense index with one hash lookup
// and keeps everything a dispatch touches in a single slot vector. Slots are
// sorted by id when the table is finalized, so start-up order — and with it
// the seeded bit-replay digest — matches the old map iteration exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/random.hpp"
#include "crypto/signer.hpp"
#include "sim/process.hpp"

namespace bftcup::sim {

class ProcessTable {
 public:
  struct Slot {
    std::unique_ptr<Process> process;
    crypto::Signer signer;
    Rng rng;
    // Fault state. Joined/crashed are orthogonal so crash/recover/join
    // actions compose in any order; on_start fires exactly once, at the
    // first moment the process is up.
    bool joined = true;    ///< false until a late joiner's kJoin action
    bool crashed = false;  ///< true between kCrash and kRecover
    bool started = false;  ///< on_start has run

    [[nodiscard]] bool up() const { return joined && !crashed; }
  };

  static constexpr std::uint32_t kNoIndex = 0xffffffffU;

  [[nodiscard]] bool contains(ProcessId id) const {
    return index_.contains(id);
  }

  /// Registers a process. Must precede finalize(); duplicate ids are the
  /// caller's bug.
  void add(std::unique_ptr<Process> process, crypto::Signer signer, Rng rng);

  /// Destroys every process and empties the table, keeping the slot
  /// vector's and the index's capacity — the recycled-run path.
  void clear();

  /// Pre-sizes for `n` processes (scenario hint).
  void reserve(std::size_t n);

  /// Sorts slots by id and rebuilds the dense index. Called once when the
  /// run starts; idempotent.
  void finalize();

  /// Dense index for `id`, or kNoIndex. Valid only after finalize().
  [[nodiscard]] std::uint32_t index_of(ProcessId id) const {
    auto it = index_.find(id);
    return it == index_.end() ? kNoIndex : it->second;
  }

  [[nodiscard]] Slot& slot(std::uint32_t index) { return slots_[index]; }

  [[nodiscard]] Slot* find(ProcessId id) {
    const std::uint32_t index = index_of(id);
    return index == kNoIndex ? nullptr : &slots_[index];
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

 private:
  std::vector<Slot> slots_;
  std::unordered_map<ProcessId, std::uint32_t> index_;
  bool finalized_ = false;
};

}  // namespace bftcup::sim

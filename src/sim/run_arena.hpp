// Per-run bump allocator for the recyclable run engine.
//
// A RunArena is a monotonic memory resource: allocations bump a cursor
// through geometrically grown blocks and individual deallocations are
// no-ops. Between runs the owning RunContext calls rewind(), which makes
// every byte reusable without returning anything to the heap — so the
// steady state of a pooled batch workload performs near-zero malloc/free
// traffic for the containers routed through it (trace records, pending
// delivery buffers, EvalScratch memo nodes).
//
// LIFETIME CONTRACT: rewind() invalidates every allocation handed out since
// the last rewind. Anything arena-backed must be destroyed before the owner
// rewinds — Simulator::reset() destroys the previous run's processes, trace,
// and queue contents first, then rewinds. Containers that must survive a
// reset (retained-capacity event buckets, the cross-run caches) therefore
// never allocate from the arena. The recycling property test runs under
// ASan to catch use-after-rewind early (rewind also poisons the reclaimed
// range in debug builds by memset, so stale reads fail loudly, not subtly).
//
// Single-threaded by design, like the Simulator that consumes it.
#pragma once

#include <cstddef>
#include <memory>
#include <memory_resource>
#include <vector>

namespace bftcup::sim {

class RunArena final : public std::pmr::memory_resource {
 public:
  /// `first_block` is the initial block size; subsequent blocks double up
  /// to a cap so one oversized run does not pin unbounded memory forever.
  explicit RunArena(std::size_t first_block = 16 * 1024);

  RunArena(const RunArena&) = delete;
  RunArena& operator=(const RunArena&) = delete;

  /// Makes every previously allocated byte reusable; keeps all blocks.
  void rewind();

  /// Bytes handed out since the last rewind().
  [[nodiscard]] std::size_t bytes_in_use() const { return in_use_; }

  /// Largest bytes_in_use() observed since the last rewind() — the
  /// per-run counter RunReport mirrors as `arena_bytes_peak`.
  [[nodiscard]] std::size_t bytes_high_water() const { return high_water_; }

  /// Total heap memory owned by the arena's blocks.
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* do_allocate(std::size_t bytes, std::size_t align) override;
  void* bump(Block& block, std::size_t bytes, std::size_t align);
  void do_deallocate(void* p, std::size_t bytes, std::size_t align) override;
  [[nodiscard]] bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override;

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  ///< index of the block the cursor lives in
  std::size_t next_block_size_;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace bftcup::sim

#include "sim/wire_mutator.hpp"

namespace bftcup::sim {
namespace {

/// Capture ring capacity: enough stale material for splice/replay without
/// unbounded growth on long runs.
constexpr std::size_t kCaptureRing = 16;

/// Garbage frames are 1..kMaxGarbage random bytes — long enough to reach
/// every parse stage, short enough to stay cheap at sweep scale.
constexpr std::size_t kMaxGarbage = 96;

}  // namespace

const char* to_string(WireMutationKind kind) {
  switch (kind) {
    case WireMutationKind::kTruncate:
      return "truncate";
    case WireMutationKind::kBitFlip:
      return "bitflip";
    case WireMutationKind::kSplice:
      return "splice";
    case WireMutationKind::kDuplicate:
      return "duplicate";
    case WireMutationKind::kReplay:
      return "replay";
    case WireMutationKind::kGarbage:
      return "garbage";
  }
  return "unknown";
}

WireMutator::WireMutator(WireConfig config, std::uint64_t sim_seed)
    : config_(config),
      // Dedicated stream: the constant separates the wire schedule from the
      // simulator's own forks, and config.seed lets sweeps re-roll mutations
      // without touching delivery timing.
      rng_(Rng(sim_seed ^ 0xa57eb1de5eedULL).fork(config.seed)) {
  for (std::size_t i = 0; i < kWireMutationKindCount; ++i) {
    if ((config_.kind_mask >> i & 1u) != 0) {
      enabled_kinds_.push_back(static_cast<WireMutationKind>(i));
    }
  }
  captured_.reserve(kCaptureRing);
}

WireMutator::Result WireMutator::process(BytesView frame) {
  // Capture first, mutate second: the ring holds pristine frames (that is
  // the realistic replay/splice material — bytes that really crossed the
  // wire), and the current frame is eligible as its own stale source.
  Bytes pristine(frame.begin(), frame.end());
  if (captured_.size() < kCaptureRing) {
    captured_.push_back(pristine);
  } else {
    captured_[ring_next_] = pristine;
    ring_next_ = (ring_next_ + 1) % kCaptureRing;
  }

  Result result;
  if (enabled_kinds_.empty() || !rng_.chance(config_.rate)) {
    result.frames.push_back(std::move(pristine));
    return result;
  }

  const WireMutationKind kind =
      enabled_kinds_[rng_.next_below(enabled_kinds_.size())];
  result.kind = kind;
  if (kind == WireMutationKind::kDuplicate) {
    result.frames.push_back(pristine);
    result.frames.push_back(std::move(pristine));
  } else {
    result.frames.push_back(mutate_bytes(frame, kind));
  }
  return result;
}

Bytes WireMutator::mutate_bytes(BytesView frame, WireMutationKind kind) {
  switch (kind) {
    case WireMutationKind::kTruncate: {
      // Keep a strict prefix; length 0 (empty frame) included.
      const std::size_t keep = rng_.next_below(frame.size());
      return Bytes(frame.begin(),
                   frame.begin() + static_cast<std::ptrdiff_t>(keep));
    }
    case WireMutationKind::kBitFlip: {
      Bytes out(frame.begin(), frame.end());
      const std::size_t flips = 1 + rng_.next_below(4);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t pos = rng_.next_below(out.size());
        out[pos] ^= static_cast<std::uint8_t>(1u << rng_.next_below(8));
      }
      return out;
    }
    case WireMutationKind::kSplice: {
      // Prefix of the live frame + suffix of a captured one: field-level
      // splicing (e.g. a quorum cert grafted from an older message) without
      // the mutator knowing the frame layout.
      const Bytes& other = captured_[rng_.next_below(captured_.size())];
      const std::size_t cut_a = rng_.next_below(frame.size() + 1);
      const std::size_t cut_b = rng_.next_below(other.size() + 1);
      Bytes out(frame.begin(),
                frame.begin() + static_cast<std::ptrdiff_t>(cut_a));
      out.insert(out.end(),
                 other.begin() + static_cast<std::ptrdiff_t>(cut_b),
                 other.end());
      return out;
    }
    case WireMutationKind::kReplay:
      // The ring always holds at least the current frame, so a replay draw
      // right after construction degenerates to an identity delivery.
      return captured_[rng_.next_below(captured_.size())];
    case WireMutationKind::kGarbage: {
      Bytes out(1 + rng_.next_below(kMaxGarbage));
      for (std::uint8_t& b : out) {
        b = static_cast<std::uint8_t>(rng_.next_below(256));
      }
      return out;
    }
    case WireMutationKind::kDuplicate:
      break;  // handled in process()
  }
  return Bytes(frame.begin(), frame.end());
}

}  // namespace bftcup::sim

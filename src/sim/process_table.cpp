#include "sim/process_table.hpp"

#include <algorithm>
#include <cassert>

namespace bftcup::sim {

void ProcessTable::add(std::unique_ptr<Process> process, crypto::Signer signer,
                       Rng rng) {
  assert(!finalized_ && "processes must be added before the run starts");
  const ProcessId id = process->id();
  assert(!index_.contains(id) && "duplicate process id");
  index_.emplace(id, static_cast<std::uint32_t>(slots_.size()));
  slots_.push_back(Slot{std::move(process), signer, std::move(rng)});
}

void ProcessTable::clear() {
  slots_.clear();
  index_.clear();  // keeps the bucket array
  finalized_ = false;
}

void ProcessTable::reserve(std::size_t n) {
  slots_.reserve(n);
  index_.reserve(n);
}

void ProcessTable::finalize() {
  if (finalized_) return;
  finalized_ = true;
  std::sort(slots_.begin(), slots_.end(), [](const Slot& a, const Slot& b) {
    return a.process->id() < b.process->id();
  });
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    index_[slots_[i].process->id()] = i;
  }
}

}  // namespace bftcup::sim

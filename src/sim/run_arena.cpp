#include "sim/run_arena.hpp"

#include <cassert>
#include <cstring>
#include <new>

namespace bftcup::sim {
namespace {

/// Blocks stop doubling here: a pathological run can still allocate more
/// blocks, but each stays reusable-sized so the pool's steady-state
/// footprint tracks the biggest *typical* run, not the biggest outlier.
constexpr std::size_t kMaxBlockSize = 4 * 1024 * 1024;

std::size_t align_up(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

RunArena::RunArena(std::size_t first_block)
    : next_block_size_(first_block == 0 ? 1024 : first_block) {}

void* RunArena::do_allocate(std::size_t bytes, std::size_t align) {
  assert((align & (align - 1)) == 0 && "alignment must be a power of two");
  for (; current_ < blocks_.size(); ++current_) {
    // Cursor never moves back inside a run; a partially filled block is
    // revisited only after the next rewind().
    if (void* p = bump(blocks_[current_], bytes, align)) return p;
  }
  std::size_t size = next_block_size_;
  // An oversized single request gets its own block (plus alignment slack).
  if (size < bytes + align) size = bytes + align;
  next_block_size_ = std::min(kMaxBlockSize, next_block_size_ * 2);
  Block block;
  block.data = std::make_unique<std::byte[]>(size);
  block.size = size;
  reserved_ += size;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  void* p = bump(blocks_.back(), bytes, align);
  assert(p != nullptr && "a fresh block always fits its sizing request");
  return p;
}

void* RunArena::bump(Block& block, std::size_t bytes, std::size_t align) {
  // Align the absolute address, not the offset: block bases only guarantee
  // operator new[] alignment, which over-aligned types may exceed.
  // cup-lint: cast-ok(pointer-to-integer for alignment math; never cast back)
  const auto base = reinterpret_cast<std::uintptr_t>(block.data.get());
  const std::size_t offset = align_up(base + block.used, align) - base;
  if (offset + bytes > block.size) return nullptr;
  block.used = offset + bytes;
  in_use_ += bytes;
  if (in_use_ > high_water_) high_water_ = in_use_;
  return block.data.get() + offset;
}

void RunArena::do_deallocate(void* /*p*/, std::size_t /*bytes*/,
                             std::size_t /*align*/) {
  // Monotonic: memory is reclaimed wholesale by rewind().
}

bool RunArena::do_is_equal(
    const std::pmr::memory_resource& other) const noexcept {
  return this == &other;
}

void RunArena::rewind() {
  for (Block& block : blocks_) {
#ifndef NDEBUG
    // Poison reclaimed memory so a container that survived reset() and
    // dereferences stale arena storage fails loudly in debug/ASan builds.
    std::memset(block.data.get(), 0xa5, block.used);
#endif
    block.used = 0;
  }
  current_ = 0;
  in_use_ = 0;
  // The high-water mark is per run (rewind to rewind), so the counter a
  // report mirrors means the same thing on the pooled and fresh paths.
  high_water_ = 0;
}

}  // namespace bftcup::sim

#include "sim/network.hpp"

#include <algorithm>

namespace bftcup::sim {

SimTime synchrony_cap(SimTime sent, const NetConfig& cfg) {
  const SimTime base = std::max(sent, cfg.gst);
  // Saturating add: an "asynchronous" run uses gst near kSimTimeMax.
  if (base > kSimTimeMax - cfg.delta) return kSimTimeMax;
  return base + cfg.delta;
}

SimTime RandomDelayPolicy::delivery_time(ProcessId /*from*/, ProcessId /*to*/,
                                         SimTime sent, Rng& rng,
                                         const NetConfig& cfg) {
  const SimTime lo = sent + cfg.min_delay;
  const SimTime hi = std::max(lo, synchrony_cap(sent, cfg));
  if (sent >= cfg.gst) {
    // After GST: within δ.
    return std::min(hi, sent + std::max<SimTime>(cfg.min_delay,
                                                 rng.next_in(1, cfg.delta)));
  }
  // Before GST: adversarial draw over the allowed window.
  return rng.next_in(lo, hi);
}

GroupStretchPolicy::GroupStretchPolicy(std::unique_ptr<DelayPolicy> inner,
                                       IdSet group_a, IdSet group_b,
                                       SimTime release_at)
    : inner_(std::move(inner)),
      group_a_(std::move(group_a)),
      group_b_(std::move(group_b)),
      release_at_(release_at) {}

SimTime GroupStretchPolicy::delivery_time(ProcessId from, ProcessId to,
                                          SimTime sent, Rng& rng,
                                          const NetConfig& cfg) {
  const SimTime base = inner_->delivery_time(from, to, sent, rng, cfg);
  const bool crosses = (group_a_.contains(from) && group_b_.contains(to)) ||
                       (group_b_.contains(from) && group_a_.contains(to));
  if (!crosses) return base;
  return std::min(std::max(base, release_at_), synchrony_cap(sent, cfg));
}

SlowSenderPolicy::SlowSenderPolicy(std::unique_ptr<DelayPolicy> inner,
                                   IdSet slow, SimTime release_at)
    : inner_(std::move(inner)),
      slow_(std::move(slow)),
      release_at_(release_at) {}

SimTime SlowSenderPolicy::delivery_time(ProcessId from, ProcessId to,
                                        SimTime sent, Rng& rng,
                                        const NetConfig& cfg) {
  const SimTime base = inner_->delivery_time(from, to, sent, rng, cfg);
  if (!slow_.contains(from)) return base;
  return std::min(std::max(base, release_at_), synchrony_cap(sent, cfg));
}

}  // namespace bftcup::sim

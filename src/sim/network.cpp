#include "sim/network.hpp"

#include <algorithm>

namespace bftcup::sim {

SimTime synchrony_cap(SimTime sent, const NetConfig& cfg) {
  // The paper's clamp: delivery by max(t, GST) + δ. A message sent exactly
  // at GST is a post-GST message (cap = GST + δ). Saturating adds: an
  // "asynchronous" run uses gst near kSimTimeMax.
  const SimTime base = std::max(sent, cfg.gst);
  const SimTime capped =
      base > kSimTimeMax - cfg.delta ? kSimTimeMax : base + cfg.delta;
  // The cap never undercuts the physical floor sent + min_delay: when a
  // channel is configured with min_delay > δ, the floor wins and the
  // message is delivered at exactly its floor (enforced here so wrapping
  // policies that clamp to the cap cannot deliver before the floor either).
  const SimTime floor =
      sent > kSimTimeMax - cfg.min_delay ? kSimTimeMax : sent + cfg.min_delay;
  return std::max(capped, floor);
}

SimTime RandomDelayPolicy::delivery_time(ProcessId /*from*/, ProcessId /*to*/,
                                         SimTime sent, Rng& rng,
                                         const NetConfig& cfg) {
  const SimTime lo = sent + cfg.min_delay;
  const SimTime hi = synchrony_cap(sent, cfg);  // >= lo by construction
  if (sent >= cfg.gst) {
    // After GST: within δ (clamped to [lo, hi] when min_delay > δ).
    return std::min(hi, sent + std::max<SimTime>(cfg.min_delay,
                                                 rng.next_in(1, cfg.delta)));
  }
  // Before GST: adversarial draw over the allowed window.
  return rng.next_in(lo, hi);
}

GroupStretchPolicy::GroupStretchPolicy(std::unique_ptr<DelayPolicy> inner,
                                       IdSet group_a, IdSet group_b,
                                       SimTime release_at)
    : inner_(std::move(inner)),
      group_a_(std::move(group_a)),
      group_b_(std::move(group_b)),
      release_at_(release_at) {}

SimTime GroupStretchPolicy::delivery_time(ProcessId from, ProcessId to,
                                          SimTime sent, Rng& rng,
                                          const NetConfig& cfg) {
  const SimTime base = inner_->delivery_time(from, to, sent, rng, cfg);
  const bool crosses = (group_a_.contains(from) && group_b_.contains(to)) ||
                       (group_b_.contains(from) && group_a_.contains(to));
  if (!crosses) return base;
  return std::min(std::max(base, release_at_), synchrony_cap(sent, cfg));
}

SlowSenderPolicy::SlowSenderPolicy(std::unique_ptr<DelayPolicy> inner,
                                   IdSet slow, SimTime release_at)
    : inner_(std::move(inner)),
      slow_(std::move(slow)),
      release_at_(release_at) {}

SimTime SlowSenderPolicy::delivery_time(ProcessId from, ProcessId to,
                                        SimTime sent, Rng& rng,
                                        const NetConfig& cfg) {
  const SimTime base = inner_->delivery_time(from, to, sent, rng, cfg);
  if (!slow_.contains(from)) return base;
  return std::min(std::max(base, release_at_), synchrony_cap(sent, cfg));
}

LossyDelayPolicy::LossyDelayPolicy(std::unique_ptr<DelayPolicy> inner,
                                   LossConfig config)
    : inner_(std::move(inner)), config_(config) {}

bool LossyDelayPolicy::in_burst(SimTime t) const {
  if (config_.burst_len == 0 || t < config_.burst_start) return false;
  const SimTime offset = t - config_.burst_start;
  if (config_.burst_period == 0) return offset < config_.burst_len;
  return offset % config_.burst_period < config_.burst_len;
}

SimTime LossyDelayPolicy::delivery_time(ProcessId from, ProcessId to,
                                        SimTime sent, Rng& rng,
                                        const NetConfig& cfg) {
  const SimTime base = inner_->delivery_time(from, to, sent, rng, cfg);
  if (config_.jitter == 0) return base;  // no draw: zero jitter is free
  const SimTime extra = rng.next_below(config_.jitter + 1);
  const SimTime jittered =
      base > kSimTimeMax - extra ? kSimTimeMax : base + extra;
  return std::min(jittered, synchrony_cap(sent, cfg));
}

bool LossyDelayPolicy::should_drop(ProcessId /*from*/, ProcessId /*to*/,
                                   SimTime sent, Rng& rng,
                                   const NetConfig& /*cfg*/) {
  const double p = in_burst(sent) ? config_.burst_drop_p : config_.drop_p;
  if (p <= 0.0) return false;  // no draw: an all-zero config is transparent
  return rng.chance(p);
}

}  // namespace bftcup::sim

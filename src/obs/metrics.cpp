#include "obs/metrics.hpp"

namespace bftcup::obs {

std::size_t HistogramData::bucket_of(std::uint64_t value) {
  std::size_t width = 0;
  while (value != 0) {
    ++width;
    value >>= 1;
  }
  return width;  // < kBuckets: a 64-bit value's width is at most 64
}

void HistogramData::record(std::uint64_t value) {
  ++buckets[bucket_of(value)];
  ++count;
  sum += value;
  if (value > max) max = value;
}

void HistogramData::merge(const HistogramData& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
}

HistogramData HistogramData::delta(const HistogramData& before,
                                   const HistogramData& after) {
  HistogramData d;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    d.buckets[i] = after.buckets[i] - before.buckets[i];
  }
  d.count = after.count - before.count;
  d.sum = after.sum - before.sum;
  // The cumulative max is monotone; a per-run max would need per-run
  // tracking. Report the period's ceiling: exact when the run set it,
  // an upper bound otherwise.
  d.max = after.max;
  return d;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

std::uint64_t MetricsSnapshot::gauge(std::string_view name) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

void MetricsSnapshot::set_gauge(std::string_view name, std::uint64_t value) {
  gauges[std::string(name)] = value;
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot d;
  for (const auto& [name, value] : after.counters) {
    auto it = before.counters.find(name);
    const std::uint64_t base = it == before.counters.end() ? 0 : it->second;
    d.counters.emplace(name, value - base);
  }
  d.gauges = after.gauges;
  for (const auto& [name, data] : after.histograms) {
    auto it = before.histograms.find(name);
    d.histograms.emplace(name, it == before.histograms.end()
                                   ? data
                                   : HistogramData::delta(it->second, data));
  }
  return d;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) {
    auto [it, inserted] = gauges.emplace(name, value);
    if (!inserted && value > it->second) it->second = value;
  }
  for (const auto& [name, data] : other.histograms) {
    auto [it, inserted] = histograms.emplace(name, data);
    if (!inserted) it->second.merge(data);
  }
}

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

MetricsRegistry::Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c.value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g.value());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace(name, h.data());
  }
  return snap;
}

}  // namespace bftcup::obs

#include "obs/span_tracer.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace bftcup::obs {
namespace {

thread_local MetricsRegistry* t_metrics = nullptr;
thread_local SpanTracer* t_tracer = nullptr;

}  // namespace

std::uint64_t wall_now_ns() {
  // Wall time is export-only telemetry: it reaches Perfetto traces and the
  // cup_trace summary, never a digest, a decision, or replayed state. This
  // is the one audited call site; every span gets its timestamps here.
  // cup-lint: rng-ok(export-only trace timestamp; never read back into any replayed path or digest)
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

SpanTracer::SpanTracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::uint32_t SpanTracer::intern(const char* name) {
  // Literal pointers repeat per site, so the fast path is a pointer scan.
  for (std::size_t i = 0; i < name_ptrs_.size(); ++i) {
    if (name_ptrs_[i] == name) return static_cast<std::uint32_t>(i);
  }
  // Distinct literals with equal contents (rare) still deserve one id.
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      name_ptrs_[i] = name;
      return static_cast<std::uint32_t>(i);
    }
  }
  name_ptrs_.push_back(name);
  names_.emplace_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

void SpanTracer::record(SpanRecord rec) {
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
  } else {
    ring_[recorded_ % capacity_] = rec;
  }
  ++recorded_;
}

SpanTrace SpanTracer::take() {
  SpanTrace trace;
  trace.names = std::move(names_);
  trace.dropped = dropped();
  trace.started = seq_;
  if (recorded_ <= capacity_) {
    trace.records = std::move(ring_);
  } else {
    // Unroll the ring so records come out in write (completion) order.
    trace.records.reserve(capacity_);
    const std::size_t head = recorded_ % capacity_;
    trace.records.insert(trace.records.end(), ring_.begin() + head,
                         ring_.end());
    trace.records.insert(trace.records.end(), ring_.begin(),
                         ring_.begin() + head);
  }
  ring_.clear();
  name_ptrs_.clear();
  names_.clear();
  recorded_ = 0;
  seq_ = 0;
  depth_ = 0;
  return trace;
}

MetricsRegistry* current_metrics() {
  return t_metrics;
}

SpanTracer* current_tracer() {
  return t_tracer;
}

ObsScope::ObsScope(MetricsRegistry* metrics, SpanTracer* tracer)
    : previous_metrics_(t_metrics), previous_tracer_(t_tracer) {
  t_metrics = metrics;
  t_tracer = tracer;
}

ObsScope::~ObsScope() {
  t_metrics = previous_metrics_;
  t_tracer = previous_tracer_;
}

void ScopedSpan::begin(const char* name, std::uint64_t arg) {
  name_id_ = tracer_->intern(name);
  depth_ = tracer_->depth_++;
  seq_ = tracer_->seq_++;
  arg_ = arg;
  sim_begin_ = tracer_->sim_now();
  wall_begin_ns_ = wall_now_ns();
}

void ScopedSpan::end() {
  SpanRecord rec;
  rec.name_id = name_id_;
  rec.depth = depth_;
  rec.seq = seq_;
  rec.arg = arg_;
  rec.sim_begin = sim_begin_;
  rec.sim_end = tracer_->sim_now();
  rec.wall_begin_ns = wall_begin_ns_;
  rec.wall_end_ns = wall_now_ns();
  --tracer_->depth_;
  tracer_->record(rec);
}

}  // namespace bftcup::obs

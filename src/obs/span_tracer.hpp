// RAII span tracing over the engine's hot layers (README "Observability").
//
// A SpanTracer is a per-run flight recorder: a fixed-capacity ring of
// SpanRecords, each carrying the span's interned name, nesting depth, a
// monotone start sequence, sim-time begin/end (the simulator clock the run
// replays on) and wall-time begin/end (steady-clock nanoseconds, export
// only). When the ring fills, the oldest records are overwritten and the
// drop count reported — a crashed or slow run always keeps its most recent
// window, which is the one that explains it.
//
// Determinism contract: tracing is *observation only*. Sites open spans
// through the thread-local obs::ScopedSpan, which is a single thread-local
// load + branch when no tracer is installed (the near-zero disabled path)
// and records nothing on WorkPool worker threads (the tracer is
// thread-confined to the run's own thread, like every cache). Wall times
// never feed a digest, a decision, or any replayed state — cup_lint R2/R3
// pin the only steady_clock call and the RunReport fields.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace bftcup::obs {

/// Sim-clock seam: the tracer reads the run's logical clock through a plain
/// function pointer + context so obs/ depends on nothing above common/.
using SimClockFn = SimTime (*)(const void* ctx);

struct SpanRecord {
  std::uint32_t name_id = 0;  ///< index into SpanTrace::names
  std::uint32_t depth = 0;    ///< nesting depth at entry (0 = top level)
  std::uint64_t seq = 0;      ///< monotone start order within the run
  SimTime sim_begin = 0;
  SimTime sim_end = 0;
  std::uint64_t wall_begin_ns = 0;
  std::uint64_t wall_end_ns = 0;
  std::uint64_t arg = 0;  ///< site-defined payload (SCC size, view, ...)
};

/// Extracted, self-contained trace: what RunReport::spans carries and what
/// the Chrome trace-event exporter consumes. Records are in completion
/// order (spans close inner-first); `seq` recovers start order.
struct SpanTrace {
  std::vector<std::string> names;
  std::vector<SpanRecord> records;
  std::uint64_t dropped = 0;   ///< records overwritten by ring wrap-around
  std::uint64_t started = 0;   ///< spans opened over the run
};

class ScopedSpan;

/// The flight recorder. Thread-confined to the run thread; reached only
/// through obs::current_tracer().
class BFTCUP_THREAD_CONFINED SpanTracer {
 public:
  explicit SpanTracer(std::size_t capacity);

  void set_sim_clock(SimClockFn fn, const void* ctx) {
    sim_clock_ = fn;
    sim_ctx_ = ctx;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t started() const { return seq_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
  }

  /// Interns a span-site name. Sites pass string literals; the pointer
  /// doubles as the cache key, so re-interning a seen literal is a short
  /// vector scan.
  std::uint32_t intern(const char* name);

  [[nodiscard]] SimTime sim_now() const {
    return sim_clock_ != nullptr ? sim_clock_(sim_ctx_) : 0;
  }

  /// Closes the recorder and extracts everything it held.
  [[nodiscard]] SpanTrace take();

 private:
  friend class ScopedSpan;

  void record(SpanRecord rec);

  std::size_t capacity_;
  std::vector<SpanRecord> ring_;
  std::uint64_t recorded_ = 0;  ///< total records written (>= ring size)
  std::uint64_t seq_ = 0;       ///< spans started
  std::uint32_t depth_ = 0;     ///< currently open spans
  SimClockFn sim_clock_ = nullptr;
  const void* sim_ctx_ = nullptr;
  std::vector<const char*> name_ptrs_;  ///< intern cache, index = name_id
  std::vector<std::string> names_;
};

/// Monotonic wall clock in nanoseconds. The process-wide origin is
/// arbitrary; only differences and intra-process ordering are meaningful.
/// This is the single audited wall-clock seam of the codebase outside
/// benches — see the R2 marker at its definition.
[[nodiscard]] std::uint64_t wall_now_ns();

/// Thread-local observer accessors: nullptr outside an ObsScope (and
/// always on WorkPool worker threads, which never install one).
[[nodiscard]] MetricsRegistry* current_metrics();
[[nodiscard]] SpanTracer* current_tracer();

/// RAII thread-local install, mirroring WorkPoolScope: execute_scenario
/// brackets the run body with one, so every site below it observes the
/// run's registry/tracer without plumbing arguments through the stack.
class ObsScope {
 public:
  ObsScope(MetricsRegistry* metrics, SpanTracer* tracer);
  ~ObsScope();
  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  MetricsRegistry* previous_metrics_;
  SpanTracer* previous_tracer_;
};

/// The site-facing RAII span. Constructing with the current tracer absent
/// (or a nullptr name) costs one thread-local load and a branch.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::uint64_t arg = 0)
      : tracer_(current_tracer()) {
    if (tracer_ != nullptr && name != nullptr) {
      begin(name, arg);
    } else {
      tracer_ = nullptr;
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(const char* name, std::uint64_t arg);
  void end();

  SpanTracer* tracer_;
  std::uint32_t name_id_ = 0;
  std::uint32_t depth_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t arg_ = 0;
  SimTime sim_begin_ = 0;
  std::uint64_t wall_begin_ns_ = 0;
};

}  // namespace bftcup::obs

// Run-scoped metrics registry (README "Observability").
//
// Named counters, gauges and log2-bucket histograms, thread-confined per
// RunContext exactly like the membership caches: one registry per executing
// context, mutated only by the run's own thread, never shared. The registry
// itself is cumulative across the runs a recycled context serves; each run
// reports the *delta* between its entry and exit snapshots, the same
// convention the cross-run cache counters already follow, so per-run
// figures stay placement-independent where the underlying quantity is.
//
// Nothing in this module may ever feed RunReport::digest(): metric values
// describe where the engine spent its effort, not what the run decided.
// cup_lint's R3 obs clause machine-checks that any `obs::` field on
// RunReport stays digest-excluded.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/thread_annotations.hpp"

namespace bftcup::obs {

/// Log2-bucketed value distribution: bucket i counts values whose bit
/// width is i (bucket 0 = the value 0, bucket 1 = 1, bucket 2 = 2..3, ...).
/// Fixed shape so snapshots merge by plain bucket addition.
struct HistogramData {
  static constexpr std::size_t kBuckets = 65;  ///< bit widths 0..64

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  static std::size_t bucket_of(std::uint64_t value);
  void record(std::uint64_t value);
  void merge(const HistogramData& other);
  /// Per-run view of a cumulative histogram: `after` minus `before`.
  [[nodiscard]] static HistogramData delta(const HistogramData& before,
                                           const HistogramData& after);

  friend bool operator==(const HistogramData&, const HistogramData&) = default;
};

/// Plain-data capture of a registry at one instant. std::map keys keep
/// every iteration (and JSON emission) in sorted-name order — replayable
/// by construction, never hash-table order.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] std::uint64_t gauge(std::string_view name) const;
  /// Post-run gauge injection (arena high-water, peak RSS): values known
  /// only after the run body returns are set straight on the snapshot.
  void set_gauge(std::string_view name, std::uint64_t value);
  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Per-run delta between two snapshots of one cumulative registry:
  /// counters and histogram buckets subtract, gauges report the `after`
  /// level (a gauge is a level, not an accumulation).
  [[nodiscard]] static MetricsSnapshot delta(const MetricsSnapshot& before,
                                             const MetricsSnapshot& after);

  /// Placement-independent aggregation (BatchRunner): counters and
  /// histogram buckets add, gauges keep the maximum. Both operations are
  /// commutative and associative, so any merge order — pooled worker
  /// interleavings included — yields the same totals.
  void merge(const MetricsSnapshot& other);

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// The registry. Thread-confined (see header comment): sites reach it via
/// obs::current_metrics(), which is nullptr on WorkPool worker threads, so
/// only the run's own thread ever mutates it.
class BFTCUP_THREAD_CONFINED MetricsRegistry {
 public:
  class Counter {
   public:
    void add(std::uint64_t n = 1) { value_ += n; }
    [[nodiscard]] std::uint64_t value() const { return value_; }

   private:
    std::uint64_t value_ = 0;
  };

  class Gauge {
   public:
    void set(std::uint64_t v) { value_ = v; }
    void set_max(std::uint64_t v) { value_ = v > value_ ? v : value_; }
    [[nodiscard]] std::uint64_t value() const { return value_; }

   private:
    std::uint64_t value_ = 0;
  };

  class Histogram {
   public:
    void record(std::uint64_t value) { data_.record(value); }
    [[nodiscard]] const HistogramData& data() const { return data_; }

   private:
    HistogramData data_;
  };

  /// Interned lookup: the returned reference stays valid for the registry's
  /// lifetime (node-based map), so hot sites resolve a name once per run
  /// and bump through the pointer.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  // std::map: stable node addresses for the interned references above and
  // sorted-name iteration for the snapshot.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace bftcup::obs

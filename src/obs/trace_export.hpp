// Chrome trace-event JSON export for SpanTrace (README "Observability").
//
// Emits the `{"traceEvents": [...]}` object format with complete ("X")
// events, loadable directly in Perfetto (ui.perfetto.dev) and the legacy
// chrome://tracing viewer. Wall timestamps are rebased to the trace's
// first span and scaled to the format's microsecond unit; the sim-time
// window, nesting depth, start sequence and site argument ride along in
// each event's `args`, so both clocks stay inspectable side by side.
#pragma once

#include <string>
#include <string_view>

#include "obs/span_tracer.hpp"

namespace bftcup::obs {

/// Renders `trace` as a Chrome trace-event JSON document. `process_name`
/// labels the (synthetic) process track, e.g. "fig1b seed=7".
[[nodiscard]] std::string to_chrome_trace_json(const SpanTrace& trace,
                                               std::string_view process_name);

}  // namespace bftcup::obs

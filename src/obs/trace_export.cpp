#include "obs/trace_export.hpp"

#include <cinttypes>
#include <cstdio>

namespace bftcup::obs {
namespace {

/// JSON string escaping for span/process names. Names are ASCII literals
/// today; escape defensively anyway so a future dynamic name cannot break
/// the document.
void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Nanoseconds -> the format's microsecond unit, keeping ns resolution as
/// a three-decimal fraction (the viewers accept fractional ts/dur).
void append_us(std::string& out, std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string to_chrome_trace_json(const SpanTrace& trace,
                                 std::string_view process_name) {
  std::string out;
  out.reserve(160 * trace.records.size() + 512);
  out += "{\"traceEvents\":[";

  // Track-naming metadata events (ph "M").
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
         "\"args\":{\"name\":";
  append_json_string(out, process_name);
  out += "}},";
  out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
         "\"args\":{\"name\":\"run\"}}";

  // Rebase wall times to the earliest span so ts values start near zero.
  std::uint64_t origin = 0;
  bool have_origin = false;
  for (const SpanRecord& rec : trace.records) {
    if (!have_origin || rec.wall_begin_ns < origin) {
      origin = rec.wall_begin_ns;
      have_origin = true;
    }
  }

  for (const SpanRecord& rec : trace.records) {
    out += ",{\"name\":";
    append_json_string(out, rec.name_id < trace.names.size()
                                ? std::string_view(trace.names[rec.name_id])
                                : std::string_view("?"));
    out += ",\"cat\":\"bftcup\",\"ph\":\"X\",\"ts\":";
    append_us(out, rec.wall_begin_ns - origin);
    out += ",\"dur\":";
    append_us(out, rec.wall_end_ns >= rec.wall_begin_ns
                       ? rec.wall_end_ns - rec.wall_begin_ns
                       : 0);
    out += ",\"pid\":1,\"tid\":1,\"args\":{\"sim_begin\":";
    append_i64(out, rec.sim_begin);
    out += ",\"sim_end\":";
    append_i64(out, rec.sim_end);
    out += ",\"seq\":";
    append_u64(out, rec.seq);
    out += ",\"depth\":";
    append_u64(out, rec.depth);
    out += ",\"arg\":";
    append_u64(out, rec.arg);
    out += "}}";
  }

  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"spans_started\":";
  append_u64(out, trace.started);
  out += ",\"spans_dropped\":";
  append_u64(out, trace.dropped);
  out += "}}";
  return out;
}

}  // namespace bftcup::obs

// The scenario genome: the explorer's unit of mutation and shrinking.
//
// A Genome is the plain-data projection of a Scenario — explicit topology,
// fault configuration, Byzantine behavior, fault timeline, and synchrony
// knobs — restricted to what the mutator can perturb and the shrinker can
// delta-debug. It deliberately excludes the open-ended hooks (custom delay
// policies, custom search strategies): those are code, not data, and a
// counterexample must replay from a one-line artifact alone.
//
// `to_line()`/`parse_line()` give that artifact: a single `|`-separated
// line that round-trips exactly (to_line(parse_line(l)) == l for canonical
// l) and is what `tools/cup_explore --replay` consumes and findings files
// store. `to_builder()` bridges into the fluent Scenario API, so every
// genome is validated by the same ScenarioBuilder::build() gate as every
// hand-written experiment.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cup/scenario_builder.hpp"
#include "graph/digraph.hpp"

namespace bftcup::explore {

/// One scheduled fault, the genome-level mirror of sim::FaultAction.
/// Kept separate so the shrinker can drop single genes and the serializer
/// has a stable, minimal surface.
struct TimelineGene {
  enum class Kind : std::uint8_t { kCrash, kRecover, kDrop, kPartition, kJoin };
  Kind kind = Kind::kCrash;
  ProcessId subject;  ///< crash/recover/join subject; drop source
  ProcessId peer;     ///< drop target
  IdSet group_a;      ///< partition sides
  IdSet group_b;
  SimTime at = 0;
  SimTime until = 0;  ///< drop/partition window end (exclusive)

  friend bool operator==(const TimelineGene&, const TimelineGene&) = default;
};

struct Genome {
  graph::Digraph graph;
  std::size_t f = 1;
  cup::Mode mode = cup::Mode::kAuth;
  cup::ByzBehavior byz = cup::ByzBehavior::kSilent;
  IdSet faulty;
  std::map<ProcessId, IdSet> fake_pds;
  std::vector<TimelineGene> timeline;
  SimTime gst = 0;
  SimTime delta = 10;
  SimTime horizon = 1'000'000;
  std::uint64_t seed = 1;
  bool closure_guard = false;

  // --- hostile-wire genes (PR "Hostile-wire robustness") ------------------
  // Mutation/loss rates are integer permille so the one-line artifact stays
  // exact (no float round-trip). All-default means the wire layer is off,
  // and to_line() then omits the wm/loss/burst keys entirely — pre-wire
  // corpus lines and their content-addressed finding names are unchanged.
  std::uint32_t wire_rate_pm = 0;  ///< frame mutation probability, permille
  std::uint32_t wire_kinds = sim::kAllWireMutationKinds;
  std::uint32_t wire_types = sim::kAllWireMsgTypes;
  std::uint32_t loss_pm = 0;       ///< per-send drop probability, permille
  SimTime loss_jitter = 0;         ///< extra delivery jitter bound
  SimTime burst_start = 0;         ///< burst loss windows (see LossConfig)
  SimTime burst_len = 0;
  SimTime burst_period = 0;

  /// True iff any hostile-wire gene departs from the reliable-channel
  /// premise. Such runs are outside Theorem 1's hypotheses: the oracle
  /// stops treating non-termination as a liveness finding and attributes
  /// safety breaks to the wire (FindingKind::kWireSafety).
  [[nodiscard]] bool wire_active() const {
    return wire_rate_pm > 0 || loss_pm > 0 || loss_jitter > 0 ||
           burst_len > 0;
  }

  /// The fluent-API view of the genome (seeded with `seed`). Building the
  /// returned builder runs the full Scenario validation; mutants that throw
  /// are rejected by the mutator, so "every genome in the corpus would
  /// build" holds by construction.
  [[nodiscard]] cup::ScenarioBuilder to_builder() const;

  /// True iff to_builder().build() succeeds — the mutator/shrinker gate.
  [[nodiscard]] bool valid() const;

  /// Canonical one-line artifact, e.g.
  ///   v=1.2.3|e=1>2;2>1|f=1|mode=auth|byz=fakepd|faulty=3|fpd=3:1.2|
  ///   tl=crash:2@60;drop:1>2@0-2000|gst=0|delta=10|hz=150000|seed=1|cg=0
  /// Vertices, edges, sets, and maps are emitted in sorted order, so two
  /// genomes are semantically equal iff their lines are byte-equal.
  [[nodiscard]] std::string to_line() const;

  /// Inverse of to_line(). Returns nullopt on malformed input. Does NOT
  /// validate the configuration — call valid()/to_builder().build() next.
  [[nodiscard]] static std::optional<Genome> parse_line(const std::string& l);

  friend bool operator==(const Genome& a, const Genome& b) {
    return a.to_line() == b.to_line();
  }
};

// --- structural surgery shared by the mutator and the shrinker ------------

/// The graph minus one directed edge (vertices untouched).
[[nodiscard]] graph::Digraph without_edge(const graph::Digraph& g,
                                          ProcessId from, ProcessId to);

/// The genome minus one vertex: induced subgraph, the vertex stripped from
/// faulty / fake-PD ownership / partition groups, and every timeline gene
/// it anchors dropped. Fake-PD *members* keep the id — a removed process
/// someone still advertises is exactly the ghost-id attack.
[[nodiscard]] Genome without_vertex(const Genome& g, ProcessId v);

/// All edges of `g` as (from, to) pairs, in sorted-vertex order.
[[nodiscard]] std::vector<std::pair<ProcessId, ProcessId>> edges_of(
    const graph::Digraph& g);

}  // namespace bftcup::explore

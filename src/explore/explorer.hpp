// The coverage-guided exploration loop.
//
// Generation 0 runs the seed genomes; every later generation mutates
// corpus members, executes the whole population hardware-parallel through
// the BatchRunner pool, and admits mutants whose runs land in unseen
// coverage classes. Runs that trip the oracle become findings, deduplicated
// by (kind, coverage class), optionally delta-debugged to 1-minimal repros,
// and exportable as registry scenarios under `explored/...`.
//
// Determinism contract (asserted by explorer_test and the CI smoke job):
// for a fixed master seed and fixed options, the result — corpus contents,
// findings, names, digests — is byte-identical across repeated runs and
// across BatchRunner thread counts. All randomness is forked from the
// master seed per (generation, slot) before any run executes, corpus
// updates are applied in slot order after each generation's batch returns,
// and shrinking replays serially.
#pragma once

#include "cup/scenario_registry.hpp"
#include "explore/coverage.hpp"
#include "explore/mutator.hpp"
#include "explore/oracle.hpp"
#include "explore/shrinker.hpp"

namespace bftcup::explore {

struct ExplorerOptions {
  std::uint64_t master_seed = 1;
  std::size_t generations = 6;
  std::size_t population = 32;   ///< mutants attempted per generation
  std::size_t max_corpus = 128;  ///< coverage-new genomes kept
  std::size_t max_findings_per_kind = 8;
  bool shrink = true;
  std::size_t threads = 0;  ///< BatchRunner pool width; 0 = hardware
  MutatorOptions mutator;
  OracleOptions oracle;
  ShrinkOptions shrinker;
};

struct CorpusEntry {
  Genome genome;
  std::string signature;  ///< the coverage class that admitted it
  std::string verdict;
};

struct Finding {
  FindingKind kind = FindingKind::kAgreement;
  Genome genome;      ///< minimized when ExplorerOptions::shrink, else raw
  Genome discovered;  ///< the mutant that first tripped the oracle
  std::string verdict;
  std::string digest;  ///< RunReport::digest() of replaying `genome`
  /// Stable scenario name: "<kind>-<first 8 hex of sha256(genome line)>".
  std::string name;
  bool requirements_satisfied = false;
  bool shrunk_to_fixpoint = false;
};

struct ExploreResult {
  std::vector<CorpusEntry> corpus;
  std::vector<Finding> findings;
  std::uint64_t runs = 0;  ///< simulations executed (incl. shrinking)

  /// Hex SHA-256 over every corpus line + signature and every finding's
  /// (name, kind, verdict, digest, line) — the cross-thread-count /
  /// cross-run byte-identity witness.
  [[nodiscard]] std::string digest() const;
};

class Explorer {
 public:
  explicit Explorer(ExplorerOptions options = {}) : options_(options) {}

  /// Explores from the given seed corpus. Invalid seeds are skipped.
  [[nodiscard]] ExploreResult explore(const std::vector<Genome>& seeds) const;

  /// The default seed corpus: paper figures under their standard modes and
  /// behaviors — the explorer then walks outward from the known ground.
  [[nodiscard]] static std::vector<Genome> default_seeds();

 private:
  ExplorerOptions options_;
};

/// Registers every finding under "explored/<finding name>"; the entry's
/// builder replays the minimized genome (the sweep seed overrides the
/// genome seed, matching every other registry family).
void register_findings(cup::ScenarioRegistry& registry,
                       const std::vector<Finding>& findings);

}  // namespace bftcup::explore

#include "explore/explorer.hpp"

#include <map>
#include <set>
#include <utility>

#include "common/hex.hpp"
#include "crypto/sha256.hpp"
#include "cup/batch_runner.hpp"
#include "cup/run_context.hpp"
#include "graph/figures.hpp"

namespace bftcup::explore {
namespace {

std::string sha256_hex(const std::string& text) {
  return to_hex(crypto::digest_bytes(crypto::sha256(to_bytes(text))));
}

Genome seed_from(const graph::figures::Instance& instance, cup::Mode mode) {
  Genome genome;
  genome.graph = instance.graph;
  genome.faulty = instance.faulty;
  genome.f = instance.f;
  genome.mode = mode;
  genome.gst = 0;
  genome.delta = 10;
  genome.horizon = 300'000;
  genome.seed = 1;
  return genome;
}

}  // namespace

std::string ExploreResult::digest() const {
  std::string text;
  for (const CorpusEntry& entry : corpus) {
    text += entry.genome.to_line();
    text += '\n';
    text += entry.signature;
    text += '\n';
    text += entry.verdict;
    text += '\n';
  }
  for (const Finding& finding : findings) {
    text += finding.name;
    text += '|';
    text += to_string(finding.kind);
    text += '|';
    text += finding.verdict;
    text += '|';
    text += finding.digest;
    text += '|';
    text += finding.genome.to_line();
    text += '\n';
  }
  return sha256_hex(text);
}

std::vector<Genome> Explorer::default_seeds() {
  using graph::figures::fig1a;
  using graph::figures::fig1b;
  using graph::figures::fig3a;
  using graph::figures::fig4a;

  std::vector<Genome> seeds;
  seeds.push_back(seed_from(fig1b(), cup::Mode::kAuth));
  seeds.push_back(seed_from(fig1a(), cup::Mode::kAuth));
  seeds.push_back(seed_from(fig3a(), cup::Mode::kAuth));
  seeds.push_back(seed_from(fig4a(), cup::Mode::kCupft));

  // Fig. 4a with the Byzantine core member advertising its *true* PD — one
  // member-deletion mutation away from the bridge-hiding attack family.
  {
    Genome plant = seed_from(fig4a(), cup::Mode::kCupft);
    plant.byz = cup::ByzBehavior::kFakePd;
    for (ProcessId byz : plant.faulty) {
      plant.fake_pds[byz] = plant.graph.out_neighbors(byz);
    }
    seeds.push_back(std::move(plant));
  }
  return seeds;
}

ExploreResult Explorer::explore(const std::vector<Genome>& seeds) const {
  ExploreResult result;
  CoverageMap coverage;
  const Mutator mutator(options_.mutator);

  cup::BatchRunner::Options batch_options;
  batch_options.threads = options_.threads;
  const cup::BatchRunner runner(batch_options);

  std::set<std::string> finding_keys;
  std::map<FindingKind, std::size_t> findings_per_kind;

  const auto process = [&](const std::vector<Genome>& genomes,
                           const std::vector<cup::RunReport>& reports) {
    for (std::size_t i = 0; i < genomes.size(); ++i) {
      const std::string signature = coverage_signature(reports[i]);
      if (coverage.add(signature) &&
          result.corpus.size() < options_.max_corpus) {
        result.corpus.push_back(
            {genomes[i], signature, reports[i].verdict()});
      }
      const auto classification =
          classify(genomes[i], reports[i], options_.oracle);
      if (!classification.has_value()) continue;
      const std::string key =
          std::string(to_string(classification->kind)) +
          (classification->requirements_satisfied ? "|sat|" : "|unsat|") +
          signature;
      std::size_t& kind_count = findings_per_kind[classification->kind];
      if (finding_keys.contains(key) ||
          kind_count >= options_.max_findings_per_kind) {
        continue;
      }
      finding_keys.insert(key);
      ++kind_count;
      Finding finding;
      finding.kind = classification->kind;
      finding.genome = genomes[i];
      finding.discovered = genomes[i];
      finding.verdict = reports[i].verdict();
      finding.requirements_satisfied = classification->requirements_satisfied;
      result.findings.push_back(std::move(finding));
    }
  };

  Rng master(options_.master_seed);
  std::vector<Genome> population;
  for (const Genome& seed : seeds) {
    if (seed.valid()) population.push_back(seed);
  }

  for (std::size_t generation = 0; generation <= options_.generations;
       ++generation) {
    if (generation > 0) {
      population.clear();
      if (result.corpus.empty()) break;
      Rng generation_rng = master.fork(generation);
      const std::size_t corpus_size = result.corpus.size();
      for (std::size_t slot = 0; slot < options_.population; ++slot) {
        // Per-slot stream: mutation draws are independent of how many
        // earlier slots produced a mutant, so the schedule is a pure
        // function of (master_seed, generation, slot, corpus prefix).
        Rng slot_rng = generation_rng.fork(slot);
        const Genome& parent =
            result.corpus[slot_rng.next_below(corpus_size)].genome;
        if (auto mutant = mutator.mutate(parent, slot_rng)) {
          population.push_back(std::move(*mutant));
        }
      }
    }
    if (population.empty()) continue;

    std::vector<cup::SweepPoint> points;
    points.reserve(population.size());
    for (std::size_t i = 0; i < population.size(); ++i) {
      points.push_back({"gen" + std::to_string(generation) + "/" +
                            std::to_string(i),
                        population[i].seed,
                        population[i].to_builder().build()});
    }
    const std::vector<cup::RunReport> reports =
        runner.run_reports(std::move(points));
    result.runs += reports.size();
    process(population, reports);
  }

  // Minimize, then stamp each finding with its replay verdict/digest and
  // its content-addressed name. Serial and deterministic; replays go
  // through a recycled context (warm caches over near-identical genomes).
  cup::RunContext replay_context;
  const Shrinker shrinker(options_.shrinker, options_.oracle);
  for (Finding& finding : result.findings) {
    if (options_.shrink) {
      ShrinkOutcome outcome = shrinker.shrink(
          finding.discovered,
          Classification{finding.kind, finding.requirements_satisfied});
      finding.genome = std::move(outcome.genome);
      finding.shrunk_to_fixpoint = outcome.fixpoint;
      result.runs += outcome.runs;
    }
    const cup::RunReport report =
        replay_context.run(finding.genome.to_builder().build());
    ++result.runs;
    finding.verdict = report.verdict();
    finding.digest = report.digest();
    // Safety breaks under *unsatisfied* requirements are necessity
    // witnesses, not protocol attacks; the name says which is which.
    const bool tag_unsat = !finding.requirements_satisfied &&
                           finding.kind != FindingKind::kWitness;
    finding.name = std::string(to_string(finding.kind)) +
                   (tag_unsat ? "-unsat-" : "-") +
                   sha256_hex(finding.genome.to_line()).substr(0, 8);
  }

  // Distinct discoveries can shrink to the same minimal genome; keep the
  // first of each (names are content-addressed, so equal name <=> equal
  // minimized genome and replay).
  std::set<std::string> names;
  std::vector<Finding> unique;
  unique.reserve(result.findings.size());
  for (Finding& finding : result.findings) {
    if (names.insert(finding.name).second) {
      unique.push_back(std::move(finding));
    }
  }
  result.findings = std::move(unique);
  return result;
}

void register_findings(cup::ScenarioRegistry& registry,
                       const std::vector<Finding>& findings) {
  for (const Finding& finding : findings) {
    cup::ScenarioRegistry::Entry entry;
    entry.name = std::string("explored/") + finding.name;
    entry.description =
        std::string("Explorer-minimized ") + to_string(finding.kind) +
        " finding (" + finding.verdict + "); replay line: " +
        finding.genome.to_line();
    entry.tags = {"explored", to_string(finding.kind)};
    entry.make = [genome = finding.genome](std::uint64_t seed) {
      return genome.to_builder().seed(seed);
    };
    registry.add(std::move(entry));
  }
}

}  // namespace bftcup::explore

#include "explore/shrinker.hpp"

#include <bit>

namespace bftcup::explore {

std::vector<Genome> Shrinker::reductions(const Genome& genome) {
  std::vector<Genome> out;

  // Hostile-wire genes first: zeroing a whole dimension is the biggest
  // single step, then single mask bits. A kWireSafety target keeps at least
  // one wire gene alive by construction (reproduces() re-classifies, and a
  // wire-free genome cannot classify as wire-safety).
  if (genome.wire_rate_pm > 0) {
    Genome candidate = genome;
    candidate.wire_rate_pm = 0;
    candidate.wire_kinds = sim::kAllWireMutationKinds;
    candidate.wire_types = sim::kAllWireMsgTypes;
    out.push_back(std::move(candidate));
  }
  if (genome.wire_rate_pm > 0 && std::popcount(genome.wire_kinds) > 1) {
    for (std::uint32_t bit = 0; bit < sim::kWireMutationKindCount; ++bit) {
      if ((genome.wire_kinds & (1u << bit)) == 0) continue;
      Genome candidate = genome;
      candidate.wire_kinds &= ~(1u << bit);
      out.push_back(std::move(candidate));
    }
  }
  if (genome.wire_rate_pm > 0 && std::popcount(genome.wire_types) > 1) {
    for (std::uint32_t bit = 0; bit < msg::kMsgTypeCount; ++bit) {
      if ((genome.wire_types & (1u << bit)) == 0) continue;
      Genome candidate = genome;
      candidate.wire_types &= ~(1u << bit);
      out.push_back(std::move(candidate));
    }
  }
  if (genome.loss_pm > 0) {
    Genome candidate = genome;
    candidate.loss_pm = 0;
    out.push_back(std::move(candidate));
  }
  if (genome.loss_jitter > 0) {
    Genome candidate = genome;
    candidate.loss_jitter = 0;
    out.push_back(std::move(candidate));
  }
  if (genome.burst_len > 0) {
    Genome candidate = genome;
    candidate.burst_start = 0;
    candidate.burst_len = 0;
    candidate.burst_period = 0;
    out.push_back(std::move(candidate));
  }
  if (genome.burst_period > 0) {
    Genome candidate = genome;
    candidate.burst_period = 0;  // recurring windows -> a single window
    out.push_back(std::move(candidate));
  }

  for (std::size_t i = 0; i < genome.timeline.size(); ++i) {
    Genome candidate = genome;
    candidate.timeline.erase(candidate.timeline.begin() +
                             static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(candidate));
  }

  for (const auto& [owner, advertised] : genome.fake_pds) {
    for (ProcessId member : advertised) {
      Genome candidate = genome;
      candidate.fake_pds[owner].erase(member);
      out.push_back(std::move(candidate));
    }
  }
  for (const auto& [owner, advertised] : genome.fake_pds) {
    (void)advertised;
    Genome candidate = genome;
    candidate.fake_pds.erase(owner);
    out.push_back(std::move(candidate));
  }

  for (ProcessId member : genome.faulty) {
    Genome candidate = genome;
    candidate.faulty.erase(member);
    candidate.fake_pds.erase(member);
    out.push_back(std::move(candidate));
  }

  for (const auto& [from, to] : edges_of(genome.graph)) {
    Genome candidate = genome;
    candidate.graph = without_edge(genome.graph, from, to);
    out.push_back(std::move(candidate));
  }

  if (genome.graph.vertex_count() > 2) {
    for (ProcessId v : genome.graph.vertices()) {
      out.push_back(without_vertex(genome, v));
    }
  }

  return out;
}

bool Shrinker::reproduces(const Genome& genome,
                          const Classification& target) const {
  if (!genome.valid()) return false;
  const cup::RunReport report = context_.run(genome.to_builder().build());
  const auto classification = classify(genome, report, oracle_);
  return classification.has_value() && *classification == target;
}

ShrinkOutcome Shrinker::shrink(const Genome& start,
                               const Classification& target) const {
  ShrinkOutcome outcome;
  outcome.genome = start;

  bool progressed = true;
  bool budget_hit = false;
  while (progressed) {
    progressed = false;
    for (Genome& candidate : reductions(outcome.genome)) {
      if (outcome.runs >= options_.max_runs) {
        budget_hit = true;
        break;
      }
      // Build-invalid candidates are rejected without a simulation and do
      // not charge the replay budget (reproduces re-checks validity, which
      // is cheap next to a run).
      if (!candidate.valid()) continue;
      ++outcome.runs;
      if (reproduces(candidate, target)) {
        outcome.genome = std::move(candidate);
        progressed = true;
        break;  // restart the pass from the smaller genome
      }
    }
    if (budget_hit) break;
  }
  // If the loop ended because a full pass found nothing (not because the
  // budget ran dry), no single reduction reproduces: 1-minimal.
  outcome.fixpoint = !budget_hit;
  return outcome;
}

}  // namespace bftcup::explore

#include "explore/oracle.hpp"

#include <algorithm>

#include "graph/extended_osr.hpp"
#include "graph/osr.hpp"

namespace bftcup::explore {
namespace {

/// True iff every crash of a *correct* process has a later recover — an
/// unrecovered correct crash forfeits termination by construction (the
/// crashed process cannot decide), so such runs are excluded from liveness
/// findings. Crashes of Byzantine processes are exempt: termination is
/// judged over the correct set only, so an adversary that participates in
/// discovery and then goes permanently dark is a legitimate liveness
/// attack, not a self-inflicted non-termination.
bool crashes_all_recover(const Genome& genome) {
  for (const TimelineGene& crash : genome.timeline) {
    if (crash.kind != TimelineGene::Kind::kCrash) continue;
    if (genome.faulty.contains(crash.subject)) continue;
    const bool recovered =
        std::any_of(genome.timeline.begin(), genome.timeline.end(),
                    [&](const TimelineGene& other) {
                      return other.kind == TimelineGene::Kind::kRecover &&
                             other.subject == crash.subject &&
                             other.at > crash.at;
                    });
    if (!recovered) return false;
  }
  return true;
}

/// The last instant the environment may still be interfering: GST, the end
/// of every drop/partition window, every join, every fault-action instant.
SimTime last_disruption(const Genome& genome) {
  SimTime last = genome.gst;
  for (const TimelineGene& gene : genome.timeline) {
    last = std::max(last, gene.at);
    last = std::max(last, gene.until);
  }
  return last;
}

}  // namespace

const char* to_string(FindingKind kind) {
  switch (kind) {
    case FindingKind::kAgreement: return "agreement";
    case FindingKind::kValidity: return "validity";
    case FindingKind::kLiveness: return "liveness";
    case FindingKind::kWitness: return "witness";
  }
  return "unknown";
}

bool requirements_satisfied(const Genome& genome) {
  if (genome.mode == cup::Mode::kCupft) {
    return graph::check_bft_cupft_requirements(genome.graph, genome.faulty,
                                               genome.f)
        .satisfied;
  }
  return graph::check_bft_cup_requirements(genome.graph, genome.faulty,
                                           genome.f)
      .satisfied;
}

std::optional<Classification> classify(const Genome& genome,
                                       const cup::RunReport& report,
                                       const OracleOptions& options) {
  if (!options.include_naive && genome.mode == cup::Mode::kNaive) {
    return std::nullopt;
  }
  const bool satisfied = requirements_satisfied(genome);
  if (!report.agreement) {
    return Classification{FindingKind::kAgreement, satisfied};
  }
  if (!report.validity) {
    return Classification{FindingKind::kValidity, satisfied};
  }
  if (report.all_correct_decided) {
    if (options.include_witness && !satisfied &&
        genome.mode != cup::Mode::kNaive) {
      return Classification{FindingKind::kWitness, satisfied};
    }
    return std::nullopt;
  }
  // NO-TERMINATION. Only a finding when the predicate promised solvability
  // and the run was fair (see file comment).
  if (!options.include_liveness || !satisfied) return std::nullopt;
  if (genome.mode == cup::Mode::kNaive) return std::nullopt;
  if (!crashes_all_recover(genome)) return std::nullopt;
  if (genome.horizon < last_disruption(genome) + options.liveness_slack) {
    return std::nullopt;
  }
  return Classification{FindingKind::kLiveness, satisfied};
}

}  // namespace bftcup::explore

#include "explore/oracle.hpp"

#include <algorithm>

#include "cup/runner.hpp"
#include "graph/extended_osr.hpp"
#include "graph/osr.hpp"

namespace bftcup::explore {
namespace {

/// `genome` with every hostile-wire gene zeroed: the reliable-channel run
/// the same adversary would have produced without the wire layer.
Genome without_wire(const Genome& genome) {
  Genome baseline = genome;
  baseline.wire_rate_pm = 0;
  baseline.wire_kinds = sim::kAllWireMutationKinds;
  baseline.wire_types = sim::kAllWireMsgTypes;
  baseline.loss_pm = 0;
  baseline.loss_jitter = 0;
  baseline.burst_start = 0;
  baseline.burst_len = 0;
  baseline.burst_period = 0;
  return baseline;
}

/// True iff the safety break vanishes when the wire layer is stripped —
/// the evidence classify() needs before blaming the hostile wire.
bool baseline_is_clean(const Genome& genome) {
  const cup::RunReport baseline =
      cup::run_scenario(without_wire(genome).to_builder().build());
  return baseline.agreement && baseline.validity;
}

/// True iff every crash of a *correct* process has a later recover — an
/// unrecovered correct crash forfeits termination by construction (the
/// crashed process cannot decide), so such runs are excluded from liveness
/// findings. Crashes of Byzantine processes are exempt: termination is
/// judged over the correct set only, so an adversary that participates in
/// discovery and then goes permanently dark is a legitimate liveness
/// attack, not a self-inflicted non-termination.
bool crashes_all_recover(const Genome& genome) {
  for (const TimelineGene& crash : genome.timeline) {
    if (crash.kind != TimelineGene::Kind::kCrash) continue;
    if (genome.faulty.contains(crash.subject)) continue;
    const bool recovered =
        std::any_of(genome.timeline.begin(), genome.timeline.end(),
                    [&](const TimelineGene& other) {
                      return other.kind == TimelineGene::Kind::kRecover &&
                             other.subject == crash.subject &&
                             other.at > crash.at;
                    });
    if (!recovered) return false;
  }
  return true;
}

/// The last instant the environment may still be interfering: GST, the end
/// of every drop/partition window, every join, every fault-action instant.
SimTime last_disruption(const Genome& genome) {
  SimTime last = genome.gst;
  for (const TimelineGene& gene : genome.timeline) {
    last = std::max(last, gene.at);
    last = std::max(last, gene.until);
  }
  return last;
}

}  // namespace

const char* to_string(FindingKind kind) {
  switch (kind) {
    case FindingKind::kAgreement: return "agreement";
    case FindingKind::kValidity: return "validity";
    case FindingKind::kLiveness: return "liveness";
    case FindingKind::kWitness: return "witness";
    case FindingKind::kWireSafety: return "wire-safety";
  }
  return "unknown";
}

bool requirements_satisfied(const Genome& genome) {
  if (genome.mode == cup::Mode::kCupft) {
    return graph::check_bft_cupft_requirements(genome.graph, genome.faulty,
                                               genome.f)
        .satisfied;
  }
  return graph::check_bft_cup_requirements(genome.graph, genome.faulty,
                                           genome.f)
      .satisfied;
}

std::optional<Classification> classify(const Genome& genome,
                                       const cup::RunReport& report,
                                       const OracleOptions& options) {
  if (!options.include_naive && genome.mode == cup::Mode::kNaive) {
    return std::nullopt;
  }
  const bool satisfied = requirements_satisfied(genome);
  const bool wire = genome.wire_active();
  if (!report.agreement || !report.validity) {
    // Mutated frames may cost liveness, never safety: a safety break that
    // disappears when the wire genes are stripped (same seed, same
    // adversary) is a decode-path or verification hole, not a protocol
    // counterexample. The replay is deterministic, so the attribution is.
    if (wire && options.attribute_wire && baseline_is_clean(genome)) {
      return Classification{FindingKind::kWireSafety, satisfied};
    }
    if (!report.agreement) {
      return Classification{FindingKind::kAgreement, satisfied};
    }
    return Classification{FindingKind::kValidity, satisfied};
  }
  if (report.all_correct_decided) {
    if (options.include_witness && !satisfied &&
        genome.mode != cup::Mode::kNaive) {
      return Classification{FindingKind::kWitness, satisfied};
    }
    return std::nullopt;
  }
  // NO-TERMINATION. Only a finding when the predicate promised solvability
  // and the run was fair (see file comment). A lossy or mutating wire
  // breaks the reliable-channel hypothesis Theorem 1 needs, so wire-active
  // runs never count as liveness findings.
  if (!options.include_liveness || !satisfied || wire) return std::nullopt;
  if (genome.mode == cup::Mode::kNaive) return std::nullopt;
  if (!crashes_all_recover(genome)) return std::nullopt;
  if (genome.horizon < last_disruption(genome) + options.liveness_slack) {
    return std::nullopt;
  }
  return Classification{FindingKind::kLiveness, satisfied};
}

}  // namespace bftcup::explore
